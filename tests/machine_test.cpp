// Unit tests for src/machine: technology params, floorplan geometry,
// chessboard/spread orders, banks, timing, register assignment mapping.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <string>

#include "machine/assignment.hpp"
#include "machine/floorplan.hpp"
#include "machine/machine_config.hpp"
#include "machine/technology.hpp"
#include "machine/timing.hpp"

namespace tadfa::machine {
namespace {

// ------------------------------------------------------------ technology ----

TEST(Technology, DefaultConfigsValid) {
  EXPECT_TRUE(RegisterFileConfig::default_config().valid());
  EXPECT_TRUE(RegisterFileConfig::small_config().valid());
  EXPECT_TRUE(RegisterFileConfig::large_config().valid());
}

TEST(Technology, InvalidConfigsRejected) {
  RegisterFileConfig c;
  c.rows = 7;  // 7*8 != 64
  EXPECT_FALSE(c.valid());
  RegisterFileConfig c2;
  c2.banks = 3;  // does not divide 8 columns
  EXPECT_FALSE(c2.valid());
  RegisterFileConfig c3;
  c3.num_registers = 0;
  EXPECT_FALSE(c3.valid());
}

TEST(Technology, LeakageGrowsExponentiallyWithTemp) {
  const TechnologyParams t;
  const double at_ref = t.leakage_at(t.leakage_ref_temp_k);
  EXPECT_NEAR(at_ref, t.leakage_ref_w, 1e-12);
  const double hotter = t.leakage_at(t.leakage_ref_temp_k + 20);
  EXPECT_GT(hotter, at_ref * 1.5);
  const double colder = t.leakage_at(t.leakage_ref_temp_k - 20);
  EXPECT_LT(colder, at_ref);
  // Exponential: ratio over equal steps is constant.
  const double r1 = t.leakage_at(350.0) / t.leakage_at(340.0);
  const double r2 = t.leakage_at(360.0) / t.leakage_at(350.0);
  EXPECT_NEAR(r1, r2, 1e-9);
}

TEST(Technology, CycleSecondsMatchesClock) {
  TechnologyParams t;
  t.clock_hz = 2.0e9;
  EXPECT_DOUBLE_EQ(t.cycle_seconds(), 0.5e-9);
}

// -------------------------------------------------------------- floorplan ----

TEST(Floorplan, RowMajorPlacement) {
  const Floorplan fp(RegisterFileConfig::default_config());
  EXPECT_EQ(fp.row_of(0), 0u);
  EXPECT_EQ(fp.col_of(0), 0u);
  EXPECT_EQ(fp.row_of(8), 1u);
  EXPECT_EQ(fp.col_of(8), 0u);
  EXPECT_EQ(fp.at(1, 0), 8u);
  EXPECT_EQ(fp.at(7, 7), 63u);
}

TEST(Floorplan, CellGeometry) {
  const Floorplan fp(RegisterFileConfig::default_config());
  const CellRect c0 = fp.cell(0);
  const CellRect c1 = fp.cell(1);
  EXPECT_DOUBLE_EQ(c0.x, 0.0);
  EXPECT_DOUBLE_EQ(c1.x, c0.w);
  EXPECT_GT(c0.w, 0.0);
  EXPECT_GT(c0.h, 0.0);
}

TEST(Floorplan, DistanceSymmetricAndMetric) {
  const Floorplan fp(RegisterFileConfig::default_config());
  EXPECT_DOUBLE_EQ(fp.distance(3, 3), 0.0);
  EXPECT_DOUBLE_EQ(fp.distance(0, 7), fp.distance(7, 0));
  // Triangle inequality spot check.
  EXPECT_LE(fp.distance(0, 63), fp.distance(0, 7) + fp.distance(7, 63) + 1e-12);
}

TEST(Floorplan, GridDistanceIsManhattan) {
  const Floorplan fp(RegisterFileConfig::default_config());
  EXPECT_EQ(fp.grid_distance(0, 0), 0u);
  EXPECT_EQ(fp.grid_distance(0, 9), 2u);   // (0,0) -> (1,1)
  EXPECT_EQ(fp.grid_distance(0, 63), 14u); // (0,0) -> (7,7)
}

TEST(Floorplan, NeighborsRespectBorders) {
  const Floorplan fp(RegisterFileConfig::default_config());
  EXPECT_EQ(fp.neighbors(0).size(), 2u);   // corner
  EXPECT_EQ(fp.neighbors(1).size(), 3u);   // edge
  EXPECT_EQ(fp.neighbors(9).size(), 4u);   // interior
}

TEST(Floorplan, BanksSplitColumns) {
  const Floorplan fp(RegisterFileConfig::default_config());  // 4 banks, 8 cols
  EXPECT_EQ(fp.bank_of(fp.at(0, 0)), 0u);
  EXPECT_EQ(fp.bank_of(fp.at(0, 1)), 0u);
  EXPECT_EQ(fp.bank_of(fp.at(0, 2)), 1u);
  EXPECT_EQ(fp.bank_of(fp.at(0, 7)), 3u);
  EXPECT_EQ(fp.bank_registers(0).size(), 16u);
  // Every register is in exactly one bank.
  std::size_t total = 0;
  for (std::uint32_t b = 0; b < fp.num_banks(); ++b) {
    total += fp.bank_registers(b).size();
  }
  EXPECT_EQ(total, fp.num_registers());
}

TEST(Floorplan, ChessboardCellsAlternate) {
  const Floorplan fp(RegisterFileConfig::default_config());
  const auto even = fp.chessboard_cells(true);
  const auto odd = fp.chessboard_cells(false);
  EXPECT_EQ(even.size(), 32u);
  EXPECT_EQ(odd.size(), 32u);
  // No even cell is adjacent to another even cell.
  const std::set<PhysReg> even_set(even.begin(), even.end());
  for (PhysReg r : even) {
    for (PhysReg n : fp.neighbors(r)) {
      EXPECT_EQ(even_set.count(n), 0u);
    }
  }
}

TEST(Floorplan, SpreadOrderIsPermutation) {
  const Floorplan fp(RegisterFileConfig::small_config());
  const auto order = fp.spread_order();
  std::set<PhysReg> unique(order.begin(), order.end());
  EXPECT_EQ(order.size(), fp.num_registers());
  EXPECT_EQ(unique.size(), fp.num_registers());
}

TEST(Floorplan, SpreadOrderSecondPickIsFar) {
  const Floorplan fp(RegisterFileConfig::default_config());
  const auto order = fp.spread_order();
  // The second pick should be at least half the array diagonal away.
  const double diag = fp.distance(0, 63);
  EXPECT_GE(fp.distance(order[0], order[1]), diag / 2);
}

// ----------------------------------------------------------------- timing ----

TEST(Timing, DefaultsAreSane) {
  const TimingModel t;
  EXPECT_EQ(t.latency(ir::Opcode::kAdd), 1);
  EXPECT_EQ(t.latency(ir::Opcode::kMul), 3);
  EXPECT_EQ(t.latency(ir::Opcode::kDiv), 12);
  EXPECT_EQ(t.latency(ir::Opcode::kLoad), 2);
  EXPECT_EQ(t.latency(ir::Opcode::kNop), 1);
}

TEST(Timing, OverrideLatency) {
  TimingModel t;
  t.set_latency(ir::Opcode::kLoad, 10);
  EXPECT_EQ(t.latency(ir::Opcode::kLoad), 10);
}

TEST(Timing, CyclesUsesOpcode) {
  const TimingModel t;
  const ir::Instruction mul(ir::Opcode::kMul, 0,
                            {ir::Operand::reg(1), ir::Operand::reg(2)});
  EXPECT_EQ(t.cycles(mul), 3);
}

// -------------------------------------------------------------- assignment ----

TEST(Assignment, AssignAndQuery) {
  RegisterAssignment a(4);
  EXPECT_FALSE(a.assigned(0));
  a.assign(0, 7);
  EXPECT_TRUE(a.assigned(0));
  EXPECT_EQ(a.phys(0), 7u);
  EXPECT_EQ(a.vreg_count(), 4u);
}

TEST(Assignment, UsedPhysicalDeduplicates) {
  RegisterAssignment a(3);
  a.assign(0, 5);
  a.assign(1, 5);
  a.assign(2, 2);
  EXPECT_EQ(a.used_physical(), (std::vector<PhysReg>{2, 5}));
}

TEST(Assignment, CoversChecksAllAppearances) {
  ir::Function f("c");
  const ir::Reg p = f.add_param();
  const auto blk = f.add_block();
  f.ensure_regs(2);
  f.block(blk).append(ir::Instruction(ir::Opcode::kMov, 1,
                                      {ir::Operand::reg(p)}));
  f.block(blk).append(
      ir::Instruction(ir::Opcode::kRet, ir::kInvalidReg,
                      {ir::Operand::reg(1)}));
  RegisterAssignment a(2);
  EXPECT_FALSE(a.covers(f));
  a.assign(0, 0);
  EXPECT_FALSE(a.covers(f));
  a.assign(1, 1);
  EXPECT_TRUE(a.covers(f));
}

// ---------------------------------------------------------------- digests ----

/// One digest-sensitivity case: perturb a single field of the config
/// that cache keys are derived from. Every field the thermal and power
/// models read must flip the digest, or a stale cache entry computed
/// under the old value would satisfy a lookup under the new one.
struct DigestCase {
  const char* field;
  void (*perturb)(RegisterFileConfig&);
};

const DigestCase kDigestCases[] = {
    {"num_registers", [](RegisterFileConfig& c) { c.num_registers *= 2; }},
    {"rows", [](RegisterFileConfig& c) { c.rows *= 2; }},
    {"cols", [](RegisterFileConfig& c) { c.cols *= 2; }},
    {"banks", [](RegisterFileConfig& c) { c.banks *= 2; }},
    {"cell_width_m", [](RegisterFileConfig& c) { c.tech.cell_width_m *= 1.5; }},
    {"cell_height_m",
     [](RegisterFileConfig& c) { c.tech.cell_height_m *= 1.5; }},
    {"die_thickness_m",
     [](RegisterFileConfig& c) { c.tech.die_thickness_m *= 1.5; }},
    {"read_energy_j",
     [](RegisterFileConfig& c) { c.tech.read_energy_j *= 1.5; }},
    {"write_energy_j",
     [](RegisterFileConfig& c) { c.tech.write_energy_j *= 1.5; }},
    {"memory_access_energy_j",
     [](RegisterFileConfig& c) { c.tech.memory_access_energy_j *= 1.5; }},
    {"leakage_ref_w",
     [](RegisterFileConfig& c) { c.tech.leakage_ref_w *= 1.5; }},
    {"leakage_temp_coeff",
     [](RegisterFileConfig& c) { c.tech.leakage_temp_coeff *= 1.5; }},
    {"leakage_ref_temp_k",
     [](RegisterFileConfig& c) { c.tech.leakage_ref_temp_k += 5.0; }},
    {"silicon_conductivity",
     [](RegisterFileConfig& c) { c.tech.silicon_conductivity *= 1.5; }},
    {"silicon_volumetric_heat",
     [](RegisterFileConfig& c) { c.tech.silicon_volumetric_heat *= 1.5; }},
    {"vertical_resistance_scale",
     [](RegisterFileConfig& c) { c.tech.vertical_resistance_scale *= 1.5; }},
    {"substrate_temp_k",
     [](RegisterFileConfig& c) { c.tech.substrate_temp_k += 5.0; }},
    {"ambient_temp_k",
     [](RegisterFileConfig& c) { c.tech.ambient_temp_k += 5.0; }},
    {"clock_hz", [](RegisterFileConfig& c) { c.tech.clock_hz *= 1.5; }},
};

TEST(ConfigDigest, EveryFieldPerturbationFlipsTheDigest) {
  const std::uint64_t base =
      RegisterFileConfig::default_config().config_digest();
  EXPECT_EQ(RegisterFileConfig::default_config().config_digest(), base);

  std::map<std::uint64_t, const char*> seen;
  seen[base] = "(base)";
  for (const DigestCase& c : kDigestCases) {
    RegisterFileConfig cfg = RegisterFileConfig::default_config();
    c.perturb(cfg);
    const std::uint64_t digest = cfg.config_digest();
    EXPECT_NE(digest, base) << c.field << " is not folded into the digest";
    // Pairwise distinct too: two different perturbations colliding would
    // be as silent a cache bug as a missing field.
    const auto [it, inserted] = seen.emplace(digest, c.field);
    EXPECT_TRUE(inserted) << c.field << " collides with " << it->second;
  }
}

TEST(MachineRegistryTest, NameIsNotPartOfTheDigest) {
  // Renaming a machine must not orphan its cache entries.
  MachineConfig a{"alpha", "", RegisterFileConfig::default_config()};
  MachineConfig b{"omega", "", RegisterFileConfig::default_config()};
  EXPECT_EQ(a.config_digest(), b.config_digest());
  EXPECT_EQ(a.config_digest(),
            RegisterFileConfig::default_config().config_digest());
}

TEST(MachineRegistryTest, EntriesAreValidNamedAndDigestDistinct) {
  const MachineRegistry& reg = default_machine_registry();
  ASSERT_GE(reg.entries().size(), 4u);
  EXPECT_NE(reg.find("default"), nullptr);
  EXPECT_EQ(reg.find("missing-machine"), nullptr);

  std::map<std::uint64_t, std::string> seen;
  for (const MachineConfig& mc : reg.entries()) {
    EXPECT_TRUE(mc.valid()) << mc.name;
    EXPECT_FALSE(mc.description.empty()) << mc.name;
    ASSERT_EQ(reg.find(mc.name), &mc);
    const auto [it, inserted] = seen.emplace(mc.config_digest(), mc.name);
    EXPECT_TRUE(inserted) << mc.name << " shares a digest with "
                          << it->second;
  }
  EXPECT_EQ(reg.names().size(), reg.entries().size());
}

}  // namespace
}  // namespace tadfa::machine
