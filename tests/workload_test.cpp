// Tests for src/workload: every kernel is well-formed and computes its
// expected result; random programs are well-formed, terminating, and
// deterministic per seed.
#include <gtest/gtest.h>

#include <set>

#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "machine/timing.hpp"
#include "sim/interpreter.hpp"
#include "workload/kernels.hpp"
#include "workload/modules.hpp"
#include "workload/random_program.hpp"

namespace tadfa::workload {
namespace {

sim::ExecutionResult run_kernel(const Kernel& k) {
  machine::TimingModel timing;
  sim::Interpreter interp(k.func, timing);
  if (k.init_memory) {
    k.init_memory(interp.memory());
  }
  return interp.run(k.default_args);
}

class KernelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelTest, IsWellFormed) {
  const auto k = make_kernel(GetParam());
  ASSERT_TRUE(k.has_value());
  EXPECT_TRUE(ir::is_well_formed(k->func)) << ir::to_string(k->func);
}

TEST_P(KernelTest, ComputesExpectedResult) {
  const auto k = make_kernel(GetParam());
  ASSERT_TRUE(k.has_value());
  const auto result = run_kernel(*k);
  ASSERT_TRUE(result.ok()) << (result.trap ? *result.trap : "no trap");
  ASSERT_TRUE(k->expected_result.has_value());
  ASSERT_TRUE(result.return_value.has_value());
  EXPECT_EQ(*result.return_value, *k->expected_result);
}

TEST_P(KernelTest, ExecutesEveryReachableBlock) {
  const auto k = make_kernel(GetParam());
  ASSERT_TRUE(k.has_value());
  const auto result = run_kernel(*k);
  ASSERT_TRUE(result.ok());
  // Entry runs exactly once.
  EXPECT_EQ(result.block_visits[0], 1u);
  EXPECT_GT(result.cycles, 0u);
  EXPECT_GE(result.cycles, result.instructions);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelTest,
    ::testing::Values("vecsum", "fir", "matmul", "idct8", "crc32",
                      "stencil3", "poly7", "accumulators", "hot_cold",
                      "counter"),
    [](const auto& info) { return info.param; });

TEST(Kernels, StandardSuiteComplete) {
  const auto suite = standard_suite();
  EXPECT_EQ(suite.size(), 10u);
  for (const Kernel& k : suite) {
    EXPECT_FALSE(k.name.empty());
    EXPECT_TRUE(k.expected_result.has_value()) << k.name;
  }
}

TEST(Kernels, UnknownNameRejected) {
  EXPECT_FALSE(make_kernel("fibonacci").has_value());
}

TEST(Kernels, PressureClassesSpread) {
  // The suite must cover low / medium / high pressure, or the pressure
  // sweep experiment degenerates.
  int low = 0;
  int high = 0;
  for (const Kernel& k : standard_suite()) {
    low += k.pressure == Kernel::Pressure::kLow;
    high += k.pressure == Kernel::Pressure::kHigh;
  }
  EXPECT_GE(low, 2);
  EXPECT_GE(high, 2);
}

TEST(Kernels, ParameterizedSizesWork) {
  for (std::int64_t n : {8, 64, 300}) {
    const Kernel k = make_vecsum(n);
    const auto result = run_kernel(k);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result.return_value, *k.expected_result) << "n=" << n;
  }
}

TEST(Kernels, AccumulatorPressureDial) {
  const Kernel low = make_accumulators(16, 4);
  const Kernel high = make_accumulators(16, 32);
  EXPECT_TRUE(run_kernel(low).ok());
  EXPECT_TRUE(run_kernel(high).ok());
  EXPECT_GT(high.func.reg_count(), low.func.reg_count());
}

// --------------------------------------------------------- random programs ----

class RandomProgramTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProgramTest, WellFormedAndTerminates) {
  RandomProgramConfig cfg;
  cfg.seed = GetParam();
  cfg.target_instructions = 150;
  ir::Function f = random_program(cfg);
  EXPECT_TRUE(ir::is_well_formed(f)) << ir::to_string(f);

  machine::TimingModel timing;
  sim::Interpreter interp(f, timing);
  const auto result = interp.run(std::vector<std::int64_t>{12345});
  EXPECT_TRUE(result.ok()) << (result.trap ? *result.trap : "");
}

TEST_P(RandomProgramTest, DeterministicPerSeed) {
  RandomProgramConfig cfg;
  cfg.seed = GetParam();
  const ir::Function a = random_program(cfg);
  const ir::Function b = random_program(cfg);
  EXPECT_EQ(ir::to_string(a), ir::to_string(b));
}

TEST_P(RandomProgramTest, DifferentSeedsDiffer) {
  RandomProgramConfig cfg;
  cfg.seed = GetParam();
  const ir::Function a = random_program(cfg);
  cfg.seed = GetParam() + 100000;
  const ir::Function b = random_program(cfg);
  EXPECT_NE(ir::to_string(a), ir::to_string(b));
}

TEST_P(RandomProgramTest, SameResultAcrossRuns) {
  RandomProgramConfig cfg;
  cfg.seed = GetParam();
  ir::Function f = random_program(cfg);
  machine::TimingModel timing;
  sim::Interpreter i1(f, timing);
  sim::Interpreter i2(f, timing);
  const auto r1 = i1.run(std::vector<std::int64_t>{42});
  const auto r2 = i2.run(std::vector<std::int64_t>{42});
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1.return_value, *r2.return_value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42, 99,
                                           1234));

TEST(RandomProgram, IrregularityChangesShape) {
  RandomProgramConfig regular;
  regular.seed = 5;
  regular.irregularity = 0.0;
  RandomProgramConfig irregular = regular;
  irregular.irregularity = 1.0;
  const ir::Function a = random_program(regular);
  const ir::Function b = random_program(irregular);
  EXPECT_NE(ir::to_string(a), ir::to_string(b));
}

TEST(RandomProgram, PoolControlsRegisterCount) {
  RandomProgramConfig small;
  small.seed = 9;
  small.value_pool = 4;
  RandomProgramConfig big = small;
  big.value_pool = 24;
  EXPECT_LT(random_program(small).reg_count(),
            random_program(big).reg_count());
}

TEST(RandomProgram, HigherIrregularityStillTerminates) {
  for (double irr : {0.0, 0.5, 1.0}) {
    RandomProgramConfig cfg;
    cfg.seed = 77;
    cfg.irregularity = irr;
    ir::Function f = random_program(cfg);
    machine::TimingModel timing;
    sim::Interpreter interp(f, timing);
    EXPECT_TRUE(interp.run(std::vector<std::int64_t>{7}).ok());
  }
}

// ------------------------------------------------------------ mixed modules ----

TEST(MixedModule, FunctionBodiesAreUniqueByFingerprint) {
  // Regression: the per-index salt reused kernel-variant parameters
  // often enough that large modules contained identical bodies under
  // distinct names, inflating every cache-hit-rate measured on them.
  ModuleConfig cfg;
  cfg.functions = 160;
  cfg.seed = 7;
  const ir::Module module = make_mixed_module(cfg);
  ASSERT_EQ(module.size(), cfg.functions);

  std::set<std::uint64_t> fingerprints;
  std::set<std::string> names;
  for (const ir::Function& f : module.functions()) {
    EXPECT_TRUE(fingerprints.insert(ir::fingerprint(f)).second)
        << "duplicate body: " << f.name();
    EXPECT_TRUE(names.insert(f.name()).second)
        << "duplicate name: " << f.name();
  }
  EXPECT_TRUE(ir::verify(module).empty());
}

TEST(MixedModule, GenerationIsDeterministicInConfig) {
  ModuleConfig cfg;
  cfg.functions = 24;
  cfg.seed = 21;
  const ir::Module a = make_mixed_module(cfg);
  const ir::Module b = make_mixed_module(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(ir::to_string(a.functions()[i]),
              ir::to_string(b.functions()[i]));
  }
  cfg.seed = 22;
  const ir::Module c = make_mixed_module(cfg);
  bool any_differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_differs = any_differs || ir::fingerprint(a.functions()[i]) !=
                                     ir::fingerprint(c.functions()[i]);
  }
  EXPECT_TRUE(any_differs);
}

TEST(RandomProgram, LoopsActuallyLoop) {
  RandomProgramConfig cfg;
  cfg.seed = 3;
  cfg.loop_probability = 0.9;
  ir::Function f = random_program(cfg);
  machine::TimingModel timing;
  sim::Interpreter interp(f, timing);
  const auto result = interp.run(std::vector<std::int64_t>{1});
  ASSERT_TRUE(result.ok());
  // Executed instructions must exceed the static count (loops ran).
  EXPECT_GT(result.instructions, f.instruction_count());
}

}  // namespace
}  // namespace tadfa::workload
