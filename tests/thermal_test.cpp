// Property and unit tests for the RC thermal grid: physical invariants
// (cooling toward the substrate, monotone heating, symmetry), steady-state
// consistency, subdivision behavior, and map statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "support/statistics.hpp"
#include "thermal/grid.hpp"
#include "thermal/map_stats.hpp"

namespace tadfa::thermal {
namespace {

machine::Floorplan small_fp() {
  return machine::Floorplan(machine::RegisterFileConfig::small_config());
}

machine::Floorplan default_fp() {
  return machine::Floorplan(machine::RegisterFileConfig::default_config());
}

std::vector<double> no_power(const machine::Floorplan& fp) {
  return std::vector<double>(fp.num_registers(), 0.0);
}

TEST(ThermalGrid, InitialStateAtSubstrate) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp);
  const ThermalState s = grid.initial_state();
  for (double t : s.node_temps) {
    EXPECT_DOUBLE_EQ(t, grid.substrate_temp());
  }
}

TEST(ThermalGrid, NoPowerStaysAtSubstrate) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp);
  ThermalState s = grid.initial_state();
  grid.step(s, no_power(fp), 1e-3);
  for (double t : s.node_temps) {
    EXPECT_NEAR(t, grid.substrate_temp(), 1e-9);
  }
}

TEST(ThermalGrid, HeatingRaisesPoweredCell) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp);
  ThermalState s = grid.initial_state();
  auto p = no_power(fp);
  p[5] = 1e-3;  // 1 mW on register 5
  grid.step(s, p, 1e-4);
  const auto temps = grid.register_temps(s);
  EXPECT_GT(temps[5], grid.substrate_temp());
  // The powered cell is the hottest.
  for (std::size_t r = 0; r < temps.size(); ++r) {
    EXPECT_LE(temps[r], temps[5]);
  }
}

TEST(ThermalGrid, CoolingIsMonotoneTowardSubstrate) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp);
  ThermalState s = grid.initial_state();
  auto p = no_power(fp);
  p[0] = 2e-3;
  grid.step(s, p, 1e-4);
  const double hot = grid.register_temps(s)[0];

  // Remove power; each step must strictly reduce the excess temperature.
  // Steps are a couple of RC time constants long (the grid settles within
  // ~100 ns at this geometry), so the decay is visible but not complete.
  double prev = hot;
  for (int i = 0; i < 5; ++i) {
    grid.step(s, no_power(fp), 2 * grid.max_stable_dt());
    const double now = grid.register_temps(s)[0];
    EXPECT_LT(now, prev);
    EXPECT_GE(now, grid.substrate_temp() - 1e-9);
    prev = now;
  }
}

TEST(ThermalGrid, TransientApproachesSteadyState) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp);
  auto p = no_power(fp);
  p[5] = 1e-3;
  p[10] = 0.5e-3;

  const ThermalState steady = grid.steady_state(p);
  ThermalState transient = grid.initial_state();
  // 1 ms is far beyond the RC settling time (~ tens of µs).
  grid.step(transient, p, 1e-3);
  for (std::size_t i = 0; i < steady.node_temps.size(); ++i) {
    EXPECT_NEAR(transient.node_temps[i], steady.node_temps[i], 1e-3);
  }
}

TEST(ThermalGrid, SteadyStateLinearInPower) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp);
  auto p = no_power(fp);
  p[3] = 1e-3;
  const ThermalState one = grid.steady_state(p);
  for (auto& w : p) {
    w *= 2;
  }
  const ThermalState two = grid.steady_state(p);
  for (std::size_t i = 0; i < one.node_temps.size(); ++i) {
    const double d1 = one.node_temps[i] - grid.substrate_temp();
    const double d2 = two.node_temps[i] - grid.substrate_temp();
    EXPECT_NEAR(d2, 2 * d1, 1e-6);
  }
}

TEST(ThermalGrid, SymmetricPowerGivesSymmetricMap) {
  const auto fp = small_fp();  // 4x4
  const ThermalGrid grid(fp);
  auto p = no_power(fp);
  // Power the four corners equally.
  p[fp.at(0, 0)] = 1e-3;
  p[fp.at(0, 3)] = 1e-3;
  p[fp.at(3, 0)] = 1e-3;
  p[fp.at(3, 3)] = 1e-3;
  // Gauss-Seidel sweeps in a fixed order, leaving nK-level asymmetry.
  const auto temps = grid.register_temps(grid.steady_state(p));
  EXPECT_NEAR(temps[fp.at(0, 0)], temps[fp.at(0, 3)], 1e-6);
  EXPECT_NEAR(temps[fp.at(0, 0)], temps[fp.at(3, 0)], 1e-6);
  EXPECT_NEAR(temps[fp.at(0, 0)], temps[fp.at(3, 3)], 1e-6);
  EXPECT_NEAR(temps[fp.at(1, 1)], temps[fp.at(2, 2)], 1e-6);
}

TEST(ThermalGrid, ConcentratedPowerHotterPeakThanSpread) {
  // The physical core of Fig. 1: same total power, concentrated vs spread.
  const auto fp = default_fp();
  const ThermalGrid grid(fp);
  const double total = 8e-3;

  auto concentrated = no_power(fp);
  for (int i = 0; i < 8; ++i) {
    concentrated[static_cast<std::size_t>(i)] = total / 8;  // one row corner
  }
  auto spread = no_power(fp);
  for (std::size_t r = 0; r < spread.size(); ++r) {
    spread[r] = total / static_cast<double>(spread.size());
  }

  const auto tc = grid.register_temps(grid.steady_state(concentrated));
  const auto ts = grid.register_temps(grid.steady_state(spread));
  const MapStats sc = compute_map_stats(fp, tc);
  const MapStats ss = compute_map_stats(fp, ts);
  EXPECT_GT(sc.peak_k, ss.peak_k);
  EXPECT_GT(sc.max_gradient_k, ss.max_gradient_k * 2);
  EXPECT_GT(sc.stddev_k, ss.stddev_k);
}

TEST(ThermalGrid, SubdivisionRefinesWithoutChangingTotals) {
  const auto fp = small_fp();
  const ThermalGrid coarse(fp, 1);
  const ThermalGrid fine(fp, 3);
  EXPECT_EQ(coarse.node_count(), 16u);
  EXPECT_EQ(fine.node_count(), 16u * 9u);

  auto p = no_power(fp);
  p[5] = 1e-3;
  const auto tc = coarse.register_temps(coarse.steady_state(p));
  const auto tf = fine.register_temps(fine.steady_state(p));
  // Same physics at cell granularity: temperatures agree to ~15%
  // of the local temperature rise.
  for (std::size_t r = 0; r < tc.size(); ++r) {
    const double rise_c = tc[r] - coarse.substrate_temp();
    const double rise_f = tf[r] - fine.substrate_temp();
    EXPECT_NEAR(rise_f, rise_c, 0.15 * std::max(rise_c, 1e-6) + 1e-6);
  }
}

TEST(ThermalGrid, NodesOfPartitionTheGrid) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp, 2);
  std::vector<int> owner_count(grid.node_count(), 0);
  for (machine::PhysReg r = 0; r < fp.num_registers(); ++r) {
    for (std::size_t n : grid.nodes_of(r)) {
      ++owner_count[n];
      EXPECT_EQ(grid.register_of(n), r);
    }
    EXPECT_EQ(grid.nodes_of(r).size(), 4u);
  }
  for (int c : owner_count) {
    EXPECT_EQ(c, 1);
  }
}

TEST(ThermalGrid, StoredEnergyZeroAtSubstrate) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp);
  EXPECT_DOUBLE_EQ(grid.stored_energy(grid.initial_state()), 0.0);
}

TEST(ThermalGrid, EnergyBalanceDuringHeating) {
  // Injected energy = stored energy + energy leaked to substrate; with a
  // short step and small temperature rise, stored ≈ injected.
  const auto fp = small_fp();
  const ThermalGrid grid(fp);
  ThermalState s = grid.initial_state();
  auto p = no_power(fp);
  p[5] = 1e-3;
  const double dt = grid.max_stable_dt();  // single tiny step
  grid.step(s, p, dt);
  const double injected = 1e-3 * dt;
  const double stored = grid.stored_energy(s);
  EXPECT_GT(stored, 0.0);
  EXPECT_LE(stored, injected * 1.0000001);
  EXPECT_GT(stored, injected * 0.5);  // most of it still stored
}

TEST(ThermalGrid, MaxStableDtPositiveAndScaleDependent) {
  const auto fp = small_fp();
  const ThermalGrid g1(fp, 1);
  const ThermalGrid g2(fp, 2);
  EXPECT_GT(g1.max_stable_dt(), 0.0);
  // Finer grids need smaller steps.
  EXPECT_LT(g2.max_stable_dt(), g1.max_stable_dt());
}

TEST(ThermalGrid, StepWithZeroDtIsIdentity) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp);
  ThermalState s = grid.initial_state();
  s.node_temps[0] += 5;
  const ThermalState before = s;
  grid.step(s, no_power(fp), 0.0);
  EXPECT_EQ(s, before);
}

// --------------------------------------------------------- fast-path tiers ----

std::vector<double> hotspot_power(const machine::Floorplan& fp) {
  auto p = no_power(fp);
  p[0] = 2e-3;
  p[1] = 1e-3;
  p[5] = 1.5e-3;
  return p;
}

std::vector<StepKernel> fast_kernels() {
  std::vector<StepKernel> kernels = {StepKernel::kSimd};
  if (ThermalGrid::kernel_available(StepKernel::kAvx2)) {
    kernels.push_back(StepKernel::kAvx2);
  }
  return kernels;
}

TEST(StepKernel, ScalarTiersAlwaysAvailable) {
  EXPECT_TRUE(ThermalGrid::kernel_available(StepKernel::kReference));
  EXPECT_TRUE(ThermalGrid::kernel_available(StepKernel::kSimd));
}

TEST(StepKernel, UnavailableTierDegradesToSimdNotReference) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp, 1, StepKernel::kAvx2);
  if (ThermalGrid::kernel_available(StepKernel::kAvx2)) {
    EXPECT_EQ(grid.step_kernel(), StepKernel::kAvx2);
  } else {
    // Never silently fall back to the slow reference tier.
    EXPECT_EQ(grid.step_kernel(), StepKernel::kSimd);
  }
}

TEST(StepKernel, FastKernelsTrackReferenceAcrossSubdivisions) {
  const auto fp = small_fp();
  for (unsigned sub : {1u, 2u, 4u}) {
    const ThermalGrid grid(fp, sub, StepKernel::kReference);
    const auto p = hotspot_power(fp);
    const double dt = 16.0 * grid.max_stable_dt();
    ThermalState ref = grid.initial_state();
    for (int i = 0; i < 10; ++i) {
      grid.step_with(StepKernel::kReference, ref, p, dt);
    }
    for (StepKernel kernel : fast_kernels()) {
      ThermalState fast = grid.initial_state();
      for (int i = 0; i < 10; ++i) {
        grid.step_with(kernel, fast, p, dt);
      }
      for (std::size_t i = 0; i < ref.node_temps.size(); ++i) {
        EXPECT_NEAR(fast.node_temps[i], ref.node_temps[i], 1e-6)
            << "sub=" << sub << " kernel=" << to_string(kernel)
            << " node=" << i;
      }
    }
  }
}

TEST(StepKernel, EnergyBalanceHoldsOnEveryKernel) {
  const auto fp = small_fp();
  for (unsigned sub : {1u, 2u, 4u}) {
    const ThermalGrid grid(fp, sub, StepKernel::kReference);
    auto p = no_power(fp);
    p[5] = 1e-3;
    const double dt = grid.max_stable_dt();
    const double injected = 1e-3 * dt;
    for (StepKernel kernel :
         {StepKernel::kReference, StepKernel::kSimd, StepKernel::kAvx2}) {
      if (!ThermalGrid::kernel_available(kernel)) {
        continue;
      }
      ThermalState s = grid.initial_state();
      grid.step_with(kernel, s, p, dt);
      const double stored = grid.stored_energy(s);
      EXPECT_GT(stored, 0.0) << to_string(kernel);
      EXPECT_LE(stored, injected * 1.0000001)
          << "sub=" << sub << " kernel=" << to_string(kernel);
      EXPECT_GT(stored, injected * 0.5)
          << "sub=" << sub << " kernel=" << to_string(kernel);
    }
  }
}

TEST(StepKernel, TransientApproachesSteadyStateOnFastTiers) {
  const auto fp = small_fp();
  for (unsigned sub : {1u, 2u}) {
    for (StepKernel kernel : fast_kernels()) {
      const ThermalGrid grid(fp, sub, kernel);
      const auto p = hotspot_power(fp);
      const ThermalState steady = grid.steady_state(p);
      ThermalState transient = grid.initial_state();
      grid.step(transient, p, 1e-3);  // far beyond the RC settling time
      for (std::size_t i = 0; i < steady.node_temps.size(); ++i) {
        EXPECT_NEAR(transient.node_temps[i], steady.node_temps[i], 1e-3)
            << "sub=" << sub << " kernel=" << to_string(kernel);
      }
    }
  }
}

TEST(StepKernel, ZeroDtIsIdentityOnEveryKernel) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp);
  for (StepKernel kernel :
       {StepKernel::kReference, StepKernel::kSimd, StepKernel::kAvx2}) {
    if (!ThermalGrid::kernel_available(kernel)) {
      continue;
    }
    ThermalState s = grid.initial_state();
    s.node_temps[0] += 5;
    const ThermalState before = s;
    grid.step_with(kernel, s, no_power(fp), 0.0);
    EXPECT_EQ(s, before) << to_string(kernel);
  }
}

TEST(SteadyState, ActiveSetMatchesFullSweeps) {
  const auto fp = small_fp();
  for (unsigned sub : {1u, 2u}) {
    const ThermalGrid ref_grid(fp, sub, StepKernel::kReference);
    const ThermalGrid fast_grid(fp, sub, StepKernel::kSimd);
    const auto p = hotspot_power(fp);
    SteadyStateOptions opts;
    SteadyStateInfo ref_info;
    const ThermalState ref = ref_grid.steady_state(p, opts, &ref_info);
    SteadyStateInfo fast_info;
    const ThermalState fast = fast_grid.steady_state(p, opts, &fast_info);
    EXPECT_TRUE(ref_info.converged);
    EXPECT_TRUE(fast_info.converged);
    EXPECT_GT(fast_info.relaxations, 0u);
    for (std::size_t i = 0; i < ref.node_temps.size(); ++i) {
      EXPECT_NEAR(fast.node_temps[i], ref.node_temps[i], 1e-5)
          << "sub=" << sub << " node=" << i;
    }
  }
}

TEST(SteadyState, WarmStartConvergesFasterToTheSameAnswer) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp, 2, StepKernel::kSimd);
  const auto p = hotspot_power(fp);
  SteadyStateOptions opts;
  const ThermalState base = grid.steady_state(p, opts, nullptr);

  auto bumped = p;
  for (double& w : bumped) {
    w *= 1.05;
  }
  SteadyStateInfo cold_info;
  const ThermalState cold = grid.steady_state(bumped, opts, &cold_info);
  SteadyStateOptions warm_opts;
  warm_opts.warm_start = &base;
  SteadyStateInfo warm_info;
  const ThermalState warm = grid.steady_state(bumped, warm_opts, &warm_info);

  EXPECT_TRUE(cold_info.converged);
  EXPECT_TRUE(warm_info.converged);
  EXPECT_LT(warm_info.sweeps, cold_info.sweeps);
  for (std::size_t i = 0; i < cold.node_temps.size(); ++i) {
    EXPECT_NEAR(warm.node_temps[i], cold.node_temps[i], 1e-5);
  }
}

TEST(Batch, StepBatchMatchesSequentialReferenceBitForBit) {
  const auto fp = small_fp();
  // A fast-tier grid on purpose: step_batch promises reference math
  // regardless of the grid's configured kernel.
  const ThermalGrid grid(fp, 2, StepKernel::kSimd);
  std::vector<std::vector<double>> powers;
  powers.push_back(hotspot_power(fp));
  powers.push_back(no_power(fp));
  auto third = no_power(fp);
  third[7] = 3e-3;
  powers.push_back(third);

  const double dt = 8.0 * grid.max_stable_dt();
  std::vector<ThermalState> batch(3, grid.initial_state());
  std::vector<ThermalState> seq(3, grid.initial_state());
  for (int call = 0; call < 3; ++call) {
    grid.step_batch(batch, powers, dt);
    for (std::size_t lane = 0; lane < seq.size(); ++lane) {
      grid.step_with(StepKernel::kReference, seq[lane], powers[lane], dt);
    }
  }
  for (std::size_t lane = 0; lane < seq.size(); ++lane) {
    EXPECT_EQ(batch[lane], seq[lane]) << "lane=" << lane;
  }
}

TEST(Batch, SteadyStateBatchMatchesSequentialReferenceBitForBit) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp, 2, StepKernel::kSimd);
  const ThermalGrid ref_grid(fp, 2, StepKernel::kReference);
  std::vector<std::vector<double>> powers;
  powers.push_back(hotspot_power(fp));
  auto second = no_power(fp);
  second[3] = 2e-3;
  powers.push_back(second);

  std::vector<SteadyStateInfo> infos;
  const auto batch = grid.steady_state_batch(powers, 1e-9, nullptr, &infos);
  ASSERT_EQ(batch.size(), powers.size());
  ASSERT_EQ(infos.size(), powers.size());
  SteadyStateOptions opts;
  for (std::size_t lane = 0; lane < powers.size(); ++lane) {
    SteadyStateInfo seq_info;
    const ThermalState seq =
        ref_grid.steady_state(powers[lane], opts, &seq_info);
    EXPECT_EQ(batch[lane], seq) << "lane=" << lane;
    EXPECT_EQ(infos[lane].sweeps, seq_info.sweeps) << "lane=" << lane;
    EXPECT_TRUE(infos[lane].converged) << "lane=" << lane;
  }
}

TEST(ConfigDigest, FoldsKernelTierOnlyWhenNotReference) {
  const auto fp = small_fp();
  const ThermalGrid ref_a(fp, 1, StepKernel::kReference);
  const ThermalGrid ref_b(fp, 1, StepKernel::kReference);
  const ThermalGrid simd_a(fp, 1, StepKernel::kSimd);
  const ThermalGrid simd_b(fp, 1, StepKernel::kSimd);
  EXPECT_EQ(ref_a.config_digest(), ref_b.config_digest());
  EXPECT_EQ(simd_a.config_digest(), simd_b.config_digest());
  EXPECT_NE(ref_a.config_digest(), simd_a.config_digest());
  if (ThermalGrid::kernel_available(StepKernel::kAvx2)) {
    const ThermalGrid avx(fp, 1, StepKernel::kAvx2);
    EXPECT_NE(avx.config_digest(), ref_a.config_digest());
    EXPECT_NE(avx.config_digest(), simd_a.config_digest());
  }
}

// -------------------------------------------------------------- map stats ----

TEST(MapStats, UniformMapHasNoGradient) {
  const auto fp = small_fp();
  const std::vector<double> temps(fp.num_registers(), 350.0);
  const MapStats s = compute_map_stats(fp, temps);
  EXPECT_DOUBLE_EQ(s.peak_k, 350.0);
  EXPECT_DOUBLE_EQ(s.range_k, 0.0);
  EXPECT_DOUBLE_EQ(s.max_gradient_k, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev_k, 0.0);
}

TEST(MapStats, GradientIsNeighborDelta) {
  const auto fp = small_fp();
  std::vector<double> temps(fp.num_registers(), 340.0);
  temps[fp.at(1, 1)] = 345.0;  // spike: 5 K above its 4 neighbors
  const MapStats s = compute_map_stats(fp, temps);
  EXPECT_DOUBLE_EQ(s.max_gradient_k, 5.0);
  EXPECT_DOUBLE_EQ(s.peak_k, 345.0);
  EXPECT_DOUBLE_EQ(s.range_k, 5.0);
}

TEST(MapStats, HotspotsAboveSigmaThreshold) {
  const auto fp = small_fp();
  std::vector<double> temps(fp.num_registers(), 340.0);
  temps[3] = 360.0;
  const auto hs = hotspots(fp, temps, 1.5);
  ASSERT_EQ(hs.size(), 1u);
  EXPECT_EQ(hs[0], 3u);
}

TEST(MapStats, NoHotspotsOnFlatMap) {
  const auto fp = small_fp();
  const std::vector<double> temps(fp.num_registers(), 340.0);
  EXPECT_TRUE(hotspots(fp, temps).empty());
}

}  // namespace
}  // namespace tadfa::thermal
