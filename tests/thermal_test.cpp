// Property and unit tests for the RC thermal grid: physical invariants
// (cooling toward the substrate, monotone heating, symmetry), steady-state
// consistency, subdivision behavior, and map statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "support/statistics.hpp"
#include "thermal/grid.hpp"
#include "thermal/map_stats.hpp"

namespace tadfa::thermal {
namespace {

machine::Floorplan small_fp() {
  return machine::Floorplan(machine::RegisterFileConfig::small_config());
}

machine::Floorplan default_fp() {
  return machine::Floorplan(machine::RegisterFileConfig::default_config());
}

std::vector<double> no_power(const machine::Floorplan& fp) {
  return std::vector<double>(fp.num_registers(), 0.0);
}

TEST(ThermalGrid, InitialStateAtSubstrate) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp);
  const ThermalState s = grid.initial_state();
  for (double t : s.node_temps) {
    EXPECT_DOUBLE_EQ(t, grid.substrate_temp());
  }
}

TEST(ThermalGrid, NoPowerStaysAtSubstrate) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp);
  ThermalState s = grid.initial_state();
  grid.step(s, no_power(fp), 1e-3);
  for (double t : s.node_temps) {
    EXPECT_NEAR(t, grid.substrate_temp(), 1e-9);
  }
}

TEST(ThermalGrid, HeatingRaisesPoweredCell) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp);
  ThermalState s = grid.initial_state();
  auto p = no_power(fp);
  p[5] = 1e-3;  // 1 mW on register 5
  grid.step(s, p, 1e-4);
  const auto temps = grid.register_temps(s);
  EXPECT_GT(temps[5], grid.substrate_temp());
  // The powered cell is the hottest.
  for (std::size_t r = 0; r < temps.size(); ++r) {
    EXPECT_LE(temps[r], temps[5]);
  }
}

TEST(ThermalGrid, CoolingIsMonotoneTowardSubstrate) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp);
  ThermalState s = grid.initial_state();
  auto p = no_power(fp);
  p[0] = 2e-3;
  grid.step(s, p, 1e-4);
  const double hot = grid.register_temps(s)[0];

  // Remove power; each step must strictly reduce the excess temperature.
  // Steps are a couple of RC time constants long (the grid settles within
  // ~100 ns at this geometry), so the decay is visible but not complete.
  double prev = hot;
  for (int i = 0; i < 5; ++i) {
    grid.step(s, no_power(fp), 2 * grid.max_stable_dt());
    const double now = grid.register_temps(s)[0];
    EXPECT_LT(now, prev);
    EXPECT_GE(now, grid.substrate_temp() - 1e-9);
    prev = now;
  }
}

TEST(ThermalGrid, TransientApproachesSteadyState) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp);
  auto p = no_power(fp);
  p[5] = 1e-3;
  p[10] = 0.5e-3;

  const ThermalState steady = grid.steady_state(p);
  ThermalState transient = grid.initial_state();
  // 1 ms is far beyond the RC settling time (~ tens of µs).
  grid.step(transient, p, 1e-3);
  for (std::size_t i = 0; i < steady.node_temps.size(); ++i) {
    EXPECT_NEAR(transient.node_temps[i], steady.node_temps[i], 1e-3);
  }
}

TEST(ThermalGrid, SteadyStateLinearInPower) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp);
  auto p = no_power(fp);
  p[3] = 1e-3;
  const ThermalState one = grid.steady_state(p);
  for (auto& w : p) {
    w *= 2;
  }
  const ThermalState two = grid.steady_state(p);
  for (std::size_t i = 0; i < one.node_temps.size(); ++i) {
    const double d1 = one.node_temps[i] - grid.substrate_temp();
    const double d2 = two.node_temps[i] - grid.substrate_temp();
    EXPECT_NEAR(d2, 2 * d1, 1e-6);
  }
}

TEST(ThermalGrid, SymmetricPowerGivesSymmetricMap) {
  const auto fp = small_fp();  // 4x4
  const ThermalGrid grid(fp);
  auto p = no_power(fp);
  // Power the four corners equally.
  p[fp.at(0, 0)] = 1e-3;
  p[fp.at(0, 3)] = 1e-3;
  p[fp.at(3, 0)] = 1e-3;
  p[fp.at(3, 3)] = 1e-3;
  // Gauss-Seidel sweeps in a fixed order, leaving nK-level asymmetry.
  const auto temps = grid.register_temps(grid.steady_state(p));
  EXPECT_NEAR(temps[fp.at(0, 0)], temps[fp.at(0, 3)], 1e-6);
  EXPECT_NEAR(temps[fp.at(0, 0)], temps[fp.at(3, 0)], 1e-6);
  EXPECT_NEAR(temps[fp.at(0, 0)], temps[fp.at(3, 3)], 1e-6);
  EXPECT_NEAR(temps[fp.at(1, 1)], temps[fp.at(2, 2)], 1e-6);
}

TEST(ThermalGrid, ConcentratedPowerHotterPeakThanSpread) {
  // The physical core of Fig. 1: same total power, concentrated vs spread.
  const auto fp = default_fp();
  const ThermalGrid grid(fp);
  const double total = 8e-3;

  auto concentrated = no_power(fp);
  for (int i = 0; i < 8; ++i) {
    concentrated[static_cast<std::size_t>(i)] = total / 8;  // one row corner
  }
  auto spread = no_power(fp);
  for (std::size_t r = 0; r < spread.size(); ++r) {
    spread[r] = total / static_cast<double>(spread.size());
  }

  const auto tc = grid.register_temps(grid.steady_state(concentrated));
  const auto ts = grid.register_temps(grid.steady_state(spread));
  const MapStats sc = compute_map_stats(fp, tc);
  const MapStats ss = compute_map_stats(fp, ts);
  EXPECT_GT(sc.peak_k, ss.peak_k);
  EXPECT_GT(sc.max_gradient_k, ss.max_gradient_k * 2);
  EXPECT_GT(sc.stddev_k, ss.stddev_k);
}

TEST(ThermalGrid, SubdivisionRefinesWithoutChangingTotals) {
  const auto fp = small_fp();
  const ThermalGrid coarse(fp, 1);
  const ThermalGrid fine(fp, 3);
  EXPECT_EQ(coarse.node_count(), 16u);
  EXPECT_EQ(fine.node_count(), 16u * 9u);

  auto p = no_power(fp);
  p[5] = 1e-3;
  const auto tc = coarse.register_temps(coarse.steady_state(p));
  const auto tf = fine.register_temps(fine.steady_state(p));
  // Same physics at cell granularity: temperatures agree to ~15%
  // of the local temperature rise.
  for (std::size_t r = 0; r < tc.size(); ++r) {
    const double rise_c = tc[r] - coarse.substrate_temp();
    const double rise_f = tf[r] - fine.substrate_temp();
    EXPECT_NEAR(rise_f, rise_c, 0.15 * std::max(rise_c, 1e-6) + 1e-6);
  }
}

TEST(ThermalGrid, NodesOfPartitionTheGrid) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp, 2);
  std::vector<int> owner_count(grid.node_count(), 0);
  for (machine::PhysReg r = 0; r < fp.num_registers(); ++r) {
    for (std::size_t n : grid.nodes_of(r)) {
      ++owner_count[n];
      EXPECT_EQ(grid.register_of(n), r);
    }
    EXPECT_EQ(grid.nodes_of(r).size(), 4u);
  }
  for (int c : owner_count) {
    EXPECT_EQ(c, 1);
  }
}

TEST(ThermalGrid, StoredEnergyZeroAtSubstrate) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp);
  EXPECT_DOUBLE_EQ(grid.stored_energy(grid.initial_state()), 0.0);
}

TEST(ThermalGrid, EnergyBalanceDuringHeating) {
  // Injected energy = stored energy + energy leaked to substrate; with a
  // short step and small temperature rise, stored ≈ injected.
  const auto fp = small_fp();
  const ThermalGrid grid(fp);
  ThermalState s = grid.initial_state();
  auto p = no_power(fp);
  p[5] = 1e-3;
  const double dt = grid.max_stable_dt();  // single tiny step
  grid.step(s, p, dt);
  const double injected = 1e-3 * dt;
  const double stored = grid.stored_energy(s);
  EXPECT_GT(stored, 0.0);
  EXPECT_LE(stored, injected * 1.0000001);
  EXPECT_GT(stored, injected * 0.5);  // most of it still stored
}

TEST(ThermalGrid, MaxStableDtPositiveAndScaleDependent) {
  const auto fp = small_fp();
  const ThermalGrid g1(fp, 1);
  const ThermalGrid g2(fp, 2);
  EXPECT_GT(g1.max_stable_dt(), 0.0);
  // Finer grids need smaller steps.
  EXPECT_LT(g2.max_stable_dt(), g1.max_stable_dt());
}

TEST(ThermalGrid, StepWithZeroDtIsIdentity) {
  const auto fp = small_fp();
  const ThermalGrid grid(fp);
  ThermalState s = grid.initial_state();
  s.node_temps[0] += 5;
  const ThermalState before = s;
  grid.step(s, no_power(fp), 0.0);
  EXPECT_EQ(s, before);
}

// -------------------------------------------------------------- map stats ----

TEST(MapStats, UniformMapHasNoGradient) {
  const auto fp = small_fp();
  const std::vector<double> temps(fp.num_registers(), 350.0);
  const MapStats s = compute_map_stats(fp, temps);
  EXPECT_DOUBLE_EQ(s.peak_k, 350.0);
  EXPECT_DOUBLE_EQ(s.range_k, 0.0);
  EXPECT_DOUBLE_EQ(s.max_gradient_k, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev_k, 0.0);
}

TEST(MapStats, GradientIsNeighborDelta) {
  const auto fp = small_fp();
  std::vector<double> temps(fp.num_registers(), 340.0);
  temps[fp.at(1, 1)] = 345.0;  // spike: 5 K above its 4 neighbors
  const MapStats s = compute_map_stats(fp, temps);
  EXPECT_DOUBLE_EQ(s.max_gradient_k, 5.0);
  EXPECT_DOUBLE_EQ(s.peak_k, 345.0);
  EXPECT_DOUBLE_EQ(s.range_k, 5.0);
}

TEST(MapStats, HotspotsAboveSigmaThreshold) {
  const auto fp = small_fp();
  std::vector<double> temps(fp.num_registers(), 340.0);
  temps[3] = 360.0;
  const auto hs = hotspots(fp, temps, 1.5);
  ASSERT_EQ(hs.size(), 1u);
  EXPECT_EQ(hs[0], 3u);
}

TEST(MapStats, NoHotspotsOnFlatMap) {
  const auto fp = small_fp();
  const std::vector<double> temps(fp.num_registers(), 340.0);
  EXPECT_TRUE(hotspots(fp, temps).empty());
}

}  // namespace
}  // namespace tadfa::thermal
