// Unit tests for src/support: RNG, statistics, bitset, tables, heat maps,
// string utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "support/bitset.hpp"
#include "support/heatmap.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"

namespace tadfa {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(rng.below(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(13);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(19);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(29);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(37);
  Rng child = a.split();
  EXPECT_NE(a.next(), child.next());
}

// ----------------------------------------------------------- statistics ----

TEST(Statistics, MeanAndVariance) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(stats::variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(stats::stddev(xs), std::sqrt(1.25));
}

TEST(Statistics, MinMaxRange) {
  const std::vector<double> xs{3, -1, 4, 1, 5};
  EXPECT_DOUBLE_EQ(stats::min(xs), -1);
  EXPECT_DOUBLE_EQ(stats::max(xs), 5);
  EXPECT_DOUBLE_EQ(stats::range(xs), 6);
}

TEST(Statistics, PercentileInterpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(stats::median(xs), 25);
}

TEST(Statistics, RmseAndMae) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{1, 2, 7};
  EXPECT_NEAR(stats::rmse(a, b), 4.0 / std::sqrt(3.0), 1e-12);
  EXPECT_NEAR(stats::mae(a, b), 4.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats::max_abs_error(a, b), 4.0);
}

TEST(Statistics, PearsonPerfectCorrelation) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{2, 4, 6, 8};
  EXPECT_NEAR(stats::pearson(a, b), 1.0, 1e-12);
  const std::vector<double> c{8, 6, 4, 2};
  EXPECT_NEAR(stats::pearson(a, c), -1.0, 1e-12);
}

TEST(Statistics, PearsonConstantIsZero) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{5, 5, 5};
  EXPECT_DOUBLE_EQ(stats::pearson(a, b), 0.0);
}

TEST(Statistics, Jaccard) {
  EXPECT_DOUBLE_EQ(stats::jaccard({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(stats::jaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(stats::jaccard({1}, {}), 0.0);
}

TEST(Statistics, TopKIndices) {
  const std::vector<double> xs{5, 1, 9, 3};
  const auto top = stats::top_k_indices(xs, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 2u);
  EXPECT_EQ(top[1], 0u);
}

TEST(Statistics, TopKClampsToSize) {
  const std::vector<double> xs{1, 2};
  EXPECT_EQ(stats::top_k_indices(xs, 10).size(), 2u);
}

TEST(Statistics, AccumulatorMatchesBatch) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  stats::Accumulator acc;
  for (double x : xs) {
    acc.add(x);
  }
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_NEAR(acc.mean(), stats::mean(xs), 1e-12);
  EXPECT_NEAR(acc.variance(), stats::variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2);
  EXPECT_DOUBLE_EQ(acc.max(), 9);
}

// -------------------------------------------------------------- bitset ----

TEST(DenseBitSet, SetTestReset) {
  DenseBitSet s(100);
  EXPECT_FALSE(s.test(63));
  s.set(63);
  s.set(64);
  s.set(99);
  EXPECT_TRUE(s.test(63));
  EXPECT_TRUE(s.test(64));
  EXPECT_TRUE(s.test(99));
  s.reset(64);
  EXPECT_FALSE(s.test(64));
  EXPECT_EQ(s.count(), 2u);
}

TEST(DenseBitSet, MergeReportsChange) {
  DenseBitSet a(10);
  DenseBitSet b(10);
  b.set(3);
  EXPECT_TRUE(a.merge(b));
  EXPECT_FALSE(a.merge(b));
  EXPECT_TRUE(a.test(3));
}

TEST(DenseBitSet, SubtractAndIntersect) {
  DenseBitSet a(10);
  DenseBitSet b(10);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  DenseBitSet c = a;
  c.subtract(b);
  EXPECT_TRUE(c.test(1));
  EXPECT_FALSE(c.test(2));
  a.intersect(b);
  EXPECT_FALSE(a.test(1));
  EXPECT_TRUE(a.test(2));
}

TEST(DenseBitSet, ToIndicesSortedAscending) {
  DenseBitSet s(130);
  s.set(0);
  s.set(65);
  s.set(129);
  const auto idx = s.to_indices();
  EXPECT_EQ(idx, (std::vector<std::size_t>{0, 65, 129}));
}

TEST(DenseBitSet, AnyAndClear) {
  DenseBitSet s(5);
  EXPECT_FALSE(s.any());
  s.set(4);
  EXPECT_TRUE(s.any());
  s.clear();
  EXPECT_FALSE(s.any());
}

TEST(DenseBitSet, EqualityComparesContent) {
  DenseBitSet a(10);
  DenseBitSet b(10);
  EXPECT_EQ(a, b);
  a.set(5);
  EXPECT_NE(a, b);
  b.set(5);
  EXPECT_EQ(a, b);
}

// --------------------------------------------------------------- table ----

TEST(TextTable, AlignsColumns) {
  TextTable t("demo");
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
}

TEST(TextTable, CsvQuotesSpecials) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(os.str().find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

// -------------------------------------------------------------- heatmap ----

TEST(Heatmap, RendersExpectedShape) {
  const std::vector<double> v{0, 1, 2, 3, 4, 5};
  std::ostringstream os;
  HeatmapOptions opt;
  opt.legend = false;
  opt.glyph_width = 1;
  render_heatmap(os, v, 2, 3, opt);
  const auto lines = split(os.str(), '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0].size(), 3u);
  EXPECT_EQ(lines[1].size(), 3u);
}

TEST(Heatmap, HotterValuesGetLaterRampGlyphs) {
  const std::vector<double> v{0.0, 10.0};
  std::ostringstream os;
  HeatmapOptions opt;
  opt.legend = false;
  opt.glyph_width = 1;
  opt.ramp = "ab";
  render_heatmap(os, v, 1, 2, opt);
  EXPECT_EQ(os.str(), "ab\n");
}

TEST(Heatmap, FixedScaleClampsOutliers) {
  const std::vector<double> v{-100.0, 200.0};
  std::ostringstream os;
  HeatmapOptions opt;
  opt.legend = false;
  opt.glyph_width = 1;
  opt.ramp = "ab";
  opt.scale_min = 0.0;
  opt.scale_max = 1.0;
  render_heatmap(os, v, 1, 2, opt);
  EXPECT_EQ(os.str(), "ab\n");
}

TEST(Heatmap, PairRendersSideBySide) {
  const std::vector<double> l{0, 1};
  const std::vector<double> r{1, 0};
  std::ostringstream os;
  HeatmapOptions opt;
  opt.legend = false;
  render_heatmap_pair(os, l, r, 1, 2, "left", "right", opt);
  const std::string out = os.str();
  EXPECT_NE(out.find("left"), std::string::npos);
  EXPECT_NE(out.find("right"), std::string::npos);
}

// ------------------------------------------------------------- strings ----

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(Strings, SplitWhitespaceDropsEmpties) {
  EXPECT_EQ(split_whitespace("  a \t b  "),
            (std::vector<std::string>{"a", "b"}));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("func @f", "func"));
  EXPECT_FALSE(starts_with("fun", "func"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, ParseIntStrict) {
  long long v = 0;
  EXPECT_TRUE(parse_int("-42", v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(parse_int("42x", v));
  EXPECT_FALSE(parse_int("", v));
}

TEST(Strings, ParseDoubleStrict) {
  double v = 0;
  EXPECT_TRUE(parse_double("2.5", v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_FALSE(parse_double("2.5z", v));
}

}  // namespace
}  // namespace tadfa
