// Tests for src/regalloc: the six assignment policies, spill rewriting,
// both allocators, and the legality verifier — including parameterized
// property sweeps (every policy × random programs must produce a legal
// allocation; interfering registers never share a cell).
#include <gtest/gtest.h>

#include <set>

#include "dataflow/liveness.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "regalloc/graph_coloring.hpp"
#include "regalloc/linear_scan.hpp"
#include "regalloc/policy.hpp"
#include "regalloc/spill.hpp"
#include "regalloc/verify.hpp"
#include "workload/kernels.hpp"
#include "workload/random_program.hpp"

namespace tadfa::regalloc {
namespace {

machine::Floorplan small_fp() {
  return machine::Floorplan(machine::RegisterFileConfig::small_config());
}

machine::Floorplan default_fp() {
  return machine::Floorplan(machine::RegisterFileConfig::default_config());
}

ir::Function parse(const std::string& text) {
  auto f = ir::parse_function(text);
  EXPECT_TRUE(f.has_value());
  return std::move(*f);
}

// ---------------------------------------------------------------- policies ----

TEST(Policies, FirstFreePicksLowest) {
  FirstFreePolicy p;
  PolicyContext ctx;
  const std::vector<machine::PhysReg> cands{3, 7, 9};
  EXPECT_EQ(p.choose(cands, ctx), 3u);
}

TEST(Policies, RandomIsSeedDeterministic) {
  const std::vector<machine::PhysReg> cands{0, 1, 2, 3, 4, 5, 6, 7};
  PolicyContext ctx;
  RandomPolicy a(42);
  RandomPolicy b(42);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.choose(cands, ctx), b.choose(cands, ctx));
  }
}

TEST(Policies, RandomResetRestartsSequence) {
  const std::vector<machine::PhysReg> cands{0, 1, 2, 3, 4, 5, 6, 7};
  PolicyContext ctx;
  RandomPolicy p(7);
  std::vector<machine::PhysReg> first;
  for (int i = 0; i < 5; ++i) {
    first.push_back(p.choose(cands, ctx));
  }
  p.reset();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(p.choose(cands, ctx), first[static_cast<std::size_t>(i)]);
  }
}

TEST(Policies, ChessboardPrefersEvenParity) {
  const auto fp = default_fp();
  ChessboardPolicy p;
  PolicyContext ctx;
  ctx.floorplan = &fp;
  // Candidates 1 (parity odd) and 8 (parity odd) and 9 (parity even).
  const std::vector<machine::PhysReg> cands{1, 8, 9};
  EXPECT_EQ(p.choose(cands, ctx), 9u);
}

TEST(Policies, ChessboardFallsBackUnderPressure) {
  const auto fp = default_fp();
  ChessboardPolicy p;
  PolicyContext ctx;
  ctx.floorplan = &fp;
  const std::vector<machine::PhysReg> odd_only{1, 3};
  EXPECT_EQ(p.choose(odd_only, ctx), 1u);
}

TEST(Policies, RoundRobinRotates) {
  RoundRobinPolicy p;
  PolicyContext ctx;
  const std::vector<machine::PhysReg> cands{0, 1, 2};
  EXPECT_EQ(p.choose(cands, ctx), 1u);  // last_=0 -> first >0
  EXPECT_EQ(p.choose(cands, ctx), 2u);
  EXPECT_EQ(p.choose(cands, ctx), 0u);  // wraps
  EXPECT_EQ(p.choose(cands, ctx), 1u);
}

TEST(Policies, FarthestSpreadAvoidsOccupied) {
  const auto fp = default_fp();
  FarthestSpreadPolicy p;
  PolicyContext ctx;
  ctx.floorplan = &fp;
  std::vector<std::uint32_t> usage(64, 0);
  usage[0] = 1;  // corner (0,0) occupied
  ctx.usage_counts = &usage;
  const std::vector<machine::PhysReg> cands{1, 63};
  EXPECT_EQ(p.choose(cands, ctx), 63u);  // opposite corner
}

TEST(Policies, CoolestFirstPicksMinScore) {
  CoolestFirstPolicy p;
  PolicyContext ctx;
  std::vector<double> heat(8, 350.0);
  heat[5] = 340.0;
  ctx.heat_scores = &heat;
  const std::vector<machine::PhysReg> cands{2, 5, 7};
  EXPECT_EQ(p.choose(cands, ctx), 5u);
}

TEST(Policies, CoolestFirstFallsBackWithoutScores) {
  CoolestFirstPolicy p;
  PolicyContext ctx;
  const std::vector<machine::PhysReg> cands{4, 6};
  EXPECT_EQ(p.choose(cands, ctx), 4u);
}

TEST(Policies, FactoryKnowsAllNames) {
  for (const std::string& name : all_policy_names()) {
    const auto p = make_policy(name);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_EQ(p->name(), name);
  }
  EXPECT_EQ(make_policy("nonsense"), nullptr);
}

// ------------------------------------------------------------------ spill ----

TEST(Spill, UseGetsReload) {
  ir::Function f = parse(
      "func @s() {\n"
      "entry:\n"
      "  %0 = const 7\n"
      "  %1 = add %0, %0\n"
      "  ret %1\n"
      "}\n");
  const SpillResult r = spill_registers(f, {0});
  EXPECT_TRUE(ir::is_well_formed(f));
  // const gets a store after it; add gets one reload (shared by both
  // operands).
  EXPECT_EQ(r.inserted_instructions, 2u);
  const auto& insts = f.block(0).instructions();
  EXPECT_EQ(insts[1].opcode(), ir::Opcode::kStore);
  EXPECT_EQ(insts[2].opcode(), ir::Opcode::kLoad);
}

TEST(Spill, SpilledParamStoredAtEntry) {
  ir::Function f = parse(
      "func @p(%0) {\n"
      "entry:\n"
      "  %1 = add %0, 1\n"
      "  ret %1\n"
      "}\n");
  const SpillResult r = spill_registers(f, {0});
  EXPECT_TRUE(ir::is_well_formed(f));
  const auto& insts = f.block(0).instructions();
  EXPECT_EQ(insts[0].opcode(), ir::Opcode::kStore);
  EXPECT_GE(r.inserted_instructions, 2u);
}

TEST(Spill, EmptyListIsNoop) {
  ir::Function f = parse("func @n() {\nentry:\n  ret\n}\n");
  const SpillResult r = spill_registers(f, {});
  EXPECT_EQ(r.inserted_instructions, 0u);
  EXPECT_EQ(f.instruction_count(), 1u);
}

TEST(Spill, SpilledRegisterNoLongerLiveAcrossBlocks) {
  ir::Function f = parse(
      "func @x(%0) {\n"
      "entry:\n"
      "  %1 = const 5\n"
      "  jmp next\n"
      "next:\n"
      "  %2 = add %1, %0\n"
      "  ret %2\n"
      "}\n");
  spill_registers(f, {1});
  const dataflow::Cfg cfg(f);
  const dataflow::Liveness lv(cfg);
  EXPECT_FALSE(lv.live_in(1).test(1));  // now memory-resident
}

// -------------------------------------------------------------- allocators ----

TEST(LinearScan, SmallFunctionNoSpills) {
  const auto fp = default_fp();
  FirstFreePolicy policy;
  LinearScanAllocator alloc(fp, policy);
  workload::Kernel k = workload::make_vecsum(16);
  const AllocationResult r = alloc.allocate(k.func);
  EXPECT_EQ(r.spilled_regs, 0u);
  EXPECT_EQ(r.rounds, 1);
  EXPECT_TRUE(allocation_is_legal(r.func, r.assignment));
}

TEST(LinearScan, FirstFreeUsesSmallRegisterSet) {
  // Sec. 2: "the same small set of registers is chosen again and again".
  const auto fp = default_fp();
  FirstFreePolicy policy;
  LinearScanAllocator alloc(fp, policy);
  workload::Kernel k = workload::make_crc32(8);
  const AllocationResult r = alloc.allocate(k.func);
  const auto used = r.assignment.used_physical();
  EXPECT_LE(used.size(), 12u);
  // All used registers sit at the low end of the ordered list.
  EXPECT_LT(used.back(), 16u);
}

TEST(LinearScan, SpillsUnderPressure) {
  const auto fp = small_fp();  // 16 registers
  FirstFreePolicy policy;
  LinearScanAllocator alloc(fp, policy);
  workload::Kernel k = workload::make_accumulators(8, 24);  // 24+ live
  const AllocationResult r = alloc.allocate(k.func);
  EXPECT_GT(r.spilled_regs, 0u);
  EXPECT_GT(r.rounds, 1);
  EXPECT_TRUE(ir::is_well_formed(r.func));
  EXPECT_TRUE(allocation_is_legal(r.func, r.assignment));
}

TEST(GraphColoring, SmallFunctionLegal) {
  const auto fp = default_fp();
  FirstFreePolicy policy;
  GraphColoringAllocator alloc(fp, policy);
  workload::Kernel k = workload::make_fir(32, 8);
  const AllocationResult r = alloc.allocate(k.func);
  EXPECT_TRUE(allocation_is_legal(r.func, r.assignment));
}

TEST(GraphColoring, SpillsUnderPressure) {
  const auto fp = small_fp();
  FirstFreePolicy policy;
  GraphColoringAllocator alloc(fp, policy);
  workload::Kernel k = workload::make_accumulators(8, 24);
  const AllocationResult r = alloc.allocate(k.func);
  EXPECT_GT(r.spilled_regs, 0u);
  EXPECT_TRUE(allocation_is_legal(r.func, r.assignment));
}

TEST(Verify, DetectsIllegalSharing) {
  ir::Function f = parse(
      "func @bad() {\n"
      "entry:\n"
      "  %0 = const 1\n"
      "  %1 = const 2\n"
      "  %2 = add %0, %1\n"
      "  ret %2\n"
      "}\n");
  machine::RegisterAssignment a(3);
  a.assign(0, 0);
  a.assign(1, 0);  // interferes with %0!
  a.assign(2, 1);
  EXPECT_FALSE(allocation_is_legal(f, a));
  const auto issues = verify_allocation(f, a);
  ASSERT_FALSE(issues.empty());
}

TEST(Verify, DetectsMissingAssignment) {
  ir::Function f = parse("func @m(%0) {\nentry:\n  ret %0\n}\n");
  machine::RegisterAssignment a(1);
  EXPECT_FALSE(allocation_is_legal(f, a));
}

// ------------------------------------------------ property: policy sweeps ----

struct SweepParam {
  std::string policy;
  std::uint64_t seed;
};

class PolicySweepTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(PolicySweepTest, LinearScanAlwaysLegal) {
  const auto [policy_name, seed] = GetParam();
  const auto fp = default_fp();
  auto policy = make_policy(policy_name, seed);
  ASSERT_NE(policy, nullptr);
  LinearScanAllocator alloc(fp, *policy);

  workload::RandomProgramConfig cfg;
  cfg.seed = seed;
  cfg.target_instructions = 100;
  cfg.value_pool = 14;
  ir::Function f = workload::random_program(cfg);
  ASSERT_TRUE(ir::is_well_formed(f));

  const AllocationResult r = alloc.allocate(f);
  EXPECT_TRUE(ir::is_well_formed(r.func));
  EXPECT_TRUE(allocation_is_legal(r.func, r.assignment))
      << "policy=" << policy_name << " seed=" << seed;
}

TEST_P(PolicySweepTest, GraphColoringAlwaysLegal) {
  const auto [policy_name, seed] = GetParam();
  const auto fp = default_fp();
  auto policy = make_policy(policy_name, seed);
  ASSERT_NE(policy, nullptr);
  GraphColoringAllocator alloc(fp, *policy);

  workload::RandomProgramConfig cfg;
  cfg.seed = seed + 1000;
  cfg.target_instructions = 100;
  cfg.value_pool = 14;
  ir::Function f = workload::random_program(cfg);

  const AllocationResult r = alloc.allocate(f);
  EXPECT_TRUE(ir::is_well_formed(r.func));
  EXPECT_TRUE(allocation_is_legal(r.func, r.assignment))
      << "policy=" << policy_name << " seed=" << seed;
}

TEST_P(PolicySweepTest, HighPressureSpillsStayLegal) {
  const auto [policy_name, seed] = GetParam();
  const auto fp = small_fp();  // 16 registers: forces spills
  auto policy = make_policy(policy_name, seed);
  LinearScanAllocator alloc(fp, *policy);

  workload::RandomProgramConfig cfg;
  cfg.seed = seed;
  cfg.target_instructions = 90;
  cfg.value_pool = 20;  // beyond the file
  ir::Function f = workload::random_program(cfg);

  const AllocationResult r = alloc.allocate(f);
  EXPECT_TRUE(allocation_is_legal(r.func, r.assignment))
      << "policy=" << policy_name << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySweepTest,
    ::testing::Combine(::testing::Values("first_free", "random", "chessboard",
                                         "round_robin", "farthest_spread",
                                         "coolest_first"),
                       ::testing::Values(1, 7, 23)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// Chessboard keeps active registers non-adjacent at low pressure.
TEST(Chessboard, LowPressureKeepsParity) {
  const auto fp = default_fp();
  ChessboardPolicy policy;
  LinearScanAllocator alloc(fp, policy);
  workload::Kernel k = workload::make_vecsum(16);  // low pressure
  const AllocationResult r = alloc.allocate(k.func);
  for (machine::PhysReg p : r.assignment.used_physical()) {
    EXPECT_EQ((fp.row_of(p) + fp.col_of(p)) % 2, 0u)
        << "register r" << p << " breaks the chessboard";
  }
}

}  // namespace
}  // namespace tadfa::regalloc
