// Tests for the persistent compile service (service::CompileServer +
// the wire protocol). Load-bearing properties:
//   * a function compiled through the server — under any batching, any
//     concurrency, cold or warm — is byte-identical to a direct
//     CompilationDriver::compile of the same input;
//   * malformed or truncated requests get a structured error response,
//     never a hang or a crash;
//   * shutdown drains: a request already submitted when shutdown starts
//     still receives its full response.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "ir/printer.hpp"
#include "machine/floorplan.hpp"
#include "pipeline/driver.hpp"
#include "power/model.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "thermal/grid.hpp"
#include "workload/kernels.hpp"
#include "workload/modules.hpp"

namespace tadfa {
namespace {

constexpr const char* kSpec =
    "cse,dce,alloc=linear:first_free,thermal-dfa,"
    "alloc=coloring:coolest_first,schedule";

struct ServiceTest : ::testing::Test {
  machine::Floorplan fp{machine::RegisterFileConfig::default_config()};
  thermal::ThermalGrid grid{fp};
  power::PowerModel power{fp.config()};

  pipeline::PipelineContext context() const {
    pipeline::PipelineContext ctx;
    ctx.floorplan = &fp;
    ctx.grid = &grid;
    ctx.power = &power;
    return ctx;
  }

  /// A per-test socket path under the system temp dir (kept short:
  /// sun_path caps at ~108 bytes).
  std::string socket_path() const {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    return (std::filesystem::temp_directory_path() /
            (std::string("tadfa-svc-") + info->name() + ".sock"))
        .string();
  }

  service::ServerConfig config() const {
    service::ServerConfig cfg;
    cfg.socket_path = socket_path();
    cfg.jobs = 2;
    cfg.default_spec = kSpec;
    return cfg;
  }
};

ir::Module test_module(std::size_t functions, std::uint64_t seed = 11) {
  workload::ModuleConfig cfg;
  cfg.functions = functions;
  cfg.seed = seed;
  cfg.random_target_instructions = 60;  // keep the suite fast
  return workload::make_mixed_module(cfg);
}

/// One connect → request → response exchange.
service::CompileResponse roundtrip(const std::string& socket,
                                   const service::CompileRequest& request) {
  std::string error;
  const int fd = service::connect_unix(socket, &error);
  EXPECT_GE(fd, 0) << error;
  EXPECT_TRUE(service::write_request(fd, request, &error)) << error;
  auto response = service::read_response(fd, &error);
  EXPECT_TRUE(response.has_value()) << error;
  ::close(fd);
  return response.value_or(service::error_response("no response"));
}

void expect_matches_direct(const service::CompileResponse& response,
                           const pipeline::ModulePipelineResult& direct) {
  ASSERT_EQ(response.functions.size(), direct.functions.size());
  for (std::size_t i = 0; i < direct.functions.size(); ++i) {
    const service::FunctionResult& served = response.functions[i];
    const pipeline::FunctionCompileResult& ref = direct.functions[i];
    EXPECT_EQ(served.name, ref.name);
    EXPECT_EQ(served.ok, ref.run.ok);
    EXPECT_EQ(served.printed, ir::to_string(ref.run.state.func));
    EXPECT_EQ(served.spilled_regs, ref.run.state.spilled_regs);
    EXPECT_EQ(served.instructions, ref.run.state.func.instruction_count());
    EXPECT_EQ(served.vregs, ref.run.state.func.reg_count());
  }
  const auto direct_stats = direct.merged_pass_stats();
  ASSERT_EQ(response.pass_stats.size(), direct_stats.size());
  for (std::size_t i = 0; i < direct_stats.size(); ++i) {
    EXPECT_EQ(response.pass_stats[i].name, direct_stats[i].name);
    EXPECT_EQ(response.pass_stats[i].summary, direct_stats[i].summary);
    EXPECT_EQ(response.pass_stats[i].changed, direct_stats[i].changed);
    EXPECT_EQ(response.pass_stats[i].instructions_after,
              direct_stats[i].instructions_after);
    EXPECT_EQ(response.pass_stats[i].vregs_after,
              direct_stats[i].vregs_after);
  }
}

TEST_F(ServiceTest, RequestAndResponseSerializationRoundTrips) {
  service::CompileRequest request;
  request.spec = kSpec;
  request.checkpoints = false;
  request.kernels = {"crc32", "fir"};
  request.module_text = "func @f(%0) {\n  ret %0\n}\n";
  ByteWriter w;
  request.serialize(w);
  ByteReader r(w.data());
  const auto decoded = service::CompileRequest::deserialize(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, request);

  service::CompileResponse response;
  response.ok = true;
  response.functions.push_back(
      {"f", true, "", true, 2, "func @f...", 12, 3, 1, 0.5});
  response.pass_stats.push_back({"dce", 0.1, "removed 2", true, 10, 3});
  response.cache_attached = true;
  response.cache.hits = 7;
  response.cache.lookup_faults = 1;
  response.server_seconds = 0.25;
  ByteWriter w2;
  response.serialize(w2);
  ByteReader r2(w2.data());
  const auto decoded2 = service::CompileResponse::deserialize(r2);
  ASSERT_TRUE(decoded2.has_value());
  EXPECT_EQ(decoded2->functions, response.functions);
  EXPECT_EQ(decoded2->cache.hits, 7u);
  EXPECT_EQ(decoded2->cache.lookup_faults, 1u);
  EXPECT_EQ(decoded2->cache_hits(), 1u);

  // Truncation at every prefix length must fail cleanly, never crash.
  const std::string bytes = w2.take();
  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    ByteReader truncated(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(
        service::CompileResponse::deserialize(truncated).has_value());
  }
}

TEST_F(ServiceTest, ModuleTextRequestMatchesDirectCompile) {
  const ir::Module module = test_module(8);
  service::CompileServer server(context(), config());
  ASSERT_TRUE(server.start()) << server.error();

  service::CompileRequest request;
  request.spec = kSpec;
  request.module_text = ir::to_string(module);
  const auto response = roundtrip(config().socket_path, request);
  EXPECT_TRUE(response.ok) << response.error;

  pipeline::CompilationDriver driver(context());
  driver.set_jobs(1);
  const auto direct = driver.compile(module, kSpec);
  ASSERT_TRUE(direct.ok) << direct.error;
  expect_matches_direct(response, direct);
  server.shutdown();
}

TEST_F(ServiceTest, KernelRequestMatchesDirectCompile) {
  service::CompileRequest request;
  request.spec = kSpec;
  request.kernels = {"crc32", "fir"};

  service::CompileServer server(context(), config());
  ASSERT_TRUE(server.start()) << server.error();
  const auto response = roundtrip(config().socket_path, request);
  EXPECT_TRUE(response.ok) << response.error;
  server.shutdown();

  ir::Module module;
  for (const std::string& name : request.kernels) {
    module.add_function(std::move(workload::make_kernel(name)->func));
  }
  pipeline::CompilationDriver driver(context());
  driver.set_jobs(1);
  const auto direct = driver.compile(module, kSpec);
  ASSERT_TRUE(direct.ok) << direct.error;
  expect_matches_direct(response, direct);
}

TEST_F(ServiceTest, ConcurrentClientsGetByteIdenticalResults) {
  // Four clients submit four distinct modules concurrently, twice each
  // (the second wave is served warm from the shared cache). Every
  // response — batched however the dispatcher chose, cold or warm —
  // must match a direct single-threaded compile of that module.
  namespace fs = std::filesystem;
  const fs::path cache_dir =
      fs::temp_directory_path() / "tadfa-svc-concurrent-cache";
  fs::remove_all(cache_dir);

  service::ServerConfig cfg = config();
  cfg.cache_dir = cache_dir.string();
  service::CompileServer server(context(), cfg);
  ASSERT_TRUE(server.start()) << server.error();

  constexpr std::size_t kClients = 4;
  std::vector<ir::Module> modules;
  std::vector<pipeline::ModulePipelineResult> direct;
  pipeline::CompilationDriver driver(context());
  driver.set_jobs(1);
  for (std::size_t c = 0; c < kClients; ++c) {
    // Distinct seeds so the four modules do not share function names.
    modules.push_back(test_module(6, /*seed=*/100 + c));
    direct.push_back(driver.compile(modules.back(), kSpec));
    ASSERT_TRUE(direct.back().ok) << direct.back().error;
  }

  for (int wave = 0; wave < 2; ++wave) {
    std::vector<service::CompileResponse> responses(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        service::CompileRequest request;
        request.spec = kSpec;
        request.module_text = ir::to_string(modules[c]);
        responses[c] = roundtrip(cfg.socket_path, request);
      });
    }
    for (std::thread& t : clients) {
      t.join();
    }
    std::size_t hits = 0;
    for (std::size_t c = 0; c < kClients; ++c) {
      EXPECT_TRUE(responses[c].ok) << responses[c].error;
      expect_matches_direct(responses[c], direct[c]);
      hits += responses[c].cache_hits();
    }
    if (wave == 1) {
      // Every function of the second wave was compiled by the first.
      EXPECT_EQ(hits, kClients * 6);
    }
  }
  const auto metrics = server.metrics();
  EXPECT_EQ(metrics.requests, 2 * kClients);
  EXPECT_EQ(metrics.requests_ok, 2 * kClients);
  EXPECT_GE(metrics.warm_hit_rate, 0.49);  // second wave fully warm
  server.shutdown();
  fs::remove_all(cache_dir);
}

TEST_F(ServiceTest, WarmRequestsHitAtLeast95Percent) {
  namespace fs = std::filesystem;
  const fs::path cache_dir = fs::temp_directory_path() / "tadfa-svc-warm";
  fs::remove_all(cache_dir);
  service::ServerConfig cfg = config();
  cfg.cache_dir = cache_dir.string();
  service::CompileServer server(context(), cfg);
  ASSERT_TRUE(server.start()) << server.error();

  service::CompileRequest request;
  request.spec = kSpec;
  request.module_text = ir::to_string(test_module(12, /*seed=*/7));
  const auto cold = roundtrip(cfg.socket_path, request);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(cold.cache_hits(), 0u);
  const auto warm = roundtrip(cfg.socket_path, request);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_GE(warm.cache_hit_rate(), 0.95);
  ASSERT_EQ(warm.functions.size(), cold.functions.size());
  for (std::size_t i = 0; i < warm.functions.size(); ++i) {
    EXPECT_EQ(warm.functions[i].printed, cold.functions[i].printed);
  }
  server.shutdown();
  fs::remove_all(cache_dir);
}

TEST_F(ServiceTest, BadSpecAndUnknownKernelGetStructuredErrors) {
  service::CompileServer server(context(), config());
  ASSERT_TRUE(server.start()) << server.error();

  service::CompileRequest bad_spec;
  bad_spec.spec = "dce,no-such-pass";
  bad_spec.kernels = {"crc32"};
  const auto r1 = roundtrip(config().socket_path, bad_spec);
  EXPECT_FALSE(r1.ok);
  EXPECT_NE(r1.error.find("no-such-pass"), std::string::npos) << r1.error;

  service::CompileRequest unknown;
  unknown.spec = kSpec;
  unknown.kernels = {"no-such-kernel"};
  const auto r2 = roundtrip(config().socket_path, unknown);
  EXPECT_FALSE(r2.ok);
  EXPECT_NE(r2.error.find("no-such-kernel"), std::string::npos) << r2.error;

  service::CompileRequest empty;
  empty.spec = kSpec;
  const auto r3 = roundtrip(config().socket_path, empty);
  EXPECT_FALSE(r3.ok);
  EXPECT_NE(r3.error.find("empty request"), std::string::npos) << r3.error;
  server.shutdown();
}

TEST_F(ServiceTest, MalformedPayloadGetsErrorAndConnectionSurvives) {
  service::CompileServer server(context(), config());
  ASSERT_TRUE(server.start()) << server.error();

  std::string error;
  const int fd = service::connect_unix(config().socket_path, &error);
  ASSERT_GE(fd, 0) << error;
  // A well-framed frame whose payload is garbage: decode error, but the
  // stream stays consistent, so the connection must survive it.
  ASSERT_TRUE(service::write_frame(fd, "this is not a message", &error));
  auto response = service::read_response(fd, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_FALSE(response->ok);
  EXPECT_NE(response->error.find("malformed"), std::string::npos)
      << response->error;

  // The same connection then serves a real request.
  service::CompileRequest request;
  request.spec = kSpec;
  request.kernels = {"crc32"};
  ASSERT_TRUE(service::write_request(fd, request, &error)) << error;
  response = service::read_response(fd, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_TRUE(response->ok) << response->error;
  ::close(fd);
  server.shutdown();
}

TEST_F(ServiceTest, TruncatedFrameAndBadMagicGetStructuredErrors) {
  service::CompileServer server(context(), config());
  ASSERT_TRUE(server.start()) << server.error();
  std::string error;

  // Truncated: announce 1000 payload bytes, send 3, half-close.
  int fd = service::connect_unix(config().socket_path, &error);
  ASSERT_GE(fd, 0) << error;
  {
    ByteWriter header;
    header.u32(service::kFrameMagic);
    header.u32(service::kProtocolVersion);
    header.u64(1000);
    ASSERT_EQ(::send(fd, header.data().data(), header.data().size(),
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(header.data().size()));
    ASSERT_EQ(::send(fd, "abc", 3, MSG_NOSIGNAL), 3);
    ::shutdown(fd, SHUT_WR);
  }
  auto response = service::read_response(fd, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_FALSE(response->ok);
  EXPECT_NE(response->error.find("truncated"), std::string::npos)
      << response->error;
  ::close(fd);

  // Bad magic: 16 bytes of garbage where a header should be.
  fd = service::connect_unix(config().socket_path, &error);
  ASSERT_GE(fd, 0) << error;
  const char garbage[16] = "GARBAGEGARBAGE!";
  ASSERT_EQ(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(garbage)));
  response = service::read_response(fd, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_FALSE(response->ok);
  EXPECT_NE(response->error.find("magic"), std::string::npos)
      << response->error;
  ::close(fd);

  const auto metrics = server.metrics();
  EXPECT_GE(metrics.malformed, 2u);
  server.shutdown();
}

TEST_F(ServiceTest, OversizeFrameAnnouncementIsRejected) {
  service::CompileServer server(context(), config());
  ASSERT_TRUE(server.start()) << server.error();
  std::string error;
  const int fd = service::connect_unix(config().socket_path, &error);
  ASSERT_GE(fd, 0) << error;
  ByteWriter header;
  header.u32(service::kFrameMagic);
  header.u32(service::kProtocolVersion);
  header.u64(service::kMaxFrameBytes + 1);
  ASSERT_EQ(::send(fd, header.data().data(), header.data().size(),
                   MSG_NOSIGNAL),
            static_cast<ssize_t>(header.data().size()));
  const auto response = service::read_response(fd, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_FALSE(response->ok);
  EXPECT_NE(response->error.find("exceeds"), std::string::npos)
      << response->error;
  ::close(fd);
  server.shutdown();
}

TEST_F(ServiceTest, ShutdownDrainsInFlightRequests) {
  service::CompileServer server(context(), config());
  ASSERT_TRUE(server.start()) << server.error();

  // The client fires a request and the main thread immediately starts
  // shutting the server down; the response must still arrive complete.
  service::CompileRequest request;
  request.spec = kSpec;
  request.module_text = ir::to_string(test_module(10, /*seed=*/5));
  service::CompileResponse response;
  std::thread client([&] {
    response = roundtrip(config().socket_path, request);
  });
  // Give the request a moment to reach the server queue, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.shutdown();
  client.join();
  EXPECT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.functions.size(), 10u);
}

TEST_F(ServiceTest, StalePathHandlingOnStart) {
  // A leftover socket file is reclaimed; a regular file refuses.
  const std::string path = socket_path();
  {
    service::CompileServer first(context(), config());
    ASSERT_TRUE(first.start()) << first.error();
    first.shutdown();
  }
  // shutdown() unlinks; recreate a stale-looking server artifact by
  // starting and *not* connecting, then killing via destructor.
  {
    service::CompileServer again(context(), config());
    ASSERT_TRUE(again.start()) << again.error();
    again.shutdown();
  }
  std::ofstream(path) << "not a socket";
  service::CompileServer refused(context(), config());
  EXPECT_FALSE(refused.start());
  EXPECT_NE(refused.error().find("not a socket"), std::string::npos)
      << refused.error();
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace tadfa
