// Unit tests for src/power: access traces, windowing, dynamic power,
// temperature-dependent leakage, gating, trace energy.
#include <gtest/gtest.h>

#include "power/access_trace.hpp"
#include "power/model.hpp"

namespace tadfa::power {
namespace {

machine::RegisterFileConfig cfg() {
  return machine::RegisterFileConfig::small_config();
}

TEST(AccessTrace, TotalsSplitReadsWrites) {
  AccessTrace t(16);
  t.record(0, 3, false);
  t.record(1, 3, false);
  t.record(2, 3, true);
  t.record(3, 7, true);
  const auto totals = t.totals();
  EXPECT_EQ(totals[3].reads, 2u);
  EXPECT_EQ(totals[3].writes, 1u);
  EXPECT_EQ(totals[3].total(), 3u);
  EXPECT_EQ(totals[7].writes, 1u);
  EXPECT_EQ(totals[0].total(), 0u);
}

TEST(AccessTrace, WindowSelectsHalfOpenRange) {
  AccessTrace t(16);
  t.record(0, 1, false);
  t.record(5, 1, false);
  t.record(10, 1, false);
  const auto w = t.window(5, 10);
  EXPECT_EQ(w[1].reads, 1u);
  const auto all = t.window(0, 11);
  EXPECT_EQ(all[1].reads, 3u);
  const auto none = t.window(11, 20);
  EXPECT_EQ(none[1].reads, 0u);
}

TEST(AccessTrace, DurationRoundTrip) {
  AccessTrace t(4);
  t.set_duration_cycles(1234);
  EXPECT_EQ(t.duration_cycles(), 1234u);
}

TEST(PowerModel, AccessEnergyUsesReadWriteCosts) {
  const PowerModel m(cfg());
  const auto& tech = cfg().tech;
  AccessCounts c;
  c.reads = 3;
  c.writes = 2;
  EXPECT_DOUBLE_EQ(m.access_energy(c),
                   3 * tech.read_energy_j + 2 * tech.write_energy_j);
}

TEST(PowerModel, DynamicPowerAveragesOverWindow) {
  const PowerModel m(cfg());
  std::vector<AccessCounts> counts(16);
  counts[2].reads = 100;
  const auto p = m.dynamic_power(counts, 100);
  // 100 reads in 100 cycles = 1 read per cycle.
  const double expected =
      cfg().tech.read_energy_j / cfg().tech.cycle_seconds();
  EXPECT_NEAR(p[2], expected, expected * 1e-9);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
}

TEST(PowerModel, DynamicPowerScalesInverselyWithWindow) {
  const PowerModel m(cfg());
  std::vector<AccessCounts> counts(16);
  counts[0].writes = 10;
  const auto p1 = m.dynamic_power(counts, 100);
  const auto p2 = m.dynamic_power(counts, 200);
  EXPECT_NEAR(p1[0], 2 * p2[0], 1e-15);
}

TEST(PowerModel, LeakageTracksTemperature) {
  const PowerModel m(cfg());
  const machine::Floorplan fp(cfg());
  std::vector<double> cold(16, 320.0);
  std::vector<double> hot(16, 360.0);
  const auto pl_cold = m.leakage_power(fp, cold);
  const auto pl_hot = m.leakage_power(fp, hot);
  for (std::size_t r = 0; r < 16; ++r) {
    EXPECT_GT(pl_hot[r], pl_cold[r]);
  }
}

TEST(PowerModel, GatedBankLeaksFraction) {
  const PowerModel m(cfg());  // small config: 2 banks over 4 cols
  const machine::Floorplan fp(cfg());
  std::vector<double> temps(16, 340.0);
  std::vector<bool> gated{true, false};
  const auto p = m.leakage_power(fp, temps, gated);
  const double nominal = cfg().tech.leakage_at(340.0);
  for (machine::PhysReg r = 0; r < 16; ++r) {
    if (fp.bank_of(r) == 0) {
      EXPECT_NEAR(p[r], nominal * PowerModel::gated_leakage_fraction, 1e-15);
    } else {
      EXPECT_NEAR(p[r], nominal, 1e-15);
    }
  }
}

TEST(PowerModel, TraceEnergyCombinesDynamicAndLeakage) {
  const PowerModel m(cfg());
  AccessTrace t(16);
  t.record(0, 0, true);
  t.set_duration_cycles(1000);
  const double e = m.trace_energy(t, 340.0);
  const double dynamic = cfg().tech.write_energy_j;
  EXPECT_GT(e, dynamic);  // leakage adds on top
  // Gating both banks cuts the leakage share.
  const double e_gated = m.trace_energy(t, 340.0, {true, true});
  EXPECT_LT(e_gated, e);
  EXPECT_GT(e_gated, dynamic * 0.999);
}

}  // namespace
}  // namespace tadfa::power

// Appended: memory-hierarchy energy accounting.
namespace tadfa::power {
namespace {

TEST(PowerModel, MemoryEnergyCountsTraffic) {
  const PowerModel m(cfg());
  EXPECT_DOUBLE_EQ(m.memory_energy(0, 0), 0.0);
  const double one = cfg().tech.memory_access_energy_j;
  EXPECT_DOUBLE_EQ(m.memory_energy(10, 5), 15 * one);
}

TEST(PowerModel, MemoryAccessCostsMoreThanRegisterAccess) {
  // The premise of the spill/promotion energy trade: a cache access is an
  // order of magnitude more expensive than a register access.
  const auto& tech = cfg().tech;
  EXPECT_GT(tech.memory_access_energy_j, 5 * tech.read_energy_j);
}

}  // namespace
}  // namespace tadfa::power
