// The grid-differential harness: every frontend x every named machine.
//
// Each cell of the grid parses a source through one frontend, compiles
// it with the full Sec. 4 pipeline on one machine's rig, and checks the
// compiled function against the interpreter ground truth plus a
// trace-driven thermal replay on that machine's own grid. Alongside the
// grid: the twin-program identity (the same program written in .tir and
// texpr lowers to fingerprint-identical IR), and cache-key isolation
// (distinct machines never share result-cache entries, while the
// "default" machine keeps every key minted before the matrix existed).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "frontend/frontend.hpp"
#include "ir/printer.hpp"
#include "machine/machine_config.hpp"
#include "pipeline/driver.hpp"
#include "pipeline/pass_manager.hpp"
#include "pipeline/result_cache.hpp"
#include "pipeline/rig.hpp"
#include "power/access_trace.hpp"
#include "sim/interpreter.hpp"
#include "sim/thermal_replay.hpp"
#include "workload/kernels.hpp"

namespace tadfa {
namespace {

namespace fs = std::filesystem;

constexpr const char* kSpec =
    "cse,dce,alloc=linear:first_free,thermal-dfa,"
    "alloc=coloring:coolest_first,schedule";

// --- The twin program --------------------------------------------------------
// One program, two surface syntaxes. The texpr form exercises let,
// while, if, and array load/store; the .tir form is its exact lowering
// (asserted below), so every grid cell that compiles one of them
// compiles the same function.

constexpr const char* kTexprTwin = R"(fn twin(n, base) {
  let sum = 0;
  let i = 0;
  while (i < n) {
    base[i] = i * 3;
    if (i % 2 == 0) {
      sum = sum + base[i];
    }
    i = i + 1;
  }
  return sum;
}
)";

constexpr const char* kTirTwin = R"(func @twin(%0, %1) {
entry:
  %2 = const 0
  %3 = const 0
  jmp loop0_head
loop0_head:
  %4 = cmplt %3, %0
  br %4, loop0_body, loop0_end
loop0_body:
  %5 = add %1, %3
  %6 = mul %3, 3
  store %5, %6
  %7 = rem %3, 2
  %8 = cmpeq %7, 0
  br %8, if1_then, if1_else
loop0_end:
  ret %2
if1_then:
  %9 = add %1, %3
  %10 = load %9
  %2 = add %2, %10
  jmp if1_end
if1_else:
  jmp if1_end
if1_end:
  %3 = add %3, 1
  jmp loop0_head
}
)";

const std::vector<std::int64_t> kTwinArgs = {10, 100};
// base[i] = 3i for i in 0..9, summing the even-i entries.
constexpr std::int64_t kTwinExpected = 3 * (0 + 2 + 4 + 6 + 8);

ir::Module parse_or_die(const std::string& frontend,
                        const std::string& source) {
  const frontend::Frontend* fe = frontend::find_frontend(frontend);
  EXPECT_NE(fe, nullptr) << frontend;
  frontend::ParseResult r = fe->parse(source);
  EXPECT_TRUE(r.ok()) << frontend << ": " << r.diagnostics_text();
  return std::move(*r.module);
}

// --- Twin identity -----------------------------------------------------------

TEST(TwinProgram, TexprLowersToTheHandWrittenTir) {
  const ir::Module from_texpr = parse_or_die("texpr", kTexprTwin);
  EXPECT_EQ(ir::to_string(from_texpr), kTirTwin);
}

TEST(TwinProgram, FingerprintsAreIdenticalAcrossFrontends) {
  const ir::Module from_texpr = parse_or_die("texpr", kTexprTwin);
  const ir::Module from_tir = parse_or_die("tir", kTirTwin);
  ASSERT_EQ(from_texpr.size(), 1u);
  ASSERT_EQ(from_tir.size(), 1u);
  EXPECT_EQ(ir::fingerprint(from_texpr.functions().front()),
            ir::fingerprint(from_tir.functions().front()));
  EXPECT_EQ(ir::to_string(from_texpr), ir::to_string(from_tir));
}

TEST(TwinProgram, PrintParseRoundTripPreservesTheFingerprint) {
  // Whatever texpr lowers to must survive a trip through the canonical
  // printer and the tir frontend unchanged — the router leans on this
  // when it re-prints slices of a texpr module for its shards.
  const ir::Module from_texpr = parse_or_die("texpr", kTexprTwin);
  const ir::Module reparsed =
      parse_or_die("tir", ir::to_string(from_texpr));
  ASSERT_EQ(reparsed.size(), from_texpr.size());
  EXPECT_EQ(ir::fingerprint(reparsed.functions().front()),
            ir::fingerprint(from_texpr.functions().front()));
}

// --- The frontend x machine grid ---------------------------------------------

struct GridCell {
  std::string frontend;
  std::string source;
  std::string function;  // the function the differential runs
  std::vector<std::int64_t> args;
  std::int64_t expected = 0;
  std::function<void(std::vector<std::int64_t>&)> init_memory;
};

std::vector<GridCell> grid_cells() {
  std::vector<GridCell> cells;
  cells.push_back({"tir", kTirTwin, "twin", kTwinArgs, kTwinExpected, {}});
  cells.push_back({"texpr", kTexprTwin, "twin", kTwinArgs, kTwinExpected, {}});
  workload::Kernel crc = *workload::make_kernel("crc32");
  cells.push_back({"kernels", "crc32", "crc32", crc.default_args,
                   *crc.expected_result, crc.init_memory});
  return cells;
}

class MachineGrid : public ::testing::TestWithParam<std::string> {};

TEST_P(MachineGrid, EveryFrontendCompilesAndMatchesTheReplay) {
  const machine::MachineConfig* mc = machine::find_machine(GetParam());
  ASSERT_NE(mc, nullptr) << GetParam();
  const pipeline::CompileRig rig(*mc);
  machine::TimingModel timing;

  for (const GridCell& cell : grid_cells()) {
    const std::string label = cell.frontend + " on " + mc->name;
    const ir::Module module = parse_or_die(cell.frontend, cell.source);
    const ir::Function* input = module.find(cell.function);
    ASSERT_NE(input, nullptr) << label;

    // Interpreter ground truth on the raw lowering.
    {
      sim::Interpreter ref(*input, timing);
      if (cell.init_memory) {
        cell.init_memory(ref.memory());
      }
      const auto r = ref.run(cell.args);
      ASSERT_TRUE(r.ok()) << label << ": " << r.trap.value_or("");
      EXPECT_EQ(r.return_value.value_or(-1), cell.expected) << label;
    }

    // Full thermal-aware pipeline on this machine's rig.
    pipeline::PassManager manager(rig.context());
    const auto run = manager.run(*input, kSpec);
    ASSERT_TRUE(run.ok) << label << ": " << run.error;
    const machine::RegisterAssignment* assignment = run.state.assignment();
    ASSERT_NE(assignment, nullptr) << label;

    // Semantics survive compilation, on every machine.
    sim::Interpreter compiled(run.state.func, timing);
    if (cell.init_memory) {
      cell.init_memory(compiled.memory());
    }
    power::AccessTrace trace(rig.floorplan().num_registers());
    const auto r = compiled.run_traced(cell.args, *assignment, trace);
    ASSERT_TRUE(r.ok()) << label << ": " << r.trap.value_or("");
    EXPECT_EQ(r.return_value.value_or(-1), cell.expected) << label;

    // And the machine's own thermal replay accepts the trace: finite,
    // physical temperatures over the full register file.
    const sim::ThermalReplay replay(rig.grid(), rig.power());
    sim::ReplayConfig cfg;
    cfg.max_repeats = 10;
    const auto replayed = replay.replay(trace, cfg);
    ASSERT_EQ(replayed.final_reg_temps.size(),
              rig.floorplan().num_registers())
        << label;
    EXPECT_GE(replayed.final_stats.peak_k,
              mc->rf.tech.ambient_temp_k - 1.0)
        << label;
    for (double t : replayed.final_reg_temps) {
      ASSERT_TRUE(std::isfinite(t)) << label;
      ASSERT_LT(t, 1000.0) << label;  // no runaway feedback
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMachines, MachineGrid,
    ::testing::ValuesIn(machine::default_machine_registry().names()),
    [](const auto& info) { return info.param; });

// --- Cache-key isolation across machines -------------------------------------

struct GridCacheTest : ::testing::Test {
  fs::path dir;

  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir = fs::temp_directory_path() /
          (std::string("tadfa-grid-test-") + info->name());
    fs::remove_all(dir);
  }
  void TearDown() override { fs::remove_all(dir); }
};

TEST_F(GridCacheTest, DistinctMachinesNeverShareCacheEntries) {
  const ir::Module module = parse_or_die("kernels", "suite");

  const pipeline::CompileRig default_rig(*machine::find_machine("default"));
  const pipeline::CompileRig dense_rig(*machine::find_machine("dense45"));
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok()) << cache.error();

  // Cold on default.
  pipeline::CompilationDriver default_driver(default_rig.context());
  default_driver.set_result_cache(&cache);
  const auto cold = default_driver.compile(module, kSpec);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(cold.cache_hits(), 0u);
  EXPECT_EQ(cache.stats().stores, module.size());

  // Same module, same spec, same cache — but another machine: every
  // lookup must miss. A cross-config warm hit here would hand dense45
  // results computed against the default machine's thermal model.
  pipeline::CompilationDriver dense_driver(dense_rig.context());
  dense_driver.set_result_cache(&cache);
  const auto other = dense_driver.compile(module, kSpec);
  ASSERT_TRUE(other.ok) << other.error;
  EXPECT_EQ(other.cache_hits(), 0u);
  EXPECT_EQ(cache.stats().stores, 2 * module.size());

  // Back on default: fully warm — dense45's stores disturbed nothing.
  const auto warm = default_driver.compile(module, kSpec);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.cache_hits(), module.size());
}

TEST(MachineDigestsGrid, DefaultMachineKeepsPreMatrixKeys) {
  // The "default" machine must be digest-identical to the unnamed
  // RegisterFileConfig::default_config() every harness hard-coded before
  // the matrix existed, so old cache entries keep hitting.
  EXPECT_EQ(machine::find_machine("default")->config_digest(),
            machine::RegisterFileConfig::default_config().config_digest());

  const pipeline::CompileRig rig(*machine::find_machine("default"));
  machine::Floorplan fp{machine::RegisterFileConfig::default_config()};
  thermal::ThermalGrid grid{fp};
  power::PowerModel power{fp.config()};
  pipeline::PipelineContext legacy;
  legacy.floorplan = &fp;
  legacy.grid = &grid;
  legacy.power = &power;
  EXPECT_EQ(pipeline::ResultCache::context_digest(rig.context()),
            pipeline::ResultCache::context_digest(legacy));
}

TEST(MachineDigestsGrid, EveryMachineHasADistinctContextDigest) {
  std::set<std::uint64_t> digests;
  for (const machine::MachineConfig& mc :
       machine::default_machine_registry().entries()) {
    const pipeline::CompileRig rig(mc);
    const auto [it, inserted] = digests.insert(
        pipeline::ResultCache::context_digest(rig.context()));
    (void)it;
    EXPECT_TRUE(inserted) << mc.name << " shares a context digest";
  }
}

}  // namespace
}  // namespace tadfa
