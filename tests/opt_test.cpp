// Tests for src/opt — every Sec. 4 transformation must (a) preserve
// semantics (interpreter result unchanged) and (b) have its intended
// structural effect.
#include <gtest/gtest.h>

#include <map>

#include "core/critical.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "opt/bank_gating.hpp"
#include "opt/nop_insert.hpp"
#include "opt/promote.hpp"
#include "opt/reassign.hpp"
#include "opt/schedule.hpp"
#include "opt/spill_critical.hpp"
#include "opt/split.hpp"
#include "regalloc/linear_scan.hpp"
#include "regalloc/verify.hpp"
#include "sim/interpreter.hpp"
#include "workload/kernels.hpp"

namespace tadfa::opt {
namespace {

struct Rig {
  machine::Floorplan fp{machine::RegisterFileConfig::default_config()};
  thermal::ThermalGrid grid{fp};
  power::PowerModel power{fp.config()};
  machine::TimingModel timing;
};

std::int64_t run(const workload::Kernel& k, const ir::Function& func) {
  machine::TimingModel timing;
  sim::Interpreter interp(func, timing);
  if (k.init_memory) {
    k.init_memory(interp.memory());
  }
  const auto r = interp.run(k.default_args);
  EXPECT_TRUE(r.ok()) << (r.trap ? *r.trap : "");
  EXPECT_TRUE(r.return_value.has_value());
  return r.return_value.value_or(-1);
}

regalloc::AllocationResult allocate(const Rig& s, const ir::Function& f) {
  regalloc::FirstFreePolicy policy;
  regalloc::LinearScanAllocator alloc(s.fp, policy);
  return alloc.allocate(f);
}

core::ThermalDfaResult analyze(const Rig& s,
                               const regalloc::AllocationResult& alloc) {
  const core::ThermalDfa dfa(s.grid, s.power, s.timing);
  return dfa.analyze_post_ra(alloc.func, alloc.assignment);
}

// ------------------------------------------------------------------ split ----

TEST(Split, PreservesSemanticsOnKernels) {
  for (const char* name : {"vecsum", "fir", "crc32", "poly7"}) {
    auto k = workload::make_kernel(name);
    ASSERT_TRUE(k.has_value());
    const std::int64_t before = run(*k, k->func);

    ir::Function func = k->func;
    // Split every parameter and the first few registers.
    std::vector<ir::Reg> targets(k->func.params());
    for (ir::Reg r = 0; r < std::min(4u, k->func.reg_count()); ++r) {
      targets.push_back(r);
    }
    split_live_ranges(func, targets);
    EXPECT_TRUE(ir::is_well_formed(func)) << name;
    EXPECT_EQ(run(*k, func), before) << name;
  }
}

TEST(Split, InsertsCopiesInUsingBlocks) {
  auto k = workload::make_vecsum(16);
  ir::Function func = k.func;
  const ir::Reg base = func.params()[0];  // used in the loop body
  const SplitResult r = split_live_range(func, base);
  EXPECT_FALSE(r.copies.empty());
  EXPECT_GT(r.rewritten_uses, 0u);
  // The body block now starts with a mov.
  bool found_mov = false;
  for (const auto& block : func.blocks()) {
    if (!block.empty() && block.instructions()[0].opcode() == ir::Opcode::kMov) {
      found_mov = true;
    }
  }
  EXPECT_TRUE(found_mov);
}

TEST(Split, SplitCopiesCanColorDifferently) {
  // After splitting, the copies are distinct vregs, so assignment can
  // spread them — the point of the optimization.
  Rig s;
  auto k = workload::make_crc32(16);
  ir::Function func = k.func;
  const core::ThermalDfaResult before_dfa = analyze(s, allocate(s, func));
  split_live_ranges(func, {0, 1, 2});
  const auto alloc = allocate(s, func);
  EXPECT_TRUE(regalloc::allocation_is_legal(alloc.func, alloc.assignment));
  EXPECT_EQ(run(k, alloc.func), *k.expected_result);
  (void)before_dfa;
}

TEST(Split, NoUseNoCopy) {
  auto k = workload::make_counter(8);
  ir::Function func = k.func;
  const ir::Reg unused = func.new_reg();
  const SplitResult r = split_live_range(func, unused);
  EXPECT_TRUE(r.copies.empty());
}

// ------------------------------------------------------------------ spill ----

TEST(SpillCritical, PreservesSemantics) {
  Rig s;
  for (const char* name : {"crc32", "fir", "accumulators"}) {
    auto k = workload::make_kernel(name);
    ASSERT_TRUE(k.has_value());
    const std::int64_t expected = *k->expected_result;

    const auto alloc0 = allocate(s, k->func);
    const auto dfa = analyze(s, alloc0);
    const core::ExactAssignmentModel model(alloc0.func, s.fp,
                                           alloc0.assignment);
    const auto ranking = core::rank_critical_variables(
        alloc0.func, model, dfa, s.grid, s.timing);
    ASSERT_FALSE(ranking.empty());

    const SpillCriticalResult spilled =
        spill_critical_variables(alloc0.func, ranking, 2);
    EXPECT_TRUE(ir::is_well_formed(spilled.func)) << name;
    EXPECT_EQ(spilled.spilled.size(), 2u);
    EXPECT_GT(spilled.inserted_instructions, 0u);
    EXPECT_EQ(run(*k, spilled.func), expected) << name;
  }
}

TEST(SpillCritical, RemovesPressureFromRegisters) {
  Rig s;
  auto k = workload::make_crc32(16);
  const auto alloc0 = allocate(s, k.func);
  const auto dfa = analyze(s, alloc0);
  const core::ExactAssignmentModel model(alloc0.func, s.fp,
                                         alloc0.assignment);
  const auto ranking = core::rank_critical_variables(alloc0.func, model, dfa,
                                                     s.grid, s.timing);
  const auto spilled = spill_critical_variables(alloc0.func, ranking, 1);
  // The spilled vreg no longer appears as an operand anywhere.
  const ir::Reg victim = spilled.spilled[0];
  for (const auto& block : spilled.func.blocks()) {
    for (const auto& inst : block.instructions()) {
      for (ir::Reg u : inst.uses()) {
        EXPECT_NE(u, victim);
      }
      if (auto d = inst.def()) {
        EXPECT_NE(*d, victim);
      }
    }
  }
}

// --------------------------------------------------------------- schedule ----

TEST(Schedule, PreservesSemanticsOnKernels) {
  Rig s;
  for (const char* name : {"vecsum", "fir", "idct8", "poly7", "stencil3"}) {
    auto k = workload::make_kernel(name);
    ASSERT_TRUE(k.has_value());
    const auto alloc = allocate(s, k->func);
    const std::int64_t expected = *k->expected_result;
    EXPECT_EQ(run(*k, alloc.func), expected) << name << " (pre)";

    const ScheduleResult sched = thermal_schedule(alloc.func, alloc.assignment);
    EXPECT_TRUE(ir::is_well_formed(sched.func)) << name;
    EXPECT_EQ(run(*k, sched.func), expected) << name << " (post)";
  }
}

TEST(Schedule, KeepsAllocationLegal) {
  Rig s;
  auto k = workload::make_idct8(8);
  const auto alloc = allocate(s, k.func);
  const ScheduleResult sched = thermal_schedule(alloc.func, alloc.assignment);
  EXPECT_TRUE(regalloc::allocation_is_legal(sched.func, alloc.assignment));
}

TEST(Schedule, ActuallyReordersWideBlocks) {
  Rig s;
  auto k = workload::make_idct8(8);  // wide independent butterfly
  const auto alloc = allocate(s, k.func);
  const ScheduleResult sched = thermal_schedule(alloc.func, alloc.assignment);
  EXPECT_GT(sched.moved, 0u);
}

TEST(Schedule, IncreasesMinimumAccessDistance) {
  // The scheduling objective: consecutive accesses to the same physical
  // register get farther apart (crc32's serial chain is the stress case;
  // use idct8 where independence exists).
  Rig s;
  auto k = workload::make_idct8(4);
  const auto alloc = allocate(s, k.func);

  auto min_same_reg_gap = [&](const ir::Function& f) {
    std::size_t min_gap = 1000000;
    for (const auto& block : f.blocks()) {
      std::map<machine::PhysReg, std::size_t> last;
      for (std::size_t i = 0; i < block.size(); ++i) {
        const auto& inst = block.instructions()[i];
        auto touch = [&](ir::Reg v) {
          if (!alloc.assignment.assigned(v)) {
            return;
          }
          const auto p = alloc.assignment.phys(v);
          const auto it = last.find(p);
          if (it != last.end()) {
            min_gap = std::min(min_gap, i - it->second);
          }
          last[p] = i;
        };
        for (ir::Reg u : inst.uses()) {
          touch(u);
        }
        if (auto d = inst.def()) {
          touch(*d);
        }
      }
    }
    return min_gap;
  };

  const ScheduleResult sched = thermal_schedule(alloc.func, alloc.assignment);
  EXPECT_GE(min_same_reg_gap(sched.func), min_same_reg_gap(alloc.func));
}

// ---------------------------------------------------------------- promote ----

TEST(Promote, HoistsRepeatedConstantLoads) {
  const std::string text =
      "func @p() {\n"
      "entry:\n"
      "  %0 = load 50\n"
      "  %1 = load 50\n"
      "  %2 = add %0, %1\n"
      "  ret %2\n"
      "}\n";
  const auto f = ir::parse_function(text);
  ASSERT_TRUE(f.has_value());
  const PromoteResult r = promote_memory_scalars(*f);
  EXPECT_EQ(r.promoted_addresses, (std::vector<std::int64_t>{50}));
  EXPECT_EQ(r.loads_replaced, 2u);
  EXPECT_TRUE(ir::is_well_formed(r.func));
  // Exactly one load remains (the hoisted home load).
  std::size_t loads = 0;
  for (const auto& block : r.func.blocks()) {
    for (const auto& inst : block.instructions()) {
      loads += inst.opcode() == ir::Opcode::kLoad;
    }
  }
  EXPECT_EQ(loads, 1u);
}

TEST(Promote, StoredAddressNotPromoted) {
  const std::string text =
      "func @s() {\n"
      "entry:\n"
      "  store 50, 7\n"
      "  %0 = load 50\n"
      "  %1 = load 50\n"
      "  %2 = add %0, %1\n"
      "  ret %2\n"
      "}\n";
  const auto f = ir::parse_function(text);
  const PromoteResult r = promote_memory_scalars(*f);
  EXPECT_TRUE(r.promoted_addresses.empty());
}

TEST(Promote, UnknownStoreBlocksEverything) {
  const std::string text =
      "func @u(%0) {\n"
      "entry:\n"
      "  store %0, 7\n"
      "  %1 = load 50\n"
      "  %2 = load 50\n"
      "  %3 = add %1, %2\n"
      "  ret %3\n"
      "}\n";
  const auto f = ir::parse_function(text);
  const PromoteResult r = promote_memory_scalars(*f);
  EXPECT_TRUE(r.promoted_addresses.empty());
  EXPECT_EQ(r.loads_replaced, 0u);
}

TEST(Promote, SemanticsPreserved) {
  const std::string text =
      "func @sem() {\n"
      "entry:\n"
      "  %0 = load 10\n"
      "  jmp loop\n"
      "loop:\n"
      "  %1 = load 10\n"
      "  %2 = add %0, %1\n"
      "  %3 = cmplt %2, 100\n"
      "  br %3, loop2, exit\n"
      "loop2:\n"
      "  %0 = add %0, %1\n"
      "  jmp loop\n"
      "exit:\n"
      "  ret %2\n"
      "}\n";
  auto f = ir::parse_function(text);
  ASSERT_TRUE(f.has_value());
  machine::TimingModel timing;
  sim::Interpreter i1(*f, timing);
  i1.memory()[10] = 5;
  const auto r1 = i1.run({});
  ASSERT_TRUE(r1.ok());

  const PromoteResult pr = promote_memory_scalars(*f);
  EXPECT_EQ(pr.loads_replaced, 2u);
  sim::Interpreter i2(pr.func, timing);
  i2.memory()[10] = 5;
  const auto r2 = i2.run({});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1.return_value, *r2.return_value);
}

TEST(Promote, MinLoadsThresholdRespected) {
  const std::string text =
      "func @t() {\n"
      "entry:\n"
      "  %0 = load 50\n"
      "  ret %0\n"
      "}\n";
  const auto f = ir::parse_function(text);
  const PromoteResult r = promote_memory_scalars(*f, 2);
  EXPECT_TRUE(r.promoted_addresses.empty());
  const PromoteResult r1 = promote_memory_scalars(*f, 1);
  EXPECT_EQ(r1.promoted_addresses.size(), 1u);
}

// --------------------------------------------------------------- nop insert ----

TEST(NopInsert, AddsNopsAfterHotInstructions) {
  Rig s;
  auto k = workload::make_crc32(16);
  const auto alloc = allocate(s, k.func);
  const auto dfa = analyze(s, alloc);

  // Threshold below the peak: at least one site fires.
  const double threshold = dfa.exit_stats.mean_k;
  const NopInsertResult r =
      insert_cooling_nops(alloc.func, dfa, threshold, 2);
  EXPECT_GT(r.nops_inserted, 0u);
  EXPECT_EQ(r.nops_inserted % 2, 0u);
  EXPECT_TRUE(ir::is_well_formed(r.func));
  EXPECT_EQ(run(k, r.func), *k.expected_result);
}

TEST(NopInsert, HighThresholdInsertsNothing) {
  Rig s;
  auto k = workload::make_vecsum(16);
  const auto alloc = allocate(s, k.func);
  const auto dfa = analyze(s, alloc);
  const NopInsertResult r =
      insert_cooling_nops(alloc.func, dfa, dfa.peak_anywhere_k + 100, 4);
  EXPECT_EQ(r.nops_inserted, 0u);
  EXPECT_EQ(r.func.instruction_count(), alloc.func.instruction_count());
}

TEST(NopInsert, SlowsExecution) {
  Rig s;
  auto k = workload::make_crc32(16);
  const auto alloc = allocate(s, k.func);
  const auto dfa = analyze(s, alloc);
  const NopInsertResult r =
      insert_cooling_nops(alloc.func, dfa, dfa.exit_stats.mean_k, 4);

  machine::TimingModel timing;
  sim::Interpreter i1(alloc.func, timing);
  if (k.init_memory) k.init_memory(i1.memory());
  sim::Interpreter i2(r.func, timing);
  if (k.init_memory) k.init_memory(i2.memory());
  const auto c1 = i1.run(k.default_args);
  const auto c2 = i2.run(k.default_args);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_GT(c2.cycles, c1.cycles);  // the performance cost Sec. 4 warns of
}

// --------------------------------------------------------------- reassign ----

TEST(Reassign, ReducesPredictedPeak) {
  Rig s;
  const core::ThermalDfa dfa(s.grid, s.power, s.timing);
  auto k = workload::make_crc32(32);
  const auto initial = allocate(s, k.func);

  const ReassignResult r = thermally_reassign(k.func, initial, dfa);
  EXPECT_TRUE(
      regalloc::allocation_is_legal(r.alloc.func, r.alloc.assignment));
  EXPECT_LE(r.predicted_after.peak_k, r.predicted_before.peak_k + 1e-9);
  EXPECT_EQ(run(k, r.alloc.func), *k.expected_result);
}

TEST(Reassign, SpreadsUsage) {
  Rig s;
  const core::ThermalDfa dfa(s.grid, s.power, s.timing);
  auto k = workload::make_fir();
  const auto initial = allocate(s, k.func);
  const ReassignResult r = thermally_reassign(k.func, initial, dfa);
  // Thermal reassignment should not use fewer distinct registers than
  // first-free did.
  EXPECT_GE(r.alloc.assignment.used_physical().size(),
            initial.assignment.used_physical().size());
}

// -------------------------------------------------------------- bank gating ----

TEST(BankGating, GatesUnusedBanks) {
  Rig s;
  auto k = workload::make_vecsum(16);  // low pressure, first-free: bank 0/1
  const auto alloc = allocate(s, k.func);
  const BankGatingPlan plan =
      plan_bank_gating(s.fp, alloc.assignment, 343.15);
  EXPECT_GT(plan.gated_banks, 0u);
  EXPECT_GT(plan.leakage_saved_w, 0.0);
  // No used register may sit in a gated bank.
  for (machine::PhysReg p : alloc.assignment.used_physical()) {
    EXPECT_FALSE(plan.gated[s.fp.bank_of(p)]);
  }
}

TEST(BankGating, SpreadAssignmentGatesNothing) {
  Rig s;
  regalloc::FarthestSpreadPolicy policy;
  regalloc::LinearScanAllocator alloc(s.fp, policy);
  auto k = workload::make_fir();  // enough values to hit every bank
  const auto r = alloc.allocate(k.func);
  const BankGatingPlan plan = plan_bank_gating(s.fp, r.assignment, 343.15);
  // Spreading uses all banks: the Sec. 4 tension in one assertion.
  EXPECT_EQ(plan.gated_banks, 0u);
}

TEST(BankGating, LimitPolicyConfinesAssignment) {
  Rig s;
  regalloc::FirstFreePolicy inner;
  BankLimitPolicy limited(inner, 2);  // use only banks 0-1
  regalloc::LinearScanAllocator alloc(s.fp, limited);
  auto k = workload::make_fir();
  const auto r = alloc.allocate(k.func);
  EXPECT_TRUE(regalloc::allocation_is_legal(r.func, r.assignment));
  for (machine::PhysReg p : r.assignment.used_physical()) {
    EXPECT_LT(s.fp.bank_of(p), 2u);
  }
  const BankGatingPlan plan = plan_bank_gating(s.fp, r.assignment, 343.15);
  EXPECT_EQ(plan.gated_banks, 2u);
}

TEST(BankGating, NameReflectsLimit) {
  regalloc::FirstFreePolicy inner;
  BankLimitPolicy limited(inner, 3);
  EXPECT_EQ(limited.name(), "first_free+banks3");
}

}  // namespace
}  // namespace tadfa::opt

// NOTE: appended suites for dce/coalesce (see includes at top of file).
#include "opt/coalesce.hpp"
#include "opt/dce.hpp"

namespace tadfa::opt {
namespace {

// -------------------------------------------------------------------- dce ----

TEST(Dce, RemovesDeadArithmetic) {
  const auto f = ir::parse_function(
      "func @d() {\n"
      "entry:\n"
      "  %0 = const 1\n"
      "  %1 = const 2\n"
      "  %2 = add %0, %1\n"
      "  ret %0\n"
      "}\n");
  ASSERT_TRUE(f.has_value());
  const DceResult r = eliminate_dead_code(*f);
  // %2 is dead; then %1 (only used by the dead add) dies too.
  EXPECT_EQ(r.removed, 2u);
  EXPECT_EQ(r.func.instruction_count(), 2u);
  EXPECT_TRUE(ir::is_well_formed(r.func));
}

TEST(Dce, KeepsSideEffects) {
  const auto f = ir::parse_function(
      "func @s() {\n"
      "entry:\n"
      "  %0 = const 7\n"
      "  store 100, %0\n"
      "  %1 = load 100\n"
      "  nop\n"
      "  ret\n"
      "}\n");
  ASSERT_TRUE(f.has_value());
  const DceResult r = eliminate_dead_code(*f);
  // The load's result is dead but loads are kept (may trap); store, nop,
  // ret always kept; %0 feeds the store.
  EXPECT_EQ(r.removed, 0u);
}

TEST(Dce, KeepsLoopCarriedValues) {
  auto k = workload::make_counter(8);
  const DceResult r = eliminate_dead_code(k.func);
  EXPECT_EQ(r.removed, 0u);
  EXPECT_EQ(run(k, r.func), *k.expected_result);
}

TEST(Dce, SemanticsPreservedOnKernels) {
  for (const char* name : {"fir", "poly7", "idct8"}) {
    auto k = workload::make_kernel(name);
    const DceResult r = eliminate_dead_code(k->func);
    EXPECT_EQ(run(*k, r.func), *k->expected_result) << name;
  }
}

TEST(Dce, CleansAfterSplitAndCoalesce) {
  auto k = workload::make_crc32(8);
  ir::Function f = k.func;
  split_live_ranges(f, {2, 3});
  const auto coalesced = coalesce_copies(f);
  const auto cleaned = eliminate_dead_code(coalesced.func);
  EXPECT_TRUE(ir::is_well_formed(cleaned.func));
  EXPECT_EQ(run(k, cleaned.func), *k.expected_result);
}

// --------------------------------------------------------------- coalesce ----

TEST(Coalesce, MergesNonInterferingCopy) {
  const auto f = ir::parse_function(
      "func @c(%0) {\n"
      "entry:\n"
      "  %1 = mov %0\n"
      "  %2 = add %1, 1\n"
      "  ret %2\n"
      "}\n");
  ASSERT_TRUE(f.has_value());
  const CoalesceResult r = coalesce_copies(*f);
  EXPECT_EQ(r.coalesced, 1u);
  // The mov is gone; the add reads the parameter directly.
  EXPECT_EQ(r.func.instruction_count(), 2u);
  EXPECT_TRUE(ir::is_well_formed(r.func));
}

TEST(Coalesce, KeepsInterferingCopy) {
  // %1 = mov %0 but %0 is redefined while %1 lives -> they interfere.
  const auto f = ir::parse_function(
      "func @i(%0) {\n"
      "entry:\n"
      "  %1 = mov %0\n"
      "  %0 = add %0, 1\n"
      "  %2 = add %1, %0\n"
      "  ret %2\n"
      "}\n");
  ASSERT_TRUE(f.has_value());
  const CoalesceResult r = coalesce_copies(*f);
  EXPECT_EQ(r.coalesced, 0u);
  EXPECT_EQ(r.func.instruction_count(), 4u);
}

TEST(Coalesce, UndoesSplitting) {
  auto k = workload::make_crc32(8);
  ir::Function f = k.func;
  const SplitResult split = split_live_ranges(f, {2, 3, 4});
  ASSERT_FALSE(split.copies.empty());
  const CoalesceResult r = coalesce_copies(f);
  EXPECT_GE(r.coalesced, split.copies.size());
  EXPECT_EQ(run(k, r.func), *k.expected_result);
}

TEST(Coalesce, SemanticsPreservedOnKernels) {
  for (const char* name : {"vecsum", "stencil3", "matmul"}) {
    auto k = workload::make_kernel(name);
    const CoalesceResult r = coalesce_copies(k->func);
    EXPECT_TRUE(ir::is_well_formed(r.func)) << name;
    EXPECT_EQ(run(*k, r.func), *k->expected_result) << name;
  }
}

TEST(Coalesce, NaiveCoolestPolicyExists) {
  regalloc::CoolestFirstPolicy with_penalty(true);
  regalloc::CoolestFirstPolicy naive(false);
  EXPECT_EQ(with_penalty.name(), "coolest_first");
  EXPECT_EQ(naive.name(), "coolest_first_naive");
}

}  // namespace
}  // namespace tadfa::opt

// Appended: local CSE.
#include "opt/cse.hpp"

namespace tadfa::opt {
namespace {

TEST(Cse, ReplacesRepeatedComputation) {
  const auto f = ir::parse_function(
      "func @c(%0, %1) {\n"
      "entry:\n"
      "  %2 = add %0, %1\n"
      "  %3 = add %0, %1\n"
      "  %4 = mul %2, %3\n"
      "  ret %4\n"
      "}\n");
  ASSERT_TRUE(f.has_value());
  const CseResult r = eliminate_common_subexpressions(*f);
  EXPECT_EQ(r.replaced, 1u);
  EXPECT_EQ(r.func.block(0).instructions()[1].opcode(), ir::Opcode::kMov);
  EXPECT_TRUE(ir::is_well_formed(r.func));
}

TEST(Cse, RedefinitionKillsExpression) {
  const auto f = ir::parse_function(
      "func @k(%0, %1) {\n"
      "entry:\n"
      "  %2 = add %0, %1\n"
      "  %0 = const 9\n"
      "  %3 = add %0, %1\n"
      "  %4 = mul %2, %3\n"
      "  ret %4\n"
      "}\n");
  const CseResult r = eliminate_common_subexpressions(*f);
  EXPECT_EQ(r.replaced, 0u);
}

TEST(Cse, StoreKillsLoadsOnly) {
  const auto f = ir::parse_function(
      "func @s(%0) {\n"
      "entry:\n"
      "  %1 = load 40\n"
      "  %2 = add %0, 1\n"
      "  store 50, %0\n"
      "  %3 = load 40\n"
      "  %4 = add %0, 1\n"
      "  %5 = add %1, %3\n"
      "  %6 = add %5, %2\n"
      "  %7 = add %6, %4\n"
      "  ret %7\n"
      "}\n");
  const CseResult r = eliminate_common_subexpressions(*f);
  // The second load must survive (store may alias); the second add folds.
  EXPECT_EQ(r.replaced, 1u);
  EXPECT_EQ(r.func.block(0).instructions()[3].opcode(), ir::Opcode::kLoad);
}

TEST(Cse, SelfRedefiningOpNotReused) {
  const auto f = ir::parse_function(
      "func @sr(%0) {\n"
      "entry:\n"
      "  %0 = add %0, 1\n"
      "  %0 = add %0, 1\n"
      "  ret %0\n"
      "}\n");
  const CseResult r = eliminate_common_subexpressions(*f);
  EXPECT_EQ(r.replaced, 0u);
}

TEST(Cse, SemanticsPreservedOnKernels) {
  for (const char* name : {"fir", "matmul", "idct8", "stencil3"}) {
    auto k = workload::make_kernel(name);
    const CseResult r = eliminate_common_subexpressions(k->func);
    EXPECT_TRUE(ir::is_well_formed(r.func)) << name;
    EXPECT_EQ(run(*k, r.func), *k->expected_result) << name;
  }
}

TEST(Cse, FirBodyHasRedundantAddressing) {
  // fir recomputes in_base + i for every tap; CSE must catch them.
  auto k = workload::make_fir(32, 8);
  const CseResult r = eliminate_common_subexpressions(k.func);
  EXPECT_GE(r.replaced, 6u);
  EXPECT_EQ(run(k, r.func), *k.expected_result);
}

TEST(Cse, ComposesWithCoalesceAndDce) {
  auto k = workload::make_fir(32, 8);
  const CseResult cse = eliminate_common_subexpressions(k.func);
  const CoalesceResult coal = coalesce_copies(cse.func);
  const DceResult dce = eliminate_dead_code(coal.func);
  EXPECT_TRUE(ir::is_well_formed(dce.func));
  EXPECT_EQ(run(k, dce.func), *k.expected_result);
  EXPECT_LT(dce.func.instruction_count(), k.func.instruction_count());
}

}  // namespace
}  // namespace tadfa::opt
