// Tests for src/core — the thermal data flow analysis itself: convergence
// behavior (Fig. 2), δ monotonicity, determinism, frequency/profile modes,
// pre-RA predictive models, accuracy against the trace-driven ground
// truth, and critical-variable ranking.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/access_model.hpp"
#include "ir/builder.hpp"
#include "core/critical.hpp"
#include "core/thermal_dfa.hpp"
#include "dataflow/liveness.hpp"
#include "regalloc/linear_scan.hpp"
#include "regalloc/policy.hpp"
#include "sim/interpreter.hpp"
#include "sim/thermal_replay.hpp"
#include "support/statistics.hpp"
#include "workload/kernels.hpp"
#include "workload/random_program.hpp"

namespace tadfa::core {
namespace {

struct Rig {
  machine::Floorplan fp{machine::RegisterFileConfig::default_config()};
  thermal::ThermalGrid grid{fp};
  power::PowerModel power{fp.config()};
  machine::TimingModel timing;
};

regalloc::AllocationResult allocate(const Rig& s, const ir::Function& f,
                                    const std::string& policy = "first_free") {
  auto p = regalloc::make_policy(policy);
  regalloc::LinearScanAllocator alloc(s.fp, *p);
  return alloc.allocate(f);
}

// ------------------------------------------------------------ convergence ----

TEST(ThermalDfa, ConvergesOnKernels) {
  Rig s;
  const ThermalDfa dfa(s.grid, s.power, s.timing);
  for (const auto& name : {"vecsum", "crc32", "fir", "counter"}) {
    auto k = workload::make_kernel(name);
    ASSERT_TRUE(k.has_value());
    const auto alloc = allocate(s, k->func);
    const auto result = dfa.analyze_post_ra(alloc.func, alloc.assignment);
    EXPECT_TRUE(result.converged) << name;
    EXPECT_GE(result.iterations, 2) << name;  // at least one re-check pass
    EXPECT_LE(result.final_delta_k, dfa.config().delta_k) << name;
  }
}

TEST(ThermalDfa, IsDeterministic) {
  Rig s;
  const ThermalDfa dfa(s.grid, s.power, s.timing);
  auto k = workload::make_crc32(32);
  const auto alloc = allocate(s, k.func);
  const auto a = dfa.analyze_post_ra(alloc.func, alloc.assignment);
  const auto b = dfa.analyze_post_ra(alloc.func, alloc.assignment);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.exit_reg_temps_k, b.exit_reg_temps_k);
}

TEST(ThermalDfa, TighterDeltaNeedsMoreIterations) {
  Rig s;
  auto k = workload::make_fir();
  const auto alloc = allocate(s, k.func);

  int prev_iterations = 0;
  for (double delta : {1.0, 0.1, 0.001}) {
    ThermalDfaConfig cfg;
    cfg.delta_k = delta;
    cfg.max_iterations = 500;
    const ThermalDfa dfa(s.grid, s.power, s.timing, cfg);
    const auto result = dfa.analyze_post_ra(alloc.func, alloc.assignment);
    EXPECT_GE(result.iterations, prev_iterations) << "delta=" << delta;
    prev_iterations = result.iterations;
  }
}

TEST(ThermalDfa, IterationCapFlagsNonConvergence) {
  Rig s;
  ThermalDfaConfig cfg;
  cfg.delta_k = 1e-12;  // unreachably tight
  cfg.max_iterations = 2;
  const ThermalDfa dfa(s.grid, s.power, s.timing, cfg);
  auto k = workload::make_fir();
  const auto alloc = allocate(s, k.func);
  const auto result = dfa.analyze_post_ra(alloc.func, alloc.assignment);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 2);
  EXPECT_GT(result.final_delta_k, cfg.delta_k);
}

TEST(ThermalDfa, DeltaHistoryDecaysForRegularPrograms) {
  Rig s;
  ThermalDfaConfig cfg;
  cfg.delta_k = 1e-4;
  cfg.max_iterations = 300;
  const ThermalDfa dfa(s.grid, s.power, s.timing, cfg);
  auto k = workload::make_vecsum();
  const auto alloc = allocate(s, k.func);
  const auto result = dfa.analyze_post_ra(alloc.func, alloc.assignment);
  ASSERT_GE(result.delta_history_k.size(), 3u);
  // Late deltas are much smaller than early ones.
  EXPECT_LT(result.delta_history_k.back(),
            result.delta_history_k.front() * 0.5 + 1e-12);
}

// ------------------------------------------------------------ output shape ----

TEST(ThermalDfa, PerInstructionStatesCoverFunction) {
  Rig s;
  const ThermalDfa dfa(s.grid, s.power, s.timing);
  auto k = workload::make_counter(64);
  const auto alloc = allocate(s, k.func);
  const auto result = dfa.analyze_post_ra(alloc.func, alloc.assignment);
  EXPECT_EQ(result.per_instruction.size(), alloc.func.instruction_count());
  for (const InstructionThermal& it : result.per_instruction) {
    EXPECT_EQ(it.reg_temps_k.size(), s.fp.num_registers());
    EXPECT_GE(it.peak_k, s.grid.substrate_temp() - 1e-9);
  }
  EXPECT_GE(result.peak_anywhere_k, result.exit_stats.peak_k - 1e-9);
}

TEST(ThermalDfa, HotLoopRegistersArePredictedHot) {
  Rig s;
  const ThermalDfa dfa(s.grid, s.power, s.timing);
  auto k = workload::make_crc32(32);
  const auto alloc = allocate(s, k.func);
  const auto result = dfa.analyze_post_ra(alloc.func, alloc.assignment);
  // crc32 under first-free hammers a handful of low registers; the hottest
  // predicted cell must be one of them.
  const auto hottest = static_cast<machine::PhysReg>(
      stats::top_k_indices(result.exit_reg_temps_k, 1)[0]);
  EXPECT_LT(hottest, 12u);
  EXPECT_GT(result.exit_stats.peak_k, s.grid.substrate_temp() + 0.01);
}

TEST(ThermalDfa, AnalysisTimeRecorded) {
  Rig s;
  const ThermalDfa dfa(s.grid, s.power, s.timing);
  auto k = workload::make_vecsum(32);
  const auto alloc = allocate(s, k.func);
  const auto result = dfa.analyze_post_ra(alloc.func, alloc.assignment);
  EXPECT_GT(result.analysis_seconds, 0.0);
}

// ---------------------------------------------------------- fast path ----

TEST(ThermalDfa, StrictMathMatchesReferenceGridBitForBit) {
  // --strict-math on a fast-tier grid must reproduce a reference-kernel
  // grid's analysis exactly: the flag pins the transient kernel to the
  // bit-identical reference tier no matter how the grid was built.
  Rig s;
  const thermal::ThermalGrid fast_grid(s.fp, 1, thermal::StepKernel::kSimd);
  const thermal::ThermalGrid ref_grid(s.fp, 1,
                                      thermal::StepKernel::kReference);
  auto k = workload::make_crc32(32);
  const auto alloc = allocate(s, k.func);

  ThermalDfaConfig strict_cfg;
  strict_cfg.strict_math = true;
  const ThermalDfa strict_dfa(fast_grid, s.power, s.timing, strict_cfg);
  const ThermalDfa ref_dfa(ref_grid, s.power, s.timing);

  const auto a = strict_dfa.analyze_post_ra(alloc.func, alloc.assignment);
  const auto b = ref_dfa.analyze_post_ra(alloc.func, alloc.assignment);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.final_delta_k, b.final_delta_k);
  EXPECT_EQ(a.exit_reg_temps_k, b.exit_reg_temps_k);
}

TEST(ThermalDfa, EvaluatePowerCandidatesMatchesSteadyState) {
  Rig s;
  const ThermalDfa dfa(s.grid, s.power, s.timing);
  std::vector<std::vector<double>> candidates(
      3, std::vector<double>(s.fp.num_registers(), 0.0));
  candidates[0][0] = 2e-3;
  candidates[1][5] = 1e-3;
  candidates[1][6] = 1e-3;
  candidates[2].assign(s.fp.num_registers(), 1e-4);

  const auto evals = dfa.evaluate_power_candidates(candidates);
  ASSERT_EQ(evals.size(), candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    const auto direct =
        s.grid.register_temps(s.grid.steady_state(candidates[c]));
    ASSERT_EQ(evals[c].reg_temps_k.size(), direct.size());
    double peak = 0;
    for (std::size_t r = 0; r < direct.size(); ++r) {
      EXPECT_NEAR(evals[c].reg_temps_k[r], direct[r], 1e-6)
          << "candidate=" << c << " reg=" << r;
      peak = std::max(peak, evals[c].reg_temps_k[r]);
    }
    EXPECT_DOUBLE_EQ(evals[c].peak_k, peak) << "candidate=" << c;
    EXPECT_GT(evals[c].sweeps, 0) << "candidate=" << c;
  }
}

// -------------------------------------------------------- frequency modes ----

TEST(ThermalDfa, ProfileModeUsesMeasuredCounts) {
  Rig s;
  auto k = workload::make_counter(2048);
  const auto alloc = allocate(s, k.func);

  // Static estimate assumes ~10 trips; profile says 2048.
  const ThermalDfa static_dfa(s.grid, s.power, s.timing);
  const auto static_result =
      static_dfa.analyze_post_ra(alloc.func, alloc.assignment);

  sim::Interpreter interp(alloc.func, s.timing);
  const auto run = interp.run(k.default_args);
  ASSERT_TRUE(run.ok());
  std::vector<double> profile(run.block_visits.begin(),
                              run.block_visits.end());
  ThermalDfa profiled_dfa(s.grid, s.power, s.timing);
  profiled_dfa.set_block_profile(profile);
  const auto profiled_result =
      profiled_dfa.analyze_post_ra(alloc.func, alloc.assignment);

  // The profiled run knows the loop dominates: its predicted peak must be
  // at least the static one (longer time at loop power).
  EXPECT_GE(profiled_result.exit_stats.peak_k + 1e-9,
            static_result.exit_stats.peak_k);
}

// ----------------------------------------------------------- access models ----

TEST(AccessModels, ExactModelIsDelta) {
  Rig s;
  auto k = workload::make_vecsum(16);
  const auto alloc = allocate(s, k.func);
  const ExactAssignmentModel model(alloc.func, s.fp, alloc.assignment);
  for (ir::Reg v = 0; v < alloc.func.reg_count(); ++v) {
    if (!alloc.assignment.assigned(v)) {
      continue;
    }
    const auto& dist = model.distribution(v);
    double sum = 0;
    for (double p : dist) {
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(dist[alloc.assignment.phys(v)], 1.0);
  }
}

TEST(AccessModels, FirstFitConcentratesOnWindow) {
  Rig s;
  auto k = workload::make_vecsum(16);
  const FirstFitPredictionModel model(k.func, s.fp, 6);
  const auto& dist = model.distribution(0);
  double low = 0;
  double high = 0;
  for (std::size_t r = 0; r < dist.size(); ++r) {
    (r < 6 ? low : high) += dist[r];
  }
  EXPECT_NEAR(low, 1.0, 1e-12);
  EXPECT_NEAR(high, 0.0, 1e-12);
}

TEST(AccessModels, UniformSpreadsEverywhere) {
  Rig s;
  auto k = workload::make_vecsum(16);
  const UniformPredictionModel model(k.func, s.fp);
  const auto& dist = model.distribution(0);
  for (double p : dist) {
    EXPECT_NEAR(p, 1.0 / 64.0, 1e-12);
  }
}

TEST(AccessModels, PreRaPredictsFirstFitShape) {
  // The paper's ambition: predict BEFORE assignment. The first-fit
  // prediction model should correlate with the post-RA truth for a
  // first-free allocation far better than the uniform model does.
  Rig s;
  auto k = workload::make_crc32(32);
  const auto alloc = allocate(s, k.func, "first_free");

  const dataflow::Cfg cfg(alloc.func);
  const dataflow::Liveness lv(cfg);
  const FirstFitPredictionModel ff(alloc.func, s.fp, lv.max_pressure());
  const UniformPredictionModel uni(alloc.func, s.fp);

  const ThermalDfa dfa(s.grid, s.power, s.timing);
  const auto exact = dfa.analyze_post_ra(alloc.func, alloc.assignment);
  const auto pred_ff = dfa.analyze(alloc.func, ff);
  const auto pred_uni = dfa.analyze(alloc.func, uni);

  const double err_ff =
      stats::rmse(exact.exit_reg_temps_k, pred_ff.exit_reg_temps_k);
  const double err_uni =
      stats::rmse(exact.exit_reg_temps_k, pred_uni.exit_reg_temps_k);
  EXPECT_LT(err_ff, err_uni);
}

// ----------------------------------------------------- accuracy vs replay ----

TEST(Accuracy, DfaTracksTraceDrivenGroundTruth) {
  // Central claim: the compile-time analysis approximates what the
  // trace-driven (feedback) pipeline measures. Check rank agreement on a
  // loop kernel with profiled frequencies.
  Rig s;
  auto k = workload::make_crc32(64);
  const auto alloc = allocate(s, k.func);

  sim::Interpreter interp(alloc.func, s.timing);
  if (k.init_memory) {
    k.init_memory(interp.memory());
  }
  power::AccessTrace trace(s.fp.num_registers());
  const auto run = interp.run_traced(k.default_args, alloc.assignment, trace);
  ASSERT_TRUE(run.ok());

  const sim::ThermalReplay replay(s.grid, s.power);
  sim::ReplayConfig rcfg;
  rcfg.max_repeats = 50;
  const auto truth = replay.replay(trace, rcfg);

  ThermalDfa dfa(s.grid, s.power, s.timing);
  std::vector<double> profile(run.block_visits.begin(),
                              run.block_visits.end());
  dfa.set_block_profile(profile);
  const auto predicted = dfa.analyze_post_ra(alloc.func, alloc.assignment);

  // Rank correlation between predicted and measured register temps.
  const double corr = stats::pearson(predicted.exit_reg_temps_k,
                                     truth.final_reg_temps);
  EXPECT_GT(corr, 0.8);

  // Hotspot overlap: the top-4 predicted hot registers substantially
  // overlap the measured top-4.
  const auto pred_hot = stats::top_k_indices(predicted.exit_reg_temps_k, 4);
  const auto true_hot = stats::top_k_indices(truth.final_reg_temps, 4);
  EXPECT_GE(stats::jaccard(pred_hot, true_hot), 0.3);
}

// ------------------------------------------------------- critical variables ----

TEST(Critical, LoopVariablesRankHighest) {
  Rig s;
  auto k = workload::make_crc32(32);
  const auto alloc = allocate(s, k.func);
  const ThermalDfa dfa(s.grid, s.power, s.timing);
  const auto result = dfa.analyze_post_ra(alloc.func, alloc.assignment);
  const ExactAssignmentModel model(alloc.func, s.fp, alloc.assignment);
  const auto ranking = rank_critical_variables(alloc.func, model, result,
                                               s.grid, s.timing);
  ASSERT_FALSE(ranking.empty());
  // Scores are sorted descending.
  for (std::size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_GE(ranking[i - 1].score, ranking[i].score);
  }
  // The top variable is accessed inside the loop (weighted accesses beyond
  // its static count).
  EXPECT_GT(ranking.front().weighted_accesses, 8.0);
  EXPECT_GT(ranking.front().energy_rate_w, 0.0);
}

TEST(Critical, UnusedRegistersExcluded) {
  Rig s;
  ir::Function f("u");
  f.ensure_regs(10);  // registers 1..9 never appear
  const auto blk = f.add_block();
  f.block(blk).append(ir::Instruction(ir::Opcode::kConst, 0,
                                      {ir::Operand::imm(1)}));
  f.block(blk).append(ir::Instruction(ir::Opcode::kRet, ir::kInvalidReg,
                                      {ir::Operand::reg(0)}));
  const auto alloc = allocate(s, f);
  const ThermalDfa dfa(s.grid, s.power, s.timing);
  const auto result = dfa.analyze_post_ra(alloc.func, alloc.assignment);
  const ExactAssignmentModel model(alloc.func, s.fp, alloc.assignment);
  const auto ranking = rank_critical_variables(alloc.func, model, result,
                                               s.grid, s.timing);
  EXPECT_EQ(ranking.size(), 1u);
  EXPECT_EQ(ranking[0].vreg, 0u);
}

TEST(Critical, HotProgramPointsAboveSigma) {
  Rig s;
  auto k = workload::make_crc32(32);
  const auto alloc = allocate(s, k.func);
  const ThermalDfa dfa(s.grid, s.power, s.timing);
  const auto result = dfa.analyze_post_ra(alloc.func, alloc.assignment);
  // Most in-loop peaks cluster tightly at the top, so discriminate at the
  // mean: loop instructions sit above it, prologue/epilogue below.
  const auto hot = hot_program_points(result, 0.0);
  EXPECT_FALSE(hot.empty());
  EXPECT_LT(hot.size(), result.per_instruction.size());
  for (const auto& hp : hot) {
    EXPECT_NE(hp.ref.block, 0u);  // never the entry block
  }
}

// ---------------------------------------------------- granularity (Sec. 3) ----

TEST(Granularity, FinerGridsCostMore) {
  Rig s;
  auto k = workload::make_fir(64, 8);
  const auto alloc = allocate(s, k.func);

  const thermal::ThermalGrid coarse(s.fp, 1);
  const thermal::ThermalGrid fine(s.fp, 3);
  const ThermalDfa dfa_coarse(coarse, s.power, s.timing);
  const ThermalDfa dfa_fine(fine, s.power, s.timing);
  const auto rc = dfa_coarse.analyze_post_ra(alloc.func, alloc.assignment);
  const auto rf = dfa_fine.analyze_post_ra(alloc.func, alloc.assignment);
  EXPECT_TRUE(rc.converged);
  EXPECT_TRUE(rf.converged);
  // Cell-level predictions agree within tens of mK; node count is 9x.
  EXPECT_NEAR(rc.exit_stats.peak_k, rf.exit_stats.peak_k, 0.2);
}

}  // namespace
}  // namespace tadfa::core

// Appended: join-mode ablation coverage.
namespace tadfa::core {
namespace {

TEST(JoinModes, AllConvergeOnLoopKernel) {
  Rig s;
  auto k = workload::make_crc32(16);
  const auto alloc = allocate(s, k.func);
  for (JoinMode mode : {JoinMode::kWeightedMean, JoinMode::kUnweightedMean,
                        JoinMode::kMax}) {
    ThermalDfaConfig cfg;
    cfg.delta_k = 0.01;
    cfg.max_iterations = 500;
    cfg.join_mode = mode;
    const ThermalDfa dfa(s.grid, s.power, s.timing, cfg);
    const auto r = dfa.analyze_post_ra(alloc.func, alloc.assignment);
    EXPECT_TRUE(r.converged) << static_cast<int>(mode);
  }
}

TEST(JoinModes, MaxDominatesMeans) {
  // The max join is an upper envelope: its exit map must dominate the
  // weighted mean's everywhere.
  Rig s;
  auto k = workload::make_crc32(16);
  const auto alloc = allocate(s, k.func);
  ThermalDfaConfig cfg;
  cfg.delta_k = 0.001;
  cfg.max_iterations = 500;
  const ThermalDfa mean_dfa(s.grid, s.power, s.timing, cfg);
  cfg.join_mode = JoinMode::kMax;
  const ThermalDfa max_dfa(s.grid, s.power, s.timing, cfg);
  const auto r_mean = mean_dfa.analyze_post_ra(alloc.func, alloc.assignment);
  const auto r_max = max_dfa.analyze_post_ra(alloc.func, alloc.assignment);
  for (std::size_t r = 0; r < r_mean.exit_reg_temps_k.size(); ++r) {
    EXPECT_GE(r_max.exit_reg_temps_k[r] + 1e-6, r_mean.exit_reg_temps_k[r]);
  }
  EXPECT_GE(r_max.exit_stats.peak_k, r_mean.exit_stats.peak_k - 1e-6);
}

TEST(JoinModes, StraightLineCodeIsJoinInsensitive) {
  // Without merges, every join operator must produce the same answer.
  Rig s;
  ir::Function f("straight");
  ir::IRBuilder b(f);
  const auto blk = b.create_block();
  b.set_insert_point(blk);
  const ir::Reg x = b.const_int(7);
  const ir::Reg y = b.mul(ir::IRBuilder::r(x), ir::IRBuilder::r(x));
  b.ret(ir::IRBuilder::r(y));
  const auto alloc = allocate(s, f);

  std::vector<std::vector<double>> maps;
  for (JoinMode mode : {JoinMode::kWeightedMean, JoinMode::kUnweightedMean,
                        JoinMode::kMax}) {
    ThermalDfaConfig cfg;
    cfg.join_mode = mode;
    const ThermalDfa dfa(s.grid, s.power, s.timing, cfg);
    maps.push_back(
        dfa.analyze_post_ra(alloc.func, alloc.assignment).exit_reg_temps_k);
  }
  for (std::size_t i = 1; i < maps.size(); ++i) {
    for (std::size_t r = 0; r < maps[0].size(); ++r) {
      EXPECT_NEAR(maps[i][r], maps[0][r], 1e-9);
    }
  }
}

}  // namespace
}  // namespace tadfa::core
