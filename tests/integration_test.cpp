// End-to-end integration tests: the complete thermal-aware compilation
// pipeline (allocate → analyze → transform → re-allocate → re-analyze) on
// every kernel, with semantics verified by the interpreter at every stage
// and thermal claims checked against the trace-driven ground truth.
#include <gtest/gtest.h>

#include "core/critical.hpp"
#include "core/thermal_dfa.hpp"
#include "ir/verifier.hpp"
#include "opt/nop_insert.hpp"
#include "opt/reassign.hpp"
#include "opt/schedule.hpp"
#include "opt/spill_critical.hpp"
#include "opt/split.hpp"
#include "regalloc/graph_coloring.hpp"
#include "regalloc/linear_scan.hpp"
#include "regalloc/verify.hpp"
#include "sim/interpreter.hpp"
#include "sim/thermal_replay.hpp"
#include "support/statistics.hpp"
#include "workload/kernels.hpp"
#include "workload/random_program.hpp"

namespace tadfa {
namespace {

struct Rig {
  machine::Floorplan fp{machine::RegisterFileConfig::default_config()};
  thermal::ThermalGrid grid{fp};
  power::PowerModel power{fp.config()};
  machine::TimingModel timing;
};

std::int64_t run(const workload::Kernel& k, const ir::Function& func) {
  machine::TimingModel timing;
  sim::Interpreter interp(func, timing);
  if (k.init_memory) {
    k.init_memory(interp.memory());
  }
  const auto r = interp.run(k.default_args);
  EXPECT_TRUE(r.ok()) << (r.trap ? *r.trap : "");
  return r.return_value.value_or(-1);
}

sim::ReplayResult measure(const Rig& s, const workload::Kernel& k,
                          const ir::Function& func,
                          const machine::RegisterAssignment& assignment) {
  sim::Interpreter interp(func, s.timing);
  if (k.init_memory) {
    k.init_memory(interp.memory());
  }
  power::AccessTrace trace(s.fp.num_registers());
  const auto r = interp.run_traced(k.default_args, assignment, trace);
  EXPECT_TRUE(r.ok());
  const sim::ThermalReplay replay(s.grid, s.power);
  sim::ReplayConfig cfg;
  cfg.max_repeats = 40;
  return replay.replay(trace, cfg);
}

// --- Every kernel survives both allocators with every stage verified --------

class PipelineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PipelineTest, LinearScanPipeline) {
  Rig s;
  auto k = workload::make_kernel(GetParam());
  ASSERT_TRUE(k.has_value());

  regalloc::FirstFreePolicy policy;
  regalloc::LinearScanAllocator alloc(s.fp, policy);
  const auto a = alloc.allocate(k->func);
  ASSERT_TRUE(regalloc::allocation_is_legal(a.func, a.assignment));
  EXPECT_EQ(run(*k, a.func), *k->expected_result);

  const core::ThermalDfa dfa(s.grid, s.power, s.timing);
  const auto analysis = dfa.analyze_post_ra(a.func, a.assignment);
  EXPECT_TRUE(analysis.converged) << GetParam();
}

TEST_P(PipelineTest, GraphColoringPipeline) {
  Rig s;
  auto k = workload::make_kernel(GetParam());
  ASSERT_TRUE(k.has_value());

  regalloc::RandomPolicy policy(99);
  regalloc::GraphColoringAllocator alloc(s.fp, policy);
  const auto a = alloc.allocate(k->func);
  ASSERT_TRUE(regalloc::allocation_is_legal(a.func, a.assignment));
  EXPECT_EQ(run(*k, a.func), *k->expected_result);
}

TEST_P(PipelineTest, FullThermalAwareCompilation) {
  // The paper's complete story: initial allocation → thermal DFA →
  // critical variables → split → spill → reassign → schedule → NOPs,
  // checking semantics after every single transformation.
  Rig s;
  auto k = workload::make_kernel(GetParam());
  ASSERT_TRUE(k.has_value());
  const std::int64_t expected = *k->expected_result;

  // 1. Initial performance-oriented allocation.
  regalloc::FirstFreePolicy first_free;
  regalloc::LinearScanAllocator alloc0(s.fp, first_free);
  const auto initial = alloc0.allocate(k->func);
  EXPECT_EQ(run(*k, initial.func), expected);

  // 2. Thermal analysis + critical variables.
  const core::ThermalDfa dfa(s.grid, s.power, s.timing);
  const auto analysis = dfa.analyze_post_ra(initial.func, initial.assignment);
  const core::ExactAssignmentModel model(initial.func, s.fp,
                                         initial.assignment);
  const auto ranking = core::rank_critical_variables(
      initial.func, model, analysis, s.grid, s.timing);
  ASSERT_FALSE(ranking.empty());

  // 3. Split the hottest variable.
  ir::Function working = initial.func;
  opt::split_live_range(working, ranking.front().vreg);
  ASSERT_TRUE(ir::is_well_formed(working));
  EXPECT_EQ(run(*k, working), expected) << "after split";

  // 4. Spill the runner-up (if any).
  if (ranking.size() > 1) {
    const auto spilled =
        opt::spill_critical_variables(working, {ranking[1]}, 1);
    working = spilled.func;
    EXPECT_EQ(run(*k, working), expected) << "after spill";
  }

  // 5. Thermally-guided re-allocation.
  regalloc::CoolestFirstPolicy coolest;
  regalloc::GraphColoringAllocator alloc1(s.fp, coolest);
  alloc1.set_heat_scores(analysis.exit_reg_temps_k);
  const auto réalloc = alloc1.allocate(working);
  ASSERT_TRUE(regalloc::allocation_is_legal(réalloc.func, réalloc.assignment));
  EXPECT_EQ(run(*k, réalloc.func), expected) << "after reallocation";

  // 6. Thermal-aware scheduling.
  const auto sched = opt::thermal_schedule(réalloc.func, réalloc.assignment);
  EXPECT_EQ(run(*k, sched.func), expected) << "after scheduling";

  // 7. Emergency NOPs.
  const auto analysis2 = dfa.analyze_post_ra(sched.func, réalloc.assignment);
  const auto nops = opt::insert_cooling_nops(
      sched.func, analysis2, analysis2.exit_stats.mean_k, 1);
  EXPECT_EQ(run(*k, nops.func), expected) << "after NOP insertion";
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, PipelineTest,
    ::testing::Values("vecsum", "fir", "matmul", "idct8", "crc32",
                      "stencil3", "poly7", "accumulators", "hot_cold",
                      "counter"),
    [](const auto& info) { return info.param; });

// --- Thermal claims hold end to end ------------------------------------------

TEST(Integration, SpreadingReducesMeasuredPeak) {
  // Fig. 1's claim, but measured through the full pipeline: a spreading
  // policy yields a cooler, flatter measured map than first-free on a
  // register-hungry loop kernel.
  Rig s;
  auto k = workload::make_crc32(48);

  regalloc::FirstFreePolicy ff;
  regalloc::LinearScanAllocator a_ff(s.fp, ff);
  const auto r_ff = a_ff.allocate(k.func);
  const auto m_ff = measure(s, k, r_ff.func, r_ff.assignment);

  regalloc::FarthestSpreadPolicy spread;
  regalloc::LinearScanAllocator a_sp(s.fp, spread);
  const auto r_sp = a_sp.allocate(k.func);
  const auto m_sp = measure(s, k, r_sp.func, r_sp.assignment);

  EXPECT_LT(m_sp.final_stats.max_gradient_k, m_ff.final_stats.max_gradient_k);
  EXPECT_LE(m_sp.final_stats.peak_k, m_ff.final_stats.peak_k + 1e-6);
}

TEST(Integration, DfaPredictionMatchesMeasurementAcrossKernels) {
  // Aggregate accuracy: over the whole suite, predicted and measured
  // hot-register rankings agree (positive correlation on every kernel
  // that produces a nontrivial gradient).
  Rig s;
  for (const auto& k : workload::standard_suite()) {
    regalloc::FirstFreePolicy policy;
    regalloc::LinearScanAllocator alloc(s.fp, policy);
    const auto a = alloc.allocate(k.func);

    sim::Interpreter interp(a.func, s.timing);
    if (k.init_memory) {
      k.init_memory(interp.memory());
    }
    power::AccessTrace trace(s.fp.num_registers());
    const auto run_result =
        interp.run_traced(k.default_args, a.assignment, trace);
    ASSERT_TRUE(run_result.ok()) << k.name;

    const sim::ThermalReplay replay(s.grid, s.power);
    sim::ReplayConfig rcfg;
    rcfg.max_repeats = 40;
    const auto truth = replay.replay(trace, rcfg);
    if (truth.final_stats.range_k < 0.005) {
      continue;  // map too flat for rank comparison to mean anything
    }

    core::ThermalDfa dfa(s.grid, s.power, s.timing);
    std::vector<double> profile(run_result.block_visits.begin(),
                                run_result.block_visits.end());
    dfa.set_block_profile(profile);
    const auto predicted = dfa.analyze_post_ra(a.func, a.assignment);

    EXPECT_GT(stats::pearson(predicted.exit_reg_temps_k,
                             truth.final_reg_temps),
              0.5)
        << k.name;
  }
}

TEST(Integration, RandomProgramsSurviveWholePipeline) {
  Rig s;
  const core::ThermalDfa dfa(s.grid, s.power, s.timing);
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    workload::RandomProgramConfig cfg;
    cfg.seed = seed;
    cfg.target_instructions = 120;
    cfg.value_pool = 16;
    ir::Function f = workload::random_program(cfg);

    machine::TimingModel timing;
    sim::Interpreter ref(f, timing);
    const auto ref_result = ref.run(std::vector<std::int64_t>{99});
    ASSERT_TRUE(ref_result.ok());

    regalloc::ChessboardPolicy policy;
    regalloc::LinearScanAllocator alloc(s.fp, policy);
    const auto a = alloc.allocate(f);
    ASSERT_TRUE(regalloc::allocation_is_legal(a.func, a.assignment));

    sim::Interpreter post(a.func, timing);
    const auto post_result = post.run(std::vector<std::int64_t>{99});
    ASSERT_TRUE(post_result.ok());
    EXPECT_EQ(*post_result.return_value, *ref_result.return_value)
        << "seed=" << seed;

    const auto analysis = dfa.analyze_post_ra(a.func, a.assignment);
    EXPECT_EQ(analysis.per_instruction.size(), a.func.instruction_count());
  }
}

TEST(Integration, NonConvergenceDiagnosticMechanism) {
  // The paper's diagnostic: when the analysis cannot settle within the
  // "reasonable number of iterations", it must say so rather than emit a
  // half-baked state — and relaxing δ must recover convergence on the
  // same program. (With our damping weighted-mean join, convergence is
  // governed by δ and loop thermal mass rather than branch irregularity;
  // EXPERIMENTS.md discusses this departure from the paper's intuition.)
  Rig s;
  workload::RandomProgramConfig cfg;
  cfg.seed = 7;
  cfg.target_instructions = 140;
  cfg.irregularity = 1.0;
  ir::Function f = workload::random_program(cfg);
  regalloc::FirstFreePolicy policy;
  regalloc::LinearScanAllocator alloc(s.fp, policy);
  const auto a = alloc.allocate(f);

  core::ThermalDfaConfig tight;
  tight.delta_k = 1e-9;
  tight.max_iterations = 5;
  const core::ThermalDfa dfa_tight(s.grid, s.power, s.timing, tight);
  const auto r_tight = dfa_tight.analyze_post_ra(a.func, a.assignment);
  EXPECT_FALSE(r_tight.converged);
  EXPECT_EQ(r_tight.iterations, tight.max_iterations);

  core::ThermalDfaConfig loose;
  loose.delta_k = 0.05;
  loose.max_iterations = 400;
  const core::ThermalDfa dfa_loose(s.grid, s.power, s.timing, loose);
  const auto r_loose = dfa_loose.analyze_post_ra(a.func, a.assignment);
  EXPECT_TRUE(r_loose.converged);
  // The per-instruction output exists in both cases (Fig. 2 outputs the
  // state regardless; convergence is a quality flag).
  EXPECT_EQ(r_tight.per_instruction.size(), r_loose.per_instruction.size());
}

}  // namespace
}  // namespace tadfa
