// Tests for incremental compilation: pass-boundary snapshots, the
// longest-prefix stage cache, and PassManager::resume. Load-bearing
// properties: a resumed run is byte-identical to a cold run of the same
// spec (printed IR, per-pass stats, merged analysis counters) at any
// job count; extending a compiled spec resumes every function at the
// deepest boundary and skips the whole prefix; corrupt or faulting
// stage entries degrade to a clean full recompile, never wrong output.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ir/printer.hpp"
#include "machine/floorplan.hpp"
#include "pipeline/driver.hpp"
#include "pipeline/result_cache.hpp"
#include "power/model.hpp"
#include "thermal/grid.hpp"
#include "workload/kernels.hpp"
#include "workload/modules.hpp"

namespace tadfa {
namespace {

namespace fs = std::filesystem;

/// The prefix spec every test compiles first...
constexpr const char* kPrefixSpec =
    "cse,dce,alloc=linear:first_free,thermal-dfa,"
    "alloc=coloring:coolest_first";
/// ...and the extension that should resume from its final boundary.
/// (nops cannot follow schedule without a fresh thermal-dfa — that
/// constraint holds cold, too — so the extension ends on schedule.)
constexpr const char* kExtendedSpec =
    "cse,dce,alloc=linear:first_free,thermal-dfa,"
    "alloc=coloring:coolest_first,schedule";

struct IncrementalTest : ::testing::Test {
  machine::Floorplan fp{machine::RegisterFileConfig::default_config()};
  thermal::ThermalGrid grid{fp};
  power::PowerModel power{fp.config()};
  fs::path dir;

  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir = fs::temp_directory_path() /
          (std::string("tadfa-incremental-test-") + info->name());
    fs::remove_all(dir);
  }
  void TearDown() override {
    fs::remove_all(dir);
    fs::remove_all(dir.string() + "-cold");
  }

  pipeline::PipelineContext context() const {
    pipeline::PipelineContext ctx;
    ctx.floorplan = &fp;
    ctx.grid = &grid;
    ctx.power = &power;
    return ctx;
  }

  ir::Module test_module(std::size_t functions, std::uint64_t seed = 7) {
    workload::ModuleConfig cfg;
    cfg.functions = functions;
    cfg.seed = seed;
    cfg.random_target_instructions = 60;  // keep the suite fast
    return workload::make_mixed_module(cfg);
  }

  pipeline::CompilationDriver staged_driver(pipeline::ResultCache* cache,
                                            unsigned jobs = 1) const {
    pipeline::CompilationDriver driver(context());
    driver.set_jobs(jobs);
    driver.set_result_cache(cache);
    pipeline::StagePolicy policy;
    policy.enabled = true;
    driver.set_stage_policy(policy);
    return driver;
  }

  std::vector<fs::path> entry_files() const {
    std::vector<fs::path> files;
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
      if (e.is_regular_file() && e.path().extension() == ".entry") {
        files.push_back(e.path());
      }
    }
    return files;
  }
};

/// Deterministic fields of two module results must match exactly —
/// printed IR, fingerprints, spills, merged pass stats (timing aside),
/// and the merged analysis counters down to the last invalidation.
void expect_identical(const pipeline::ModulePipelineResult& a,
                      const pipeline::ModulePipelineResult& b) {
  ASSERT_EQ(a.functions.size(), b.functions.size());
  for (std::size_t i = 0; i < a.functions.size(); ++i) {
    EXPECT_EQ(a.functions[i].name, b.functions[i].name);
    EXPECT_EQ(ir::to_string(a.functions[i].run.state.func),
              ir::to_string(b.functions[i].run.state.func));
    EXPECT_EQ(ir::fingerprint(a.functions[i].run.state.func),
              ir::fingerprint(b.functions[i].run.state.func));
    EXPECT_EQ(a.functions[i].run.state.spilled_regs,
              b.functions[i].run.state.spilled_regs);
  }
  const auto a_pass = a.merged_pass_stats();
  const auto b_pass = b.merged_pass_stats();
  ASSERT_EQ(a_pass.size(), b_pass.size());
  for (std::size_t i = 0; i < a_pass.size(); ++i) {
    EXPECT_EQ(a_pass[i].name, b_pass[i].name);
    EXPECT_EQ(a_pass[i].summary, b_pass[i].summary);
    EXPECT_EQ(a_pass[i].changed, b_pass[i].changed);
    EXPECT_EQ(a_pass[i].instructions_after, b_pass[i].instructions_after);
    EXPECT_EQ(a_pass[i].vregs_after, b_pass[i].vregs_after);
  }
  const auto a_an = a.merged_analysis_stats();
  const auto b_an = b.merged_analysis_stats();
  ASSERT_EQ(a_an.size(), b_an.size());
  for (std::size_t i = 0; i < a_an.size(); ++i) {
    EXPECT_EQ(a_an[i], b_an[i]) << a_an[i].name;
  }
}

TEST_F(IncrementalTest, StagePolicyWantsTheRightBoundaries) {
  // wants() only inspects pass names, so this spec need not be runnable.
  const auto passes = *pipeline::parse_pipeline_spec(
      "cse,dce,alloc=linear:first_free,thermal-dfa,"
      "alloc=coloring:coolest_first,schedule,nops");
  pipeline::StagePolicy policy;  // disabled by default
  for (std::size_t i = 0; i < passes.size(); ++i) {
    EXPECT_FALSE(policy.wants(i, passes));
  }
  policy.enabled = true;
  // after_expensive: alloc (2), thermal-dfa (3), alloc (4); at_end: 6.
  EXPECT_FALSE(policy.wants(0, passes));  // cse
  EXPECT_FALSE(policy.wants(1, passes));  // dce
  EXPECT_TRUE(policy.wants(2, passes));   // alloc=linear
  EXPECT_TRUE(policy.wants(3, passes));   // thermal-dfa
  EXPECT_TRUE(policy.wants(4, passes));   // alloc=coloring
  EXPECT_FALSE(policy.wants(5, passes));  // schedule
  EXPECT_TRUE(policy.wants(6, passes));   // nops (at_end)
  EXPECT_FALSE(policy.wants(7, passes));  // out of range

  policy.after_expensive = false;
  policy.at_end = false;
  policy.every_k = 3;
  for (std::size_t i = 0; i < passes.size(); ++i) {
    EXPECT_EQ(policy.wants(i, passes), (i + 1) % 3 == 0) << i;
  }

  // The digest separates placements: entries frozen under one policy
  // must not resume a run under another.
  pipeline::StagePolicy other;
  other.enabled = true;
  EXPECT_NE(policy.digest(), other.digest());
}

TEST_F(IncrementalTest, SpecExtensionResumesEveryFunctionAtAnyJobCount) {
  const std::size_t kPrefixLen =
      pipeline::parse_pipeline_spec(kPrefixSpec)->size();
  for (const unsigned jobs : {1u, 8u}) {
    SCOPED_TRACE(jobs);
    fs::remove_all(dir);
    const fs::path cold_dir = dir.string() + "-cold";
    fs::remove_all(cold_dir);
    const auto module = test_module(4);

    pipeline::ResultCache cache(dir.string());
    ASSERT_TRUE(cache.ok()) << cache.error();
    auto driver = staged_driver(&cache, jobs);

    const auto prefix_run = driver.compile(module, kPrefixSpec);
    ASSERT_TRUE(prefix_run.ok) << prefix_run.error;
    EXPECT_EQ(prefix_run.prefix_hits(), 0u);

    const auto resumed = driver.compile(module, kExtendedSpec);
    ASSERT_TRUE(resumed.ok) << resumed.error;
    EXPECT_EQ(resumed.prefix_hits(), module.size());
    EXPECT_EQ(resumed.passes_skipped(), module.size() * kPrefixLen);
    for (const auto& f : resumed.functions) {
      EXPECT_EQ(f.resumed_passes, kPrefixLen) << f.name;
      EXPECT_FALSE(f.from_cache) << f.name;
    }

    // Byte-identity: a cold incremental run of the extended spec on a
    // fresh cache must match the resumed run exactly.
    pipeline::ResultCache cold_cache(cold_dir.string());
    ASSERT_TRUE(cold_cache.ok()) << cold_cache.error();
    auto cold_driver = staged_driver(&cold_cache, jobs);
    const auto cold = cold_driver.compile(module, kExtendedSpec);
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_EQ(cold.prefix_hits(), 0u);
    expect_identical(resumed, cold);
  }
}

TEST_F(IncrementalTest, ResumedRunWarmsTheFullEntry) {
  const auto module = test_module(3);
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok()) << cache.error();
  auto driver = staged_driver(&cache);

  ASSERT_TRUE(driver.compile(module, kPrefixSpec).ok);
  const auto resumed = driver.compile(module, kExtendedSpec);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  EXPECT_EQ(resumed.prefix_hits(), module.size());

  // Third run of the extended spec: the resume also stored the full-run
  // entry, so this one restores without running a single pass.
  const auto warm = driver.compile(module, kExtendedSpec);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.cache_hits(), module.size());
  EXPECT_EQ(warm.prefix_hits(), 0u);
  expect_identical(resumed, warm);
}

TEST_F(IncrementalTest, TailChangeResumesFromTheDeepestSharedBoundary) {
  const auto module = test_module(3);
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok()) << cache.error();
  auto driver = staged_driver(&cache);

  ASSERT_TRUE(
      driver.compile(module, "cse,alloc=linear:first_free,thermal-dfa,schedule")
          .ok);
  // Same prefix through thermal-dfa (an after_expensive boundary), a
  // different tail: the alloc and DFA work is reused, only the new tail
  // runs.
  const auto retailed =
      driver.compile(module, "cse,alloc=linear:first_free,thermal-dfa,nops");
  ASSERT_TRUE(retailed.ok) << retailed.error;
  EXPECT_EQ(retailed.prefix_hits(), module.size());
  EXPECT_EQ(retailed.passes_skipped(), module.size() * 3);
}

TEST_F(IncrementalTest, CorruptStageEntriesDegradeToAFullRecompile) {
  const auto module = test_module(3);
  {
    pipeline::ResultCache cache(dir.string());
    ASSERT_TRUE(cache.ok()) << cache.error();
    auto driver = staged_driver(&cache);
    ASSERT_TRUE(driver.compile(module, kPrefixSpec).ok);
  }

  // Flip a byte near the end of every entry (stage payloads and full
  // entries alike) — the payload digest / totalizing readers must catch
  // all of it.
  for (const fs::path& file : entry_files()) {
    std::string bytes;
    {
      std::ifstream in(file, std::ios::binary);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      bytes = buffer.str();
    }
    ASSERT_FALSE(bytes.empty());
    bytes[bytes.size() - 3] ^= 0x5a;
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok()) << cache.error();
  auto driver = staged_driver(&cache);
  const auto recompiled = driver.compile(module, kExtendedSpec);
  ASSERT_TRUE(recompiled.ok) << recompiled.error;
  EXPECT_EQ(recompiled.prefix_hits(), 0u);
  EXPECT_GT(cache.stats().bad_entries, 0u);

  const fs::path cold_dir = dir.string() + "-cold";
  pipeline::ResultCache cold_cache(cold_dir.string());
  ASSERT_TRUE(cold_cache.ok()) << cold_cache.error();
  auto cold_driver = staged_driver(&cold_cache);
  const auto cold = cold_driver.compile(module, kExtendedSpec);
  ASSERT_TRUE(cold.ok) << cold.error;
  expect_identical(recompiled, cold);
}

TEST_F(IncrementalTest, TruncatedStageEntriesDegradeToAFullRecompile) {
  const auto module = test_module(2);
  {
    pipeline::ResultCache cache(dir.string());
    ASSERT_TRUE(cache.ok()) << cache.error();
    auto driver = staged_driver(&cache);
    ASSERT_TRUE(driver.compile(module, kPrefixSpec).ok);
  }
  for (const fs::path& file : entry_files()) {
    fs::resize_file(file, fs::file_size(file) / 2);
  }
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok()) << cache.error();
  auto driver = staged_driver(&cache);
  const auto recompiled = driver.compile(module, kExtendedSpec);
  ASSERT_TRUE(recompiled.ok) << recompiled.error;
  EXPECT_EQ(recompiled.prefix_hits(), 0u);
  EXPECT_GT(cache.stats().bad_entries, 0u);
}

TEST_F(IncrementalTest, StageFaultsDegradeToACompileNeverAFailure) {
  const auto module = test_module(3);
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok()) << cache.error();
  auto driver = staged_driver(&cache);
  ASSERT_TRUE(driver.compile(module, kPrefixSpec).ok);

  // Every stage operation now throws (cache directory deleted mid-run,
  // disk full, ...): the compile must neither fail nor resume, and the
  // output must match a clean cold run.
  cache.set_fault_hook([](std::string_view op) {
    if (op == "stage-lookup" || op == "stage-insert") {
      throw std::runtime_error("injected stage fault");
    }
  });
  const auto faulted = driver.compile(module, kExtendedSpec);
  ASSERT_TRUE(faulted.ok) << faulted.error;
  EXPECT_EQ(faulted.prefix_hits(), 0u);
  EXPECT_GT(cache.stats().lookup_faults, 0u);
  EXPECT_GT(cache.stats().store_failures, 0u);
  cache.set_fault_hook(nullptr);

  const fs::path cold_dir = dir.string() + "-cold";
  pipeline::ResultCache cold_cache(cold_dir.string());
  ASSERT_TRUE(cold_cache.ok()) << cold_cache.error();
  auto cold_driver = staged_driver(&cold_cache);
  const auto cold = cold_driver.compile(module, kExtendedSpec);
  ASSERT_TRUE(cold.ok) << cold.error;
  expect_identical(faulted, cold);
}

TEST_F(IncrementalTest, ResumePastTheEndOfThePipelineFails) {
  pipeline::PassManager manager(context());
  const auto passes = *pipeline::parse_pipeline_spec("cse,dce");
  const auto cold =
      manager.run(workload::make_kernel("crc32")->func, passes);
  ASSERT_TRUE(cold.ok) << cold.error;

  pipeline::ResumeState resume(
      pipeline::PipelineState(workload::make_kernel("crc32")->func));
  resume.passes_done = 3;  // past the end of a 2-pass pipeline
  const auto run = manager.resume(std::move(resume), passes);
  EXPECT_FALSE(run.ok);
  EXPECT_NE(run.error.find("past the end"), std::string::npos) << run.error;
}

TEST_F(IncrementalTest, DisabledPolicyKeepsPreIncrementalKeysWarm) {
  const auto module = test_module(3);
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok()) << cache.error();

  // A plain (non-incremental) driver warms the cache...
  pipeline::CompilationDriver plain(context());
  plain.set_jobs(1);
  plain.set_result_cache(&cache);
  ASSERT_TRUE(plain.compile(module, kPrefixSpec).ok);

  // ...and a second non-incremental driver still hits every entry: a
  // disabled stage policy contributes nothing to the environment digest.
  pipeline::CompilationDriver plain2(context());
  plain2.set_jobs(1);
  plain2.set_result_cache(&cache);
  const auto warm = plain2.compile(module, kPrefixSpec);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.cache_hits(), module.size());

  // An incremental driver keys differently (boundary normalization
  // changes the recorded counters) and must NOT reuse those entries.
  auto staged = staged_driver(&cache);
  const auto cold = staged.compile(module, kPrefixSpec);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(cold.cache_hits(), 0u);
}

TEST_F(IncrementalTest, ConcurrentWorkersShareTheStageCacheCleanly) {
  // TSan coverage: 8 workers race stage inserts on the cold run and
  // stage lookups + resumes on the extension, all against one cache.
  const auto module = test_module(8);
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok()) << cache.error();
  auto driver = staged_driver(&cache, 8);

  const auto prefix_run = driver.compile(module, kPrefixSpec);
  ASSERT_TRUE(prefix_run.ok) << prefix_run.error;

  const auto resumed = driver.compile(module, kExtendedSpec);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  EXPECT_EQ(resumed.prefix_hits(), module.size());

  const fs::path cold_dir = dir.string() + "-cold";
  pipeline::ResultCache cold_cache(cold_dir.string());
  ASSERT_TRUE(cold_cache.ok()) << cold_cache.error();
  auto cold_driver = staged_driver(&cold_cache, 8);
  const auto cold = cold_driver.compile(module, kExtendedSpec);
  ASSERT_TRUE(cold.ok) << cold.error;
  expect_identical(resumed, cold);
}

}  // namespace
}  // namespace tadfa
