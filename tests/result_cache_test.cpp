// Tests for pipeline::ResultCache — the persistent, content-addressed
// store of finished pipeline results. Load-bearing properties: an entry
// round-trips byte-for-byte (function, stats, thermal summary
// included); the key is sensitive to exactly the inputs a run is a pure
// function of (spec, input fingerprint, and each model's config digest
// independently); corruption of any kind degrades to a clean recompile,
// never to wrong output; and a warm CompilationDriver run over a mixed
// module is byte-identical to the cold run at any job count.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "ir/printer.hpp"
#include "machine/floorplan.hpp"
#include "pipeline/driver.hpp"
#include "pipeline/result_cache.hpp"
#include "power/model.hpp"
#include "thermal/grid.hpp"
#include "workload/kernels.hpp"
#include "workload/modules.hpp"

namespace tadfa {
namespace {

namespace fs = std::filesystem;

constexpr const char* kSpec =
    "cse,dce,alloc=linear:first_free,thermal-dfa,"
    "alloc=coloring:coolest_first,schedule";

struct ResultCacheTest : ::testing::Test {
  machine::Floorplan fp{machine::RegisterFileConfig::default_config()};
  thermal::ThermalGrid grid{fp};
  power::PowerModel power{fp.config()};
  fs::path dir;

  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir = fs::temp_directory_path() /
          (std::string("tadfa-result-cache-test-") + info->name());
    fs::remove_all(dir);
  }
  void TearDown() override { fs::remove_all(dir); }

  pipeline::PipelineContext context() const {
    pipeline::PipelineContext ctx;
    ctx.floorplan = &fp;
    ctx.grid = &grid;
    ctx.power = &power;
    return ctx;
  }

  ir::Module test_module(std::size_t functions, std::uint64_t seed = 11) {
    workload::ModuleConfig cfg;
    cfg.functions = functions;
    cfg.seed = seed;
    cfg.random_target_instructions = 60;  // keep the suite fast
    return workload::make_mixed_module(cfg);
  }

  /// Every .entry file currently in the cache directory.
  std::vector<fs::path> entry_files() const {
    std::vector<fs::path> files;
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
      if (e.is_regular_file() && e.path().extension() == ".entry") {
        files.push_back(e.path());
      }
    }
    return files;
  }

  static std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  static void spit(const fs::path& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
};

/// Deterministic fields of two module results must match exactly
/// (printed IR, fingerprints, spills, merged pass + analysis stats).
void expect_identical(const pipeline::ModulePipelineResult& a,
                      const pipeline::ModulePipelineResult& b) {
  ASSERT_EQ(a.functions.size(), b.functions.size());
  for (std::size_t i = 0; i < a.functions.size(); ++i) {
    EXPECT_EQ(a.functions[i].name, b.functions[i].name);
    EXPECT_EQ(ir::to_string(a.functions[i].run.state.func),
              ir::to_string(b.functions[i].run.state.func));
    EXPECT_EQ(ir::fingerprint(a.functions[i].run.state.func),
              ir::fingerprint(b.functions[i].run.state.func));
    EXPECT_EQ(a.functions[i].run.state.func.reg_count(),
              b.functions[i].run.state.func.reg_count());
    EXPECT_EQ(a.functions[i].run.state.spilled_regs,
              b.functions[i].run.state.spilled_regs);
  }
  const auto a_pass = a.merged_pass_stats();
  const auto b_pass = b.merged_pass_stats();
  ASSERT_EQ(a_pass.size(), b_pass.size());
  for (std::size_t i = 0; i < a_pass.size(); ++i) {
    EXPECT_EQ(a_pass[i].name, b_pass[i].name);
    EXPECT_EQ(a_pass[i].summary, b_pass[i].summary);
    EXPECT_EQ(a_pass[i].changed, b_pass[i].changed);
    EXPECT_EQ(a_pass[i].instructions_after, b_pass[i].instructions_after);
    EXPECT_EQ(a_pass[i].vregs_after, b_pass[i].vregs_after);
  }
  const auto a_an = a.merged_analysis_stats();
  const auto b_an = b.merged_analysis_stats();
  ASSERT_EQ(a_an.size(), b_an.size());
  for (std::size_t i = 0; i < a_an.size(); ++i) {
    EXPECT_EQ(a_an[i], b_an[i]) << a_an[i].name;
  }
}

TEST_F(ResultCacheTest, CachedResultRoundTripsByteForByte) {
  pipeline::PassManager manager(context());
  // Stop right after the DFA so the thermal summary is registered.
  const auto run = manager.run(workload::make_kernel("crc32")->func,
                               "alloc=linear:first_free,thermal-dfa");
  ASSERT_TRUE(run.ok) << run.error;
  ASSERT_NE(run.state.dfa(), nullptr);

  const auto entry = pipeline::CachedResult::from_run(run);
  ASSERT_TRUE(entry.thermal.has_value());
  EXPECT_FALSE(entry.analysis_stats.empty());
  EXPECT_EQ(entry.pass_stats, run.pass_stats);

  ByteWriter w;
  entry.serialize(w);
  ByteReader r(w.data());
  const auto decoded = pipeline::CachedResult::deserialize(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(*decoded, entry);

  // Serializing the decoded copy reproduces the exact bytes.
  ByteWriter w2;
  decoded->serialize(w2);
  EXPECT_EQ(w.data(), w2.data());

  // And the decoded entry reconstructs a run whose function is
  // fingerprint-identical to the original, stats included.
  const auto restored = decoded->to_run(run.state.func.name());
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(ir::to_string(restored->state.func),
            ir::to_string(run.state.func));
  EXPECT_EQ(ir::fingerprint(restored->state.func),
            ir::fingerprint(run.state.func));
  EXPECT_EQ(restored->state.func.reg_count(), run.state.func.reg_count());
  EXPECT_EQ(restored->state.func.stack_slot_count(),
            run.state.func.stack_slot_count());
  EXPECT_EQ(restored->pass_stats, run.pass_stats);
  EXPECT_EQ(restored->state.analyses.stats(), run.state.analyses.stats());
}

TEST_F(ResultCacheTest, LookupRestampsTheRequestedName) {
  pipeline::PassManager manager(context());
  const auto run =
      manager.run(workload::make_kernel("fir")->func, "dce");
  ASSERT_TRUE(run.ok) << run.error;

  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok()) << cache.error();
  const auto key = pipeline::ResultCache::make_key(1, "dce", 2);
  ASSERT_TRUE(cache.insert(key, run));

  // The key ignores names on purpose: an identically-shaped function
  // under another name shares the entry and gets its own name back.
  const auto hit = cache.lookup(key, "fir_clone_7");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->state.func.name(), "fir_clone_7");
  EXPECT_EQ(ir::fingerprint(hit->state.func),
            ir::fingerprint(run.state.func));
}

TEST_F(ResultCacheTest, WarmModuleRunIsByteIdenticalAtAnyJobCount) {
  // The acceptance-criterion workload: a ≥200-function mixed module.
  const ir::Module module = test_module(200, /*seed=*/7);

  pipeline::CompilationDriver driver(context());
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok()) << cache.error();
  driver.set_result_cache(&cache);

  driver.set_jobs(1);
  const auto cold = driver.compile(module, kSpec);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(cold.cache_hits(), 0u);
  EXPECT_EQ(cache.stats().stores, module.size());

  const auto warm1 = driver.compile(module, kSpec);
  ASSERT_TRUE(warm1.ok) << warm1.error;
  driver.set_jobs(8);
  const auto warm8 = driver.compile(module, kSpec);
  ASSERT_TRUE(warm8.ok) << warm8.error;

  EXPECT_GE(warm1.cache_hit_rate(), 0.95);
  EXPECT_GE(warm8.cache_hit_rate(), 0.95);
  expect_identical(cold, warm1);
  expect_identical(cold, warm8);
}

TEST_F(ResultCacheTest, WarmHitsRematerializeTheThermalSummary) {
  // A spec whose every pass keeps the DFA result alive to the end, so
  // the cold run records a thermal summary for each function — warm
  // hits must answer state.dfa() with the converged exit data (summary
  // form: per-instruction states are not kept across processes).
  const char* spec = "alloc=linear:first_free,thermal-dfa";
  const ir::Module module = test_module(6, /*seed=*/17);

  pipeline::CompilationDriver driver(context());
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok()) << cache.error();
  driver.set_result_cache(&cache);
  ASSERT_TRUE(driver.compile(module, spec).ok);

  const auto warm = driver.compile(module, spec);
  ASSERT_TRUE(warm.ok) << warm.error;
  for (const auto& f : warm.functions) {
    ASSERT_TRUE(f.from_cache) << f.name;
    const core::ThermalDfaResult* dfa = f.run.state.dfa();
    ASSERT_NE(dfa, nullptr) << f.name;
    EXPECT_FALSE(dfa->exit_reg_temps_k.empty()) << f.name;
    EXPECT_GT(dfa->exit_stats.peak_k, 0.0) << f.name;
  }
}

TEST_F(ResultCacheTest, ContextDigestRespondsToEachModelIndependently) {
  const pipeline::PipelineContext base = context();
  const std::uint64_t base_digest =
      pipeline::ResultCache::context_digest(base);

  // Same inputs, same digest.
  EXPECT_EQ(pipeline::ResultCache::context_digest(context()), base_digest);

  // Floorplan geometry.
  machine::Floorplan small_fp(machine::RegisterFileConfig::small_config());
  pipeline::PipelineContext ctx = context();
  ctx.floorplan = &small_fp;
  EXPECT_NE(pipeline::ResultCache::context_digest(ctx), base_digest);

  // Thermal grid resolution.
  thermal::ThermalGrid fine_grid(fp, /*subdivision=*/2);
  ctx = context();
  ctx.grid = &fine_grid;
  EXPECT_NE(pipeline::ResultCache::context_digest(ctx), base_digest);

  // Power coefficients.
  machine::RegisterFileConfig hot_cfg = fp.config();
  hot_cfg.tech.read_energy_j *= 2.0;
  power::PowerModel hot_power(hot_cfg);
  ctx = context();
  ctx.power = &hot_power;
  EXPECT_NE(pipeline::ResultCache::context_digest(ctx), base_digest);

  // Timing table.
  ctx = context();
  ctx.timing.set_latency(ir::Opcode::kMul, 5);
  EXPECT_NE(pipeline::ResultCache::context_digest(ctx), base_digest);

  // DFA configuration and policy seed.
  ctx = context();
  ctx.dfa_config.delta_k = 0.5;
  EXPECT_NE(pipeline::ResultCache::context_digest(ctx), base_digest);
  ctx = context();
  ctx.policy_seed = 1234;
  EXPECT_NE(pipeline::ResultCache::context_digest(ctx), base_digest);
}

TEST_F(ResultCacheTest, ContextDigestRespondsToStrictMath) {
  const std::uint64_t base_digest =
      pipeline::ResultCache::context_digest(context());
  pipeline::PipelineContext ctx = context();
  ctx.dfa_config.strict_math = true;
  EXPECT_NE(pipeline::ResultCache::context_digest(ctx), base_digest);
  ctx.dfa_config.strict_math = false;
  EXPECT_EQ(pipeline::ResultCache::context_digest(ctx), base_digest);
}

TEST_F(ResultCacheTest, StrictMathIsByteIdenticalToReferenceGridThroughCache) {
  // The full-pipeline contract behind --strict-math: compiling with the
  // flag on any grid equals compiling against a reference-kernel grid,
  // cold and warm through the result cache alike.
  const ir::Module module = test_module(4, /*seed=*/7);

  thermal::ThermalGrid ref_grid(fp, /*subdivision=*/1,
                                thermal::StepKernel::kReference);
  pipeline::PipelineContext ref_ctx = context();
  ref_ctx.grid = &ref_grid;
  pipeline::CompilationDriver ref_driver(ref_ctx);
  const auto baseline = ref_driver.compile(module, kSpec);
  ASSERT_TRUE(baseline.ok) << baseline.error;

  pipeline::PipelineContext strict_ctx = context();
  strict_ctx.dfa_config.strict_math = true;
  pipeline::CompilationDriver driver(strict_ctx);
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok()) << cache.error();
  driver.set_result_cache(&cache);
  const auto cold = driver.compile(module, kSpec);
  ASSERT_TRUE(cold.ok) << cold.error;
  const auto warm = driver.compile(module, kSpec);
  ASSERT_TRUE(warm.ok) << warm.error;

  EXPECT_GE(warm.cache_hit_rate(), 0.95);
  expect_identical(baseline, cold);
  expect_identical(baseline, warm);
}

TEST_F(ResultCacheTest, KeyFlipsOnFingerprintSpecAndContext) {
  const auto base = pipeline::ResultCache::make_key(10, "dce", 20);
  EXPECT_EQ(pipeline::ResultCache::make_key(10, "dce", 20), base);
  EXPECT_NE(pipeline::ResultCache::make_key(11, "dce", 20), base);
  EXPECT_NE(pipeline::ResultCache::make_key(10, "cse", 20), base);
  EXPECT_NE(pipeline::ResultCache::make_key(10, "dce", 21), base);
  EXPECT_EQ(base.text().size(), 32u);
}

TEST_F(ResultCacheTest, CorruptedEntriesFallBackToACleanRecompile) {
  const ir::Module module = test_module(4, /*seed=*/5);
  pipeline::CompilationDriver driver(context());

  {
    pipeline::ResultCache cache(dir.string());
    ASSERT_TRUE(cache.ok()) << cache.error();
    driver.set_result_cache(&cache);
    const auto cold = driver.compile(module, kSpec);
    ASSERT_TRUE(cold.ok) << cold.error;
  }
  const auto files = entry_files();
  ASSERT_EQ(files.size(), module.size());

  // Three corruption flavors: truncation, an emptied file, and a bit
  // flip in the payload (which must be caught by the fingerprint check
  // even when the record still parses).
  const std::string original = slurp(files[0]);
  spit(files[0], original.substr(0, original.size() / 2));
  spit(files[1], "");
  std::string flipped = slurp(files[2]);
  flipped[flipped.size() / 2] =
      static_cast<char>(flipped[flipped.size() / 2] ^ 0x20);
  spit(files[2], flipped);

  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok()) << cache.error();
  driver.set_result_cache(&cache);
  const auto mixed = driver.compile(module, kSpec);
  ASSERT_TRUE(mixed.ok) << mixed.error;

  // Correct output regardless, and the damage is visible in counters.
  pipeline::CompilationDriver clean_driver(context());
  const auto reference = clean_driver.compile(module, kSpec);
  expect_identical(reference, mixed);
  EXPECT_GE(cache.stats().bad_entries, 3u);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, module.size());

  // The recompile replaced every damaged entry: fully warm again.
  const auto warm = driver.compile(module, kSpec);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.cache_hits(), module.size());
}

TEST_F(ResultCacheTest, FormatVersionBumpInvalidatesEntries) {
  const ir::Module module = test_module(2, /*seed=*/9);
  pipeline::CompilationDriver driver(context());
  {
    pipeline::ResultCache cache(dir.string());
    ASSERT_TRUE(cache.ok()) << cache.error();
    driver.set_result_cache(&cache);
    ASSERT_TRUE(driver.compile(module, "dce").ok);
  }
  // The u32 format version sits right after the 8-byte magic; bump it
  // in place to fake an entry written by a future format.
  for (const fs::path& file : entry_files()) {
    std::string bytes = slurp(file);
    ASSERT_GT(bytes.size(), 12u);
    bytes[8] = static_cast<char>(bytes[8] + 1);
    spit(file, bytes);
  }
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok()) << cache.error();
  driver.set_result_cache(&cache);
  const auto run = driver.compile(module, "dce");
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_EQ(run.cache_hits(), 0u);
  EXPECT_EQ(cache.stats().bad_entries, module.size());
  EXPECT_EQ(cache.stats().stores, module.size());  // rewritten fresh
}

TEST_F(ResultCacheTest, EvictionKeepsTheCacheUnderItsByteBudget) {
  const ir::Module module = test_module(8, /*seed=*/13);
  pipeline::CompilationDriver driver(context());
  // Size the budget from reality: fill an unbounded cache first, then
  // redo the run against a cache allowed half those bytes.
  std::uint64_t full_bytes = 0;
  {
    pipeline::ResultCache cache(dir.string());
    ASSERT_TRUE(cache.ok()) << cache.error();
    driver.set_result_cache(&cache);
    ASSERT_TRUE(driver.compile(module, "dce").ok);
    full_bytes = cache.total_bytes();
  }
  fs::remove_all(dir);
  const std::uint64_t budget = full_bytes / 2;
  pipeline::ResultCache cache(dir.string(), budget);
  ASSERT_TRUE(cache.ok()) << cache.error();
  driver.set_result_cache(&cache);
  ASSERT_TRUE(driver.compile(module, "dce").ok);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.stores, module.size());
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LT(cache.entry_count(), module.size());
  EXPECT_GE(cache.entry_count(), 1u);
  // Within budget — except that the newest entry is never evicted, so
  // a single oversized survivor is the one tolerated excess.
  EXPECT_TRUE(cache.total_bytes() <= budget || cache.entry_count() == 1);
  // Index and directory agree after eviction.
  EXPECT_EQ(entry_files().size(), cache.entry_count());
}

TEST_F(ResultCacheTest, ConcurrentDriversShareOneCacheCleanly) {
  // Two drivers race warm/cold lookups and inserts on the same cache —
  // the TSan CI job runs this suite to keep the locking honest.
  const ir::Module module = test_module(8, /*seed=*/3);
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok()) << cache.error();

  pipeline::CompilationDriver reference_driver(context());
  const auto reference = reference_driver.compile(module, kSpec);
  ASSERT_TRUE(reference.ok) << reference.error;

  std::vector<pipeline::ModulePipelineResult> results(2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      pipeline::CompilationDriver driver(context());
      driver.set_jobs(2);
      driver.set_result_cache(&cache);
      results[static_cast<std::size_t>(t)] = driver.compile(module, kSpec);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok) << result.error;
    expect_identical(reference, result);
  }
  // Every probe resolved to a hit or a miss; nothing was lost.
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 2 * module.size());
}

TEST_F(ResultCacheTest, DisabledCacheDirectoryDegradesGracefully) {
  // A path that cannot be a directory: a file stands in the way.
  const fs::path blocker = fs::temp_directory_path() /
                           "tadfa-result-cache-test-blocker";
  spit(blocker, "not a directory");
  pipeline::ResultCache cache((blocker / "sub").string());
  EXPECT_FALSE(cache.ok());
  EXPECT_FALSE(cache.error().empty());

  // Lookups miss, inserts drop, compilation still works.
  const ir::Module module = test_module(2);
  pipeline::CompilationDriver driver(context());
  driver.set_result_cache(&cache);
  const auto run = driver.compile(module, "dce");
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_EQ(run.cache_hits(), 0u);
  fs::remove(blocker);
}

/// Runs `passes` over the crc32 kernel with a snapshot hook at pass
/// boundary `boundary`, returning the captured StageEntry.
pipeline::StageEntry capture_stage(const pipeline::PassManager& manager,
                                   const std::vector<pipeline::PassSpec>& passes,
                                   std::size_t boundary) {
  pipeline::StageEntry captured;
  bool fired = false;
  pipeline::SnapshotHooks hooks;
  hooks.want = [boundary](std::size_t index) { return index == boundary; };
  hooks.sink = [&](std::size_t done, const pipeline::PipelineSnapshot& snap,
                   const std::vector<pipeline::PassRunStats>& pass_stats,
                   const std::vector<pipeline::AnalysisManager::AnalysisStats>&
                       analysis_stats,
                   double prefix_seconds) {
    captured = pipeline::StageEntry{static_cast<std::uint32_t>(done), snap,
                                    pass_stats, analysis_stats, prefix_seconds};
    fired = true;
  };
  const auto run =
      manager.run(workload::make_kernel("crc32")->func, passes, hooks);
  EXPECT_TRUE(run.ok) << run.error;
  EXPECT_TRUE(fired);
  return captured;
}

TEST_F(ResultCacheTest, StageEntryRoundTripsThroughTheCache) {
  pipeline::PassManager manager(context());
  const auto passes = *pipeline::parse_pipeline_spec(kSpec);
  const auto stage = capture_stage(manager, passes, /*boundary=*/3);
  ASSERT_EQ(stage.passes_done, 4u);  // cse,dce,alloc,thermal-dfa done
  ASSERT_TRUE(stage.snapshot.thermal.has_value());
  // Stage snapshots carry the DFA at full fidelity: per-instruction
  // states must survive so passes like nops can run past the boundary.
  EXPECT_FALSE(stage.snapshot.thermal->per_instruction.empty());

  const std::uint64_t input_fp =
      ir::fingerprint(workload::make_kernel("crc32")->func);
  const auto key = pipeline::ResultCache::make_stage_key(
      input_fp, pipeline::spec_prefix_digest(passes, 4),
      pipeline::ResultCache::context_digest(context()));

  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok()) << cache.error();
  ASSERT_TRUE(cache.insert_stage(key, stage));
  const auto restored = cache.lookup_stage(key);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, stage);

  // A shorter prefix was never stored: distinct key, clean miss.
  const auto other_key = pipeline::ResultCache::make_stage_key(
      input_fp, pipeline::spec_prefix_digest(passes, 3),
      pipeline::ResultCache::context_digest(context()));
  EXPECT_FALSE(cache.lookup_stage(other_key).has_value());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.stage_stores, 1u);
  EXPECT_EQ(stats.stage_hits, 1u);
  EXPECT_EQ(stats.stage_misses, 1u);
  EXPECT_EQ(stats.stores, 0u);  // full-run counters untouched
}

TEST_F(ResultCacheTest, CorruptStagePayloadIsRemovedAndCountedBad) {
  pipeline::PassManager manager(context());
  const auto passes = *pipeline::parse_pipeline_spec(kSpec);
  const auto stage = capture_stage(manager, passes, /*boundary=*/3);
  const auto key = pipeline::ResultCache::make_stage_key(
      ir::fingerprint(workload::make_kernel("crc32")->func),
      pipeline::spec_prefix_digest(passes, 4),
      pipeline::ResultCache::context_digest(context()));

  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok()) << cache.error();
  ASSERT_TRUE(cache.insert_stage(key, stage));
  const auto files = entry_files();
  ASSERT_EQ(files.size(), 1u);
  std::string bytes = slurp(files[0]);
  bytes[bytes.size() / 2] ^= 0x40;  // payload flip; the digest catches it
  spit(files[0], bytes);

  EXPECT_FALSE(cache.lookup_stage(key).has_value());
  EXPECT_EQ(cache.stats().bad_entries, 1u);
  EXPECT_TRUE(entry_files().empty());  // removed on contact
}

TEST_F(ResultCacheTest, CorruptEntryRemovalDecrementsTrackedBytes) {
  // Eviction trusts total_bytes(); if deleting a corrupt entry forgot
  // to release its bytes, the phantom accounting would eventually evict
  // healthy entries to pay for files that no longer exist.
  pipeline::PassManager manager(context());
  const auto run = manager.run(workload::make_kernel("crc32")->func, kSpec);
  ASSERT_TRUE(run.ok) << run.error;
  const auto passes = *pipeline::parse_pipeline_spec(kSpec);
  const auto stage = capture_stage(manager, passes, /*boundary=*/3);

  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok()) << cache.error();
  const auto full_key = pipeline::ResultCache::make_key(
      ir::fingerprint(workload::make_kernel("crc32")->func), kSpec,
      pipeline::ResultCache::context_digest(context()));
  const auto stage_key = pipeline::ResultCache::make_stage_key(
      ir::fingerprint(workload::make_kernel("crc32")->func),
      pipeline::spec_prefix_digest(passes, 4),
      pipeline::ResultCache::context_digest(context()));
  ASSERT_TRUE(cache.insert(full_key, run));
  ASSERT_TRUE(cache.insert_stage(stage_key, stage));
  const std::uint64_t before = cache.total_bytes();

  // Find and corrupt the stage entry's file (the full entry is the one
  // lookup() still restores afterwards).
  const auto files = entry_files();
  ASSERT_EQ(files.size(), 2u);
  std::uint64_t corrupted_size = 0;
  for (const auto& file : files) {
    std::string bytes = slurp(file);
    ByteReader probe(bytes);
    if (probe.u64() == 0x5441444641534731ull) {  // "TADFASG1"
      corrupted_size = bytes.size();
      bytes[bytes.size() / 2] ^= 0x40;
      spit(file, bytes);
    }
  }
  ASSERT_GT(corrupted_size, 0u);

  EXPECT_FALSE(cache.lookup_stage(stage_key).has_value());
  EXPECT_EQ(cache.stats().bad_entries, 1u);
  // Exactly the corrupt file's bytes are released, no more, no less.
  EXPECT_EQ(cache.total_bytes(), before - corrupted_size);
  EXPECT_TRUE(cache.lookup(full_key, "crc32").has_value());
}

TEST_F(ResultCacheTest, GraphRecordRoundTripsAndCorruptionDegrades) {
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok()) << cache.error();
  const auto key = pipeline::ResultCache::make_graph_key(
      /*module_names_digest=*/0x1234u, kSpec,
      pipeline::ResultCache::context_digest(context()));
  const std::string payload = "serialized dependency graph stand-in";

  // Absent record: a miss, not an error — first compile of the slot.
  EXPECT_EQ(cache.lookup_graph(key).status,
            pipeline::ResultCache::GraphReadStatus::kMiss);
  ASSERT_TRUE(cache.insert_graph(key, payload));
  const auto hit = cache.lookup_graph(key);
  EXPECT_EQ(hit.status, pipeline::ResultCache::GraphReadStatus::kHit);
  EXPECT_EQ(hit.payload, payload);

  // Overwrite is the normal case: every edit-aware compile rewrites the
  // slot. The accounting swaps the old bytes for the new.
  const std::string payload2 = payload + " (rewritten)";
  ASSERT_TRUE(cache.insert_graph(key, payload2));
  EXPECT_EQ(cache.lookup_graph(key).payload, payload2);
  ASSERT_EQ(entry_files().size(), 1u);

  auto stats = cache.stats();
  EXPECT_EQ(stats.graph_stores, 2u);
  EXPECT_EQ(stats.graph_hits, 2u);
  EXPECT_EQ(stats.graph_misses, 1u);
  EXPECT_EQ(stats.stores, 0u);  // full-run counters untouched

  // A flipped payload byte fails the trailing digest: kCorrupt, counted
  // bad, the file removed, and its bytes released from the total.
  const auto before = cache.total_bytes();
  const auto file = entry_files()[0];
  const std::uint64_t size = fs::file_size(file);
  std::string bytes = slurp(file);
  bytes[bytes.size() - 3] ^= 0x5a;
  spit(file, bytes);
  EXPECT_EQ(cache.lookup_graph(key).status,
            pipeline::ResultCache::GraphReadStatus::kCorrupt);
  EXPECT_EQ(cache.stats().bad_entries, 1u);
  EXPECT_TRUE(entry_files().empty());
  EXPECT_EQ(cache.total_bytes(), before - size);

  // After removal the slot reads as a clean miss again.
  EXPECT_EQ(cache.lookup_graph(key).status,
            pipeline::ResultCache::GraphReadStatus::kMiss);
}

TEST_F(ResultCacheTest, IndexFlushIntervalControlsWhenTheIndexHitsDisk) {
  pipeline::PassManager manager(context());
  const auto passes = *pipeline::parse_pipeline_spec(kSpec);
  const auto stage = capture_stage(manager, passes, /*boundary=*/3);
  const std::uint64_t input_fp =
      ir::fingerprint(workload::make_kernel("crc32")->func);
  const std::uint64_t ctx = pipeline::ResultCache::context_digest(context());
  const fs::path index = dir / "index.txt";

  {
    // Default batching: a couple of stores stay below the interval, so
    // nothing hits disk until an explicit flush().
    pipeline::ResultCache cache(dir.string());
    ASSERT_TRUE(cache.ok()) << cache.error();
    for (std::size_t k = 1; k <= 2; ++k) {
      ASSERT_TRUE(cache.insert_stage(
          pipeline::ResultCache::make_stage_key(
              input_fp, pipeline::spec_prefix_digest(passes, k), ctx),
          stage));
    }
    EXPECT_FALSE(fs::exists(index));
    cache.flush();
    EXPECT_TRUE(fs::exists(index));
  }
  fs::remove_all(dir);

  // interval=1: every store persists the index — a long-lived process
  // (tadfa serve) killed without running destructors loses nothing.
  pipeline::ResultCache cache(
      pipeline::ResultCache::Config{dir.string(), 0, 1});
  ASSERT_TRUE(cache.ok()) << cache.error();
  ASSERT_TRUE(cache.insert_stage(
      pipeline::ResultCache::make_stage_key(
          input_fp, pipeline::spec_prefix_digest(passes, 1), ctx),
      stage));
  EXPECT_TRUE(fs::exists(index));
  const std::string rows = slurp(index);
  EXPECT_NE(rows.find("tadfa-result-cache-index"), std::string::npos);
}

TEST_F(ResultCacheTest, StageEntriesParticipateInEviction) {
  pipeline::PassManager manager(context());
  const auto passes = *pipeline::parse_pipeline_spec(kSpec);
  const auto stage = capture_stage(manager, passes, /*boundary=*/3);
  const std::uint64_t input_fp =
      ir::fingerprint(workload::make_kernel("crc32")->func);
  const std::uint64_t ctx = pipeline::ResultCache::context_digest(context());
  auto key_at = [&](std::size_t k) {
    return pipeline::ResultCache::make_stage_key(
        input_fp, pipeline::spec_prefix_digest(passes, k), ctx);
  };

  // Size the budget from reality, as the full-entry eviction test does.
  std::uint64_t full_bytes = 0;
  {
    pipeline::ResultCache cache(dir.string());
    ASSERT_TRUE(cache.ok()) << cache.error();
    for (std::size_t k = 1; k <= passes.size(); ++k) {
      ASSERT_TRUE(cache.insert_stage(key_at(k), stage));
    }
    full_bytes = cache.total_bytes();
  }
  fs::remove_all(dir);

  const std::uint64_t budget = full_bytes / 2;
  pipeline::ResultCache cache(dir.string(), budget);
  ASSERT_TRUE(cache.ok()) << cache.error();
  for (std::size_t k = 1; k <= passes.size(); ++k) {
    ASSERT_TRUE(cache.insert_stage(key_at(k), stage));
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.stage_stores, passes.size());
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LT(cache.entry_count(), passes.size());
  EXPECT_TRUE(cache.total_bytes() <= budget || cache.entry_count() == 1);
  EXPECT_EQ(entry_files().size(), cache.entry_count());
}

}  // namespace
}  // namespace tadfa
