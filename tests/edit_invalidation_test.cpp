// Tests for dependency-edge invalidation: the DependencyGraph structure,
// its persisted TADFADG1 record, and the edit-aware CompilationDriver
// mode. Load-bearing properties: editing one function invalidates exactly
// that function plus its transitive dependents (everything else restores
// warm, byte-identical to a from-scratch compile of the edited module); a
// corrupt, truncated, or throwing graph record degrades to a conservative
// whole-module recompile — flagged, counted, never a wrong answer; and
// concurrent edit-resubmits over one shared cache stay deterministic (this
// suite runs under TSan).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "machine/floorplan.hpp"
#include "pipeline/dependency_graph.hpp"
#include "pipeline/driver.hpp"
#include "pipeline/result_cache.hpp"
#include "power/model.hpp"
#include "thermal/grid.hpp"
#include "workload/modules.hpp"

namespace tadfa {
namespace {

namespace fs = std::filesystem;

using pipeline::InvalidationReason;

constexpr const char* kSpec =
    "cse,dce,alloc=linear:first_free,thermal-dfa,"
    "alloc=coloring:coolest_first";

/// A tiny module with a reference chain c -> b -> a and a loner d.
/// `a_imm` parameterizes @a's constant, so bumping it models an edit.
ir::Module chain_module(int a_imm = 1) {
  const std::string text =
      "func @a(%0) {\nentry:\n  %1 = const " + std::to_string(a_imm) +
      "\n  %2 = add %0, %1\n  ret %2\n}\n"
      "\n"
      "func @b(%0) {\nentry:\n  %1 = const 2\n  %2 = mul %0, %1\n  ret %2\n}\n"
      "\n"
      "func @c(%0) {\nentry:\n  %1 = const 3\n  %2 = sub %0, %1\n  ret %2\n}\n"
      "\n"
      "func @d(%0) {\nentry:\n  ret %0\n}\n"
      "\n"
      "ref @b -> @a\n"
      "ref @c -> @b\n";
  auto module = ir::parse_module(text);
  EXPECT_TRUE(module.has_value());
  return std::move(*module);
}

struct EditInvalidationTest : ::testing::Test {
  machine::Floorplan fp{machine::RegisterFileConfig::default_config()};
  thermal::ThermalGrid grid{fp};
  power::PowerModel power{fp.config()};
  fs::path dir;

  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir = fs::temp_directory_path() /
          (std::string("tadfa-edit-invalidation-test-") + info->name());
    fs::remove_all(dir);
  }
  void TearDown() override {
    fs::remove_all(dir);
    fs::remove_all(dir.string() + "-cold");
  }

  pipeline::PipelineContext context() const {
    pipeline::PipelineContext ctx;
    ctx.floorplan = &fp;
    ctx.grid = &grid;
    ctx.power = &power;
    return ctx;
  }

  pipeline::CompilationDriver edit_driver(pipeline::ResultCache* cache,
                                          unsigned jobs = 1) const {
    pipeline::CompilationDriver driver(context());
    driver.set_jobs(jobs);
    driver.set_result_cache(cache);
    driver.set_edit_aware(true);
    return driver;
  }

  /// A from-scratch, uncached compile — the identity reference.
  pipeline::ModulePipelineResult cold_reference(const ir::Module& module) {
    pipeline::CompilationDriver driver(context());
    driver.set_jobs(1);
    return driver.compile(module, kSpec);
  }

  /// The on-disk TADFADG1 records in `dir`, found by their magic (the
  /// little-endian encoding of "TADFADG1" leads every graph record).
  std::vector<fs::path> graph_record_files() const {
    std::vector<fs::path> files;
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
      if (!e.is_regular_file() || e.path().extension() != ".entry") {
        continue;
      }
      std::ifstream in(e.path(), std::ios::binary);
      char head[8] = {};
      in.read(head, sizeof(head));
      if (in.gcount() == 8 && std::string_view(head, 8) == "1GDAFDAT") {
        files.push_back(e.path());
      }
    }
    return files;
  }
};

void expect_identical(const pipeline::ModulePipelineResult& a,
                      const pipeline::ModulePipelineResult& b) {
  ASSERT_EQ(a.functions.size(), b.functions.size());
  for (std::size_t i = 0; i < a.functions.size(); ++i) {
    EXPECT_EQ(a.functions[i].name, b.functions[i].name);
    EXPECT_EQ(ir::to_string(a.functions[i].run.state.func),
              ir::to_string(b.functions[i].run.state.func));
    EXPECT_EQ(ir::fingerprint(a.functions[i].run.state.func),
              ir::fingerprint(b.functions[i].run.state.func));
    EXPECT_EQ(a.functions[i].run.state.spilled_regs,
              b.functions[i].run.state.spilled_regs);
  }
}

// ------------------------------------------------- graph construction ----

TEST(DependencyGraph, BuildsSortedNodesWithClosures) {
  const ir::Module module = chain_module();
  const auto graph = pipeline::DependencyGraph::build(module);
  ASSERT_EQ(graph.nodes().size(), 4u);
  EXPECT_EQ(graph.nodes()[0].name, "a");
  EXPECT_EQ(graph.nodes()[3].name, "d");
  EXPECT_TRUE(graph.node("a")->deps.empty());
  EXPECT_EQ(graph.node("b")->deps, std::vector<std::string>{"a"});
  EXPECT_EQ(graph.node("c")->deps, std::vector<std::string>{"b"});
  EXPECT_EQ(graph.dependents_of("a"),
            (std::vector<std::string>{"b", "c"}));
  EXPECT_EQ(graph.dependents_of("b"), std::vector<std::string>{"c"});
  EXPECT_TRUE(graph.dependents_of("d").empty());
}

TEST(DependencyGraph, EditChangesClosureOfTransitiveDependents) {
  const auto before = pipeline::DependencyGraph::build(chain_module(1));
  const auto after = pipeline::DependencyGraph::build(chain_module(9));
  // Only @a's body changed...
  EXPECT_NE(before.node("a")->fingerprint, after.node("a")->fingerprint);
  EXPECT_EQ(before.node("b")->fingerprint, after.node("b")->fingerprint);
  // ...but the closure digest propagates through the whole chain.
  EXPECT_NE(before.node("a")->closure_digest, after.node("a")->closure_digest);
  EXPECT_NE(before.node("b")->closure_digest, after.node("b")->closure_digest);
  EXPECT_NE(before.node("c")->closure_digest, after.node("c")->closure_digest);
  // The loner is untouched, and the module slot identity is stable.
  EXPECT_EQ(before.node("d")->closure_digest, after.node("d")->closure_digest);
  EXPECT_EQ(before.names_digest(), after.names_digest());
}

TEST(DependencyGraph, SerializeRoundTripsAndRejectsTruncation) {
  const auto graph = pipeline::DependencyGraph::build(chain_module());
  ByteWriter w;
  graph.serialize(w);
  {
    ByteReader r(w.data());
    const auto parsed = pipeline::DependencyGraph::deserialize(r);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, graph);
    EXPECT_EQ(r.remaining(), 0u);
  }
  // Every proper prefix must be rejected, never mis-decoded or looped on.
  const std::string bytes = w.data();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    ByteReader r(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(pipeline::DependencyGraph::deserialize(r).has_value())
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(DependencyGraph, DiffLabelsEditsDependentsAndNewcomers) {
  const auto before = pipeline::DependencyGraph::build(chain_module(1));
  ir::Module now_module = chain_module(9);
  auto extra = ir::parse_function("func @e(%0) {\nentry:\n  ret %0\n}\n");
  ASSERT_TRUE(extra.has_value());
  now_module.add_function(std::move(*extra));
  const auto now = pipeline::DependencyGraph::build(now_module);
  const auto decisions = diff_graphs(before, now);
  ASSERT_EQ(decisions.size(), 5u);  // a b c d e, sorted
  EXPECT_EQ(decisions[0].reason, InvalidationReason::kEdited);
  EXPECT_EQ(decisions[1].reason, InvalidationReason::kDependent);
  EXPECT_EQ(decisions[1].via, "b -> a");
  EXPECT_EQ(decisions[2].reason, InvalidationReason::kDependent);
  EXPECT_EQ(decisions[2].via, "c -> b -> a");
  EXPECT_EQ(decisions[3].reason, InvalidationReason::kWarm);
  EXPECT_EQ(decisions[4].reason, InvalidationReason::kNew);
}

// ------------------------------------------------- edit-aware driver -----

TEST_F(EditInvalidationTest, FirstCompileIsAllNew) {
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok());
  const auto result = edit_driver(&cache).compile(chain_module(), kSpec);
  ASSERT_TRUE(result.ok);
  EXPECT_FALSE(result.graph_degraded);
  for (const auto& f : result.functions) {
    EXPECT_EQ(f.reason, InvalidationReason::kNew) << f.name;
  }
  EXPECT_EQ(result.cache_hits(), 0u);
  EXPECT_EQ(cache.stats().graph_stores, 1u);
  EXPECT_EQ(graph_record_files().size(), 1u);
}

TEST_F(EditInvalidationTest, ResubmitRecompilesOnlyEditedAndDependents) {
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok());
  auto driver = edit_driver(&cache);
  ASSERT_TRUE(driver.compile(chain_module(), kSpec).ok);

  // Unchanged resubmit: everything warm, nothing recompiled.
  const auto warm = driver.compile(chain_module(), kSpec);
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(warm.cache_hits(), warm.functions.size());
  for (const auto& f : warm.functions) {
    EXPECT_EQ(f.reason, InvalidationReason::kWarm) << f.name;
  }

  // Edit @a: exactly @a (edited) + @b, @c (dependents) recompile; the
  // loner @d restores warm. The via paths name the walked edges.
  const ir::Module edited = chain_module(9);
  const auto resubmit = driver.compile(edited, kSpec);
  ASSERT_TRUE(resubmit.ok);
  EXPECT_FALSE(resubmit.graph_degraded);
  EXPECT_EQ(resubmit.invalidated_by_edit(), 1u);
  EXPECT_EQ(resubmit.invalidated_by_edge(), 2u);
  for (const auto& f : resubmit.functions) {
    if (f.name == "a") {
      EXPECT_EQ(f.reason, InvalidationReason::kEdited);
      EXPECT_FALSE(f.from_cache);
    } else if (f.name == "b") {
      EXPECT_EQ(f.reason, InvalidationReason::kDependent);
      EXPECT_EQ(f.invalidated_via, "b -> a");
      EXPECT_FALSE(f.from_cache);
    } else if (f.name == "c") {
      EXPECT_EQ(f.reason, InvalidationReason::kDependent);
      EXPECT_EQ(f.invalidated_via, "c -> b -> a");
      EXPECT_FALSE(f.from_cache);
    } else {
      EXPECT_EQ(f.reason, InvalidationReason::kWarm);
      EXPECT_TRUE(f.from_cache);
    }
  }
  expect_identical(resubmit, cold_reference(edited));
}

TEST_F(EditInvalidationTest, EditAwareMatchesColdAtAnyJobCount) {
  workload::ModuleConfig cfg;
  cfg.functions = 12;
  cfg.seed = 7;
  cfg.random_target_instructions = 60;  // keep the suite fast
  const ir::Module module = workload::make_mixed_module(cfg);
  const auto reference = cold_reference(module);
  ASSERT_TRUE(reference.ok);
  for (const unsigned jobs : {1u, 8u}) {
    const fs::path jdir = dir / ("jobs-" + std::to_string(jobs));
    pipeline::ResultCache cache(jdir.string());
    ASSERT_TRUE(cache.ok());
    auto driver = edit_driver(&cache, jobs);
    const auto cold = driver.compile(module, kSpec);
    ASSERT_TRUE(cold.ok);
    expect_identical(cold, reference);
    const auto warm = driver.compile(module, kSpec);
    ASSERT_TRUE(warm.ok);
    EXPECT_EQ(warm.cache_hits(), warm.functions.size());
    expect_identical(warm, reference);
  }
}

TEST_F(EditInvalidationTest, CorruptGraphRecordDegradesToFullRecompile) {
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok());
  auto driver = edit_driver(&cache);
  ASSERT_TRUE(driver.compile(chain_module(), kSpec).ok);
  cache.flush();

  const auto records = graph_record_files();
  ASSERT_EQ(records.size(), 1u);
  {
    std::fstream f(records[0],
                   std::ios::binary | std::ios::in | std::ios::out);
    const auto size = fs::file_size(records[0]);
    f.seekp(static_cast<std::streamoff>(size) - 3);
    char byte = 0;
    f.seekg(static_cast<std::streamoff>(size) - 3);
    f.read(&byte, 1);
    byte ^= 0x5a;
    f.seekp(static_cast<std::streamoff>(size) - 3);
    f.write(&byte, 1);
  }

  // A fresh cache (so the in-memory LRU does not mask the disk) reads
  // the corrupt record: the run degrades to a conservative whole-module
  // recompile — nothing served from cache, every reason says why, and
  // the output still matches a from-scratch compile exactly.
  pipeline::ResultCache reopened(dir.string());
  ASSERT_TRUE(reopened.ok());
  const auto degraded = edit_driver(&reopened).compile(chain_module(), kSpec);
  ASSERT_TRUE(degraded.ok);
  EXPECT_TRUE(degraded.graph_degraded);
  EXPECT_EQ(degraded.cache_hits(), 0u);
  for (const auto& f : degraded.functions) {
    EXPECT_EQ(f.reason, InvalidationReason::kGraphDegraded) << f.name;
  }
  EXPECT_GE(reopened.stats().bad_entries, 1u);
  expect_identical(degraded, cold_reference(chain_module()));

  // The degraded run rewrote the graph, so the next resubmit recovers.
  const auto recovered = edit_driver(&reopened).compile(chain_module(), kSpec);
  ASSERT_TRUE(recovered.ok);
  EXPECT_FALSE(recovered.graph_degraded);
  EXPECT_EQ(recovered.cache_hits(), recovered.functions.size());
}

TEST_F(EditInvalidationTest, TruncatedGraphRecordDegradesToFullRecompile) {
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok());
  ASSERT_TRUE(edit_driver(&cache).compile(chain_module(), kSpec).ok);
  cache.flush();
  const auto records = graph_record_files();
  ASSERT_EQ(records.size(), 1u);
  fs::resize_file(records[0], fs::file_size(records[0]) / 2);

  pipeline::ResultCache reopened(dir.string());
  ASSERT_TRUE(reopened.ok());
  const auto degraded = edit_driver(&reopened).compile(chain_module(), kSpec);
  ASSERT_TRUE(degraded.ok);
  EXPECT_TRUE(degraded.graph_degraded);
  EXPECT_EQ(degraded.cache_hits(), 0u);
  expect_identical(degraded, cold_reference(chain_module()));
}

TEST_F(EditInvalidationTest, AbsentGraphRecordIsAFirstCompileNotDegraded) {
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok());
  ASSERT_TRUE(edit_driver(&cache).compile(chain_module(), kSpec).ok);
  cache.flush();
  const auto records = graph_record_files();
  ASSERT_EQ(records.size(), 1u);
  fs::remove(records[0]);

  // No record is a miss, not corruption: the diff runs against the
  // empty graph (everything kNew), and the result entries — still on
  // disk — are allowed to serve.
  pipeline::ResultCache reopened(dir.string());
  ASSERT_TRUE(reopened.ok());
  const auto result = edit_driver(&reopened).compile(chain_module(), kSpec);
  ASSERT_TRUE(result.ok);
  EXPECT_FALSE(result.graph_degraded);
  for (const auto& f : result.functions) {
    EXPECT_EQ(f.reason, InvalidationReason::kNew) << f.name;
  }
  EXPECT_EQ(result.cache_hits(), result.functions.size());
}

TEST_F(EditInvalidationTest, ThrowingGraphLookupDegradesAndRecovers) {
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok());
  ASSERT_TRUE(edit_driver(&cache).compile(chain_module(), kSpec).ok);

  cache.set_fault_hook([](std::string_view op) {
    if (op == "graph-lookup") {
      throw std::runtime_error("injected graph-lookup fault");
    }
  });
  const auto degraded = edit_driver(&cache).compile(chain_module(), kSpec);
  ASSERT_TRUE(degraded.ok);
  EXPECT_TRUE(degraded.graph_degraded);
  EXPECT_GE(cache.stats().lookup_faults, 1u);
  expect_identical(degraded, cold_reference(chain_module()));

  cache.set_fault_hook(nullptr);
  const auto recovered = edit_driver(&cache).compile(chain_module(), kSpec);
  ASSERT_TRUE(recovered.ok);
  EXPECT_FALSE(recovered.graph_degraded);
  EXPECT_EQ(recovered.cache_hits(), recovered.functions.size());
}

TEST_F(EditInvalidationTest, ThrowingGraphInsertOnlySkipsTheStore) {
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok());
  cache.set_fault_hook([](std::string_view op) {
    if (op == "graph-insert") {
      throw std::runtime_error("injected graph-insert fault");
    }
  });
  const auto result = edit_driver(&cache).compile(chain_module(), kSpec);
  ASSERT_TRUE(result.ok);
  EXPECT_FALSE(result.graph_degraded);
  EXPECT_GE(cache.stats().store_failures, 1u);
  EXPECT_TRUE(graph_record_files().empty());
  expect_identical(result, cold_reference(chain_module()));
}

TEST_F(EditInvalidationTest, ConcurrentEditResubmitsStayDeterministic) {
  // One warm shared cache; 8 workers resubmit the same edited module
  // concurrently, each through its own edit-aware driver. ResultCache is
  // the only shared mutable object. Every worker must produce the
  // reference output — this suite runs under TSan, so a racy graph
  // rewrite or probe would also fail the build's race detector.
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok());
  ASSERT_TRUE(edit_driver(&cache).compile(chain_module(), kSpec).ok);

  const ir::Module edited = chain_module(9);
  const auto reference = cold_reference(edited);
  ASSERT_TRUE(reference.ok);

  constexpr std::size_t kWorkers = 8;
  std::vector<pipeline::ModulePipelineResult> results(kWorkers);
  {
    std::vector<std::thread> workers;
    workers.reserve(kWorkers);
    for (std::size_t w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        results[w] = edit_driver(&cache, 2).compile(chain_module(9), kSpec);
      });
    }
    for (std::thread& t : workers) {
      t.join();
    }
  }
  for (std::size_t w = 0; w < kWorkers; ++w) {
    ASSERT_TRUE(results[w].ok) << "worker " << w;
    EXPECT_FALSE(results[w].graph_degraded) << "worker " << w;
    expect_identical(results[w], reference);
  }
  // The rewritten graph must still be the single healthy record.
  cache.flush();
  EXPECT_EQ(graph_record_files().size(), 1u);
  const auto after = edit_driver(&cache).compile(chain_module(9), kSpec);
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.cache_hits(), after.functions.size());
}

}  // namespace
}  // namespace tadfa
