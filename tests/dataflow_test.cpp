// Unit and property tests for src/dataflow: CFG, the generic solver (via
// liveness), reaching definitions, dominators, loops, frequency estimates,
// live intervals, interference, and bitwidth analysis.
#include <gtest/gtest.h>

#include "dataflow/bitwidth.hpp"
#include "dataflow/cfg.hpp"
#include "dataflow/dominators.hpp"
#include "dataflow/interference.hpp"
#include "dataflow/live_intervals.hpp"
#include "dataflow/liveness.hpp"
#include "dataflow/loop_info.hpp"
#include "dataflow/reaching_defs.hpp"
#include "ir/builder.hpp"
#include "ir/parser.hpp"
#include "workload/random_program.hpp"

namespace tadfa::dataflow {
namespace {

ir::Function parse(const std::string& text) {
  auto f = ir::parse_function(text);
  EXPECT_TRUE(f.has_value());
  return std::move(*f);
}

// entry -> head -> {body -> head, exit}
ir::Function loop_function() {
  return parse(
      "func @loop(%0) {\n"
      "entry:\n"
      "  %1 = const 0\n"
      "  jmp head\n"
      "head:\n"
      "  %2 = cmplt %1, %0\n"
      "  br %2, body, exit\n"
      "body:\n"
      "  %1 = add %1, 1\n"
      "  jmp head\n"
      "exit:\n"
      "  ret %1\n"
      "}\n");
}

ir::Function diamond_function() {
  return parse(
      "func @diamond(%0) {\n"
      "entry:\n"
      "  %1 = cmplt %0, 10\n"
      "  br %1, then, other\n"
      "then:\n"
      "  %2 = const 1\n"
      "  jmp join\n"
      "other:\n"
      "  %2 = const 2\n"
      "  jmp join\n"
      "join:\n"
      "  ret %2\n"
      "}\n");
}

// ------------------------------------------------------------------ CFG ----

TEST(Cfg, SuccessorsAndPredecessors) {
  const ir::Function f = loop_function();
  const Cfg cfg(f);
  EXPECT_EQ(cfg.successors(0), (std::vector<ir::BlockId>{1}));
  EXPECT_EQ(cfg.successors(1), (std::vector<ir::BlockId>{2, 3}));
  EXPECT_EQ(cfg.predecessors(1), (std::vector<ir::BlockId>{0, 2}));
}

TEST(Cfg, ReversePostOrderStartsAtEntry) {
  const ir::Function f = loop_function();
  const Cfg cfg(f);
  EXPECT_EQ(cfg.reverse_post_order().front(), 0u);
  EXPECT_EQ(cfg.reverse_post_order().size(), 4u);
}

TEST(Cfg, RpoVisitsPredecessorsFirstForAcyclic) {
  const ir::Function f = diamond_function();
  const Cfg cfg(f);
  const auto& rpo = cfg.reverse_post_order();
  std::vector<std::size_t> pos(f.block_count());
  for (std::size_t i = 0; i < rpo.size(); ++i) {
    pos[rpo[i]] = i;
  }
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(Cfg, DetectsUnreachableBlocks) {
  ir::Function f = parse(
      "func @u() {\n"
      "entry:\n"
      "  ret\n"
      "dead:\n"
      "  ret\n"
      "}\n");
  const Cfg cfg(f);
  EXPECT_TRUE(cfg.reachable(0));
  EXPECT_FALSE(cfg.reachable(1));
  EXPECT_EQ(cfg.reverse_post_order().size(), 2u);
}

// ------------------------------------------------------------- liveness ----

TEST(Liveness, LoopVariableLiveAroundBackEdge) {
  const ir::Function f = loop_function();
  const Cfg cfg(f);
  const Liveness lv(cfg);
  EXPECT_TRUE(lv.live_in(1).test(1));
  EXPECT_TRUE(lv.live_in(2).test(1));
  EXPECT_TRUE(lv.live_in(3).test(1));
  EXPECT_TRUE(lv.live_in(1).test(0));
  EXPECT_FALSE(lv.live_in(3).test(0));
}

TEST(Liveness, DeadAfterLastUse) {
  const ir::Function f = diamond_function();
  const Cfg cfg(f);
  const Liveness lv(cfg);
  EXPECT_FALSE(lv.live_in(1).test(1));
  EXPECT_FALSE(lv.live_in(2).test(1));
  EXPECT_TRUE(lv.live_in(3).test(2));
}

TEST(Liveness, LiveAfterEachWalksBackward) {
  const ir::Function f = loop_function();
  const Cfg cfg(f);
  const Liveness lv(cfg);
  const auto after = lv.live_after_each(0);
  ASSERT_EQ(after.size(), 2u);
  EXPECT_TRUE(after[0].test(1));
  EXPECT_TRUE(after[1].test(1));
}

TEST(Liveness, ConvergesInFewIterations) {
  const ir::Function f = loop_function();
  const Cfg cfg(f);
  const Liveness lv(cfg);
  EXPECT_LE(lv.iterations(), 5);
}

TEST(Liveness, MaxPressureCountsOverlap) {
  ir::Function f = parse(
      "func @p() {\n"
      "entry:\n"
      "  %0 = const 1\n"
      "  %1 = const 2\n"
      "  %2 = const 3\n"
      "  %3 = add %0, %1\n"
      "  %4 = add %3, %2\n"
      "  ret %4\n"
      "}\n");
  const Cfg cfg(f);
  const Liveness lv(cfg);
  EXPECT_EQ(lv.max_pressure(), 3u);
}

TEST(Liveness, FixedPointIsIdempotent) {
  const ir::Function f = loop_function();
  const Cfg cfg(f);
  const Liveness a(cfg);
  const Liveness b(cfg);
  for (ir::BlockId blk = 0; blk < f.block_count(); ++blk) {
    EXPECT_EQ(a.live_in(blk), b.live_in(blk));
    EXPECT_EQ(a.live_out(blk), b.live_out(blk));
  }
}

// --------------------------------------------------------- reaching defs ----

TEST(ReachingDefs, BothArmsReachJoin) {
  const ir::Function f = diamond_function();
  const Cfg cfg(f);
  const ReachingDefs rd(cfg);
  const auto defs = rd.reaching_defs_of({3, 0}, 2);
  EXPECT_EQ(defs.size(), 2u);
}

TEST(ReachingDefs, RedefinitionKillsWithinBlock) {
  ir::Function f = parse(
      "func @k() {\n"
      "entry:\n"
      "  %0 = const 1\n"
      "  %0 = const 2\n"
      "  %1 = mov %0\n"
      "  ret %1\n"
      "}\n");
  const Cfg cfg(f);
  const ReachingDefs rd(cfg);
  const auto defs = rd.reaching_defs_of({0, 2}, 0);
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(rd.def_sites()[defs[0]].ref.index, 1u);
}

TEST(ReachingDefs, LoopDefReachesHeader) {
  const ir::Function f = loop_function();
  const Cfg cfg(f);
  const ReachingDefs rd(cfg);
  const auto defs = rd.reaching_defs_of({1, 0}, 1);
  EXPECT_EQ(defs.size(), 2u);
}

// ------------------------------------------------------------ dominators ----

TEST(Dominators, LinearChain) {
  const ir::Function f = loop_function();
  const Cfg cfg(f);
  const Dominators doms(cfg);
  EXPECT_EQ(doms.idom(0), 0u);
  EXPECT_EQ(doms.idom(1), 0u);
  EXPECT_EQ(doms.idom(2), 1u);
  EXPECT_EQ(doms.idom(3), 1u);
}

TEST(Dominators, DiamondJoinDominatedByFork) {
  const ir::Function f = diamond_function();
  const Cfg cfg(f);
  const Dominators doms(cfg);
  EXPECT_EQ(doms.idom(3), 0u);
  EXPECT_TRUE(doms.dominates(0, 3));
  EXPECT_FALSE(doms.dominates(1, 3));
}

TEST(Dominators, DominatesIsReflexive) {
  const ir::Function f = diamond_function();
  const Cfg cfg(f);
  const Dominators doms(cfg);
  for (ir::BlockId b = 0; b < f.block_count(); ++b) {
    EXPECT_TRUE(doms.dominates(b, b));
  }
}

TEST(Dominators, DepthsIncreaseDownTree) {
  const ir::Function f = loop_function();
  const Cfg cfg(f);
  const Dominators doms(cfg);
  EXPECT_EQ(doms.depth(0), 0u);
  EXPECT_EQ(doms.depth(1), 1u);
  EXPECT_EQ(doms.depth(2), 2u);
}

// ------------------------------------------------------------- loop info ----

TEST(LoopInfo, FindsNaturalLoop) {
  const ir::Function f = loop_function();
  const Cfg cfg(f);
  const Dominators doms(cfg);
  const LoopInfo li(cfg, doms);
  ASSERT_EQ(li.loops().size(), 1u);
  EXPECT_EQ(li.loops()[0].header, 1u);
  EXPECT_EQ(li.loops()[0].latches, (std::vector<ir::BlockId>{2}));
  EXPECT_TRUE(li.is_header(1));
  EXPECT_FALSE(li.is_header(0));
}

TEST(LoopInfo, DepthInsideVsOutside) {
  const ir::Function f = loop_function();
  const Cfg cfg(f);
  const Dominators doms(cfg);
  const LoopInfo li(cfg, doms);
  EXPECT_EQ(li.depth(0), 0u);
  EXPECT_EQ(li.depth(1), 1u);
  EXPECT_EQ(li.depth(2), 1u);
  EXPECT_EQ(li.depth(3), 0u);
}

TEST(LoopInfo, NestedLoopsStackDepth) {
  ir::Function f = parse(
      "func @nest(%0) {\n"
      "entry:\n"
      "  %1 = const 0\n"
      "  jmp oh\n"
      "oh:\n"
      "  %2 = cmplt %1, %0\n"
      "  br %2, ih_pre, exit\n"
      "ih_pre:\n"
      "  %3 = const 0\n"
      "  jmp ih\n"
      "ih:\n"
      "  %4 = cmplt %3, %0\n"
      "  br %4, ibody, otail\n"
      "ibody:\n"
      "  %3 = add %3, 1\n"
      "  jmp ih\n"
      "otail:\n"
      "  %1 = add %1, 1\n"
      "  jmp oh\n"
      "exit:\n"
      "  ret %1\n"
      "}\n");
  const Cfg cfg(f);
  const Dominators doms(cfg);
  const LoopInfo li(cfg, doms);
  EXPECT_EQ(li.loops().size(), 2u);
  EXPECT_EQ(li.depth(3), 2u);
  EXPECT_EQ(li.depth(4), 2u);
  EXPECT_EQ(li.depth(1), 1u);
}

TEST(LoopInfo, FrequenciesScaleWithDepth) {
  const ir::Function f = loop_function();
  const Cfg cfg(f);
  const Dominators doms(cfg);
  const LoopInfo li(cfg, doms);
  const auto freq = estimate_block_frequencies(cfg, li, 10.0);
  EXPECT_DOUBLE_EQ(freq[0], 1.0);
  EXPECT_DOUBLE_EQ(freq[1], 10.0);
  EXPECT_DOUBLE_EQ(freq[2], 10.0);
  EXPECT_DOUBLE_EQ(freq[3], 1.0);
}

TEST(LoopInfo, DiamondArmsHalved) {
  const ir::Function f = diamond_function();
  const Cfg cfg(f);
  const Dominators doms(cfg);
  const LoopInfo li(cfg, doms);
  const auto freq = estimate_block_frequencies(cfg, li, 10.0);
  EXPECT_DOUBLE_EQ(freq[0], 1.0);
  EXPECT_DOUBLE_EQ(freq[1], 0.5);
  EXPECT_DOUBLE_EQ(freq[2], 0.5);
}

// --------------------------------------------------------- live intervals ----

TEST(LiveIntervals, PositionsAreBlockOrdered) {
  const ir::Function f = loop_function();
  const Cfg cfg(f);
  const Liveness lv(cfg);
  const LiveIntervals li(cfg, lv);
  EXPECT_EQ(li.position({0, 0}), 0u);
  EXPECT_EQ(li.position({1, 0}), 2u);
  EXPECT_EQ(li.position_count(), f.instruction_count());
}

TEST(LiveIntervals, LoopVariableSpansLoop) {
  const ir::Function f = loop_function();
  const Cfg cfg(f);
  const Liveness lv(cfg);
  const LiveIntervals li(cfg, lv);
  const auto iv = li.interval(1);
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(iv->start, 0u);
  EXPECT_EQ(iv->end, li.position({3, 0}));
  // def (const), use (cmp), def+use (add), use (ret) = 5 accesses.
  EXPECT_EQ(iv->access_count, 5u);
}

TEST(LiveIntervals, SortedByStart) {
  const ir::Function f = loop_function();
  const Cfg cfg(f);
  const Liveness lv(cfg);
  const LiveIntervals li(cfg, lv);
  const auto& ivs = li.intervals();
  for (std::size_t i = 1; i < ivs.size(); ++i) {
    EXPECT_LE(ivs[i - 1].start, ivs[i].start);
  }
}

TEST(LiveIntervals, OverlapPredicate) {
  const LiveInterval a{0, 0, 5, 0};
  const LiveInterval b{1, 5, 9, 0};
  const LiveInterval c{2, 6, 9, 0};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
}

// ----------------------------------------------------------- interference ----

TEST(Interference, SimultaneouslyLiveValuesInterfere) {
  ir::Function f = parse(
      "func @i() {\n"
      "entry:\n"
      "  %0 = const 1\n"
      "  %1 = const 2\n"
      "  %2 = add %0, %1\n"
      "  ret %2\n"
      "}\n");
  const Cfg cfg(f);
  const Liveness lv(cfg);
  const InterferenceGraph g(cfg, lv);
  EXPECT_TRUE(g.interferes(0, 1));
  EXPECT_FALSE(g.interferes(0, 2));
}

TEST(Interference, MoveSourceExempted) {
  ir::Function f = parse(
      "func @m() {\n"
      "entry:\n"
      "  %0 = const 1\n"
      "  %1 = mov %0\n"
      "  %2 = add %1, %0\n"
      "  ret %2\n"
      "}\n");
  const Cfg cfg(f);
  const Liveness lv(cfg);
  const InterferenceGraph g(cfg, lv);
  EXPECT_FALSE(g.interferes(1, 0));
}

TEST(Interference, ParamsMutuallyInterfere) {
  ir::Function f = parse(
      "func @p(%0, %1) {\n"
      "entry:\n"
      "  %2 = add %0, %1\n"
      "  ret %2\n"
      "}\n");
  const Cfg cfg(f);
  const Liveness lv(cfg);
  const InterferenceGraph g(cfg, lv);
  EXPECT_TRUE(g.interferes(0, 1));
}

TEST(Interference, DegreeAndEdgeCount) {
  ir::Function f = parse(
      "func @d() {\n"
      "entry:\n"
      "  %0 = const 1\n"
      "  %1 = const 2\n"
      "  %2 = const 3\n"
      "  %3 = add %0, %1\n"
      "  %4 = add %3, %2\n"
      "  ret %4\n"
      "}\n");
  const Cfg cfg(f);
  const Liveness lv(cfg);
  const InterferenceGraph g(cfg, lv);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_GE(g.edge_count(), 3u);
  EXPECT_EQ(g.neighbors(0), (std::vector<ir::Reg>{1, 2}));
}

class InterferenceRandomTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(InterferenceRandomTest, SymmetricAndIrreflexive) {
  workload::RandomProgramConfig cfg_rp;
  cfg_rp.seed = GetParam();
  cfg_rp.target_instructions = 80;
  ir::Function f = workload::random_program(cfg_rp);
  const Cfg cfg(f);
  const Liveness lv(cfg);
  const InterferenceGraph g(cfg, lv);
  for (ir::Reg a = 0; a < f.reg_count(); ++a) {
    for (ir::Reg b : g.neighbors(a)) {
      EXPECT_TRUE(g.interferes(b, a));
      EXPECT_NE(a, b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterferenceRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// -------------------------------------------------------------- bitwidth ----

TEST(Bitwidth, ConstHasExactRange) {
  ir::Function f = parse(
      "func @c() {\n"
      "entry:\n"
      "  %0 = const 100\n"
      "  ret %0\n"
      "}\n");
  const Cfg cfg(f);
  const BitwidthAnalysis bw(cfg);
  EXPECT_EQ(bw.range(0).lo, 100);
  EXPECT_EQ(bw.range(0).hi, 100);
  EXPECT_EQ(bw.bitwidth(0), 8);
}

TEST(Bitwidth, AddPropagatesInterval) {
  ir::Function f = parse(
      "func @a() {\n"
      "entry:\n"
      "  %0 = const 10\n"
      "  %1 = const 20\n"
      "  %2 = add %0, %1\n"
      "  ret %2\n"
      "}\n");
  const Cfg cfg(f);
  const BitwidthAnalysis bw(cfg);
  EXPECT_EQ(bw.range(2).lo, 30);
  EXPECT_EQ(bw.range(2).hi, 30);
}

TEST(Bitwidth, CompareIsOneBitPlusSign) {
  ir::Function f = parse(
      "func @cmp(%0, %1) {\n"
      "entry:\n"
      "  %2 = cmplt %0, %1\n"
      "  ret %2\n"
      "}\n");
  const Cfg cfg(f);
  const BitwidthAnalysis bw(cfg);
  EXPECT_EQ(bw.range(2).lo, 0);
  EXPECT_EQ(bw.range(2).hi, 1);
  EXPECT_EQ(bw.bitwidth(2), 2);
}

TEST(Bitwidth, ParamsAreFullWidth) {
  ir::Function f = parse("func @p(%0) {\nentry:\n  ret %0\n}\n");
  const Cfg cfg(f);
  const BitwidthAnalysis bw(cfg);
  EXPECT_EQ(bw.bitwidth(0), 64);
}

TEST(Bitwidth, MaskOfKnownValueNarrows) {
  ir::Function g = parse(
      "func @m2() {\n"
      "entry:\n"
      "  %0 = const 300\n"
      "  %1 = and %0, 255\n"
      "  ret %1\n"
      "}\n");
  const Cfg cfg2(g);
  const BitwidthAnalysis bw2(cfg2);
  EXPECT_LE(bw2.range(1).hi, 255);
  EXPECT_GE(bw2.range(1).lo, 0);
  EXPECT_LE(bw2.bitwidth(1), 9);
}

TEST(Bitwidth, LoopCounterWidensButTerminates) {
  const ir::Function f = loop_function();
  const Cfg cfg(f);
  const BitwidthAnalysis bw(cfg);
  EXPECT_LE(bw.iterations(), 64);
  EXPECT_GE(bw.range(1).lo, 0);
}

TEST(Bitwidth, RangeJoin) {
  ValueRange a = ValueRange::exact(5);
  EXPECT_TRUE(a.join(ValueRange::exact(10)));
  EXPECT_EQ(a.lo, 5);
  EXPECT_EQ(a.hi, 10);
  EXPECT_FALSE(a.join(ValueRange::exact(7)));
  ValueRange bottom = ValueRange::bottom();
  EXPECT_TRUE(bottom.join(a));
  EXPECT_EQ(bottom.lo, 5);
}

TEST(Bitwidth, NegativeBitwidth) {
  EXPECT_EQ(ValueRange::exact(-1).bitwidth(), 1);
  EXPECT_EQ(ValueRange::exact(-128).bitwidth(), 8);
  EXPECT_EQ(ValueRange::exact(127).bitwidth(), 8);
  EXPECT_EQ(ValueRange::full().bitwidth(), 64);
}

}  // namespace
}  // namespace tadfa::dataflow
