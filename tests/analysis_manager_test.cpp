// Tests for pipeline::AnalysisManager — caching, dependency-aware
// transitive invalidation, PreservedAnalyses application, and the
// PassManager's audit of preservation claims (a pass that lies about
// what it kept valid must fail the pipeline).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "dataflow/interference.hpp"
#include "dataflow/live_intervals.hpp"
#include "dataflow/liveness.hpp"
#include "dataflow/loop_info.hpp"
#include "ir/printer.hpp"
#include "pipeline/analysis_manager.hpp"
#include "pipeline/pass_manager.hpp"
#include "workload/kernels.hpp"

namespace tadfa {
namespace {

using pipeline::AnalysisManager;
using pipeline::PreservedAnalyses;

ir::Function test_function(const char* kernel = "crc32") {
  return workload::make_kernel(kernel)->func;
}

std::uint64_t hits(const AnalysisManager& am, const std::string& name) {
  for (const auto& s : am.stats()) {
    if (s.name == name) {
      return s.hits;
    }
  }
  return 0;
}

std::uint64_t misses(const AnalysisManager& am, const std::string& name) {
  for (const auto& s : am.stats()) {
    if (s.name == name) {
      return s.misses;
    }
  }
  return 0;
}

// --- Caching -----------------------------------------------------------------

TEST(AnalysisManager, CachesAndCountsHitsAndMisses) {
  const ir::Function func = test_function();
  AnalysisManager am;

  const auto& cfg1 = am.get<dataflow::Cfg>(func);
  const auto& cfg2 = am.get<dataflow::Cfg>(func);
  EXPECT_EQ(&cfg1, &cfg2);  // pointer-stable on hit
  EXPECT_EQ(misses(am, "cfg"), 1u);
  EXPECT_EQ(hits(am, "cfg"), 1u);

  // Liveness pulls Cfg through the manager: another cfg hit, no rebuild.
  am.get<dataflow::Liveness>(func);
  EXPECT_EQ(misses(am, "cfg"), 1u);
  EXPECT_EQ(hits(am, "cfg"), 2u);
  EXPECT_EQ(misses(am, "liveness"), 1u);
}

TEST(AnalysisManager, ResultDoesNotCompute) {
  const ir::Function func = test_function();
  AnalysisManager am;
  EXPECT_EQ(am.result<dataflow::Cfg>(), nullptr);
  am.get<dataflow::Cfg>(func);
  EXPECT_NE(am.result<dataflow::Cfg>(), nullptr);
}

TEST(AnalysisManager, RequestingADifferentFunctionDropsTheCache) {
  const ir::Function a = test_function("crc32");
  const ir::Function b = test_function("fir");
  AnalysisManager am;
  am.get<dataflow::Liveness>(a);
  am.get<dataflow::Liveness>(b);  // rebind: everything for `a` is gone
  EXPECT_EQ(misses(am, "liveness"), 2u);
  EXPECT_EQ(hits(am, "liveness"), 0u);
}

TEST(AnalysisManager, CachingDisabledRebuildsEveryTime) {
  const ir::Function func = test_function();
  AnalysisManager am;
  am.set_caching(false);
  am.get<dataflow::Liveness>(func);
  am.get<dataflow::Liveness>(func);
  EXPECT_EQ(misses(am, "liveness"), 2u);
  EXPECT_EQ(hits(am, "liveness"), 0u);
}

// --- Transitive invalidation -------------------------------------------------

TEST(AnalysisManager, InvalidatingCfgDropsEverythingDownstream) {
  const ir::Function func = test_function();
  AnalysisManager am;
  am.get<dataflow::LoopInfo>(func);       // cfg -> dominators -> loop-info
  am.get<dataflow::LiveIntervals>(func);  // cfg -> liveness -> intervals

  am.invalidate<dataflow::Cfg>();
  EXPECT_EQ(am.result<dataflow::Cfg>(), nullptr);
  EXPECT_EQ(am.result<dataflow::Dominators>(), nullptr);
  EXPECT_EQ(am.result<dataflow::LoopInfo>(), nullptr);
  EXPECT_EQ(am.result<dataflow::Liveness>(), nullptr);
  EXPECT_EQ(am.result<dataflow::LiveIntervals>(), nullptr);
}

TEST(AnalysisManager, InvalidatingLivenessKeepsTheCfg) {
  const ir::Function func = test_function();
  AnalysisManager am;
  am.get<dataflow::InterferenceGraph>(func);

  am.invalidate<dataflow::Liveness>();
  EXPECT_EQ(am.result<dataflow::Liveness>(), nullptr);
  EXPECT_EQ(am.result<dataflow::InterferenceGraph>(), nullptr);
  EXPECT_NE(am.result<dataflow::Cfg>(), nullptr);
}

// --- PreservedAnalyses / keep_only -------------------------------------------

TEST(AnalysisManager, KeepOnlyRetainsPreservedAndTheirDependencies) {
  const ir::Function func = test_function();
  AnalysisManager am;
  const auto& liveness = am.get<dataflow::Liveness>(func);
  am.get<dataflow::LoopInfo>(func);

  am.begin_pass();  // nothing below is "fresh"
  PreservedAnalyses pa;
  pa.preserve<dataflow::Liveness>();
  am.keep_only(pa);

  // Liveness survives pointer-stable — and keeps its Cfg input alive.
  EXPECT_EQ(am.result<dataflow::Liveness>(), &liveness);
  EXPECT_NE(am.result<dataflow::Cfg>(), nullptr);
  // LoopInfo and Dominators were not preserved by anything.
  EXPECT_EQ(am.result<dataflow::LoopInfo>(), nullptr);
  EXPECT_EQ(am.result<dataflow::Dominators>(), nullptr);
}

TEST(AnalysisManager, KeepOnlyNoneDropsStaleButKeepsFresh) {
  const ir::Function func = test_function();
  AnalysisManager am;
  am.get<dataflow::LoopInfo>(func);  // stale after begin_pass

  am.begin_pass();
  const auto& liveness = am.get<dataflow::Liveness>(func);  // fresh
  am.keep_only(PreservedAnalyses::none());

  EXPECT_EQ(am.result<dataflow::Liveness>(), &liveness);
  EXPECT_NE(am.result<dataflow::Cfg>(), nullptr);  // dependency of a survivor
  EXPECT_EQ(am.result<dataflow::LoopInfo>(), nullptr);
}

TEST(AnalysisManager, RegisteredResultsFollowTheSameLifecycle) {
  AnalysisManager am;
  machine::RegisterAssignment assignment(4);
  assignment.assign(0, 1);
  am.put<machine::RegisterAssignment>(std::move(assignment));
  ASSERT_NE(am.result<machine::RegisterAssignment>(), nullptr);
  EXPECT_EQ(am.result<machine::RegisterAssignment>()->phys(0), 1u);

  am.begin_pass();
  am.keep_only(PreservedAnalyses::none());
  EXPECT_EQ(am.result<machine::RegisterAssignment>(), nullptr);
}

// --- Block frequencies -------------------------------------------------------

TEST(AnalysisManager, BlockFrequenciesRecomputeOnTripGuessChange) {
  const ir::Function func = test_function();
  AnalysisManager am;
  const auto& f10 = pipeline::block_frequencies(am, func, 10.0);
  const double inner10 = *std::max_element(f10.begin(), f10.end());
  pipeline::block_frequencies(am, func, 10.0);
  EXPECT_EQ(hits(am, "block-freq"), 1u);

  const auto& f2 = pipeline::block_frequencies(am, func, 2.0);
  const double inner2 = *std::max_element(f2.begin(), f2.end());
  EXPECT_EQ(misses(am, "block-freq"), 2u);
  EXPECT_GT(inner10, inner2);  // crc32 loops actually scale with the guess
}

// --- Pipeline integration ----------------------------------------------------

class AnalysisPipelineTest : public ::testing::Test {
 protected:
  AnalysisPipelineTest()
      : fp_(machine::RegisterFileConfig::default_config()),
        grid_(fp_),
        power_(fp_.config()) {
    ctx_.floorplan = &fp_;
    ctx_.grid = &grid_;
    ctx_.power = &power_;
    pipeline::register_builtin_passes(registry_);
  }

  machine::Floorplan fp_;
  thermal::ThermalGrid grid_;
  power::PowerModel power_;
  pipeline::PipelineContext ctx_;
  pipeline::PassRegistry registry_;
};

TEST_F(AnalysisPipelineTest, ReadmeSpecProducesCacheHits) {
  const auto kernel = workload::make_kernel("crc32");
  const pipeline::PassManager manager(ctx_);
  const auto run = manager.run(
      kernel->func,
      "alloc=linear:first_free,thermal-dfa,split-hot=1,spill-critical=1,"
      "alloc=coloring:coolest_first,schedule");
  ASSERT_TRUE(run.ok) << run.error;
  // The ranking stage reuses the DFA's Cfg/LoopInfo/frequencies, split
  // reuses the Cfg: the cache must report real hits.
  EXPECT_GT(run.state.analyses.total_hits(), 0u);
  EXPECT_GT(hits(run.state.analyses, "cfg"), 0u);
}

TEST_F(AnalysisPipelineTest, CachedAnalysesArePointerStableAcrossPasses) {
  // Pass 1 computes liveness and reports "unchanged"; pass 2 must observe
  // the identical object.
  const dataflow::Liveness* seen = nullptr;
  registry_.register_pass(
      "probe-a", "test-only",
      [&seen](const pipeline::PassSpec&, std::string*) {
        return std::make_unique<pipeline::LambdaPass>(
            "probe-a", [&seen](pipeline::PipelineState& state,
                               const pipeline::PipelineContext&) {
              seen = &state.analyses.get<dataflow::Liveness>(state.func);
              return pipeline::PassOutcome::unchanged("probed");
            });
      });
  registry_.register_pass(
      "probe-b", "test-only",
      [&seen](const pipeline::PassSpec&, std::string*) {
        return std::make_unique<pipeline::LambdaPass>(
            "probe-b", [&seen](pipeline::PipelineState& state,
                               const pipeline::PipelineContext&) {
              const auto& liveness =
                  state.analyses.get<dataflow::Liveness>(state.func);
              if (&liveness != seen) {
                return pipeline::PassOutcome::failure(
                    "liveness was rebuilt between preserving passes");
              }
              return pipeline::PassOutcome::unchanged("stable");
            });
      });
  const pipeline::PassManager manager(ctx_, registry_);
  const auto kernel = workload::make_kernel("counter");
  const auto run = manager.run(kernel->func, "probe-a,probe-b");
  EXPECT_TRUE(run.ok) << run.error;
  EXPECT_EQ(hits(run.state.analyses, "liveness"), 1u);
}

TEST_F(AnalysisPipelineTest, PassLyingAboutNoChangeIsCaught) {
  registry_.register_pass(
      "sneaky-nop", "test-only: mutates the IR but reports no change",
      [](const pipeline::PassSpec&, std::string*) {
        return std::make_unique<pipeline::LambdaPass>(
            "sneaky-nop", [](pipeline::PipelineState& state,
                             const pipeline::PipelineContext&) {
              state.func.block(state.func.entry())
                  .insert(0, ir::Instruction(ir::Opcode::kNop,
                                             ir::kInvalidReg, {}));
              return pipeline::PassOutcome::unchanged("nothing to see");
            });
      });
  const pipeline::PassManager manager(ctx_, registry_);
  const auto kernel = workload::make_kernel("counter");
  const auto run = manager.run(kernel->func, "sneaky-nop");
  EXPECT_FALSE(run.ok);
  EXPECT_NE(run.error.find("reported no change"), std::string::npos)
      << run.error;
}

TEST_F(AnalysisPipelineTest, PassClaimingToPreserveLivenessWhileMutatingIsCaught) {
  registry_.register_pass(
      "stale-liveness", "test-only: mutates the IR, claims liveness intact",
      [](const pipeline::PassSpec&, std::string*) {
        return std::make_unique<pipeline::LambdaPass>(
            "stale-liveness", [](pipeline::PipelineState& state,
                                 const pipeline::PipelineContext&) {
              // Warm the cache, then mutate behind the manager's back.
              state.analyses.get<dataflow::Liveness>(state.func);
              state.func.block(state.func.entry())
                  .insert(0, ir::Instruction(ir::Opcode::kNop,
                                             ir::kInvalidReg, {}));
              pipeline::PreservedAnalyses pa;
              pa.preserve<dataflow::Liveness>();
              return pipeline::PassOutcome::success("mutated").preserve(pa);
            });
      });
  const pipeline::PassManager manager(ctx_, registry_);
  const auto kernel = workload::make_kernel("counter");
  const auto run = manager.run(kernel->func, "stale-liveness");
  EXPECT_FALSE(run.ok);
  EXPECT_NE(run.error.find("liveness-class"), std::string::npos) << run.error;

  // With checkpoints off the audit is off too — measurement mode trusts
  // the pass.
  pipeline::PassManager unchecked(ctx_, registry_);
  unchecked.set_checkpoints(false);
  EXPECT_TRUE(unchecked.run(kernel->func, "stale-liveness").ok);
}

TEST_F(AnalysisPipelineTest, PassClaimingToPreserveCfgWhileRestructuringIsCaught) {
  registry_.register_pass(
      "block-adder", "test-only: adds a block, claims the CFG is intact",
      [](const pipeline::PassSpec&, std::string*) {
        return std::make_unique<pipeline::LambdaPass>(
            "block-adder", [](pipeline::PipelineState& state,
                              const pipeline::PipelineContext&) {
              const ir::BlockId b = state.func.add_block();
              state.func.block(b).append(
                  ir::Instruction(ir::Opcode::kRet, ir::kInvalidReg, {}));
              pipeline::PreservedAnalyses pa;
              pa.preserve<dataflow::Cfg>();
              return pipeline::PassOutcome::success("grew").preserve(pa);
            });
      });
  const pipeline::PassManager manager(ctx_, registry_);
  const auto kernel = workload::make_kernel("counter");
  const auto run = manager.run(kernel->func, "block-adder");
  EXPECT_FALSE(run.ok);
  EXPECT_NE(run.error.find("block structure"), std::string::npos) << run.error;
}

TEST_F(AnalysisPipelineTest, UnchangedPassesSkipCheckpointAndAreReported) {
  // A pass that corrupts the IR but truthfully reports "changed" is
  // caught; dce on dead-code-free IR reports no change and the stats
  // table marks it.
  const auto kernel = workload::make_kernel("counter");
  const pipeline::PassManager manager(ctx_);
  const auto run = manager.run(kernel->func, "dce,dce");
  ASSERT_TRUE(run.ok) << run.error;
  ASSERT_EQ(run.pass_stats.size(), 2u);
  EXPECT_FALSE(run.pass_stats[1].changed);

  std::ostringstream os;
  pipeline::PassManager::stats_table(run).print(os);
  EXPECT_NE(os.str().find("(no change)"), std::string::npos);
}

TEST_F(AnalysisPipelineTest, CacheOffMatchesCacheOnResults) {
  const auto kernel = workload::make_kernel("fir");
  constexpr const char* kSpec =
      "cse,dce,alloc=linear:first_free,thermal-dfa,split-hot=1,"
      "alloc=coloring:coolest_first,schedule";
  pipeline::PassManager cached(ctx_);
  pipeline::PassManager cold(ctx_);
  cold.set_analysis_caching(false);
  const auto a = cached.run(kernel->func, kSpec);
  const auto b = cold.run(kernel->func, kSpec);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(ir::to_string(a.state.func), ir::to_string(b.state.func));
  EXPECT_EQ(b.state.analyses.total_hits(), 0u);
  EXPECT_GT(a.state.analyses.total_hits(), 0u);
}

}  // namespace
}  // namespace tadfa
