// Unit tests for src/ir: instructions, functions, builder, printer/parser
// round trips, and the verifier.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace tadfa::ir {
namespace {

using B = IRBuilder;

Function make_loop_function() {
  Function f("loop");
  IRBuilder b(f);
  const Reg n = f.add_param();
  const auto entry = b.create_block("entry");
  const auto head = b.create_block("head");
  const auto body = b.create_block("body");
  const auto exit = b.create_block("exit");
  b.set_insert_point(entry);
  const Reg i = b.const_int(0);
  b.jmp(head);
  b.set_insert_point(head);
  const Reg c = b.cmp(Opcode::kCmpLt, B::r(i), B::r(n));
  b.br(c, body, exit);
  b.set_insert_point(body);
  b.assign(Opcode::kAdd, i, B::r(i), B::i(1));
  b.jmp(head);
  b.set_insert_point(exit);
  b.ret(B::r(i));
  return f;
}

// ---------------------------------------------------------- instruction ----

TEST(Instruction, OpcodeNamesRoundTrip) {
  for (std::size_t i = 0; i < kNumOpcodes; ++i) {
    const auto op = static_cast<Opcode>(i);
    const auto back = opcode_from_name(opcode_name(op));
    ASSERT_TRUE(back.has_value()) << opcode_name(op);
    EXPECT_EQ(*back, op);
  }
}

TEST(Instruction, UnknownMnemonicRejected) {
  EXPECT_FALSE(opcode_from_name("frobnicate").has_value());
}

TEST(Instruction, TerminatorClassification) {
  EXPECT_TRUE(is_terminator(Opcode::kBr));
  EXPECT_TRUE(is_terminator(Opcode::kJmp));
  EXPECT_TRUE(is_terminator(Opcode::kRet));
  EXPECT_FALSE(is_terminator(Opcode::kAdd));
  EXPECT_FALSE(is_terminator(Opcode::kNop));
}

TEST(Instruction, AluClassification) {
  EXPECT_TRUE(is_binary_alu(Opcode::kAdd));
  EXPECT_TRUE(is_binary_alu(Opcode::kCmpLt));
  EXPECT_FALSE(is_binary_alu(Opcode::kNeg));
  EXPECT_TRUE(is_unary_alu(Opcode::kNeg));
  EXPECT_TRUE(is_compare(Opcode::kCmpGe));
  EXPECT_FALSE(is_compare(Opcode::kAdd));
}

TEST(Instruction, UsesAndDef) {
  Instruction add(Opcode::kAdd, 5,
                  {Operand::reg(1), Operand::reg(1)});
  EXPECT_EQ(add.uses(), (std::vector<Reg>{1, 1}));  // duplicates preserved
  ASSERT_TRUE(add.def().has_value());
  EXPECT_EQ(*add.def(), 5u);
  EXPECT_EQ(add.access_count(), 3u);
}

TEST(Instruction, ImmediatesAreNotUses) {
  Instruction add(Opcode::kAdd, 2, {Operand::reg(1), Operand::imm(7)});
  EXPECT_EQ(add.uses(), (std::vector<Reg>{1}));
  EXPECT_EQ(add.access_count(), 2u);
}

TEST(Instruction, ReplaceUsesLeavesDest) {
  Instruction add(Opcode::kAdd, 1, {Operand::reg(1), Operand::reg(2)});
  add.replace_uses(1, 9);
  EXPECT_EQ(add.uses(), (std::vector<Reg>{9, 2}));
  EXPECT_EQ(*add.def(), 1u);
}

TEST(Operand, Equality) {
  EXPECT_EQ(Operand::reg(3), Operand::reg(3));
  EXPECT_FALSE(Operand::reg(3) == Operand::reg(4));
  EXPECT_EQ(Operand::imm(-1), Operand::imm(-1));
  EXPECT_FALSE(Operand::reg(0) == Operand::imm(0));
}

// ------------------------------------------------------------- function ----

TEST(Function, BlocksAndSuccessors) {
  const Function f = make_loop_function();
  EXPECT_EQ(f.block_count(), 4u);
  EXPECT_EQ(f.block(0).successors(), (std::vector<BlockId>{1}));
  EXPECT_EQ(f.block(1).successors(), (std::vector<BlockId>{2, 3}));
  EXPECT_EQ(f.block(2).successors(), (std::vector<BlockId>{1}));
  EXPECT_TRUE(f.block(3).successors().empty());
}

TEST(Function, Predecessors) {
  const Function f = make_loop_function();
  const auto preds = f.predecessors();
  EXPECT_TRUE(preds[0].empty());
  EXPECT_EQ(preds[1], (std::vector<BlockId>{0, 2}));
  EXPECT_EQ(preds[2], (std::vector<BlockId>{1}));
  EXPECT_EQ(preds[3], (std::vector<BlockId>{1}));
}

TEST(Function, InstructionCountAndRefs) {
  const Function f = make_loop_function();
  EXPECT_EQ(f.instruction_count(), 7u);
  const auto refs = f.all_instructions();
  EXPECT_EQ(refs.size(), 7u);
  EXPECT_EQ(refs.front().block, 0u);
  EXPECT_EQ(f.instruction(refs[2]).opcode(), Opcode::kCmpLt);
}

TEST(Function, StackSlotsGrowFromBase) {
  Function f("x");
  EXPECT_EQ(f.allocate_stack_slot(), Function::kStackBase);
  EXPECT_EQ(f.allocate_stack_slot(), Function::kStackBase + 1);
  EXPECT_EQ(f.stack_slot_count(), 2u);
}

TEST(Function, ParamsAreRegisters) {
  Function f("p");
  const Reg a = f.add_param();
  const Reg b = f.add_param();
  EXPECT_EQ(f.params(), (std::vector<Reg>{a, b}));
  EXPECT_EQ(f.reg_count(), 2u);
}

TEST(Module, FindByName) {
  Module m;
  m.add_function("a");
  m.add_function("b");
  EXPECT_NE(m.find("a"), nullptr);
  EXPECT_NE(m.find("b"), nullptr);
  EXPECT_EQ(m.find("c"), nullptr);
}

TEST(BasicBlock, InsertShiftsInstructions) {
  Function f("x");
  IRBuilder b(f);
  const auto blk = b.create_block();
  b.set_insert_point(blk);
  b.const_int(1);
  b.ret();
  f.block(blk).insert(0, Instruction(Opcode::kNop, kInvalidReg, {}));
  EXPECT_EQ(f.block(blk).instructions()[0].opcode(), Opcode::kNop);
  EXPECT_EQ(f.block(blk).size(), 3u);
}

// ------------------------------------------------------- printer/parser ----

TEST(PrinterParser, RoundTripLoop) {
  const Function f = make_loop_function();
  const std::string text = to_string(f);
  ParseError err;
  const auto parsed = parse_function(text, &err);
  ASSERT_TRUE(parsed.has_value()) << err.message;
  EXPECT_EQ(to_string(*parsed), text);
}

TEST(PrinterParser, ParsesNegativeImmediates) {
  const std::string text =
      "func @f() {\n"
      "entry:\n"
      "  %0 = const -42\n"
      "  ret %0\n"
      "}\n";
  const auto f = parse_function(text);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->block(0).instructions()[0].operands()[0].imm(), -42);
}

TEST(PrinterParser, ParsesForwardBranches) {
  const std::string text =
      "func @f(%0) {\n"
      "entry:\n"
      "  br %0, later, entry2\n"
      "entry2:\n"
      "  jmp later\n"
      "later:\n"
      "  ret\n"
      "}\n";
  const auto f = parse_function(text);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->block(0).terminator().targets(),
            (std::vector<BlockId>{2, 1}));
}

TEST(PrinterParser, CommentsIgnored) {
  const std::string text =
      "func @f() {\n"
      "entry: ; the entry block\n"
      "  %0 = const 1 ; one\n"
      "  ret %0\n"
      "}\n";
  const auto f = parse_function(text);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->instruction_count(), 2u);
}

TEST(PrinterParser, RejectsUnknownMnemonic) {
  ParseError err;
  const auto f = parse_function(
      "func @f() {\nentry:\n  %0 = bogus 1\n  ret\n}\n", &err);
  EXPECT_FALSE(f.has_value());
  EXPECT_NE(err.message.find("bogus"), std::string::npos);
}

TEST(PrinterParser, RejectsUnknownLabel) {
  ParseError err;
  const auto f =
      parse_function("func @f() {\nentry:\n  jmp nowhere\n}\n", &err);
  EXPECT_FALSE(f.has_value());
}

TEST(PrinterParser, RejectsDuplicateLabel) {
  ParseError err;
  const auto f = parse_function(
      "func @f() {\na:\n  ret\na:\n  ret\n}\n", &err);
  EXPECT_FALSE(f.has_value());
}

TEST(PrinterParser, ParsesMultiFunctionModule) {
  const std::string text =
      "func @a() {\nentry:\n  ret\n}\n"
      "\n"
      "func @b(%0) {\nentry:\n  ret %0\n}\n";
  const auto m = parse_module(text);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->functions().size(), 2u);
  EXPECT_EQ(m->functions()[1].params().size(), 1u);
}

TEST(PrinterParser, ModuleReferencesRoundTrip) {
  const std::string text =
      "func @a() {\nentry:\n  ret\n}\n"
      "\n"
      "func @b() {\nentry:\n  ret\n}\n"
      "\n"
      "ref @b -> @a\n";
  const auto m = parse_module(text);
  ASSERT_TRUE(m.has_value());
  ASSERT_EQ(m->references().size(), 1u);
  EXPECT_EQ(m->references()[0].from, "b");
  EXPECT_EQ(m->references()[0].to, "a");
  // Printing and reparsing must preserve the edge exactly.
  const auto again = parse_module(to_string(*m));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->references(), m->references());
}

TEST(PrinterParser, ReferenceMayNameAFunctionDefinedLater) {
  const std::string text =
      "ref @a -> @b\n"
      "\n"
      "func @a() {\nentry:\n  ret\n}\n"
      "\n"
      "func @b() {\nentry:\n  ret\n}\n";
  const auto m = parse_module(text);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->references().size(), 1u);
  EXPECT_TRUE(verify(*m).empty());
}

TEST(PrinterParser, RejectsMalformedReference) {
  EXPECT_FALSE(parse_module("ref @a -> b\n").has_value());
  EXPECT_FALSE(parse_module("ref a -> @b\n").has_value());
  EXPECT_FALSE(parse_module("ref @a @b\n").has_value());
}

TEST(PrinterParser, AddReferenceDeduplicates) {
  Module m;
  m.add_reference("a", "b");
  m.add_reference("a", "b");
  m.add_reference("a", "c");
  EXPECT_EQ(m.references().size(), 2u);
  EXPECT_EQ(m.references_from("a").size(), 2u);
  EXPECT_TRUE(m.references_from("b").empty());
}

TEST(PrinterParser, PreservesParams) {
  const Function f = make_loop_function();
  const auto parsed = parse_function(to_string(f));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->params(), f.params());
}

// ------------------------------------------------------------- verifier ----

TEST(Verifier, AcceptsWellFormed) {
  EXPECT_TRUE(is_well_formed(make_loop_function()));
}

TEST(Verifier, RejectsReferenceToUnknownFunction) {
  const auto m = parse_module(
      "func @a() {\nentry:\n  ret\n}\n"
      "\n"
      "ref @a -> @ghost\n");
  ASSERT_TRUE(m.has_value());
  const auto issues = verify(*m);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.front().message.find("ghost"), std::string::npos);
}

TEST(Verifier, RejectsMissingTerminator) {
  Function f("x");
  IRBuilder b(f);
  const auto blk = b.create_block();
  b.set_insert_point(blk);
  b.const_int(1);
  EXPECT_FALSE(is_well_formed(f));
}

TEST(Verifier, RejectsOutOfRangeRegister) {
  Function f("x");
  f.add_block();
  f.block(0).append(
      Instruction(Opcode::kRet, kInvalidReg, {Operand::reg(99)}));
  EXPECT_FALSE(is_well_formed(f));
}

TEST(Verifier, RejectsBadBranchTarget) {
  Function f("x");
  f.add_block();
  f.ensure_regs(1);
  f.block(0).append(
      Instruction(Opcode::kBr, kInvalidReg, {Operand::reg(0)}, {0, 7}));
  EXPECT_FALSE(is_well_formed(f));
}

TEST(Verifier, RejectsTerminatorMidBlock) {
  Function f("x");
  f.add_block();
  f.block(0).append(Instruction(Opcode::kRet, kInvalidReg, {}));
  f.block(0).append(Instruction(Opcode::kNop, kInvalidReg, {}));
  EXPECT_FALSE(is_well_formed(f));
}

TEST(Verifier, RejectsBadArity) {
  Function f("x");
  f.add_block();
  f.ensure_regs(2);
  // add with one operand
  f.block(0).append(Instruction(Opcode::kAdd, 0, {Operand::reg(1)}));
  f.block(0).append(Instruction(Opcode::kRet, kInvalidReg, {}));
  EXPECT_FALSE(is_well_formed(f));
}

TEST(Verifier, RejectsEmptyFunction) {
  Function f("x");
  EXPECT_FALSE(is_well_formed(f));
}

TEST(Verifier, RejectsStoreWithDest) {
  Function f("x");
  f.add_block();
  f.ensure_regs(2);
  f.block(0).append(Instruction(Opcode::kStore, 0,
                                {Operand::imm(0), Operand::reg(1)}));
  f.block(0).append(Instruction(Opcode::kRet, kInvalidReg, {}));
  EXPECT_FALSE(is_well_formed(f));
}

// -------------------------------------------------------------- builder ----

TEST(Builder, FreshRegistersAreDistinct) {
  Function f("x");
  IRBuilder b(f);
  const auto blk = b.create_block();
  b.set_insert_point(blk);
  const Reg a = b.const_int(1);
  const Reg c = b.const_int(2);
  EXPECT_NE(a, c);
  b.ret();
  EXPECT_TRUE(is_well_formed(f));
}

TEST(Builder, InPlaceAssignReusesRegister) {
  Function f("x");
  IRBuilder b(f);
  const auto blk = b.create_block();
  b.set_insert_point(blk);
  const Reg i = b.const_int(0);
  b.assign(Opcode::kAdd, i, B::r(i), B::i(1));
  b.ret(B::r(i));
  const auto& inst = f.block(blk).instructions()[1];
  EXPECT_EQ(*inst.def(), i);
  EXPECT_EQ(inst.uses(), (std::vector<Reg>{i}));
}

TEST(Builder, EmitsAllBinaryOps) {
  Function f("x");
  IRBuilder b(f);
  const auto blk = b.create_block();
  b.set_insert_point(blk);
  const Reg a = b.const_int(6);
  const Reg c = b.const_int(3);
  b.add(B::r(a), B::r(c));
  b.sub(B::r(a), B::r(c));
  b.mul(B::r(a), B::r(c));
  b.div(B::r(a), B::r(c));
  b.rem(B::r(a), B::r(c));
  b.band(B::r(a), B::r(c));
  b.bor(B::r(a), B::r(c));
  b.bxor(B::r(a), B::r(c));
  b.shl(B::r(a), B::r(c));
  b.shr(B::r(a), B::r(c));
  b.minv(B::r(a), B::r(c));
  b.maxv(B::r(a), B::r(c));
  b.neg(B::r(a));
  b.bnot(B::r(a));
  b.ret();
  EXPECT_TRUE(is_well_formed(f));
  EXPECT_EQ(f.instruction_count(), 17u);
}

}  // namespace
}  // namespace tadfa::ir

// Appended: printer/parser round-trip property over generated programs.
#include "workload/random_program.hpp"

namespace tadfa::ir {
namespace {

class RoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripTest, RandomProgramsRoundTripExactly) {
  workload::RandomProgramConfig cfg;
  cfg.seed = GetParam();
  cfg.target_instructions = 120;
  cfg.irregularity = (GetParam() % 3) / 2.0;
  const Function f = workload::random_program(cfg);
  const std::string text = to_string(f);
  ParseError err;
  const auto parsed = parse_function(text, &err);
  ASSERT_TRUE(parsed.has_value()) << err.message << "\n" << text;
  EXPECT_EQ(to_string(*parsed), text);
  EXPECT_EQ(parsed->instruction_count(), f.instruction_count());
  EXPECT_EQ(parsed->block_count(), f.block_count());
  EXPECT_EQ(parsed->params(), f.params());
  EXPECT_TRUE(is_well_formed(*parsed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest,
                         ::testing::Values(3, 14, 159, 2653, 58979, 323846,
                                           2643383, 27950288));

}  // namespace
}  // namespace tadfa::ir
