// Tests for src/sim: interpreter semantics (including traps), access
// tracing through a register assignment, and the trace-driven thermal
// replay pipeline.
#include <gtest/gtest.h>

#include "ir/parser.hpp"
#include "regalloc/linear_scan.hpp"
#include "regalloc/policy.hpp"
#include "sim/interpreter.hpp"
#include "sim/thermal_replay.hpp"
#include "workload/kernels.hpp"

namespace tadfa::sim {
namespace {

ir::Function parse(const std::string& text) {
  auto f = ir::parse_function(text);
  EXPECT_TRUE(f.has_value());
  return std::move(*f);
}

machine::TimingModel timing;

// ------------------------------------------------------------- semantics ----

TEST(Interpreter, ArithmeticOps) {
  ir::Function f = parse(
      "func @a(%0, %1) {\n"
      "entry:\n"
      "  %2 = add %0, %1\n"
      "  %3 = mul %2, 3\n"
      "  %4 = sub %3, %1\n"
      "  ret %4\n"
      "}\n");
  Interpreter interp(f, timing);
  const auto r = interp.run(std::vector<std::int64_t>{5, 2});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.return_value, 19);  // (5+2)*3-2
}

TEST(Interpreter, BitwiseAndShift) {
  ir::Function f = parse(
      "func @b(%0) {\n"
      "entry:\n"
      "  %1 = and %0, 255\n"
      "  %2 = or %1, 256\n"
      "  %3 = xor %2, 1\n"
      "  %4 = shl %3, 2\n"
      "  %5 = shr %4, 1\n"
      "  %6 = not %5\n"
      "  %7 = neg %6\n"
      "  ret %7\n"
      "}\n");
  Interpreter interp(f, timing);
  const auto r = interp.run(std::vector<std::int64_t>{0x1ff});
  ASSERT_TRUE(r.ok());
  const std::int64_t v = ((((0x1ff & 255) | 256) ^ 1) << 2) >> 1;
  EXPECT_EQ(*r.return_value, -(~v));
}

TEST(Interpreter, CompareAndMinMax) {
  ir::Function f = parse(
      "func @c(%0, %1) {\n"
      "entry:\n"
      "  %2 = cmplt %0, %1\n"
      "  %3 = cmpge %0, %1\n"
      "  %4 = min %0, %1\n"
      "  %5 = max %0, %1\n"
      "  %6 = add %2, %3\n"
      "  %7 = add %4, %5\n"
      "  %8 = mul %6, %7\n"
      "  ret %8\n"
      "}\n");
  Interpreter interp(f, timing);
  const auto r = interp.run(std::vector<std::int64_t>{3, 9});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.return_value, 12);  // (1+0)*(3+9)
}

TEST(Interpreter, MemoryRoundTrip) {
  ir::Function f = parse(
      "func @m(%0) {\n"
      "entry:\n"
      "  store 100, %0\n"
      "  %1 = load 100\n"
      "  ret %1\n"
      "}\n");
  Interpreter interp(f, timing);
  const auto r = interp.run(std::vector<std::int64_t>{777});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.return_value, 777);
}

TEST(Interpreter, BranchTakesCorrectArm) {
  ir::Function f = parse(
      "func @br(%0) {\n"
      "entry:\n"
      "  br %0, then, other\n"
      "then:\n"
      "  %1 = const 1\n"
      "  ret %1\n"
      "other:\n"
      "  %1 = const 2\n"
      "  ret %1\n"
      "}\n");
  Interpreter i1(f, timing);
  EXPECT_EQ(*i1.run(std::vector<std::int64_t>{5}).return_value, 1);
  Interpreter i2(f, timing);
  EXPECT_EQ(*i2.run(std::vector<std::int64_t>{0}).return_value, 2);
}

TEST(Interpreter, DivisionByZeroTraps) {
  ir::Function f = parse(
      "func @d(%0) {\n"
      "entry:\n"
      "  %1 = div 10, %0\n"
      "  ret %1\n"
      "}\n");
  Interpreter interp(f, timing);
  const auto r = interp.run(std::vector<std::int64_t>{0});
  EXPECT_FALSE(r.ok());
  ASSERT_TRUE(r.trap.has_value());
  EXPECT_NE(r.trap->find("zero"), std::string::npos);
}

TEST(Interpreter, BadAddressTraps) {
  ir::Function f = parse(
      "func @oob(%0) {\n"
      "entry:\n"
      "  %1 = load %0\n"
      "  ret %1\n"
      "}\n");
  Interpreter interp(f, timing);
  EXPECT_FALSE(interp.run(std::vector<std::int64_t>{-1}).ok());
  Interpreter interp2(f, timing);
  EXPECT_FALSE(
      interp2.run(std::vector<std::int64_t>{1LL << 40}).ok());
}

TEST(Interpreter, InstructionLimitTraps) {
  ir::Function f = parse(
      "func @inf() {\n"
      "entry:\n"
      "  jmp entry\n"
      "}\n");
  ExecutionOptions opts;
  opts.max_instructions = 100;
  Interpreter interp(f, timing, opts);
  const auto r = interp.run({});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.trap->find("limit"), std::string::npos);
}

TEST(Interpreter, CyclesFollowTimingModel) {
  ir::Function f = parse(
      "func @t() {\n"
      "entry:\n"
      "  %0 = const 6\n"
      "  %1 = mul %0, %0\n"
      "  %2 = div %1, %0\n"
      "  ret %2\n"
      "}\n");
  Interpreter interp(f, timing);
  const auto r = interp.run({});
  ASSERT_TRUE(r.ok());
  // const(1) + mul(3) + div(12) + ret(1) = 17
  EXPECT_EQ(r.cycles, 17u);
  EXPECT_EQ(r.instructions, 4u);
}

TEST(Interpreter, BlockVisitsCountLoopIterations) {
  workload::Kernel k = workload::make_counter(25);
  Interpreter interp(k.func, timing);
  const auto r = interp.run(k.default_args);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.block_visits[0], 1u);
  EXPECT_EQ(r.block_visits[1], 26u);  // head: 25 taken + 1 exit check
  EXPECT_EQ(r.block_visits[2], 25u);  // body
  EXPECT_EQ(r.block_visits[3], 1u);   // exit
}

// ----------------------------------------------------------------- tracing ----

machine::RegisterAssignment allocate(const ir::Function& func,
                                     ir::Function& out) {
  const machine::Floorplan fp(machine::RegisterFileConfig::default_config());
  regalloc::FirstFreePolicy policy;
  regalloc::LinearScanAllocator alloc(fp, policy);
  auto r = alloc.allocate(func);
  out = std::move(r.func);
  return r.assignment;
}

TEST(Tracing, EveryAccessRecorded) {
  ir::Function f = parse(
      "func @tr(%0) {\n"
      "entry:\n"
      "  %1 = add %0, %0\n"
      "  %2 = mul %1, %0\n"
      "  ret %2\n"
      "}\n");
  ir::Function allocated("");
  const auto assignment = allocate(f, allocated);
  Interpreter interp(allocated, timing);
  power::AccessTrace trace(64);
  const auto r = interp.run_traced(std::vector<std::int64_t>{3}, assignment,
                                   trace);
  ASSERT_TRUE(r.ok());
  // add: 2 reads + 1 write; mul: 2 reads + 1 write; ret: 1 read.
  EXPECT_EQ(trace.events().size(), 7u);
  EXPECT_EQ(trace.duration_cycles(), r.cycles);
}

TEST(Tracing, ReadsAndWritesSplit) {
  ir::Function f = parse(
      "func @rw() {\n"
      "entry:\n"
      "  %0 = const 4\n"
      "  %1 = add %0, %0\n"
      "  ret %1\n"
      "}\n");
  ir::Function allocated("");
  const auto assignment = allocate(f, allocated);
  Interpreter interp(allocated, timing);
  power::AccessTrace trace(64);
  ASSERT_TRUE(interp.run_traced({}, assignment, trace).ok());
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  for (const auto& c : trace.totals()) {
    reads += c.reads;
    writes += c.writes;
  }
  EXPECT_EQ(writes, 2u);  // const def + add def
  EXPECT_EQ(reads, 3u);   // add 2 + ret 1
}

TEST(Tracing, CyclesNondecreasing) {
  workload::Kernel k = workload::make_fir(32, 4);
  ir::Function allocated("");
  const auto assignment = allocate(k.func, allocated);
  Interpreter interp(allocated, timing);
  if (k.init_memory) {
    k.init_memory(interp.memory());
  }
  power::AccessTrace trace(64);
  ASSERT_TRUE(interp.run_traced(k.default_args, assignment, trace).ok());
  for (std::size_t i = 1; i < trace.events().size(); ++i) {
    EXPECT_LE(trace.events()[i - 1].cycle, trace.events()[i].cycle);
  }
}

TEST(Tracing, AllocatedKernelStillComputesExpected) {
  // Allocation (with spills) must not change semantics.
  workload::Kernel k = workload::make_matmul(6);
  ir::Function allocated("");
  const auto assignment = allocate(k.func, allocated);
  Interpreter interp(allocated, timing);
  if (k.init_memory) {
    k.init_memory(interp.memory());
  }
  power::AccessTrace trace(64);
  const auto r = interp.run_traced(k.default_args, assignment, trace);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.return_value, *k.expected_result);
  EXPECT_FALSE(trace.events().empty());
}

// ------------------------------------------------------------ thermal replay ----

TEST(ThermalReplay, HeatsAccessedRegisters) {
  workload::Kernel k = workload::make_crc32(32);
  ir::Function allocated("");
  const auto assignment = allocate(k.func, allocated);
  Interpreter interp(allocated, timing);
  if (k.init_memory) {
    k.init_memory(interp.memory());
  }
  power::AccessTrace trace(64);
  ASSERT_TRUE(interp.run_traced(k.default_args, assignment, trace).ok());

  const machine::Floorplan fp(machine::RegisterFileConfig::default_config());
  const thermal::ThermalGrid grid(fp);
  const power::PowerModel model(fp.config());
  const ThermalReplay replay(grid, model);
  const auto result = replay.replay(trace);

  EXPECT_GT(result.final_stats.peak_k, grid.substrate_temp());
  EXPECT_GT(result.final_stats.max_gradient_k, 0.0);
  EXPECT_GT(result.dynamic_energy_j, 0.0);
  EXPECT_GT(result.leakage_energy_j, 0.0);
  // Peak-over-time dominates the final value everywhere.
  for (std::size_t r = 0; r < result.final_reg_temps.size(); ++r) {
    EXPECT_GE(result.peak_reg_temps[r] + 1e-12, result.final_reg_temps[r]);
  }
}

TEST(ThermalReplay, RepeatsSettle) {
  workload::Kernel k = workload::make_counter(256);
  ir::Function allocated("");
  const auto assignment = allocate(k.func, allocated);
  Interpreter interp(allocated, timing);
  power::AccessTrace trace(64);
  ASSERT_TRUE(
      interp.run_traced(k.default_args, assignment, trace).ok());

  const machine::Floorplan fp(machine::RegisterFileConfig::default_config());
  const thermal::ThermalGrid grid(fp);
  const power::PowerModel model(fp.config());
  const ThermalReplay replay(grid, model);
  ReplayConfig cfg;
  cfg.max_repeats = 400;  // short trace: one repeat is ~1k cycles, and the
                          // electrothermal leakage loop settles slowly
  const auto result = replay.replay(trace, cfg);
  EXPECT_TRUE(result.settled);
  EXPECT_LT(result.repeats_run, 400);
}

TEST(ThermalReplay, SingleRepeatCanSettle) {
  // Regression: the old `rep > 0` guard made `settled` unreachable under
  // max_repeats == 1. A trace that injects no power leaves the map at
  // the substrate temperature, which is exactly the "already settled"
  // case a single-repeat replay must be able to report.
  const machine::Floorplan fp(machine::RegisterFileConfig::default_config());
  const thermal::ThermalGrid grid(fp);
  const power::PowerModel model(fp.config());
  const ThermalReplay replay(grid, model);

  power::AccessTrace idle(fp.num_registers());
  idle.set_duration_cycles(512);
  ReplayConfig cfg;
  cfg.max_repeats = 1;
  cfg.include_leakage = false;  // zero power in, zero temperature motion
  const auto settled = replay.replay(idle, cfg);
  EXPECT_EQ(settled.repeats_run, 1);
  EXPECT_TRUE(settled.settled);

  // A genuinely heating trace must still report unsettled after one
  // repeat — the fix may not turn every single-repeat run "settled".
  workload::Kernel k = workload::make_counter(256);
  ir::Function allocated("");
  const auto assignment = allocate(k.func, allocated);
  Interpreter interp(allocated, timing);
  power::AccessTrace hot(64);
  ASSERT_TRUE(interp.run_traced(k.default_args, assignment, hot).ok());
  const auto heating = replay.replay(hot, cfg);
  EXPECT_EQ(heating.repeats_run, 1);
  EXPECT_FALSE(heating.settled);
}

TEST(ThermalReplay, WarmStartSettlesInFewerRepeats) {
  workload::Kernel k = workload::make_counter(256);
  ir::Function allocated("");
  const auto assignment = allocate(k.func, allocated);
  Interpreter interp(allocated, timing);
  power::AccessTrace trace(64);
  ASSERT_TRUE(interp.run_traced(k.default_args, assignment, trace).ok());

  const machine::Floorplan fp(machine::RegisterFileConfig::default_config());
  const thermal::ThermalGrid grid(fp);
  const power::PowerModel model(fp.config());
  const ThermalReplay replay(grid, model);
  ReplayConfig cfg;
  cfg.max_repeats = 400;
  const auto cold = replay.replay(trace, cfg);
  ASSERT_TRUE(cold.settled);

  // Resume from the settled state: the same trace should settle almost
  // immediately — the predecessor already did the slow climb.
  ReplayConfig warm_cfg = cfg;
  warm_cfg.warm_start = &cold.final_state;
  const auto warm = replay.replay(trace, warm_cfg);
  EXPECT_TRUE(warm.settled);
  EXPECT_LT(warm.repeats_run, cold.repeats_run);
  EXPECT_LE(warm.repeats_run, 3);
  EXPECT_NEAR(warm.final_stats.peak_k, cold.final_stats.peak_k, 1e-2);
}

TEST(ThermalReplay, ReplayBatchMatchesSequentialReplay) {
  // A reference-kernel grid on purpose: replay_batch steps with
  // reference math, so per-lane results must be bit-identical to
  // sequential replay() there.
  const machine::Floorplan fp(machine::RegisterFileConfig::default_config());
  const thermal::ThermalGrid grid(fp, 1,
                                  thermal::StepKernel::kReference);
  const power::PowerModel model(fp.config());
  const ThermalReplay replay(grid, model);

  power::AccessTrace a(fp.num_registers());
  power::AccessTrace b(fp.num_registers());
  for (std::uint64_t c = 0; c < 2000; ++c) {
    a.record(c, static_cast<machine::PhysReg>(c % 5), c % 3 == 0);
    b.record(c, static_cast<machine::PhysReg>(7 + c % 11), c % 2 == 0);
  }
  a.set_duration_cycles(2000);
  b.set_duration_cycles(2000);

  ReplayConfig cfg;
  cfg.max_repeats = 50;  // lane a settles before lane b: exercises the
                         // swap-remove lane compaction
  const std::vector<power::AccessTrace> traces = {a, b};
  const auto batch = replay.replay_batch(traces, cfg);
  ASSERT_EQ(batch.size(), 2u);
  const ReplayResult seq[] = {replay.replay(a, cfg), replay.replay(b, cfg)};
  for (std::size_t lane = 0; lane < 2; ++lane) {
    EXPECT_EQ(batch[lane].final_state, seq[lane].final_state) << lane;
    EXPECT_EQ(batch[lane].final_reg_temps, seq[lane].final_reg_temps)
        << lane;
    EXPECT_EQ(batch[lane].peak_reg_temps, seq[lane].peak_reg_temps) << lane;
    EXPECT_EQ(batch[lane].repeats_run, seq[lane].repeats_run) << lane;
    EXPECT_EQ(batch[lane].settled, seq[lane].settled) << lane;
    EXPECT_EQ(batch[lane].dynamic_energy_j, seq[lane].dynamic_energy_j)
        << lane;
    EXPECT_EQ(batch[lane].leakage_energy_j, seq[lane].leakage_energy_j)
        << lane;
  }
}

TEST(ThermalReplay, GatedBanksRunCooler) {
  workload::Kernel k = workload::make_vecsum(64);
  ir::Function allocated("");
  const auto assignment = allocate(k.func, allocated);
  Interpreter interp(allocated, timing);
  if (k.init_memory) {
    k.init_memory(interp.memory());
  }
  power::AccessTrace trace(64);
  ASSERT_TRUE(interp.run_traced(k.default_args, assignment, trace).ok());

  const machine::Floorplan fp(machine::RegisterFileConfig::default_config());
  const thermal::ThermalGrid grid(fp);
  const power::PowerModel model(fp.config());
  const ThermalReplay replay(grid, model);
  ReplayConfig plain;
  ReplayConfig gated;
  gated.gated_banks = {false, true, true, true};  // first-fit uses bank 0
  const auto r_plain = replay.replay(trace, plain);
  const auto r_gated = replay.replay(trace, gated);
  EXPECT_LT(r_gated.leakage_energy_j, r_plain.leakage_energy_j);
}

TEST(ThermalReplay, WindowSizeInsensitiveAtSteadyState) {
  workload::Kernel k = workload::make_poly7(64);
  ir::Function allocated("");
  const auto assignment = allocate(k.func, allocated);
  Interpreter interp(allocated, timing);
  if (k.init_memory) {
    k.init_memory(interp.memory());
  }
  power::AccessTrace trace(64);
  ASSERT_TRUE(interp.run_traced(k.default_args, assignment, trace).ok());

  const machine::Floorplan fp(machine::RegisterFileConfig::default_config());
  const thermal::ThermalGrid grid(fp);
  const power::PowerModel model(fp.config());
  const ThermalReplay replay(grid, model);
  ReplayConfig coarse;
  coarse.window_cycles = 1024;
  coarse.max_repeats = 20;
  ReplayConfig fine;
  fine.window_cycles = 128;
  fine.max_repeats = 20;
  const auto rc = replay.replay(trace, coarse);
  const auto rf = replay.replay(trace, fine);
  EXPECT_NEAR(rc.final_stats.peak_k, rf.final_stats.peak_k, 0.3);
}

}  // namespace
}  // namespace tadfa::sim

// Appended: memory-traffic counters.
namespace tadfa::sim {
namespace {

TEST(Interpreter, CountsLoadsAndStores) {
  ir::Function f = parse(
      "func @mem(%0) {\n"
      "entry:\n"
      "  store 100, %0\n"
      "  store 101, %0\n"
      "  %1 = load 100\n"
      "  ret %1\n"
      "}\n");
  Interpreter interp(f, timing);
  const auto r = interp.run(std::vector<std::int64_t>{7});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.loads, 1u);
  EXPECT_EQ(r.stores, 2u);
}

TEST(Interpreter, SpillingAddsMemoryTraffic) {
  // Spilled code must show more loads/stores than the original — the
  // cycle/energy cost side of the paper's spill-to-cool trade.
  workload::Kernel k = workload::make_accumulators(16, 24);
  machine::TimingModel tm;
  sim::Interpreter before(k.func, tm);
  const auto r_before = before.run(k.default_args);
  ASSERT_TRUE(r_before.ok());

  const machine::Floorplan fp(machine::RegisterFileConfig::small_config());
  regalloc::FirstFreePolicy policy;
  regalloc::LinearScanAllocator alloc_engine(fp, policy);
  const auto alloc = alloc_engine.allocate(k.func);
  ASSERT_GT(alloc.spilled_regs, 0u);

  sim::Interpreter after(alloc.func, tm);
  const auto r_after = after.run(k.default_args);
  ASSERT_TRUE(r_after.ok());
  EXPECT_GT(r_after.loads + r_after.stores,
            r_before.loads + r_before.stores);
  EXPECT_EQ(*r_after.return_value, *r_before.return_value);
}

}  // namespace
}  // namespace tadfa::sim
