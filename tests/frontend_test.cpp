// Tests for src/frontend — the multi-source ingestion seam. The
// load-bearing contract: every frontend returns a module or positioned
// diagnostics, never both and never neither; a malformed or truncated
// source must never crash a parser or yield a silent empty module; and
// registry lookups are stable, since CLI flags and wire requests
// address frontends by name.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "frontend/frontend.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "sim/interpreter.hpp"

namespace tadfa::frontend {
namespace {

const Frontend& fe(const std::string& name) {
  const Frontend* found = find_frontend(name);
  EXPECT_NE(found, nullptr) << name;
  return *found;
}

/// The ParseResult contract all frontend tests lean on.
void expect_well_formed_outcome(const ParseResult& r,
                                const std::string& label) {
  if (r.ok()) {
    EXPECT_FALSE(r.module->empty()) << label << ": silent empty module";
    EXPECT_TRUE(ir::verify(*r.module).empty()) << label;
  } else {
    ASSERT_FALSE(r.diagnostics.empty()) << label << ": failure without "
                                                    "diagnostics";
    EXPECT_FALSE(r.diagnostics.front().message.empty()) << label;
  }
}

TEST(Registry, DefaultRegistryNamesAndOrder) {
  const std::vector<std::string> names = default_frontend_registry().names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "tir");
  EXPECT_EQ(names[1], "kernels");
  EXPECT_EQ(names[2], "texpr");
  for (const std::string& name : names) {
    ASSERT_NE(find_frontend(name), nullptr);
    EXPECT_EQ(find_frontend(name)->name(), name);
    EXPECT_FALSE(find_frontend(name)->describe().empty());
  }
  EXPECT_EQ(find_frontend("fortran"), nullptr);
  EXPECT_EQ(find_frontend(""), nullptr);
}

TEST(Registry, DiagnosticFormatting) {
  Diagnostic positioned{3, 7, "expected ';'"};
  EXPECT_EQ(positioned.to_string(), "line 3:7: expected ';'");
  Diagnostic line_only{3, 0, "bad block"};
  EXPECT_EQ(line_only.to_string(), "line 3: bad block");
  Diagnostic bare{0, 0, "empty source"};
  EXPECT_EQ(bare.to_string(), "empty source");
}

TEST(TirFrontend, ParsesCanonicalText) {
  const auto r = fe("tir").parse(
      "func @f(%0) {\nentry:\n  %1 = add %0, 1\n  ret %1\n}\n");
  ASSERT_TRUE(r.ok()) << r.diagnostics_text();
  EXPECT_EQ(r.module->size(), 1u);
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(TirFrontend, PositionsParseErrors) {
  const auto r = fe("tir").parse("func @f(%0) {\nentry:\n  %1 = bogus\n}\n");
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(r.module.has_value());
  ASSERT_FALSE(r.diagnostics.empty());
  EXPECT_EQ(r.diagnostics.front().line, 3u);
  // The tir parser reports lines, not columns; "line N: msg" is the
  // exact legacy server error shape.
  EXPECT_EQ(r.diagnostics.front().column, 0u);
  EXPECT_NE(r.diagnostics.front().to_string().find("line 3: "),
            std::string::npos);
}

TEST(TirFrontend, EmptyModuleIsAnError) {
  const auto r = fe("tir").parse("; only a comment\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.diagnostics_text().find("no functions"), std::string::npos);
}

TEST(KernelFrontend, KernelNameAndSuite) {
  const auto one = fe("kernels").parse("crc32");
  ASSERT_TRUE(one.ok()) << one.diagnostics_text();
  EXPECT_EQ(one.module->size(), 1u);
  EXPECT_EQ(one.module->functions().front().name(), "crc32");

  const auto suite = fe("kernels").parse("suite");
  ASSERT_TRUE(suite.ok()) << suite.diagnostics_text();
  EXPECT_GT(suite.module->size(), 5u);
}

TEST(KernelFrontend, MixedSpecIsDeterministic) {
  const auto a = fe("kernels").parse("mixed:functions=6,seed=9");
  const auto b = fe("kernels").parse("mixed:functions=6,seed=9");
  ASSERT_TRUE(a.ok()) << a.diagnostics_text();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.module->size(), 6u);
  EXPECT_EQ(ir::to_string(*a.module), ir::to_string(*b.module));
}

TEST(KernelFrontend, PositionsUnknownNames) {
  const auto r = fe("kernels").parse("crc32 nonsense");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.diagnostics_text().find("nonsense"), std::string::npos);
  EXPECT_GT(r.diagnostics.front().column, 1u);
}

TEST(KernelFrontend, RejectsBadMixedValues) {
  for (const std::string bad :
       {"mixed:functions=0", "mixed:functions=x", "mixed:bogus=1", ""}) {
    const auto r = fe("kernels").parse(bad);
    EXPECT_FALSE(r.ok()) << bad;
    expect_well_formed_outcome(r, bad);
  }
}

constexpr const char* kTexprProgram = R"(# sum of squares
fn sumsq(n) {
  let acc = 0;
  let i = 0;
  while (i < n) {
    acc = acc + i * i;
    i = i + 1;
  }
  return acc;
}
)";

TEST(TexprFrontend, LowersAndRuns) {
  const auto r = fe("texpr").parse(kTexprProgram);
  ASSERT_TRUE(r.ok()) << r.diagnostics_text();
  ASSERT_EQ(r.module->size(), 1u);
  const ir::Function& f = r.module->functions().front();
  EXPECT_TRUE(ir::verify(*r.module).empty()) << ir::to_string(f);
  machine::TimingModel timing;
  sim::Interpreter interp(f, timing);
  const auto run = interp.run(std::vector<std::int64_t>{5});
  ASSERT_TRUE(run.ok()) << run.trap.value_or("?");
  EXPECT_EQ(run.return_value.value_or(-1), 0 + 1 + 4 + 9 + 16);
}

struct DiagnosticCase {
  const char* label;
  const char* source;
  std::size_t line;
  const char* needle;
};

class TexprDiagnostics : public ::testing::TestWithParam<DiagnosticCase> {};

TEST_P(TexprDiagnostics, PositionsTheError) {
  const DiagnosticCase& c = GetParam();
  const auto r = fe("texpr").parse(c.source);
  ASSERT_FALSE(r.ok()) << c.label;
  ASSERT_FALSE(r.diagnostics.empty()) << c.label;
  const Diagnostic& d = r.diagnostics.front();
  EXPECT_EQ(d.line, c.line) << c.label << ": " << d.to_string();
  EXPECT_GT(d.column, 0u) << c.label << ": " << d.to_string();
  EXPECT_NE(d.message.find(c.needle), std::string::npos)
      << c.label << ": " << d.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Sources, TexprDiagnostics,
    ::testing::Values(
        DiagnosticCase{"unknown-variable",
                       "fn f(n) {\n  return n + zork;\n}\n", 2, "zork"},
        DiagnosticCase{"missing-semicolon",
                       "fn f(n) {\n  let a = 1\n  return a;\n}\n", 3, "';'"},
        DiagnosticCase{"unclosed-paren",
                       "fn f(n) {\n  return (n + 1;\n}\n", 2, "')'"},
        DiagnosticCase{"bad-token", "fn f(n) {\n  return n $ 2;\n}\n", 2,
                       "$"},
        DiagnosticCase{"duplicate-function",
                       "fn f(n) { return n; }\nfn f(n) { return n; }\n", 2,
                       "f"},
        DiagnosticCase{"duplicate-let",
                       "fn f(n) {\n  let a = 1;\n  let a = 2;\n  return a;\n}"
                       "\n",
                       3, "a"},
        DiagnosticCase{"statement-after-return",
                       "fn f(n) {\n  return n;\n  let a = 1;\n  return a;\n}"
                       "\n",
                       3, "unreachable"},
        DiagnosticCase{"overflow-literal",
                       "fn f(n) {\n  return 99999999999999999999;\n}\n", 2,
                       "integer"}));

TEST(TexprFrontend, EmptySourceIsAnError) {
  for (const std::string source : {"", "  \n\n", "# just a comment\n"}) {
    const auto r = fe("texpr").parse(source);
    ASSERT_FALSE(r.ok());
    expect_well_formed_outcome(r, "'" + source + "'");
  }
}

// The truncation sweep: parsing every byte-prefix of a valid program
// must never crash and must always honor the ParseResult contract. This
// is the cheapest fuzz there is, and it catches exactly the bugs a
// hand-written error-path test misses (EOF inside a token, inside a
// block, between '}' and EOF...).
TEST(TexprFrontend, TruncationSweepNeverCrashes) {
  const std::string program = kTexprProgram;
  for (std::size_t len = 0; len <= program.size(); ++len) {
    const std::string prefix = program.substr(0, len);
    const auto r = fe("texpr").parse(prefix);
    expect_well_formed_outcome(r, "prefix len " + std::to_string(len));
    if (len < program.size() - 1) {
      // Nothing short of the full program parses: the program has no
      // earlier point at which it is complete.
      EXPECT_FALSE(r.ok()) << "prefix len " << len << " parsed";
    }
  }
  EXPECT_TRUE(fe("texpr").parse(program).ok());
}

TEST(TirFrontend, TruncationSweepNeverCrashes) {
  const std::string program =
      "func @f(%0) {\nentry:\n  %1 = add %0, 1\n  br %1, b, c\nb:\n  ret "
      "%1\nc:\n  ret %0\n}\n";
  ASSERT_TRUE(fe("tir").parse(program).ok());
  for (std::size_t len = 0; len <= program.size(); ++len) {
    expect_well_formed_outcome(fe("tir").parse(program.substr(0, len)),
                               "prefix len " + std::to_string(len));
  }
}

}  // namespace
}  // namespace tadfa::frontend
