// Subprocess tests for the tadfa CLI's failure behavior: any exception
// escaping a command path must surface as "tadfa: error: <what>" with
// exit status 1 — never as std::terminate/SIGABRT with no diagnostic.
//
// The binary's path arrives via the TADFA_CLI_PATH compile definition
// (see CMakeLists.txt); without it the suite compiles to a skip.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct RunResult {
  bool exited = false;  // normal exit, not a signal
  int status = -1;
  std::string stderr_text;
};

RunResult run_cli(const std::string& args) {
#ifndef TADFA_CLI_PATH
  ADD_FAILURE() << "TADFA_CLI_PATH not defined";
  return {};
#else
  const auto err_path = std::filesystem::temp_directory_path() /
                        ("tadfa-cli-test-" + std::to_string(::getpid()) +
                         ".stderr");
  const std::string command = std::string(TADFA_CLI_PATH) + " " + args +
                              " >/dev/null 2>" + err_path.string();
  const int raw = std::system(command.c_str());
  RunResult result;
  result.exited = WIFEXITED(raw);
  result.status = result.exited ? WEXITSTATUS(raw) : -1;
  std::ifstream in(err_path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  result.stderr_text = buffer.str();
  std::filesystem::remove(err_path);
  return result;
#endif
}

TEST(CliTest, EscapedExceptionBecomesDiagnosticAndExit1) {
  const RunResult r = run_cli("--self-test-throw");
  ASSERT_TRUE(r.exited) << "CLI died of a signal instead of exiting";
  EXPECT_EQ(r.status, 1);
  EXPECT_NE(r.stderr_text.find("tadfa: error: self-test exception"),
            std::string::npos)
      << r.stderr_text;
}

TEST(CliTest, UnknownInputFailsCleanly) {
  const RunResult r = run_cli("no-such-kernel-or-file.tir");
  ASSERT_TRUE(r.exited);
  EXPECT_EQ(r.status, 1);
  EXPECT_NE(r.stderr_text.find("neither a known kernel"), std::string::npos)
      << r.stderr_text;
}

TEST(CliTest, UncreatableCacheDirFailsCleanly) {
  // /dev/null/x cannot be a directory: the cache constructor reports it
  // and the CLI exits 1 with a diagnostic — under the old unwrapped
  // main a filesystem exception here would have aborted.
  const RunResult r = run_cli(
      "--cache-dir=/dev/null/x --pipeline=dce crc32 fir");
  ASSERT_TRUE(r.exited) << "CLI died of a signal instead of exiting";
  EXPECT_EQ(r.status, 1);
  EXPECT_FALSE(r.stderr_text.empty());
}

TEST(CliTest, ClientWithoutServerFailsCleanly) {
  const RunResult r = run_cli("client --socket=/nonexistent/tadfa.sock crc32");
  ASSERT_TRUE(r.exited);
  EXPECT_EQ(r.status, 1);
  EXPECT_NE(r.stderr_text.find("cannot connect"), std::string::npos)
      << r.stderr_text;
}

}  // namespace
