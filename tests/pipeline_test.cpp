// Tests for src/pipeline — the spec grammar, the registry, the
// PassManager's verifier checkpoints, and (the load-bearing property)
// equivalence between spec-driven runs and the hand-wired Sec. 4 flow the
// pipeline replaced.
#include <gtest/gtest.h>

#include <sstream>

#include "core/critical.hpp"
#include "core/thermal_dfa.hpp"
#include "ir/printer.hpp"
#include "opt/coalesce.hpp"
#include "opt/cse.hpp"
#include "opt/dce.hpp"
#include "opt/schedule.hpp"
#include "opt/spill_critical.hpp"
#include "opt/split.hpp"
#include "pipeline/pass_manager.hpp"
#include "regalloc/graph_coloring.hpp"
#include "regalloc/linear_scan.hpp"
#include "regalloc/policy.hpp"
#include "sim/interpreter.hpp"
#include "workload/kernels.hpp"

namespace tadfa {
namespace {

// --- Spec grammar ------------------------------------------------------------

TEST(PipelineSpec, ParsesNamesAndArguments) {
  const auto passes = pipeline::parse_pipeline_spec(
      " cse, dce ,alloc=coloring:coolest_first,split-hot=2 ");
  ASSERT_TRUE(passes.has_value());
  ASSERT_EQ(passes->size(), 4u);
  EXPECT_EQ((*passes)[0].name, "cse");
  EXPECT_TRUE((*passes)[0].args.empty());
  EXPECT_EQ((*passes)[2].name, "alloc");
  EXPECT_EQ((*passes)[2].args,
            (std::vector<std::string>{"coloring", "coolest_first"}));
  EXPECT_EQ((*passes)[3].args, (std::vector<std::string>{"2"}));
}

TEST(PipelineSpec, RoundTrips) {
  const std::string canonical =
      "cse,dce,alloc=coloring:coolest_first,thermal-dfa,split-hot=2,"
      "alloc=linear:first_free,schedule";
  const auto passes = pipeline::parse_pipeline_spec(canonical);
  ASSERT_TRUE(passes.has_value());
  EXPECT_EQ(pipeline::spec_to_string(*passes), canonical);

  // Whitespace normalizes away; a second round-trip is a fixed point.
  const auto respaced =
      pipeline::parse_pipeline_spec(" cse , dce,alloc=coloring:coolest_first "
                                    ", thermal-dfa,split-hot=2, "
                                    "alloc=linear:first_free , schedule");
  ASSERT_TRUE(respaced.has_value());
  EXPECT_EQ(*respaced, *passes);
  EXPECT_EQ(pipeline::spec_to_string(*respaced), canonical);
}

TEST(PipelineSpec, RejectsMalformedSpecs) {
  pipeline::SpecError error;
  EXPECT_FALSE(pipeline::parse_pipeline_spec("", &error).has_value());
  EXPECT_FALSE(pipeline::parse_pipeline_spec("cse,,dce", &error).has_value());
  EXPECT_EQ(error.index, 1u);
  EXPECT_FALSE(pipeline::parse_pipeline_spec("alloc=", &error).has_value());
  EXPECT_FALSE(
      pipeline::parse_pipeline_spec("alloc=linear:", &error).has_value());
  EXPECT_FALSE(pipeline::parse_pipeline_spec("CSE", &error).has_value());
  EXPECT_FALSE(pipeline::parse_pipeline_spec("c se", &error).has_value());
}

TEST(PipelineSpec, EveryRegisteredSpellingIsAParseFixpoint) {
  // One spelling per registered pass plus the argument variants the
  // tools and docs use. parse -> spec_to_string -> parse must be a
  // fixed point for each: spec canonicalization is what stage-cache
  // keys are built on, so a spelling that drifts under re-serialization
  // would silently split the cache.
  const std::vector<std::string> spellings = {
      "cse",
      "dce",
      "coalesce",
      "promote",
      "promote=2",
      "alloc=linear",
      "alloc=linear:first_free",
      "alloc=linear:round_robin",
      "alloc=coloring:coolest_first",
      "alloc=coloring:coolest_first:7",
      "thermal-dfa",
      "split-hot",
      "split-hot=1",
      "split-hot=2",
      "spill-critical",
      "spill-critical=1",
      "reassign",
      "schedule",
      "nops",
      "nops=2",
      "nops=2:340",
      "bank-gating",
      "bank-gating=330",
      "verify",
  };
  for (const std::string& spelling : spellings) {
    const auto parsed = pipeline::parse_pipeline_spec(spelling);
    ASSERT_TRUE(parsed.has_value()) << spelling;
    ASSERT_EQ(parsed->size(), 1u) << spelling;
    const std::string canonical = pipeline::spec_to_string(*parsed);
    const auto reparsed = pipeline::parse_pipeline_spec(canonical);
    ASSERT_TRUE(reparsed.has_value()) << canonical;
    EXPECT_EQ(*reparsed, *parsed) << spelling;
    EXPECT_EQ(pipeline::spec_to_string(*reparsed), canonical) << spelling;
  }
}

TEST(PipelineSpec, PrefixDigestIsStableAcrossEquivalentSpellings) {
  const auto canonical = pipeline::parse_pipeline_spec(
      "cse,dce,alloc=coloring:coolest_first,thermal-dfa,schedule");
  const auto respaced = pipeline::parse_pipeline_spec(
      "  cse ,dce , alloc=coloring:coolest_first,  thermal-dfa ,schedule ");
  ASSERT_TRUE(canonical.has_value());
  ASSERT_TRUE(respaced.has_value());
  const auto reserialized =
      pipeline::parse_pipeline_spec(pipeline::spec_to_string(*canonical));
  ASSERT_TRUE(reserialized.has_value());
  for (std::size_t k = 0; k <= canonical->size(); ++k) {
    EXPECT_EQ(pipeline::spec_prefix_digest(*canonical, k),
              pipeline::spec_prefix_digest(*respaced, k))
        << k;
    EXPECT_EQ(pipeline::spec_prefix_digest(*canonical, k),
              pipeline::spec_prefix_digest(*reserialized, k))
        << k;
  }

  // Every prefix length digests differently, k clamps to the spec
  // length, and a one-pass change (or an argument change) at any
  // position flips every digest that covers it.
  for (std::size_t k = 1; k <= canonical->size(); ++k) {
    EXPECT_NE(pipeline::spec_prefix_digest(*canonical, k),
              pipeline::spec_prefix_digest(*canonical, k - 1))
        << k;
  }
  EXPECT_EQ(pipeline::spec_prefix_digest(*canonical, 99),
            pipeline::spec_prefix_digest(*canonical, canonical->size()));
  const auto retargeted = pipeline::parse_pipeline_spec(
      "cse,dce,alloc=coloring:hottest_first,thermal-dfa,schedule");
  ASSERT_TRUE(retargeted.has_value());
  EXPECT_EQ(pipeline::spec_prefix_digest(*canonical, 2),
            pipeline::spec_prefix_digest(*retargeted, 2));
  for (std::size_t k = 3; k <= canonical->size(); ++k) {
    EXPECT_NE(pipeline::spec_prefix_digest(*canonical, k),
              pipeline::spec_prefix_digest(*retargeted, k))
        << k;
  }
}

// --- Fixture -----------------------------------------------------------------

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest()
      : fp_(machine::RegisterFileConfig::default_config()),
        grid_(fp_),
        power_(fp_.config()) {
    ctx_.floorplan = &fp_;
    ctx_.grid = &grid_;
    ctx_.power = &power_;
  }

  pipeline::PassManager manager() const {
    return pipeline::PassManager(ctx_);
  }

  machine::Floorplan fp_;
  thermal::ThermalGrid grid_;
  power::PowerModel power_;
  machine::TimingModel timing_;
  pipeline::PipelineContext ctx_;
};

std::int64_t run_kernel(const workload::Kernel& kernel,
                        const ir::Function& func) {
  const machine::TimingModel timing;
  sim::Interpreter interp(func, timing);
  if (kernel.init_memory) {
    kernel.init_memory(interp.memory());
  }
  const auto result = interp.run(kernel.default_args);
  EXPECT_TRUE(result.ok()) << result.trap.value_or("?");
  return result.return_value.value_or(0);
}

// --- Registry / PassManager behavior ----------------------------------------

TEST_F(PipelineTest, RejectsUnknownPassBeforeRunningAnything) {
  const auto kernel = workload::make_kernel("counter");
  const auto run =
      manager().run(kernel->func, "cse,frobnicate,alloc=linear:first_free");
  EXPECT_FALSE(run.ok);
  EXPECT_NE(run.error.find("unknown pass 'frobnicate'"), std::string::npos)
      << run.error;
  // Construction fails up-front: not even the leading cse may run.
  EXPECT_TRUE(run.pass_stats.empty());
  EXPECT_EQ(ir::to_string(run.state.func), ir::to_string(kernel->func));
}

TEST_F(PipelineTest, RejectsBadPassArguments) {
  const auto kernel = workload::make_kernel("counter");
  EXPECT_FALSE(manager().run(kernel->func, "alloc=quantum").ok);
  EXPECT_FALSE(manager().run(kernel->func, "alloc=linear:hottest_last").ok);
  EXPECT_FALSE(manager().run(kernel->func, "split-hot=0").ok);
  EXPECT_FALSE(manager().run(kernel->func, "nops=zero").ok);
  EXPECT_FALSE(manager().run(kernel->func, "cse=3").ok);
}

TEST_F(PipelineTest, ReportsUnmetPrerequisites) {
  const auto kernel = workload::make_kernel("counter");
  const auto no_alloc = manager().run(kernel->func, "thermal-dfa");
  EXPECT_FALSE(no_alloc.ok);
  EXPECT_NE(no_alloc.error.find("alloc"), std::string::npos) << no_alloc.error;

  const auto no_ranking =
      manager().run(kernel->func, "alloc=linear:first_free,split-hot");
  EXPECT_FALSE(no_ranking.ok);
  EXPECT_NE(no_ranking.error.find("thermal-dfa"), std::string::npos)
      << no_ranking.error;
}

TEST_F(PipelineTest, NopsRejectsStaleDfaAfterIrReshape) {
  const auto kernel = workload::make_kernel("crc32");
  // split-hot reshapes the instruction stream, staling the DFA's
  // per-instruction refs; nops must refuse them instead of inserting at
  // pre-split positions.
  const auto run = manager().run(
      kernel->func,
      "alloc=linear:first_free,thermal-dfa,split-hot=1,"
      "alloc=linear:first_free,nops=2");
  EXPECT_FALSE(run.ok);
  EXPECT_NE(run.error.find("re-run thermal-dfa"), std::string::npos)
      << run.error;

  // Re-running the analysis after the reshape makes the same spec legal.
  const auto rerun = manager().run(
      kernel->func,
      "alloc=linear:first_free,thermal-dfa,split-hot=1,"
      "alloc=linear:first_free,thermal-dfa,nops=2");
  EXPECT_TRUE(rerun.ok) << rerun.error;
}

TEST_F(PipelineTest, CollectsPerPassStatistics) {
  const auto kernel = workload::make_kernel("crc32");
  const auto run = manager().run(
      kernel->func, "cse,dce,alloc=linear:first_free,thermal-dfa,schedule");
  ASSERT_TRUE(run.ok) << run.error;
  ASSERT_EQ(run.pass_stats.size(), 5u);
  EXPECT_EQ(run.pass_stats[2].name, "alloc=linear:first_free");
  EXPECT_GT(run.pass_stats[3].seconds, 0.0);  // the DFA does real work
  EXPECT_FALSE(run.pass_stats[3].summary.empty());
  for (const auto& stats : run.pass_stats) {
    EXPECT_GT(stats.instructions_after, 0u);
  }
  EXPECT_GE(run.total_seconds, run.pass_stats[3].seconds);

  std::ostringstream os;
  pipeline::PassManager::stats_table(run).print(os);
  EXPECT_NE(os.str().find("thermal-dfa"), std::string::npos);
}

TEST_F(PipelineTest, VerifierCheckpointCatchesCorruptingPass) {
  pipeline::PassRegistry registry;
  pipeline::register_builtin_passes(registry);
  registry.register_pass(
      "drop-terminator", "test-only: deletes the entry terminator",
      [](const pipeline::PassSpec&, std::string*) {
        return std::make_unique<pipeline::LambdaPass>(
            "drop-terminator",
            [](pipeline::PipelineState& state, const pipeline::PipelineContext&) {
              state.func.block(state.func.entry()).instructions().pop_back();
              return pipeline::PassOutcome::success("corrupted");
            });
      });
  const pipeline::PassManager manager(ctx_, registry);

  const auto kernel = workload::make_kernel("counter");
  const auto run = manager.run(kernel->func, "cse,drop-terminator,dce");
  EXPECT_FALSE(run.ok);
  EXPECT_NE(run.error.find("verifier checkpoint after pass "
                           "'drop-terminator'"),
            std::string::npos)
      << run.error;
  // cse completed, the corrupting pass was caught, dce never ran.
  ASSERT_EQ(run.pass_stats.size(), 2u);
  EXPECT_EQ(run.pass_stats[0].name, "cse");

  // With checkpoints off the corruption sails through — the checkpoint is
  // what catches it, not the pass machinery.
  pipeline::PassManager unchecked(ctx_, registry);
  unchecked.set_checkpoints(false);
  const auto loose = unchecked.run(kernel->func, "cse,drop-terminator");
  EXPECT_TRUE(loose.ok) << loose.error;
}

// --- Equivalence with the hand-wired flows ----------------------------------

TEST_F(PipelineTest, AllocPassMatchesDirectLinearScan) {
  for (const char* name : {"crc32", "fir", "idct8", "vecsum"}) {
    const auto kernel = workload::make_kernel(name);
    const auto run = manager().run(kernel->func, "alloc=linear:first_free");
    ASSERT_TRUE(run.ok) << name << ": " << run.error;
    ASSERT_TRUE(run.state.has_assignment());

    regalloc::FirstFreePolicy policy;
    regalloc::LinearScanAllocator allocator(fp_, policy);
    const auto direct = allocator.allocate(kernel->func);

    EXPECT_EQ(ir::to_string(run.state.func), ir::to_string(direct.func))
        << name;
    ASSERT_EQ(run.state.assignment()->vreg_count(),
              direct.assignment.vreg_count())
        << name;
    for (ir::Reg r = 0; r < direct.assignment.vreg_count(); ++r) {
      ASSERT_EQ(run.state.assignment()->assigned(r),
                direct.assignment.assigned(r))
          << name << " %" << r;
      if (direct.assignment.assigned(r)) {
        EXPECT_EQ(run.state.assignment()->phys(r), direct.assignment.phys(r))
            << name << " %" << r;
      }
    }
  }
}

// The paper's full Sec. 4 flow: the spec-driven run must equal the
// hand-wired sequence of direct calls it replaced (examples/
// thermal_pipeline.cpp before the migration).
TEST_F(PipelineTest, SpecDrivenSec4FlowMatchesHandWiredFlow) {
  constexpr const char* kSpec =
      "alloc=linear:first_free,thermal-dfa,split-hot=1,spill-critical=1,"
      "alloc=coloring:coolest_first,schedule";

  for (const char* name : {"crc32", "fir", "idct8"}) {
    const auto kernel = workload::make_kernel(name);
    const auto run = manager().run(kernel->func, kSpec);
    ASSERT_TRUE(run.ok) << name << ": " << run.error;
    ASSERT_TRUE(run.state.has_assignment());

    // Hand-wired equivalent, step by step.
    const core::ThermalDfa dfa(grid_, power_, timing_);
    regalloc::FirstFreePolicy first_free;
    regalloc::LinearScanAllocator alloc0(fp_, first_free);
    const auto baseline = alloc0.allocate(kernel->func);
    const auto analysis =
        dfa.analyze_post_ra(baseline.func, baseline.assignment);
    const core::ExactAssignmentModel model(baseline.func, fp_,
                                           baseline.assignment);
    const auto ranking = core::rank_critical_variables(
        baseline.func, model, analysis, grid_, timing_);
    ASSERT_GE(ranking.size(), 2u) << name;

    ir::Function working = baseline.func;
    opt::split_live_range(working, ranking.front().vreg);
    working =
        opt::spill_critical_variables(
            working,
            std::vector<core::CriticalVariable>(ranking.begin() + 1,
                                                ranking.end()),
            1)
            .func;

    regalloc::CoolestFirstPolicy coolest;
    regalloc::GraphColoringAllocator alloc1(fp_, coolest);
    alloc1.set_heat_scores(analysis.exit_reg_temps_k);
    const auto improved = alloc1.allocate(working);
    const auto scheduled =
        opt::thermal_schedule(improved.func, improved.assignment);

    // Same final IR...
    EXPECT_EQ(ir::to_string(run.state.func), ir::to_string(scheduled.func))
        << name;
    // ...same final assignment...
    ASSERT_EQ(run.state.assignment()->vreg_count(),
              improved.assignment.vreg_count())
        << name;
    for (ir::Reg r = 0; r < improved.assignment.vreg_count(); ++r) {
      ASSERT_EQ(run.state.assignment()->assigned(r),
                improved.assignment.assigned(r))
          << name << " %" << r;
      if (improved.assignment.assigned(r)) {
        EXPECT_EQ(run.state.assignment()->phys(r),
                  improved.assignment.phys(r))
            << name << " %" << r;
      }
    }
    // ...and unchanged semantics vs. the untransformed kernel.
    EXPECT_EQ(run_kernel(*kernel, run.state.func),
              run_kernel(*kernel, kernel->func))
        << name;
    if (kernel->expected_result.has_value()) {
      EXPECT_EQ(run_kernel(*kernel, run.state.func), *kernel->expected_result)
          << name;
    }
  }
}

TEST_F(PipelineTest, CsePipelineMatchesHandWiredCompound) {
  const auto kernel = workload::make_kernel("fir");
  const auto run = manager().run(kernel->func, "cse,coalesce,dce");
  ASSERT_TRUE(run.ok) << run.error;

  const auto cse = opt::eliminate_common_subexpressions(kernel->func);
  const auto coal = opt::coalesce_copies(cse.func);
  const auto dce = opt::eliminate_dead_code(coal.func);
  EXPECT_EQ(ir::to_string(run.state.func), ir::to_string(dce.func));
  EXPECT_EQ(run_kernel(*kernel, run.state.func),
            run_kernel(*kernel, kernel->func));
}

TEST_F(PipelineTest, SemanticsPreservedAcrossRepresentativeSpecs) {
  const char* specs[] = {
      "alloc=linear:first_free,thermal-dfa,nops=3",
      "alloc=linear:first_free,thermal-dfa,alloc=linear:coolest_first,"
      "schedule,verify",
      "promote,cse,coalesce,dce,alloc=coloring:farthest_spread",
      "alloc=linear:first_free,thermal-dfa,split-hot=2,"
      "alloc=linear:round_robin,bank-gating",
  };
  for (const char* name : {"crc32", "stencil3", "poly7"}) {
    const auto kernel = workload::make_kernel(name);
    const std::int64_t expected = run_kernel(*kernel, kernel->func);
    for (const char* spec : specs) {
      const auto run = manager().run(kernel->func, spec);
      ASSERT_TRUE(run.ok) << name << " / " << spec << ": " << run.error;
      ASSERT_TRUE(run.state.has_assignment()) << name << " / " << spec;
      EXPECT_EQ(run_kernel(*kernel, run.state.func), expected)
          << name << " / " << spec;
    }
  }
}

}  // namespace
}  // namespace tadfa
