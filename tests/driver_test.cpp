// Tests for pipeline::CompilationDriver — module-level compilation over a
// worker pool. The load-bearing property: compiling the same module with
// --jobs 1 and --jobs 8 is byte-identical (printed IR, per-function
// fingerprints, merged pass and analysis statistics), so parallelism is
// purely a wall-clock optimization.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <string_view>
#include <system_error>
#include <vector>

#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "machine/floorplan.hpp"
#include "pipeline/driver.hpp"
#include "pipeline/result_cache.hpp"
#include "power/model.hpp"
#include "thermal/grid.hpp"
#include "workload/modules.hpp"

namespace tadfa {
namespace {

/// Rig shared by every test in this suite (immutable, like the driver's
/// shared context in production).
struct DriverTest : ::testing::Test {
  machine::Floorplan fp{machine::RegisterFileConfig::default_config()};
  thermal::ThermalGrid grid{fp};
  power::PowerModel power{fp.config()};

  pipeline::PipelineContext context() const {
    pipeline::PipelineContext ctx;
    ctx.floorplan = &fp;
    ctx.grid = &grid;
    ctx.power = &power;
    return ctx;
  }
};

/// The full Sec. 4 flavor used by the determinism tests: allocation,
/// thermal DFA, heat-guided re-allocation, scheduling.
constexpr const char* kSpec =
    "cse,dce,alloc=linear:first_free,thermal-dfa,"
    "alloc=coloring:coolest_first,schedule";

ir::Module test_module(std::size_t functions, std::uint64_t seed = 11) {
  workload::ModuleConfig cfg;
  cfg.functions = functions;
  cfg.seed = seed;
  cfg.random_target_instructions = 60;  // keep the suite fast
  return workload::make_mixed_module(cfg);
}

TEST_F(DriverTest, GeneratedModulesAreWellFormedAndUniquelyNamed) {
  const ir::Module module = test_module(24);
  ASSERT_EQ(module.size(), 24u);
  EXPECT_TRUE(ir::verify(module).empty());
}

TEST_F(DriverTest, ModuleTextRoundTrips) {
  const ir::Module module = test_module(8);
  const std::string text = ir::to_string(module);
  ir::ParseError error;
  const auto reparsed = ir::parse_module(text, &error);
  ASSERT_TRUE(reparsed.has_value()) << error.message;
  ASSERT_EQ(reparsed->size(), module.size());
  for (std::size_t i = 0; i < module.size(); ++i) {
    EXPECT_EQ(ir::to_string(reparsed->functions()[i]),
              ir::to_string(module.functions()[i]));
    EXPECT_EQ(ir::fingerprint(reparsed->functions()[i]),
              ir::fingerprint(module.functions()[i]));
  }
}

TEST_F(DriverTest, CompilesEveryFunctionInModuleOrder) {
  const ir::Module module = test_module(12);
  pipeline::CompilationDriver driver(context());
  driver.set_jobs(4);
  const auto result = driver.compile(module, kSpec);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.functions.size(), module.size());
  for (std::size_t i = 0; i < module.size(); ++i) {
    EXPECT_EQ(result.functions[i].name, module.functions()[i].name());
    EXPECT_TRUE(result.functions[i].run.ok);
    EXPECT_TRUE(result.functions[i].run.state.has_assignment());
  }
}

TEST_F(DriverTest, ParallelCompilationIsByteIdenticalToSerial) {
  const ir::Module module = test_module(24);

  pipeline::CompilationDriver driver(context());
  driver.set_jobs(1);
  const auto serial = driver.compile(module, kSpec);
  ASSERT_TRUE(serial.ok) << serial.error;

  driver.set_jobs(8);
  const auto parallel = driver.compile(module, kSpec);
  ASSERT_TRUE(parallel.ok) << parallel.error;
  EXPECT_EQ(parallel.jobs, 8u);

  // Per-function: identical printed IR and fingerprints.
  ASSERT_EQ(serial.functions.size(), parallel.functions.size());
  for (std::size_t i = 0; i < serial.functions.size(); ++i) {
    EXPECT_EQ(serial.functions[i].name, parallel.functions[i].name);
    EXPECT_EQ(ir::to_string(serial.functions[i].run.state.func),
              ir::to_string(parallel.functions[i].run.state.func));
    EXPECT_EQ(ir::fingerprint(serial.functions[i].run.state.func),
              ir::fingerprint(parallel.functions[i].run.state.func));
    EXPECT_EQ(serial.functions[i].run.state.spilled_regs,
              parallel.functions[i].run.state.spilled_regs);
  }

  // Merged pass statistics: identical in every deterministic field
  // (timing is the one thing threads may change).
  const auto s_stats = serial.merged_pass_stats();
  const auto p_stats = parallel.merged_pass_stats();
  ASSERT_EQ(s_stats.size(), p_stats.size());
  for (std::size_t i = 0; i < s_stats.size(); ++i) {
    EXPECT_EQ(s_stats[i].name, p_stats[i].name);
    EXPECT_EQ(s_stats[i].summary, p_stats[i].summary);
    EXPECT_EQ(s_stats[i].changed, p_stats[i].changed);
    EXPECT_EQ(s_stats[i].instructions_after, p_stats[i].instructions_after);
    EXPECT_EQ(s_stats[i].vregs_after, p_stats[i].vregs_after);
  }

  // Merged analysis-cache statistics: identical counters.
  const auto s_cache = serial.merged_analysis_stats();
  const auto p_cache = parallel.merged_analysis_stats();
  ASSERT_EQ(s_cache.size(), p_cache.size());
  for (std::size_t i = 0; i < s_cache.size(); ++i) {
    EXPECT_EQ(s_cache[i].name, p_cache[i].name);
    EXPECT_EQ(s_cache[i].hits, p_cache[i].hits);
    EXPECT_EQ(s_cache[i].misses, p_cache[i].misses);
    EXPECT_EQ(s_cache[i].puts, p_cache[i].puts);
    EXPECT_EQ(s_cache[i].invalidations, p_cache[i].invalidations);
  }
}

TEST_F(DriverTest, RepeatedRunsAreDeterministic) {
  const ir::Module module = test_module(6, /*seed=*/3);
  pipeline::CompilationDriver driver(context());
  driver.set_jobs(4);
  const auto a = driver.compile(module, kSpec);
  const auto b = driver.compile(module, kSpec);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  for (std::size_t i = 0; i < a.functions.size(); ++i) {
    EXPECT_EQ(ir::fingerprint(a.functions[i].run.state.func),
              ir::fingerprint(b.functions[i].run.state.func));
  }
}

TEST_F(DriverTest, SpecErrorRejectsWholeModuleBeforeAnyWork) {
  const ir::Module module = test_module(4);
  pipeline::CompilationDriver driver(context());
  const auto result = driver.compile(module, "dce,no-such-pass");
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.functions.empty());
  EXPECT_NE(result.error.find("no-such-pass"), std::string::npos)
      << result.error;
}

TEST_F(DriverTest, PerFunctionFailureNamesFirstFailureInModuleOrder) {
  const ir::Module module = test_module(6);
  pipeline::CompilationDriver driver(context());
  driver.set_jobs(4);
  // split-hot without a thermal-dfa ranking fails in every function; the
  // reported error must name the *first* one regardless of which worker
  // finished first.
  const auto result = driver.compile(module, "split-hot=1");
  EXPECT_FALSE(result.ok);
  ASSERT_EQ(result.functions.size(), module.size());
  EXPECT_NE(
      result.error.find("function '" + module.functions()[0].name() + "'"),
      std::string::npos)
      << result.error;
}

TEST_F(DriverTest, CacheFaultsDegradeToMissesInsteadOfTerminating) {
  // Regression for the headline PR 5 bug: the work item called
  // cache_->lookup/insert outside any try/catch, so a filesystem
  // exception thrown under the cache escaped the worker thread and
  // std::terminate'd the whole process. With the fix, a compile against
  // a cache whose every touch throws must complete — byte-identical to
  // an uncached compile — with the faults visible in the counters.
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "tadfa-driver-fault-cache";
  fs::remove_all(dir);
  const ir::Module module = test_module(10);

  pipeline::CompilationDriver driver(context());
  driver.set_jobs(4);
  const auto reference = driver.compile(module, kSpec);
  ASSERT_TRUE(reference.ok) << reference.error;

  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok()) << cache.error();
  cache.set_fault_hook([](std::string_view) {
    throw fs::filesystem_error("injected cache I/O failure",
                               std::make_error_code(std::errc::io_error));
  });
  driver.set_result_cache(&cache);
  const auto faulted = driver.compile(module, kSpec);
  ASSERT_TRUE(faulted.ok) << faulted.error;
  ASSERT_EQ(faulted.functions.size(), module.size());
  EXPECT_EQ(faulted.cache_hits(), 0u);
  for (std::size_t i = 0; i < module.size(); ++i) {
    EXPECT_EQ(ir::to_string(faulted.functions[i].run.state.func),
              ir::to_string(reference.functions[i].run.state.func));
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.lookup_faults, module.size());
  EXPECT_EQ(stats.store_failures, module.size());
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.stores, 0u);
  fs::remove_all(dir);
}

TEST_F(DriverTest, CacheDirectoryRemovedMidCompileStillCompletes) {
  // The other flavor of the same failure: the cache directory vanishes
  // while workers are mid-module (an operator `rm -rf`, a tmpfs
  // cleaner). The first warm lookup triggers the removal; everything
  // after must degrade gracefully and the module must still come out
  // byte-identical to the cold run.
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "tadfa-driver-vanish-cache";
  fs::remove_all(dir);
  const ir::Module module = test_module(10);

  pipeline::CompilationDriver driver(context());
  driver.set_jobs(4);
  pipeline::ResultCache cache(dir.string());
  ASSERT_TRUE(cache.ok()) << cache.error();
  driver.set_result_cache(&cache);
  const auto cold = driver.compile(module, kSpec);
  ASSERT_TRUE(cold.ok) << cold.error;

  std::atomic<bool> removed{false};
  cache.set_fault_hook([&](std::string_view op) {
    if (op == "lookup" && !removed.exchange(true)) {
      fs::remove_all(dir);
    }
  });
  const auto warm = driver.compile(module, kSpec);
  ASSERT_TRUE(warm.ok) << warm.error;
  ASSERT_EQ(warm.functions.size(), module.size());
  for (std::size_t i = 0; i < module.size(); ++i) {
    EXPECT_EQ(ir::to_string(warm.functions[i].run.state.func),
              ir::to_string(cold.functions[i].run.state.func));
  }
  fs::remove_all(dir);
}

TEST_F(DriverTest, JobCountClampsToModuleSize) {
  pipeline::CompilationDriver driver(context());
  driver.set_jobs(64);
  EXPECT_EQ(driver.effective_jobs(3), 3u);
  EXPECT_EQ(driver.effective_jobs(0), 1u);
  driver.set_jobs(2);
  EXPECT_EQ(driver.effective_jobs(100), 2u);
}

TEST_F(DriverTest, ModuleVerifierCatchesDuplicateNames) {
  ir::Module module = test_module(2);
  ir::Function dup = module.functions()[0];  // same name added twice
  module.add_function(std::move(dup));
  const auto issues = ir::verify(module);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.front().message.find("duplicate"), std::string::npos);
}

TEST_F(DriverTest, VerifierRejectsNamelessFunctions) {
  ir::Function func("");
  func.add_block("entry");
  const auto issues = ir::verify(func);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.front().message.find("no name"), std::string::npos);
}

}  // namespace
}  // namespace tadfa
