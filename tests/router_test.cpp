// Tests for the scale-out layer: TCP transport, the sharding router,
// and admission control. Load-bearing properties:
//   * the router is transparent: a request answered through a 2-shard
//     topology is byte-identical (per function) to the same request
//     answered by one direct server, cold and warm, and function
//     placement is deterministic by fingerprint;
//   * a dead shard is routed around — the request still succeeds;
//   * a bounded server queue answers BUSY (structured, never a hang)
//     once full, and a BUSY propagates through the router;
//   * a frame announcing the wrong protocol version is answered with a
//     structured VERSION_MISMATCH error on both transports;
//   * a client that stalls mid-frame past the I/O deadline gets a
//     structured timeout error instead of pinning a handler thread.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "machine/floorplan.hpp"
#include "pipeline/driver.hpp"
#include "power/model.hpp"
#include "service/protocol.hpp"
#include "service/router.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"
#include "thermal/grid.hpp"
#include "workload/kernels.hpp"
#include "workload/modules.hpp"

namespace tadfa {
namespace {

constexpr const char* kSpec =
    "cse,dce,alloc=linear:first_free,thermal-dfa,"
    "alloc=coloring:coolest_first,schedule";

/// Kernels whose fingerprints land on both shards of a 2-shard policy
/// (asserted by RoutesEveryFunctionDeterministically, so the other
/// tests can rely on genuine splits).
const std::vector<std::string> kKernels = {"crc32",  "fir",      "matmul",
                                           "vecsum", "stencil3", "idct8"};

struct RouterTest : ::testing::Test {
  machine::Floorplan fp{machine::RegisterFileConfig::default_config()};
  thermal::ThermalGrid grid{fp};
  power::PowerModel power{fp.config()};

  pipeline::PipelineContext context() const {
    pipeline::PipelineContext ctx;
    ctx.floorplan = &fp;
    ctx.grid = &grid;
    ctx.power = &power;
    return ctx;
  }

  /// A per-test path under the system temp dir (kept short: sun_path
  /// caps at ~108 bytes).
  std::string temp_path(const std::string& suffix) const {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    return (std::filesystem::temp_directory_path() /
            (std::string("tadfa-rt-") + info->name() + suffix))
        .string();
  }

  service::ServerConfig shard_config(int index) const {
    service::ServerConfig cfg;
    cfg.socket_path = temp_path("-s" + std::to_string(index) + ".sock");
    cfg.jobs = 2;
    cfg.default_spec = kSpec;
    return cfg;
  }

  service::RouterConfig router_config(
      const std::vector<std::string>& shard_addresses) const {
    service::RouterConfig cfg;
    cfg.socket_path = temp_path("-router.sock");
    cfg.connect_timeout_seconds = 0.2;
    for (const std::string& address : shard_addresses) {
      std::string error;
      auto parsed = service::parse_shard_address(address, &error);
      EXPECT_TRUE(parsed.has_value()) << error;
      cfg.shards.push_back(std::move(*parsed));
    }
    return cfg;
  }
};

/// One connect → request → response exchange over a Unix socket.
service::CompileResponse roundtrip(const std::string& socket,
                                   const service::CompileRequest& request) {
  std::string error;
  const int fd = service::connect_unix(socket, &error);
  EXPECT_GE(fd, 0) << error;
  EXPECT_TRUE(service::write_request(fd, request, &error)) << error;
  auto response = service::read_response(fd, &error);
  EXPECT_TRUE(response.has_value()) << error;
  ::close(fd);
  return response.value_or(service::error_response("no response"));
}

/// The same exchange over TCP.
service::CompileResponse roundtrip_tcp(std::uint16_t port,
                                       const service::CompileRequest& request) {
  std::string error;
  const int fd = service::connect_tcp("127.0.0.1", port, &error);
  EXPECT_GE(fd, 0) << error;
  EXPECT_TRUE(service::write_request(fd, request, &error)) << error;
  auto response = service::read_response(fd, &error);
  EXPECT_TRUE(response.has_value()) << error;
  ::close(fd);
  return response.value_or(service::error_response("no response"));
}

/// Per-function byte identity against a direct driver compile, plus
/// the merged statistics (summaries and counts are deterministic;
/// seconds are not and are not compared).
void expect_matches_direct(const service::CompileResponse& response,
                           const pipeline::ModulePipelineResult& direct) {
  ASSERT_EQ(response.functions.size(), direct.functions.size());
  for (std::size_t i = 0; i < direct.functions.size(); ++i) {
    const service::FunctionResult& served = response.functions[i];
    const pipeline::FunctionCompileResult& ref = direct.functions[i];
    EXPECT_EQ(served.name, ref.name);
    EXPECT_EQ(served.ok, ref.run.ok);
    EXPECT_EQ(served.printed, ir::to_string(ref.run.state.func));
    EXPECT_EQ(served.spilled_regs, ref.run.state.spilled_regs);
    EXPECT_EQ(served.instructions, ref.run.state.func.instruction_count());
    EXPECT_EQ(served.vregs, ref.run.state.func.reg_count());
  }
  const auto direct_stats = direct.merged_pass_stats();
  ASSERT_EQ(response.pass_stats.size(), direct_stats.size());
  for (std::size_t i = 0; i < direct_stats.size(); ++i) {
    EXPECT_EQ(response.pass_stats[i].name, direct_stats[i].name);
    EXPECT_EQ(response.pass_stats[i].summary, direct_stats[i].summary);
    EXPECT_EQ(response.pass_stats[i].changed, direct_stats[i].changed);
    EXPECT_EQ(response.pass_stats[i].instructions_after,
              direct_stats[i].instructions_after);
    EXPECT_EQ(response.pass_stats[i].vregs_after,
              direct_stats[i].vregs_after);
  }
}

ir::Module kernel_module() {
  ir::Module module;
  for (const std::string& name : kKernels) {
    module.add_function(std::move(workload::make_kernel(name)->func));
  }
  return module;
}

TEST(ShardPolicyTest, FingerprintPolicyIsDeterministicAndTotal) {
  service::FingerprintShardPolicy policy;
  for (const std::string& name : kKernels) {
    const std::uint64_t fp = ir::fingerprint(workload::make_kernel(name)->func);
    for (std::size_t shards = 1; shards <= 5; ++shards) {
      const std::size_t first = policy.shard_for(fp, shards);
      EXPECT_LT(first, shards);
      EXPECT_EQ(policy.shard_for(fp, shards), first);
    }
  }
}

TEST(ShardPolicyTest, ParsesShardAddressForms) {
  std::string error;
  auto unix_addr = service::parse_shard_address("unix:/tmp/s.sock", &error);
  ASSERT_TRUE(unix_addr.has_value()) << error;
  EXPECT_FALSE(unix_addr->tcp);
  EXPECT_EQ(unix_addr->unix_path, "/tmp/s.sock");

  auto bare_path = service::parse_shard_address("/tmp/s.sock", &error);
  ASSERT_TRUE(bare_path.has_value()) << error;
  EXPECT_FALSE(bare_path->tcp);

  auto tcp_addr = service::parse_shard_address("tcp:127.0.0.1:7411", &error);
  ASSERT_TRUE(tcp_addr.has_value()) << error;
  EXPECT_TRUE(tcp_addr->tcp);
  EXPECT_EQ(tcp_addr->endpoint.host, "127.0.0.1");
  EXPECT_EQ(tcp_addr->endpoint.port, 7411);

  auto bare_tcp = service::parse_shard_address("localhost:7411", &error);
  ASSERT_TRUE(bare_tcp.has_value()) << error;
  EXPECT_TRUE(bare_tcp->tcp);

  EXPECT_FALSE(service::parse_shard_address("unix:", &error).has_value());
  EXPECT_FALSE(
      service::parse_shard_address("tcp:127.0.0.1:0", &error).has_value());
  EXPECT_FALSE(service::parse_shard_address("nonsense", &error).has_value());
}

TEST_F(RouterTest, TcpTransportMatchesDirectCompile) {
  service::ServerConfig cfg;
  cfg.tcp_host = "127.0.0.1";
  cfg.tcp_port = 0;  // ephemeral
  cfg.jobs = 2;
  cfg.default_spec = kSpec;
  service::CompileServer server(context(), cfg);
  ASSERT_TRUE(server.start()) << server.error();
  ASSERT_NE(server.tcp_port(), 0);

  service::CompileRequest request;
  request.spec = kSpec;
  request.kernels = kKernels;
  const auto response = roundtrip_tcp(server.tcp_port(), request);
  EXPECT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.code, service::ResponseCode::kOk);

  pipeline::CompilationDriver driver(context());
  driver.set_jobs(2);
  ir::Module module = kernel_module();
  expect_matches_direct(response, driver.compile(module, kSpec));
  server.shutdown();
}

TEST_F(RouterTest, RoutesEveryFunctionDeterministicallyAndMatchesDirect) {
  // Two shards with private caches; the router in front. Cold and warm
  // responses must both be byte-identical to one direct compile, and
  // the second pass must be served from the shards' caches.
  service::ServerConfig s0 = shard_config(0);
  s0.cache_dir = temp_path("-c0");
  service::ServerConfig s1 = shard_config(1);
  s1.cache_dir = temp_path("-c1");
  // The paths are deterministic per test name; a previous run's
  // persisted cache would make the cold pass warm.
  std::filesystem::remove_all(s0.cache_dir);
  std::filesystem::remove_all(s1.cache_dir);
  service::CompileServer shard0(context(), s0);
  service::CompileServer shard1(context(), s1);
  ASSERT_TRUE(shard0.start()) << shard0.error();
  ASSERT_TRUE(shard1.start()) << shard1.error();

  service::Router router(router_config(
      {"unix:" + s0.socket_path, "unix:" + s1.socket_path}));
  ASSERT_TRUE(router.start()) << router.error();

  service::CompileRequest request;
  request.spec = kSpec;
  request.kernels = kKernels;
  // Module text rides along so both origins (kernel names, IR text)
  // cross the router.
  request.module_text =
      "func @ride_along(%0) {\n"
      "entry:\n"
      "  %1 = add %0, %0\n"
      "  ret %1\n"
      "}\n";

  pipeline::CompilationDriver driver(context());
  driver.set_jobs(2);
  ir::Module module = kernel_module();
  {
    ir::ParseError perr;
    auto rider = ir::parse_module(request.module_text, &perr);
    ASSERT_TRUE(rider.has_value()) << perr.message;
    module.add_function(std::move(rider->functions().front()));
  }
  const auto direct = driver.compile(module, kSpec);

  const auto cold = roundtrip(router.config().socket_path, request);
  EXPECT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(cold.code, service::ResponseCode::kOk);
  expect_matches_direct(cold, direct);
  EXPECT_EQ(cold.cache_hits(), 0u);

  // The suite must genuinely split: both shards compiled something.
  const auto cold_metrics = router.metrics();
  ASSERT_EQ(cold_metrics.shards.size(), 2u);
  EXPECT_GT(cold_metrics.shards[0].functions, 0u);
  EXPECT_GT(cold_metrics.shards[1].functions, 0u);
  EXPECT_EQ(cold_metrics.shards[0].functions +
                cold_metrics.shards[1].functions,
            module.size());

  const auto warm = roundtrip(router.config().socket_path, request);
  EXPECT_TRUE(warm.ok) << warm.error;
  expect_matches_direct(warm, direct);
  EXPECT_EQ(warm.cache_hits(), module.size());

  // Deterministic placement: the warm pass put exactly the same
  // function count on each shard.
  const auto warm_metrics = router.metrics();
  EXPECT_EQ(warm_metrics.shards[0].functions,
            2 * cold_metrics.shards[0].functions);
  EXPECT_EQ(warm_metrics.shards[1].functions,
            2 * cold_metrics.shards[1].functions);
  EXPECT_EQ(warm_metrics.requests_ok, 2u);

  router.shutdown();
  shard0.shutdown();
  shard1.shutdown();
}

TEST_F(RouterTest, RoutesAroundDeadShard) {
  // Shard 1 is configured but never started: every slice aimed at it
  // must deterministically land on shard 0 and the request still
  // succeeds end to end.
  service::ServerConfig s0 = shard_config(0);
  service::CompileServer shard0(context(), s0);
  ASSERT_TRUE(shard0.start()) << shard0.error();

  service::Router router(router_config(
      {"unix:" + s0.socket_path, "unix:" + temp_path("-dead.sock")}));
  ASSERT_TRUE(router.start()) << router.error();

  service::CompileRequest request;
  request.spec = kSpec;
  request.kernels = kKernels;
  const auto response = roundtrip(router.config().socket_path, request);
  EXPECT_TRUE(response.ok) << response.error;

  pipeline::CompilationDriver driver(context());
  driver.set_jobs(2);
  ir::Module module = kernel_module();
  expect_matches_direct(response, driver.compile(module, kSpec));

  const auto metrics = router.metrics();
  ASSERT_EQ(metrics.shards.size(), 2u);
  EXPECT_EQ(metrics.shards[0].functions, module.size());
  EXPECT_GT(metrics.shards[0].routed_around_in, 0u);
  EXPECT_EQ(metrics.shards[1].forwarded, 0u);

  router.shutdown();
  shard0.shutdown();
}

TEST_F(RouterTest, NoReachableShardAnswersBusyNotHang) {
  service::Router router(router_config(
      {"unix:" + temp_path("-dead0.sock"),
       "unix:" + temp_path("-dead1.sock")}));
  ASSERT_TRUE(router.start()) << router.error();

  service::CompileRequest request;
  request.spec = kSpec;
  request.kernels = {"crc32"};
  const auto response = roundtrip(router.config().socket_path, request);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, service::ResponseCode::kBusy);
  EXPECT_NE(response.error.find("no shard reachable"), std::string::npos)
      << response.error;
  router.shutdown();
}

TEST_F(RouterTest, BoundedQueueAnswersBusyAndPropagatesThroughRouter) {
  // jobs=1 and max_queue=1: while the dispatcher compiles a large
  // module, the queue holds at most one follow-up; the next request is
  // shed with a structured BUSY — directly, and through the router.
  service::ServerConfig cfg = shard_config(0);
  cfg.jobs = 1;
  cfg.max_queue = 1;
  service::CompileServer server(context(), cfg);
  ASSERT_TRUE(server.start()) << server.error();

  service::Router router(router_config({"unix:" + cfg.socket_path}));
  ASSERT_TRUE(router.start()) << router.error();

  workload::ModuleConfig mod_cfg;
  mod_cfg.functions = 48;
  mod_cfg.seed = 11;
  mod_cfg.random_target_instructions = 60;
  service::CompileRequest big;
  big.spec = kSpec;
  big.module_text = ir::to_string(workload::make_mixed_module(mod_cfg));

  service::CompileRequest small;
  small.spec = kSpec;
  small.kernels = {"crc32"};

  // BUSY requires a precise state — the big request *inside* the
  // dispatcher (the dispatcher drains the whole queue into each batch,
  // so a queued request alone is not enough) and a small one occupying
  // the queue's single slot. Wall-clock sleeps are flaky under
  // sanitizer slowdowns, so synchronize on the server's own metrics:
  // queue_peak rises when big is admitted, queue_depth falls back to 0
  // when the dispatcher takes it, and rises again when the small
  // request is queued behind the running compile.
  const auto wait_for = [&](auto&& pred, const char* what) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (!pred()) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline) << what;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  std::atomic<bool> big_done{false};
  std::thread big_client([&] {
    const auto response = roundtrip(cfg.socket_path, big);
    big_done.store(true);
    EXPECT_TRUE(response.ok) << response.error;
  });
  wait_for([&] { return server.metrics().queue_peak >= 1; },
           "big request never reached the queue");
  wait_for([&] { return server.metrics().queue_depth == 0; },
           "big request never left the queue");
  ASSERT_FALSE(big_done.load())
      << "big compile finished before the queue could fill; the module "
         "is too small for this machine";
  std::thread queued_client([&] {
    const auto response = roundtrip(cfg.socket_path, small);
    // Queued or shed are both legal for this one; it must simply
    // complete with a structured response.
    EXPECT_FALSE(response.functions.empty() && response.error.empty());
  });
  wait_for([&] { return server.metrics().queue_depth >= 1; },
           "small request never occupied the queue slot");
  ASSERT_FALSE(big_done.load())
      << "big compile finished before the probe; the module is too "
         "small for this machine";
  // Queue full, dispatcher pinned: the probe through the router must
  // come back as a structured BUSY, not block.
  bool saw_busy = false;
  for (int i = 0; i < 3 && !saw_busy; ++i) {
    const auto probe = roundtrip(router.config().socket_path, small);
    if (!probe.ok && probe.code == service::ResponseCode::kBusy) {
      saw_busy = true;
      EXPECT_NE(probe.error.find("at capacity"), std::string::npos)
          << probe.error;
    }
  }
  big_client.join();
  queued_client.join();
  EXPECT_TRUE(saw_busy) << "no request was shed while the dispatcher was "
                           "pinned by a 48-function compile";
  const auto metrics = server.metrics();
  EXPECT_GT(metrics.requests_busy, 0u);
  EXPECT_GE(metrics.queue_peak, 1u);

  router.shutdown();
  server.shutdown();
}

TEST_F(RouterTest, SpoofedProtocolVersionGetsStructuredErrorBothTransports) {
  service::ServerConfig cfg = shard_config(0);
  cfg.tcp_host = "127.0.0.1";
  cfg.tcp_port = 0;
  service::CompileServer server(context(), cfg);
  ASSERT_TRUE(server.start()) << server.error();

  service::CompileRequest request;
  request.spec = kSpec;
  request.kernels = {"crc32"};
  ByteWriter payload;
  request.serialize(payload);

  // A v2 frame: correct magic and framing, older version word.
  ByteWriter frame;
  frame.u32(service::kFrameMagic);
  frame.u32(2);
  frame.u64(payload.data().size());
  const std::string spoofed =
      frame.data() + payload.data();

  auto expect_mismatch = [&](int fd) {
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::send(fd, spoofed.data(), spoofed.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(spoofed.size()));
    std::string error;
    const auto response = service::read_response(fd, &error);
    ASSERT_TRUE(response.has_value()) << error;
    EXPECT_FALSE(response->ok);
    EXPECT_EQ(response->code, service::ResponseCode::kVersionMismatch);
    // The refusal names both versions: the spoofed one and whatever
    // this build actually speaks (don't hard-code the latter — it
    // bumps with the protocol).
    EXPECT_NE(response->error.find("v2"), std::string::npos)
        << response->error;
    EXPECT_NE(response->error.find(
                  "v" + std::to_string(service::kProtocolVersion)),
              std::string::npos)
        << response->error;
    ::close(fd);
  };

  std::string error;
  expect_mismatch(service::connect_unix(cfg.socket_path, &error));
  expect_mismatch(service::connect_tcp("127.0.0.1", server.tcp_port(),
                                       &error));
  const auto metrics = server.metrics();
  EXPECT_EQ(metrics.version_mismatches, 2u);

  // The router front refuses a mismatched frame the same way.
  service::Router router(router_config({"unix:" + cfg.socket_path}));
  ASSERT_TRUE(router.start()) << router.error();
  expect_mismatch(
      service::connect_unix(router.config().socket_path, &error));
  router.shutdown();
  server.shutdown();
}

TEST_F(RouterTest, StallingClientGetsStructuredTimeout) {
  service::ServerConfig cfg = shard_config(0);
  cfg.io_timeout_seconds = 0.2;
  service::CompileServer server(context(), cfg);
  ASSERT_TRUE(server.start()) << server.error();

  // Half a header, then silence: the handler must answer a structured
  // timeout shortly after the deadline, not hold the connection open.
  std::string error;
  const int fd = service::connect_unix(cfg.socket_path, &error);
  ASSERT_GE(fd, 0) << error;
  ByteWriter header;
  header.u32(service::kFrameMagic);
  header.u32(service::kProtocolVersion);
  const std::string partial = header.data();
  ASSERT_EQ(::send(fd, partial.data(), partial.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(partial.size()));

  const auto before = std::chrono::steady_clock::now();
  const auto response = service::read_response(fd, &error);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - before)
          .count();
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->code, service::ResponseCode::kTimeout);
  EXPECT_LT(waited, 5.0);
  ::close(fd);

  // An idle connection (no bytes at all) is closed quietly: EOF, not
  // an error frame.
  const int idle = service::connect_unix(cfg.socket_path, &error);
  ASSERT_GE(idle, 0) << error;
  char byte = 0;
  const ssize_t got = ::recv(idle, &byte, 1, 0);
  EXPECT_EQ(got, 0);
  ::close(idle);

  const auto metrics = server.metrics();
  EXPECT_EQ(metrics.timeouts, 1u);
  server.shutdown();
}

}  // namespace
}  // namespace tadfa
