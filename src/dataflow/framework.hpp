// Generic iterative (worklist) data-flow solver.
//
// This is the classical framework of Cooper & Torczon ("Engineering a
// Compiler" [6], the paper's data-flow reference): a problem supplies a
// lattice domain, a meet, and per-block transfer functions; the solver
// iterates to a fixed point in reverse post-order (forward problems) or
// post-order (backward problems).
//
// The paper's thermal analysis (src/core) reuses the same iteration
// structure, but — as Sec. 4 stresses — its domain is a vector of real-valued
// temperatures with a *δ-approximate* convergence test rather than lattice
// equality, and convergence is not guaranteed. Keeping the two solvers
// side by side makes that contrast concrete.
#pragma once

#include <concepts>
#include <vector>

#include "dataflow/cfg.hpp"

namespace tadfa::dataflow {

enum class Direction { kForward, kBackward };

/// Requirements on a data-flow problem definition.
///
///   Domain    — the lattice value attached to block boundaries.
///   boundary()— value at the entry (forward) or exit (backward) boundary.
///   top()     — identity of meet; initial value of all interior points.
///   meet(a,b) — combines a predecessor/successor contribution into `a`;
///               returns true when `a` changed.
///   transfer(block, in) — applies the block's transfer function.
template <typename P>
concept DataflowProblem = requires(P p, typename P::Domain d,
                                   const typename P::Domain& cd,
                                   ir::BlockId b) {
  { p.boundary() } -> std::same_as<typename P::Domain>;
  { p.top() } -> std::same_as<typename P::Domain>;
  { p.meet(d, cd) } -> std::same_as<bool>;
  { p.transfer(b, cd) } -> std::same_as<typename P::Domain>;
};

template <typename Domain>
struct DataflowResult {
  /// Value at block entry (forward) / block exit order is normalized so that
  /// `in[b]` is always the value *before* the block in analysis direction
  /// and `out[b]` the value after it.
  std::vector<Domain> in;
  std::vector<Domain> out;
  /// Number of full passes over the CFG until the fixed point.
  int iterations = 0;
};

/// Runs the iterative algorithm to a fixed point. Terminates for any
/// monotone problem on a finite-height lattice (all problems in this
/// module). `max_iterations` is a safety net for ill-posed problems.
template <typename P>
  requires DataflowProblem<P>
DataflowResult<typename P::Domain> solve(const Cfg& cfg, P& problem,
                                         Direction direction,
                                         int max_iterations = 1000) {
  using Domain = typename P::Domain;
  const std::size_t n = cfg.block_count();

  DataflowResult<Domain> result;
  result.in.assign(n, problem.top());
  result.out.assign(n, problem.top());

  const std::vector<ir::BlockId> order = direction == Direction::kForward
                                             ? cfg.reverse_post_order()
                                             : cfg.post_order();

  const ir::BlockId entry = cfg.function().entry();

  bool changed = true;
  while (changed && result.iterations < max_iterations) {
    changed = false;
    ++result.iterations;
    for (ir::BlockId b : order) {
      // Meet over incoming edges.
      Domain incoming = problem.top();
      bool has_edge = false;
      const auto& edges = direction == Direction::kForward
                              ? cfg.predecessors(b)
                              : cfg.successors(b);
      for (ir::BlockId e : edges) {
        problem.meet(incoming, result.out[e]);
        has_edge = true;
      }
      const bool is_boundary =
          direction == Direction::kForward ? b == entry : edges.empty();
      if (is_boundary) {
        problem.meet(incoming, problem.boundary());
      } else if (!has_edge) {
        // Unreachable in analysis direction: keep top.
      }

      result.in[b] = incoming;
      Domain transferred = problem.transfer(b, result.in[b]);
      if (!(transferred == result.out[b])) {
        result.out[b] = std::move(transferred);
        changed = true;
      }
    }
  }
  return result;
}

}  // namespace tadfa::dataflow
