// Bitwidth (value-range) analysis, after Stephenson et al. [7] — the
// paper's Sec. 3 example of a data-flow analysis that propagates "an
// interval for each variable". Included both as a framework exercise and
// because the thermal model can use narrow widths to scale per-access
// energy (fewer active bit cells → less switched capacitance).
#pragma once

#include <cstdint>
#include <vector>

#include "dataflow/cfg.hpp"

namespace tadfa::dataflow {

/// Inclusive integer interval with a bottom (empty) state.
struct ValueRange {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  bool defined = false;  // false = bottom (no information yet)

  static ValueRange bottom() { return {}; }
  static ValueRange exact(std::int64_t v) { return {v, v, true}; }
  static ValueRange full();

  /// Union (lattice join). Returns true if this widened.
  bool join(const ValueRange& other);

  /// Number of bits needed to represent every value in the range
  /// (two's complement, including the sign bit when lo < 0).
  int bitwidth() const;

  friend bool operator==(const ValueRange&, const ValueRange&) = default;
};

/// Per-register value ranges at function exit points, computed by a forward
/// interval analysis with widening (ranges that keep growing across
/// iterations are widened to full()).
class BitwidthAnalysis {
 public:
  explicit BitwidthAnalysis(const Cfg& cfg);

  /// Final (post-fixed-point) range of a register, joined over all program
  /// points where the register is defined.
  const ValueRange& range(ir::Reg r) const { return ranges_[r]; }

  /// Bits needed for the register across the whole function.
  int bitwidth(ir::Reg r) const { return ranges_[r].bitwidth(); }

  int iterations() const { return iterations_; }

 private:
  std::vector<ValueRange> ranges_;
  int iterations_ = 0;
};

}  // namespace tadfa::dataflow
