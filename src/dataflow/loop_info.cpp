#include "dataflow/loop_info.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace tadfa::dataflow {

LoopInfo::LoopInfo(const Cfg& cfg, const Dominators& doms) {
  const std::size_t n = cfg.block_count();
  depth_.assign(n, 0);

  // Find back edges: t -> h where h dominates t.
  struct BackEdge {
    ir::BlockId latch;
    ir::BlockId header;
  };
  std::vector<BackEdge> back_edges;
  for (ir::BlockId b = 0; b < n; ++b) {
    if (!cfg.reachable(b)) {
      continue;
    }
    for (ir::BlockId s : cfg.successors(b)) {
      if (doms.dominates(s, b)) {
        back_edges.push_back({b, s});
      }
    }
  }

  // Natural loop of a back edge: header plus all blocks that reach the
  // latch without going through the header (reverse flood fill).
  // Merge loops sharing a header.
  for (const BackEdge& edge : back_edges) {
    Loop* loop = nullptr;
    for (Loop& l : loops_) {
      if (l.header == edge.header) {
        loop = &l;
        break;
      }
    }
    if (loop == nullptr) {
      loops_.push_back({});
      loop = &loops_.back();
      loop->header = edge.header;
      loop->blocks.push_back(edge.header);
    }
    loop->latches.push_back(edge.latch);

    std::vector<ir::BlockId> stack;
    auto in_loop = [loop](ir::BlockId b) {
      return std::find(loop->blocks.begin(), loop->blocks.end(), b) !=
             loop->blocks.end();
    };
    if (!in_loop(edge.latch)) {
      loop->blocks.push_back(edge.latch);
      stack.push_back(edge.latch);
    }
    while (!stack.empty()) {
      const ir::BlockId b = stack.back();
      stack.pop_back();
      for (ir::BlockId p : cfg.predecessors(b)) {
        if (!in_loop(p)) {
          loop->blocks.push_back(p);
          stack.push_back(p);
        }
      }
    }
  }

  // Depth: number of loops containing the block. Loop depth: number of
  // loops containing its header (inclusive).
  for (ir::BlockId b = 0; b < n; ++b) {
    std::size_t d = 0;
    for (const Loop& l : loops_) {
      if (std::find(l.blocks.begin(), l.blocks.end(), b) != l.blocks.end()) {
        ++d;
      }
    }
    depth_[b] = d;
  }
  for (Loop& l : loops_) {
    l.depth = depth_[l.header];
  }
}

bool LoopInfo::is_header(ir::BlockId b) const {
  for (const Loop& l : loops_) {
    if (l.header == b) {
      return true;
    }
  }
  return false;
}

std::vector<double> estimate_block_frequencies(const Cfg& cfg,
                                               const LoopInfo& loops,
                                               double trip_count_guess) {
  TADFA_ASSERT(trip_count_guess >= 1.0);
  const std::size_t n = cfg.block_count();
  std::vector<double> freq(n, 0.0);

  // Base: loop-depth scaling.
  for (ir::BlockId b = 0; b < n; ++b) {
    if (!cfg.reachable(b)) {
      continue;
    }
    freq[b] = std::pow(trip_count_guess,
                       static_cast<double>(loops.depth(b)));
  }

  // Refinement: within the same loop depth, blocks below a two-way branch
  // are (heuristically) half as frequent as the branch block itself. One
  // forward sweep in RPO is enough for the nesting-free part.
  for (ir::BlockId b : cfg.reverse_post_order()) {
    if (!cfg.reachable(b)) {
      continue;
    }
    const auto& succs = cfg.successors(b);
    if (succs.size() == 2 && succs[0] != succs[1]) {
      // Only a genuine diamond (both arms stay at this loop depth) splits
      // frequency; loop-exit branches do not discount the loop body.
      const bool diamond = loops.depth(succs[0]) == loops.depth(b) &&
                           loops.depth(succs[1]) == loops.depth(b);
      if (!diamond) {
        continue;
      }
      for (ir::BlockId s : succs) {
        if (cfg.predecessors(s).size() == 1 && !loops.is_header(s)) {
          freq[s] = freq[b] * 0.5;
        }
      }
    }
  }
  return freq;
}

}  // namespace tadfa::dataflow
