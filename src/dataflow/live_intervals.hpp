// Live intervals over a linearized instruction numbering (for linear-scan
// register allocation).
//
// Blocks are laid out in their Function order; instruction positions are
// consecutive integers. Intervals are conservative: one [start, end] span
// per register covering every point where it is live (lifetime holes are
// not modelled, which is the classic linear-scan simplification).
#pragma once

#include <optional>
#include <vector>

#include "dataflow/liveness.hpp"

namespace tadfa::dataflow {

struct LiveInterval {
  ir::Reg reg = ir::kInvalidReg;
  /// First position where the register is defined or live.
  std::size_t start = 0;
  /// Last position where the register is used or live (inclusive).
  std::size_t end = 0;
  /// Total number of accesses (uses + defs) inside the interval — the
  /// access-density signal the thermal analysis ranks variables by.
  std::size_t access_count = 0;

  bool overlaps(const LiveInterval& other) const {
    return start <= other.end && other.start <= end;
  }
};

class LiveIntervals {
 public:
  LiveIntervals(const Cfg& cfg, const Liveness& liveness);

  /// Linear position of an instruction.
  std::size_t position(ir::InstrRef ref) const;

  /// Instruction at a linear position.
  ir::InstrRef at_position(std::size_t pos) const { return order_[pos]; }

  /// Total number of linear positions (= instruction count).
  std::size_t position_count() const { return order_.size(); }

  /// Interval of a register; nullopt when the register is never live
  /// (dead def with no uses still yields a one-point interval).
  std::optional<LiveInterval> interval(ir::Reg reg) const;

  /// All intervals, sorted by increasing start.
  const std::vector<LiveInterval>& intervals() const { return sorted_; }

 private:
  std::vector<ir::InstrRef> order_;
  std::vector<std::size_t> block_start_;  // position of each block's first inst
  std::vector<std::optional<LiveInterval>> by_reg_;
  std::vector<LiveInterval> sorted_;
};

}  // namespace tadfa::dataflow
