#include "dataflow/dominators.hpp"

#include <algorithm>

namespace tadfa::dataflow {

Dominators::Dominators(const Cfg& cfg) {
  const std::size_t n = cfg.block_count();
  idom_.assign(n, ir::kInvalidBlock);
  children_.assign(n, {});
  depth_.assign(n, 0);
  if (n == 0) {
    return;
  }

  // rpo_index[b] = position of b in reverse post-order.
  std::vector<std::size_t> rpo_index(n, ~std::size_t{0});
  const auto& rpo = cfg.reverse_post_order();
  for (std::size_t i = 0; i < rpo.size(); ++i) {
    rpo_index[rpo[i]] = i;
  }

  const ir::BlockId entry = cfg.function().entry();
  idom_[entry] = entry;

  auto intersect = [&](ir::BlockId a, ir::BlockId b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) {
        a = idom_[a];
      }
      while (rpo_index[b] > rpo_index[a]) {
        b = idom_[b];
      }
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (ir::BlockId b : rpo) {
      if (b == entry || !cfg.reachable(b)) {
        continue;
      }
      ir::BlockId new_idom = ir::kInvalidBlock;
      for (ir::BlockId p : cfg.predecessors(b)) {
        if (idom_[p] == ir::kInvalidBlock) {
          continue;  // predecessor not processed yet (or unreachable)
        }
        new_idom = new_idom == ir::kInvalidBlock ? p : intersect(p, new_idom);
      }
      if (new_idom != ir::kInvalidBlock && idom_[b] != new_idom) {
        idom_[b] = new_idom;
        changed = true;
      }
    }
  }

  // Build tree children and depths (skip unreachable blocks).
  for (ir::BlockId b = 0; b < n; ++b) {
    if (b != entry && idom_[b] != ir::kInvalidBlock) {
      children_[idom_[b]].push_back(b);
    }
  }
  // Depths by walking RPO (idom always precedes its children in RPO).
  for (ir::BlockId b : rpo) {
    if (b == entry || idom_[b] == ir::kInvalidBlock) {
      continue;
    }
    depth_[b] = depth_[idom_[b]] + 1;
  }
}

bool Dominators::dominates(ir::BlockId a, ir::BlockId b) const {
  if (idom_[b] == ir::kInvalidBlock) {
    return false;  // unreachable blocks are dominated by nothing
  }
  ir::BlockId cur = b;
  for (;;) {
    if (cur == a) {
      return true;
    }
    const ir::BlockId up = idom_[cur];
    if (up == cur) {
      return a == cur;  // reached entry
    }
    cur = up;
  }
}

}  // namespace tadfa::dataflow
