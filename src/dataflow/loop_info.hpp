// Natural-loop discovery and static execution-frequency estimation.
//
// The thermal data flow analysis weights each instruction's heat
// contribution by how often it executes. Before profile data exists, the
// classical static estimate is used: every loop level multiplies the
// expected execution count by a constant trip-count guess, and conditional
// successors split their predecessor's frequency evenly.
#pragma once

#include <vector>

#include "dataflow/cfg.hpp"
#include "dataflow/dominators.hpp"

namespace tadfa::dataflow {

struct Loop {
  /// Loop header (target of the back edge).
  ir::BlockId header = ir::kInvalidBlock;
  /// Blocks belonging to the natural loop (header included).
  std::vector<ir::BlockId> blocks;
  /// Sources of back edges into the header.
  std::vector<ir::BlockId> latches;
  /// Nesting depth (outermost loop = 1).
  std::size_t depth = 1;
};

class LoopInfo {
 public:
  LoopInfo(const Cfg& cfg, const Dominators& doms);

  const std::vector<Loop>& loops() const { return loops_; }

  /// Loop nesting depth of a block (0 = not in any loop).
  std::size_t depth(ir::BlockId b) const { return depth_[b]; }

  /// True when b is some loop's header.
  bool is_header(ir::BlockId b) const;

 private:
  std::vector<Loop> loops_;
  std::vector<std::size_t> depth_;
};

/// Estimated relative execution count for every block.
///
/// freq(entry) = 1; each loop level multiplies by `trip_count_guess`;
/// conditional branches split frequency evenly between their successors.
/// Computed as depth-based scaling (robust on irregular CFGs where a
/// flow-equation solve may not converge).
std::vector<double> estimate_block_frequencies(const Cfg& cfg,
                                               const LoopInfo& loops,
                                               double trip_count_guess = 10.0);

}  // namespace tadfa::dataflow
