#include "dataflow/bitwidth.hpp"

#include <algorithm>
#include <limits>

#include "support/assert.hpp"

namespace tadfa::dataflow {
namespace {

using i64 = std::int64_t;
using i128 = __int128;

constexpr i64 kMin = std::numeric_limits<i64>::min();
constexpr i64 kMax = std::numeric_limits<i64>::max();

i64 saturate(i128 v) {
  if (v < static_cast<i128>(kMin)) {
    return kMin;
  }
  if (v > static_cast<i128>(kMax)) {
    return kMax;
  }
  return static_cast<i64>(v);
}

ValueRange make(i128 lo, i128 hi) {
  ValueRange r;
  r.lo = saturate(lo);
  r.hi = saturate(hi);
  r.defined = true;
  return r;
}

ValueRange combine4(const ValueRange& a, const ValueRange& b,
                    i128 (*op)(i128, i128)) {
  const i128 c1 = op(a.lo, b.lo);
  const i128 c2 = op(a.lo, b.hi);
  const i128 c3 = op(a.hi, b.lo);
  const i128 c4 = op(a.hi, b.hi);
  return make(std::min({c1, c2, c3, c4}), std::max({c1, c2, c3, c4}));
}

}  // namespace

ValueRange ValueRange::full() { return {kMin, kMax, true}; }

bool ValueRange::join(const ValueRange& other) {
  if (!other.defined) {
    return false;
  }
  if (!defined) {
    *this = other;
    return true;
  }
  bool changed = false;
  if (other.lo < lo) {
    lo = other.lo;
    changed = true;
  }
  if (other.hi > hi) {
    hi = other.hi;
    changed = true;
  }
  return changed;
}

int ValueRange::bitwidth() const {
  if (!defined) {
    return 0;
  }
  auto bits_for = [](i64 v) {
    if (v >= 0) {
      int bits = 1;  // at least the value bit 0 plus sign handled below
      std::uint64_t u = static_cast<std::uint64_t>(v);
      bits = 0;
      while (u != 0) {
        ++bits;
        u >>= 1;
      }
      return bits + 1;  // +1 sign bit
    }
    // Negative: number of bits in two's complement.
    if (v == kMin) {
      return 64;
    }
    std::uint64_t u = static_cast<std::uint64_t>(-(v + 1));
    int bits = 0;
    while (u != 0) {
      ++bits;
      u >>= 1;
    }
    return bits + 1;
  };
  return std::min(64, std::max(bits_for(lo), bits_for(hi)));
}

BitwidthAnalysis::BitwidthAnalysis(const Cfg& cfg) {
  const ir::Function& func = cfg.function();
  ranges_.assign(func.reg_count(), ValueRange::bottom());

  // Parameters can hold anything.
  for (ir::Reg p : func.params()) {
    ranges_[p] = ValueRange::full();
  }

  std::vector<int> widen_count(func.reg_count(), 0);
  constexpr int kWidenThreshold = 4;

  auto operand_range = [this](const ir::Operand& op) {
    if (op.is_imm()) {
      return ValueRange::exact(op.imm());
    }
    return ranges_[op.reg()];
  };

  // Flow-insensitive fixed point: join every definition's transfer result
  // into the register's global range; widen ranges that keep growing.
  // Sound (over-approximate) and guaranteed to terminate.
  bool changed = true;
  while (changed && iterations_ < 64) {
    changed = false;
    ++iterations_;
    for (const ir::BasicBlock& b : func.blocks()) {
      for (const ir::Instruction& inst : b.instructions()) {
        const auto d = inst.def();
        if (!d) {
          continue;
        }
        const auto& ops = inst.operands();
        ValueRange result = ValueRange::bottom();
        const ValueRange ra =
            ops.empty() ? ValueRange::bottom() : operand_range(ops[0]);
        const ValueRange rb =
            ops.size() < 2 ? ValueRange::bottom() : operand_range(ops[1]);

        using ir::Opcode;
        switch (inst.opcode()) {
          case Opcode::kConst:
            result = ValueRange::exact(ops[0].imm());
            break;
          case Opcode::kMov:
            result = ra;
            break;
          case Opcode::kLoad:
            result = ValueRange::full();
            break;
          case Opcode::kAdd:
            if (ra.defined && rb.defined) {
              result = make(static_cast<i128>(ra.lo) + rb.lo,
                            static_cast<i128>(ra.hi) + rb.hi);
            }
            break;
          case Opcode::kSub:
            if (ra.defined && rb.defined) {
              result = make(static_cast<i128>(ra.lo) - rb.hi,
                            static_cast<i128>(ra.hi) - rb.lo);
            }
            break;
          case Opcode::kMul:
            if (ra.defined && rb.defined) {
              result = combine4(ra, rb,
                                +[](i128 x, i128 y) { return x * y; });
            }
            break;
          case Opcode::kDiv:
            if (ra.defined && rb.defined && (rb.lo > 0 || rb.hi < 0)) {
              result = combine4(ra, rb,
                                +[](i128 x, i128 y) { return x / y; });
            } else if (ra.defined) {
              result = ValueRange::full();
            }
            break;
          case Opcode::kRem:
            if (rb.defined && (rb.lo > 0 || rb.hi < 0)) {
              const i64 mag =
                  std::max(std::abs(rb.lo), std::abs(rb.hi)) - 1;
              result = make(-static_cast<i128>(mag), static_cast<i128>(mag));
            } else {
              result = ValueRange::full();
            }
            break;
          case Opcode::kNeg:
            if (ra.defined) {
              result = make(-static_cast<i128>(ra.hi),
                            -static_cast<i128>(ra.lo));
            }
            break;
          case Opcode::kNot:
            if (ra.defined) {
              result = make(~static_cast<i128>(ra.hi),
                            ~static_cast<i128>(ra.lo));
            }
            break;
          case Opcode::kMin:
            if (ra.defined && rb.defined) {
              result = make(std::min(ra.lo, rb.lo), std::min(ra.hi, rb.hi));
            }
            break;
          case Opcode::kMax:
            if (ra.defined && rb.defined) {
              result = make(std::max(ra.lo, rb.lo), std::max(ra.hi, rb.hi));
            }
            break;
          case Opcode::kAnd:
            if (ra.defined && rb.defined && ra.lo >= 0 && rb.lo >= 0) {
              result = make(0, std::min(ra.hi, rb.hi));
            } else {
              result = ValueRange::full();
            }
            break;
          case Opcode::kOr:
          case Opcode::kXor:
            if (ra.defined && rb.defined && ra.lo >= 0 && rb.lo >= 0) {
              // Result fits in max bitwidth of the operands.
              std::uint64_t bound = 1;
              const std::uint64_t m = static_cast<std::uint64_t>(
                  std::max(ra.hi, rb.hi));
              while (bound <= m) {
                bound <<= 1;
                if (bound == 0) {
                  bound = static_cast<std::uint64_t>(kMax);
                  break;
                }
              }
              result = make(0, static_cast<i128>(bound - 1));
            } else {
              result = ValueRange::full();
            }
            break;
          case Opcode::kShl:
            if (ra.defined && rb.defined && rb.lo >= 0 && rb.hi < 63) {
              result = combine4(ra, rb, +[](i128 x, i128 y) {
                return x << static_cast<int>(y);
              });
            } else {
              result = ValueRange::full();
            }
            break;
          case Opcode::kShr:
            if (ra.defined && rb.defined && rb.lo >= 0 && rb.hi < 64) {
              result = combine4(ra, rb, +[](i128 x, i128 y) {
                return x >> static_cast<int>(y);
              });
            } else {
              result = ValueRange::full();
            }
            break;
          default:
            if (ir::is_compare(inst.opcode())) {
              result = make(0, 1);
            } else {
              result = ValueRange::full();
            }
            break;
        }

        const ValueRange before = ranges_[*d];
        if (ranges_[*d].join(result)) {
          changed = true;
          // Directional widening: only the bound that keeps moving is
          // pushed to infinity, so a counter that only grows upward keeps
          // its precise lower bound.
          if (++widen_count[*d] > kWidenThreshold) {
            if (before.defined && ranges_[*d].lo < before.lo) {
              ranges_[*d].lo = kMin;
            }
            if (before.defined && ranges_[*d].hi > before.hi) {
              ranges_[*d].hi = kMax;
            }
          }
        }
      }
    }
  }
}

}  // namespace tadfa::dataflow
