#include "dataflow/cfg.hpp"

#include <algorithm>

namespace tadfa::dataflow {

Cfg::Cfg(const ir::Function& func) : func_(&func) {
  const std::size_t n = func.block_count();
  succs_.resize(n);
  preds_.resize(n);
  reachable_.assign(n, false);

  for (const ir::BasicBlock& b : func.blocks()) {
    succs_[b.id()] = b.successors();
    for (ir::BlockId s : succs_[b.id()]) {
      preds_[s].push_back(b.id());
    }
  }

  // Iterative DFS producing post-order; RPO is its reverse.
  std::vector<ir::BlockId> post;
  post.reserve(n);
  std::vector<std::uint8_t> state(n, 0);  // 0=unvisited 1=on-stack 2=done
  std::vector<std::pair<ir::BlockId, std::size_t>> stack;
  if (n > 0) {
    stack.emplace_back(func.entry(), 0);
    state[func.entry()] = 1;
    reachable_[func.entry()] = true;
  }
  while (!stack.empty()) {
    auto& [block, next_child] = stack.back();
    if (next_child < succs_[block].size()) {
      const ir::BlockId child = succs_[block][next_child++];
      if (state[child] == 0) {
        state[child] = 1;
        reachable_[child] = true;
        stack.emplace_back(child, 0);
      }
    } else {
      state[block] = 2;
      post.push_back(block);
      stack.pop_back();
    }
  }

  rpo_.assign(post.rbegin(), post.rend());
  // Keep unreachable blocks at the end, in id order, so every block has a
  // position (analyses then compute a value for them too).
  for (ir::BlockId b = 0; b < n; ++b) {
    if (!reachable_[b]) {
      rpo_.push_back(b);
    }
  }
}

std::vector<ir::BlockId> Cfg::post_order() const {
  std::vector<ir::BlockId> po(rpo_.rbegin(), rpo_.rend());
  return po;
}

}  // namespace tadfa::dataflow
