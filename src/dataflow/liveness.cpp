#include "dataflow/liveness.hpp"

#include <algorithm>

#include "dataflow/framework.hpp"

namespace tadfa::dataflow {
namespace {

/// Backward bit-vector problem: live_in = use ∪ (live_out − def).
class LivenessProblem {
 public:
  using Domain = DenseBitSet;

  explicit LivenessProblem(const Cfg& cfg) : cfg_(&cfg) {
    const ir::Function& func = cfg.function();
    const std::size_t regs = func.reg_count();
    use_.assign(func.block_count(), DenseBitSet(regs));
    def_.assign(func.block_count(), DenseBitSet(regs));
    for (const ir::BasicBlock& b : func.blocks()) {
      DenseBitSet& use = use_[b.id()];
      DenseBitSet& def = def_[b.id()];
      for (const ir::Instruction& inst : b.instructions()) {
        for (ir::Reg r : inst.uses()) {
          if (!def.test(r)) {
            use.set(r);  // upward-exposed use
          }
        }
        if (auto d = inst.def()) {
          def.set(*d);
        }
      }
    }
  }

  Domain boundary() { return DenseBitSet(cfg_->function().reg_count()); }
  Domain top() { return DenseBitSet(cfg_->function().reg_count()); }

  bool meet(Domain& into, const Domain& from) { return into.merge(from); }

  Domain transfer(ir::BlockId b, const Domain& live_out) {
    Domain live_in = live_out;
    live_in.subtract(def_[b]);
    live_in.merge(use_[b]);
    return live_in;
  }

 private:
  const Cfg* cfg_;
  std::vector<DenseBitSet> use_;
  std::vector<DenseBitSet> def_;
};

}  // namespace

Liveness::Liveness(const Cfg& cfg) : cfg_(&cfg) {
  LivenessProblem problem(cfg);
  auto result = solve(cfg, problem, Direction::kBackward);
  // In backward direction, result.in[b] is the meet over successors
  // (= live-out) and result.out[b] the transferred value (= live-in).
  live_out_ = std::move(result.in);
  live_in_ = std::move(result.out);
  iterations_ = result.iterations;
}

std::vector<DenseBitSet> Liveness::live_after_each(ir::BlockId b) const {
  const ir::BasicBlock& block = cfg_->function().block(b);
  std::vector<DenseBitSet> after(block.size(), live_out_[b]);
  // Walk backward: after[i] is live following instruction i; before
  // instruction i it is (after[i] − def_i) ∪ use_i, which equals
  // after[i-1].
  DenseBitSet live = live_out_[b];
  for (std::size_t i = block.size(); i-- > 0;) {
    after[i] = live;
    const ir::Instruction& inst = block.instructions()[i];
    if (auto d = inst.def()) {
      live.reset(*d);
    }
    for (ir::Reg r : inst.uses()) {
      live.set(r);
    }
  }
  return after;
}

bool Liveness::live_after(ir::InstrRef ref, ir::Reg reg) const {
  const auto after = live_after_each(ref.block);
  TADFA_ASSERT(ref.index < after.size());
  return after[ref.index].test(reg);
}

std::size_t Liveness::max_pressure() const {
  std::size_t worst = 0;
  for (const ir::BasicBlock& b : cfg_->function().blocks()) {
    worst = std::max(worst, live_in_[b.id()].count());
    for (const DenseBitSet& s : live_after_each(b.id())) {
      worst = std::max(worst, s.count());
    }
  }
  return worst;
}

}  // namespace tadfa::dataflow
