// Interference graph construction.
//
// "Two variables interfere in a program if their lifetimes overlap.
//  Interfering variables cannot be assigned to the same register" — Sec. 2.
// The graph is the legality constraint every assignment policy in
// src/regalloc must respect.
#pragma once

#include <vector>

#include "dataflow/liveness.hpp"

namespace tadfa::dataflow {

class InterferenceGraph {
 public:
  /// Builds the graph with the standard rule: at each definition point the
  /// defined register interferes with every register live after the
  /// instruction (for moves, the source is exempted, enabling coalescing).
  InterferenceGraph(const Cfg& cfg, const Liveness& liveness);

  std::size_t node_count() const { return adjacency_.size(); }

  bool interferes(ir::Reg a, ir::Reg b) const;

  /// Neighbors of `r` (ascending).
  std::vector<ir::Reg> neighbors(ir::Reg r) const;

  std::size_t degree(ir::Reg r) const;

  /// Number of interference edges.
  std::size_t edge_count() const;

 private:
  void add_edge(ir::Reg a, ir::Reg b);

  std::vector<DenseBitSet> adjacency_;
};

}  // namespace tadfa::dataflow
