// Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.
//
// Needed to identify natural loops (loop_info.hpp), which drive the static
// execution-frequency estimates the thermal analysis uses before profile
// data exists.
#pragma once

#include <vector>

#include "dataflow/cfg.hpp"

namespace tadfa::dataflow {

class Dominators {
 public:
  explicit Dominators(const Cfg& cfg);

  /// Immediate dominator of `b`; the entry block is its own idom.
  /// Unreachable blocks report kInvalidBlock.
  ir::BlockId idom(ir::BlockId b) const { return idom_[b]; }

  /// True when `a` dominates `b` (reflexive).
  bool dominates(ir::BlockId a, ir::BlockId b) const;

  /// Children of `b` in the dominator tree.
  const std::vector<ir::BlockId>& children(ir::BlockId b) const {
    return children_[b];
  }

  /// Depth of `b` in the dominator tree (entry = 0).
  std::size_t depth(ir::BlockId b) const { return depth_[b]; }

 private:
  std::vector<ir::BlockId> idom_;
  std::vector<std::vector<ir::BlockId>> children_;
  std::vector<std::size_t> depth_;
};

}  // namespace tadfa::dataflow
