#include "dataflow/interference.hpp"

namespace tadfa::dataflow {

InterferenceGraph::InterferenceGraph(const Cfg& cfg,
                                     const Liveness& liveness) {
  const ir::Function& func = cfg.function();
  const std::size_t n = func.reg_count();
  adjacency_.assign(n, DenseBitSet(n));

  // Parameters are all defined simultaneously at entry: they mutually
  // interfere if more than one is live into the entry block.
  const auto& params = func.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    for (std::size_t j = i + 1; j < params.size(); ++j) {
      add_edge(params[i], params[j]);
    }
  }

  for (const ir::BasicBlock& b : func.blocks()) {
    const auto after = liveness.live_after_each(b.id());
    for (std::size_t i = 0; i < b.size(); ++i) {
      const ir::Instruction& inst = b.instructions()[i];
      const auto d = inst.def();
      if (!d) {
        continue;
      }
      // Move source exemption: %d = mov %s leaves d and s coalescable.
      ir::Reg exempt = ir::kInvalidReg;
      if (inst.opcode() == ir::Opcode::kMov &&
          inst.operands()[0].is_reg()) {
        exempt = inst.operands()[0].reg();
      }
      for (std::size_t r : after[i].to_indices()) {
        const auto reg = static_cast<ir::Reg>(r);
        if (reg != *d && reg != exempt) {
          add_edge(*d, reg);
        }
      }
    }
  }
}

void InterferenceGraph::add_edge(ir::Reg a, ir::Reg b) {
  TADFA_ASSERT(a < adjacency_.size() && b < adjacency_.size());
  if (a == b) {
    return;
  }
  adjacency_[a].set(b);
  adjacency_[b].set(a);
}

bool InterferenceGraph::interferes(ir::Reg a, ir::Reg b) const {
  TADFA_ASSERT(a < adjacency_.size() && b < adjacency_.size());
  if (a == b) {
    return false;
  }
  return adjacency_[a].test(b);
}

std::vector<ir::Reg> InterferenceGraph::neighbors(ir::Reg r) const {
  TADFA_ASSERT(r < adjacency_.size());
  std::vector<ir::Reg> out;
  for (std::size_t i : adjacency_[r].to_indices()) {
    out.push_back(static_cast<ir::Reg>(i));
  }
  return out;
}

std::size_t InterferenceGraph::degree(ir::Reg r) const {
  TADFA_ASSERT(r < adjacency_.size());
  return adjacency_[r].count();
}

std::size_t InterferenceGraph::edge_count() const {
  std::size_t total = 0;
  for (const auto& row : adjacency_) {
    total += row.count();
  }
  return total / 2;
}

}  // namespace tadfa::dataflow
