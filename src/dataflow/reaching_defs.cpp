#include "dataflow/reaching_defs.hpp"

#include "dataflow/framework.hpp"

namespace tadfa::dataflow {
namespace {

class ReachingProblem {
 public:
  using Domain = DenseBitSet;

  ReachingProblem(const Cfg& cfg, const std::vector<DefSite>& sites,
                  const std::vector<std::vector<std::size_t>>& sites_by_reg)
      : cfg_(&cfg), n_sites_(sites.size()) {
    const ir::Function& func = cfg.function();
    gen_.assign(func.block_count(), DenseBitSet(n_sites_));
    kill_.assign(func.block_count(), DenseBitSet(n_sites_));
    // Forward scan: a def generates its own site and kills all other sites
    // of the same register (including earlier gens in this block).
    std::size_t site_index = 0;
    for (const ir::BasicBlock& b : func.blocks()) {
      DenseBitSet& gen = gen_[b.id()];
      DenseBitSet& kill = kill_[b.id()];
      for (const ir::Instruction& inst : b.instructions()) {
        if (auto d = inst.def()) {
          for (std::size_t other : sites_by_reg[*d]) {
            if (other != site_index) {
              kill.set(other);
              gen.reset(other);
            }
          }
          gen.set(site_index);
          kill.reset(site_index);
          ++site_index;
        }
      }
    }
  }

  Domain boundary() { return DenseBitSet(n_sites_); }
  Domain top() { return DenseBitSet(n_sites_); }
  bool meet(Domain& into, const Domain& from) { return into.merge(from); }

  Domain transfer(ir::BlockId b, const Domain& in) {
    Domain out = in;
    out.subtract(kill_[b]);
    out.merge(gen_[b]);
    return out;
  }

 private:
  const Cfg* cfg_;
  std::size_t n_sites_;
  std::vector<DenseBitSet> gen_;
  std::vector<DenseBitSet> kill_;
};

}  // namespace

ReachingDefs::ReachingDefs(const Cfg& cfg) : cfg_(&cfg) {
  const ir::Function& func = cfg.function();
  sites_by_reg_.assign(func.reg_count(), {});
  for (const ir::BasicBlock& b : func.blocks()) {
    for (std::uint32_t i = 0; i < b.size(); ++i) {
      const ir::Instruction& inst = b.instructions()[i];
      if (auto d = inst.def()) {
        sites_by_reg_[*d].push_back(sites_.size());
        sites_.push_back({{b.id(), i}, *d});
      }
    }
  }

  ReachingProblem problem(cfg, sites_, sites_by_reg_);
  auto result = solve(cfg, problem, Direction::kForward);
  in_ = std::move(result.in);
  out_ = std::move(result.out);
  iterations_ = result.iterations;
}

std::vector<std::size_t> ReachingDefs::reaching_defs_of(ir::InstrRef at,
                                                        ir::Reg reg) const {
  // Start from block entry and apply defs up to (not including) `at`.
  DenseBitSet reaching = in_[at.block];
  const ir::BasicBlock& block = cfg_->function().block(at.block);
  std::size_t site_index_base = 0;
  // Recover the global site index of each def in this block by scanning the
  // site table once (sites are in block-order, so binary search would also
  // work; linear is fine at this scale).
  for (std::size_t s = 0; s < sites_.size(); ++s) {
    if (sites_[s].ref.block == at.block) {
      site_index_base = s;
      break;
    }
  }
  std::size_t site = site_index_base;
  for (std::uint32_t i = 0; i < at.index && i < block.size(); ++i) {
    const ir::Instruction& inst = block.instructions()[i];
    if (auto d = inst.def()) {
      for (std::size_t other : sites_by_reg_[*d]) {
        reaching.reset(other);
      }
      reaching.set(site);
      ++site;
    }
  }

  std::vector<std::size_t> result;
  for (std::size_t s : sites_by_reg_[reg]) {
    if (reaching.test(s)) {
      result.push_back(s);
    }
  }
  return result;
}

}  // namespace tadfa::dataflow
