// Liveness analysis (backward, may-analysis over register bit sets).
//
// This is the paper's reference point for "a single bit of information per
// variable" (Sec. 3), and the substrate for interference graphs and register
// allocation. Implemented on the generic framework in framework.hpp.
#pragma once

#include <vector>

#include "dataflow/cfg.hpp"
#include "support/bitset.hpp"

namespace tadfa::dataflow {

class Liveness {
 public:
  explicit Liveness(const Cfg& cfg);

  /// Registers live at block entry.
  const DenseBitSet& live_in(ir::BlockId b) const { return live_in_[b]; }
  /// Registers live at block exit.
  const DenseBitSet& live_out(ir::BlockId b) const { return live_out_[b]; }

  /// Live sets immediately *after* each instruction of a block
  /// (index i corresponds to the program point following instruction i).
  std::vector<DenseBitSet> live_after_each(ir::BlockId b) const;

  /// True when `reg` is live immediately after the given instruction.
  bool live_after(ir::InstrRef ref, ir::Reg reg) const;

  /// Solver passes to fixed point (for the framework tests).
  int iterations() const { return iterations_; }

  /// Maximum number of simultaneously live registers over all program
  /// points — the function's register pressure (the quantity the paper's
  /// chessboard caveat hinges on).
  std::size_t max_pressure() const;

 private:
  const Cfg* cfg_;
  std::vector<DenseBitSet> live_in_;
  std::vector<DenseBitSet> live_out_;
  int iterations_ = 0;
};

}  // namespace tadfa::dataflow
