#include "dataflow/live_intervals.hpp"

#include <algorithm>

namespace tadfa::dataflow {

LiveIntervals::LiveIntervals(const Cfg& cfg, const Liveness& liveness) {
  const ir::Function& func = cfg.function();
  by_reg_.assign(func.reg_count(), std::nullopt);

  block_start_.assign(func.block_count(), 0);
  for (const ir::BasicBlock& b : func.blocks()) {
    block_start_[b.id()] = order_.size();
    for (std::uint32_t i = 0; i < b.size(); ++i) {
      order_.push_back({b.id(), i});
    }
  }

  auto touch = [this](ir::Reg r, std::size_t pos, bool is_access) {
    auto& iv = by_reg_[r];
    if (!iv) {
      iv = LiveInterval{r, pos, pos, 0};
    } else {
      iv->start = std::min(iv->start, pos);
      iv->end = std::max(iv->end, pos);
    }
    if (is_access) {
      ++iv->access_count;
    }
  };

  // Parameters are live from position 0.
  for (ir::Reg p : func.params()) {
    touch(p, 0, false);
  }

  for (const ir::BasicBlock& b : func.blocks()) {
    const std::size_t base = block_start_[b.id()];
    const std::size_t last =
        b.size() == 0 ? base : base + b.size() - 1;

    // Live-in registers extend to the block's first position; live-out to
    // its last.
    for (std::size_t r : liveness.live_in(b.id()).to_indices()) {
      touch(static_cast<ir::Reg>(r), base, false);
    }
    for (std::size_t r : liveness.live_out(b.id()).to_indices()) {
      touch(static_cast<ir::Reg>(r), last, false);
    }

    for (std::uint32_t i = 0; i < b.size(); ++i) {
      const std::size_t pos = base + i;
      const ir::Instruction& inst = b.instructions()[i];
      if (auto d = inst.def()) {
        touch(*d, pos, true);
      }
      for (ir::Reg u : inst.uses()) {
        touch(u, pos, true);
      }
    }
  }

  for (const auto& iv : by_reg_) {
    if (iv) {
      sorted_.push_back(*iv);
    }
  }
  std::sort(sorted_.begin(), sorted_.end(),
            [](const LiveInterval& a, const LiveInterval& b) {
              if (a.start != b.start) {
                return a.start < b.start;
              }
              return a.reg < b.reg;
            });
}

std::size_t LiveIntervals::position(ir::InstrRef ref) const {
  TADFA_ASSERT(ref.block < block_start_.size());
  return block_start_[ref.block] + ref.index;
}

std::optional<LiveInterval> LiveIntervals::interval(ir::Reg reg) const {
  TADFA_ASSERT(reg < by_reg_.size());
  return by_reg_[reg];
}

}  // namespace tadfa::dataflow
