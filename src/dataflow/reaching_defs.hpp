// Reaching definitions (forward, may-analysis over definition sites).
//
// Used by def-use chain construction and by the register promotion pass
// (Sec. 4) to prove that a memory-resident scalar has a single reaching
// store per load.
#pragma once

#include <vector>

#include "dataflow/cfg.hpp"
#include "support/bitset.hpp"

namespace tadfa::dataflow {

/// A definition site: instruction `ref` defines register `reg`.
struct DefSite {
  ir::InstrRef ref;
  ir::Reg reg = ir::kInvalidReg;
};

class ReachingDefs {
 public:
  explicit ReachingDefs(const Cfg& cfg);

  /// All definition sites in the function; bit i of the sets below refers to
  /// def_sites()[i].
  const std::vector<DefSite>& def_sites() const { return sites_; }

  /// Definitions reaching block entry.
  const DenseBitSet& reach_in(ir::BlockId b) const { return in_[b]; }
  /// Definitions reaching block exit.
  const DenseBitSet& reach_out(ir::BlockId b) const { return out_[b]; }

  /// Definition-site indices of `reg` that reach the program point just
  /// before the given instruction.
  std::vector<std::size_t> reaching_defs_of(ir::InstrRef at,
                                            ir::Reg reg) const;

  int iterations() const { return iterations_; }

 private:
  const Cfg* cfg_;
  std::vector<DefSite> sites_;
  std::vector<std::vector<std::size_t>> sites_by_reg_;
  std::vector<DenseBitSet> in_;
  std::vector<DenseBitSet> out_;
  int iterations_ = 0;
};

}  // namespace tadfa::dataflow
