// Control-flow graph view of a function: cached predecessor/successor lists
// and traversal orders used by the iterative data-flow solver.
#pragma once

#include <vector>

#include "ir/function.hpp"

namespace tadfa::dataflow {

class Cfg {
 public:
  explicit Cfg(const ir::Function& func);

  const ir::Function& function() const { return *func_; }
  std::size_t block_count() const { return succs_.size(); }

  const std::vector<ir::BlockId>& successors(ir::BlockId b) const {
    return succs_[b];
  }
  const std::vector<ir::BlockId>& predecessors(ir::BlockId b) const {
    return preds_[b];
  }

  /// Reverse post-order from the entry (ideal forward-analysis order).
  /// Unreachable blocks are appended after the reachable ones so analyses
  /// still produce a value for them.
  const std::vector<ir::BlockId>& reverse_post_order() const { return rpo_; }

  /// Post-order (ideal backward-analysis order).
  std::vector<ir::BlockId> post_order() const;

  /// True when `b` is reachable from the entry block.
  bool reachable(ir::BlockId b) const { return reachable_[b]; }

 private:
  const ir::Function* func_;
  std::vector<std::vector<ir::BlockId>> succs_;
  std::vector<std::vector<ir::BlockId>> preds_;
  std::vector<ir::BlockId> rpo_;
  std::vector<bool> reachable_;
};

}  // namespace tadfa::dataflow
