#include "regalloc/allocator.hpp"

#include "regalloc/graph_coloring.hpp"
#include "regalloc/linear_scan.hpp"

namespace tadfa::regalloc {

std::unique_ptr<Allocator> make_allocator(const std::string& kind,
                                          const machine::Floorplan& floorplan,
                                          AssignmentPolicy& policy) {
  if (kind == "linear") {
    return std::make_unique<LinearScanAllocator>(floorplan, policy);
  }
  if (kind == "coloring") {
    return std::make_unique<GraphColoringAllocator>(floorplan, policy);
  }
  return nullptr;
}

std::vector<std::string> all_allocator_kinds() {
  return {"linear", "coloring"};
}

}  // namespace tadfa::regalloc
