// Allocation legality check: no two interfering virtual registers may share
// a physical register (Sec. 2's correctness constraint).
#pragma once

#include <string>
#include <vector>

#include "ir/function.hpp"
#include "machine/assignment.hpp"

namespace tadfa::pipeline {
class AnalysisManager;
}

namespace tadfa::regalloc {

struct AllocationIssue {
  std::string message;
};

/// Returns all legality violations: unassigned used registers, and
/// interfering pairs mapped to the same physical register. The
/// manager-taking overload reuses a cached interference graph (the
/// pipeline's `verify` pass passes the pipeline cache); the plain one
/// builds its own.
std::vector<AllocationIssue> verify_allocation(
    const ir::Function& func, const machine::RegisterAssignment& assignment,
    pipeline::AnalysisManager& am);
std::vector<AllocationIssue> verify_allocation(
    const ir::Function& func, const machine::RegisterAssignment& assignment);

bool allocation_is_legal(const ir::Function& func,
                         const machine::RegisterAssignment& assignment);

}  // namespace tadfa::regalloc
