// Spill code insertion.
//
// Rewrites a function so the given virtual registers live in stack slots:
// every use is preceded by a reload into a fresh short-lived temporary and
// every def is followed by a store. Also the mechanism behind the paper's
// "greatest benefit will be achieved by spilling these critical variables
// to memory" (Sec. 4) — src/opt reuses this rewriter.
#pragma once

#include <vector>

#include "ir/function.hpp"

namespace tadfa::regalloc {

struct SpillResult {
  /// Fresh temporaries created by the rewriting (one per reload/store).
  std::vector<ir::Reg> new_temps;
  /// Loads + stores inserted.
  std::size_t inserted_instructions = 0;
};

/// Spills `regs` in place. Each spilled register gets one stack slot;
/// parameters are stored to their slot at function entry.
SpillResult spill_registers(ir::Function& func,
                            const std::vector<ir::Reg>& regs);

}  // namespace tadfa::regalloc
