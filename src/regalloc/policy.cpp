#include "regalloc/policy.hpp"

#include <algorithm>
#include <limits>

#include "support/assert.hpp"

namespace tadfa::regalloc {

machine::PhysReg FirstFreePolicy::choose(
    std::span<const machine::PhysReg> candidates, const PolicyContext&) {
  TADFA_ASSERT(!candidates.empty());
  return candidates.front();
}

machine::PhysReg RandomPolicy::choose(
    std::span<const machine::PhysReg> candidates, const PolicyContext&) {
  TADFA_ASSERT(!candidates.empty());
  return candidates[rng_.index(candidates.size())];
}

machine::PhysReg ChessboardPolicy::choose(
    std::span<const machine::PhysReg> candidates,
    const PolicyContext& context) {
  TADFA_ASSERT(!candidates.empty());
  TADFA_ASSERT(context.floorplan != nullptr);
  const machine::Floorplan& fp = *context.floorplan;
  // Prefer even-parity (black) squares, and distribute uniformly over them
  // ("the accesses are distributed uniformly across a large surface",
  // Sec. 2) by picking the least-loaded parity cell. Above 50% pressure the
  // parity breaks — the caveat the paper calls out.
  const auto* usage = context.usage_counts;
  machine::PhysReg best = machine::PhysReg(~0u);
  std::uint32_t best_usage = ~std::uint32_t{0};
  for (machine::PhysReg c : candidates) {
    if ((fp.row_of(c) + fp.col_of(c)) % 2 != 0) {
      continue;
    }
    const std::uint32_t u =
        (usage != nullptr && c < usage->size()) ? (*usage)[c] : 0;
    if (u < best_usage) {
      best_usage = u;
      best = c;
    }
  }
  if (best != machine::PhysReg(~0u)) {
    return best;
  }
  return candidates.front();  // pressure above 50%: parity broken
}

machine::PhysReg RoundRobinPolicy::choose(
    std::span<const machine::PhysReg> candidates, const PolicyContext&) {
  TADFA_ASSERT(!candidates.empty());
  for (machine::PhysReg c : candidates) {
    if (c > last_) {
      last_ = c;
      return c;
    }
  }
  last_ = candidates.front();  // wrap around
  return last_;
}

machine::PhysReg FarthestSpreadPolicy::choose(
    std::span<const machine::PhysReg> candidates,
    const PolicyContext& context) {
  TADFA_ASSERT(!candidates.empty());
  TADFA_ASSERT(context.floorplan != nullptr);
  const machine::Floorplan& fp = *context.floorplan;
  const auto* usage = context.usage_counts;
  if (usage == nullptr) {
    return candidates.front();
  }

  std::vector<machine::PhysReg> occupied;
  for (machine::PhysReg r = 0; r < usage->size(); ++r) {
    if ((*usage)[r] > 0) {
      occupied.push_back(r);
    }
  }
  if (occupied.empty()) {
    // First pick: take a corner to leave the most room.
    return candidates.front();
  }

  machine::PhysReg best = candidates.front();
  double best_min = -1.0;
  for (machine::PhysReg c : candidates) {
    double min_d = std::numeric_limits<double>::max();
    for (machine::PhysReg o : occupied) {
      min_d = std::min(min_d, fp.distance(c, o));
    }
    if (min_d > best_min) {
      best_min = min_d;
      best = c;
    }
  }
  return best;
}

machine::PhysReg CoolestFirstPolicy::choose(
    std::span<const machine::PhysReg> candidates,
    const PolicyContext& context) {
  TADFA_ASSERT(!candidates.empty());
  const auto* heat = context.heat_scores;
  if (heat == nullptr) {
    return candidates.front();
  }
  // The heat scores are a static prediction; without a correction, every
  // pick lands on the same coolest cell and the policy *creates* the next
  // hotspot. Penalize cells by how many values were already steered there,
  // scaled to the observed heat spread, so picks walk through the cool
  // region instead of piling onto one cell.
  double lo = std::numeric_limits<double>::max();
  double hi = std::numeric_limits<double>::lowest();
  for (double h : *heat) {
    lo = std::min(lo, h);
    hi = std::max(hi, h);
  }
  const double usage_penalty = std::max((hi - lo) * 0.5, 1e-6);

  machine::PhysReg best = candidates.front();
  double best_score = std::numeric_limits<double>::max();
  for (machine::PhysReg c : candidates) {
    double score = c < heat->size() ? (*heat)[c] : 0.0;
    if (spread_penalty_ && context.usage_counts != nullptr &&
        c < context.usage_counts->size()) {
      score += static_cast<double>((*context.usage_counts)[c]) * usage_penalty;
    }
    if (score < best_score) {
      best_score = score;
      best = c;
    }
  }
  return best;
}

std::unique_ptr<AssignmentPolicy> make_policy(const std::string& name,
                                              std::uint64_t seed) {
  if (name == "first_free") {
    return std::make_unique<FirstFreePolicy>();
  }
  if (name == "random") {
    return std::make_unique<RandomPolicy>(seed);
  }
  if (name == "chessboard") {
    return std::make_unique<ChessboardPolicy>();
  }
  if (name == "round_robin") {
    return std::make_unique<RoundRobinPolicy>();
  }
  if (name == "farthest_spread") {
    return std::make_unique<FarthestSpreadPolicy>();
  }
  if (name == "coolest_first") {
    return std::make_unique<CoolestFirstPolicy>();
  }
  return nullptr;
}

std::vector<std::string> all_policy_names() {
  return {"first_free",  "random",          "chessboard",
          "round_robin", "farthest_spread", "coolest_first"};
}

}  // namespace tadfa::regalloc
