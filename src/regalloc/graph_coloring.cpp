#include "regalloc/graph_coloring.hpp"

#include <algorithm>
#include <unordered_set>

#include "dataflow/interference.hpp"
#include "dataflow/live_intervals.hpp"
#include "pipeline/analysis_manager.hpp"
#include "regalloc/spill.hpp"
#include "support/assert.hpp"

namespace tadfa::regalloc {
namespace {

/// Registers that actually appear in the function (params, defs, or uses).
std::vector<bool> live_regs(const ir::Function& func) {
  std::vector<bool> seen(func.reg_count(), false);
  for (ir::Reg p : func.params()) {
    seen[p] = true;
  }
  for (const ir::BasicBlock& b : func.blocks()) {
    for (const ir::Instruction& inst : b.instructions()) {
      if (auto d = inst.def()) {
        seen[*d] = true;
      }
      for (ir::Reg u : inst.uses()) {
        seen[u] = true;
      }
    }
  }
  return seen;
}

}  // namespace

AllocationResult GraphColoringAllocator::allocate(const ir::Function& func) {
  AllocationResult result;
  result.func = func;
  policy_->reset();

  std::unordered_set<ir::Reg> no_spill;
  const std::uint32_t k = floorplan_->num_registers();
  constexpr int kMaxRounds = 64;

  // Private analysis cache over the working copy: Cfg persists across
  // spill rounds, liveness/graph/intervals are rebuilt only after a
  // rewrite (and liveness is shared between the graph and the intervals).
  pipeline::AnalysisManager am;

  for (result.rounds = 1; result.rounds <= kMaxRounds; ++result.rounds) {
    const dataflow::InterferenceGraph& graph =
        am.get<dataflow::InterferenceGraph>(result.func);
    const dataflow::LiveIntervals& intervals =
        am.get<dataflow::LiveIntervals>(result.func);

    const std::vector<bool> present = live_regs(result.func);
    const std::uint32_t n = result.func.reg_count();

    // --- Simplify: peel nodes of degree < k; when stuck, optimistically
    //     push the cheapest spill candidate (Briggs).
    std::vector<std::uint32_t> degree(n, 0);
    std::vector<bool> removed(n, true);
    std::vector<ir::Reg> work;
    for (ir::Reg r = 0; r < n; ++r) {
      if (present[r]) {
        removed[r] = false;
        degree[r] = static_cast<std::uint32_t>(graph.degree(r));
        work.push_back(r);
      }
    }

    std::vector<ir::Reg> stack;  // select order = reverse of push order
    std::vector<ir::Reg> optimistic;
    std::size_t remaining = work.size();
    while (remaining > 0) {
      // Find a low-degree node.
      ir::Reg pick = ir::kInvalidReg;
      for (ir::Reg r : work) {
        if (!removed[r] && degree[r] < k) {
          pick = r;
          break;
        }
      }
      if (pick == ir::kInvalidReg) {
        // Blocked: choose the spill candidate with the lowest access
        // density per degree (classic Chaitin cost/degree heuristic),
        // skipping spill temporaries.
        double best_cost = 0.0;
        for (ir::Reg r : work) {
          if (removed[r] || no_spill.count(r) != 0) {
            continue;
          }
          const auto iv = intervals.interval(r);
          const double accesses =
              iv ? static_cast<double>(iv->access_count) : 0.0;
          const double cost =
              (accesses + 1.0) / (static_cast<double>(degree[r]) + 1.0);
          if (pick == ir::kInvalidReg || cost < best_cost) {
            best_cost = cost;
            pick = r;
          }
        }
        TADFA_ASSERT_MSG(pick != ir::kInvalidReg,
                         "no spillable candidate under register pressure");
        optimistic.push_back(pick);
      }
      removed[pick] = true;
      --remaining;
      stack.push_back(pick);
      for (ir::Reg nb : graph.neighbors(pick)) {
        if (!removed[nb] && degree[nb] > 0) {
          --degree[nb];
        }
      }
    }

    // --- Select: pop in reverse, choose colors via the policy.
    machine::RegisterAssignment assignment(n);
    std::vector<std::uint32_t> usage(k, 0);
    PolicyContext context;
    context.floorplan = floorplan_;
    context.usage_counts = &usage;
    context.heat_scores = heat_scores_.empty() ? nullptr : &heat_scores_;

    std::vector<ir::Reg> to_spill;
    for (std::size_t i = stack.size(); i-- > 0;) {
      const ir::Reg r = stack[i];
      std::vector<bool> forbidden(k, false);
      for (ir::Reg nb : graph.neighbors(r)) {
        if (assignment.assigned(nb)) {
          forbidden[assignment.phys(nb)] = true;
        }
      }
      std::vector<machine::PhysReg> candidates;
      for (machine::PhysReg p = 0; p < k; ++p) {
        if (!forbidden[p]) {
          candidates.push_back(p);
        }
      }
      if (candidates.empty()) {
        // Optimistic node failed to color: real spill.
        TADFA_ASSERT(no_spill.count(r) == 0);
        to_spill.push_back(r);
        continue;
      }
      const machine::PhysReg chosen = policy_->choose(candidates, context);
      assignment.assign(r, chosen);
      ++usage[chosen];
    }

    if (to_spill.empty()) {
      result.assignment = std::move(assignment);
      return result;
    }

    std::sort(to_spill.begin(), to_spill.end());
    to_spill.erase(std::unique(to_spill.begin(), to_spill.end()),
                   to_spill.end());
    const SpillResult spilled = spill_registers(result.func, to_spill);
    am.invalidate<dataflow::Liveness>();
    result.spilled_regs += static_cast<std::uint32_t>(to_spill.size());
    for (ir::Reg t : spilled.new_temps) {
      no_spill.insert(t);
    }
  }

  TADFA_UNREACHABLE("graph coloring failed to converge after max rounds");
}

}  // namespace tadfa::regalloc
