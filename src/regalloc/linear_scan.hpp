// Linear-scan register allocation (Poletto & Sarkar) with pluggable
// assignment policy.
//
// The allocator decides *whether* a value gets a register (spilling the
// interval that ends farthest when the file is full) and delegates *which*
// register to the AssignmentPolicy — the degree of freedom the paper's
// Fig. 1 explores.
#pragma once

#include "regalloc/allocator.hpp"
#include "regalloc/policy.hpp"

namespace tadfa::regalloc {

class LinearScanAllocator final : public Allocator {
 public:
  LinearScanAllocator(const machine::Floorplan& floorplan,
                      AssignmentPolicy& policy)
      : floorplan_(&floorplan), policy_(&policy) {}

  std::string name() const override { return "linear"; }

  /// Optional thermal guidance forwarded to the policy.
  void set_heat_scores(std::vector<double> scores) override {
    heat_scores_ = std::move(scores);
  }

  /// Allocates a copy of `func`, spilling as needed until everything fits.
  AllocationResult allocate(const ir::Function& func) override;

 private:
  const machine::Floorplan* floorplan_;
  AssignmentPolicy* policy_;
  std::vector<double> heat_scores_;
};

}  // namespace tadfa::regalloc
