// Register *assignment* policies.
//
// Allocation decides which values get a register; assignment decides WHICH
// register. Sec. 2 of the paper: "the compiler maintains an ordered list of
// registers and selects the first one in the list that is free. As the list
// is always traversed in order, the same small set of registers is chosen
// again and again" — fine for performance, bad for heat. The policies here
// are the three of Fig. 1 (first-free, random, chessboard) plus the
// spread/thermal-guided ones Sec. 4 motivates.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "machine/floorplan.hpp"
#include "support/rng.hpp"

namespace tadfa::regalloc {

/// Information available to a policy when choosing among legal registers.
struct PolicyContext {
  const machine::Floorplan* floorplan = nullptr;
  /// How many virtual registers have already been mapped to each physical
  /// register (a proxy for expected access density).
  const std::vector<std::uint32_t>* usage_counts = nullptr;
  /// Optional per-register heat score (higher = hotter = avoid). Supplied
  /// by the thermal analysis for thermally-guided assignment.
  const std::vector<double>* heat_scores = nullptr;
};

class AssignmentPolicy {
 public:
  virtual ~AssignmentPolicy() = default;

  virtual std::string name() const = 0;

  /// Picks one of `candidates` (non-empty, ascending physical indices, all
  /// legal w.r.t. interference).
  virtual machine::PhysReg choose(std::span<const machine::PhysReg> candidates,
                                  const PolicyContext& context) = 0;

  /// Clears per-function state (rotation pointers etc.).
  virtual void reset() {}
};

/// Fig. 1(a): the deterministic ordered list — always the lowest-numbered
/// free register.
class FirstFreePolicy final : public AssignmentPolicy {
 public:
  std::string name() const override { return "first_free"; }
  machine::PhysReg choose(std::span<const machine::PhysReg> candidates,
                          const PolicyContext& context) override;
};

/// Fig. 1(b): uniformly random among the free registers.
class RandomPolicy final : public AssignmentPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed), seed_(seed) {}
  std::string name() const override { return "random"; }
  machine::PhysReg choose(std::span<const machine::PhysReg> candidates,
                          const PolicyContext& context) override;
  void reset() override { rng_.reseed(seed_); }

 private:
  Rng rng_;
  std::uint64_t seed_;
};

/// Fig. 1(c): the chessboard pattern of [2] — prefer cells of one parity so
/// active registers are never physically adjacent. Falls back to the other
/// parity when register pressure exceeds half the file (the caveat Sec. 2
/// calls out).
class ChessboardPolicy final : public AssignmentPolicy {
 public:
  std::string name() const override { return "chessboard"; }
  machine::PhysReg choose(std::span<const machine::PhysReg> candidates,
                          const PolicyContext& context) override;
};

/// Rotates through the register list so consecutive assignments land on
/// different registers even at low pressure.
class RoundRobinPolicy final : public AssignmentPolicy {
 public:
  std::string name() const override { return "round_robin"; }
  machine::PhysReg choose(std::span<const machine::PhysReg> candidates,
                          const PolicyContext& context) override;
  void reset() override { last_ = 0; }

 private:
  machine::PhysReg last_ = 0;
};

/// Maximizes the minimum physical distance to registers that already carry
/// assignments — the "spreading (in space)" optimization of Sec. 4.
class FarthestSpreadPolicy final : public AssignmentPolicy {
 public:
  std::string name() const override { return "farthest_spread"; }
  machine::PhysReg choose(std::span<const machine::PhysReg> candidates,
                          const PolicyContext& context) override;
};

/// Picks the candidate with the lowest heat score (thermal-DFA-guided
/// assignment); falls back to first-free when no scores are supplied.
///
/// With `spread_penalty` (the default) each pick also pays for cells that
/// already carry assignments, so values walk through the cool region.
/// Without it the policy is the naive "always the coolest cell" rule,
/// which concentrates values and re-creates the hotspot it was avoiding
/// (bench/ablation_design, table D).
class CoolestFirstPolicy final : public AssignmentPolicy {
 public:
  explicit CoolestFirstPolicy(bool spread_penalty = true)
      : spread_penalty_(spread_penalty) {}
  std::string name() const override {
    return spread_penalty_ ? "coolest_first" : "coolest_first_naive";
  }
  machine::PhysReg choose(std::span<const machine::PhysReg> candidates,
                          const PolicyContext& context) override;

 private:
  bool spread_penalty_;
};

/// Factory by name ("first_free", "random", "chessboard", "round_robin",
/// "farthest_spread", "coolest_first"). Returns nullptr for unknown names.
std::unique_ptr<AssignmentPolicy> make_policy(const std::string& name,
                                              std::uint64_t seed = 42);

/// All policy names, in presentation order.
std::vector<std::string> all_policy_names();

}  // namespace tadfa::regalloc
