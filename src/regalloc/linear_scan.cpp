#include "regalloc/linear_scan.hpp"

#include <algorithm>
#include <unordered_set>

#include "dataflow/live_intervals.hpp"
#include "pipeline/analysis_manager.hpp"
#include "regalloc/spill.hpp"
#include "support/assert.hpp"

namespace tadfa::regalloc {
namespace {

struct Active {
  dataflow::LiveInterval interval;
  machine::PhysReg phys = 0;
};

}  // namespace

AllocationResult LinearScanAllocator::allocate(const ir::Function& func) {
  AllocationResult result;
  result.func = func;
  policy_->reset();

  // Registers created by spill rewriting must never be re-spilled (their
  // intervals are minimal; re-spilling could loop forever).
  std::unordered_set<ir::Reg> no_spill;

  const std::uint32_t num_phys = floorplan_->num_registers();
  constexpr int kMaxRounds = 64;

  // Private analysis cache over the working copy: the Cfg is built once
  // (spill rewriting inserts loads/stores but moves no CFG edge) and only
  // liveness/intervals are recomputed per spill round.
  pipeline::AnalysisManager am;

  for (result.rounds = 1; result.rounds <= kMaxRounds; ++result.rounds) {
    const dataflow::LiveIntervals& intervals =
        am.get<dataflow::LiveIntervals>(result.func);

    machine::RegisterAssignment assignment(result.func.reg_count());
    std::vector<std::uint32_t> usage(num_phys, 0);
    std::vector<Active> active;
    std::vector<ir::Reg> to_spill;

    PolicyContext context;
    context.floorplan = floorplan_;
    context.usage_counts = &usage;
    context.heat_scores = heat_scores_.empty() ? nullptr : &heat_scores_;

    for (const dataflow::LiveInterval& iv : intervals.intervals()) {
      // Expire intervals that ended before this one starts.
      std::erase_if(active, [&](const Active& a) {
        return a.interval.end < iv.start;
      });

      // Candidate registers: not used by any overlapping active interval.
      std::vector<bool> busy(num_phys, false);
      for (const Active& a : active) {
        busy[a.phys] = true;
      }
      std::vector<machine::PhysReg> candidates;
      candidates.reserve(num_phys);
      for (machine::PhysReg p = 0; p < num_phys; ++p) {
        if (!busy[p]) {
          candidates.push_back(p);
        }
      }

      if (candidates.empty()) {
        // Spill the interval that ends farthest (current one included),
        // skipping spill-generated temporaries.
        const dataflow::LiveInterval* victim = &iv;
        for (const Active& a : active) {
          if (no_spill.count(a.interval.reg) != 0) {
            continue;
          }
          if (victim == nullptr || a.interval.end > victim->end ||
              no_spill.count(victim->reg) != 0) {
            victim = &a.interval;
          }
        }
        TADFA_ASSERT_MSG(no_spill.count(victim->reg) == 0,
                         "register pressure exceeds file even after spills");
        to_spill.push_back(victim->reg);
        if (victim != &iv) {
          // The current interval takes the victim's register next round;
          // nothing to do now.
        }
        continue;  // defer: rewrite + restart below
      }

      const machine::PhysReg chosen = policy_->choose(candidates, context);
      assignment.assign(iv.reg, chosen);
      ++usage[chosen];
      active.push_back({iv, chosen});
    }

    if (to_spill.empty()) {
      result.assignment = std::move(assignment);
      return result;
    }

    // Deduplicate and rewrite, then retry.
    std::sort(to_spill.begin(), to_spill.end());
    to_spill.erase(std::unique(to_spill.begin(), to_spill.end()),
                   to_spill.end());
    const SpillResult spilled = spill_registers(result.func, to_spill);
    am.invalidate<dataflow::Liveness>();
    result.spilled_regs += static_cast<std::uint32_t>(to_spill.size());
    for (ir::Reg t : spilled.new_temps) {
      no_spill.insert(t);
    }
  }

  TADFA_UNREACHABLE("linear scan failed to converge after max rounds");
}

}  // namespace tadfa::regalloc
