// Common result type for register allocators.
#pragma once

#include "ir/function.hpp"
#include "machine/assignment.hpp"

namespace tadfa::regalloc {

struct AllocationResult {
  /// The (possibly spill-rewritten) function the assignment refers to.
  ir::Function func;
  machine::RegisterAssignment assignment;
  /// Original virtual registers that were spilled to memory.
  std::uint32_t spilled_regs = 0;
  /// Allocation rounds (1 = no spilling needed).
  int rounds = 0;

  AllocationResult() : func("") {}
};

}  // namespace tadfa::regalloc
