// Common result type and abstract interface for register allocators.
//
// Both allocators (linear scan, graph coloring) share the same contract:
// decide which values live in registers, delegate WHICH register to an
// AssignmentPolicy, and optionally take thermal guidance. The interface
// lets drivers — in particular the pipeline's `alloc=` pass — pick an
// allocator by name instead of hard-wiring a concrete class.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/function.hpp"
#include "machine/assignment.hpp"
#include "regalloc/policy.hpp"

namespace tadfa::regalloc {

struct AllocationResult {
  /// The (possibly spill-rewritten) function the assignment refers to.
  ir::Function func;
  machine::RegisterAssignment assignment;
  /// Original virtual registers that were spilled to memory.
  std::uint32_t spilled_regs = 0;
  /// Allocation rounds (1 = no spilling needed).
  int rounds = 0;

  AllocationResult() : func("") {}
};

/// Abstract allocator: allocate a copy of `func`, spilling as needed.
class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Allocator kind ("linear", "coloring").
  virtual std::string name() const = 0;

  /// Optional thermal guidance forwarded to the policy (higher = hotter).
  virtual void set_heat_scores(std::vector<double> scores) = 0;

  virtual AllocationResult allocate(const ir::Function& func) = 0;
};

/// Factory by kind ("linear", "coloring"). The policy must outlive the
/// returned allocator. Returns nullptr for unknown kinds.
std::unique_ptr<Allocator> make_allocator(const std::string& kind,
                                          const machine::Floorplan& floorplan,
                                          AssignmentPolicy& policy);

/// All allocator kinds, in presentation order.
std::vector<std::string> all_allocator_kinds();

}  // namespace tadfa::regalloc
