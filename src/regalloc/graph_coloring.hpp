// Chaitin-Briggs-style graph-coloring register allocation with pluggable
// assignment policy and optimistic spilling.
#pragma once

#include "regalloc/allocator.hpp"
#include "regalloc/policy.hpp"

namespace tadfa::regalloc {

class GraphColoringAllocator final : public Allocator {
 public:
  GraphColoringAllocator(const machine::Floorplan& floorplan,
                         AssignmentPolicy& policy)
      : floorplan_(&floorplan), policy_(&policy) {}

  std::string name() const override { return "coloring"; }

  void set_heat_scores(std::vector<double> scores) override {
    heat_scores_ = std::move(scores);
  }

  AllocationResult allocate(const ir::Function& func) override;

 private:
  const machine::Floorplan* floorplan_;
  AssignmentPolicy* policy_;
  std::vector<double> heat_scores_;
};

}  // namespace tadfa::regalloc
