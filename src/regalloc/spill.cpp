#include "regalloc/spill.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/assert.hpp"

namespace tadfa::regalloc {

SpillResult spill_registers(ir::Function& func,
                            const std::vector<ir::Reg>& regs) {
  SpillResult result;
  if (regs.empty()) {
    return result;
  }

  std::unordered_map<ir::Reg, std::int64_t> slot_of;
  for (ir::Reg r : regs) {
    TADFA_ASSERT(r < func.reg_count());
    if (slot_of.count(r) == 0) {
      slot_of[r] = func.allocate_stack_slot();
    }
  }

  // Parameters arrive in registers; spilled parameters must be stored to
  // their slot before the first real instruction.
  std::vector<ir::Instruction> entry_stores;
  for (ir::Reg p : func.params()) {
    auto it = slot_of.find(p);
    if (it != slot_of.end()) {
      entry_stores.emplace_back(
          ir::Opcode::kStore, ir::kInvalidReg,
          std::vector<ir::Operand>{ir::Operand::imm(it->second),
                                   ir::Operand::reg(p)});
    }
  }

  for (ir::BasicBlock& block : func.blocks()) {
    auto& insts = block.instructions();
    for (std::size_t i = 0; i < insts.size(); ++i) {
      // --- Reload uses -----------------------------------------------------
      // Gather the spilled registers this instruction reads (each gets one
      // reload temp, reused across duplicate operands of this instruction).
      std::unordered_map<ir::Reg, ir::Reg> reload_temp;
      for (const ir::Operand& op : insts[i].operands()) {
        if (op.is_reg() && slot_of.count(op.reg()) != 0 &&
            reload_temp.count(op.reg()) == 0) {
          reload_temp[op.reg()] = func.new_reg();
        }
      }
      // Deterministic insertion order: ascending original register.
      std::vector<std::pair<ir::Reg, ir::Reg>> reloads(reload_temp.begin(),
                                                       reload_temp.end());
      std::sort(reloads.begin(), reloads.end());
      for (const auto& [orig, temp] : reloads) {
        block.insert(i, ir::Instruction(
                            ir::Opcode::kLoad, temp,
                            {ir::Operand::imm(slot_of.at(orig))}));
        result.new_temps.push_back(temp);
        ++result.inserted_instructions;
        ++i;  // keep pointing at the original instruction
      }
      for (const auto& [orig, temp] : reloads) {
        insts[i].replace_uses(orig, temp);
      }

      // --- Store defs --------------------------------------------------------
      if (auto d = insts[i].def(); d && slot_of.count(*d) != 0) {
        const ir::Reg temp = func.new_reg();
        const std::int64_t slot = slot_of.at(*d);
        insts[i].set_dest(temp);
        result.new_temps.push_back(temp);
        block.insert(i + 1,
                     ir::Instruction(ir::Opcode::kStore, ir::kInvalidReg,
                                     {ir::Operand::imm(slot),
                                      ir::Operand::reg(temp)}));
        ++result.inserted_instructions;
        ++i;  // skip the store we just inserted
      }
    }
  }

  // Prepend parameter stores to the entry block (after rewriting, so they
  // are not themselves rewritten).
  ir::BasicBlock& entry = func.block(func.entry());
  for (std::size_t k = entry_stores.size(); k-- > 0;) {
    entry.insert(0, entry_stores[k]);
    ++result.inserted_instructions;
  }

  return result;
}

}  // namespace tadfa::regalloc
