#include "regalloc/verify.hpp"

#include "dataflow/interference.hpp"
#include "dataflow/liveness.hpp"
#include "pipeline/analysis_manager.hpp"

namespace tadfa::regalloc {

std::vector<AllocationIssue> verify_allocation(
    const ir::Function& func, const machine::RegisterAssignment& assignment,
    pipeline::AnalysisManager& am) {
  std::vector<AllocationIssue> issues;

  if (!assignment.covers(func)) {
    issues.push_back({"assignment does not cover every used register"});
  }

  const dataflow::InterferenceGraph& graph =
      am.get<dataflow::InterferenceGraph>(func);

  for (ir::Reg a = 0; a < func.reg_count(); ++a) {
    if (!assignment.assigned(a)) {
      continue;
    }
    for (ir::Reg b : graph.neighbors(a)) {
      if (b <= a || !assignment.assigned(b)) {
        continue;
      }
      if (assignment.phys(a) == assignment.phys(b)) {
        issues.push_back({"interfering %" + std::to_string(a) + " and %" +
                          std::to_string(b) + " share physical register r" +
                          std::to_string(assignment.phys(a))});
      }
    }
  }
  return issues;
}

std::vector<AllocationIssue> verify_allocation(
    const ir::Function& func, const machine::RegisterAssignment& assignment) {
  pipeline::AnalysisManager am;
  return verify_allocation(func, assignment, am);
}

bool allocation_is_legal(const ir::Function& func,
                         const machine::RegisterAssignment& assignment) {
  return verify_allocation(func, assignment).empty();
}

}  // namespace tadfa::regalloc
