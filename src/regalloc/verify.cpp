#include "regalloc/verify.hpp"

#include "dataflow/interference.hpp"
#include "dataflow/liveness.hpp"

namespace tadfa::regalloc {

std::vector<AllocationIssue> verify_allocation(
    const ir::Function& func, const machine::RegisterAssignment& assignment) {
  std::vector<AllocationIssue> issues;

  if (!assignment.covers(func)) {
    issues.push_back({"assignment does not cover every used register"});
  }

  const dataflow::Cfg cfg(func);
  const dataflow::Liveness liveness(cfg);
  const dataflow::InterferenceGraph graph(cfg, liveness);

  for (ir::Reg a = 0; a < func.reg_count(); ++a) {
    if (!assignment.assigned(a)) {
      continue;
    }
    for (ir::Reg b : graph.neighbors(a)) {
      if (b <= a || !assignment.assigned(b)) {
        continue;
      }
      if (assignment.phys(a) == assignment.phys(b)) {
        issues.push_back({"interfering %" + std::to_string(a) + " and %" +
                          std::to_string(b) + " share physical register r" +
                          std::to_string(assignment.phys(a))});
      }
    }
  }
  return issues;
}

bool allocation_is_legal(const ir::Function& func,
                         const machine::RegisterAssignment& assignment) {
  return verify_allocation(func, assignment).empty();
}

}  // namespace tadfa::regalloc
