#include "sim/thermal_replay.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace tadfa::sim {

ReplayResult ThermalReplay::replay(const power::AccessTrace& trace,
                                   const ReplayConfig& config) const {
  TADFA_ASSERT(config.window_cycles > 0);
  TADFA_ASSERT(config.max_repeats >= 1);
  const machine::Floorplan& fp = grid_->floorplan();
  TADFA_ASSERT(trace.num_registers() == fp.num_registers());

  const double cycle_s = fp.config().tech.cycle_seconds();
  const std::uint64_t duration =
      std::max<std::uint64_t>(trace.duration_cycles(), 1);

  ReplayResult result;
  result.final_state = grid_->initial_state();
  result.peak_reg_temps.assign(fp.num_registers(),
                               grid_->substrate_temp());

  double prev_peak = grid_->substrate_temp();
  for (int rep = 0; rep < config.max_repeats; ++rep) {
    ++result.repeats_run;
    for (std::uint64_t begin = 0; begin < duration;
         begin += config.window_cycles) {
      const std::uint64_t end =
          std::min(begin + config.window_cycles, duration);
      const std::uint64_t window = end - begin;
      const auto counts = trace.window(begin, end);
      std::vector<double> p = model_->dynamic_power(counts, window);
      for (double watts : p) {
        result.dynamic_energy_j +=
            watts * static_cast<double>(window) * cycle_s;
      }
      if (config.include_leakage) {
        const auto temps = grid_->register_temps(result.final_state);
        const auto leak =
            model_->leakage_power(fp, temps, config.gated_banks);
        for (std::size_t r = 0; r < p.size(); ++r) {
          p[r] += leak[r];
          result.leakage_energy_j +=
              leak[r] * static_cast<double>(window) * cycle_s;
        }
      }
      grid_->step(result.final_state, p,
                  static_cast<double>(window) * cycle_s);

      const auto temps = grid_->register_temps(result.final_state);
      for (std::size_t r = 0; r < temps.size(); ++r) {
        result.peak_reg_temps[r] =
            std::max(result.peak_reg_temps[r], temps[r]);
      }
    }

    const auto temps = grid_->register_temps(result.final_state);
    const double peak = *std::max_element(temps.begin(), temps.end());
    // prev_peak starts at the substrate temperature, so the first repeat
    // is measured against the initial state — without that, `settled`
    // could never become true under max_repeats == 1.
    if (std::abs(peak - prev_peak) < config.settle_tolerance_k) {
      result.settled = true;
      break;
    }
    prev_peak = peak;
  }

  result.final_reg_temps = grid_->register_temps(result.final_state);
  result.final_stats = thermal::compute_map_stats(fp, result.final_reg_temps);
  return result;
}

}  // namespace tadfa::sim
