#include "sim/thermal_replay.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace tadfa::sim {

ReplayResult ThermalReplay::replay(const power::AccessTrace& trace,
                                   const ReplayConfig& config) const {
  TADFA_ASSERT(config.window_cycles > 0);
  TADFA_ASSERT(config.max_repeats >= 1);
  const machine::Floorplan& fp = grid_->floorplan();
  TADFA_ASSERT(trace.num_registers() == fp.num_registers());
  TADFA_ASSERT(config.warm_start == nullptr ||
               config.warm_start->node_temps.size() == grid_->node_count());

  const double cycle_s = fp.config().tech.cycle_seconds();
  const std::uint64_t duration =
      std::max<std::uint64_t>(trace.duration_cycles(), 1);

  ReplayResult result;
  result.final_state = config.warm_start != nullptr ? *config.warm_start
                                                    : grid_->initial_state();
  result.peak_reg_temps.assign(fp.num_registers(),
                               grid_->substrate_temp());

  // The settle baseline is the starting state's peak: substrate for a
  // cold start (register_temps of initial_state is uniformly substrate),
  // the inherited peak for a warm one — so a chained replay whose
  // predecessor already settled can settle after a single repeat.
  const auto start_temps = grid_->register_temps(result.final_state);
  double prev_peak =
      *std::max_element(start_temps.begin(), start_temps.end());
  for (int rep = 0; rep < config.max_repeats; ++rep) {
    ++result.repeats_run;
    for (std::uint64_t begin = 0; begin < duration;
         begin += config.window_cycles) {
      const std::uint64_t end =
          std::min(begin + config.window_cycles, duration);
      const std::uint64_t window = end - begin;
      const auto counts = trace.window(begin, end);
      std::vector<double> p = model_->dynamic_power(counts, window);
      for (double watts : p) {
        result.dynamic_energy_j +=
            watts * static_cast<double>(window) * cycle_s;
      }
      if (config.include_leakage) {
        const auto temps = grid_->register_temps(result.final_state);
        const auto leak =
            model_->leakage_power(fp, temps, config.gated_banks);
        for (std::size_t r = 0; r < p.size(); ++r) {
          p[r] += leak[r];
          result.leakage_energy_j +=
              leak[r] * static_cast<double>(window) * cycle_s;
        }
      }
      grid_->step(result.final_state, p,
                  static_cast<double>(window) * cycle_s);

      const auto temps = grid_->register_temps(result.final_state);
      for (std::size_t r = 0; r < temps.size(); ++r) {
        result.peak_reg_temps[r] =
            std::max(result.peak_reg_temps[r], temps[r]);
      }
    }

    const auto temps = grid_->register_temps(result.final_state);
    const double peak = *std::max_element(temps.begin(), temps.end());
    if (std::abs(peak - prev_peak) < config.settle_tolerance_k) {
      result.settled = true;
      break;
    }
    prev_peak = peak;
  }

  result.final_reg_temps = grid_->register_temps(result.final_state);
  result.final_stats = thermal::compute_map_stats(fp, result.final_reg_temps);
  return result;
}

std::vector<ReplayResult> ThermalReplay::replay_batch(
    std::span<const power::AccessTrace> traces,
    const ReplayConfig& config) const {
  TADFA_ASSERT(config.window_cycles > 0);
  TADFA_ASSERT(config.max_repeats >= 1);
  const machine::Floorplan& fp = grid_->floorplan();
  TADFA_ASSERT(config.warm_start == nullptr ||
               config.warm_start->node_temps.size() == grid_->node_count());
  const std::size_t lanes = traces.size();
  std::vector<ReplayResult> results(lanes);
  if (lanes == 0) {
    return results;
  }
  for (const power::AccessTrace& trace : traces) {
    TADFA_ASSERT(trace.num_registers() == fp.num_registers());
    TADFA_ASSERT(trace.duration_cycles() == traces[0].duration_cycles());
  }

  const double cycle_s = fp.config().tech.cycle_seconds();
  const std::uint64_t duration =
      std::max<std::uint64_t>(traces[0].duration_cycles(), 1);

  // Lanes still integrating, compacted so the batch step sees a dense
  // span. states[k] belongs to lane active[k]; a lane that settles moves
  // its state into its result and swaps out of both vectors.
  std::vector<std::size_t> active(lanes);
  std::vector<thermal::ThermalState> states;
  std::vector<double> prev_peak(lanes, 0.0);
  states.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    active[lane] = lane;
    states.push_back(config.warm_start != nullptr ? *config.warm_start
                                                  : grid_->initial_state());
    results[lane].peak_reg_temps.assign(fp.num_registers(),
                                        grid_->substrate_temp());
    const auto temps = grid_->register_temps(states.back());
    prev_peak[lane] = *std::max_element(temps.begin(), temps.end());
  }

  std::vector<std::vector<double>> powers(lanes);
  for (int rep = 0; rep < config.max_repeats && !active.empty(); ++rep) {
    for (std::size_t k = 0; k < active.size(); ++k) {
      ++results[active[k]].repeats_run;
    }
    for (std::uint64_t begin = 0; begin < duration;
         begin += config.window_cycles) {
      const std::uint64_t end =
          std::min(begin + config.window_cycles, duration);
      const std::uint64_t window = end - begin;
      for (std::size_t k = 0; k < active.size(); ++k) {
        ReplayResult& result = results[active[k]];
        const auto counts = traces[active[k]].window(begin, end);
        std::vector<double> p = model_->dynamic_power(counts, window);
        for (double watts : p) {
          result.dynamic_energy_j +=
              watts * static_cast<double>(window) * cycle_s;
        }
        if (config.include_leakage) {
          const auto temps = grid_->register_temps(states[k]);
          const auto leak =
              model_->leakage_power(fp, temps, config.gated_banks);
          for (std::size_t r = 0; r < p.size(); ++r) {
            p[r] += leak[r];
            result.leakage_energy_j +=
                leak[r] * static_cast<double>(window) * cycle_s;
          }
        }
        powers[k] = std::move(p);
      }
      grid_->step_batch(
          std::span<thermal::ThermalState>(states.data(), active.size()),
          std::span<const std::vector<double>>(powers.data(), active.size()),
          static_cast<double>(window) * cycle_s);
      for (std::size_t k = 0; k < active.size(); ++k) {
        ReplayResult& result = results[active[k]];
        const auto temps = grid_->register_temps(states[k]);
        for (std::size_t r = 0; r < temps.size(); ++r) {
          result.peak_reg_temps[r] =
              std::max(result.peak_reg_temps[r], temps[r]);
        }
      }
    }

    for (std::size_t k = 0; k < active.size();) {
      const std::size_t lane = active[k];
      const auto temps = grid_->register_temps(states[k]);
      const double peak = *std::max_element(temps.begin(), temps.end());
      if (std::abs(peak - prev_peak[lane]) < config.settle_tolerance_k) {
        results[lane].settled = true;
        results[lane].final_state = std::move(states[k]);
        states[k] = std::move(states.back());
        states.pop_back();
        active[k] = active.back();
        active.pop_back();
        continue;
      }
      prev_peak[lane] = peak;
      ++k;
    }
  }
  for (std::size_t k = 0; k < active.size(); ++k) {
    results[active[k]].final_state = std::move(states[k]);
  }
  for (ReplayResult& result : results) {
    result.final_reg_temps = grid_->register_temps(result.final_state);
    result.final_stats =
        thermal::compute_map_stats(fp, result.final_reg_temps);
  }
  return results;
}

}  // namespace tadfa::sim
