#include "sim/interpreter.hpp"

#include <limits>

#include "support/assert.hpp"

namespace tadfa::sim {

Interpreter::Interpreter(const ir::Function& func,
                         const machine::TimingModel& timing,
                         ExecutionOptions options)
    : func_(&func), timing_(timing), options_(options) {
  memory_.assign(options_.memory_words, 0);
}

ExecutionResult Interpreter::run(std::span<const std::int64_t> args) {
  return execute(args, nullptr, nullptr);
}

ExecutionResult Interpreter::run_traced(
    std::span<const std::int64_t> args,
    const machine::RegisterAssignment& assignment,
    power::AccessTrace& trace) {
  TADFA_ASSERT_MSG(assignment.covers(*func_),
                   "assignment must cover the traced function");
  return execute(args, &assignment, &trace);
}

ExecutionResult Interpreter::execute(
    std::span<const std::int64_t> args,
    const machine::RegisterAssignment* assignment,
    power::AccessTrace* trace) {
  const ir::Function& f = *func_;
  TADFA_ASSERT_MSG(args.size() == f.params().size(),
                   "argument count must match parameters");

  ExecutionResult result;
  result.block_visits.assign(f.block_count(), 0);

  std::vector<std::int64_t> regs(f.reg_count(), 0);
  for (std::size_t i = 0; i < args.size(); ++i) {
    regs[f.params()[i]] = args[i];
  }

  auto trap = [&result](const std::string& why) {
    result.trap = why;
    return result;
  };

  auto record = [&](ir::Reg v, bool is_write) {
    if (trace != nullptr) {
      trace->record(result.cycles, assignment->phys(v), is_write);
    }
  };

  ir::BlockId block = f.entry();
  std::size_t index = 0;
  ++result.block_visits[block];

  while (true) {
    const ir::BasicBlock& b = f.block(block);
    if (index >= b.size()) {
      return trap("fell off the end of block " + b.name());
    }
    const ir::Instruction& inst = b.instructions()[index];

    if (result.instructions >= options_.max_instructions) {
      return trap("instruction limit exceeded");
    }
    ++result.instructions;

    // Operand evaluation (counts as register reads).
    auto value_of = [&](const ir::Operand& op) {
      if (op.is_imm()) {
        return op.imm();
      }
      record(op.reg(), /*is_write=*/false);
      return regs[op.reg()];
    };

    const auto& ops = inst.operands();
    std::int64_t out_value = 0;
    bool writes_dest = inst.has_dest();

    using ir::Opcode;
    switch (inst.opcode()) {
      case Opcode::kConst:
        out_value = ops[0].imm();
        break;
      case Opcode::kMov:
      case Opcode::kNeg:
      case Opcode::kNot: {
        const std::int64_t a = value_of(ops[0]);
        out_value = inst.opcode() == Opcode::kMov   ? a
                    : inst.opcode() == Opcode::kNeg ? -a
                                                    : ~a;
        break;
      }
      case Opcode::kLoad: {
        const std::int64_t addr = value_of(ops[0]);
        if (addr < 0 ||
            static_cast<std::size_t>(addr) >= memory_.size()) {
          return trap("load from bad address " + std::to_string(addr));
        }
        out_value = memory_[static_cast<std::size_t>(addr)];
        ++result.loads;
        break;
      }
      case Opcode::kStore: {
        const std::int64_t addr = value_of(ops[0]);
        const std::int64_t value = value_of(ops[1]);
        if (addr < 0 ||
            static_cast<std::size_t>(addr) >= memory_.size()) {
          return trap("store to bad address " + std::to_string(addr));
        }
        memory_[static_cast<std::size_t>(addr)] = value;
        ++result.stores;
        break;
      }
      case Opcode::kNop:
        break;
      case Opcode::kBr: {
        const std::int64_t cond = value_of(ops[0]);
        result.cycles += static_cast<std::uint64_t>(timing_.cycles(inst));
        block = cond != 0 ? inst.targets()[0] : inst.targets()[1];
        index = 0;
        ++result.block_visits[block];
        continue;
      }
      case Opcode::kJmp: {
        result.cycles += static_cast<std::uint64_t>(timing_.cycles(inst));
        block = inst.targets()[0];
        index = 0;
        ++result.block_visits[block];
        continue;
      }
      case Opcode::kRet: {
        result.cycles += static_cast<std::uint64_t>(timing_.cycles(inst));
        result.returned = true;
        if (!ops.empty()) {
          result.return_value = value_of(ops[0]);
        }
        if (trace != nullptr) {
          trace->set_duration_cycles(result.cycles);
        }
        return result;
      }
      default: {
        // Binary ALU.
        const std::int64_t a = value_of(ops[0]);
        const std::int64_t b2 = value_of(ops[1]);
        switch (inst.opcode()) {
          case Opcode::kAdd:
            out_value = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b2));
            break;
          case Opcode::kSub:
            out_value = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b2));
            break;
          case Opcode::kMul:
            out_value = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b2));
            break;
          case Opcode::kDiv:
            if (b2 == 0) {
              return trap("division by zero");
            }
            if (a == std::numeric_limits<std::int64_t>::min() && b2 == -1) {
              return trap("division overflow");
            }
            out_value = a / b2;
            break;
          case Opcode::kRem:
            if (b2 == 0) {
              return trap("remainder by zero");
            }
            if (a == std::numeric_limits<std::int64_t>::min() && b2 == -1) {
              return trap("remainder overflow");
            }
            out_value = a % b2;
            break;
          case Opcode::kAnd:
            out_value = a & b2;
            break;
          case Opcode::kOr:
            out_value = a | b2;
            break;
          case Opcode::kXor:
            out_value = a ^ b2;
            break;
          case Opcode::kShl:
            out_value = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(a)
                << (static_cast<std::uint64_t>(b2) & 63U));
            break;
          case Opcode::kShr:
            out_value = a >> (static_cast<std::uint64_t>(b2) & 63U);
            break;
          case Opcode::kMin:
            out_value = a < b2 ? a : b2;
            break;
          case Opcode::kMax:
            out_value = a > b2 ? a : b2;
            break;
          case Opcode::kCmpEq:
            out_value = a == b2;
            break;
          case Opcode::kCmpNe:
            out_value = a != b2;
            break;
          case Opcode::kCmpLt:
            out_value = a < b2;
            break;
          case Opcode::kCmpLe:
            out_value = a <= b2;
            break;
          case Opcode::kCmpGt:
            out_value = a > b2;
            break;
          case Opcode::kCmpGe:
            out_value = a >= b2;
            break;
          default:
            return trap("unhandled opcode");
        }
        break;
      }
    }

    if (writes_dest) {
      regs[inst.dest()] = out_value;
      record(inst.dest(), /*is_write=*/true);
    }
    result.cycles += static_cast<std::uint64_t>(timing_.cycles(inst));
    ++index;
  }
}

}  // namespace tadfa::sim
