// Trace-driven thermal simulation (the feedback-driven baseline).
//
// Converts an access trace to windowed per-register power (dynamic +
// temperature-dependent leakage) and integrates the RC grid through it.
// Optionally repeats the trace until the thermal state settles, modelling a
// kernel that runs continuously (how Fig. 1's maps arise).
#pragma once

#include "power/access_trace.hpp"
#include "power/model.hpp"
#include "thermal/grid.hpp"
#include "thermal/map_stats.hpp"

namespace tadfa::sim {

struct ReplayConfig {
  /// Power-averaging window (cycles). Smaller = finer transient detail.
  std::uint64_t window_cycles = 256;
  /// Repeat the trace up to this many times...
  int max_repeats = 1;
  /// ...stopping early once the hottest register moves less than this
  /// (K) over one full repeat. The first repeat compares against the
  /// initial (substrate-temperature) state, so every configuration —
  /// including max_repeats == 1 — can report `settled`: a single-repeat
  /// replay settles iff its one pass left the peak within the tolerance
  /// of where it started.
  double settle_tolerance_k = 1e-3;
  /// Include temperature-dependent leakage in the power input.
  bool include_leakage = true;
  /// Banks that are power-gated for the whole run (see opt/bank_gating).
  std::vector<bool> gated_banks;
  /// Start from this thermal state instead of substrate temperature.
  /// Chaining repeated replays through their predecessor's final_state
  /// settles in far fewer repeats than restarting cold each time. The
  /// settle test compares the first repeat against this state.
  const thermal::ThermalState* warm_start = nullptr;
};

struct ReplayResult {
  thermal::ThermalState final_state;
  std::vector<double> final_reg_temps;
  /// Per-register maximum over all windows.
  std::vector<double> peak_reg_temps;
  thermal::MapStats final_stats;
  int repeats_run = 0;
  /// True when the last repeat moved the peak temperature less than
  /// ReplayConfig::settle_tolerance_k (see there for the exact rule).
  bool settled = false;
  double dynamic_energy_j = 0;
  double leakage_energy_j = 0;
};

class ThermalReplay {
 public:
  ThermalReplay(const thermal::ThermalGrid& grid,
                const power::PowerModel& model)
      : grid_(&grid), model_(&model) {}

  ReplayResult replay(const power::AccessTrace& trace,
                      const ReplayConfig& config = {}) const;

  /// Replays several traces together, advancing all lanes through each
  /// power window with ThermalGrid::step_batch so the conductance tables
  /// are shared across lanes. On a reference-kernel grid, per-lane
  /// results match sequential replay() calls bit-for-bit (step_batch
  /// always steps with reference math); on fast-tier grids they agree
  /// within the kernel tolerance instead. Lanes drop out of the batch
  /// as they settle. All traces must agree on num_registers and
  /// duration_cycles (one window schedule drives every lane).
  std::vector<ReplayResult> replay_batch(
      std::span<const power::AccessTrace> traces,
      const ReplayConfig& config = {}) const;

 private:
  const thermal::ThermalGrid* grid_;
  const power::PowerModel* model_;
};

}  // namespace tadfa::sim
