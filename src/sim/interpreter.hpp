// IR interpreter: the execution ground truth.
//
// Runs a function on concrete inputs, counts cycles with the shared
// TimingModel, and (when given a register assignment) records every
// physical register access. Interpreting compiled programs and feeding the
// access trace to the thermal model is exactly the "feedback-driven"
// flow the paper wants to replace — here it doubles as the reference the
// thermal DFA is validated against.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ir/function.hpp"
#include "machine/assignment.hpp"
#include "machine/timing.hpp"
#include "power/access_trace.hpp"

namespace tadfa::sim {

struct ExecutionOptions {
  /// Abort after this many executed instructions (runaway-loop guard).
  std::uint64_t max_instructions = 50'000'000;
  /// Words of addressable memory (data + spill slots).
  std::size_t memory_words = (1u << 20) + (1u << 14);
};

struct ExecutionResult {
  bool returned = false;
  std::optional<std::int64_t> return_value;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  /// Memory traffic (for cache/memory energy accounting).
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  /// Execution count of every block (profile for frequency-driven DFA).
  std::vector<std::uint64_t> block_visits;
  /// Set when execution trapped (bad address, div by zero, step limit).
  std::optional<std::string> trap;

  bool ok() const { return returned && !trap; }
};

class Interpreter {
 public:
  Interpreter(const ir::Function& func, const machine::TimingModel& timing,
              ExecutionOptions options = {});

  /// Zero-initialized word-addressed memory; set inputs before run().
  std::vector<std::int64_t>& memory() { return memory_; }
  const std::vector<std::int64_t>& memory() const { return memory_; }

  /// Executes with the given argument values (must match params arity).
  ExecutionResult run(std::span<const std::int64_t> args);

  /// Executes and records each physical register access into `trace`.
  /// `assignment` must cover every register in the function.
  ExecutionResult run_traced(std::span<const std::int64_t> args,
                             const machine::RegisterAssignment& assignment,
                             power::AccessTrace& trace);

 private:
  ExecutionResult execute(std::span<const std::int64_t> args,
                          const machine::RegisterAssignment* assignment,
                          power::AccessTrace* trace);

  const ir::Function* func_;
  machine::TimingModel timing_;
  ExecutionOptions options_;
  std::vector<std::int64_t> memory_;
};

}  // namespace tadfa::sim
