// Bank power-gating vs. spatial spreading (Sec. 4).
//
// "However, power reduction techniques based on switching off register
// banks could not theoretically be applied after the spread register
// assignment, and a compromise between these types of techniques for
// different optimization metrics can be explored at the compiler level."
//
// This module supplies both sides of that compromise: a gating planner
// (banks with no live assignments sleep) and a policy adapter that
// confines assignment to a limited number of banks so the rest can gate.
#pragma once

#include "machine/assignment.hpp"
#include "regalloc/policy.hpp"

namespace tadfa::opt {

struct BankGatingPlan {
  /// gated[b] == true: bank b holds no assigned registers and can sleep.
  std::vector<bool> gated;
  std::uint32_t gated_banks = 0;
  /// Leakage power saved at the given uniform temperature (W).
  double leakage_saved_w = 0;

  friend bool operator==(const BankGatingPlan&,
                         const BankGatingPlan&) = default;
};

/// Plans gating from an assignment: a bank is gateable iff no virtual
/// register is mapped into it.
BankGatingPlan plan_bank_gating(const machine::Floorplan& floorplan,
                                const machine::RegisterAssignment& assignment,
                                double temp_k);

/// Policy adapter that restricts candidates to the first `max_banks`
/// banks, delegating the final choice to `inner`. When nothing in-limit is
/// free, it falls back to the full candidate set (correctness first).
class BankLimitPolicy final : public regalloc::AssignmentPolicy {
 public:
  BankLimitPolicy(regalloc::AssignmentPolicy& inner, std::uint32_t max_banks)
      : inner_(&inner), max_banks_(max_banks) {}

  std::string name() const override {
    return inner_->name() + "+banks" + std::to_string(max_banks_);
  }

  machine::PhysReg choose(std::span<const machine::PhysReg> candidates,
                          const regalloc::PolicyContext& context) override;

  void reset() override { inner_->reset(); }

 private:
  regalloc::AssignmentPolicy* inner_;
  std::uint32_t max_banks_;
};

}  // namespace tadfa::opt
