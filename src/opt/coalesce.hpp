// Copy coalescing.
//
// Merges the two sides of a `mov` whose live ranges do not interfere, then
// deletes the (now identity) copy. A performance optimization every real
// back-end runs — and the direct adversary of the paper's live-range
// *splitting*: coalescing re-fuses what splitting separated, trading the
// thermal spreading back for fewer copies. bench/ablation_join measures
// this tension.
#pragma once

#include "ir/function.hpp"

namespace tadfa::pipeline {
class AnalysisManager;
}

namespace tadfa::opt {

struct CoalesceResult {
  ir::Function func;
  /// Copies merged away.
  std::size_t coalesced = 0;

  CoalesceResult() : func("") {}
};

/// In-place conservative (Chaitin-style) coalescing sharing the
/// interference graph through the manager: repeatedly find a `%d = mov %s`
/// where d and s do not interfere, rename d to s everywhere, and drop the
/// identity move. Runs until no merge applies; the final iteration's
/// liveness/interference stay cached. Returns copies merged away.
std::size_t coalesce_copies(ir::Function& func,
                            pipeline::AnalysisManager& am);

/// Standalone wrapper: copies `func` and runs the in-place version with a
/// private AnalysisManager.
CoalesceResult coalesce_copies(const ir::Function& func);

}  // namespace tadfa::opt
