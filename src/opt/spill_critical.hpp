// Spilling critical variables (Sec. 4).
//
// "For the purposes of thermal management, the greatest benefit will be
// achieved by spilling these 'critical' variables to memory." Moves the
// top-ranked heat contributors to stack slots, trading cycles (reload
// latency) for power density.
#pragma once

#include "core/critical.hpp"
#include "regalloc/spill.hpp"

namespace tadfa::opt {

struct SpillCriticalResult {
  ir::Function func;
  std::vector<ir::Reg> spilled;
  std::size_t inserted_instructions = 0;

  SpillCriticalResult() : func("") {}
};

/// Spills the `top_k` most critical variables of `func` (parameters
/// included; registers that do not appear in the ranking are skipped).
SpillCriticalResult spill_critical_variables(
    const ir::Function& func,
    const std::vector<core::CriticalVariable>& ranking, std::size_t top_k);

}  // namespace tadfa::opt
