#include "opt/dce.hpp"

#include <vector>

#include "dataflow/liveness.hpp"
#include "pipeline/analysis_manager.hpp"

namespace tadfa::opt {
namespace {

bool has_side_effect(const ir::Instruction& inst) {
  switch (inst.opcode()) {
    case ir::Opcode::kStore:
    case ir::Opcode::kLoad:  // may trap; keeping it is the safe default
    case ir::Opcode::kNop:   // cooling delay is the intended effect
    case ir::Opcode::kBr:
    case ir::Opcode::kJmp:
    case ir::Opcode::kRet:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::size_t eliminate_dead_code(ir::Function& func,
                                pipeline::AnalysisManager& am) {
  std::size_t removed = 0;

  // Fixed point: an instruction is removable when it has no side effect
  // and its destination is not live immediately after it. Each pass
  // recomputes liveness once and sweeps every block backward; within a
  // pass the cached live sets can only be stale in the conservative
  // direction (a removed use keeps an input "live" until the next pass).
  bool changed = true;
  while (changed) {
    changed = false;
    const dataflow::Liveness& liveness = am.get<dataflow::Liveness>(func);
    for (ir::BasicBlock& block : func.blocks()) {
      const auto after = liveness.live_after_each(block.id());
      auto& insts = block.instructions();
      for (std::size_t i = insts.size(); i-- > 0;) {
        const ir::Instruction& inst = insts[i];
        if (has_side_effect(inst)) {
          continue;
        }
        const auto d = inst.def();
        if (d && after[i].test(*d)) {
          continue;
        }
        insts.erase(insts.begin() + static_cast<std::ptrdiff_t>(i));
        ++removed;
        changed = true;
      }
    }
    if (changed) {
      // Removals never touch terminators: the Cfg survives, liveness
      // (and everything downstream of it) does not.
      am.invalidate<dataflow::Liveness>();
    }
  }
  return removed;
}

DceResult eliminate_dead_code(const ir::Function& func) {
  DceResult result;
  result.func = func;
  pipeline::AnalysisManager am;
  result.removed = eliminate_dead_code(result.func, am);
  return result;
}

}  // namespace tadfa::opt
