#include "opt/split.hpp"

#include <algorithm>

#include "dataflow/liveness.hpp"
#include "pipeline/analysis_manager.hpp"
#include "support/assert.hpp"

namespace tadfa::opt {
namespace {

bool uses_reg(const ir::Instruction& inst, ir::Reg reg) {
  for (const ir::Operand& op : inst.operands()) {
    if (op.is_reg() && op.reg() == reg) {
      return true;
    }
  }
  return false;
}

}  // namespace

SplitResult split_live_range(ir::Function& func, ir::Reg reg,
                             pipeline::AnalysisManager& am) {
  TADFA_ASSERT(reg < func.reg_count());
  SplitResult result;

  const dataflow::Liveness& liveness = am.get<dataflow::Liveness>(func);

  for (ir::BasicBlock& block : func.blocks()) {
    if (!liveness.live_in(block.id()).test(reg)) {
      continue;
    }

    // The live-in value of `reg` is readable up to and including the first
    // instruction that redefines it (that instruction's *uses* still see
    // the old value, e.g. "reg = reg + 1").
    std::size_t first_redef = block.size();
    for (std::size_t i = 0; i < block.size(); ++i) {
      if (auto d = block.instructions()[i].def(); d && *d == reg) {
        first_redef = i;
        break;
      }
    }
    const std::size_t use_limit =
        std::min(first_redef, block.size() - 1);  // inclusive index bound
    bool any_use = false;
    for (std::size_t i = 0; i <= use_limit; ++i) {
      if (uses_reg(block.instructions()[i], reg)) {
        any_use = true;
        break;
      }
    }
    if (!any_use) {
      continue;
    }

    // Private copy at block entry; rewrite the eligible uses to it.
    const ir::Reg copy = func.new_reg();
    block.insert(0, ir::Instruction(ir::Opcode::kMov, copy,
                                    {ir::Operand::reg(reg)}));
    result.copies.push_back(copy);
    for (std::size_t i = 1; i <= use_limit + 1 && i < block.size(); ++i) {
      ir::Instruction& inst = block.instructions()[i];
      for (const ir::Operand& op : inst.operands()) {
        if (op.is_reg() && op.reg() == reg) {
          ++result.rewritten_uses;
        }
      }
      inst.replace_uses(reg, copy);
    }
  }

  if (!result.copies.empty()) {
    // Copy insertion keeps every terminator in place (Cfg survives) but
    // adds defs/uses: liveness and its dependents are stale.
    am.invalidate<dataflow::Liveness>();
  }
  return result;
}

SplitResult split_live_range(ir::Function& func, ir::Reg reg) {
  pipeline::AnalysisManager am;
  return split_live_range(func, reg, am);
}

SplitResult split_live_ranges(ir::Function& func,
                              const std::vector<ir::Reg>& regs,
                              pipeline::AnalysisManager& am) {
  SplitResult total;
  for (ir::Reg r : regs) {
    const SplitResult one = split_live_range(func, r, am);
    total.copies.insert(total.copies.end(), one.copies.begin(),
                        one.copies.end());
    total.rewritten_uses += one.rewritten_uses;
  }
  return total;
}

SplitResult split_live_ranges(ir::Function& func,
                              const std::vector<ir::Reg>& regs) {
  pipeline::AnalysisManager am;
  return split_live_ranges(func, regs, am);
}

}  // namespace tadfa::opt
