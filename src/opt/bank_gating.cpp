#include "opt/bank_gating.hpp"

#include "power/model.hpp"
#include "support/assert.hpp"

namespace tadfa::opt {

BankGatingPlan plan_bank_gating(const machine::Floorplan& floorplan,
                                const machine::RegisterAssignment& assignment,
                                double temp_k) {
  BankGatingPlan plan;
  plan.gated.assign(floorplan.num_banks(), true);

  for (machine::PhysReg p : assignment.used_physical()) {
    plan.gated[floorplan.bank_of(p)] = false;
  }

  const double leak_cell = floorplan.config().tech.leakage_at(temp_k);
  for (std::uint32_t b = 0; b < plan.gated.size(); ++b) {
    if (!plan.gated[b]) {
      continue;
    }
    ++plan.gated_banks;
    const double cells =
        static_cast<double>(floorplan.bank_registers(b).size());
    plan.leakage_saved_w +=
        cells * leak_cell * (1.0 - power::PowerModel::gated_leakage_fraction);
  }
  return plan;
}

machine::PhysReg BankLimitPolicy::choose(
    std::span<const machine::PhysReg> candidates,
    const regalloc::PolicyContext& context) {
  TADFA_ASSERT(!candidates.empty());
  TADFA_ASSERT(context.floorplan != nullptr);
  std::vector<machine::PhysReg> limited;
  for (machine::PhysReg c : candidates) {
    if (context.floorplan->bank_of(c) < max_banks_) {
      limited.push_back(c);
    }
  }
  if (limited.empty()) {
    return inner_->choose(candidates, context);
  }
  return inner_->choose(limited, context);
}

}  // namespace tadfa::opt
