// Live-range splitting by copy insertion (Sec. 4).
//
// "...or splitting them (via copy insertion) to spread their accesses
// across a multitude of registers." Each splittable block gets a private
// copy of the hot variable, so the downstream assignment stage can place
// every copy in a different physical cell.
#pragma once

#include <vector>

#include "ir/function.hpp"

namespace tadfa::pipeline {
class AnalysisManager;
}

namespace tadfa::opt {

struct SplitResult {
  /// Copy registers created (one per split block).
  std::vector<ir::Reg> copies;
  std::size_t rewritten_uses = 0;
};

/// Splits `reg` in place: in every block where `reg` is live-in and used,
/// a fresh copy is made at block entry and the block's uses (up to the
/// first redefinition of `reg`, if any) are rewritten to the copy.
/// Semantics-preserving by construction. Liveness is requested through
/// the manager and invalidated only when copies were actually inserted.
SplitResult split_live_range(ir::Function& func, ir::Reg reg,
                             pipeline::AnalysisManager& am);

/// Standalone wrapper with a private AnalysisManager.
SplitResult split_live_range(ir::Function& func, ir::Reg reg);

/// Splits each of `regs`, returning total copies created.
SplitResult split_live_ranges(ir::Function& func,
                              const std::vector<ir::Reg>& regs,
                              pipeline::AnalysisManager& am);
SplitResult split_live_ranges(ir::Function& func,
                              const std::vector<ir::Reg>& regs);

}  // namespace tadfa::opt
