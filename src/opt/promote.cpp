#include "opt/promote.hpp"

#include <algorithm>
#include <map>

namespace tadfa::opt {

PromoteResult promote_memory_scalars(const ir::Function& func,
                                     std::size_t min_loads) {
  PromoteResult result;
  result.func = func;
  ir::Function& f = result.func;

  // --- Scan: constant-address load counts, store side effects ---------------
  bool unknown_store = false;
  std::map<std::int64_t, std::size_t> load_count;
  std::map<std::int64_t, bool> stored;
  for (const ir::BasicBlock& b : f.blocks()) {
    for (const ir::Instruction& inst : b.instructions()) {
      if (inst.opcode() == ir::Opcode::kLoad) {
        if (inst.operands()[0].is_imm()) {
          ++load_count[inst.operands()[0].imm()];
        }
      } else if (inst.opcode() == ir::Opcode::kStore) {
        if (inst.operands()[0].is_imm()) {
          stored[inst.operands()[0].imm()] = true;
        } else {
          unknown_store = true;
        }
      }
    }
  }
  if (unknown_store) {
    return result;  // any store could alias any address: promote nothing
  }

  std::map<std::int64_t, ir::Reg> home;
  for (const auto& [addr, count] : load_count) {
    if (count >= min_loads && !stored[addr]) {
      home[addr] = f.new_reg();
      result.promoted_addresses.push_back(addr);
    }
  }
  if (home.empty()) {
    return result;
  }

  // --- Rewrite loads to movs ---------------------------------------------------
  for (ir::BasicBlock& b : f.blocks()) {
    for (ir::Instruction& inst : b.instructions()) {
      if (inst.opcode() != ir::Opcode::kLoad ||
          !inst.operands()[0].is_imm()) {
        continue;
      }
      const auto it = home.find(inst.operands()[0].imm());
      if (it == home.end()) {
        continue;
      }
      inst = ir::Instruction(ir::Opcode::kMov, inst.dest(),
                             {ir::Operand::reg(it->second)});
      ++result.loads_replaced;
    }
  }

  // --- Materialize the home registers at entry (descending insert keeps
  //     ascending final order).
  ir::BasicBlock& entry = f.block(f.entry());
  for (auto it = home.rbegin(); it != home.rend(); ++it) {
    entry.insert(0, ir::Instruction(ir::Opcode::kLoad, it->second,
                                    {ir::Operand::imm(it->first)}));
  }
  return result;
}

}  // namespace tadfa::opt
