// Thermal-aware instruction scheduling (Sec. 4).
//
// "...spreading accesses to registers in time, either using instruction
// scheduling, to avoid consecutive accesses to already hot registers..."
// A within-block list scheduler that, among data-ready instructions,
// prefers the one whose physical registers were accessed longest ago.
#pragma once

#include "ir/function.hpp"
#include "machine/assignment.hpp"

namespace tadfa::opt {

struct ScheduleResult {
  ir::Function func;
  /// Instructions that ended up at a different position than the input.
  std::size_t moved = 0;

  ScheduleResult() : func("") {}
};

/// Reorders instructions inside each basic block, honoring:
///  - register data dependences (RAW, WAR, WAW on virtual registers),
///  - memory order (stores are barriers against loads and stores),
///  - the terminator staying last.
/// Among ready instructions, picks the one maximizing the minimum
/// scheduling distance to the previous access of any of its physical
/// registers (via `assignment`).
ScheduleResult thermal_schedule(const ir::Function& func,
                                const machine::RegisterAssignment& assignment);

}  // namespace tadfa::opt
