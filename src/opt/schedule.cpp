#include "opt/schedule.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "support/assert.hpp"

namespace tadfa::opt {
namespace {

bool is_memory(const ir::Instruction& inst) {
  return inst.opcode() == ir::Opcode::kLoad ||
         inst.opcode() == ir::Opcode::kStore;
}

bool is_store(const ir::Instruction& inst) {
  return inst.opcode() == ir::Opcode::kStore;
}

}  // namespace

ScheduleResult thermal_schedule(
    const ir::Function& func,
    const machine::RegisterAssignment& assignment) {
  ScheduleResult result;
  result.func = func;

  for (ir::BasicBlock& block : result.func.blocks()) {
    const std::size_t n = block.size();
    if (n <= 2) {
      continue;
    }
    // Schedule everything except the terminator.
    const std::size_t body = block.has_terminator() ? n - 1 : n;

    // --- Dependence edges (i -> j means i must precede j) -------------------
    // Dependences are computed on PHYSICAL registers: after assignment, two
    // virtual registers sharing a cell must keep their relative order, or
    // the reorder would invalidate the allocation. (Physical deps are a
    // superset of virtual deps, so semantics are preserved too.)
    const auto& insts = block.instructions();
    auto mapped = [&](ir::Reg v) -> std::uint64_t {
      if (assignment.assigned(v)) {
        return (std::uint64_t{1} << 32) | assignment.phys(v);
      }
      return v;
    };
    std::vector<std::vector<std::size_t>> succ(body);
    std::vector<std::size_t> pending(body, 0);
    for (std::size_t j = 0; j < body; ++j) {
      for (std::size_t i = 0; i < j; ++i) {
        const ir::Instruction& a = insts[i];
        const ir::Instruction& c = insts[j];
        bool dep = false;
        // RAW: j reads a cell i defines.
        if (auto d = a.def()) {
          for (ir::Reg u : c.uses()) {
            if (mapped(u) == mapped(*d)) {
              dep = true;
            }
          }
        }
        // WAR: j defines a cell i reads.
        if (auto d = c.def()) {
          for (ir::Reg u : a.uses()) {
            if (mapped(u) == mapped(*d)) {
              dep = true;
            }
          }
        }
        // WAW: both define the same cell.
        if (a.def() && c.def() && mapped(*a.def()) == mapped(*c.def())) {
          dep = true;
        }
        // Memory: stores order against all memory ops.
        if (is_memory(a) && is_memory(c) && (is_store(a) || is_store(c))) {
          dep = true;
        }
        if (dep) {
          succ[i].push_back(j);
          ++pending[j];
        }
      }
    }

    // --- List scheduling ------------------------------------------------------
    // last_access[p] = position (in the new order) of the most recent
    // access to physical register p; -inf if untouched.
    const std::uint32_t n_phys = [&] {
      std::uint32_t max_p = 0;
      for (std::size_t i = 0; i < body; ++i) {
        if (auto d = insts[i].def()) {
          if (assignment.assigned(*d)) {
            max_p = std::max(max_p, assignment.phys(*d));
          }
        }
        for (ir::Reg u : insts[i].uses()) {
          if (assignment.assigned(u)) {
            max_p = std::max(max_p, assignment.phys(u));
          }
        }
      }
      return max_p + 1;
    }();
    std::vector<std::ptrdiff_t> last_access(
        n_phys, std::numeric_limits<std::ptrdiff_t>::min() / 2);

    std::vector<std::size_t> order;
    order.reserve(body);
    std::vector<bool> scheduled(body, false);

    auto coolness = [&](std::size_t i) {
      // Minimum distance (in already-emitted instructions) since any of
      // instruction i's physical registers was last accessed. Larger =
      // cooler = better.
      std::ptrdiff_t min_gap = std::numeric_limits<std::ptrdiff_t>::max();
      const auto pos = static_cast<std::ptrdiff_t>(order.size());
      auto consider = [&](ir::Reg v) {
        if (assignment.assigned(v)) {
          min_gap = std::min(min_gap, pos - last_access[assignment.phys(v)]);
        }
      };
      for (ir::Reg u : insts[i].uses()) {
        consider(u);
      }
      if (auto d = insts[i].def()) {
        consider(*d);
      }
      return min_gap;
    };

    for (std::size_t step = 0; step < body; ++step) {
      std::size_t pick = body;
      std::ptrdiff_t best = std::numeric_limits<std::ptrdiff_t>::min();
      for (std::size_t i = 0; i < body; ++i) {
        if (scheduled[i] || pending[i] != 0) {
          continue;
        }
        const std::ptrdiff_t gap = coolness(i);
        if (pick == body || gap > best) {
          best = gap;
          pick = i;
        }
      }
      TADFA_ASSERT_MSG(pick != body, "scheduler found a dependence cycle");
      scheduled[pick] = true;
      order.push_back(pick);
      const auto pos = static_cast<std::ptrdiff_t>(order.size()) - 1;
      for (ir::Reg u : insts[pick].uses()) {
        if (assignment.assigned(u)) {
          last_access[assignment.phys(u)] = pos;
        }
      }
      if (auto d = insts[pick].def()) {
        if (assignment.assigned(*d)) {
          last_access[assignment.phys(*d)] = pos;
        }
      }
      for (std::size_t s : succ[pick]) {
        --pending[s];
      }
    }

    // --- Emit -------------------------------------------------------------------
    std::vector<ir::Instruction> reordered;
    reordered.reserve(n);
    for (std::size_t i : order) {
      reordered.push_back(insts[i]);
    }
    if (body < n) {
      reordered.push_back(insts[n - 1]);  // terminator
    }
    for (std::size_t i = 0; i < body; ++i) {
      if (order[i] != i) {
        ++result.moved;
      }
    }
    block.instructions() = std::move(reordered);
  }

  return result;
}

}  // namespace tadfa::opt
