#include "opt/reassign.hpp"

namespace tadfa::opt {

ReassignResult thermally_reassign(const ir::Function& func,
                                  const regalloc::AllocationResult& initial,
                                  const core::ThermalDfa& dfa) {
  ReassignResult result;

  const core::ThermalDfaResult before =
      dfa.analyze_post_ra(initial.func, initial.assignment);
  result.predicted_before = before.exit_stats;

  // Heat score = predicted exit temperature of each cell.
  regalloc::CoolestFirstPolicy policy;
  regalloc::GraphColoringAllocator allocator(dfa.grid().floorplan(), policy);
  allocator.set_heat_scores(before.exit_reg_temps_k);
  result.alloc = allocator.allocate(func);

  const core::ThermalDfaResult after =
      dfa.analyze_post_ra(result.alloc.func, result.alloc.assignment);
  result.predicted_after = after.exit_stats;
  return result;
}

}  // namespace tadfa::opt
