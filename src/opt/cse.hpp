// Local common-subexpression elimination.
//
// Replaces a pure computation that repeats within a block (same opcode,
// same operand values) with a copy of the earlier result. Thermally
// relevant in its own right: every eliminated ALU op removes register-file
// read traffic, and the remaining movs coalesce away (opt/coalesce.hpp).
// SEC4-O measures the compound cse -> coalesce -> dce pipeline.
#pragma once

#include "ir/function.hpp"

namespace tadfa::opt {

struct CseResult {
  ir::Function func;
  /// Redundant computations turned into movs.
  std::size_t replaced = 0;

  CseResult() : func("") {}
};

/// Performs CSE within each basic block. Loads are treated as killed by
/// any store (no alias analysis); div/rem are eligible (their traps depend
/// only on operand values, which are equal by construction).
CseResult eliminate_common_subexpressions(const ir::Function& func);

}  // namespace tadfa::opt
