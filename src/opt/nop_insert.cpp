#include "opt/nop_insert.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace tadfa::opt {

NopInsertResult insert_cooling_nops(const ir::Function& func,
                                    const core::ThermalDfaResult& dfa,
                                    double threshold_k, int nops_per_site) {
  TADFA_ASSERT(nops_per_site >= 1);
  NopInsertResult result;
  result.func = func;

  // Collect hot sites from the analysis, then insert back-to-front within
  // each block so earlier indices stay valid.
  std::vector<ir::InstrRef> sites;
  for (const core::InstructionThermal& it : dfa.per_instruction) {
    if (it.peak_k > threshold_k) {
      sites.push_back(it.ref);
    }
  }
  std::sort(sites.begin(), sites.end(),
            [](const ir::InstrRef& a, const ir::InstrRef& b) {
              if (a.block != b.block) {
                return a.block < b.block;
              }
              return a.index > b.index;  // descending within a block
            });

  for (const ir::InstrRef& ref : sites) {
    ir::BasicBlock& block = result.func.block(ref.block);
    if (ref.index >= block.size()) {
      continue;
    }
    if (block.instructions()[ref.index].is_terminator()) {
      continue;
    }
    for (int n = 0; n < nops_per_site; ++n) {
      block.insert(ref.index + 1,
                   ir::Instruction(ir::Opcode::kNop, ir::kInvalidReg, {}));
      ++result.nops_inserted;
    }
  }
  return result;
}

double default_cooling_threshold(const core::ThermalDfaResult& dfa) {
  return 0.5 * (dfa.exit_stats.mean_k + dfa.peak_anywhere_k);
}

}  // namespace tadfa::opt
