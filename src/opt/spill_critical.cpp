#include "opt/spill_critical.hpp"

namespace tadfa::opt {

SpillCriticalResult spill_critical_variables(
    const ir::Function& func,
    const std::vector<core::CriticalVariable>& ranking, std::size_t top_k) {
  SpillCriticalResult result;
  result.func = func;

  for (const core::CriticalVariable& cv : ranking) {
    if (result.spilled.size() >= top_k) {
      break;
    }
    result.spilled.push_back(cv.vreg);
  }

  const regalloc::SpillResult sr =
      regalloc::spill_registers(result.func, result.spilled);
  result.inserted_instructions = sr.inserted_instructions;
  return result;
}

}  // namespace tadfa::opt
