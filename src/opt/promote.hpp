// Register promotion (Sec. 4).
//
// "...using register promotion (i.e., promoting some memory-resident
// variables into registers), which would help on avoiding the thermal
// gradients between hot and cold registers, by making more uniform the use
// of registers in time."
//
// Conservative scalar promotion: a load from a constant address that is
// never stored to (and with no unknown-address stores in the function) is
// loaded once at entry and every original load becomes a register copy.
#pragma once

#include <vector>

#include "ir/function.hpp"

namespace tadfa::opt {

struct PromoteResult {
  ir::Function func;
  /// Constant addresses that were promoted.
  std::vector<std::int64_t> promoted_addresses;
  /// Loads replaced by movs.
  std::size_t loads_replaced = 0;

  PromoteResult() : func("") {}
};

/// Promotes every eligible constant address with at least `min_loads`
/// loads. Returns the rewritten function.
PromoteResult promote_memory_scalars(const ir::Function& func,
                                     std::size_t min_loads = 2);

}  // namespace tadfa::opt
