#include "opt/cse.hpp"

#include <map>
#include <tuple>
#include <vector>

namespace tadfa::opt {
namespace {

/// Value-key of an instruction: opcode + operand identities. Register
/// operands are keyed by (true, reg); immediates by (false, value).
using OperandKey = std::pair<bool, std::int64_t>;
using ExprKey = std::tuple<ir::Opcode, std::vector<OperandKey>>;

bool is_pure_candidate(const ir::Instruction& inst) {
  if (!inst.has_dest()) {
    return false;
  }
  switch (inst.opcode()) {
    case ir::Opcode::kConst:
    case ir::Opcode::kMov:
      return false;  // already trivial; nothing to save
    case ir::Opcode::kLoad:
      return true;  // killed by stores below
    default:
      return ir::is_binary_alu(inst.opcode()) ||
             ir::is_unary_alu(inst.opcode());
  }
}

ExprKey key_of(const ir::Instruction& inst) {
  std::vector<OperandKey> ops;
  ops.reserve(inst.operands().size());
  for (const ir::Operand& op : inst.operands()) {
    if (op.is_reg()) {
      ops.emplace_back(true, static_cast<std::int64_t>(op.reg()));
    } else {
      ops.emplace_back(false, op.imm());
    }
  }
  return {inst.opcode(), std::move(ops)};
}

}  // namespace

CseResult eliminate_common_subexpressions(const ir::Function& func) {
  CseResult result;
  result.func = func;

  for (ir::BasicBlock& block : result.func.blocks()) {
    std::map<ExprKey, ir::Reg> available;  // expression -> holding register

    for (std::size_t i = 0; i < block.size(); ++i) {
      ir::Instruction& inst = block.instructions()[i];

      // Stores kill every available load (no alias analysis).
      if (inst.opcode() == ir::Opcode::kStore) {
        for (auto it = available.begin(); it != available.end();) {
          if (std::get<0>(it->first) == ir::Opcode::kLoad) {
            it = available.erase(it);
          } else {
            ++it;
          }
        }
        continue;
      }

      if (is_pure_candidate(inst)) {
        const auto hit = available.find(key_of(inst));
        if (hit != available.end()) {
          inst = ir::Instruction(ir::Opcode::kMov, inst.dest(),
                                 {ir::Operand::reg(hit->second)});
          ++result.replaced;
        }
        // (Insertion happens after the kill sweep below, which would
        // otherwise immediately evict the entry held in the fresh def.)
      }

      // A (re)definition invalidates every expression that reads the
      // defined register, and any expression previously held in it.
      if (auto d = inst.def()) {
        for (auto it = available.begin(); it != available.end();) {
          bool killed = it->second == *d;
          for (const OperandKey& op : std::get<1>(it->first)) {
            if (op.first && op.second == static_cast<std::int64_t>(*d)) {
              killed = true;
            }
          }
          it = killed ? available.erase(it) : std::next(it);
        }
        // Re-admit the instruction's own expression if it survived intact
        // (a self-redefining op like "%x = add %x, 1" must not).
        if (is_pure_candidate(inst) &&
            inst.opcode() != ir::Opcode::kMov) {
          bool self_ref = false;
          for (ir::Reg u : inst.uses()) {
            if (u == *d) {
              self_ref = true;
            }
          }
          if (!self_ref) {
            available.emplace(key_of(inst), *d);
          }
        }
      }
    }
  }
  return result;
}

}  // namespace tadfa::opt
