// Thermally-guided register re-assignment.
//
// The closing of the paper's loop: run the thermal DFA on an initial
// (performance-oriented) allocation, extract the predicted per-cell heat,
// and re-run assignment steering new values toward cool cells — thermal
// feedback at compile time, with no thermal *simulation* in the loop.
#pragma once

#include "core/thermal_dfa.hpp"
#include "regalloc/graph_coloring.hpp"

namespace tadfa::opt {

struct ReassignResult {
  regalloc::AllocationResult alloc;
  /// Predicted exit-map statistics before and after (same DFA config).
  thermal::MapStats predicted_before;
  thermal::MapStats predicted_after;
};

/// Analyzes `initial` (an allocation of `func`), then re-allocates `func`
/// with a coolest-first policy seeded by the predicted heat map.
ReassignResult thermally_reassign(const ir::Function& func,
                                  const regalloc::AllocationResult& initial,
                                  const core::ThermalDfa& dfa);

}  // namespace tadfa::opt
