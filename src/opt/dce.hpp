// Dead code elimination.
//
// Live-range splitting and coalescing leave behind dead copies; DCE
// removes instructions whose results are never observed. Conservative
// about effects: stores, loads (may trap on bad addresses), NOPs
// (deliberately inserted for cooling — they ARE the effect), and
// terminators are always kept.
#pragma once

#include "ir/function.hpp"

namespace tadfa::opt {

struct DceResult {
  ir::Function func;
  std::size_t removed = 0;

  DceResult() : func("") {}
};

/// Removes instructions that define a register no live instruction reads.
/// Runs to a fixed point (removing one dead op can kill its inputs).
DceResult eliminate_dead_code(const ir::Function& func);

}  // namespace tadfa::opt
