// Dead code elimination.
//
// Live-range splitting and coalescing leave behind dead copies; DCE
// removes instructions whose results are never observed. Conservative
// about effects: stores, loads (may trap on bad addresses), NOPs
// (deliberately inserted for cooling — they ARE the effect), and
// terminators are always kept.
#pragma once

#include "ir/function.hpp"

namespace tadfa::pipeline {
class AnalysisManager;
}

namespace tadfa::opt {

struct DceResult {
  ir::Function func;
  std::size_t removed = 0;

  DceResult() : func("") {}
};

/// In-place DCE sharing liveness through the manager: Cfg is computed at
/// most once (DCE never removes terminators), Liveness once per sweep
/// that removed something, and the final no-change sweep's Liveness stays
/// cached for downstream consumers. Returns instructions removed.
std::size_t eliminate_dead_code(ir::Function& func,
                                pipeline::AnalysisManager& am);

/// Standalone wrapper: copies `func` and runs the in-place version with a
/// private AnalysisManager. Runs to a fixed point (removing one dead op
/// can kill its inputs).
DceResult eliminate_dead_code(const ir::Function& func);

}  // namespace tadfa::opt
