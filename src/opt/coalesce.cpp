#include "opt/coalesce.hpp"

#include <algorithm>

#include "dataflow/interference.hpp"
#include "dataflow/liveness.hpp"
#include "pipeline/analysis_manager.hpp"

namespace tadfa::opt {
namespace {

/// Renames every def and use of `from` to `to`.
void rename(ir::Function& func, ir::Reg from, ir::Reg to) {
  for (ir::BasicBlock& block : func.blocks()) {
    for (ir::Instruction& inst : block.instructions()) {
      if (inst.has_dest() && inst.dest() == from) {
        inst.set_dest(to);
      }
      inst.replace_uses(from, to);
    }
  }
}

/// Deletes `%x = mov %x` identity copies.
std::size_t drop_identity_moves(ir::Function& func) {
  std::size_t dropped = 0;
  for (ir::BasicBlock& block : func.blocks()) {
    auto& insts = block.instructions();
    for (std::size_t i = insts.size(); i-- > 0;) {
      const ir::Instruction& inst = insts[i];
      if (inst.opcode() == ir::Opcode::kMov && inst.operands()[0].is_reg() &&
          inst.has_dest() && inst.dest() == inst.operands()[0].reg()) {
        insts.erase(insts.begin() + static_cast<std::ptrdiff_t>(i));
        ++dropped;
      }
    }
  }
  return dropped;
}

}  // namespace

std::size_t coalesce_copies(ir::Function& func,
                            pipeline::AnalysisManager& am) {
  std::size_t coalesced = 0;

  bool merged = true;
  while (merged) {
    merged = false;
    const dataflow::InterferenceGraph& graph =
        am.get<dataflow::InterferenceGraph>(func);

    for (const ir::BasicBlock& block : func.blocks()) {
      for (const ir::Instruction& inst : block.instructions()) {
        if (inst.opcode() != ir::Opcode::kMov ||
            !inst.operands()[0].is_reg()) {
          continue;
        }
        const ir::Reg d = inst.dest();
        const ir::Reg s = inst.operands()[0].reg();
        if (d == s || graph.interferes(d, s)) {
          continue;
        }
        // Keep the parameter register as the representative so the
        // function signature stays intact; skip param-param pairs.
        const auto& params = func.params();
        const bool d_param =
            std::find(params.begin(), params.end(), d) != params.end();
        const bool s_param =
            std::find(params.begin(), params.end(), s) != params.end();
        if (d_param && s_param) {
          continue;
        }
        const ir::Reg keep = d_param ? d : s;
        const ir::Reg drop = d_param ? s : d;
        rename(func, drop, keep);
        coalesced += drop_identity_moves(func);
        merged = true;
        break;  // interference graph is stale; rebuild
      }
      if (merged) {
        break;
      }
    }
    if (merged) {
      // Renames move live ranges but never touch terminator targets:
      // liveness (and the graph built on it) is stale, the Cfg is not.
      am.invalidate<dataflow::Liveness>();
    }
  }
  return coalesced;
}

CoalesceResult coalesce_copies(const ir::Function& func) {
  CoalesceResult result;
  result.func = func;
  pipeline::AnalysisManager am;
  result.coalesced = coalesce_copies(result.func, am);
  return result;
}

}  // namespace tadfa::opt
