// NOP insertion for emergency cooling (Sec. 4).
//
// "...the insertion of NOP instructions gives the RF a chance to cool down
// between accesses in extremely hot situations, although it can affect
// overall system performance and should be applied only if no other option
// ... is feasible." Driven by the thermal DFA's per-instruction peaks.
#pragma once

#include "core/thermal_dfa.hpp"

namespace tadfa::opt {

struct NopInsertResult {
  ir::Function func;
  std::size_t nops_inserted = 0;

  NopInsertResult() : func("") {}
};

/// Inserts `nops_per_site` NOPs after every instruction whose predicted
/// peak exceeds `threshold_k`. Terminators never get trailing NOPs.
NopInsertResult insert_cooling_nops(const ir::Function& func,
                                    const core::ThermalDfaResult& dfa,
                                    double threshold_k,
                                    int nops_per_site = 4);

/// Conventional threshold when none is given: midway between the mean exit
/// temperature and the hottest predicted point ("extremely hot situations"
/// only — Sec. 4 says NOPs are a last resort).
double default_cooling_threshold(const core::ThermalDfaResult& dfa);

}  // namespace tadfa::opt
