// Benchmark kernels, hand-built in IR.
//
// These play the role of the embedded/multimedia loops the thermal-RF
// literature evaluates on (FIR, DCT, CRC, stencils...). Each kernel comes
// with default arguments, a memory initializer, and an expected result so
// tests can verify that thermal transformations preserve semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ir/function.hpp"

namespace tadfa::workload {

struct Kernel {
  std::string name;
  ir::Function func;
  std::vector<std::int64_t> default_args;
  /// Fills interpreter memory before running (arrays, tables).
  std::function<void(std::vector<std::int64_t>&)> init_memory;
  /// Expected return value under default args (checked by tests).
  std::optional<std::int64_t> expected_result;
  /// Qualitative register pressure class, for experiment grouping.
  enum class Pressure { kLow, kMedium, kHigh } pressure = Pressure::kMedium;

  Kernel() : func("") {}
};

/// Sum of the n words at [base, base+n). Low pressure.
Kernel make_vecsum(std::int64_t n = 256);

/// FIR filter: out[i] = Σ_t coeff[t]·in[i+t], taps unrolled in registers.
/// Medium pressure (taps + accumulator live across the loop).
Kernel make_fir(std::int64_t n = 128, int taps = 8);

/// Dense n×n · n×n integer matrix multiply. Medium pressure.
Kernel make_matmul(std::int64_t n = 12);

/// 8-point butterfly transform (IDCT-like) applied to n rows of 8; the
/// whole row lives in registers. High pressure.
Kernel make_idct8(std::int64_t rows = 64);

/// Bitwise CRC-32 over n words (no lookup table). Low/medium pressure,
/// very hot few registers — the classic first-fit worst case.
Kernel make_crc32(std::int64_t n = 64);

/// 1-D 3-point stencil, two passes. Medium pressure.
Kernel make_stencil3(std::int64_t n = 128);

/// Degree-7 polynomial (Horner) evaluated over n inputs with coefficients
/// in registers. Medium-high pressure.
Kernel make_poly7(std::int64_t n = 128);

/// K parallel accumulators updated round-robin over n steps — a register
/// pressure dial: K live values throughout. K defaults to 24 (high).
Kernel make_accumulators(std::int64_t n = 256, int k = 24);

/// Skewed-access kernel: `hot` registers are hammered every iteration
/// (unrolled x8) while `cold` long-lived values are touched once per
/// iteration. `cold` dials register pressure without flattening the power
/// profile — the workload for the Fig. 1 pressure-caveat sweep.
Kernel make_hot_cold(std::int64_t n = 192, int hot = 4, int cold = 8);

/// Tiny counter loop; the minimal thermal workload.
Kernel make_counter(std::int64_t n = 1024);

/// All kernels above with default parameters.
std::vector<Kernel> standard_suite();

/// Kernel by name (as in Kernel::name); nullopt when unknown.
std::optional<Kernel> make_kernel(const std::string& name);

}  // namespace tadfa::workload
