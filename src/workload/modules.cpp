#include "workload/modules.hpp"

#include <set>
#include <string>

#include "support/assert.hpp"
#include "workload/kernels.hpp"
#include "workload/random_program.hpp"

namespace tadfa::workload {
namespace {

/// Deterministic per-index mixing of the config seed (splitmix64 step):
/// spreads consecutive indices over the parameter space without an RNG
/// object.
std::uint64_t mix(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// A kernel-suite variant with size/pressure parameters varied by `salt`.
ir::Function kernel_variant(std::uint64_t salt) {
  switch (salt % 10) {
    case 0:
      return make_vecsum(64 + 16 * static_cast<std::int64_t>(salt % 8)).func;
    case 1:
      return make_fir(32 + 16 * static_cast<std::int64_t>(salt % 6),
                      4 + static_cast<int>(salt % 5))
          .func;
    case 2:
      return make_matmul(4 + static_cast<std::int64_t>(salt % 6)).func;
    case 3:
      return make_idct8(8 + 4 * static_cast<std::int64_t>(salt % 8)).func;
    case 4:
      return make_crc32(16 + 8 * static_cast<std::int64_t>(salt % 6)).func;
    case 5:
      return make_stencil3(32 + 16 * static_cast<std::int64_t>(salt % 6))
          .func;
    case 6:
      return make_poly7(32 + 16 * static_cast<std::int64_t>(salt % 6)).func;
    case 7:
      return make_accumulators(64, 8 + static_cast<int>(salt % 16)).func;
    case 8:
      return make_hot_cold(64, 2 + static_cast<int>(salt % 4),
                           4 + static_cast<int>(salt % 6))
          .func;
    default:
      return make_counter(128 * (1 + static_cast<std::int64_t>(salt % 4)))
          .func;
  }
}

}  // namespace

ir::Module make_mixed_module(const ModuleConfig& config) {
  ir::Module module;
  // Bodies already emitted, by ir::fingerprint (which ignores names).
  // The kernel-variant parameter space is small (≈ a hundred distinct
  // shapes), so a per-index salt alone can emit the same body twice
  // under different names — which silently inflated every cache-hit-
  // rate number measured on these modules. Re-salt on collision, and
  // past a few attempts escape into the (practically collision-free)
  // random-program space so generation always terminates.
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < config.functions; ++i) {
    ir::Function func("");
    for (std::uint64_t attempt = 0;; ++attempt) {
      TADFA_ASSERT_MSG(attempt < 1000,
                       "make_mixed_module failed to find a fresh function");
      const std::uint64_t salt = mix(mix(config.seed, i), attempt);
      const bool random =
          (config.random_every != 0 && i % config.random_every == 0) ||
          attempt >= 8;
      if (random) {
        RandomProgramConfig rcfg;
        rcfg.seed = salt;
        rcfg.target_instructions = config.random_target_instructions;
        rcfg.value_pool = 8 + static_cast<int>(salt % 12);
        rcfg.irregularity = static_cast<double>(salt % 4) / 4.0;
        func = random_program(rcfg);
      } else {
        func = kernel_variant(salt);
      }
      if (seen.insert(ir::fingerprint(func)).second) {
        break;
      }
    }
    func.set_name(func.name() + "_" + std::to_string(i));
    module.add_function(std::move(func));
  }
  // Reference edges: every k-th function points at a seeded earlier one.
  // Targets can themselves carry references, so chains (and therefore
  // transitive invalidation) arise naturally in larger modules.
  if (config.ref_every != 0) {
    for (std::size_t i = 1; i < module.size(); ++i) {
      if (i % config.ref_every != 0) {
        continue;
      }
      const std::size_t target =
          mix(config.seed ^ 0x7265662d65646765ull /* "ref-edge" */, i) % i;
      module.add_reference(module.functions()[i].name(),
                           module.functions()[target].name());
    }
  }
  return module;
}

}  // namespace tadfa::workload
