// Multi-function module generation: the driver's workload.
//
// A generated module mixes parameterized variants of the hand-built
// kernel suite (FIR, DCT, CRC, stencils...) with seeded random programs,
// giving the CompilationDriver a realistic spread of sizes, register
// pressures, and control-flow shapes. Generation is fully deterministic
// in (seed, index): the same config always produces the byte-identical
// module, which the parallel-determinism tests and throughput bench rely
// on.
#pragma once

#include <cstdint>

#include "ir/function.hpp"

namespace tadfa::workload {

struct ModuleConfig {
  /// Number of functions to generate.
  std::size_t functions = 64;
  /// Varies kernel parameters and seeds the random programs.
  std::uint64_t seed = 1;
  /// Every k-th function is a seeded random program instead of a kernel
  /// variant (0 disables random programs entirely).
  std::size_t random_every = 3;
  /// Size knob for the random programs.
  int random_target_instructions = 120;
  /// Every k-th function declares a module-level reference to a seeded
  /// earlier function (0 disables references). References chain through
  /// each other, so generated modules exercise transitive dependency
  /// invalidation, not just direct edges.
  std::size_t ref_every = 4;
};

/// Generates a mixed kernel-suite module. Function names are unique
/// (`<kernel>_<index>`), function *bodies* are unique by
/// ir::fingerprint (duplicate variants are re-salted away, so measured
/// cache-hit rates are not inflated by accidental twins), every
/// function passes ir::verify, and the result depends only on `config`.
ir::Module make_mixed_module(const ModuleConfig& config = {});

}  // namespace tadfa::workload
