#include "workload/random_program.hpp"

#include <algorithm>

#include "ir/builder.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace tadfa::workload {
namespace {

using ir::IRBuilder;
using ir::Opcode;
using ir::Reg;
using B = IRBuilder;

class Generator {
 public:
  explicit Generator(const RandomProgramConfig& config)
      : config_(config), rng_(config.seed), func_("random") {}

  ir::Function build() {
    IRBuilder b(func_);
    const Reg seed_param = func_.add_param();
    const auto entry = b.create_block("entry");
    b.set_insert_point(entry);

    // Initialize the value pool from the parameter so results depend on
    // input data (and branches can be data-dependent).
    pool_.clear();
    for (int i = 0; i < config_.value_pool; ++i) {
      const Reg v = b.fresh();
      if (i == 0) {
        b.assign(Opcode::kAdd, v, B::r(seed_param), B::i(i + 1));
      } else {
        b.assign(Opcode::kXor, v, B::r(pool_.back()),
                 B::i((i * 2654435761LL) & 0xFFFF));
      }
      pool_.push_back(v);
    }

    emitted_ = 0;
    emit_segments(b, /*depth=*/0);

    // Checksum the pool and return.
    const Reg sum = b.fresh();
    b.assign_const(sum, 0);
    for (Reg v : pool_) {
      b.assign(Opcode::kAdd, sum, B::r(sum), B::r(v));
    }
    b.ret(B::r(sum));
    return std::move(func_);
  }

 private:
  /// Picks a pool slot; irregular programs concentrate on a hot subset.
  std::size_t pick_slot() {
    if (rng_.chance(config_.irregularity * 0.7)) {
      // Hot subset: the first few values soak up most accesses.
      const std::size_t hot = std::max<std::size_t>(2, pool_.size() / 4);
      return rng_.index(hot);
    }
    return rng_.index(pool_.size());
  }

  Opcode pick_alu() {
    // Safe ops only (no div/rem — data-dependent zero divisors).
    static constexpr Opcode kOps[] = {
        Opcode::kAdd, Opcode::kSub, Opcode::kMul, Opcode::kAnd,
        Opcode::kOr,  Opcode::kXor, Opcode::kMin, Opcode::kMax};
    return kOps[rng_.index(std::size(kOps))];
  }

  void emit_straight_line(IRBuilder& b, int count) {
    for (int i = 0; i < count; ++i) {
      const std::size_t dst = pick_slot();
      const std::size_t lhs = pick_slot();
      const std::size_t rhs = pick_slot();
      const int kind = static_cast<int>(rng_.below(10));
      if (kind < 7) {
        b.assign(pick_alu(), pool_[dst], B::r(pool_[lhs]), B::r(pool_[rhs]));
      } else if (kind < 8) {
        // Bounded scratch load: addr = value & 4095.
        const Reg addr = b.band(B::r(pool_[lhs]), B::i(4095));
        b.assign_load(pool_[dst], B::r(addr));
        ++emitted_;
      } else if (kind < 9) {
        const Reg addr = b.band(B::r(pool_[lhs]), B::i(4095));
        b.store(B::r(addr), B::r(pool_[rhs]));
        ++emitted_;
      } else {
        b.assign(Opcode::kShl, pool_[dst], B::r(pool_[lhs]),
                 B::i(static_cast<std::int64_t>(rng_.below(4))));
      }
      ++emitted_;
    }
  }

  void emit_segments(IRBuilder& b, int depth) {
    while (emitted_ < config_.target_instructions) {
      const double roll = rng_.uniform();
      if (roll < config_.loop_probability && depth < config_.max_loop_depth) {
        emit_loop(b, depth);
      } else if (roll <
                 config_.loop_probability + config_.branch_probability) {
        emit_diamond(b, depth);
      } else {
        emit_straight_line(
            b, 2 + static_cast<int>(rng_.below(6)));
      }
    }
  }

  void emit_loop(IRBuilder& b, int depth) {
    const auto head = b.create_block();
    const auto body = b.create_block();
    const auto tail = b.create_block();

    const std::int64_t trips =
        rng_.range(config_.min_trip, config_.max_trip);
    const Reg counter = b.fresh();
    b.assign_const(counter, 0);
    b.jmp(head);
    ++emitted_;

    b.set_insert_point(head);
    const Reg cond = b.cmp(Opcode::kCmpLt, B::r(counter), B::i(trips));
    b.br(cond, body, tail);
    emitted_ += 2;

    b.set_insert_point(body);
    const int body_size = 3 + static_cast<int>(rng_.below(5));
    emit_straight_line(b, body_size);
    // Nested structure inside loops, occasionally.
    if (depth + 1 < config_.max_loop_depth && rng_.chance(0.35)) {
      emit_loop(b, depth + 1);
    } else if (rng_.chance(config_.branch_probability)) {
      emit_diamond(b, depth);
    }
    b.assign(Opcode::kAdd, counter, B::r(counter), B::i(1));
    b.jmp(head);
    emitted_ += 2;

    b.set_insert_point(tail);
  }

  void emit_diamond(IRBuilder& b, int depth) {
    const auto then_block = b.create_block();
    const auto else_block = b.create_block();
    const auto join = b.create_block();

    Reg cond;
    if (rng_.chance(std::max(config_.irregularity, 0.05))) {
      // Data-dependent condition — the irregularity source.
      const std::size_t s = pick_slot();
      cond = b.cmp(Opcode::kCmpLt,
                   B::r(b.band(B::r(pool_[s]), B::i(7))), B::i(4));
    } else {
      // Statically biased condition (always-true): a regular program.
      cond = b.cmp(Opcode::kCmpEq, B::i(0), B::i(0));
    }
    b.br(cond, then_block, else_block);
    emitted_ += 2;

    const int base_size = 2 + static_cast<int>(rng_.below(4));
    // Irregular programs get strongly unbalanced arms.
    const int then_size =
        base_size +
        static_cast<int>(config_.irregularity * rng_.below(8));
    const int else_size = std::max(1, base_size / 2);

    b.set_insert_point(then_block);
    emit_straight_line(b, then_size);
    if (depth < config_.max_loop_depth && rng_.chance(0.2)) {
      emit_loop(b, depth);
    }
    b.jmp(join);
    ++emitted_;

    b.set_insert_point(else_block);
    emit_straight_line(b, else_size);
    b.jmp(join);
    ++emitted_;

    b.set_insert_point(join);
  }

  RandomProgramConfig config_;
  Rng rng_;
  ir::Function func_;
  std::vector<Reg> pool_;
  int emitted_ = 0;
};

}  // namespace

ir::Function random_program(const RandomProgramConfig& config) {
  TADFA_ASSERT(config.value_pool >= 3);
  TADFA_ASSERT(config.target_instructions >= 10);
  TADFA_ASSERT(config.min_trip >= 1 && config.max_trip >= config.min_trip);
  Generator generator(config);
  ir::Function func = generator.build();
  return func;
}

}  // namespace tadfa::workload
