// Seeded random program generation.
//
// Used by the FIG2 convergence experiment ("a very irregular data usage"),
// by property tests (allocator legality over program families), and by the
// non-convergence probe example. Programs are always terminating: all loops
// are counter-bounded; irregularity enters through data-dependent branches
// and skewed access patterns, not through unbounded control flow.
#pragma once

#include <cstdint>

#include "ir/function.hpp"

namespace tadfa::workload {

struct RandomProgramConfig {
  std::uint64_t seed = 1;
  /// Roughly how many instructions to generate.
  int target_instructions = 120;
  /// Live-value pool size — controls register pressure.
  int value_pool = 12;
  /// Maximum loop nesting depth.
  int max_loop_depth = 2;
  /// Probability that a generated segment is a loop.
  double loop_probability = 0.3;
  /// Probability that a segment is an if-diamond.
  double branch_probability = 0.3;
  /// Loop trip counts are drawn from [min_trip, max_trip].
  int min_trip = 4;
  int max_trip = 24;
  /// 0 = regular (balanced diamonds, uniform pool use);
  /// 1 = irregular (data-dependent branches, skewed hot values, uneven
  /// arm sizes). The paper's predictability knob.
  double irregularity = 0.0;
};

/// Generates a well-formed, terminating function. The function takes one
/// parameter (a data seed), reads/writes a scratch array at addresses
/// [0, 4096), and returns a checksum of the value pool.
ir::Function random_program(const RandomProgramConfig& config);

}  // namespace tadfa::workload
