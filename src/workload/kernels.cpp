#include "workload/kernels.hpp"

#include <array>

#include "ir/builder.hpp"
#include "support/assert.hpp"

namespace tadfa::workload {
namespace {

using ir::IRBuilder;
using ir::Opcode;
using ir::Reg;
using B = IRBuilder;  // for B::r / B::i operand shorthands

std::int64_t input_word(std::int64_t i) { return (i * 7 + 3) % 1024; }

}  // namespace

Kernel make_vecsum(std::int64_t n) {
  TADFA_ASSERT(n > 0);
  Kernel k;
  k.name = "vecsum";
  k.pressure = Kernel::Pressure::kLow;
  k.default_args = {0, n};

  ir::Function f("vecsum");
  IRBuilder b(f);
  const Reg base = f.add_param();
  const Reg count = f.add_param();

  const auto entry = b.create_block("entry");
  const auto head = b.create_block("head");
  const auto body = b.create_block("body");
  const auto exit = b.create_block("exit");

  b.set_insert_point(entry);
  const Reg sum = b.const_int(0);
  const Reg i = b.const_int(0);
  b.jmp(head);

  b.set_insert_point(head);
  const Reg cond = b.cmp(Opcode::kCmpLt, B::r(i), B::r(count));
  b.br(cond, body, exit);

  b.set_insert_point(body);
  const Reg addr = b.add(B::r(base), B::r(i));
  const Reg value = b.load(B::r(addr));
  b.assign(Opcode::kAdd, sum, B::r(sum), B::r(value));
  b.assign(Opcode::kAdd, i, B::r(i), B::i(1));
  b.jmp(head);

  b.set_insert_point(exit);
  b.ret(B::r(sum));

  k.func = std::move(f);
  k.init_memory = [n](std::vector<std::int64_t>& mem) {
    for (std::int64_t j = 0; j < n; ++j) {
      mem[static_cast<std::size_t>(j)] = input_word(j);
    }
  };
  std::int64_t expected = 0;
  for (std::int64_t j = 0; j < n; ++j) {
    expected += input_word(j);
  }
  k.expected_result = expected;
  return k;
}

Kernel make_fir(std::int64_t n, int taps) {
  TADFA_ASSERT(n > taps && taps >= 2 && taps <= 16);
  Kernel k;
  k.name = "fir";
  k.pressure = Kernel::Pressure::kMedium;
  k.default_args = {0, n, n, static_cast<std::int64_t>(taps)};

  ir::Function f("fir");
  IRBuilder b(f);
  const Reg in_base = f.add_param();
  const Reg out_base = f.add_param();
  const Reg count = f.add_param();
  (void)f.add_param();  // taps (fixed at build time; kept for signature)

  const auto entry = b.create_block("entry");
  const auto head = b.create_block("head");
  const auto body = b.create_block("body");
  const auto exit = b.create_block("exit");

  b.set_insert_point(entry);
  std::vector<Reg> coeff(static_cast<std::size_t>(taps));
  for (int t = 0; t < taps; ++t) {
    coeff[static_cast<std::size_t>(t)] = b.const_int(t + 1);
  }
  const Reg sum = b.const_int(0);
  const Reg i = b.const_int(0);
  const Reg limit = b.sub(B::r(count), B::i(taps));
  b.jmp(head);

  b.set_insert_point(head);
  const Reg cond = b.cmp(Opcode::kCmpLt, B::r(i), B::r(limit));
  b.br(cond, body, exit);

  b.set_insert_point(body);
  const Reg acc = b.const_int(0);
  for (int t = 0; t < taps; ++t) {
    const Reg addr = b.add(B::r(in_base), B::r(i));
    const Reg addr2 = t == 0 ? addr : b.add(B::r(addr), B::i(t));
    const Reg x = b.load(B::r(t == 0 ? addr : addr2));
    const Reg prod = b.mul(B::r(coeff[static_cast<std::size_t>(t)]), B::r(x));
    b.assign(Opcode::kAdd, acc, B::r(acc), B::r(prod));
  }
  const Reg out_addr = b.add(B::r(out_base), B::r(i));
  b.store(B::r(out_addr), B::r(acc));
  b.assign(Opcode::kAdd, sum, B::r(sum), B::r(acc));
  b.assign(Opcode::kAdd, i, B::r(i), B::i(1));
  b.jmp(head);

  b.set_insert_point(exit);
  b.ret(B::r(sum));

  k.func = std::move(f);
  k.init_memory = [n](std::vector<std::int64_t>& mem) {
    for (std::int64_t j = 0; j < n; ++j) {
      mem[static_cast<std::size_t>(j)] = input_word(j);
    }
  };
  std::int64_t expected = 0;
  for (std::int64_t j = 0; j < n - taps; ++j) {
    std::int64_t acc = 0;
    for (int t = 0; t < taps; ++t) {
      acc += (t + 1) * input_word(j + t);
    }
    expected += acc;
  }
  k.expected_result = expected;
  return k;
}

Kernel make_matmul(std::int64_t n) {
  TADFA_ASSERT(n >= 2 && n <= 64);
  Kernel k;
  k.name = "matmul";
  k.pressure = Kernel::Pressure::kMedium;
  k.default_args = {n};

  ir::Function f("matmul");
  IRBuilder b(f);
  const Reg dim = f.add_param();

  const auto entry = b.create_block("entry");
  const auto i_head = b.create_block("i_head");
  const auto j_reset = b.create_block("j_reset");
  const auto j_head = b.create_block("j_head");
  const auto k_reset = b.create_block("k_reset");
  const auto k_head = b.create_block("k_head");
  const auto k_body = b.create_block("k_body");
  const auto j_tail = b.create_block("j_tail");
  const auto i_tail = b.create_block("i_tail");
  const auto exit = b.create_block("exit");

  b.set_insert_point(entry);
  const Reg nn = b.mul(B::r(dim), B::r(dim));
  const Reg b_base = b.mov(nn);
  const Reg c_base = b.add(B::r(nn), B::r(nn));
  const Reg total = b.const_int(0);
  const Reg i = b.const_int(0);
  const Reg j = b.fresh();
  const Reg kk = b.fresh();
  const Reg acc = b.fresh();
  b.jmp(i_head);

  b.set_insert_point(i_head);
  const Reg ci = b.cmp(Opcode::kCmpLt, B::r(i), B::r(dim));
  b.br(ci, j_reset, exit);

  b.set_insert_point(j_reset);
  b.assign_const(j, 0);
  b.jmp(j_head);

  b.set_insert_point(j_head);
  const Reg cj = b.cmp(Opcode::kCmpLt, B::r(j), B::r(dim));
  b.br(cj, k_reset, i_tail);

  b.set_insert_point(k_reset);
  b.assign_const(acc, 0);
  b.assign_const(kk, 0);
  b.jmp(k_head);

  b.set_insert_point(k_head);
  const Reg ck = b.cmp(Opcode::kCmpLt, B::r(kk), B::r(dim));
  b.br(ck, k_body, j_tail);

  b.set_insert_point(k_body);
  const Reg irow = b.mul(B::r(i), B::r(dim));
  const Reg a_addr = b.add(B::r(irow), B::r(kk));
  const Reg av = b.load(B::r(a_addr));
  const Reg krow = b.mul(B::r(kk), B::r(dim));
  const Reg b_off = b.add(B::r(krow), B::r(j));
  const Reg b_addr = b.add(B::r(b_base), B::r(b_off));
  const Reg bv = b.load(B::r(b_addr));
  const Reg prod = b.mul(B::r(av), B::r(bv));
  b.assign(Opcode::kAdd, acc, B::r(acc), B::r(prod));
  b.assign(Opcode::kAdd, kk, B::r(kk), B::i(1));
  b.jmp(k_head);

  b.set_insert_point(j_tail);
  const Reg c_off = b.mul(B::r(i), B::r(dim));
  const Reg c_off2 = b.add(B::r(c_off), B::r(j));
  const Reg c_addr = b.add(B::r(c_base), B::r(c_off2));
  b.store(B::r(c_addr), B::r(acc));
  b.assign(Opcode::kAdd, total, B::r(total), B::r(acc));
  b.assign(Opcode::kAdd, j, B::r(j), B::i(1));
  b.jmp(j_head);

  b.set_insert_point(i_tail);
  b.assign(Opcode::kAdd, i, B::r(i), B::i(1));
  b.jmp(i_head);

  b.set_insert_point(exit);
  b.ret(B::r(total));

  k.func = std::move(f);
  k.init_memory = [n](std::vector<std::int64_t>& mem) {
    // A at [0, n²), B at [n², 2n²).
    for (std::int64_t idx = 0; idx < n * n; ++idx) {
      mem[static_cast<std::size_t>(idx)] = input_word(idx) & 63;
      mem[static_cast<std::size_t>(n * n + idx)] = input_word(idx + 11) & 63;
    }
  };
  // Mirror.
  std::int64_t expected = 0;
  for (std::int64_t ii = 0; ii < n; ++ii) {
    for (std::int64_t jj = 0; jj < n; ++jj) {
      std::int64_t a = 0;
      for (std::int64_t key = 0; key < n; ++key) {
        const std::int64_t avv = input_word(ii * n + key) & 63;
        const std::int64_t bvv = input_word(key * n + jj + 11) & 63;
        a += avv * bvv;
      }
      expected += a;
    }
  }
  k.expected_result = expected;
  return k;
}

Kernel make_idct8(std::int64_t rows) {
  TADFA_ASSERT(rows >= 1);
  Kernel k;
  k.name = "idct8";
  k.pressure = Kernel::Pressure::kHigh;
  k.default_args = {rows};

  ir::Function f("idct8");
  IRBuilder b(f);
  const Reg row_count = f.add_param();

  const auto entry = b.create_block("entry");
  const auto head = b.create_block("head");
  const auto body = b.create_block("body");
  const auto exit = b.create_block("exit");

  b.set_insert_point(entry);
  const Reg sum = b.const_int(0);
  const Reg r = b.const_int(0);
  b.jmp(head);

  b.set_insert_point(head);
  const Reg cond = b.cmp(Opcode::kCmpLt, B::r(r), B::r(row_count));
  b.br(cond, body, exit);

  b.set_insert_point(body);
  const Reg base = b.shl(B::r(r), B::i(3));  // r*8
  std::array<Reg, 8> x{};
  for (int t = 0; t < 8; ++t) {
    const Reg addr = b.add(B::r(base), B::i(t));
    x[static_cast<std::size_t>(t)] = b.load(B::r(addr));
  }
  // Butterfly stage 1.
  const Reg s0 = b.add(B::r(x[0]), B::r(x[7]));
  const Reg s1 = b.add(B::r(x[1]), B::r(x[6]));
  const Reg s2 = b.add(B::r(x[2]), B::r(x[5]));
  const Reg s3 = b.add(B::r(x[3]), B::r(x[4]));
  const Reg d0 = b.sub(B::r(x[0]), B::r(x[7]));
  const Reg d1 = b.sub(B::r(x[1]), B::r(x[6]));
  const Reg d2 = b.sub(B::r(x[2]), B::r(x[5]));
  const Reg d3 = b.sub(B::r(x[3]), B::r(x[4]));
  // Stage 2.
  const Reg t0 = b.add(B::r(s0), B::r(s3));
  const Reg t1 = b.add(B::r(s1), B::r(s2));
  const Reg t2 = b.sub(B::r(s0), B::r(s3));
  const Reg t3 = b.sub(B::r(s1), B::r(s2));
  // Outputs.
  const Reg y0 = b.add(B::r(t0), B::r(t1));
  const Reg y4 = b.sub(B::r(t0), B::r(t1));
  const Reg t3h = b.shr(B::r(t3), B::i(1));
  const Reg y2 = b.add(B::r(t2), B::r(t3h));
  const Reg t2h = b.shr(B::r(t2), B::i(1));
  const Reg y6 = b.sub(B::r(t2h), B::r(t3));
  const Reg d1h = b.shr(B::r(d1), B::i(1));
  const Reg y1 = b.add(B::r(d0), B::r(d1h));
  const Reg d2h = b.shr(B::r(d2), B::i(1));
  const Reg y3 = b.sub(B::r(d1), B::r(d2h));
  const Reg d3h = b.shr(B::r(d3), B::i(1));
  const Reg y5 = b.add(B::r(d2), B::r(d3h));
  const Reg d0h = b.shr(B::r(d0), B::i(1));
  const Reg y7 = b.sub(B::r(d0h), B::r(d3));

  const std::array<Reg, 8> y = {y0, y1, y2, y3, y4, y5, y6, y7};
  const Reg out_base = b.add(B::r(base), B::i(8 * 4096));
  for (int t = 0; t < 8; ++t) {
    const Reg addr = b.add(B::r(out_base), B::i(t));
    b.store(B::r(addr), B::r(y[static_cast<std::size_t>(t)]));
    b.assign(Opcode::kAdd, sum, B::r(sum),
             B::r(y[static_cast<std::size_t>(t)]));
  }
  b.assign(Opcode::kAdd, r, B::r(r), B::i(1));
  b.jmp(head);

  b.set_insert_point(exit);
  b.ret(B::r(sum));

  k.func = std::move(f);
  k.init_memory = [rows](std::vector<std::int64_t>& mem) {
    for (std::int64_t j = 0; j < rows * 8; ++j) {
      mem[static_cast<std::size_t>(j)] = input_word(j) - 512;
    }
  };
  // Mirror computation.
  std::int64_t expected = 0;
  for (std::int64_t row = 0; row < rows; ++row) {
    std::array<std::int64_t, 8> x{};
    for (int t = 0; t < 8; ++t) {
      x[static_cast<std::size_t>(t)] = input_word(row * 8 + t) - 512;
    }
    const std::int64_t s0 = x[0] + x[7], s1 = x[1] + x[6];
    const std::int64_t s2 = x[2] + x[5], s3 = x[3] + x[4];
    const std::int64_t d0 = x[0] - x[7], d1 = x[1] - x[6];
    const std::int64_t d2 = x[2] - x[5], d3 = x[3] - x[4];
    const std::int64_t t0 = s0 + s3, t1 = s1 + s2;
    const std::int64_t t2 = s0 - s3, t3 = s1 - s2;
    const std::int64_t ys[8] = {t0 + t1,          d0 + (d1 >> 1),
                                t2 + (t3 >> 1),   d1 - (d2 >> 1),
                                t0 - t1,          d2 + (d3 >> 1),
                                (t2 >> 1) - t3,   (d0 >> 1) - d3};
    for (std::int64_t yv : ys) {
      expected += yv;
    }
  }
  k.expected_result = expected;
  return k;
}

Kernel make_crc32(std::int64_t n) {
  TADFA_ASSERT(n > 0);
  Kernel k;
  k.name = "crc32";
  k.pressure = Kernel::Pressure::kLow;
  k.default_args = {0, n};

  ir::Function f("crc32");
  IRBuilder b(f);
  const Reg base = f.add_param();
  const Reg count = f.add_param();

  const auto entry = b.create_block("entry");
  const auto head = b.create_block("head");
  const auto body = b.create_block("body");
  const auto exit = b.create_block("exit");

  b.set_insert_point(entry);
  const Reg crc = b.const_int(0xFFFFFFFFLL);
  const Reg poly = b.const_int(0xEDB88320LL);
  const Reg i = b.const_int(0);
  b.jmp(head);

  b.set_insert_point(head);
  const Reg cond = b.cmp(Opcode::kCmpLt, B::r(i), B::r(count));
  b.br(cond, body, exit);

  b.set_insert_point(body);
  const Reg addr = b.add(B::r(base), B::r(i));
  const Reg w = b.load(B::r(addr));
  const Reg wb = b.band(B::r(w), B::i(0xFF));
  b.assign(Opcode::kXor, crc, B::r(crc), B::r(wb));
  for (int bit = 0; bit < 8; ++bit) {
    const Reg lsb = b.band(B::r(crc), B::i(1));
    const Reg shifted = b.shr(B::r(crc), B::i(1));
    const Reg mask = b.neg(B::r(lsb));
    const Reg masked_poly = b.band(B::r(mask), B::r(poly));
    b.assign(Opcode::kXor, crc, B::r(shifted), B::r(masked_poly));
  }
  b.assign(Opcode::kAdd, i, B::r(i), B::i(1));
  b.jmp(head);

  b.set_insert_point(exit);
  const Reg out = b.bxor(B::r(crc), B::i(0xFFFFFFFFLL));
  b.ret(B::r(out));

  k.func = std::move(f);
  k.init_memory = [n](std::vector<std::int64_t>& mem) {
    for (std::int64_t j = 0; j < n; ++j) {
      mem[static_cast<std::size_t>(j)] = input_word(j);
    }
  };
  // Mirror.
  std::uint64_t crc_v = 0xFFFFFFFFULL;
  for (std::int64_t j = 0; j < n; ++j) {
    crc_v ^= static_cast<std::uint64_t>(input_word(j)) & 0xFFU;
    for (int bit = 0; bit < 8; ++bit) {
      const std::uint64_t lsb = crc_v & 1U;
      const std::uint64_t shifted = crc_v >> 1;
      const std::uint64_t mask = static_cast<std::uint64_t>(
          -static_cast<std::int64_t>(lsb));
      crc_v = shifted ^ (mask & 0xEDB88320ULL);
    }
  }
  k.expected_result = static_cast<std::int64_t>(crc_v ^ 0xFFFFFFFFULL);
  return k;
}

Kernel make_stencil3(std::int64_t n) {
  TADFA_ASSERT(n >= 8);
  Kernel k;
  k.name = "stencil3";
  k.pressure = Kernel::Pressure::kMedium;
  k.default_args = {n};

  ir::Function f("stencil3");
  IRBuilder b(f);
  const Reg count = f.add_param();

  const auto entry = b.create_block("entry");
  const auto h1 = b.create_block("pass1_head");
  const auto b1 = b.create_block("pass1_body");
  const auto h2 = b.create_block("pass2_head");
  const auto b2 = b.create_block("pass2_body");
  const auto exit = b.create_block("exit");

  b.set_insert_point(entry);
  const Reg tmp_base = b.mov(count);  // tmp array at [n, 2n)
  const Reg limit = b.sub(B::r(count), B::i(1));
  const Reg i = b.const_int(1);
  const Reg sum = b.const_int(0);
  b.jmp(h1);

  b.set_insert_point(h1);
  const Reg c1 = b.cmp(Opcode::kCmpLt, B::r(i), B::r(limit));
  b.br(c1, b1, h2);

  b.set_insert_point(b1);
  const Reg am = b.sub(B::r(i), B::i(1));
  const Reg left = b.load(B::r(am));
  const Reg mid = b.load(B::r(i));
  const Reg ap = b.add(B::r(i), B::i(1));
  const Reg right = b.load(B::r(ap));
  const Reg mid2 = b.shl(B::r(mid), B::i(1));
  const Reg s1 = b.add(B::r(left), B::r(mid2));
  const Reg s2 = b.add(B::r(s1), B::r(right));
  const Reg v1 = b.shr(B::r(s2), B::i(2));
  const Reg ta = b.add(B::r(tmp_base), B::r(i));
  b.store(B::r(ta), B::r(v1));
  b.assign(Opcode::kAdd, i, B::r(i), B::i(1));
  b.jmp(h1);

  b.set_insert_point(h2);
  const Reg j = b.const_int(2);
  const Reg limit2 = b.sub(B::r(count), B::i(2));
  const auto h2_check = b.create_block("pass2_check");
  b.jmp(h2_check);

  b.set_insert_point(h2_check);
  const Reg c2 = b.cmp(Opcode::kCmpLt, B::r(j), B::r(limit2));
  b.br(c2, b2, exit);

  b.set_insert_point(b2);
  const Reg tm = b.add(B::r(tmp_base), B::r(j));
  const Reg tl_addr = b.sub(B::r(tm), B::i(1));
  const Reg tl = b.load(B::r(tl_addr));
  const Reg tc = b.load(B::r(tm));
  const Reg tr_addr = b.add(B::r(tm), B::i(1));
  const Reg tr = b.load(B::r(tr_addr));
  const Reg tc2 = b.shl(B::r(tc), B::i(1));
  const Reg u1 = b.add(B::r(tl), B::r(tc2));
  const Reg u2 = b.add(B::r(u1), B::r(tr));
  const Reg v2 = b.shr(B::r(u2), B::i(2));
  b.assign(Opcode::kAdd, sum, B::r(sum), B::r(v2));
  b.assign(Opcode::kAdd, j, B::r(j), B::i(1));
  b.jmp(h2_check);

  b.set_insert_point(exit);
  b.ret(B::r(sum));

  k.func = std::move(f);
  k.init_memory = [n](std::vector<std::int64_t>& mem) {
    for (std::int64_t idx = 0; idx < n; ++idx) {
      mem[static_cast<std::size_t>(idx)] = input_word(idx);
    }
  };
  // Mirror: pass 1 writes tmp[1..n-2]; pass 2 sums over j in [2, n-2).
  std::vector<std::int64_t> tmp(static_cast<std::size_t>(n), 0);
  for (std::int64_t idx = 1; idx < n - 1; ++idx) {
    tmp[static_cast<std::size_t>(idx)] =
        (input_word(idx - 1) + 2 * input_word(idx) + input_word(idx + 1)) >> 2;
  }
  std::int64_t expected = 0;
  for (std::int64_t idx = 2; idx < n - 2; ++idx) {
    const std::int64_t v = (tmp[static_cast<std::size_t>(idx - 1)] +
                            2 * tmp[static_cast<std::size_t>(idx)] +
                            tmp[static_cast<std::size_t>(idx + 1)]) >>
                           2;
    expected += v;
  }
  k.expected_result = expected;
  return k;
}

Kernel make_poly7(std::int64_t n) {
  TADFA_ASSERT(n > 0);
  Kernel k;
  k.name = "poly7";
  k.pressure = Kernel::Pressure::kMedium;
  k.default_args = {0, n};

  ir::Function f("poly7");
  IRBuilder b(f);
  const Reg base = f.add_param();
  const Reg count = f.add_param();

  const auto entry = b.create_block("entry");
  const auto head = b.create_block("head");
  const auto body = b.create_block("body");
  const auto exit = b.create_block("exit");

  b.set_insert_point(entry);
  std::array<Reg, 8> c{};
  for (int j = 0; j < 8; ++j) {
    c[static_cast<std::size_t>(j)] = b.const_int(j * 3 + 1);
  }
  const Reg sum = b.const_int(0);
  const Reg i = b.const_int(0);
  b.jmp(head);

  b.set_insert_point(head);
  const Reg cond = b.cmp(Opcode::kCmpLt, B::r(i), B::r(count));
  b.br(cond, body, exit);

  b.set_insert_point(body);
  const Reg addr = b.add(B::r(base), B::r(i));
  const Reg x = b.load(B::r(addr));
  const Reg y = b.mov(c[7]);
  for (int j = 6; j >= 0; --j) {
    b.assign(Opcode::kMul, y, B::r(y), B::r(x));
    b.assign(Opcode::kAdd, y, B::r(y), B::r(c[static_cast<std::size_t>(j)]));
  }
  b.assign(Opcode::kAdd, sum, B::r(sum), B::r(y));
  b.assign(Opcode::kAdd, i, B::r(i), B::i(1));
  b.jmp(head);

  b.set_insert_point(exit);
  b.ret(B::r(sum));

  k.func = std::move(f);
  k.init_memory = [n](std::vector<std::int64_t>& mem) {
    for (std::int64_t j = 0; j < n; ++j) {
      mem[static_cast<std::size_t>(j)] = input_word(j) & 15;
    }
  };
  std::uint64_t expected = 0;
  for (std::int64_t j = 0; j < n; ++j) {
    const std::uint64_t x = static_cast<std::uint64_t>(input_word(j) & 15);
    std::uint64_t y = 7 * 3 + 1;
    for (int t = 6; t >= 0; --t) {
      y = y * x + static_cast<std::uint64_t>(t * 3 + 1);
    }
    expected += y;
  }
  k.expected_result = static_cast<std::int64_t>(expected);
  return k;
}

Kernel make_accumulators(std::int64_t n, int kAcc) {
  TADFA_ASSERT(n > 0 && kAcc >= 2 && kAcc <= 48);
  Kernel k;
  k.name = "accumulators";
  k.pressure = Kernel::Pressure::kHigh;
  k.default_args = {n};

  ir::Function f("accumulators");
  IRBuilder b(f);
  const Reg count = f.add_param();

  const auto entry = b.create_block("entry");
  const auto head = b.create_block("head");
  const auto body = b.create_block("body");
  const auto exit = b.create_block("exit");

  b.set_insert_point(entry);
  std::vector<Reg> acc(static_cast<std::size_t>(kAcc));
  for (int j = 0; j < kAcc; ++j) {
    acc[static_cast<std::size_t>(j)] = b.const_int(j);
  }
  const Reg i = b.const_int(0);
  b.jmp(head);

  b.set_insert_point(head);
  const Reg cond = b.cmp(Opcode::kCmpLt, B::r(i), B::r(count));
  b.br(cond, body, exit);

  b.set_insert_point(body);
  for (int j = 0; j < kAcc; ++j) {
    const Reg a = acc[static_cast<std::size_t>(j)];
    if (j % 3 == 0) {
      b.assign(Opcode::kAdd, a, B::r(a), B::r(i));
    } else if (j % 3 == 1) {
      b.assign(Opcode::kXor, a, B::r(a), B::r(i));
    } else {
      b.assign(Opcode::kAdd, a, B::r(a),
               B::r(acc[static_cast<std::size_t>(j - 1)]));
    }
  }
  b.assign(Opcode::kAdd, i, B::r(i), B::i(1));
  b.jmp(head);

  b.set_insert_point(exit);
  const Reg total = b.const_int(0);
  for (int j = 0; j < kAcc; ++j) {
    b.assign(Opcode::kAdd, total, B::r(total),
             B::r(acc[static_cast<std::size_t>(j)]));
  }
  b.ret(B::r(total));

  k.func = std::move(f);
  k.init_memory = [](std::vector<std::int64_t>&) {};
  // Mirror.
  std::vector<std::uint64_t> av(static_cast<std::size_t>(kAcc));
  for (int j = 0; j < kAcc; ++j) {
    av[static_cast<std::size_t>(j)] = static_cast<std::uint64_t>(j);
  }
  for (std::int64_t step = 0; step < n; ++step) {
    for (int j = 0; j < kAcc; ++j) {
      auto& a = av[static_cast<std::size_t>(j)];
      if (j % 3 == 0) {
        a += static_cast<std::uint64_t>(step);
      } else if (j % 3 == 1) {
        a ^= static_cast<std::uint64_t>(step);
      } else {
        a += av[static_cast<std::size_t>(j - 1)];
      }
    }
  }
  std::uint64_t grand = 0;
  for (std::uint64_t a : av) {
    grand += a;
  }
  k.expected_result = static_cast<std::int64_t>(grand);
  return k;
}

Kernel make_hot_cold(std::int64_t n, int hot, int cold) {
  TADFA_ASSERT(n > 0 && hot >= 2 && hot <= 8 && cold >= 0 && cold <= 56);
  Kernel k;
  k.name = "hot_cold";
  k.pressure =
      cold >= 24 ? Kernel::Pressure::kHigh : Kernel::Pressure::kMedium;
  k.default_args = {n};

  ir::Function f("hot_cold");
  IRBuilder b(f);
  const Reg count = f.add_param();

  const auto entry = b.create_block("entry");
  const auto head = b.create_block("head");
  const auto body = b.create_block("body");
  const auto exit = b.create_block("exit");

  b.set_insert_point(entry);
  std::vector<Reg> hot_regs(static_cast<std::size_t>(hot));
  for (int j = 0; j < hot; ++j) {
    hot_regs[static_cast<std::size_t>(j)] = b.const_int(j + 1);
  }
  std::vector<Reg> cold_regs(static_cast<std::size_t>(cold));
  for (int j = 0; j < cold; ++j) {
    cold_regs[static_cast<std::size_t>(j)] = b.const_int(100 + j);
  }
  const Reg i = b.const_int(0);
  b.jmp(head);

  b.set_insert_point(head);
  const Reg cond = b.cmp(Opcode::kCmpLt, B::r(i), B::r(count));
  b.br(cond, body, exit);

  b.set_insert_point(body);
  // Hot chain: 8 unrolled updates cycling over the hot registers.
  for (int u = 0; u < 8; ++u) {
    const Reg dst = hot_regs[static_cast<std::size_t>(u % hot)];
    const Reg src = hot_regs[static_cast<std::size_t>((u + 1) % hot)];
    if (u % 2 == 0) {
      b.assign(Opcode::kAdd, dst, B::r(dst), B::r(src));
    } else {
      b.assign(Opcode::kXor, dst, B::r(dst), B::r(src));
    }
  }
  // Cold values: one cheap touch each, keeping them live throughout.
  for (int j = 0; j < cold; ++j) {
    const Reg c = cold_regs[static_cast<std::size_t>(j)];
    b.assign(Opcode::kAdd, c, B::r(c), B::i(1));
  }
  b.assign(Opcode::kAdd, i, B::r(i), B::i(1));
  b.jmp(head);

  b.set_insert_point(exit);
  const Reg total = b.const_int(0);
  for (int j = 0; j < hot; ++j) {
    b.assign(Opcode::kAdd, total, B::r(total),
             B::r(hot_regs[static_cast<std::size_t>(j)]));
  }
  for (int j = 0; j < cold; ++j) {
    b.assign(Opcode::kAdd, total, B::r(total),
             B::r(cold_regs[static_cast<std::size_t>(j)]));
  }
  b.ret(B::r(total));

  k.func = std::move(f);
  k.init_memory = [](std::vector<std::int64_t>&) {};
  // Mirror.
  std::vector<std::uint64_t> hv(static_cast<std::size_t>(hot));
  for (int j = 0; j < hot; ++j) {
    hv[static_cast<std::size_t>(j)] = static_cast<std::uint64_t>(j + 1);
  }
  std::vector<std::uint64_t> cv(static_cast<std::size_t>(cold));
  for (int j = 0; j < cold; ++j) {
    cv[static_cast<std::size_t>(j)] = static_cast<std::uint64_t>(100 + j);
  }
  for (std::int64_t step = 0; step < n; ++step) {
    for (int u = 0; u < 8; ++u) {
      auto& dst = hv[static_cast<std::size_t>(u % hot)];
      const auto src = hv[static_cast<std::size_t>((u + 1) % hot)];
      if (u % 2 == 0) {
        dst += src;
      } else {
        dst ^= src;
      }
    }
    for (auto& c : cv) {
      c += 1;
    }
  }
  std::uint64_t grand = 0;
  for (auto v : hv) {
    grand += v;
  }
  for (auto v : cv) {
    grand += v;
  }
  k.expected_result = static_cast<std::int64_t>(grand);
  return k;
}

Kernel make_counter(std::int64_t n) {
  TADFA_ASSERT(n > 0);
  Kernel k;
  k.name = "counter";
  k.pressure = Kernel::Pressure::kLow;
  k.default_args = {n};

  ir::Function f("counter");
  IRBuilder b(f);
  const Reg count = f.add_param();

  const auto entry = b.create_block("entry");
  const auto head = b.create_block("head");
  const auto body = b.create_block("body");
  const auto exit = b.create_block("exit");

  b.set_insert_point(entry);
  const Reg i = b.const_int(0);
  b.jmp(head);

  b.set_insert_point(head);
  const Reg cond = b.cmp(Opcode::kCmpLt, B::r(i), B::r(count));
  b.br(cond, body, exit);

  b.set_insert_point(body);
  b.assign(Opcode::kAdd, i, B::r(i), B::i(1));
  b.jmp(head);

  b.set_insert_point(exit);
  b.ret(B::r(i));

  k.func = std::move(f);
  k.init_memory = [](std::vector<std::int64_t>&) {};
  k.expected_result = n;
  return k;
}

std::vector<Kernel> standard_suite() {
  std::vector<Kernel> out;
  out.push_back(make_vecsum());
  out.push_back(make_fir());
  out.push_back(make_matmul());
  out.push_back(make_idct8());
  out.push_back(make_crc32());
  out.push_back(make_stencil3());
  out.push_back(make_poly7());
  out.push_back(make_accumulators());
  out.push_back(make_hot_cold());
  out.push_back(make_counter());
  return out;
}

std::optional<Kernel> make_kernel(const std::string& name) {
  for (Kernel& k : standard_suite()) {
    if (k.name == name) {
      return std::move(k);
    }
  }
  return std::nullopt;
}

}  // namespace tadfa::workload
