// Frontend over the hand-built kernel suite and the module generator.
#pragma once

#include "frontend/frontend.hpp"

namespace tadfa::frontend {

/// "kernels": the source is a whitespace-separated list of workload
/// specs rather than program text. Each token is one of
///
///   <kernel>                 one kernel by name (fir, matmul, crc32...)
///   suite                    the whole standard suite
///   mixed:k=v[,k=v...]       a generated mixed module
///                            (keys: functions, seed, random_every,
///                             random_target, ref_every)
///
/// and contributes its functions (and, for mixed, its reference edges)
/// to the module in token order. Duplicate function names across tokens
/// are an error, as is an empty spec.
class KernelFrontend final : public Frontend {
 public:
  std::string name() const override { return "kernels"; }
  std::string describe() const override;
  ParseResult parse(const std::string& source) const override;
};

}  // namespace tadfa::frontend
