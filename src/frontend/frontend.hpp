// The frontend seam: multi-source ingestion behind one IR.
//
// Everything downstream of here — dataflow analyses, the Sec. 4 thermal
// transformations, scheduling, the service — is defined over ir::Module.
// A Frontend is the only thing allowed to know what a source *looks*
// like: it turns a source string into a module, or into structured
// diagnostics with line/column positions. The registry makes frontends
// addressable by name from the CLI (--frontend=NAME), the wire protocol
// (CompileRequest.frontend), and the grid-differential tests, which run
// the same program through every frontend x machine pair.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ir/function.hpp"

namespace tadfa::frontend {

/// One parse error, positioned in the source when the frontend can say
/// where. line/column are 1-based; 0 means "not applicable" (e.g. an
/// empty source, or a module-level consistency error).
struct Diagnostic {
  std::size_t line = 0;
  std::size_t column = 0;
  std::string message;

  /// "line 3:7: expected ';'" / "line 3: ..." / "...".
  std::string to_string() const;
};

/// Parse outcome: a module, or at least one diagnostic — never neither
/// (a source that parses to nothing useful is an error, not an empty
/// module), and on failure never a module.
struct ParseResult {
  std::optional<ir::Module> module;
  std::vector<Diagnostic> diagnostics;

  bool ok() const { return module.has_value(); }

  static ParseResult failure(Diagnostic diag) {
    ParseResult r;
    r.diagnostics.push_back(std::move(diag));
    return r;
  }
  static ParseResult success(ir::Module m) {
    ParseResult r;
    r.module = std::move(m);
    return r;
  }

  /// All diagnostics joined with "; " (for wire errors and CLI output).
  std::string diagnostics_text() const;
};

class Frontend {
 public:
  virtual ~Frontend() = default;

  /// Stable registry key ("tir", "kernels", "texpr").
  virtual std::string name() const = 0;
  /// One operator-facing line for list-frontends.
  virtual std::string describe() const = 0;
  virtual ParseResult parse(const std::string& source) const = 0;
};

class FrontendRegistry {
 public:
  /// Registers a frontend (duplicate names are a bug).
  void add(std::unique_ptr<Frontend> fe);

  /// Frontend by name; nullptr when unknown.
  const Frontend* find(const std::string& name) const;

  /// Registration order (the order list-frontends prints).
  const std::vector<std::unique_ptr<Frontend>>& entries() const {
    return entries_;
  }
  std::vector<std::string> names() const;

 private:
  std::vector<std::unique_ptr<Frontend>> entries_;
};

/// The built-in frontends, constructed once:
///   tir     - the canonical IR text format (docs/FORMATS.md)
///   kernels - the hand-built kernel suite / generated mixed modules
///   texpr   - the thermal-expression language (let/while/if/arrays)
const FrontendRegistry& default_frontend_registry();

/// Convenience over default_frontend_registry().find(name).
const Frontend* find_frontend(const std::string& name);

}  // namespace tadfa::frontend
