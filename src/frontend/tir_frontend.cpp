#include "frontend/tir_frontend.hpp"

#include "ir/parser.hpp"

namespace tadfa::frontend {

std::string TirFrontend::describe() const {
  return "canonical IR text format (docs/FORMATS.md)";
}

ParseResult TirFrontend::parse(const std::string& source) const {
  ir::ParseError error;
  std::optional<ir::Module> module = ir::parse_module(source, &error);
  if (!module) {
    // The .tir parser is line-oriented; it reports no column.
    return ParseResult::failure({error.line, 0, error.message});
  }
  if (module->empty()) {
    return ParseResult::failure({0, 0, "source defines no functions"});
  }
  return ParseResult::success(std::move(*module));
}

}  // namespace tadfa::frontend
