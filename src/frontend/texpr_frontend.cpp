#include "frontend/texpr_frontend.hpp"

#include <cctype>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ir/builder.hpp"

namespace tadfa::frontend {
namespace {

// --- Lexer -------------------------------------------------------------------

enum class TokKind { kEnd, kIdent, kInt, kPunct };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  std::int64_t value = 0;  // kInt only
  std::size_t line = 1;
  std::size_t column = 1;
};

/// Internal fail-fast unwind; converted to a ParseResult at the API edge.
struct ParseFailure {
  Diagnostic diag;
};

[[noreturn]] void fail(std::size_t line, std::size_t column,
                       std::string message) {
  throw ParseFailure{{line, column, std::move(message)}};
}

[[noreturn]] void fail_at(const Token& tok, std::string message) {
  fail(tok.line, tok.column, std::move(message));
}

std::string describe_token(const Token& tok) {
  switch (tok.kind) {
    case TokKind::kEnd:
      return "end of input";
    case TokKind::kInt:
      return "integer '" + tok.text + "'";
    default:
      return "'" + tok.text + "'";
  }
}

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token tok = current_;
    advance();
    return tok;
  }

 private:
  void advance() {
    skip_ignored();
    current_ = Token{};
    current_.line = line_;
    current_.column = column_;
    if (pos_ >= src_.size()) {
      current_.kind = TokKind::kEnd;
      return;
    }
    char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      lex_ident();
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      lex_int();
    } else {
      lex_punct();
    }
  }

  void skip_ignored() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') {
          consume();
        }
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        consume();
      } else {
        break;
      }
    }
  }

  void lex_ident() {
    current_.kind = TokKind::kIdent;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
        break;
      }
      current_.text.push_back(c);
      consume();
    }
  }

  void lex_int() {
    current_.kind = TokKind::kInt;
    constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
    std::int64_t value = 0;
    while (pos_ < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
      int digit = src_[pos_] - '0';
      if (value > (kMax - digit) / 10) {
        fail(current_.line, current_.column, "integer literal out of range");
      }
      value = value * 10 + digit;
      current_.text.push_back(src_[pos_]);
      consume();
    }
    current_.value = value;
  }

  void lex_punct() {
    current_.kind = TokKind::kPunct;
    char c = src_[pos_];
    current_.text.push_back(c);
    consume();
    // Two-character operators: == != <= >= << >>
    if (pos_ < src_.size()) {
      char d = src_[pos_];
      bool two = ((c == '=' || c == '!' || c == '<' || c == '>') && d == '=') ||
                 (c == '<' && d == '<') || (c == '>' && d == '>');
      if (two) {
        current_.text.push_back(d);
        consume();
      }
    }
    static const char* kKnown[] = {"(", ")", "{", "}", "[", "]", ",", ";",
                                   "=", "==", "!=", "<", "<=", ">", ">=",
                                   "<<", ">>", "+", "-", "*", "/", "%",
                                   "&", "|", "^", "~"};
    for (const char* p : kKnown) {
      if (current_.text == p) {
        return;
      }
    }
    fail(current_.line, current_.column,
         "unexpected character '" + current_.text + "'");
  }

  void consume() {
    if (src_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
  Token current_;
};

// --- Expression AST ----------------------------------------------------------

struct Expr {
  enum class Kind { kInt, kVar, kIndex, kUnary, kBinary };
  Kind kind = Kind::kInt;
  std::int64_t value = 0;       // kInt
  std::string name;             // kVar / kIndex (the array variable)
  ir::Opcode op = ir::Opcode::kNop;  // kUnary / kBinary
  std::unique_ptr<Expr> a;      // kIndex: index; kUnary/kBinary: lhs
  std::unique_ptr<Expr> b;      // kBinary: rhs
  std::size_t line = 0;
  std::size_t column = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Binary operators by precedence level, loosest first. All operators at
/// one level are left-associative.
struct OpLevel {
  const char* text;
  ir::Opcode op;
  int level;
};
constexpr OpLevel kBinaryOps[] = {
    {"|", ir::Opcode::kOr, 0},     {"^", ir::Opcode::kXor, 1},
    {"&", ir::Opcode::kAnd, 2},    {"==", ir::Opcode::kCmpEq, 3},
    {"!=", ir::Opcode::kCmpNe, 3}, {"<", ir::Opcode::kCmpLt, 4},
    {"<=", ir::Opcode::kCmpLe, 4}, {">", ir::Opcode::kCmpGt, 4},
    {">=", ir::Opcode::kCmpGe, 4}, {"<<", ir::Opcode::kShl, 5},
    {">>", ir::Opcode::kShr, 5},   {"+", ir::Opcode::kAdd, 6},
    {"-", ir::Opcode::kSub, 6},    {"*", ir::Opcode::kMul, 7},
    {"/", ir::Opcode::kDiv, 7},    {"%", ir::Opcode::kRem, 7},
};
constexpr int kMaxLevel = 8;  // unary binds tighter than every level above

// --- Parser + lowering -------------------------------------------------------

/// Parses statements and lowers them through ir::IRBuilder as it goes;
/// only expressions get a transient AST (so `x = e` can route the root
/// of `e` into x's register instead of a temp + mov).
class Parser {
 public:
  explicit Parser(const std::string& source) : lex_(source) {}

  ir::Module parse_module() {
    if (lex_.peek().kind == TokKind::kEnd) {
      fail(0, 0, "empty source: expected at least one 'fn' definition");
    }
    ir::Module module;
    while (lex_.peek().kind != TokKind::kEnd) {
      parse_function(module);
    }
    return module;
  }

 private:
  // --- Token helpers ---------------------------------------------------------

  bool at_punct(const char* text) const {
    return lex_.peek().kind == TokKind::kPunct && lex_.peek().text == text;
  }

  bool at_keyword(const char* word) const {
    return lex_.peek().kind == TokKind::kIdent && lex_.peek().text == word;
  }

  Token expect_punct(const char* text) {
    if (!at_punct(text)) {
      fail_at(lex_.peek(), std::string("expected '") + text + "', found " +
                               describe_token(lex_.peek()));
    }
    return lex_.take();
  }

  Token expect_ident(const char* what) {
    if (lex_.peek().kind != TokKind::kIdent) {
      fail_at(lex_.peek(), std::string("expected ") + what + ", found " +
                               describe_token(lex_.peek()));
    }
    return lex_.take();
  }

  // --- Scopes ----------------------------------------------------------------

  ir::Reg lookup(const Token& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name.text);
      if (found != it->end()) {
        return found->second;
      }
    }
    fail_at(name, "unknown variable '" + name.text +
                      "' (declare it with 'let' or a parameter)");
  }

  void declare(const Token& name, ir::Reg reg) {
    auto [it, inserted] = scopes_.back().emplace(name.text, reg);
    (void)it;
    if (!inserted) {
      fail_at(name, "variable '" + name.text +
                        "' is already declared in this scope");
    }
  }

  // --- Functions -------------------------------------------------------------

  void parse_function(ir::Module& module) {
    if (!at_keyword("fn")) {
      fail_at(lex_.peek(),
              "expected 'fn', found " + describe_token(lex_.peek()));
    }
    lex_.take();
    Token name = expect_ident("function name");
    if (module.find(name.text) != nullptr) {
      fail_at(name, "function '" + name.text + "' is already defined");
    }
    ir::Function func(name.text);
    builder_ = std::make_unique<ir::IRBuilder>(func);
    scopes_.clear();
    scopes_.emplace_back();
    block_counter_ = 0;

    expect_punct("(");
    if (!at_punct(")")) {
      while (true) {
        Token param = expect_ident("parameter name");
        declare(param, func.add_param());
        if (at_punct(",")) {
          lex_.take();
          continue;
        }
        break;
      }
    }
    expect_punct(")");

    ir::BlockId entry = builder_->create_block("entry");
    builder_->set_insert_point(entry);
    parse_braced_body();
    if (!current_block_terminated()) {
      builder_->ret();
    }
    builder_.reset();
    module.add_function(std::move(func));
  }

  bool current_block_terminated() {
    return builder_->function().block(builder_->insert_point()).has_terminator();
  }

  /// "{ stmt* }" in a fresh lexical scope.
  void parse_braced_body() {
    expect_punct("{");
    scopes_.emplace_back();
    while (!at_punct("}")) {
      if (lex_.peek().kind == TokKind::kEnd) {
        fail_at(lex_.peek(), "expected '}' before end of input");
      }
      parse_statement();
    }
    lex_.take();
    scopes_.pop_back();
  }

  // --- Statements ------------------------------------------------------------

  void parse_statement() {
    if (current_block_terminated()) {
      fail_at(lex_.peek(), "statement is unreachable (the enclosing block "
                           "already returned)");
    }
    if (at_keyword("let")) {
      parse_let();
    } else if (at_keyword("while")) {
      parse_while();
    } else if (at_keyword("if")) {
      parse_if();
    } else if (at_keyword("return")) {
      parse_return();
    } else if (lex_.peek().kind == TokKind::kIdent) {
      parse_assignment();
    } else {
      fail_at(lex_.peek(),
              "expected a statement ('let', 'while', 'if', 'return', or an "
              "assignment), found " +
                  describe_token(lex_.peek()));
    }
  }

  void parse_let() {
    lex_.take();  // let
    Token name = expect_ident("variable name");
    expect_punct("=");
    ExprPtr value = parse_expr();
    expect_punct(";");
    ir::Reg dest = builder_->fresh();
    lower_into(dest, *value);
    declare(name, dest);
  }

  void parse_assignment() {
    Token name = lex_.take();
    if (at_punct("[")) {
      // Array store: name[index] = value;
      ir::Reg base = lookup(name);
      lex_.take();
      ExprPtr index = parse_expr();
      expect_punct("]");
      expect_punct("=");
      ExprPtr value = parse_expr();
      expect_punct(";");
      ir::Operand addr = ir::IRBuilder::r(
          builder_->add(ir::IRBuilder::r(base), lower(*index)));
      builder_->store(addr, lower(*value));
      return;
    }
    ir::Reg dest = lookup(name);
    expect_punct("=");
    ExprPtr value = parse_expr();
    expect_punct(";");
    lower_into(dest, *value);
  }

  void parse_while() {
    lex_.take();  // while
    int n = block_counter_++;
    std::string prefix = "loop" + std::to_string(n);
    ir::BlockId head = builder_->create_block(prefix + "_head");
    ir::BlockId body = builder_->create_block(prefix + "_body");
    ir::BlockId end = builder_->create_block(prefix + "_end");

    builder_->jmp(head);
    builder_->set_insert_point(head);
    expect_punct("(");
    ExprPtr cond = parse_expr();
    expect_punct(")");
    builder_->br(to_reg(lower(*cond)), body, end);

    builder_->set_insert_point(body);
    parse_braced_body();
    if (!current_block_terminated()) {
      builder_->jmp(head);
    }
    builder_->set_insert_point(end);
  }

  void parse_if() {
    lex_.take();  // if
    int n = block_counter_++;
    std::string prefix = "if" + std::to_string(n);

    expect_punct("(");
    ExprPtr cond = parse_expr();
    expect_punct(")");
    ir::Reg cond_reg = to_reg(lower(*cond));

    // An else block always exists (holding just "jmp end" when the
    // source has no else clause) so the conditional branch can be
    // emitted before either body is parsed.
    ir::BlockId then_block = builder_->create_block(prefix + "_then");
    ir::BlockId else_block = builder_->create_block(prefix + "_else");
    ir::BlockId end = builder_->create_block(prefix + "_end");
    builder_->br(cond_reg, then_block, else_block);

    builder_->set_insert_point(then_block);
    parse_braced_body();
    if (!current_block_terminated()) {
      builder_->jmp(end);
    }

    builder_->set_insert_point(else_block);
    if (at_keyword("else")) {
      lex_.take();
      parse_braced_body();
      if (!current_block_terminated()) {
        builder_->jmp(end);
      }
    } else {
      builder_->jmp(end);
    }
    builder_->set_insert_point(end);
  }

  void parse_return() {
    lex_.take();  // return
    if (at_punct(";")) {
      lex_.take();
      builder_->ret();
      return;
    }
    ExprPtr value = parse_expr();
    expect_punct(";");
    builder_->ret(lower(*value));
  }

  // --- Expressions -----------------------------------------------------------

  ExprPtr parse_expr() { return parse_binary(0); }

  ExprPtr parse_binary(int level) {
    if (level >= kMaxLevel) {
      return parse_unary();
    }
    ExprPtr lhs = parse_binary(level + 1);
    while (lex_.peek().kind == TokKind::kPunct) {
      const OpLevel* match = nullptr;
      for (const OpLevel& op : kBinaryOps) {
        if (op.level == level && lex_.peek().text == op.text) {
          match = &op;
          break;
        }
      }
      if (match == nullptr) {
        break;
      }
      Token op_tok = lex_.take();
      ExprPtr rhs = parse_binary(level + 1);
      ExprPtr node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = match->op;
      node->a = std::move(lhs);
      node->b = std::move(rhs);
      node->line = op_tok.line;
      node->column = op_tok.column;
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (at_punct("-") || at_punct("~")) {
      Token op_tok = lex_.take();
      ExprPtr operand = parse_unary();
      ExprPtr node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kUnary;
      node->op = op_tok.text == "-" ? ir::Opcode::kNeg : ir::Opcode::kNot;
      node->a = std::move(operand);
      node->line = op_tok.line;
      node->column = op_tok.column;
      return node;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& tok = lex_.peek();
    if (tok.kind == TokKind::kInt) {
      Token lit = lex_.take();
      ExprPtr node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kInt;
      node->value = lit.value;
      node->line = lit.line;
      node->column = lit.column;
      return node;
    }
    if (tok.kind == TokKind::kIdent) {
      Token name = lex_.take();
      if (at_punct("(")) {
        return parse_builtin_call(name);
      }
      if (at_punct("[")) {
        lex_.take();
        ExprPtr index = parse_expr();
        expect_punct("]");
        ExprPtr node = std::make_unique<Expr>();
        node->kind = Expr::Kind::kIndex;
        node->name = name.text;
        node->a = std::move(index);
        node->line = name.line;
        node->column = name.column;
        return node;
      }
      ExprPtr node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kVar;
      node->name = name.text;
      node->line = name.line;
      node->column = name.column;
      return node;
    }
    if (at_punct("(")) {
      lex_.take();
      ExprPtr inner = parse_expr();
      expect_punct(")");
      return inner;
    }
    fail_at(tok, "expected an expression, found " + describe_token(tok));
  }

  /// min(a, b) / max(a, b) — the only calls in the language (the IR has
  /// no call instruction; cross-function coupling is module references).
  ExprPtr parse_builtin_call(const Token& name) {
    ir::Opcode op;
    if (name.text == "min") {
      op = ir::Opcode::kMin;
    } else if (name.text == "max") {
      op = ir::Opcode::kMax;
    } else {
      fail_at(name, "unknown builtin '" + name.text +
                        "' (texpr has min(a, b) and max(a, b); there are no "
                        "user-defined calls)");
    }
    expect_punct("(");
    ExprPtr a = parse_expr();
    expect_punct(",");
    ExprPtr b = parse_expr();
    expect_punct(")");
    ExprPtr node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kBinary;
    node->op = op;
    node->a = std::move(a);
    node->b = std::move(b);
    node->line = name.line;
    node->column = name.column;
    return node;
  }

  // --- Lowering --------------------------------------------------------------

  ir::Reg to_reg(ir::Operand op) {
    if (op.is_reg()) {
      return op.reg();
    }
    return builder_->const_int(op.imm());
  }

  /// Lowers `expr` to an operand, emitting instructions for every
  /// non-leaf node (no folding: the printed IR mirrors the source shape,
  /// which keeps the texpr/.tir twin programs in docs and tests honest).
  ir::Operand lower(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kInt:
        return ir::IRBuilder::i(expr.value);
      case Expr::Kind::kVar:
        return ir::IRBuilder::r(lookup_name(expr));
      case Expr::Kind::kIndex: {
        ir::Operand addr = index_address(expr);
        return ir::IRBuilder::r(builder_->load(addr));
      }
      case Expr::Kind::kUnary: {
        ir::Operand a = lower(*expr.a);
        ir::Reg dest = builder_->fresh();
        builder_->assign_unary(expr.op, dest, a);
        return ir::IRBuilder::r(dest);
      }
      case Expr::Kind::kBinary: {
        ir::Operand a = lower(*expr.a);
        ir::Operand b = lower(*expr.b);
        return ir::IRBuilder::r(builder_->binary(expr.op, a, b));
      }
    }
    fail(expr.line, expr.column, "internal error: unhandled expression");
  }

  /// Lowers `expr` straight into `dest`, so `i = i + 1;` becomes the
  /// loop-carried re-definition "%i = add %i, 1" the non-SSA IR expects
  /// rather than a temp plus a mov.
  void lower_into(ir::Reg dest, const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kInt:
        builder_->assign_const(dest, expr.value);
        return;
      case Expr::Kind::kVar:
        builder_->assign_mov(dest, lookup_name(expr));
        return;
      case Expr::Kind::kIndex:
        builder_->assign_load(dest, index_address(expr));
        return;
      case Expr::Kind::kUnary: {
        ir::Operand a = lower(*expr.a);
        builder_->assign_unary(expr.op, dest, a);
        return;
      }
      case Expr::Kind::kBinary: {
        ir::Operand a = lower(*expr.a);
        ir::Operand b = lower(*expr.b);
        builder_->assign(expr.op, dest, a, b);
        return;
      }
    }
  }

  ir::Reg lookup_name(const Expr& expr) {
    Token tok;
    tok.kind = TokKind::kIdent;
    tok.text = expr.name;
    tok.line = expr.line;
    tok.column = expr.column;
    return lookup(tok);
  }

  /// Address of name[index]: base + index (arrays are word-addressed).
  ir::Operand index_address(const Expr& expr) {
    ir::Reg base = lookup_name(expr);
    ir::Operand index = lower(*expr.a);
    return ir::IRBuilder::r(builder_->add(ir::IRBuilder::r(base), index));
  }

  Lexer lex_;
  std::unique_ptr<ir::IRBuilder> builder_;
  std::vector<std::map<std::string, ir::Reg>> scopes_;
  int block_counter_ = 0;
};

}  // namespace

std::string TexprFrontend::describe() const {
  return "thermal-expression language: fn/let/while/if, scalar and "
         "word-array arithmetic (docs/FORMATS.md)";
}

ParseResult TexprFrontend::parse(const std::string& source) const {
  try {
    Parser parser(source);
    return ParseResult::success(parser.parse_module());
  } catch (const ParseFailure& failure) {
    return ParseResult::failure(failure.diag);
  }
}

}  // namespace tadfa::frontend
