// texpr: a small thermal-expression language that lowers to the IR.
//
// The first genuinely new importer behind the frontend seam — not a
// re-wrapping of an existing ingestion path. Programs are functions of
// integer scalars and word-addressed arrays:
//
//   fn dot(a, b, n) {
//     let acc = 0;
//     let i = 0;
//     while (i < n) {
//       acc = acc + a[i] * b[i];
//       i = i + 1;
//     }
//     return acc;
//   }
//
// Grammar and lowering rules are documented in docs/FORMATS.md. Lowering
// is deterministic: the same source always produces the byte-identical
// module (the grid tests pin a texpr program against its hand-written
// .tir twin by ir::fingerprint).
#pragma once

#include "frontend/frontend.hpp"

namespace tadfa::frontend {

class TexprFrontend final : public Frontend {
 public:
  std::string name() const override { return "texpr"; }
  std::string describe() const override;
  ParseResult parse(const std::string& source) const override;
};

}  // namespace tadfa::frontend
