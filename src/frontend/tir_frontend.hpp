// Frontend wrapper over the canonical .tir text parser.
#pragma once

#include "frontend/frontend.hpp"

namespace tadfa::frontend {

/// "tir": the canonical IR text format (ir/parser.hpp). The printer and
/// this frontend are inverses, which is what lets the service re-print
/// sliced modules and ship them through the same ingestion path.
class TirFrontend final : public Frontend {
 public:
  std::string name() const override { return "tir"; }
  std::string describe() const override;
  ParseResult parse(const std::string& source) const override;
};

}  // namespace tadfa::frontend
