#include "frontend/frontend.hpp"

#include <cassert>

#include "frontend/kernel_frontend.hpp"
#include "frontend/texpr_frontend.hpp"
#include "frontend/tir_frontend.hpp"

namespace tadfa::frontend {

std::string Diagnostic::to_string() const {
  std::string out;
  if (line > 0) {
    out += "line " + std::to_string(line);
    if (column > 0) {
      out += ":" + std::to_string(column);
    }
    out += ": ";
  }
  out += message;
  return out;
}

std::string ParseResult::diagnostics_text() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    if (!out.empty()) {
      out += "; ";
    }
    out += d.to_string();
  }
  return out;
}

void FrontendRegistry::add(std::unique_ptr<Frontend> fe) {
  assert(fe != nullptr);
  assert(find(fe->name()) == nullptr);
  entries_.push_back(std::move(fe));
}

const Frontend* FrontendRegistry::find(const std::string& name) const {
  for (const std::unique_ptr<Frontend>& fe : entries_) {
    if (fe->name() == name) {
      return fe.get();
    }
  }
  return nullptr;
}

std::vector<std::string> FrontendRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const std::unique_ptr<Frontend>& fe : entries_) {
    out.push_back(fe->name());
  }
  return out;
}

namespace {

FrontendRegistry build_default_registry() {
  FrontendRegistry reg;
  reg.add(std::make_unique<TirFrontend>());
  reg.add(std::make_unique<KernelFrontend>());
  reg.add(std::make_unique<TexprFrontend>());
  return reg;
}

}  // namespace

const FrontendRegistry& default_frontend_registry() {
  static const FrontendRegistry registry = build_default_registry();
  return registry;
}

const Frontend* find_frontend(const std::string& name) {
  return default_frontend_registry().find(name);
}

}  // namespace tadfa::frontend
