#include "frontend/kernel_frontend.hpp"

#include <cctype>
#include <cstdint>
#include <string>
#include <vector>

#include "workload/kernels.hpp"
#include "workload/modules.hpp"

namespace tadfa::frontend {
namespace {

/// A spec token plus where it starts in the source (1-based).
struct SpecToken {
  std::string text;
  std::size_t line = 0;
  std::size_t column = 0;
};

std::vector<SpecToken> tokenize(const std::string& source) {
  std::vector<SpecToken> tokens;
  std::size_t line = 1;
  std::size_t column = 1;
  SpecToken current;
  for (char c : source) {
    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      if (!current.text.empty()) {
        tokens.push_back(current);
        current = {};
      }
      if (c == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      continue;
    }
    if (current.text.empty()) {
      current.line = line;
      current.column = column;
    }
    current.text.push_back(c);
    ++column;
  }
  if (!current.text.empty()) {
    tokens.push_back(current);
  }
  return tokens;
}

/// Parses "mixed:functions=4,seed=7,..." into a ModuleConfig.
bool parse_mixed(const std::string& params, workload::ModuleConfig* config,
                 std::string* error) {
  std::size_t pos = 0;
  while (pos < params.size()) {
    std::size_t end = params.find(',', pos);
    if (end == std::string::npos) {
      end = params.size();
    }
    std::string pair = params.substr(pos, end - pos);
    pos = end + 1;
    std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      *error = "mixed parameter '" + pair + "' is not key=value";
      return false;
    }
    std::string key = pair.substr(0, eq);
    std::string value = pair.substr(eq + 1);
    std::uint64_t num = 0;
    if (value.empty()) {
      *error = "mixed parameter '" + key + "' has an empty value";
      return false;
    }
    for (char c : value) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        *error = "mixed parameter '" + key + "' value '" + value +
                 "' is not a non-negative integer";
        return false;
      }
      num = num * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (key == "functions") {
      config->functions = num;
    } else if (key == "seed") {
      config->seed = num;
    } else if (key == "random_every") {
      config->random_every = num;
    } else if (key == "random_target") {
      config->random_target_instructions = static_cast<int>(num);
    } else if (key == "ref_every") {
      config->ref_every = num;
    } else {
      *error = "unknown mixed parameter '" + key + "'";
      return false;
    }
  }
  if (config->functions == 0) {
    *error = "mixed module needs functions >= 1";
    return false;
  }
  return true;
}

std::string known_kernels() {
  std::string names;
  for (const workload::Kernel& k : workload::standard_suite()) {
    if (!names.empty()) {
      names += ", ";
    }
    names += k.name;
  }
  return names;
}

}  // namespace

std::string KernelFrontend::describe() const {
  return "built-in kernel suite and generated mixed modules "
         "(spec tokens: kernel names, 'suite', 'mixed:k=v,...')";
}

ParseResult KernelFrontend::parse(const std::string& source) const {
  std::vector<SpecToken> tokens = tokenize(source);
  if (tokens.empty()) {
    return ParseResult::failure(
        {0, 0,
         "empty kernel spec; expected kernel names, 'suite', or "
         "'mixed:k=v,...' (kernels: " +
             known_kernels() + ")"});
  }

  ir::Module module;
  auto add_function = [&](ir::Function func, const SpecToken& tok,
                          ParseResult* failed) {
    if (module.find(func.name()) != nullptr) {
      *failed = ParseResult::failure(
          {tok.line, tok.column,
           "spec '" + tok.text + "' duplicates function '" + func.name() +
               "'"});
      return false;
    }
    module.add_function(std::move(func));
    return true;
  };

  for (const SpecToken& tok : tokens) {
    ParseResult failed;
    if (tok.text == "suite") {
      for (workload::Kernel& k : workload::standard_suite()) {
        if (!add_function(std::move(k.func), tok, &failed)) {
          return failed;
        }
      }
    } else if (tok.text.rfind("mixed:", 0) == 0 || tok.text == "mixed") {
      workload::ModuleConfig config;
      std::string error;
      std::string params =
          tok.text == "mixed" ? "" : tok.text.substr(std::string("mixed:").size());
      if (!parse_mixed(params, &config, &error)) {
        return ParseResult::failure({tok.line, tok.column, error});
      }
      ir::Module mixed = workload::make_mixed_module(config);
      for (ir::Function& f : mixed.functions()) {
        if (!add_function(std::move(f), tok, &failed)) {
          return failed;
        }
      }
      for (const ir::ModuleReference& ref : mixed.references()) {
        module.add_reference(ref.from, ref.to);
      }
    } else {
      std::optional<workload::Kernel> kernel = workload::make_kernel(tok.text);
      if (!kernel) {
        return ParseResult::failure(
            {tok.line, tok.column,
             "unknown kernel '" + tok.text + "' (kernels: " + known_kernels() +
                 "; or 'suite' / 'mixed:k=v,...')"});
      }
      if (!add_function(std::move(kernel->func), tok, &failed)) {
        return failed;
      }
    }
  }
  return ParseResult::success(std::move(module));
}

}  // namespace tadfa::frontend
