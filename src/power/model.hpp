// Power model: access events -> watts.
//
// Implements the "technology coefficients of logic activity and peak power"
// coupling the paper takes from [1, 5]:
//   dynamic:  P = (reads·E_read + writes·E_write) / window_time
//   leakage:  P = P_ref · exp(c·(T − T_ref)) per cell, per-bank gateable.
// The exponential leakage closes the electrothermal loop: hotter cells leak
// more, which is why homogenizing the map "improves reliability by
// decreasing leakage" (Sec. 4).
#pragma once

#include <span>
#include <vector>

#include "power/access_trace.hpp"

namespace tadfa::power {

class PowerModel {
 public:
  explicit PowerModel(const machine::RegisterFileConfig& config)
      : config_(config) {}

  const machine::RegisterFileConfig& config() const { return config_; }

  /// Energy of a batch of accesses (J).
  double access_energy(const AccessCounts& counts) const;

  /// Average per-register dynamic power (W) over a cycle window.
  std::vector<double> dynamic_power(std::span<const AccessCounts> counts,
                                    std::uint64_t window_cycles) const;

  /// Per-register leakage power at given temperatures. `gated_banks[b]`
  /// true means bank b is power-gated: its cells leak only
  /// `gated_leakage_fraction` of nominal.
  std::vector<double> leakage_power(
      const machine::Floorplan& floorplan, std::span<const double> temps_k,
      const std::vector<bool>& gated_banks = {}) const;

  /// Residual leakage fraction of a gated bank (state-retentive sleep).
  static constexpr double gated_leakage_fraction = 0.05;

  /// Energy spent in the memory hierarchy by a run's loads + stores (J).
  /// Lets benches report whole-system energy when a transform trades RF
  /// accesses against cache accesses.
  double memory_energy(std::uint64_t loads, std::uint64_t stores) const {
    return static_cast<double>(loads + stores) *
           config_.tech.memory_access_energy_j;
  }

  /// Total energy (J) of a trace: dynamic + leakage at a fixed
  /// representative temperature (used for quick energy accounting where
  /// the full electrothermal loop is not needed).
  double trace_energy(const AccessTrace& trace, double temp_k,
                      const std::vector<bool>& gated_banks = {}) const;

  /// Digest of the configuration (energy/leakage coefficients included);
  /// all power numbers are pure functions of it.
  std::uint64_t config_digest() const;

 private:
  machine::RegisterFileConfig config_;
};

}  // namespace tadfa::power
