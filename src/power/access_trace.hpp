// Register-file access traces.
//
// The trace is the interface between execution (src/sim) and power
// (src/power): every read/write of a physical register, with its cycle.
// This is exactly the information the paper says feedback-driven frameworks
// extract from compiled programs — the thermal DFA's job is to approximate
// its thermal consequences *without* producing it.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/floorplan.hpp"

namespace tadfa::power {

struct AccessEvent {
  std::uint64_t cycle = 0;
  machine::PhysReg reg = 0;
  bool is_write = false;
};

struct AccessCounts {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t total() const { return reads + writes; }
};

class AccessTrace {
 public:
  explicit AccessTrace(std::uint32_t num_registers)
      : num_registers_(num_registers) {}

  void record(std::uint64_t cycle, machine::PhysReg reg, bool is_write);

  const std::vector<AccessEvent>& events() const { return events_; }
  std::uint32_t num_registers() const { return num_registers_; }

  /// Total cycles the traced execution took (set by the simulator).
  std::uint64_t duration_cycles() const { return duration_cycles_; }
  void set_duration_cycles(std::uint64_t cycles) { duration_cycles_ = cycles; }

  /// Per-register read/write totals over the whole trace.
  std::vector<AccessCounts> totals() const;

  /// Per-register totals inside [begin_cycle, end_cycle).
  std::vector<AccessCounts> window(std::uint64_t begin_cycle,
                                   std::uint64_t end_cycle) const;

 private:
  std::uint32_t num_registers_;
  std::uint64_t duration_cycles_ = 0;
  std::vector<AccessEvent> events_;
};

}  // namespace tadfa::power
