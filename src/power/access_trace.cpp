#include "power/access_trace.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace tadfa::power {

void AccessTrace::record(std::uint64_t cycle, machine::PhysReg reg,
                         bool is_write) {
  TADFA_ASSERT(reg < num_registers_);
  TADFA_ASSERT_MSG(events_.empty() || cycle >= events_.back().cycle,
                   "accesses must be recorded in cycle order");
  events_.push_back({cycle, reg, is_write});
}

std::vector<AccessCounts> AccessTrace::totals() const {
  std::vector<AccessCounts> out(num_registers_);
  for (const AccessEvent& e : events_) {
    if (e.is_write) {
      ++out[e.reg].writes;
    } else {
      ++out[e.reg].reads;
    }
  }
  return out;
}

std::vector<AccessCounts> AccessTrace::window(std::uint64_t begin_cycle,
                                              std::uint64_t end_cycle) const {
  TADFA_ASSERT(begin_cycle <= end_cycle);
  std::vector<AccessCounts> out(num_registers_);
  // Events are cycle-sorted: binary search the window bounds.
  const auto lo = std::lower_bound(
      events_.begin(), events_.end(), begin_cycle,
      [](const AccessEvent& e, std::uint64_t c) { return e.cycle < c; });
  for (auto it = lo; it != events_.end() && it->cycle < end_cycle; ++it) {
    if (it->is_write) {
      ++out[it->reg].writes;
    } else {
      ++out[it->reg].reads;
    }
  }
  return out;
}

}  // namespace tadfa::power
