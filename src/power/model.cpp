#include "power/model.hpp"

#include "support/assert.hpp"
#include "support/serialize.hpp"

namespace tadfa::power {

double PowerModel::access_energy(const AccessCounts& counts) const {
  const auto& t = config_.tech;
  return static_cast<double>(counts.reads) * t.read_energy_j +
         static_cast<double>(counts.writes) * t.write_energy_j;
}

std::vector<double> PowerModel::dynamic_power(
    std::span<const AccessCounts> counts, std::uint64_t window_cycles) const {
  TADFA_ASSERT(window_cycles > 0);
  const double window_s =
      static_cast<double>(window_cycles) * config_.tech.cycle_seconds();
  std::vector<double> out(counts.size(), 0.0);
  for (std::size_t r = 0; r < counts.size(); ++r) {
    out[r] = access_energy(counts[r]) / window_s;
  }
  return out;
}

std::vector<double> PowerModel::leakage_power(
    const machine::Floorplan& floorplan, std::span<const double> temps_k,
    const std::vector<bool>& gated_banks) const {
  TADFA_ASSERT(temps_k.size() == floorplan.num_registers());
  std::vector<double> out(temps_k.size(), 0.0);
  for (machine::PhysReg r = 0; r < temps_k.size(); ++r) {
    double p = config_.tech.leakage_at(temps_k[r]);
    const std::uint32_t bank = floorplan.bank_of(r);
    if (bank < gated_banks.size() && gated_banks[bank]) {
      p *= gated_leakage_fraction;
    }
    out[r] = p;
  }
  return out;
}

double PowerModel::trace_energy(const AccessTrace& trace, double temp_k,
                                const std::vector<bool>& gated_banks) const {
  const auto totals = trace.totals();
  double dynamic = 0.0;
  for (const AccessCounts& c : totals) {
    dynamic += access_energy(c);
  }

  const double duration_s =
      static_cast<double>(trace.duration_cycles()) *
      config_.tech.cycle_seconds();
  const double leak_per_cell = config_.tech.leakage_at(temp_k);
  double leakage = 0.0;
  const machine::Floorplan floorplan(config_);
  for (machine::PhysReg r = 0; r < trace.num_registers(); ++r) {
    double p = leak_per_cell;
    const std::uint32_t bank = floorplan.bank_of(r);
    if (bank < gated_banks.size() && gated_banks[bank]) {
      p *= gated_leakage_fraction;
    }
    leakage += p * duration_s;
  }
  return dynamic + leakage;
}

std::uint64_t PowerModel::config_digest() const {
  // Distinguish the power model's view of a config from the floorplan's:
  // equal configs still hash differently per consumer, so a key mixes
  // both without the two digests cancelling structure.
  return Hasher(0x704f574552ull /* "pPOWER" */)
      .mix(config_.config_digest())
      .digest();
}

}  // namespace tadfa::power
