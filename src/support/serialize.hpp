// Binary serialization and hashing primitives for the persistent result
// cache (src/pipeline/result_cache.*).
//
// ByteWriter/ByteReader implement a tiny, explicitly little-endian wire
// format (fixed-width integers, IEEE doubles by bit pattern,
// length-prefixed strings). The reader is totalizing: any read past the
// end of the buffer, or a length prefix larger than the bytes that
// remain, trips a sticky failure flag instead of throwing — a truncated
// or corrupted cache entry must degrade to a cache miss, never to UB.
//
// Hasher is a seedable FNV-1a accumulator with a final avalanche,
// shared by the model config digests (Floorplan, ThermalGrid,
// PowerModel, TimingModel) and the cache-key derivation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tadfa {

/// Appends little-endian primitives to a growing byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// IEEE-754 bit pattern; exact round-trip, no text formatting loss.
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// u64 length prefix + raw bytes.
  void str(std::string_view s);

  const std::string& data() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Consumes a byte buffer written by ByteWriter. All getters return a
/// zero value once the buffer is exhausted or a length prefix is
/// implausible; check ok() (and ideally remaining() == 0) after the last
/// field to decide whether the decoded record is trustworthy.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  bool boolean() { return u8() != 0; }
  std::string str();

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  /// True when `n` more bytes exist; otherwise sets the sticky failure.
  bool need(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Seedable 64-bit FNV-1a accumulator with a splitmix64 finalizer.
/// Distinct seeds give independent hash streams over the same input
/// (the cache key uses two to form a 128-bit key).
class Hasher {
 public:
  explicit Hasher(std::uint64_t seed = 0) : state_(kOffset ^ seed) {}

  Hasher& mix(std::uint64_t v) {
    state_ = (state_ ^ v) * kPrime;
    return *this;
  }
  Hasher& mix(double v);
  /// Length-prefixed, so mix("ab").mix("c") != mix("a").mix("bc").
  Hasher& mix(std::string_view s);

  std::uint64_t digest() const;

 private:
  static constexpr std::uint64_t kOffset = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  std::uint64_t state_;
};

}  // namespace tadfa
