#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "support/assert.hpp"

namespace tadfa {

void TextTable::set_header(std::vector<std::string> header) {
  TADFA_ASSERT_MSG(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  if (!header_.empty()) {
    TADFA_ASSERT_MSG(row.size() == header_.size(),
                     "row arity must match header");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) {
      widths.resize(row.size(), 0);
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) {
    widen(header_);
  }
  for (const auto& row : rows_) {
    widen(row);
  }

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[i]))
         << row[i] << ' ';
    }
    os << "|\n";
  };

  if (!title_.empty()) {
    os << "== " << title_ << " ==\n";
  }
  if (!header_.empty()) {
    emit(header_);
    for (std::size_t i = 0; i < widths.size(); ++i) {
      os << "|" << std::string(widths[i] + 2, '-');
    }
    os << "|\n";
  }
  for (const auto& row : rows_) {
    emit(row);
  }
}

void TextTable::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) {
      return s;
    }
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') {
        out += "\"\"";
      } else {
        out += c;
      }
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) {
        os << ',';
      }
      os << quote(row[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
  }
  for (const auto& row : rows_) {
    emit(row);
  }
}

}  // namespace tadfa
