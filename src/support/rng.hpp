// Deterministic, seedable pseudo-random number generation.
//
// All stochastic components of TADFA (random register assignment, random
// program generation, workload inputs) draw from this generator so that every
// experiment is reproducible from a single seed. The engine is xoshiro256**,
// which is fast, has a 256-bit state, and passes BigCrush.
#pragma once

#include <cstdint>
#include <vector>

namespace tadfa {

/// xoshiro256** engine with splitmix64 seeding.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a single 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  /// Returns the next raw 64-bit value.
  std::uint64_t next();

  // UniformRandomBitGenerator interface (usable with <random> distributions).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased (rejection).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Picks a uniformly random element index of a container of size n.
  std::size_t index(std::size_t n);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for parallel substreams).
  Rng split();

 private:
  std::uint64_t state_[4] = {};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace tadfa
