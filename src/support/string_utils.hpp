// Small string helpers shared by the IR text parser and the harnesses.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tadfa {

/// Splits on a delimiter character; empty fields are kept.
std::vector<std::string> split(std::string_view s, char delim);

/// Splits on runs of whitespace; empty fields are dropped.
std::vector<std::string> split_whitespace(std::string_view s);

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool ends_with(std::string_view s, std::string_view suffix);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items,
                 std::string_view separator);

/// Parses a signed 64-bit integer; returns false on any trailing garbage.
bool parse_int(std::string_view s, long long& out);

/// Parses a double; returns false on any trailing garbage.
bool parse_double(std::string_view s, double& out);

}  // namespace tadfa
