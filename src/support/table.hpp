// Text table and CSV emission for benchmark harnesses.
//
// Every bench binary prints its figure/table rows through TextTable so that
// EXPERIMENTS.md can quote them verbatim.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace tadfa {

/// Column-aligned plain-text table with an optional title.
class TextTable {
 public:
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}

  /// Sets the header row. Must be called before any add_row.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header (if set).
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with fixed precision.
  static std::string num(double v, int precision = 2);

  /// Renders with column alignment and separators.
  void print(std::ostream& os) const;

  /// Renders as CSV (header then rows, comma separated, quoted as needed).
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tadfa
