#include "support/heatmap.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <vector>

#include "support/assert.hpp"

namespace tadfa {
namespace {

struct Scale {
  double lo;
  double hi;
};

Scale resolve_scale(std::span<const double> values,
                    const HeatmapOptions& options) {
  double lo = values.empty() ? 0.0
                             : *std::min_element(values.begin(), values.end());
  double hi = values.empty() ? 1.0
                             : *std::max_element(values.begin(), values.end());
  if (options.scale_min) {
    lo = *options.scale_min;
  }
  if (options.scale_max) {
    hi = *options.scale_max;
  }
  if (hi <= lo) {
    hi = lo + 1e-9;
  }
  return {lo, hi};
}

char glyph_for(double v, const Scale& scale, const std::string& ramp) {
  const double t =
      std::clamp((v - scale.lo) / (scale.hi - scale.lo), 0.0, 1.0);
  const auto n = ramp.size();
  auto idx = static_cast<std::size_t>(t * static_cast<double>(n));
  if (idx >= n) {
    idx = n - 1;
  }
  return ramp[idx];
}

std::vector<std::string> render_lines(std::span<const double> values,
                                      std::size_t rows, std::size_t cols,
                                      const HeatmapOptions& options) {
  TADFA_ASSERT(values.size() == rows * cols);
  TADFA_ASSERT(!options.ramp.empty());
  TADFA_ASSERT(options.glyph_width >= 1);
  const Scale scale = resolve_scale(values, options);
  std::vector<std::string> lines;
  lines.reserve(rows + 2);
  for (std::size_t r = 0; r < rows; ++r) {
    std::string line;
    line.reserve(cols * static_cast<std::size_t>(options.glyph_width));
    for (std::size_t c = 0; c < cols; ++c) {
      const char g = glyph_for(values[r * cols + c], scale, options.ramp);
      line.append(static_cast<std::size_t>(options.glyph_width), g);
    }
    lines.push_back(std::move(line));
  }
  if (options.legend) {
    std::ostringstream legend;
    legend << '[' << options.ramp.front() << "]=" << std::fixed
           << std::setprecision(2) << scale.lo << "  [" << options.ramp.back()
           << "]=" << scale.hi;
    lines.push_back(legend.str());
  }
  return lines;
}

}  // namespace

void render_heatmap(std::ostream& os, std::span<const double> values,
                    std::size_t rows, std::size_t cols,
                    const HeatmapOptions& options) {
  for (const auto& line : render_lines(values, rows, cols, options)) {
    os << line << '\n';
  }
}

void render_heatmap_pair(std::ostream& os, std::span<const double> left,
                         std::span<const double> right, std::size_t rows,
                         std::size_t cols, const std::string& left_caption,
                         const std::string& right_caption,
                         const HeatmapOptions& options) {
  auto left_lines = render_lines(left, rows, cols, options);
  auto right_lines = render_lines(right, rows, cols, options);
  const std::size_t width =
      cols * static_cast<std::size_t>(options.glyph_width);

  auto pad = [width](std::string s) {
    if (s.size() < width) {
      s.append(width - s.size(), ' ');
    }
    return s;
  };

  os << pad(left_caption) << "    " << right_caption << '\n';
  const std::size_t n = std::max(left_lines.size(), right_lines.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string l = i < left_lines.size() ? left_lines[i] : "";
    const std::string r = i < right_lines.size() ? right_lines[i] : "";
    os << pad(l) << "    " << r << '\n';
  }
}

}  // namespace tadfa
