#include "support/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "support/assert.hpp"

namespace tadfa::stats {

double mean(std::span<const double> xs) {
  TADFA_ASSERT(!xs.empty());
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  TADFA_ASSERT(!xs.empty());
  const double mu = mean(xs);
  double sum = 0.0;
  for (double x : xs) {
    const double d = x - mu;
    sum += d * d;
  }
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  TADFA_ASSERT(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  TADFA_ASSERT(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double range(std::span<const double> xs) { return max(xs) - min(xs); }

double percentile(std::span<const double> xs, double p) {
  TADFA_ASSERT(!xs.empty());
  TADFA_ASSERT(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) {
    return sorted.back();
  }
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double rmse(std::span<const double> a, std::span<const double> b) {
  TADFA_ASSERT(a.size() == b.size());
  TADFA_ASSERT(!a.empty());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

double mae(std::span<const double> a, std::span<const double> b) {
  TADFA_ASSERT(a.size() == b.size());
  TADFA_ASSERT(!a.empty());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += std::abs(a[i] - b[i]);
  }
  return sum / static_cast<double>(a.size());
}

double max_abs_error(std::span<const double> a, std::span<const double> b) {
  TADFA_ASSERT(a.size() == b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  TADFA_ASSERT(a.size() == b.size());
  TADFA_ASSERT(!a.empty());
  const double ma = mean(a);
  const double mb = mean(b);
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0.0 || vb == 0.0) {
    return 0.0;
  }
  return cov / std::sqrt(va * vb);
}

double jaccard(const std::vector<std::size_t>& a,
               const std::vector<std::size_t>& b) {
  if (a.empty() && b.empty()) {
    return 1.0;
  }
  std::unordered_set<std::size_t> sa(a.begin(), a.end());
  std::unordered_set<std::size_t> sb(b.begin(), b.end());
  std::size_t intersection = 0;
  for (std::size_t x : sa) {
    if (sb.count(x) != 0) {
      ++intersection;
    }
  }
  const std::size_t uni = sa.size() + sb.size() - intersection;
  if (uni == 0) {
    return 1.0;
  }
  return static_cast<double>(intersection) / static_cast<double>(uni);
}

std::vector<std::size_t> top_k_indices(std::span<const double> xs,
                                       std::size_t k) {
  std::vector<std::size_t> idx(xs.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    idx[i] = i;
  }
  k = std::min(k, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(),
                    [&xs](std::size_t i, std::size_t j) { return xs[i] > xs[j]; });
  idx.resize(k);
  return idx;
}

double coefficient_of_variation(std::span<const double> xs) {
  const double mu = mean(xs);
  TADFA_ASSERT(mu != 0.0);
  return stddev(xs) / mu;
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const {
  TADFA_ASSERT(n_ > 0);
  return mean_;
}

double Accumulator::variance() const {
  TADFA_ASSERT(n_ > 0);
  return m2_ / static_cast<double>(n_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  TADFA_ASSERT(n_ > 0);
  return min_;
}

double Accumulator::max() const {
  TADFA_ASSERT(n_ > 0);
  return max_;
}

}  // namespace tadfa::stats
