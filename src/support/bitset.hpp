// Dense dynamic bitset used as the domain of set-based data-flow analyses
// (liveness, reaching definitions). Word-parallel set algebra keeps the
// iterative solver fast on functions with thousands of virtual registers.
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace tadfa {

class DenseBitSet {
 public:
  DenseBitSet() = default;
  explicit DenseBitSet(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  std::size_t size() const { return size_; }

  bool test(std::size_t i) const {
    TADFA_ASSERT(i < size_);
    return (words_[i / 64] >> (i % 64)) & 1U;
  }

  void set(std::size_t i) {
    TADFA_ASSERT(i < size_);
    words_[i / 64] |= std::uint64_t{1} << (i % 64);
  }

  void reset(std::size_t i) {
    TADFA_ASSERT(i < size_);
    words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }

  void clear() {
    for (auto& w : words_) {
      w = 0;
    }
  }

  /// this |= other. Returns true if this changed.
  bool merge(const DenseBitSet& other) {
    TADFA_ASSERT(size_ == other.size_);
    bool changed = false;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t merged = words_[i] | other.words_[i];
      changed |= merged != words_[i];
      words_[i] = merged;
    }
    return changed;
  }

  /// this &= other.
  void intersect(const DenseBitSet& other) {
    TADFA_ASSERT(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= other.words_[i];
    }
  }

  /// this &= ~other.
  void subtract(const DenseBitSet& other) {
    TADFA_ASSERT(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= ~other.words_[i];
    }
  }

  bool any() const {
    for (auto w : words_) {
      if (w != 0) {
        return true;
      }
    }
    return false;
  }

  std::size_t count() const {
    std::size_t n = 0;
    for (auto w : words_) {
      n += static_cast<std::size_t>(__builtin_popcountll(w));
    }
    return n;
  }

  /// Indices of all set bits, ascending.
  std::vector<std::size_t> to_indices() const {
    std::vector<std::size_t> out;
    out.reserve(count());
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        out.push_back(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
    return out;
  }

  friend bool operator==(const DenseBitSet& a, const DenseBitSet& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace tadfa
