// Descriptive statistics and error metrics used by the experiment harnesses.
//
// Everything operates on std::span<const double> so callers can pass vectors,
// arrays, or sub-ranges without copies.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tadfa::stats {

/// Arithmetic mean. Requires a non-empty range.
double mean(std::span<const double> xs);

/// Population variance (divides by N). Requires non-empty.
double variance(std::span<const double> xs);

/// Population standard deviation.
double stddev(std::span<const double> xs);

/// Smallest element. Requires non-empty.
double min(std::span<const double> xs);

/// Largest element. Requires non-empty.
double max(std::span<const double> xs);

/// max - min.
double range(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty.
double percentile(std::span<const double> xs, double p);

/// Median (50th percentile).
double median(std::span<const double> xs);

/// Root-mean-square error between two equal-length ranges.
double rmse(std::span<const double> a, std::span<const double> b);

/// Mean absolute error between two equal-length ranges.
double mae(std::span<const double> a, std::span<const double> b);

/// Largest absolute elementwise difference.
double max_abs_error(std::span<const double> a, std::span<const double> b);

/// Pearson correlation coefficient. Returns 0 when either side is constant.
double pearson(std::span<const double> a, std::span<const double> b);

/// Jaccard similarity |A∩B| / |A∪B| of two index sets. Returns 1 when both
/// sets are empty.
double jaccard(const std::vector<std::size_t>& a,
               const std::vector<std::size_t>& b);

/// Indices of the k largest elements, in descending value order.
std::vector<std::size_t> top_k_indices(std::span<const double> xs,
                                       std::size_t k);

/// Coefficient of spatial variation: stddev / mean. Used as the paper's
/// "homogenization" metric for thermal maps. Requires mean != 0.
double coefficient_of_variation(std::span<const double> xs);

/// Online accumulator for streaming mean/variance/min/max (Welford).
class Accumulator {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace tadfa::stats
