#include "support/string_utils.hpp"

#include <cctype>
#include <cstdlib>

namespace tadfa {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) {
      out.emplace_back(s.substr(start, i - start));
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& items,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) {
      out += separator;
    }
    out += items[i];
  }
  return out;
}

bool parse_int(std::string_view s, long long& out) {
  if (s.empty()) {
    return false;
  }
  std::string buf(s);
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  out = v;
  return true;
}

bool parse_double(std::string_view s, double& out) {
  if (s.empty()) {
    return false;
  }
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  out = v;
  return true;
}

}  // namespace tadfa
