#include "support/rng.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace tadfa {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
  has_cached_normal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  TADFA_ASSERT(bound > 0);
  // Rejection sampling over the top of the range to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  TADFA_ASSERT(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  TADFA_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  TADFA_ASSERT(stddev >= 0.0);
  return mean + stddev * normal();
}

bool Rng::chance(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform() < p;
}

std::size_t Rng::index(std::size_t n) {
  TADFA_ASSERT(n > 0);
  return static_cast<std::size_t>(below(n));
}

Rng Rng::split() {
  Rng child(next() ^ 0xa5a5a5a5a5a5a5a5ULL);
  return child;
}

}  // namespace tadfa
