// ASCII rendering of 2-D scalar fields (thermal maps).
//
// Reproduces the visual role of the paper's Fig. 1: a glanceable picture of
// where the register file is hot. Values are bucketed into a ramp of glyphs
// from '.' (coolest) to '#' (hottest); an optional absolute scale pins the
// ramp so maps from different policies are comparable.
#pragma once

#include <optional>
#include <ostream>
#include <span>
#include <string>

namespace tadfa {

struct HeatmapOptions {
  /// Glyph ramp from cold to hot.
  std::string ramp = " .:-=+*%@#";
  /// When set, bucket against [scale_min, scale_max] instead of the data's
  /// own min/max; values outside are clamped.
  std::optional<double> scale_min;
  std::optional<double> scale_max;
  /// Print a numeric legend under the map.
  bool legend = true;
  /// Repeat each glyph horizontally for a squarer aspect ratio.
  int glyph_width = 2;
};

/// Renders a row-major rows x cols field as an ASCII heat map.
void render_heatmap(std::ostream& os, std::span<const double> values,
                    std::size_t rows, std::size_t cols,
                    const HeatmapOptions& options = {});

/// Renders two maps side by side with captions (for before/after views).
void render_heatmap_pair(std::ostream& os, std::span<const double> left,
                         std::span<const double> right, std::size_t rows,
                         std::size_t cols, const std::string& left_caption,
                         const std::string& right_caption,
                         const HeatmapOptions& options = {});

}  // namespace tadfa
