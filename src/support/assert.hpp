// Lightweight contract checking used across all TADFA libraries.
//
// TADFA_ASSERT is active in all build types: the library models physical
// systems where a silently-violated invariant (e.g. a negative thermal
// capacitance) produces plausible-looking garbage, which is worse than an
// abort. Violations print the failing expression and location, then abort.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tadfa {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "TADFA assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace tadfa

#define TADFA_ASSERT(expr)                                      \
  do {                                                          \
    if (!(expr)) {                                              \
      ::tadfa::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
    }                                                           \
  } while (false)

#define TADFA_ASSERT_MSG(expr, msg)                          \
  do {                                                       \
    if (!(expr)) {                                           \
      ::tadfa::assert_fail(#expr, __FILE__, __LINE__, msg);  \
    }                                                        \
  } while (false)

#define TADFA_UNREACHABLE(msg) \
  ::tadfa::assert_fail("unreachable", __FILE__, __LINE__, msg)
