#include "support/serialize.hpp"

#include <bit>

namespace tadfa {

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(std::string_view s) {
  u64(s.size());
  buf_.append(s.data(), s.size());
}

bool ByteReader::need(std::size_t n) {
  if (!ok_ || n > remaining()) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!need(1)) {
    return 0;
  }
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t ByteReader::u32() {
  if (!need(4)) {
    return 0;
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_++]))
         << (8 * i);
  }
  return v;
}

std::uint64_t ByteReader::u64() {
  if (!need(8)) {
    return 0;
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_++]))
         << (8 * i);
  }
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint64_t len = u64();
  // A length prefix beyond the bytes that actually remain means the
  // buffer is truncated or corrupt; refuse before allocating.
  if (!need(len)) {
    return {};
  }
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

Hasher& Hasher::mix(double v) { return mix(std::bit_cast<std::uint64_t>(v)); }

Hasher& Hasher::mix(std::string_view s) {
  mix(static_cast<std::uint64_t>(s.size()));
  for (char c : s) {
    state_ = (state_ ^ static_cast<std::uint8_t>(c)) * kPrime;
  }
  return *this;
}

std::uint64_t Hasher::digest() const {
  // splitmix64 finalizer: avalanches the accumulated state so nearby
  // inputs (e.g. configs differing in one field) spread over the space.
  std::uint64_t z = state_ + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace tadfa
