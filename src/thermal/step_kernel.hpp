// Internal kernel seam between ThermalGrid and the optional AVX2
// translation unit (step_avx2.cpp, built with -mavx2 -mfma on x86-64).
//
// The grid owns the structure-of-arrays update tables; this header only
// names the flat views the vector kernels consume, so the intrinsics TU
// never needs grid.hpp (and grid.cpp never needs immintrin.h).
#pragma once

#include <cstdint>
#include <cstddef>

namespace tadfa::thermal::detail {

/// Flat views of the per-node update tables in structure-of-arrays form.
/// Slot order is W/E/N/S; absent neighbors carry conductance 0 and a
/// self-pointing index, so every kernel is branch-free in the interior.
struct FastTables {
  const double* gv_tsub;             ///< g_vertical[i] * substrate_temp
  const double* g_diag;              ///< g_vertical[i] + Σ_slot g_slot[i]
  const double* g_slot[4];           ///< conductance plane per slot (W/K)
  const std::int32_t* idx_slot[4];   ///< neighbor index plane per slot
  const double* inv_cap;             ///< 1 / C per node (K/J)
  std::size_t n = 0;                 ///< node count
  std::size_t cols = 0;              ///< nodes per row (row stride)
};

/// True when the AVX2+FMA kernel was compiled in AND this CPU runs it.
bool avx2_available();

/// One explicit-Euler substep over all nodes:
///   flux = p + gv·T_sub − g_diag·t + Σ_slot g_slot·t[neighbor]
///   t   += h · flux / C
/// Rearranged relative to the reference kernel (hoisted diagonal, FMA),
/// so results agree only to the documented fast-path tolerance.
/// Interior rows use shifted contiguous loads (the W/E/N/S neighbors of
/// node i are i±1 and i±cols; boundary links have g = 0, which zeroes
/// any value the shifted load picks up); the first and last rows fall
/// back to the indexed scalar form.
void substep_avx2(const FastTables& tables, const double* p, double* flux,
                  double* t, double h);

}  // namespace tadfa::thermal::detail
