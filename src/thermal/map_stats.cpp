#include "thermal/map_stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/statistics.hpp"

namespace tadfa::thermal {

MapStats compute_map_stats(const machine::Floorplan& floorplan,
                           std::span<const double> reg_temps) {
  TADFA_ASSERT(reg_temps.size() == floorplan.num_registers());
  MapStats s;
  s.peak_k = stats::max(reg_temps);
  s.min_k = stats::min(reg_temps);
  s.mean_k = stats::mean(reg_temps);
  s.stddev_k = stats::stddev(reg_temps);
  s.range_k = s.peak_k - s.min_k;

  double sum_grad = 0.0;
  std::size_t links = 0;
  for (machine::PhysReg r = 0; r < reg_temps.size(); ++r) {
    for (machine::PhysReg n : floorplan.neighbors(r)) {
      if (n < r) {
        continue;  // count each undirected link once
      }
      const double g = std::abs(reg_temps[r] - reg_temps[n]);
      s.max_gradient_k = std::max(s.max_gradient_k, g);
      sum_grad += g;
      ++links;
    }
  }
  s.mean_gradient_k = links == 0 ? 0.0 : sum_grad / static_cast<double>(links);
  return s;
}

std::vector<machine::PhysReg> hotspots(const machine::Floorplan& floorplan,
                                       std::span<const double> reg_temps,
                                       double threshold_sigma) {
  const MapStats s = compute_map_stats(floorplan, reg_temps);
  const double cut = s.mean_k + threshold_sigma * s.stddev_k;
  std::vector<machine::PhysReg> out;
  for (machine::PhysReg r = 0; r < reg_temps.size(); ++r) {
    if (reg_temps[r] > cut) {
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace tadfa::thermal
