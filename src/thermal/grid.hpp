// Compact RC thermal model of the register file (HotSpot-class).
//
// Substitutes for the HW/SW thermal emulation framework the paper cites as
// [5]. Each register cell is subdivided into `subdivision`² grid nodes
// (Sec. 3's accuracy/cost knob: "increasing the number of points would
// increase accuracy, but at the cost of increased computation time").
//
// Per node:
//   - capacitance C from node volume × volumetric heat capacity;
//   - lateral conductances to the 4-neighbors (silicon conduction);
//   - a vertical conductance to the surrounding die (spreading resistance
//     into the substrate, which is held at substrate_temp_k).
//
// The model is linear; leakage's temperature dependence is closed by the
// caller (power model) between steps.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "machine/floorplan.hpp"

namespace tadfa::thermal {

/// Discrete approximation of the RF temperature field: one value per grid
/// node, in kelvin.
struct ThermalState {
  std::vector<double> node_temps;

  friend bool operator==(const ThermalState&, const ThermalState&) = default;
};

class ThermalGrid {
 public:
  /// `subdivision` >= 1: grid points per cell edge (nodes per cell =
  /// subdivision²).
  ThermalGrid(const machine::Floorplan& floorplan, unsigned subdivision = 1);

  const machine::Floorplan& floorplan() const { return *floorplan_; }
  unsigned subdivision() const { return subdivision_; }
  std::size_t node_count() const { return cap_.size(); }
  std::size_t node_rows() const { return node_rows_; }
  std::size_t node_cols() const { return node_cols_; }

  /// Node indices covering a register's cell.
  const std::vector<std::size_t>& nodes_of(machine::PhysReg r) const;

  /// Register whose cell contains this node.
  machine::PhysReg register_of(std::size_t node) const;

  /// State with every node at the substrate temperature.
  ThermalState initial_state() const;

  /// Advances the transient solution by `dt` seconds with per-register
  /// power `reg_power_w` (watts, spread uniformly over each cell's nodes).
  /// Internally substeps to respect the explicit-Euler stability limit.
  void step(ThermalState& state, std::span<const double> reg_power_w,
            double dt) const;

  /// Steady-state temperatures under constant per-register power
  /// (Gauss-Seidel to `tolerance_k`).
  ThermalState steady_state(std::span<const double> reg_power_w,
                            double tolerance_k = 1e-9) const;

  /// Largest dt (seconds) a single explicit-Euler step may take.
  double max_stable_dt() const { return stable_dt_; }

  /// Per-register temperatures: average of each cell's nodes.
  std::vector<double> register_temps(const ThermalState& state) const;

  /// Sum over nodes of C·(T - substrate): stored thermal energy relative
  /// to the substrate (J). Used by conservation tests.
  double stored_energy(const ThermalState& state) const;

  double substrate_temp() const { return substrate_temp_; }

  /// Digest of everything the solution depends on: the floorplan config
  /// (geometry and thermal coefficients) plus the subdivision knob. The
  /// conductance/capacitance tables are derived deterministically from
  /// these, so they carry no information of their own.
  std::uint64_t config_digest() const;

 private:
  std::size_t node_index(std::size_t row, std::size_t col) const {
    return row * node_cols_ + col;
  }

  const machine::Floorplan* floorplan_;
  unsigned subdivision_;
  std::size_t node_rows_ = 0;
  std::size_t node_cols_ = 0;
  double substrate_temp_ = 0;

  std::vector<double> cap_;              // C per node (J/K)
  std::vector<double> g_vertical_;       // node -> substrate (W/K)
  double g_lateral_h_ = 0;               // east-west neighbor link (W/K)
  double g_lateral_v_ = 0;               // north-south neighbor link (W/K)
  double stable_dt_ = 0;

  // Flattened update tables for step()'s inner loop: 4 neighbor slots per
  // node in fixed W/E/N/S order (absent neighbors point at the node
  // itself with conductance 0, so the flux loop is branch-free and still
  // bit-identical to the old edge-checked form).
  std::vector<std::size_t> nbr_index_;   // 4 per node
  std::vector<double> nbr_g_;            // 4 per node (W/K; 0 = no link)

  std::vector<std::vector<std::size_t>> cell_nodes_;  // per register
  std::vector<machine::PhysReg> node_owner_;
};

}  // namespace tadfa::thermal
