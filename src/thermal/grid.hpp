// Compact RC thermal model of the register file (HotSpot-class).
//
// Substitutes for the HW/SW thermal emulation framework the paper cites as
// [5]. Each register cell is subdivided into `subdivision`² grid nodes
// (Sec. 3's accuracy/cost knob: "increasing the number of points would
// increase accuracy, but at the cost of increased computation time").
//
// Per node:
//   - capacitance C from node volume × volumetric heat capacity;
//   - lateral conductances to the 4-neighbors (silicon conduction);
//   - a vertical conductance to the surrounding die (spreading resistance
//     into the substrate, which is held at substrate_temp_k).
//
// The model is linear; leakage's temperature dependence is closed by the
// caller (power model) between steps.
//
// Solver tiers: the original scalar loops survive unchanged as the
// bit-identical reference (StepKernel::kReference, always used when the
// caller asks for --strict-math). The fast tiers trade bit-identity for
// speed within a documented tolerance: kSimd keeps the reference's
// per-element operation order over structure-of-arrays tables under
// `#pragma omp simd`; kAvx2 hand-vectorizes with FMA and a hoisted
// diagonal. Fast-tier steady_state() uses active-set Gauss-Seidel (only
// nodes whose last update exceeded δ — and their neighbors — are
// re-relaxed) and both tiers accept a warm start.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "machine/floorplan.hpp"

namespace tadfa::thermal {

/// Discrete approximation of the RF temperature field: one value per grid
/// node, in kelvin.
struct ThermalState {
  std::vector<double> node_temps;

  friend bool operator==(const ThermalState&, const ThermalState&) = default;
};

/// Solver tier for the transient step kernel.
enum class StepKernel : std::uint8_t {
  kReference = 0,  ///< original scalar loop; bit-identical across builds
  kSimd = 1,       ///< SoA + omp simd; same per-element operation order
  kAvx2 = 2,       ///< AVX2+FMA intrinsics; documented tolerance only
};

const char* to_string(StepKernel kernel);

/// Knobs for steady_state(). The defaults reproduce the historical
/// behavior (cold start at substrate temperature, 1e-9 K tolerance).
struct SteadyStateOptions {
  double tolerance_k = 1e-9;
  /// Start iterating from this state instead of the substrate-temperature
  /// initial state. Must have node_count() entries when set. A warm start
  /// near the solution cuts sweeps dramatically; correctness is unaffected
  /// (the system is strictly diagonally dominant, so Gauss-Seidel
  /// converges from any start).
  const ThermalState* warm_start = nullptr;
  int max_sweeps = 100000;
};

/// What steady_state() did, for benchmarks and convergence tests.
struct SteadyStateInfo {
  int sweeps = 0;               ///< full or partial passes over the grid
  std::uint64_t relaxations = 0;  ///< individual node updates performed
  bool converged = false;
};

class ThermalGrid {
 public:
  /// `subdivision` >= 1: grid points per cell edge (nodes per cell =
  /// subdivision²). `kernel` selects the transient-step tier; an
  /// unavailable tier (kAvx2 on a CPU without AVX2+FMA) degrades to
  /// kSimd. Defaults to default_step_kernel().
  ThermalGrid(const machine::Floorplan& floorplan, unsigned subdivision = 1);
  ThermalGrid(const machine::Floorplan& floorplan, unsigned subdivision,
              StepKernel kernel);

  /// Build-default tier: kReference unless the build enabled TADFA_SIMD,
  /// then the fastest available fast tier (kAvx2 if the CPU supports
  /// AVX2+FMA, else kSimd).
  static StepKernel default_step_kernel();

  /// Whether `kernel` can run on this build + CPU.
  static bool kernel_available(StepKernel kernel);

  /// The tier this grid resolved to at construction.
  StepKernel step_kernel() const { return kernel_; }

  const machine::Floorplan& floorplan() const { return *floorplan_; }
  unsigned subdivision() const { return subdivision_; }
  std::size_t node_count() const { return cap_.size(); }
  std::size_t node_rows() const { return node_rows_; }
  std::size_t node_cols() const { return node_cols_; }

  /// Node indices covering a register's cell.
  const std::vector<std::size_t>& nodes_of(machine::PhysReg r) const;

  /// Register whose cell contains this node.
  machine::PhysReg register_of(std::size_t node) const;

  /// State with every node at the substrate temperature.
  ThermalState initial_state() const;

  /// Advances the transient solution by `dt` seconds with per-register
  /// power `reg_power_w` (watts, spread uniformly over each cell's nodes).
  /// Internally substeps to respect the explicit-Euler stability limit.
  /// Uses the grid's constructed kernel tier.
  void step(ThermalState& state, std::span<const double> reg_power_w,
            double dt) const;

  /// step() through an explicit tier, regardless of the constructed one.
  /// Callers needing reproducible results (--strict-math) pass
  /// StepKernel::kReference. The tier must be kernel_available().
  void step_with(StepKernel kernel, ThermalState& state,
                 std::span<const double> reg_power_w, double dt) const;

  /// Advances `states.size()` independent transient states by the same
  /// `dt` in one pass over the shared tables (per-lane powers in
  /// `reg_powers`). Each lane's arithmetic is identical to a sequential
  /// step() call, so results are bit-identical to the loop it replaces;
  /// the win is table locality across lanes.
  void step_batch(std::span<ThermalState> states,
                  std::span<const std::vector<double>> reg_powers,
                  double dt) const;

  /// Steady-state temperatures under constant per-register power
  /// (Gauss-Seidel to `tolerance_k`). Reference-tier grids run full
  /// sweeps (bit-identical to the historical loop); fast-tier grids use
  /// active-set sweeps that converge to the same tolerance.
  ThermalState steady_state(std::span<const double> reg_power_w,
                            double tolerance_k = 1e-9) const;

  /// Full-control overload: warm start, tolerance, sweep cap, and
  /// optional convergence stats.
  ThermalState steady_state(std::span<const double> reg_power_w,
                            const SteadyStateOptions& options,
                            SteadyStateInfo* info = nullptr) const;

  /// Solves `reg_powers.size()` steady states together over the shared
  /// tables, with per-lane early exit once a lane converges. Per-lane
  /// arithmetic matches the reference full-sweep solver exactly, so each
  /// returned state is bit-identical to a sequential
  /// steady_state(reg_powers[lane], tolerance_k) call from the same
  /// (optional, shared) warm start.
  std::vector<ThermalState> steady_state_batch(
      std::span<const std::vector<double>> reg_powers,
      double tolerance_k = 1e-9, const ThermalState* warm_start = nullptr,
      std::vector<SteadyStateInfo>* infos = nullptr) const;

  /// Largest dt (seconds) a single explicit-Euler step may take.
  double max_stable_dt() const { return stable_dt_; }

  /// Per-register temperatures: average of each cell's nodes.
  std::vector<double> register_temps(const ThermalState& state) const;

  /// Sum over nodes of C·(T - substrate): stored thermal energy relative
  /// to the substrate (J). Used by conservation tests.
  double stored_energy(const ThermalState& state) const;

  double substrate_temp() const { return substrate_temp_; }

  /// Digest of everything the solution depends on: the floorplan config
  /// (geometry and thermal coefficients) plus the subdivision knob. The
  /// conductance/capacitance tables are derived deterministically from
  /// these, so they carry no information of their own. The kernel tier is
  /// folded in only when it departs from kReference — fast tiers may
  /// differ in low-order bits, so their results must not share ResultCache
  /// keys with reference runs, while reference-tier digests stay
  /// compatible with every pre-tier cache entry.
  std::uint64_t config_digest() const;

 private:
  std::size_t node_index(std::size_t row, std::size_t col) const {
    return row * node_cols_ + col;
  }

  /// One explicit-Euler substep of length `h` through `kernel`, updating
  /// `t` in place. `p` is per-node power, `flux` is caller scratch.
  void substep_with(StepKernel kernel, double* t, const double* p,
                    double* flux, double h) const;

  /// Spreads per-register watts uniformly over each cell's nodes into
  /// `p` (resized to node_count()).
  void spread_power(std::span<const double> reg_power_w,
                    std::vector<double>& p) const;

  ThermalState steady_state_full_sweeps(const std::vector<double>& p,
                                        const SteadyStateOptions& options,
                                        SteadyStateInfo* info) const;
  ThermalState steady_state_active_set(const std::vector<double>& p,
                                       const SteadyStateOptions& options,
                                       SteadyStateInfo* info) const;

  const machine::Floorplan* floorplan_;
  unsigned subdivision_;
  StepKernel kernel_ = StepKernel::kReference;
  std::size_t node_rows_ = 0;
  std::size_t node_cols_ = 0;
  double substrate_temp_ = 0;

  std::vector<double> cap_;              // C per node (J/K)
  std::vector<double> g_vertical_;       // node -> substrate (W/K)
  double g_lateral_h_ = 0;               // east-west neighbor link (W/K)
  double g_lateral_v_ = 0;               // north-south neighbor link (W/K)
  double stable_dt_ = 0;

  // Flattened update tables for step()'s inner loop: 4 neighbor slots per
  // node in fixed W/E/N/S order (absent neighbors point at the node
  // itself with conductance 0, so the flux loop is branch-free and still
  // bit-identical to the old edge-checked form).
  std::vector<std::size_t> nbr_index_;   // 4 per node
  std::vector<double> nbr_g_;            // 4 per node (W/K; 0 = no link)

  // Structure-of-arrays mirrors of the tables above for the fast tiers:
  // slot-major planes of n entries each (slot s plane starts at s·n), so
  // the per-slot flux accumulation streams contiguously.
  std::vector<double> nbr_g_soa_;          // 4 planes
  std::vector<std::int32_t> nbr_idx_soa_;  // 4 planes
  std::vector<double> g_diag_;    // g_vertical + Σ slot g (W/K)
  std::vector<double> gv_tsub_;   // g_vertical · substrate_temp (W)
  std::vector<double> inv_cap_;   // 1 / C (K/J)

  std::vector<std::vector<std::size_t>> cell_nodes_;  // per register
  std::vector<machine::PhysReg> node_owner_;
};

}  // namespace tadfa::thermal
