// Summary statistics of a register-file thermal map.
//
// These are the quantities Fig. 1 is read by: peak temperature, how steep
// the spatial gradients are, and how homogeneous the map is. All benches
// report them so "who wins" is a number, not a picture.
#pragma once

#include <span>
#include <vector>

#include "machine/floorplan.hpp"

namespace tadfa::thermal {

struct MapStats {
  double peak_k = 0;       // hottest register
  double min_k = 0;        // coolest register
  double mean_k = 0;
  double stddev_k = 0;     // spatial non-uniformity
  double range_k = 0;      // peak - min
  /// Steepest temperature difference between physically adjacent cells —
  /// the paper's "steep thermal gradients" metric.
  double max_gradient_k = 0;
  /// Mean absolute neighbor-to-neighbor difference.
  double mean_gradient_k = 0;

  friend bool operator==(const MapStats&, const MapStats&) = default;
};

/// Computes statistics of a per-register temperature map.
MapStats compute_map_stats(const machine::Floorplan& floorplan,
                           std::span<const double> reg_temps);

/// Hotspot cells: registers whose temperature exceeds
/// mean + threshold_sigma · stddev.
std::vector<machine::PhysReg> hotspots(const machine::Floorplan& floorplan,
                                       std::span<const double> reg_temps,
                                       double threshold_sigma = 1.5);

}  // namespace tadfa::thermal
