#include "thermal/grid.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "support/assert.hpp"
#include "support/serialize.hpp"
#include "thermal/step_kernel.hpp"

namespace tadfa::thermal {

const char* to_string(StepKernel kernel) {
  switch (kernel) {
    case StepKernel::kReference:
      return "reference";
    case StepKernel::kSimd:
      return "simd";
    case StepKernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

StepKernel ThermalGrid::default_step_kernel() {
#if defined(TADFA_SIMD)
  return kernel_available(StepKernel::kAvx2) ? StepKernel::kAvx2
                                             : StepKernel::kSimd;
#else
  return StepKernel::kReference;
#endif
}

bool ThermalGrid::kernel_available(StepKernel kernel) {
  switch (kernel) {
    case StepKernel::kReference:
    case StepKernel::kSimd:
      return true;
    case StepKernel::kAvx2:
      return detail::avx2_available();
  }
  return false;
}

ThermalGrid::ThermalGrid(const machine::Floorplan& floorplan,
                         unsigned subdivision)
    : ThermalGrid(floorplan, subdivision, default_step_kernel()) {}

ThermalGrid::ThermalGrid(const machine::Floorplan& floorplan,
                         unsigned subdivision, StepKernel kernel)
    : floorplan_(&floorplan), subdivision_(subdivision) {
  TADFA_ASSERT(subdivision >= 1);
  // An unavailable tier degrades to the portable fast tier, never
  // silently to the reference tier (the caller asked for speed, and the
  // digest must reflect the tier actually run).
  kernel_ = kernel_available(kernel) ? kernel : StepKernel::kSimd;
  const auto& cfg = floorplan.config();
  const auto& tech = cfg.tech;
  substrate_temp_ = tech.substrate_temp_k;

  node_rows_ = static_cast<std::size_t>(cfg.rows) * subdivision;
  node_cols_ = static_cast<std::size_t>(cfg.cols) * subdivision;
  const std::size_t n = node_rows_ * node_cols_;
  TADFA_ASSERT(n <= static_cast<std::size_t>(
                        std::numeric_limits<std::int32_t>::max()));

  const double node_w = tech.cell_width_m / subdivision;
  const double node_h = tech.cell_height_m / subdivision;
  const double thickness = tech.die_thickness_m;
  const double k = tech.silicon_conductivity;

  // Capacitance: node volume × volumetric heat capacity.
  const double c_node = node_w * node_h * thickness * tech.silicon_volumetric_heat;
  cap_.assign(n, c_node);

  // Vertical: spreading resistance of the whole cell into the bulk,
  // R_cell = scale / (2·k·sqrt(A_cell/π)), split evenly over the cell's
  // subdivision² nodes so total vertical conductance is subdivision-
  // invariant (the granularity knob changes resolution, not physics).
  const double cell_area = tech.cell_area_m2();
  const double r_cell = tech.vertical_resistance_scale /
                        (2.0 * k * std::sqrt(cell_area / 3.14159265358979));
  const double g_cell = 1.0 / r_cell;
  const double g_node = g_cell / (subdivision * subdivision);
  g_vertical_.assign(n, g_node);

  // Lateral conduction between adjacent nodes:
  // G = k · (edge_length · thickness) / center_distance.
  g_lateral_h_ = k * (node_h * thickness) / node_w;  // east-west
  g_lateral_v_ = k * (node_w * thickness) / node_h;  // north-south

  // Stability: dt < min_i C_i / (sum of conductances at i). Corner nodes
  // have fewest links, interior most; use the interior worst case.
  const double g_max = g_node + 2 * g_lateral_h_ + 2 * g_lateral_v_;
  stable_dt_ = 0.9 * c_node / g_max;

  // Flat neighbor tables for the transient hot loop: slot order W/E/N/S,
  // missing neighbors self-linked with zero conductance.
  nbr_index_.assign(4 * n, 0);
  nbr_g_.assign(4 * n, 0.0);
  for (std::size_t row = 0; row < node_rows_; ++row) {
    for (std::size_t col = 0; col < node_cols_; ++col) {
      const std::size_t i = node_index(row, col);
      std::size_t* idx = &nbr_index_[4 * i];
      double* g = &nbr_g_[4 * i];
      idx[0] = col > 0 ? i - 1 : i;
      g[0] = col > 0 ? g_lateral_h_ : 0.0;
      idx[1] = col + 1 < node_cols_ ? i + 1 : i;
      g[1] = col + 1 < node_cols_ ? g_lateral_h_ : 0.0;
      idx[2] = row > 0 ? i - node_cols_ : i;
      g[2] = row > 0 ? g_lateral_v_ : 0.0;
      idx[3] = row + 1 < node_rows_ ? i + node_cols_ : i;
      g[3] = row + 1 < node_rows_ ? g_lateral_v_ : 0.0;
    }
  }

  // Slot-major mirrors plus fused per-node constants for the fast tiers.
  nbr_g_soa_.assign(4 * n, 0.0);
  nbr_idx_soa_.assign(4 * n, 0);
  g_diag_.assign(n, 0.0);
  gv_tsub_.assign(n, 0.0);
  inv_cap_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double g_sum = g_vertical_[i];
    for (std::size_t s = 0; s < 4; ++s) {
      nbr_g_soa_[s * n + i] = nbr_g_[4 * i + s];
      nbr_idx_soa_[s * n + i] = static_cast<std::int32_t>(nbr_index_[4 * i + s]);
      g_sum += nbr_g_[4 * i + s];
    }
    g_diag_[i] = g_sum;
    gv_tsub_[i] = g_vertical_[i] * substrate_temp_;
    inv_cap_[i] = 1.0 / cap_[i];
  }

  // Register <-> node maps.
  cell_nodes_.assign(cfg.num_registers, {});
  node_owner_.assign(n, 0);
  for (machine::PhysReg r = 0; r < cfg.num_registers; ++r) {
    const std::size_t base_row =
        static_cast<std::size_t>(floorplan.row_of(r)) * subdivision;
    const std::size_t base_col =
        static_cast<std::size_t>(floorplan.col_of(r)) * subdivision;
    auto& nodes = cell_nodes_[r];
    nodes.reserve(static_cast<std::size_t>(subdivision) * subdivision);
    for (unsigned dr = 0; dr < subdivision; ++dr) {
      for (unsigned dc = 0; dc < subdivision; ++dc) {
        const std::size_t idx = node_index(base_row + dr, base_col + dc);
        nodes.push_back(idx);
        node_owner_[idx] = r;
      }
    }
  }
}

const std::vector<std::size_t>& ThermalGrid::nodes_of(
    machine::PhysReg r) const {
  TADFA_ASSERT(r < cell_nodes_.size());
  return cell_nodes_[r];
}

machine::PhysReg ThermalGrid::register_of(std::size_t node) const {
  TADFA_ASSERT(node < node_owner_.size());
  return node_owner_[node];
}

ThermalState ThermalGrid::initial_state() const {
  ThermalState s;
  s.node_temps.assign(node_count(), substrate_temp_);
  return s;
}

void ThermalGrid::spread_power(std::span<const double> reg_power_w,
                               std::vector<double>& p) const {
  p.assign(node_count(), 0.0);
  const double per_node = 1.0 / (subdivision_ * subdivision_);
  for (machine::PhysReg r = 0; r < reg_power_w.size(); ++r) {
    const double share = reg_power_w[r] * per_node;
    for (std::size_t idx : cell_nodes_[r]) {
      p[idx] += share;
    }
  }
}

void ThermalGrid::substep_with(StepKernel kernel, double* t, const double* p,
                               double* flux, double h) const {
  const std::size_t n = node_count();
  switch (kernel) {
    case StepKernel::kReference: {
      // Single branch-free pass over nodes: the precomputed W/E/N/S slots
      // replace nested row/col loops with edge checks. Absent neighbors
      // contribute exactly 0 (g = 0, self-index), so the sums are
      // bit-identical to the original edge-checked form.
      const std::size_t* idx = nbr_index_.data();
      const double* g = nbr_g_.data();
      for (std::size_t i = 0; i < n; ++i, idx += 4, g += 4) {
        const double ti = t[i];
        double q = p[i] + g_vertical_[i] * (substrate_temp_ - ti);
        q += g[0] * (t[idx[0]] - ti);
        q += g[1] * (t[idx[1]] - ti);
        q += g[2] * (t[idx[2]] - ti);
        q += g[3] * (t[idx[3]] - ti);
        flux[i] = q;
      }
      for (std::size_t i = 0; i < n; ++i) {
        t[i] += h * flux[i] / cap_[i];
      }
      return;
    }
    case StepKernel::kSimd: {
      // Same per-element operation order as the reference — the slot loop
      // is merely unrolled across planes — so results match bit-for-bit
      // wherever the compiler does not contract into FMA (x86-64 baseline
      // codegen has no FMA; the exactness test still allows a tiny
      // tolerance for other targets).
      const double* gv = g_vertical_.data();
      const double* cap = cap_.data();
      const double ts = substrate_temp_;
#pragma omp simd
      for (std::size_t i = 0; i < n; ++i) {
        flux[i] = p[i] + gv[i] * (ts - t[i]);
      }
      for (std::size_t s = 0; s < 4; ++s) {
        const double* g = nbr_g_soa_.data() + s * n;
        const std::int32_t* idx = nbr_idx_soa_.data() + s * n;
#pragma omp simd
        for (std::size_t i = 0; i < n; ++i) {
          flux[i] += g[i] * (t[idx[i]] - t[i]);
        }
      }
#pragma omp simd
      for (std::size_t i = 0; i < n; ++i) {
        t[i] += h * flux[i] / cap[i];
      }
      return;
    }
    case StepKernel::kAvx2: {
      detail::FastTables tables;
      tables.gv_tsub = gv_tsub_.data();
      tables.g_diag = g_diag_.data();
      for (std::size_t s = 0; s < 4; ++s) {
        tables.g_slot[s] = nbr_g_soa_.data() + s * n;
        tables.idx_slot[s] = nbr_idx_soa_.data() + s * n;
      }
      tables.inv_cap = inv_cap_.data();
      tables.n = n;
      tables.cols = node_cols_;
      detail::substep_avx2(tables, p, flux, t, h);
      return;
    }
  }
  TADFA_ASSERT(false && "unknown StepKernel");
}

void ThermalGrid::step(ThermalState& state,
                       std::span<const double> reg_power_w, double dt) const {
  step_with(kernel_, state, reg_power_w, dt);
}

void ThermalGrid::step_with(StepKernel kernel, ThermalState& state,
                            std::span<const double> reg_power_w,
                            double dt) const {
  TADFA_ASSERT(kernel_available(kernel));
  TADFA_ASSERT(state.node_temps.size() == node_count());
  TADFA_ASSERT(reg_power_w.size() == floorplan_->num_registers());
  TADFA_ASSERT(dt >= 0.0);
  if (dt == 0.0) {
    return;
  }

  // Spread per-register power uniformly over the cell's nodes. The
  // scratch is thread_local — the DFA calls step() once per instruction
  // per iteration, and per-call mallocs both cost time and serialize the
  // driver's worker pool on the allocator.
  thread_local std::vector<double> scratch_power;
  thread_local std::vector<double> scratch_flux;
  std::vector<double>& p = scratch_power;
  spread_power(reg_power_w, p);

  const int substeps = std::max(1, static_cast<int>(std::ceil(dt / stable_dt_)));
  const double h = dt / substeps;

  const std::size_t n = node_count();
  std::vector<double>& flux = scratch_flux;
  flux.resize(n);
  for (int s = 0; s < substeps; ++s) {
    substep_with(kernel, state.node_temps.data(), p.data(), flux.data(), h);
  }
}

void ThermalGrid::step_batch(std::span<ThermalState> states,
                             std::span<const std::vector<double>> reg_powers,
                             double dt) const {
  TADFA_ASSERT(states.size() == reg_powers.size());
  TADFA_ASSERT(dt >= 0.0);
  if (states.empty() || dt == 0.0) {
    return;
  }
  const std::size_t n = node_count();
  const std::size_t lanes = states.size();
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    TADFA_ASSERT(states[lane].node_temps.size() == n);
    TADFA_ASSERT(reg_powers[lane].size() == floorplan_->num_registers());
  }

  thread_local std::vector<double> scratch_powers;
  thread_local std::vector<double> scratch_flux;
  scratch_powers.assign(n * lanes, 0.0);
  scratch_flux.resize(n);
  const double per_node = 1.0 / (subdivision_ * subdivision_);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    double* p = scratch_powers.data() + lane * n;
    const std::vector<double>& reg_power_w = reg_powers[lane];
    for (machine::PhysReg r = 0; r < reg_power_w.size(); ++r) {
      const double share = reg_power_w[r] * per_node;
      for (std::size_t idx : cell_nodes_[r]) {
        p[idx] += share;
      }
    }
  }

  const int substeps = std::max(1, static_cast<int>(std::ceil(dt / stable_dt_)));
  const double h = dt / substeps;

  // Substeps outer, lanes inner: every lane reuses the conductance tables
  // while they are hot. Each lane still sees the exact substep sequence a
  // sequential step() call would run, so the results are bit-identical.
  for (int s = 0; s < substeps; ++s) {
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      substep_with(kernel_, states[lane].node_temps.data(),
                   scratch_powers.data() + lane * n, scratch_flux.data(), h);
    }
  }
}

ThermalState ThermalGrid::steady_state(std::span<const double> reg_power_w,
                                       double tolerance_k) const {
  SteadyStateOptions options;
  options.tolerance_k = tolerance_k;
  return steady_state(reg_power_w, options, nullptr);
}

ThermalState ThermalGrid::steady_state(std::span<const double> reg_power_w,
                                       const SteadyStateOptions& options,
                                       SteadyStateInfo* info) const {
  TADFA_ASSERT(reg_power_w.size() == floorplan_->num_registers());
  TADFA_ASSERT(options.warm_start == nullptr ||
               options.warm_start->node_temps.size() == node_count());

  std::vector<double> p;
  spread_power(reg_power_w, p);

  if (kernel_ == StepKernel::kReference) {
    return steady_state_full_sweeps(p, options, info);
  }
  return steady_state_active_set(p, options, info);
}

ThermalState ThermalGrid::steady_state_full_sweeps(
    const std::vector<double>& p, const SteadyStateOptions& options,
    SteadyStateInfo* info) const {
  ThermalState state =
      options.warm_start != nullptr ? *options.warm_start : initial_state();
  std::vector<double>& t = state.node_temps;
  const double tolerance_k = options.tolerance_k;

  // Gauss-Seidel on  (G_v + ΣG_l)·T_i = P_i + G_v·T_sub + Σ G_l·T_j.
  // The system matrix is strictly diagonally dominant (G_v > 0), so this
  // converges for any starting point.
  double worst = tolerance_k + 1;
  int iterations = 0;
  std::uint64_t relaxations = 0;
  const int max_iterations = options.max_sweeps;
  while (worst > tolerance_k && iterations < max_iterations) {
    worst = 0.0;
    ++iterations;
    for (std::size_t row = 0; row < node_rows_; ++row) {
      for (std::size_t col = 0; col < node_cols_; ++col) {
        const std::size_t i = node_index(row, col);
        double g_sum = g_vertical_[i];
        double rhs = p[i] + g_vertical_[i] * substrate_temp_;
        if (col > 0) {
          g_sum += g_lateral_h_;
          rhs += g_lateral_h_ * t[i - 1];
        }
        if (col + 1 < node_cols_) {
          g_sum += g_lateral_h_;
          rhs += g_lateral_h_ * t[i + 1];
        }
        if (row > 0) {
          g_sum += g_lateral_v_;
          rhs += g_lateral_v_ * t[i - node_cols_];
        }
        if (row + 1 < node_rows_) {
          g_sum += g_lateral_v_;
          rhs += g_lateral_v_ * t[i + node_cols_];
        }
        const double updated = rhs / g_sum;
        worst = std::max(worst, std::abs(updated - t[i]));
        t[i] = updated;
        ++relaxations;
      }
    }
  }
  if (info != nullptr) {
    info->sweeps = iterations;
    info->relaxations = relaxations;
    info->converged = worst <= tolerance_k;
  }
  return state;
}

ThermalState ThermalGrid::steady_state_active_set(
    const std::vector<double>& p, const SteadyStateOptions& options,
    SteadyStateInfo* info) const {
  const std::size_t n = node_count();
  ThermalState state =
      options.warm_start != nullptr ? *options.warm_start : initial_state();
  std::vector<double>& t = state.node_temps;
  const double tolerance_k = options.tolerance_k;
  // Reactivation threshold δ: a node that moved more than this keeps
  // itself and its neighbors in the next sweep. Strictly tighter than the
  // convergence tolerance so the final validation sweep can pass, but not
  // much tighter — per-sweep movement decays geometrically, so every
  // halving of δ below the tolerance buys extra sweeps for nothing.
  const double theta = 0.5 * tolerance_k;

  // Update form matches the full-sweep solver's equation with the
  // branches folded into the precomputed tables (absent links have g = 0
  // and a self index, contributing exactly 0 to rhs): this tier trades
  // bit-identity with the reference assembly order for table reuse.
  auto relax_node = [&](std::size_t i) {
    const std::size_t* idx = &nbr_index_[4 * i];
    const double* g = &nbr_g_[4 * i];
    double rhs = p[i] + gv_tsub_[i];
    rhs += g[0] * t[idx[0]];
    rhs += g[1] * t[idx[1]];
    rhs += g[2] * t[idx[2]];
    rhs += g[3] * t[idx[3]];
    const double updated = rhs / g_diag_[i];
    const double delta = std::abs(updated - t[i]);
    t[i] = updated;
    return delta;
  };

  std::vector<char> active(n, 0);
  std::vector<char> next(n, 0);
  auto mark = [&](std::size_t i) {
    const std::size_t* idx = &nbr_index_[4 * i];
    next[i] = 1;
    next[idx[0]] = 1;
    next[idx[1]] = 1;
    next[idx[2]] = 1;
    next[idx[3]] = 1;
  };

  // Hybrid sweep schedule. While most nodes are still moving (the bulk
  // of a cold solve — per-sweep movement decays through a global mode,
  // so the whole grid crosses δ together near the end), the worklist
  // bookkeeping (five flag stores per mover, a flag test per node)
  // costs more than it saves: run plain full sweeps over the fused
  // tables and just count movers. Once fewer than a quarter of the
  // nodes moved more than δ, one marking sweep seeds the worklist and
  // partial sweeps re-relax only the active set. A drained worklist
  // falls back to a full sweep, which doubles as the validation pass:
  // converged iff a full sweep moved no node by more than tolerance_k —
  // the same global criterion the reference solver terminates on.
  int sweeps = 0;
  std::uint64_t relaxations = 0;
  bool converged = false;
  bool worklist = false;
  bool mark_now = false;
  while (sweeps < options.max_sweeps) {
    ++sweeps;
    if (worklist) {
      // Partial sweep: relax only the active set; any node still moving
      // by more than δ re-activates itself and its neighbors.
      bool any = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (!active[i]) {
          continue;
        }
        ++relaxations;
        if (relax_node(i) > theta) {
          mark(i);
          any = true;
        }
      }
      active.swap(next);
      std::fill(next.begin(), next.end(), 0);
      if (!any) {
        worklist = false;
        mark_now = false;  // next full sweep validates before re-seeding
      }
    } else {
      double worst = 0.0;
      std::size_t movers = 0;
      bool any = false;
      for (std::size_t i = 0; i < n; ++i) {
        ++relaxations;
        const double delta = relax_node(i);
        worst = std::max(worst, delta);
        if (delta > theta) {
          ++movers;
          if (mark_now) {
            mark(i);
            any = true;
          }
        }
      }
      if (worst <= tolerance_k) {
        converged = true;
        break;
      }
      if (mark_now) {
        active.swap(next);
        std::fill(next.begin(), next.end(), 0);
        worklist = any;
      } else {
        mark_now = movers * 4 <= n;
      }
    }
  }
  if (info != nullptr) {
    info->sweeps = sweeps;
    info->relaxations = relaxations;
    info->converged = converged;
  }
  return state;
}

std::vector<ThermalState> ThermalGrid::steady_state_batch(
    std::span<const std::vector<double>> reg_powers, double tolerance_k,
    const ThermalState* warm_start,
    std::vector<SteadyStateInfo>* infos) const {
  const std::size_t lanes = reg_powers.size();
  const std::size_t n = node_count();
  TADFA_ASSERT(warm_start == nullptr ||
               warm_start->node_temps.size() == n);
  if (infos != nullptr) {
    infos->assign(lanes, {});
  }
  std::vector<ThermalState> states;
  states.reserve(lanes);
  if (lanes == 0) {
    return states;
  }

  std::vector<double> powers(n * lanes, 0.0);
  const double per_node = 1.0 / (subdivision_ * subdivision_);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    TADFA_ASSERT(reg_powers[lane].size() == floorplan_->num_registers());
    double* p = powers.data() + lane * n;
    for (machine::PhysReg r = 0; r < reg_powers[lane].size(); ++r) {
      const double share = reg_powers[lane][r] * per_node;
      for (std::size_t idx : cell_nodes_[r]) {
        p[idx] += share;
      }
    }
    states.push_back(warm_start != nullptr ? *warm_start : initial_state());
  }

  // Gauss-Seidel with the node loop outer and lanes inner, so every lane
  // reuses the link structure resolved for the current node. Per-lane
  // operation order matches the reference full-sweep solver exactly
  // (lane-invariant g_sum, rhs accumulated in the same W/E/N/S branch
  // order), so each lane's result is bit-identical to a sequential
  // reference-tier steady_state() call from the same start.
  std::vector<char> done(lanes, 0);
  std::vector<double> worst(lanes, 0.0);
  std::vector<int> lane_sweeps(lanes, 0);
  std::size_t remaining = lanes;
  int iterations = 0;
  const int max_iterations = 100000;
  while (remaining > 0 && iterations < max_iterations) {
    ++iterations;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (!done[lane]) {
        worst[lane] = 0.0;
      }
    }
    for (std::size_t row = 0; row < node_rows_; ++row) {
      for (std::size_t col = 0; col < node_cols_; ++col) {
        const std::size_t i = node_index(row, col);
        double g_sum = g_vertical_[i];
        std::size_t link_idx[4];
        double link_g[4];
        std::size_t links = 0;
        if (col > 0) {
          g_sum += g_lateral_h_;
          link_idx[links] = i - 1;
          link_g[links++] = g_lateral_h_;
        }
        if (col + 1 < node_cols_) {
          g_sum += g_lateral_h_;
          link_idx[links] = i + 1;
          link_g[links++] = g_lateral_h_;
        }
        if (row > 0) {
          g_sum += g_lateral_v_;
          link_idx[links] = i - node_cols_;
          link_g[links++] = g_lateral_v_;
        }
        if (row + 1 < node_rows_) {
          g_sum += g_lateral_v_;
          link_idx[links] = i + node_cols_;
          link_g[links++] = g_lateral_v_;
        }
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          if (done[lane]) {
            continue;
          }
          std::vector<double>& t = states[lane].node_temps;
          double rhs =
              powers[lane * n + i] + g_vertical_[i] * substrate_temp_;
          for (std::size_t l = 0; l < links; ++l) {
            rhs += link_g[l] * t[link_idx[l]];
          }
          const double updated = rhs / g_sum;
          worst[lane] = std::max(worst[lane], std::abs(updated - t[i]));
          t[i] = updated;
        }
      }
    }
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      if (done[lane]) {
        continue;
      }
      lane_sweeps[lane] = iterations;
      if (worst[lane] <= tolerance_k) {
        done[lane] = 1;
        --remaining;
      }
    }
  }
  if (infos != nullptr) {
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      (*infos)[lane].sweeps = lane_sweeps[lane];
      (*infos)[lane].relaxations =
          static_cast<std::uint64_t>(lane_sweeps[lane]) * n;
      (*infos)[lane].converged = done[lane] != 0;
    }
  }
  return states;
}

std::vector<double> ThermalGrid::register_temps(
    const ThermalState& state) const {
  TADFA_ASSERT(state.node_temps.size() == node_count());
  std::vector<double> out(floorplan_->num_registers(), 0.0);
  for (machine::PhysReg r = 0; r < out.size(); ++r) {
    double sum = 0.0;
    for (std::size_t idx : cell_nodes_[r]) {
      sum += state.node_temps[idx];
    }
    out[r] = sum / static_cast<double>(cell_nodes_[r].size());
  }
  return out;
}

double ThermalGrid::stored_energy(const ThermalState& state) const {
  TADFA_ASSERT(state.node_temps.size() == node_count());
  double e = 0.0;
  for (std::size_t i = 0; i < node_count(); ++i) {
    e += cap_[i] * (state.node_temps[i] - substrate_temp_);
  }
  return e;
}

std::uint64_t ThermalGrid::config_digest() const {
  const std::uint64_t base = Hasher()
                                 .mix(floorplan_->config_digest())
                                 .mix(std::uint64_t{subdivision_})
                                 .digest();
  if (kernel_ == StepKernel::kReference) {
    return base;
  }
  // Fast tiers are tolerance-equal, not bit-equal: give them their own
  // key space so ResultCache never serves a fast-tier result to a
  // reference (--strict-math) run or vice versa. Reference grids keep the
  // historical digest so existing cache entries stay valid.
  return Hasher()
      .mix(base)
      .mix(std::string_view{"thermal.step_kernel"})
      .mix(static_cast<std::uint64_t>(kernel_))
      .digest();
}

}  // namespace tadfa::thermal
