#include "thermal/grid.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/serialize.hpp"

namespace tadfa::thermal {

ThermalGrid::ThermalGrid(const machine::Floorplan& floorplan,
                         unsigned subdivision)
    : floorplan_(&floorplan), subdivision_(subdivision) {
  TADFA_ASSERT(subdivision >= 1);
  const auto& cfg = floorplan.config();
  const auto& tech = cfg.tech;
  substrate_temp_ = tech.substrate_temp_k;

  node_rows_ = static_cast<std::size_t>(cfg.rows) * subdivision;
  node_cols_ = static_cast<std::size_t>(cfg.cols) * subdivision;
  const std::size_t n = node_rows_ * node_cols_;

  const double node_w = tech.cell_width_m / subdivision;
  const double node_h = tech.cell_height_m / subdivision;
  const double thickness = tech.die_thickness_m;
  const double k = tech.silicon_conductivity;

  // Capacitance: node volume × volumetric heat capacity.
  const double c_node = node_w * node_h * thickness * tech.silicon_volumetric_heat;
  cap_.assign(n, c_node);

  // Vertical: spreading resistance of the whole cell into the bulk,
  // R_cell = scale / (2·k·sqrt(A_cell/π)), split evenly over the cell's
  // subdivision² nodes so total vertical conductance is subdivision-
  // invariant (the granularity knob changes resolution, not physics).
  const double cell_area = tech.cell_area_m2();
  const double r_cell = tech.vertical_resistance_scale /
                        (2.0 * k * std::sqrt(cell_area / 3.14159265358979));
  const double g_cell = 1.0 / r_cell;
  const double g_node = g_cell / (subdivision * subdivision);
  g_vertical_.assign(n, g_node);

  // Lateral conduction between adjacent nodes:
  // G = k · (edge_length · thickness) / center_distance.
  g_lateral_h_ = k * (node_h * thickness) / node_w;  // east-west
  g_lateral_v_ = k * (node_w * thickness) / node_h;  // north-south

  // Stability: dt < min_i C_i / (sum of conductances at i). Corner nodes
  // have fewest links, interior most; use the interior worst case.
  const double g_max = g_node + 2 * g_lateral_h_ + 2 * g_lateral_v_;
  stable_dt_ = 0.9 * c_node / g_max;

  // Flat neighbor tables for the transient hot loop: slot order W/E/N/S,
  // missing neighbors self-linked with zero conductance.
  nbr_index_.assign(4 * n, 0);
  nbr_g_.assign(4 * n, 0.0);
  for (std::size_t row = 0; row < node_rows_; ++row) {
    for (std::size_t col = 0; col < node_cols_; ++col) {
      const std::size_t i = node_index(row, col);
      std::size_t* idx = &nbr_index_[4 * i];
      double* g = &nbr_g_[4 * i];
      idx[0] = col > 0 ? i - 1 : i;
      g[0] = col > 0 ? g_lateral_h_ : 0.0;
      idx[1] = col + 1 < node_cols_ ? i + 1 : i;
      g[1] = col + 1 < node_cols_ ? g_lateral_h_ : 0.0;
      idx[2] = row > 0 ? i - node_cols_ : i;
      g[2] = row > 0 ? g_lateral_v_ : 0.0;
      idx[3] = row + 1 < node_rows_ ? i + node_cols_ : i;
      g[3] = row + 1 < node_rows_ ? g_lateral_v_ : 0.0;
    }
  }

  // Register <-> node maps.
  cell_nodes_.assign(cfg.num_registers, {});
  node_owner_.assign(n, 0);
  for (machine::PhysReg r = 0; r < cfg.num_registers; ++r) {
    const std::size_t base_row =
        static_cast<std::size_t>(floorplan.row_of(r)) * subdivision;
    const std::size_t base_col =
        static_cast<std::size_t>(floorplan.col_of(r)) * subdivision;
    auto& nodes = cell_nodes_[r];
    nodes.reserve(static_cast<std::size_t>(subdivision) * subdivision);
    for (unsigned dr = 0; dr < subdivision; ++dr) {
      for (unsigned dc = 0; dc < subdivision; ++dc) {
        const std::size_t idx = node_index(base_row + dr, base_col + dc);
        nodes.push_back(idx);
        node_owner_[idx] = r;
      }
    }
  }
}

const std::vector<std::size_t>& ThermalGrid::nodes_of(
    machine::PhysReg r) const {
  TADFA_ASSERT(r < cell_nodes_.size());
  return cell_nodes_[r];
}

machine::PhysReg ThermalGrid::register_of(std::size_t node) const {
  TADFA_ASSERT(node < node_owner_.size());
  return node_owner_[node];
}

ThermalState ThermalGrid::initial_state() const {
  ThermalState s;
  s.node_temps.assign(node_count(), substrate_temp_);
  return s;
}

void ThermalGrid::step(ThermalState& state,
                       std::span<const double> reg_power_w, double dt) const {
  TADFA_ASSERT(state.node_temps.size() == node_count());
  TADFA_ASSERT(reg_power_w.size() == floorplan_->num_registers());
  TADFA_ASSERT(dt >= 0.0);
  if (dt == 0.0) {
    return;
  }

  // Spread per-register power uniformly over the cell's nodes. The
  // scratch is thread_local — the DFA calls step() once per instruction
  // per iteration, and per-call mallocs both cost time and serialize the
  // driver's worker pool on the allocator.
  thread_local std::vector<double> scratch_power;
  thread_local std::vector<double> scratch_flux;
  std::vector<double>& p = scratch_power;
  p.assign(node_count(), 0.0);
  const double per_node = 1.0 / (subdivision_ * subdivision_);
  for (machine::PhysReg r = 0; r < reg_power_w.size(); ++r) {
    const double share = reg_power_w[r] * per_node;
    for (std::size_t idx : cell_nodes_[r]) {
      p[idx] += share;
    }
  }

  const int substeps = std::max(1, static_cast<int>(std::ceil(dt / stable_dt_)));
  const double h = dt / substeps;

  // Single branch-free pass over nodes per substep: the precomputed W/E/N/S
  // slots replace the nested row/col loops with edge checks. Absent
  // neighbors contribute exactly 0 (g = 0, self-index), so the sums are
  // bit-identical to the old form.
  const std::size_t n = node_count();
  std::vector<double>& t = state.node_temps;
  std::vector<double>& flux = scratch_flux;
  flux.resize(n);
  for (int s = 0; s < substeps; ++s) {
    const std::size_t* idx = nbr_index_.data();
    const double* g = nbr_g_.data();
    for (std::size_t i = 0; i < n; ++i, idx += 4, g += 4) {
      const double ti = t[i];
      double q = p[i] + g_vertical_[i] * (substrate_temp_ - ti);
      q += g[0] * (t[idx[0]] - ti);
      q += g[1] * (t[idx[1]] - ti);
      q += g[2] * (t[idx[2]] - ti);
      q += g[3] * (t[idx[3]] - ti);
      flux[i] = q;
    }
    for (std::size_t i = 0; i < n; ++i) {
      t[i] += h * flux[i] / cap_[i];
    }
  }
}

ThermalState ThermalGrid::steady_state(std::span<const double> reg_power_w,
                                       double tolerance_k) const {
  TADFA_ASSERT(reg_power_w.size() == floorplan_->num_registers());

  std::vector<double> p(node_count(), 0.0);
  const double per_node = 1.0 / (subdivision_ * subdivision_);
  for (machine::PhysReg r = 0; r < reg_power_w.size(); ++r) {
    const double share = reg_power_w[r] * per_node;
    for (std::size_t idx : cell_nodes_[r]) {
      p[idx] += share;
    }
  }

  ThermalState state = initial_state();
  std::vector<double>& t = state.node_temps;

  // Gauss-Seidel on  (G_v + ΣG_l)·T_i = P_i + G_v·T_sub + Σ G_l·T_j.
  // The system matrix is strictly diagonally dominant (G_v > 0), so this
  // converges for any starting point.
  double worst = tolerance_k + 1;
  int iterations = 0;
  const int max_iterations = 100000;
  while (worst > tolerance_k && iterations < max_iterations) {
    worst = 0.0;
    ++iterations;
    for (std::size_t row = 0; row < node_rows_; ++row) {
      for (std::size_t col = 0; col < node_cols_; ++col) {
        const std::size_t i = node_index(row, col);
        double g_sum = g_vertical_[i];
        double rhs = p[i] + g_vertical_[i] * substrate_temp_;
        if (col > 0) {
          g_sum += g_lateral_h_;
          rhs += g_lateral_h_ * t[i - 1];
        }
        if (col + 1 < node_cols_) {
          g_sum += g_lateral_h_;
          rhs += g_lateral_h_ * t[i + 1];
        }
        if (row > 0) {
          g_sum += g_lateral_v_;
          rhs += g_lateral_v_ * t[i - node_cols_];
        }
        if (row + 1 < node_rows_) {
          g_sum += g_lateral_v_;
          rhs += g_lateral_v_ * t[i + node_cols_];
        }
        const double updated = rhs / g_sum;
        worst = std::max(worst, std::abs(updated - t[i]));
        t[i] = updated;
      }
    }
  }
  return state;
}

std::vector<double> ThermalGrid::register_temps(
    const ThermalState& state) const {
  TADFA_ASSERT(state.node_temps.size() == node_count());
  std::vector<double> out(floorplan_->num_registers(), 0.0);
  for (machine::PhysReg r = 0; r < out.size(); ++r) {
    double sum = 0.0;
    for (std::size_t idx : cell_nodes_[r]) {
      sum += state.node_temps[idx];
    }
    out[r] = sum / static_cast<double>(cell_nodes_[r].size());
  }
  return out;
}

double ThermalGrid::stored_energy(const ThermalState& state) const {
  TADFA_ASSERT(state.node_temps.size() == node_count());
  double e = 0.0;
  for (std::size_t i = 0; i < node_count(); ++i) {
    e += cap_[i] * (state.node_temps[i] - substrate_temp_);
  }
  return e;
}

std::uint64_t ThermalGrid::config_digest() const {
  return Hasher()
      .mix(floorplan_->config_digest())
      .mix(std::uint64_t{subdivision_})
      .digest();
}

}  // namespace tadfa::thermal
