// AVX2+FMA tier of the transient step kernel. This translation unit is
// the only one compiled with -mavx2 -mfma (see CMakeLists.txt), so the
// vector body must stay here; everything else reaches it through the
// narrow seam in step_kernel.hpp. On targets where those flags are not
// available the same TU compiles to a stub that reports the tier absent.

#include "thermal/step_kernel.hpp"

#include <algorithm>

#include "support/assert.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace tadfa::thermal::detail {

bool avx2_available() {
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
}

namespace {

// Indexed scalar form of the rearranged flux, for the first and last rows
// (whose N/S shifted loads would read outside the grid).
void flux_scalar(const FastTables& tb, const double* p, const double* t,
                 double* flux, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    double q = p[i] + tb.gv_tsub[i] - tb.g_diag[i] * t[i];
    q += tb.g_slot[0][i] * t[tb.idx_slot[0][i]];
    q += tb.g_slot[1][i] * t[tb.idx_slot[1][i]];
    q += tb.g_slot[2][i] * t[tb.idx_slot[2][i]];
    q += tb.g_slot[3][i] * t[tb.idx_slot[3][i]];
    flux[i] = q;
  }
}

}  // namespace

void substep_avx2(const FastTables& tb, const double* p, double* flux,
                  double* t, double h) {
  const std::size_t n = tb.n;
  const std::size_t cols = tb.cols;

  // Flux pass. Interior rows [cols, n - cols) replace the index gathers
  // with shifted contiguous loads: node i's W/E/N/S neighbors sit at
  // i±1 and i±cols. At row edges the shifted load crosses into the
  // adjacent row, but the conductance there is exactly 0, so the fused
  // multiply contributes nothing — same trick the self-linked scalar
  // tables use.
  flux_scalar(tb, p, t, flux, 0, std::min(cols, n));
  const std::size_t interior_end = n - cols;
  std::size_t i = cols;
  // Two independent accumulator chains per vector: (base − g_diag·t) +
  // W + E and N + S, summed at the end. The FMA latency chain shrinks
  // from six to three, which matters because each iteration is
  // load-heavy and the out-of-order window is shared with 12 loads.
  for (; i + 4 <= interior_end; i += 4) {
    const __m256d ti = _mm256_loadu_pd(t + i);
    __m256d q0 =
        _mm256_add_pd(_mm256_loadu_pd(p + i), _mm256_loadu_pd(tb.gv_tsub + i));
    q0 = _mm256_fnmadd_pd(_mm256_loadu_pd(tb.g_diag + i), ti, q0);
    q0 = _mm256_fmadd_pd(_mm256_loadu_pd(tb.g_slot[0] + i),
                         _mm256_loadu_pd(t + i - 1), q0);
    q0 = _mm256_fmadd_pd(_mm256_loadu_pd(tb.g_slot[1] + i),
                         _mm256_loadu_pd(t + i + 1), q0);
    __m256d q1 = _mm256_mul_pd(_mm256_loadu_pd(tb.g_slot[2] + i),
                               _mm256_loadu_pd(t + i - cols));
    q1 = _mm256_fmadd_pd(_mm256_loadu_pd(tb.g_slot[3] + i),
                         _mm256_loadu_pd(t + i + cols), q1);
    _mm256_storeu_pd(flux + i, _mm256_add_pd(q0, q1));
  }
  flux_scalar(tb, p, t, flux, i, n);

  // Apply pass: t += h · flux / C, with the reciprocal capacitance
  // precomputed.
  const __m256d hv = _mm256_set1_pd(h);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d f = _mm256_loadu_pd(flux + j);
    const __m256d ic = _mm256_loadu_pd(tb.inv_cap + j);
    __m256d tj = _mm256_loadu_pd(t + j);
    tj = _mm256_fmadd_pd(_mm256_mul_pd(f, ic), hv, tj);
    _mm256_storeu_pd(t + j, tj);
  }
  for (; j < n; ++j) {
    t[j] += h * flux[j] * tb.inv_cap[j];
  }
}

}  // namespace tadfa::thermal::detail

#else  // !(__AVX2__ && __FMA__)

namespace tadfa::thermal::detail {

bool avx2_available() { return false; }

void substep_avx2(const FastTables&, const double*, double*, double*,
                  double) {
  TADFA_ASSERT(false && "AVX2 step kernel not compiled into this build");
}

}  // namespace tadfa::thermal::detail

#endif
