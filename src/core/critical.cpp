#include "core/critical.hpp"

#include <algorithm>
#include <cmath>

#include "dataflow/dominators.hpp"
#include "pipeline/analysis_manager.hpp"
#include "support/assert.hpp"
#include "support/statistics.hpp"

namespace tadfa::core {

std::vector<CriticalVariable> rank_critical_variables(
    const ir::Function& func, const AccessDistributionModel& model,
    const ThermalDfaResult& dfa, const thermal::ThermalGrid& grid,
    const machine::TimingModel& timing, double trip_count_guess,
    pipeline::AnalysisManager& am) {
  const machine::Floorplan& fp = grid.floorplan();
  const machine::TechnologyParams& tech = fp.config().tech;
  const std::uint32_t n_phys = fp.num_registers();

  const std::vector<double>& freq =
      pipeline::block_frequencies(am, func, trip_count_guess);

  // Whole-program time estimate for energy-rate normalization.
  double total_cycles = 0;
  for (const ir::BasicBlock& b : func.blocks()) {
    for (const ir::Instruction& inst : b.instructions()) {
      total_cycles += freq[b.id()] * timing.cycles(inst);
    }
  }
  const double total_seconds =
      std::max(total_cycles, 1.0) * tech.cycle_seconds();

  // Use the exit-state map as the "where is it hot" field.
  const std::vector<double>& field = dfa.exit_reg_temps_k;
  TADFA_ASSERT(field.size() == n_phys);

  std::vector<CriticalVariable> out(func.reg_count());
  for (ir::Reg v = 0; v < func.reg_count(); ++v) {
    out[v].vreg = v;
    const std::vector<double>& dist = model.distribution(v);
    double cell_temp = 0.0;
    double mass = 0.0;
    for (std::uint32_t r = 0; r < n_phys; ++r) {
      cell_temp += dist[r] * field[r];
      mass += dist[r];
    }
    out[v].expected_cell_temp_k =
        mass > 0 ? cell_temp / mass : grid.substrate_temp();
  }

  for (const ir::BasicBlock& b : func.blocks()) {
    for (const ir::Instruction& inst : b.instructions()) {
      const double f = freq[b.id()];
      for (ir::Reg u : inst.uses()) {
        out[u].weighted_accesses += f;
        out[u].energy_rate_w += f * tech.read_energy_j / total_seconds;
      }
      if (auto d = inst.def()) {
        out[*d].weighted_accesses += f;
        out[*d].energy_rate_w += f * tech.write_energy_j / total_seconds;
      }
    }
  }

  for (CriticalVariable& cv : out) {
    const double excess =
        std::max(cv.expected_cell_temp_k - grid.substrate_temp(), 0.0);
    cv.score = cv.energy_rate_w * excess;
  }

  std::sort(out.begin(), out.end(),
            [](const CriticalVariable& a, const CriticalVariable& b) {
              if (a.score != b.score) {
                return a.score > b.score;
              }
              return a.vreg < b.vreg;
            });
  // Drop registers that never appear.
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const CriticalVariable& cv) {
                             return cv.weighted_accesses == 0;
                           }),
            out.end());
  return out;
}

std::vector<CriticalVariable> rank_critical_variables(
    const ir::Function& func, const AccessDistributionModel& model,
    const ThermalDfaResult& dfa, const thermal::ThermalGrid& grid,
    const machine::TimingModel& timing, double trip_count_guess) {
  pipeline::AnalysisManager am;
  return rank_critical_variables(func, model, dfa, grid, timing,
                                 trip_count_guess, am);
}

std::vector<HotProgramPoint> hot_program_points(const ThermalDfaResult& dfa,
                                                double sigma) {
  std::vector<HotProgramPoint> out;
  if (dfa.per_instruction.empty()) {
    return out;
  }
  std::vector<double> peaks;
  peaks.reserve(dfa.per_instruction.size());
  for (const InstructionThermal& it : dfa.per_instruction) {
    peaks.push_back(it.peak_k);
  }
  const double cut =
      stats::mean(peaks) + sigma * stats::stddev(peaks);
  for (const InstructionThermal& it : dfa.per_instruction) {
    if (it.peak_k > cut) {
      out.push_back({it.ref, it.peak_k});
    }
  }
  return out;
}

}  // namespace tadfa::core
