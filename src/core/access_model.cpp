#include "core/access_model.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace tadfa::core {

FirstFitPredictionModel::FirstFitPredictionModel(
    const ir::Function& func, const machine::Floorplan& floorplan,
    std::size_t estimated_pressure) {
  const std::uint32_t n_phys = floorplan.num_registers();
  const std::size_t window =
      std::clamp<std::size_t>(estimated_pressure, 1, n_phys);

  // All virtual registers share the same prediction: uniform over the
  // first-fit window. (A finer model could stagger windows by interval
  // start; uniform already captures the clustering that matters.)
  std::vector<double> row(n_phys, 0.0);
  for (std::size_t p = 0; p < window; ++p) {
    row[p] = 1.0 / static_cast<double>(window);
  }
  rows_.assign(func.reg_count(), row);
}

const std::vector<double>& FirstFitPredictionModel::distribution(
    ir::Reg v) const {
  TADFA_ASSERT(v < rows_.size());
  return rows_[v];
}

UniformPredictionModel::UniformPredictionModel(
    const ir::Function& func, const machine::Floorplan& floorplan)
    : reg_count_(func.reg_count()) {
  const std::uint32_t n_phys = floorplan.num_registers();
  uniform_.assign(n_phys, 1.0 / static_cast<double>(n_phys));
}

const std::vector<double>& UniformPredictionModel::distribution(
    ir::Reg v) const {
  TADFA_ASSERT(v < reg_count_);
  return uniform_;
}

ExactAssignmentModel::ExactAssignmentModel(
    const ir::Function& func, const machine::Floorplan& floorplan,
    const machine::RegisterAssignment& assignment) {
  const std::uint32_t n_phys = floorplan.num_registers();
  rows_.assign(func.reg_count(), std::vector<double>(n_phys, 0.0));
  for (ir::Reg v = 0; v < func.reg_count(); ++v) {
    if (assignment.assigned(v)) {
      rows_[v][assignment.phys(v)] = 1.0;
    }
  }
}

const std::vector<double>& ExactAssignmentModel::distribution(
    ir::Reg v) const {
  TADFA_ASSERT(v < rows_.size());
  return rows_[v];
}

}  // namespace tadfa::core
