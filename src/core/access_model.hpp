// Pre-register-allocation access models.
//
// The paper's "more ambitious possibility ... would be to develop
// predictive analyses ... before register allocation and assignment"
// (Sec. 4). At that stage the physical register of each variable is
// unknown, so the analysis propagates, for every virtual register, a
// probability distribution over physical cells. These models encode what
// the compiler can plausibly assume about the downstream assignment stage;
// the accuracy they give up relative to the exact post-RA mode is one of
// the quantities EXPERIMENTS.md reports.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/function.hpp"
#include "machine/assignment.hpp"
#include "machine/floorplan.hpp"

namespace tadfa::core {

/// Maps each virtual register to a probability distribution over physical
/// register cells (rows of the matrix sum to 1).
class AccessDistributionModel {
 public:
  virtual ~AccessDistributionModel() = default;
  virtual std::string name() const = 0;
  /// Distribution of virtual register `v` over the physical cells.
  virtual const std::vector<double>& distribution(ir::Reg v) const = 0;
};

/// Models a first-free downstream assignment: accesses concentrate on the
/// first `pressure` registers of the ordered list (the paper's "same small
/// set of registers is chosen again and again"). The estimated register
/// pressure comes from liveness.
class FirstFitPredictionModel final : public AccessDistributionModel {
 public:
  FirstFitPredictionModel(const ir::Function& func,
                          const machine::Floorplan& floorplan,
                          std::size_t estimated_pressure);
  std::string name() const override { return "predict_first_fit"; }
  const std::vector<double>& distribution(ir::Reg v) const override;

 private:
  std::vector<std::vector<double>> rows_;
};

/// Models a randomizing downstream assignment: uniform over the file.
class UniformPredictionModel final : public AccessDistributionModel {
 public:
  UniformPredictionModel(const ir::Function& func,
                         const machine::Floorplan& floorplan);
  std::string name() const override { return "predict_uniform"; }
  const std::vector<double>& distribution(ir::Reg v) const override;

 private:
  std::vector<double> uniform_;
  std::uint32_t reg_count_;
};

/// Exact post-RA "model": delta distribution at the assigned register.
/// Lets the DFA treat both modes uniformly.
class ExactAssignmentModel final : public AccessDistributionModel {
 public:
  ExactAssignmentModel(const ir::Function& func,
                       const machine::Floorplan& floorplan,
                       const machine::RegisterAssignment& assignment);
  std::string name() const override { return "exact"; }
  const std::vector<double>& distribution(ir::Reg v) const override;

 private:
  std::vector<std::vector<double>> rows_;
};

}  // namespace tadfa::core
