// Thermal data flow analysis — the paper's primary contribution (Fig. 2).
//
// A forward analysis whose domain is the discrete thermal state of the
// register file. Per iteration it walks every basic block in reverse
// post-order; at block entry it merges predecessor exit states (weighted by
// estimated edge frequency), then pushes the state through each instruction:
// the instruction's register accesses become power applied to the
// floorplan-aware RC grid for the instruction's (frequency-scaled) latency.
// Iteration stops when no instruction's predicted thermal state changed by
// more than δ — or is declared non-convergent after max_iterations, which
// the paper interprets as "the thermal state of the program may be too
// difficult to predict at compile time due to a very irregular data usage".
//
// Differences from the classical framework (dataflow/framework.hpp) that
// the paper calls out:
//   * the domain is a real vector, not a finite lattice;
//   * "equality" is δ-approximate;
//   * convergence is empirical, not guaranteed.
#pragma once

#include <optional>
#include <vector>

#include "core/access_model.hpp"
#include "dataflow/cfg.hpp"
#include "dataflow/loop_info.hpp"
#include "machine/timing.hpp"
#include "power/model.hpp"
#include "thermal/grid.hpp"
#include "thermal/map_stats.hpp"

namespace tadfa::pipeline {
class AnalysisManager;
}

namespace tadfa::core {

/// How predecessor exit states are merged at a join point. The paper
/// leaves the merge operator open; this is an explicit design choice with
/// measurable consequences (see bench/ablation_join):
///   kWeightedMean   expected temperature over incoming paths, weighted by
///                   estimated edge frequency (default; keeps the state
///                   physical and damps oscillation);
///   kUnweightedMean every predecessor counts equally;
///   kMax            worst-case-hot join (conservative upper envelope).
enum class JoinMode { kWeightedMean, kUnweightedMean, kMax };

struct ThermalDfaConfig {
  /// δ — per-instruction convergence threshold (kelvin), the user-supplied
  /// parameter of Fig. 2.
  double delta_k = 0.01;
  /// The "reasonable number of iterations" after which non-convergence is
  /// declared (empirical / user-defined per the paper).
  int max_iterations = 100;
  /// Static loop trip-count guess for frequency scaling.
  double trip_count_guess = 10.0;
  /// Include temperature-dependent leakage in the per-step power.
  bool include_leakage = true;
  /// Merge operator at control-flow joins.
  JoinMode join_mode = JoinMode::kWeightedMean;
  /// Force the bit-identical reference thermal kernel regardless of the
  /// grid's constructed tier (the CLI's --strict-math). Folded into the
  /// ResultCache context digest only when set, so strict runs never share
  /// cache entries with fast-tier runs while default-config digests stay
  /// unchanged.
  bool strict_math = false;
};

/// Thermal state predicted after one instruction (cell granularity).
struct InstructionThermal {
  ir::InstrRef ref;
  std::vector<double> reg_temps_k;
  double peak_k = 0;

  friend bool operator==(const InstructionThermal&,
                         const InstructionThermal&) = default;
};

/// Steady-state thermal outcome of one candidate power vector, from
/// evaluate_power_candidates().
struct CandidateThermal {
  std::vector<double> reg_temps_k;
  double peak_k = 0;
  int sweeps = 0;

  friend bool operator==(const CandidateThermal&,
                         const CandidateThermal&) = default;
};

struct ThermalDfaResult {
  bool converged = false;
  int iterations = 0;
  /// Largest per-instruction state change seen in the final iteration.
  double final_delta_k = 0;
  /// Thermal state following each instruction (function order), from the
  /// final iteration — the output Fig. 2 specifies.
  std::vector<InstructionThermal> per_instruction;
  /// Register temperatures at function exit (merged over all ret blocks).
  std::vector<double> exit_reg_temps_k;
  thermal::MapStats exit_stats;
  /// Hottest predicted cell temperature anywhere in the program.
  double peak_anywhere_k = 0;
  /// Wall-clock cost of the analysis (Sec. 3's "increased computation
  /// time" axis).
  double analysis_seconds = 0;

  /// max-|Δ| between consecutive iterations, one entry per iteration
  /// (monotone decay = well-behaved program; plateaus = irregular).
  std::vector<double> delta_history_k;

  friend bool operator==(const ThermalDfaResult&,
                         const ThermalDfaResult&) = default;
};

class ThermalDfa {
 public:
  ThermalDfa(const thermal::ThermalGrid& grid,
             const power::PowerModel& power,
             const machine::TimingModel& timing,
             ThermalDfaConfig config = {});

  /// Overrides the static frequency estimate with profiled block execution
  /// counts (index = BlockId).
  void set_block_profile(std::vector<double> block_counts);

  /// Runs the analysis. `model` supplies each virtual register's
  /// distribution over physical cells — exact post-RA (delta) or
  /// predictive pre-RA (probabilistic). The manager-taking overload
  /// requests Cfg / LoopInfo / block frequencies through `am` so repeated
  /// analyses (and the critical-variable ranking that follows) share
  /// them; the plain one uses a private manager.
  ThermalDfaResult analyze(const ir::Function& func,
                           const AccessDistributionModel& model,
                           pipeline::AnalysisManager& am) const;
  ThermalDfaResult analyze(const ir::Function& func,
                           const AccessDistributionModel& model) const;

  /// Evaluates candidate per-register power vectors (watts, one entry per
  /// physical register each) in a single batched steady-state solve over
  /// the grid's shared tables — the fast way to compare placement or
  /// gating alternatives. Optionally warm-started from a prior state
  /// (e.g. the analysis exit state); the batch solver's per-lane math is
  /// reference-exact, so results are independent of the grid's tier.
  std::vector<CandidateThermal> evaluate_power_candidates(
      std::span<const std::vector<double>> candidate_powers,
      const thermal::ThermalState* warm_start = nullptr,
      double tolerance_k = 1e-9) const;

  /// Convenience: post-RA exact analysis.
  ThermalDfaResult analyze_post_ra(const ir::Function& func,
                                   const machine::RegisterAssignment& assignment,
                                   pipeline::AnalysisManager& am) const;
  ThermalDfaResult analyze_post_ra(
      const ir::Function& func,
      const machine::RegisterAssignment& assignment) const;

  const ThermalDfaConfig& config() const { return config_; }
  const thermal::ThermalGrid& grid() const { return *grid_; }
  const power::PowerModel& power_model() const { return *power_; }
  const machine::TimingModel& timing() const { return timing_; }

 private:
  const thermal::ThermalGrid* grid_;
  const power::PowerModel* power_;
  machine::TimingModel timing_;
  ThermalDfaConfig config_;
  std::optional<std::vector<double>> profile_;
};

}  // namespace tadfa::core
