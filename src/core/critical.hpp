// Critical-variable identification and hotspot reporting.
//
// Sec. 4: the analysis's goal "would be to determine precisely which parts
// of the program are likely to exacerbate power density and thermal
// problems in the RFs, and to determine which variables are most likely to
// be involved." A variable's criticality combines how much heat it
// generates (access energy × execution frequency) with how hot the cells
// it lands on are predicted to get.
#pragma once

#include <vector>

#include "core/thermal_dfa.hpp"

namespace tadfa::pipeline {
class AnalysisManager;
}

namespace tadfa::core {

struct CriticalVariable {
  ir::Reg vreg = ir::kInvalidReg;
  /// Combined criticality (higher = more urgent to spill/split).
  double score = 0;
  /// Heat generation rate attributable to this variable (W, expected).
  double energy_rate_w = 0;
  /// Expected temperature of the cells it occupies (K).
  double expected_cell_temp_k = 0;
  /// Frequency-weighted access count.
  double weighted_accesses = 0;

  friend bool operator==(const CriticalVariable&,
                         const CriticalVariable&) = default;
};

/// Ranks all virtual registers by criticality, descending. `model`
/// supplies each variable's cell distribution (exact or predictive), and
/// `dfa` the predicted temperature field. The manager-taking overload
/// shares Cfg/LoopInfo/frequencies with the thermal DFA that just ran;
/// the plain one rebuilds them privately.
std::vector<CriticalVariable> rank_critical_variables(
    const ir::Function& func, const AccessDistributionModel& model,
    const ThermalDfaResult& dfa, const thermal::ThermalGrid& grid,
    const machine::TimingModel& timing, double trip_count_guess,
    pipeline::AnalysisManager& am);
std::vector<CriticalVariable> rank_critical_variables(
    const ir::Function& func, const AccessDistributionModel& model,
    const ThermalDfaResult& dfa, const thermal::ThermalGrid& grid,
    const machine::TimingModel& timing, double trip_count_guess = 10.0);

/// Program points whose predicted state exceeds mean + sigma·stddev —
/// "which parts of the program are likely to exacerbate ... thermal
/// problems".
struct HotProgramPoint {
  ir::InstrRef ref;
  double peak_k = 0;
};
std::vector<HotProgramPoint> hot_program_points(const ThermalDfaResult& dfa,
                                                double sigma = 1.0);

}  // namespace tadfa::core
