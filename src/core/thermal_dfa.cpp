#include "core/thermal_dfa.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "pipeline/analysis_manager.hpp"
#include "support/assert.hpp"

namespace tadfa::core {
namespace {

/// Per-register power (W) of one instruction execution: access energies
/// spread over the instruction's latency, distributed over cells according
/// to the access model.
std::vector<double> instruction_power(
    const ir::Instruction& inst, const AccessDistributionModel& model,
    const machine::TimingModel& timing,
    const machine::TechnologyParams& tech, std::uint32_t n_phys) {
  std::vector<double> p(n_phys, 0.0);
  const double window_s =
      static_cast<double>(timing.cycles(inst)) * tech.cycle_seconds();

  auto add = [&](ir::Reg v, double energy) {
    const std::vector<double>& dist = model.distribution(v);
    TADFA_ASSERT(dist.size() == n_phys);
    const double watts = energy / window_s;
    for (std::uint32_t r = 0; r < n_phys; ++r) {
      if (dist[r] != 0.0) {
        p[r] += watts * dist[r];
      }
    }
  };

  for (ir::Reg u : inst.uses()) {
    add(u, tech.read_energy_j);
  }
  if (auto d = inst.def()) {
    add(*d, tech.write_energy_j);
  }
  return p;
}

}  // namespace

ThermalDfa::ThermalDfa(const thermal::ThermalGrid& grid,
                       const power::PowerModel& power,
                       const machine::TimingModel& timing,
                       ThermalDfaConfig config)
    : grid_(&grid), power_(&power), timing_(timing), config_(config) {
  TADFA_ASSERT(config_.delta_k > 0);
  TADFA_ASSERT(config_.max_iterations >= 1);
}

void ThermalDfa::set_block_profile(std::vector<double> block_counts) {
  profile_ = std::move(block_counts);
}

ThermalDfaResult ThermalDfa::analyze(const ir::Function& func,
                                     const AccessDistributionModel& model,
                                     pipeline::AnalysisManager& am) const {
  const auto t0 = std::chrono::steady_clock::now();

  const machine::Floorplan& fp = grid_->floorplan();
  const machine::TechnologyParams& tech = fp.config().tech;
  const std::uint32_t n_phys = fp.num_registers();

  const dataflow::Cfg& cfg = am.get<dataflow::Cfg>(func);

  // Block execution frequencies: profiled when available, else static
  // (cached per trip-count guess, shared with the ranking stage).
  std::vector<double> freq;
  if (profile_) {
    TADFA_ASSERT(profile_->size() == func.block_count());
    freq = *profile_;
    const double entry_count = std::max(freq[func.entry()], 1.0);
    for (double& f : freq) {
      f = std::max(f / entry_count, 0.0);
    }
  } else {
    freq = pipeline::block_frequencies(am, func, config_.trip_count_guess);
  }

  ThermalDfaResult result;

  // State storage. out_state[b] = thermal state at block exit, as of the
  // latest iteration. prev_instr_temps = last iteration's per-instruction
  // register temps, for the δ test of Fig. 2.
  std::vector<thermal::ThermalState> out_state(func.block_count(),
                                               grid_->initial_state());
  const std::vector<ir::InstrRef> all_refs = func.all_instructions();
  std::vector<std::vector<double>> prev_instr_temps(
      all_refs.size(), std::vector<double>(n_phys, grid_->substrate_temp()));
  std::vector<std::vector<double>> cur_instr_temps = prev_instr_temps;

  // Map InstrRef -> dense index into the vectors above.
  std::vector<std::size_t> block_first(func.block_count(), 0);
  {
    std::size_t idx = 0;
    for (const ir::BasicBlock& b : func.blocks()) {
      block_first[b.id()] = idx;
      idx += b.size();
    }
  }

  const double cycle_s = tech.cycle_seconds();

  // --strict-math pins the transient kernel to the bit-identical
  // reference tier no matter how the grid was constructed.
  const thermal::StepKernel step_kernel = config_.strict_math
                                              ? thermal::StepKernel::kReference
                                              : grid_->step_kernel();

  // --- Fig. 2 main loop ------------------------------------------------------
  // Do { stop = true; for each block, for each instruction in forward
  // order: estimate thermal state after I; if change exceeds δ, stop =
  // false } While (!stop)
  bool stop = false;
  while (!stop && result.iterations < config_.max_iterations) {
    stop = true;
    ++result.iterations;
    double iteration_delta = 0.0;

    for (ir::BlockId b : cfg.reverse_post_order()) {
      if (!cfg.reachable(b)) {
        continue;
      }
      // Join: merge predecessor exit states per the configured operator
      // (the paper leaves the merge open; the default weighted mean is the
      // expected temperature over incoming paths). The entry block also
      // folds in the boundary (machine at substrate temperature) with unit
      // weight, which covers the self-loop-into-entry corner case.
      thermal::ThermalState state = grid_->initial_state();
      const auto& preds = cfg.predecessors(b);
      const bool include_boundary = b == func.entry();
      if (!preds.empty() || include_boundary) {
        const std::size_t nodes = state.node_temps.size();
        switch (config_.join_mode) {
          case JoinMode::kWeightedMean:
          case JoinMode::kUnweightedMean: {
            double weight_sum = include_boundary ? 1.0 : 0.0;
            std::vector<double> weights(preds.size(), 1.0);
            for (std::size_t pi = 0; pi < preds.size(); ++pi) {
              if (config_.join_mode == JoinMode::kWeightedMean) {
                weights[pi] = std::max(freq[preds[pi]], 1e-12);
              }
              weight_sum += weights[pi];
            }
            if (weight_sum > 0.0) {
              for (std::size_t n = 0; n < nodes; ++n) {
                double acc = include_boundary ? grid_->substrate_temp() : 0.0;
                for (std::size_t pi = 0; pi < preds.size(); ++pi) {
                  acc += weights[pi] * out_state[preds[pi]].node_temps[n];
                }
                state.node_temps[n] = acc / weight_sum;
              }
            }
            break;
          }
          case JoinMode::kMax: {
            // Upper envelope; the substrate-temperature initial state is
            // the floor (it also stands in for the entry boundary).
            for (std::size_t n = 0; n < nodes; ++n) {
              double worst = state.node_temps[n];
              for (ir::BlockId p : preds) {
                worst = std::max(worst, out_state[p].node_temps[n]);
              }
              state.node_temps[n] = worst;
            }
            break;
          }
        }
      }

      // Transfer through the block, instruction by instruction.
      const ir::BasicBlock& block = func.block(b);
      const double block_freq = std::max(freq[b], 1e-12);
      for (std::uint32_t i = 0; i < block.size(); ++i) {
        const ir::Instruction& inst = block.instructions()[i];
        std::vector<double> p =
            instruction_power(inst, model, timing_, tech, n_phys);
        if (config_.include_leakage) {
          const auto temps = grid_->register_temps(state);
          const auto leak = power_->leakage_power(fp, temps);
          for (std::uint32_t r = 0; r < n_phys; ++r) {
            p[r] += leak[r];
          }
        }
        // Frequency scaling: this instruction executes ~block_freq times
        // per program run; model those executions as one contiguous
        // window (same average power, frequency-scaled duration).
        const double dt = static_cast<double>(timing_.cycles(inst)) *
                          cycle_s * block_freq;
        grid_->step_with(step_kernel, state, p, dt);

        // δ test against the previous iteration's state after I.
        const std::size_t dense = block_first[b] + i;
        cur_instr_temps[dense] = grid_->register_temps(state);
        double change = 0.0;
        for (std::uint32_t r = 0; r < n_phys; ++r) {
          change = std::max(change,
                            std::abs(cur_instr_temps[dense][r] -
                                     prev_instr_temps[dense][r]));
        }
        iteration_delta = std::max(iteration_delta, change);
        if (change > config_.delta_k) {
          stop = false;
        }
      }
      out_state[b] = std::move(state);
    }

    result.delta_history_k.push_back(iteration_delta);
    result.final_delta_k = iteration_delta;
    std::swap(prev_instr_temps, cur_instr_temps);
  }
  result.converged = stop;

  // --- Outputs ----------------------------------------------------------------
  result.per_instruction.reserve(all_refs.size());
  for (std::size_t i = 0; i < all_refs.size(); ++i) {
    InstructionThermal it;
    it.ref = all_refs[i];
    it.reg_temps_k = prev_instr_temps[i];  // final iteration (post-swap)
    it.peak_k = it.reg_temps_k.empty()
                    ? grid_->substrate_temp()
                    : *std::max_element(it.reg_temps_k.begin(),
                                        it.reg_temps_k.end());
    result.peak_anywhere_k = std::max(result.peak_anywhere_k, it.peak_k);
    result.per_instruction.push_back(std::move(it));
  }

  // Exit state: frequency-weighted merge over ret blocks.
  std::vector<double> exit_temps(n_phys, grid_->substrate_temp());
  double w_sum = 0.0;
  std::vector<double> acc(n_phys, 0.0);
  for (const ir::BasicBlock& b : func.blocks()) {
    if (!cfg.reachable(b.id()) || !b.has_terminator() ||
        b.terminator().opcode() != ir::Opcode::kRet) {
      continue;
    }
    const double w = std::max(freq[b.id()], 1e-12);
    const auto temps = grid_->register_temps(out_state[b.id()]);
    for (std::uint32_t r = 0; r < n_phys; ++r) {
      acc[r] += w * temps[r];
    }
    w_sum += w;
  }
  if (w_sum > 0.0) {
    for (std::uint32_t r = 0; r < n_phys; ++r) {
      exit_temps[r] = acc[r] / w_sum;
    }
  }
  result.exit_reg_temps_k = std::move(exit_temps);
  result.exit_stats = thermal::compute_map_stats(fp, result.exit_reg_temps_k);

  result.analysis_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

ThermalDfaResult ThermalDfa::analyze(
    const ir::Function& func, const AccessDistributionModel& model) const {
  pipeline::AnalysisManager am;
  return analyze(func, model, am);
}

std::vector<CandidateThermal> ThermalDfa::evaluate_power_candidates(
    std::span<const std::vector<double>> candidate_powers,
    const thermal::ThermalState* warm_start, double tolerance_k) const {
  std::vector<thermal::SteadyStateInfo> infos;
  const std::vector<thermal::ThermalState> states = grid_->steady_state_batch(
      candidate_powers, tolerance_k, warm_start, &infos);
  std::vector<CandidateThermal> out;
  out.reserve(states.size());
  for (std::size_t lane = 0; lane < states.size(); ++lane) {
    CandidateThermal c;
    c.reg_temps_k = grid_->register_temps(states[lane]);
    c.peak_k = c.reg_temps_k.empty()
                   ? grid_->substrate_temp()
                   : *std::max_element(c.reg_temps_k.begin(),
                                       c.reg_temps_k.end());
    c.sweeps = infos[lane].sweeps;
    out.push_back(std::move(c));
  }
  return out;
}

ThermalDfaResult ThermalDfa::analyze_post_ra(
    const ir::Function& func, const machine::RegisterAssignment& assignment,
    pipeline::AnalysisManager& am) const {
  const ExactAssignmentModel model(func, grid_->floorplan(), assignment);
  return analyze(func, model, am);
}

ThermalDfaResult ThermalDfa::analyze_post_ra(
    const ir::Function& func,
    const machine::RegisterAssignment& assignment) const {
  const ExactAssignmentModel model(func, grid_->floorplan(), assignment);
  return analyze(func, model);
}

}  // namespace tadfa::core
