#include "ir/instruction.hpp"

#include <array>

namespace tadfa::ir {
namespace {

constexpr std::array<const char*, kNumOpcodes> kNames = {
    "const", "mov", "add", "sub", "mul",  "div",  "rem",  "and",  "or",
    "xor",   "shl", "shr", "neg", "not",  "min",  "max",  "cmpeq", "cmpne",
    "cmplt", "cmple", "cmpgt", "cmpge", "load", "store", "nop",  "br",
    "jmp",   "ret"};

}  // namespace

const char* opcode_name(Opcode op) {
  const auto i = static_cast<std::size_t>(op);
  TADFA_ASSERT(i < kNames.size());
  return kNames[i];
}

std::optional<Opcode> opcode_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (name == kNames[i]) {
      return static_cast<Opcode>(i);
    }
  }
  return std::nullopt;
}

bool is_terminator(Opcode op) {
  return op == Opcode::kBr || op == Opcode::kJmp || op == Opcode::kRet;
}

bool is_binary_alu(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kRem:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kMin:
    case Opcode::kMax:
      return true;
    default:
      return is_compare(op);
  }
}

bool is_unary_alu(Opcode op) {
  return op == Opcode::kNeg || op == Opcode::kNot;
}

bool is_compare(Opcode op) {
  switch (op) {
    case Opcode::kCmpEq:
    case Opcode::kCmpNe:
    case Opcode::kCmpLt:
    case Opcode::kCmpLe:
    case Opcode::kCmpGt:
    case Opcode::kCmpGe:
      return true;
    default:
      return false;
  }
}

std::vector<Reg> Instruction::uses() const {
  std::vector<Reg> result;
  result.reserve(operands_.size());
  for (const Operand& op : operands_) {
    if (op.is_reg()) {
      result.push_back(op.reg());
    }
  }
  return result;
}

std::optional<Reg> Instruction::def() const {
  if (has_dest()) {
    return dest_;
  }
  return std::nullopt;
}

void Instruction::replace_uses(Reg from, Reg to) {
  for (Operand& op : operands_) {
    if (op.is_reg() && op.reg() == from) {
      op = Operand::reg(to);
    }
  }
}

std::size_t Instruction::access_count() const {
  return uses().size() + (has_dest() ? 1 : 0);
}

}  // namespace tadfa::ir
