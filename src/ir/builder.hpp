// Fluent construction of IR functions.
//
// The builder tracks an insertion block and hands out fresh virtual
// registers, so kernel builders in src/workload read like straight-line
// pseudocode.
#pragma once

#include "ir/function.hpp"

namespace tadfa::ir {

class IRBuilder {
 public:
  explicit IRBuilder(Function& func) : func_(func) {}

  Function& function() { return func_; }

  /// Creates a block and returns its id (does not change insertion point).
  BlockId create_block(std::string name = "");

  /// Sets the block that subsequent emit calls append to.
  void set_insert_point(BlockId block);
  BlockId insert_point() const { return current_; }

  // --- Value producers (each returns the fresh destination register) -------
  Reg const_int(std::int64_t value);
  Reg mov(Reg src);
  Reg binary(Opcode op, Operand lhs, Operand rhs);
  Reg add(Operand a, Operand b) { return binary(Opcode::kAdd, a, b); }
  Reg sub(Operand a, Operand b) { return binary(Opcode::kSub, a, b); }
  Reg mul(Operand a, Operand b) { return binary(Opcode::kMul, a, b); }
  Reg div(Operand a, Operand b) { return binary(Opcode::kDiv, a, b); }
  Reg rem(Operand a, Operand b) { return binary(Opcode::kRem, a, b); }
  Reg band(Operand a, Operand b) { return binary(Opcode::kAnd, a, b); }
  Reg bor(Operand a, Operand b) { return binary(Opcode::kOr, a, b); }
  Reg bxor(Operand a, Operand b) { return binary(Opcode::kXor, a, b); }
  Reg shl(Operand a, Operand b) { return binary(Opcode::kShl, a, b); }
  Reg shr(Operand a, Operand b) { return binary(Opcode::kShr, a, b); }
  Reg minv(Operand a, Operand b) { return binary(Opcode::kMin, a, b); }
  Reg maxv(Operand a, Operand b) { return binary(Opcode::kMax, a, b); }
  Reg neg(Operand a);
  Reg bnot(Operand a);
  Reg cmp(Opcode cmp_op, Operand a, Operand b);
  Reg load(Operand address);

  // --- In-place forms (loop-carried variables) -------------------------------
  // The IR has no phi nodes; loop-carried values are expressed by
  // re-defining the same virtual register (e.g. "%i = add %i, 1").
  /// Reserves a register without emitting anything.
  Reg fresh() { return func_.new_reg(); }
  void assign_const(Reg dest, std::int64_t value);
  void assign_mov(Reg dest, Reg src);
  void assign(Opcode op, Reg dest, Operand a, Operand b);
  void assign_unary(Opcode op, Reg dest, Operand a);
  void assign_load(Reg dest, Operand address);

  // --- Effects --------------------------------------------------------------
  void store(Operand address, Operand value);
  void nop();

  // --- Terminators ----------------------------------------------------------
  void br(Reg condition, BlockId then_block, BlockId else_block);
  void jmp(BlockId target);
  void ret();
  void ret(Operand value);

  /// Shorthand for Operand::reg / Operand::imm at call sites.
  static Operand r(Reg reg) { return Operand::reg(reg); }
  static Operand i(std::int64_t value) { return Operand::imm(value); }

 private:
  void emit(Instruction inst);

  Function& func_;
  BlockId current_ = kInvalidBlock;
};

}  // namespace tadfa::ir
