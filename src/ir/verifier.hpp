// Structural well-formedness checks for IR functions.
//
// Every pass in src/opt verifies its output in tests; the checks here are
// the structural subset (the semantic "program still computes the same
// thing" check is done by running src/sim on both versions).
#pragma once

#include <string>
#include <vector>

#include "ir/function.hpp"

namespace tadfa::ir {

struct VerifyIssue {
  std::string message;
};

/// Returns all structural problems found. An empty result means:
///  - the function has a (non-empty) name;
///  - every block ends in exactly one terminator, with none mid-block;
///  - every branch target is a valid block id;
///  - every operand register is < reg_count;
///  - the entry block has no predecessors that make it a loop header with no
///    preheader requirement violated (informational checks stay out of scope);
///  - each opcode has the operand/target arity it requires.
std::vector<VerifyIssue> verify(const Function& func);

/// Module-level checks: every function verifies individually and function
/// names are unique (the driver addresses results by name).
std::vector<VerifyIssue> verify(const Module& module);

/// True when verify() returns no issues.
bool is_well_formed(const Function& func);

/// Asserts well-formedness, printing issues on failure (test helper).
void assert_well_formed(const Function& func);

}  // namespace tadfa::ir
