// Three-address intermediate representation: opcodes, operands, instructions.
//
// The IR is deliberately close to what a compiler back-end sees just before
// register allocation: virtual registers, explicit loads/stores, and
// block-terminating control flow. This is the representation on which the
// paper's thermal data flow analysis operates (Sec. 4: "the analysis makes
// the most sense if applied after register assignment ... the more ambitious
// possibility ... before register allocation").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/assert.hpp"

namespace tadfa::ir {

/// Virtual (pre-allocation) register id.
using Reg = std::uint32_t;
inline constexpr Reg kInvalidReg = ~Reg{0};

/// Basic block id (index into Function::blocks()).
using BlockId = std::uint32_t;
inline constexpr BlockId kInvalidBlock = ~BlockId{0};

/// Instruction operation. Arithmetic/logic ops define one register and use
/// one or two operands; memory ops move values between registers and the
/// (word-addressed) memory; terminators end a basic block.
enum class Opcode : std::uint8_t {
  kConst,  // %d = const imm
  kMov,    // %d = mov %s
  kAdd,
  kSub,
  kMul,
  kDiv,    // signed; division by zero traps in the interpreter
  kRem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,    // arithmetic shift right
  kNeg,    // unary
  kNot,    // unary (bitwise)
  kMin,
  kMax,
  kCmpEq,  // produce 0/1
  kCmpNe,
  kCmpLt,
  kCmpLe,
  kCmpGt,
  kCmpGe,
  kLoad,   // %d = load addr_operand
  kStore,  // store addr_operand, value_operand
  kNop,    // no effect; inserted by the cooling optimization (Sec. 4)
  kBr,     // br %cond, then_block, else_block
  kJmp,    // jmp block
  kRet,    // ret [operand]
};

/// Number of distinct opcodes (for tables indexed by opcode).
inline constexpr std::size_t kNumOpcodes =
    static_cast<std::size_t>(Opcode::kRet) + 1;

/// Human-readable mnemonic, e.g. "add".
const char* opcode_name(Opcode op);

/// Parses a mnemonic; returns nullopt for unknown names.
std::optional<Opcode> opcode_from_name(const std::string& name);

/// True for kBr/kJmp/kRet.
bool is_terminator(Opcode op);

/// True for binary ALU ops (two operands, one def).
bool is_binary_alu(Opcode op);

/// True for unary ALU ops (one operand, one def).
bool is_unary_alu(Opcode op);

/// True for comparison ops.
bool is_compare(Opcode op);

/// An operand is either a virtual register or an immediate integer.
class Operand {
 public:
  static Operand reg(Reg r) {
    TADFA_ASSERT(r != kInvalidReg);
    Operand o;
    o.is_reg_ = true;
    o.reg_ = r;
    return o;
  }
  static Operand imm(std::int64_t value) {
    Operand o;
    o.is_reg_ = false;
    o.imm_ = value;
    return o;
  }

  bool is_reg() const { return is_reg_; }
  bool is_imm() const { return !is_reg_; }

  Reg reg() const {
    TADFA_ASSERT(is_reg_);
    return reg_;
  }
  std::int64_t imm() const {
    TADFA_ASSERT(!is_reg_);
    return imm_;
  }

  friend bool operator==(const Operand& a, const Operand& b) {
    if (a.is_reg_ != b.is_reg_) {
      return false;
    }
    return a.is_reg_ ? a.reg_ == b.reg_ : a.imm_ == b.imm_;
  }

 private:
  bool is_reg_ = false;
  Reg reg_ = kInvalidReg;
  std::int64_t imm_ = 0;
};

/// A single three-address instruction.
///
/// Field usage by opcode family:
///  - ALU/Load/Const/Mov: `dest` is the defined register, `operands` the uses.
///  - Store: no dest; operands = {address, value}.
///  - Br: no dest; operands = {condition}; targets = {then, else}.
///  - Jmp: targets = {target}.
///  - Ret: operands = {} or {value}.
class Instruction {
 public:
  Instruction(Opcode op, Reg dest, std::vector<Operand> operands,
              std::vector<BlockId> targets = {})
      : opcode_(op),
        dest_(dest),
        operands_(std::move(operands)),
        targets_(std::move(targets)) {}

  Opcode opcode() const { return opcode_; }

  bool has_dest() const { return dest_ != kInvalidReg; }
  Reg dest() const {
    TADFA_ASSERT(has_dest());
    return dest_;
  }
  void set_dest(Reg r) { dest_ = r; }

  const std::vector<Operand>& operands() const { return operands_; }
  std::vector<Operand>& operands() { return operands_; }

  const std::vector<BlockId>& targets() const { return targets_; }
  std::vector<BlockId>& targets() { return targets_; }

  bool is_terminator() const { return ir::is_terminator(opcode_); }

  /// Registers read by this instruction (operand registers, in order,
  /// duplicates preserved — a duplicate is two physical read ports firing).
  std::vector<Reg> uses() const;

  /// Register written by this instruction, if any.
  std::optional<Reg> def() const;

  /// Replaces every use of `from` with `to`. Does not touch the def.
  void replace_uses(Reg from, Reg to);

  /// Total register-file accesses (reads + writes) this instruction makes.
  std::size_t access_count() const;

  friend bool operator==(const Instruction& a, const Instruction& b) {
    return a.opcode_ == b.opcode_ && a.dest_ == b.dest_ &&
           a.operands_ == b.operands_ && a.targets_ == b.targets_;
  }

 private:
  Opcode opcode_;
  Reg dest_ = kInvalidReg;
  std::vector<Operand> operands_;
  std::vector<BlockId> targets_;
};

}  // namespace tadfa::ir
