#include "ir/parser.hpp"

#include <cctype>
#include <map>

#include "support/string_utils.hpp"

namespace tadfa::ir {
namespace {

// Pending instruction whose block targets are still names.
struct PendingInstr {
  Opcode opcode;
  Reg dest = kInvalidReg;
  std::vector<Operand> operands;
  std::vector<std::string> target_names;
  std::size_t line = 0;
};

struct PendingBlock {
  std::string name;
  std::vector<PendingInstr> instructions;
};

class Parser {
 public:
  explicit Parser(const std::string& text) {
    for (const std::string& raw : split(text, '\n')) {
      std::string line = raw;
      const std::size_t comment = line.find(';');
      if (comment != std::string::npos) {
        line.resize(comment);
      }
      lines_.push_back(line);
    }
  }

  std::optional<Module> run(ParseError* error) {
    Module module;
    while (!at_end()) {
      skip_blank();
      if (at_end()) {
        break;
      }
      const bool is_ref = starts_with(trim(lines_[pos_]), "ref ");
      if (!(is_ref ? parse_reference_into(module)
                   : parse_function_into(module))) {
        if (error != nullptr) {
          *error = error_;
        }
        return std::nullopt;
      }
    }
    return module;
  }

 private:
  bool at_end() const { return pos_ >= lines_.size(); }

  void skip_blank() {
    while (!at_end() && trim(lines_[pos_]).empty()) {
      ++pos_;
    }
  }

  bool fail(const std::string& message) {
    error_ = {pos_ + 1, message};
    return false;
  }

  // Parses "%N", returns register number.
  static bool parse_reg_token(std::string_view tok, Reg& out) {
    if (tok.size() < 2 || tok[0] != '%') {
      return false;
    }
    long long v = 0;
    if (!parse_int(tok.substr(1), v) || v < 0) {
      return false;
    }
    out = static_cast<Reg>(v);
    return true;
  }

  // "ref @from -> @to"
  bool parse_reference_into(Module& module) {
    std::string_view line = trim(lines_[pos_]);
    line.remove_prefix(4);  // "ref "
    const std::size_t arrow = line.find("->");
    if (arrow == std::string_view::npos) {
      return fail("expected 'ref @from -> @to'");
    }
    const std::string_view from = trim(line.substr(0, arrow));
    const std::string_view to = trim(line.substr(arrow + 2));
    if (from.size() < 2 || from[0] != '@' || to.size() < 2 || to[0] != '@') {
      return fail("expected 'ref @from -> @to'");
    }
    module.add_reference(std::string(from.substr(1)), std::string(to.substr(1)));
    ++pos_;
    return true;
  }

  bool parse_function_into(Module& module) {
    std::string_view header = trim(lines_[pos_]);
    if (!starts_with(header, "func @")) {
      return fail("expected 'func @name(...) {'");
    }
    header.remove_prefix(6);
    const std::size_t paren = header.find('(');
    if (paren == std::string_view::npos) {
      return fail("missing '(' in function header");
    }
    const std::string name(trim(header.substr(0, paren)));
    if (name.empty()) {
      return fail("empty function name");
    }
    const std::size_t close = header.find(')', paren);
    if (close == std::string_view::npos) {
      return fail("missing ')' in function header");
    }
    if (trim(header.substr(close + 1)) != "{") {
      return fail("expected '{' after parameter list");
    }

    std::vector<Reg> params;
    const std::string_view param_text = header.substr(paren + 1, close - paren - 1);
    if (!trim(param_text).empty()) {
      for (const std::string& p : split(param_text, ',')) {
        Reg r = kInvalidReg;
        if (!parse_reg_token(trim(p), r)) {
          return fail("bad parameter '" + p + "'");
        }
        params.push_back(r);
      }
    }
    ++pos_;

    // Collect blocks until '}'.
    std::vector<PendingBlock> pending;
    bool closed = false;
    while (!at_end()) {
      const std::string_view line = trim(lines_[pos_]);
      if (line.empty()) {
        ++pos_;
        continue;
      }
      if (line == "}") {
        closed = true;
        ++pos_;
        break;
      }
      if (line.back() == ':' && line.find(' ') == std::string_view::npos) {
        pending.push_back({std::string(line.substr(0, line.size() - 1)), {}});
        ++pos_;
        continue;
      }
      if (pending.empty()) {
        return fail("instruction before first block label");
      }
      PendingInstr instr;
      if (!parse_instruction(line, instr)) {
        return false;
      }
      instr.line = pos_ + 1;
      pending.back().instructions.push_back(std::move(instr));
      ++pos_;
    }
    if (!closed) {
      return fail("missing closing '}'");
    }
    if (pending.empty()) {
      return fail("function has no blocks");
    }

    // Materialize.
    Function& func = module.add_function(name);
    std::map<std::string, BlockId> block_ids;
    for (const PendingBlock& pb : pending) {
      if (block_ids.count(pb.name) != 0) {
        return fail("duplicate block label '" + pb.name + "'");
      }
      block_ids[pb.name] = func.add_block(pb.name);
    }
    Reg max_reg = 0;
    bool any_reg = false;
    auto note_reg = [&](Reg r) {
      max_reg = std::max(max_reg, r);
      any_reg = true;
    };
    for (Reg p : params) {
      note_reg(p);
    }
    for (const PendingBlock& pb : pending) {
      BasicBlock& block = func.block(block_ids[pb.name]);
      for (const PendingInstr& pi : pending_instructions(pb)) {
        std::vector<BlockId> targets;
        for (const std::string& t : pi.target_names) {
          auto it = block_ids.find(t);
          if (it == block_ids.end()) {
            error_ = {pi.line, "unknown block label '" + t + "'"};
            return false;
          }
          targets.push_back(it->second);
        }
        if (pi.dest != kInvalidReg) {
          note_reg(pi.dest);
        }
        for (const Operand& op : pi.operands) {
          if (op.is_reg()) {
            note_reg(op.reg());
          }
        }
        block.append(Instruction(pi.opcode, pi.dest, pi.operands, targets));
      }
    }
    func.ensure_regs(any_reg ? max_reg + 1 : 0);
    for (Reg p : params) {
      func.add_param_reg(p);
    }
    return true;
  }

  static const std::vector<PendingInstr>& pending_instructions(
      const PendingBlock& pb) {
    return pb.instructions;
  }

  bool parse_instruction(std::string_view line, PendingInstr& out) {
    // Optional "%N =" prefix.
    std::string text(line);
    std::vector<std::string> head = split(text, '=');
    std::string body = text;
    if (head.size() >= 2 && starts_with(trim(head[0]), "%")) {
      Reg dest = kInvalidReg;
      if (!parse_reg_token(trim(head[0]), dest)) {
        return fail("bad destination register");
      }
      out.dest = dest;
      body = text.substr(text.find('=') + 1);
    }
    const std::string_view trimmed = trim(body);
    const std::size_t sp = trimmed.find(' ');
    const std::string mnemonic(
        sp == std::string_view::npos ? trimmed : trimmed.substr(0, sp));
    const auto opcode = opcode_from_name(mnemonic);
    if (!opcode) {
      return fail("unknown mnemonic '" + mnemonic + "'");
    }
    out.opcode = *opcode;
    if (sp != std::string_view::npos) {
      for (const std::string& tok : split(std::string(trimmed.substr(sp + 1)), ',')) {
        const std::string_view t = trim(tok);
        if (t.empty()) {
          return fail("empty operand");
        }
        Reg r = kInvalidReg;
        long long imm = 0;
        if (parse_reg_token(t, r)) {
          out.operands.push_back(Operand::reg(r));
        } else if (parse_int(t, imm)) {
          out.operands.push_back(Operand::imm(imm));
        } else {
          out.target_names.emplace_back(t);
        }
      }
    }
    return true;
  }

  std::vector<std::string> lines_;
  std::size_t pos_ = 0;
  ParseError error_;
};

}  // namespace

std::optional<Module> parse_module(const std::string& text,
                                   ParseError* error) {
  Parser parser(text);
  return parser.run(error);
}

std::optional<Function> parse_function(const std::string& text,
                                       ParseError* error) {
  auto module = parse_module(text, error);
  if (!module) {
    return std::nullopt;
  }
  if (module->functions().size() != 1) {
    if (error != nullptr) {
      *error = {0, "expected exactly one function"};
    }
    return std::nullopt;
  }
  return std::move(module->functions().front());
}

}  // namespace tadfa::ir
