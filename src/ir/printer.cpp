#include "ir/printer.hpp"

#include <sstream>

namespace tadfa::ir {
namespace {

std::string operand_str(const Operand& op) {
  if (op.is_reg()) {
    return "%" + std::to_string(op.reg());
  }
  return std::to_string(op.imm());
}

}  // namespace

std::string to_string(const Function& func, const Instruction& inst) {
  std::ostringstream os;
  if (inst.has_dest()) {
    os << '%' << inst.dest() << " = ";
  }
  os << opcode_name(inst.opcode());
  bool first = true;
  for (const Operand& op : inst.operands()) {
    os << (first ? " " : ", ") << operand_str(op);
    first = false;
  }
  for (BlockId t : inst.targets()) {
    os << (first ? " " : ", ") << func.block(t).name();
    first = false;
  }
  return os.str();
}

void print(std::ostream& os, const Function& func) {
  os << "func @" << func.name() << '(';
  for (std::size_t i = 0; i < func.params().size(); ++i) {
    if (i != 0) {
      os << ", ";
    }
    os << '%' << func.params()[i];
  }
  os << ") {\n";
  for (const BasicBlock& b : func.blocks()) {
    os << b.name() << ":\n";
    for (const Instruction& inst : b.instructions()) {
      os << "  " << to_string(func, inst) << '\n';
    }
  }
  os << "}\n";
}

void print(std::ostream& os, const Module& module) {
  bool first = true;
  for (const Function& f : module.functions()) {
    if (!first) {
      os << '\n';
    }
    print(os, f);
    first = false;
  }
  if (!module.references().empty()) {
    os << '\n';
    for (const ModuleReference& r : module.references()) {
      os << "ref @" << r.from << " -> @" << r.to << '\n';
    }
  }
}

std::string to_string(const Function& func) {
  std::ostringstream os;
  print(os, func);
  return os.str();
}

std::string to_string(const Module& module) {
  std::ostringstream os;
  print(os, module);
  return os.str();
}

}  // namespace tadfa::ir
