#include "ir/verifier.hpp"

#include <cstdio>
#include <iterator>
#include <set>
#include <sstream>

#include "ir/printer.hpp"

namespace tadfa::ir {
namespace {

void check_arity(const Function& func, const BasicBlock& block,
                 const Instruction& inst, std::vector<VerifyIssue>& issues) {
  auto complain = [&](const std::string& what) {
    std::ostringstream os;
    os << func.name() << '/' << block.name() << ": '"
       << to_string(func, inst) << "': " << what;
    issues.push_back({os.str()});
  };

  const std::size_t ops = inst.operands().size();
  const std::size_t targets = inst.targets().size();
  const bool dest = inst.has_dest();

  switch (inst.opcode()) {
    case Opcode::kConst:
      if (!dest || ops != 1 || !inst.operands()[0].is_imm() || targets != 0) {
        complain("const needs dest and one immediate");
      }
      break;
    case Opcode::kMov:
      if (!dest || ops != 1 || !inst.operands()[0].is_reg() || targets != 0) {
        complain("mov needs dest and one register operand");
      }
      break;
    case Opcode::kNeg:
    case Opcode::kNot:
      if (!dest || ops != 1 || targets != 0) {
        complain("unary op needs dest and one operand");
      }
      break;
    case Opcode::kLoad:
      if (!dest || ops != 1 || targets != 0) {
        complain("load needs dest and one address operand");
      }
      break;
    case Opcode::kStore:
      if (dest || ops != 2 || targets != 0) {
        complain("store needs no dest and {address, value} operands");
      }
      break;
    case Opcode::kNop:
      if (dest || ops != 0 || targets != 0) {
        complain("nop takes nothing");
      }
      break;
    case Opcode::kBr:
      if (dest || ops != 1 || !inst.operands()[0].is_reg() || targets != 2) {
        complain("br needs a register condition and two targets");
      }
      break;
    case Opcode::kJmp:
      if (dest || ops != 0 || targets != 1) {
        complain("jmp needs exactly one target");
      }
      break;
    case Opcode::kRet:
      if (dest || ops > 1 || targets != 0) {
        complain("ret takes at most one operand");
      }
      break;
    default:
      // Binary ALU including compares.
      if (!is_binary_alu(inst.opcode())) {
        complain("unknown opcode class");
        break;
      }
      if (!dest || ops != 2 || targets != 0) {
        complain("binary op needs dest and two operands");
      }
      break;
  }
}

}  // namespace

std::vector<VerifyIssue> verify(const Function& func) {
  std::vector<VerifyIssue> issues;

  if (func.name().empty()) {
    issues.push_back({"function has no name"});
  }
  if (func.block_count() == 0) {
    issues.push_back({func.name() + ": function has no blocks"});
    return issues;
  }

  for (const BasicBlock& block : func.blocks()) {
    if (!block.has_terminator()) {
      issues.push_back(
          {func.name() + '/' + block.name() + ": missing terminator"});
    }
    for (std::size_t i = 0; i < block.size(); ++i) {
      const Instruction& inst = block.instructions()[i];
      if (inst.is_terminator() && i + 1 != block.size()) {
        issues.push_back({func.name() + '/' + block.name() +
                          ": terminator before end of block"});
      }
      if (!inst.is_terminator() && i + 1 == block.size() &&
          !block.has_terminator()) {
        // Already reported by the missing-terminator check.
      }
      check_arity(func, block, inst, issues);
      if (inst.has_dest() && inst.dest() >= func.reg_count()) {
        issues.push_back({func.name() + '/' + block.name() +
                          ": def of out-of-range register %" +
                          std::to_string(inst.dest())});
      }
      for (const Operand& op : inst.operands()) {
        if (op.is_reg() && op.reg() >= func.reg_count()) {
          issues.push_back({func.name() + '/' + block.name() +
                            ": use of out-of-range register %" +
                            std::to_string(op.reg())});
        }
      }
      for (BlockId target : inst.targets()) {
        if (target >= func.block_count()) {
          issues.push_back({func.name() + '/' + block.name() +
                            ": branch to invalid block id " +
                            std::to_string(target)});
        }
      }
    }
  }

  for (Reg p : func.params()) {
    if (p >= func.reg_count()) {
      issues.push_back({func.name() + ": parameter register %" +
                        std::to_string(p) + " out of range"});
    }
  }

  return issues;
}

std::vector<VerifyIssue> verify(const Module& module) {
  std::vector<VerifyIssue> issues;
  std::set<std::string> seen;
  for (const Function& func : module.functions()) {
    if (!seen.insert(func.name()).second) {
      issues.push_back({"duplicate function name '" + func.name() + "'"});
    }
    auto func_issues = verify(func);
    issues.insert(issues.end(),
                  std::make_move_iterator(func_issues.begin()),
                  std::make_move_iterator(func_issues.end()));
  }
  for (const ModuleReference& r : module.references()) {
    for (const std::string* end : {&r.from, &r.to}) {
      if (module.find(*end) == nullptr) {
        issues.push_back({"reference '" + r.from + " -> " + r.to +
                          "' names unknown function '" + *end + "'"});
      }
    }
  }
  return issues;
}

bool is_well_formed(const Function& func) { return verify(func).empty(); }

void assert_well_formed(const Function& func) {
  const auto issues = verify(func);
  if (issues.empty()) {
    return;
  }
  for (const VerifyIssue& issue : issues) {
    std::fprintf(stderr, "IR verify: %s\n", issue.message.c_str());
  }
  TADFA_ASSERT_MSG(false, "IR verification failed");
}

}  // namespace tadfa::ir
