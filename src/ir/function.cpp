#include "ir/function.hpp"

namespace tadfa::ir {

bool BasicBlock::has_terminator() const {
  return !instructions_.empty() && instructions_.back().is_terminator();
}

const Instruction& BasicBlock::terminator() const {
  TADFA_ASSERT(has_terminator());
  return instructions_.back();
}

std::vector<BlockId> BasicBlock::successors() const {
  if (!has_terminator()) {
    return {};
  }
  return terminator().targets();
}

void BasicBlock::insert(std::size_t index, Instruction inst) {
  TADFA_ASSERT(index <= instructions_.size());
  instructions_.insert(instructions_.begin() + static_cast<std::ptrdiff_t>(index),
                       std::move(inst));
}

BlockId Function::add_block(std::string block_name) {
  const auto id = static_cast<BlockId>(blocks_.size());
  if (block_name.empty()) {
    block_name = "bb" + std::to_string(id);
  }
  blocks_.emplace_back(id, std::move(block_name));
  return id;
}

const BasicBlock& Function::block(BlockId id) const {
  TADFA_ASSERT(id < blocks_.size());
  return blocks_[id];
}

BasicBlock& Function::block(BlockId id) {
  TADFA_ASSERT(id < blocks_.size());
  return blocks_[id];
}

std::vector<std::vector<BlockId>> Function::predecessors() const {
  std::vector<std::vector<BlockId>> preds(blocks_.size());
  for (const BasicBlock& b : blocks_) {
    for (BlockId succ : b.successors()) {
      TADFA_ASSERT(succ < blocks_.size());
      preds[succ].push_back(b.id());
    }
  }
  return preds;
}

Reg Function::new_reg() { return next_reg_++; }

void Function::ensure_regs(std::uint32_t n) {
  if (n > next_reg_) {
    next_reg_ = n;
  }
}

Reg Function::add_param() {
  const Reg r = new_reg();
  params_.push_back(r);
  return r;
}

void Function::add_param_reg(Reg r) {
  ensure_regs(r + 1);
  params_.push_back(r);
}

std::int64_t Function::allocate_stack_slot() {
  return kStackBase + static_cast<std::int64_t>(stack_slots_++);
}

std::size_t Function::instruction_count() const {
  std::size_t n = 0;
  for (const BasicBlock& b : blocks_) {
    n += b.size();
  }
  return n;
}

const Instruction& Function::instruction(InstrRef ref) const {
  const BasicBlock& b = block(ref.block);
  TADFA_ASSERT(ref.index < b.size());
  return b.instructions()[ref.index];
}

Instruction& Function::instruction(InstrRef ref) {
  BasicBlock& b = block(ref.block);
  TADFA_ASSERT(ref.index < b.size());
  return b.instructions()[ref.index];
}

std::vector<InstrRef> Function::all_instructions() const {
  std::vector<InstrRef> refs;
  refs.reserve(instruction_count());
  for (const BasicBlock& b : blocks_) {
    for (std::uint32_t i = 0; i < b.size(); ++i) {
      refs.push_back({b.id(), i});
    }
  }
  return refs;
}

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a over the value's bytes, unrolled to one multiply per word.
  h ^= v;
  h *= kFnvPrime;
}

void mix_instruction(std::uint64_t& h, const Instruction& inst) {
  mix(h, static_cast<std::uint64_t>(inst.opcode()));
  mix(h, inst.has_dest() ? inst.dest() : kInvalidReg);
  for (const Operand& op : inst.operands()) {
    mix(h, op.is_reg() ? 1 : 2);
    mix(h, op.is_reg() ? op.reg()
                       : static_cast<std::uint64_t>(op.imm()));
  }
  for (BlockId t : inst.targets()) {
    mix(h, t);
  }
}

}  // namespace

std::uint64_t fingerprint(const Function& func) {
  std::uint64_t h = kFnvOffset;
  mix(h, func.reg_count());
  for (Reg p : func.params()) {
    mix(h, p);
  }
  for (const BasicBlock& b : func.blocks()) {
    mix(h, b.size());
    for (const Instruction& inst : b.instructions()) {
      mix_instruction(h, inst);
    }
  }
  return h;
}

std::uint64_t structure_fingerprint(const Function& func) {
  std::uint64_t h = kFnvOffset;
  mix(h, func.block_count());
  for (const BasicBlock& b : func.blocks()) {
    if (b.has_terminator()) {
      // Opcode + targets only: renaming a branch condition register does
      // not move any CFG edge, so it must not perturb this hash.
      mix(h, static_cast<std::uint64_t>(b.terminator().opcode()));
      for (BlockId t : b.terminator().targets()) {
        mix(h, t);
      }
    } else {
      mix(h, 0);
    }
  }
  return h;
}

Function& Module::add_function(std::string name) {
  functions_.emplace_back(std::move(name));
  return functions_.back();
}

Function& Module::add_function(Function func) {
  functions_.push_back(std::move(func));
  return functions_.back();
}

const Function* Module::find(const std::string& name) const {
  for (const Function& f : functions_) {
    if (f.name() == name) {
      return &f;
    }
  }
  return nullptr;
}

Function* Module::find(const std::string& name) {
  for (Function& f : functions_) {
    if (f.name() == name) {
      return &f;
    }
  }
  return nullptr;
}

void Module::add_reference(std::string from, std::string to) {
  for (const ModuleReference& r : references_) {
    if (r.from == from && r.to == to) {
      return;
    }
  }
  references_.push_back({std::move(from), std::move(to)});
}

std::vector<std::string> Module::references_from(
    const std::string& from) const {
  std::vector<std::string> out;
  for (const ModuleReference& r : references_) {
    if (r.from == from) {
      out.push_back(r.to);
    }
  }
  return out;
}

}  // namespace tadfa::ir
