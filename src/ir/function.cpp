#include "ir/function.hpp"

namespace tadfa::ir {

bool BasicBlock::has_terminator() const {
  return !instructions_.empty() && instructions_.back().is_terminator();
}

const Instruction& BasicBlock::terminator() const {
  TADFA_ASSERT(has_terminator());
  return instructions_.back();
}

std::vector<BlockId> BasicBlock::successors() const {
  if (!has_terminator()) {
    return {};
  }
  return terminator().targets();
}

void BasicBlock::insert(std::size_t index, Instruction inst) {
  TADFA_ASSERT(index <= instructions_.size());
  instructions_.insert(instructions_.begin() + static_cast<std::ptrdiff_t>(index),
                       std::move(inst));
}

BlockId Function::add_block(std::string block_name) {
  const auto id = static_cast<BlockId>(blocks_.size());
  if (block_name.empty()) {
    block_name = "bb" + std::to_string(id);
  }
  blocks_.emplace_back(id, std::move(block_name));
  return id;
}

const BasicBlock& Function::block(BlockId id) const {
  TADFA_ASSERT(id < blocks_.size());
  return blocks_[id];
}

BasicBlock& Function::block(BlockId id) {
  TADFA_ASSERT(id < blocks_.size());
  return blocks_[id];
}

std::vector<std::vector<BlockId>> Function::predecessors() const {
  std::vector<std::vector<BlockId>> preds(blocks_.size());
  for (const BasicBlock& b : blocks_) {
    for (BlockId succ : b.successors()) {
      TADFA_ASSERT(succ < blocks_.size());
      preds[succ].push_back(b.id());
    }
  }
  return preds;
}

Reg Function::new_reg() { return next_reg_++; }

void Function::ensure_regs(std::uint32_t n) {
  if (n > next_reg_) {
    next_reg_ = n;
  }
}

Reg Function::add_param() {
  const Reg r = new_reg();
  params_.push_back(r);
  return r;
}

void Function::add_param_reg(Reg r) {
  ensure_regs(r + 1);
  params_.push_back(r);
}

std::int64_t Function::allocate_stack_slot() {
  return kStackBase + static_cast<std::int64_t>(stack_slots_++);
}

std::size_t Function::instruction_count() const {
  std::size_t n = 0;
  for (const BasicBlock& b : blocks_) {
    n += b.size();
  }
  return n;
}

const Instruction& Function::instruction(InstrRef ref) const {
  const BasicBlock& b = block(ref.block);
  TADFA_ASSERT(ref.index < b.size());
  return b.instructions()[ref.index];
}

Instruction& Function::instruction(InstrRef ref) {
  BasicBlock& b = block(ref.block);
  TADFA_ASSERT(ref.index < b.size());
  return b.instructions()[ref.index];
}

std::vector<InstrRef> Function::all_instructions() const {
  std::vector<InstrRef> refs;
  refs.reserve(instruction_count());
  for (const BasicBlock& b : blocks_) {
    for (std::uint32_t i = 0; i < b.size(); ++i) {
      refs.push_back({b.id(), i});
    }
  }
  return refs;
}

Function& Module::add_function(std::string name) {
  functions_.emplace_back(std::move(name));
  return functions_.back();
}

const Function* Module::find(const std::string& name) const {
  for (const Function& f : functions_) {
    if (f.name() == name) {
      return &f;
    }
  }
  return nullptr;
}

Function* Module::find(const std::string& name) {
  for (Function& f : functions_) {
    if (f.name() == name) {
      return &f;
    }
  }
  return nullptr;
}

}  // namespace tadfa::ir
