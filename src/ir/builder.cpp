#include "ir/builder.hpp"

namespace tadfa::ir {

BlockId IRBuilder::create_block(std::string name) {
  return func_.add_block(std::move(name));
}

void IRBuilder::set_insert_point(BlockId block) {
  TADFA_ASSERT(block < func_.block_count());
  current_ = block;
}

void IRBuilder::emit(Instruction inst) {
  TADFA_ASSERT_MSG(current_ != kInvalidBlock,
                   "set_insert_point before emitting");
  BasicBlock& b = func_.block(current_);
  TADFA_ASSERT_MSG(!b.has_terminator(), "emitting past a terminator");
  b.append(std::move(inst));
}

Reg IRBuilder::const_int(std::int64_t value) {
  const Reg d = func_.new_reg();
  emit(Instruction(Opcode::kConst, d, {Operand::imm(value)}));
  return d;
}

Reg IRBuilder::mov(Reg src) {
  const Reg d = func_.new_reg();
  emit(Instruction(Opcode::kMov, d, {Operand::reg(src)}));
  return d;
}

Reg IRBuilder::binary(Opcode op, Operand lhs, Operand rhs) {
  TADFA_ASSERT(is_binary_alu(op));
  const Reg d = func_.new_reg();
  emit(Instruction(op, d, {lhs, rhs}));
  return d;
}

Reg IRBuilder::neg(Operand a) {
  const Reg d = func_.new_reg();
  emit(Instruction(Opcode::kNeg, d, {a}));
  return d;
}

Reg IRBuilder::bnot(Operand a) {
  const Reg d = func_.new_reg();
  emit(Instruction(Opcode::kNot, d, {a}));
  return d;
}

Reg IRBuilder::cmp(Opcode cmp_op, Operand a, Operand b) {
  TADFA_ASSERT(is_compare(cmp_op));
  return binary(cmp_op, a, b);
}

Reg IRBuilder::load(Operand address) {
  const Reg d = func_.new_reg();
  emit(Instruction(Opcode::kLoad, d, {address}));
  return d;
}

void IRBuilder::assign_const(Reg dest, std::int64_t value) {
  emit(Instruction(Opcode::kConst, dest, {Operand::imm(value)}));
}

void IRBuilder::assign_mov(Reg dest, Reg src) {
  emit(Instruction(Opcode::kMov, dest, {Operand::reg(src)}));
}

void IRBuilder::assign(Opcode op, Reg dest, Operand a, Operand b) {
  TADFA_ASSERT(is_binary_alu(op));
  emit(Instruction(op, dest, {a, b}));
}

void IRBuilder::assign_unary(Opcode op, Reg dest, Operand a) {
  TADFA_ASSERT(is_unary_alu(op));
  emit(Instruction(op, dest, {a}));
}

void IRBuilder::assign_load(Reg dest, Operand address) {
  emit(Instruction(Opcode::kLoad, dest, {address}));
}

void IRBuilder::store(Operand address, Operand value) {
  emit(Instruction(Opcode::kStore, kInvalidReg, {address, value}));
}

void IRBuilder::nop() { emit(Instruction(Opcode::kNop, kInvalidReg, {})); }

void IRBuilder::br(Reg condition, BlockId then_block, BlockId else_block) {
  emit(Instruction(Opcode::kBr, kInvalidReg, {Operand::reg(condition)},
                   {then_block, else_block}));
}

void IRBuilder::jmp(BlockId target) {
  emit(Instruction(Opcode::kJmp, kInvalidReg, {}, {target}));
}

void IRBuilder::ret() { emit(Instruction(Opcode::kRet, kInvalidReg, {})); }

void IRBuilder::ret(Operand value) {
  emit(Instruction(Opcode::kRet, kInvalidReg, {value}));
}

}  // namespace tadfa::ir
