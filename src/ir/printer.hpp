// Textual form of the IR (round-trips with ir/parser.hpp).
#pragma once

#include <ostream>
#include <string>

#include "ir/function.hpp"

namespace tadfa::ir {

/// Prints one instruction without trailing newline, e.g. "%3 = add %1, %2".
/// Block targets are printed by name using `func` for lookup.
std::string to_string(const Function& func, const Instruction& inst);

/// Prints a whole function in the canonical text format.
void print(std::ostream& os, const Function& func);

/// Prints every function in the module.
void print(std::ostream& os, const Module& module);

/// Returns the canonical text of a function.
std::string to_string(const Function& func);

/// Returns the canonical text of a whole module (round-trips through
/// parse_module).
std::string to_string(const Module& module);

}  // namespace tadfa::ir
