// Parser for the canonical IR text format (the inverse of ir/printer.hpp).
//
// Grammar (line oriented; ';' starts a comment):
//
//   module   := (function | reference)*
//   function := "func" "@" NAME "(" params? ")" "{" line* "}"
//   reference := "ref" "@" NAME "->" "@" NAME
//   params   := "%" INT ("," "%" INT)*
//   line     := LABEL ":" | instruction
//   instruction := ["%" INT "="] MNEMONIC operand ("," operand)*
//   operand  := "%" INT | INT | LABEL
//
// A reference declares a module-level dependency edge (see
// ir::ModuleReference); it may name functions defined later in the file.
//
// Register numbers may be sparse; the function's reg_count is one past the
// highest mentioned register. Block labels may be referenced before they are
// defined (forward branches).
#pragma once

#include <optional>
#include <string>

#include "ir/function.hpp"

namespace tadfa::ir {

struct ParseError {
  std::size_t line = 0;  // 1-based line number in the input
  std::string message;
};

/// Parses a module from text. On failure returns nullopt and fills `error`.
std::optional<Module> parse_module(const std::string& text,
                                   ParseError* error = nullptr);

/// Parses text expected to contain exactly one function.
std::optional<Function> parse_function(const std::string& text,
                                       ParseError* error = nullptr);

}  // namespace tadfa::ir
