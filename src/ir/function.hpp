// Basic blocks, functions, and modules.
//
// A Function owns its blocks by value; blocks are addressed by BlockId
// (their index), which keeps the CFG trivially serializable and lets the
// data-flow framework use dense vectors keyed by block id.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/instruction.hpp"

namespace tadfa::ir {

/// A maximal straight-line sequence of instructions ending in a terminator.
class BasicBlock {
 public:
  BasicBlock(BlockId id, std::string name)
      : id_(id), name_(std::move(name)) {}

  BlockId id() const { return id_; }
  const std::string& name() const { return name_; }

  const std::vector<Instruction>& instructions() const {
    return instructions_;
  }
  std::vector<Instruction>& instructions() { return instructions_; }

  bool empty() const { return instructions_.empty(); }
  std::size_t size() const { return instructions_.size(); }

  /// True when the final instruction is a terminator.
  bool has_terminator() const;

  /// The terminator; requires has_terminator().
  const Instruction& terminator() const;

  /// Successor block ids, taken from the terminator's targets.
  std::vector<BlockId> successors() const;

  void append(Instruction inst) { instructions_.push_back(std::move(inst)); }

  /// Inserts before position `index` (0 = front, size() = before nothing,
  /// i.e. append).
  void insert(std::size_t index, Instruction inst);

 private:
  BlockId id_;
  std::string name_;
  std::vector<Instruction> instructions_;
};

/// Identifies one instruction inside a function.
struct InstrRef {
  BlockId block = kInvalidBlock;
  std::uint32_t index = 0;

  friend bool operator==(const InstrRef&, const InstrRef&) = default;
  friend bool operator<(const InstrRef& a, const InstrRef& b) {
    if (a.block != b.block) {
      return a.block < b.block;
    }
    return a.index < b.index;
  }
};

/// A single procedure: the unit on which all analyses run (the paper
/// describes its analysis "in the context of a single procedure").
class Function {
 public:
  explicit Function(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  /// Renames the function (module generators derive unique names from a
  /// template kernel's).
  void set_name(std::string name) { name_ = std::move(name); }

  // --- Blocks -------------------------------------------------------------
  BlockId add_block(std::string block_name = "");
  const BasicBlock& block(BlockId id) const;
  BasicBlock& block(BlockId id);
  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  std::vector<BasicBlock>& blocks() { return blocks_; }
  std::size_t block_count() const { return blocks_.size(); }
  /// Entry block is always block 0.
  BlockId entry() const { return 0; }

  /// Predecessor lists, recomputed from terminators on each call.
  std::vector<std::vector<BlockId>> predecessors() const;

  // --- Virtual registers ---------------------------------------------------
  /// Allocates a fresh virtual register.
  Reg new_reg();
  /// Number of virtual registers allocated so far.
  std::uint32_t reg_count() const { return next_reg_; }
  /// Declares registers [0, n) in bulk (used by the parser).
  void ensure_regs(std::uint32_t n);

  // --- Parameters ----------------------------------------------------------
  /// Parameter registers, defined on entry (in order).
  const std::vector<Reg>& params() const { return params_; }
  Reg add_param();
  /// Declares an existing register as the next parameter (used by the
  /// parser, where parameter numbers come from the text).
  void add_param_reg(Reg r);

  // --- Stack slots (for spills and locals) ----------------------------------
  /// Reserves one word of function-local memory; returns its address.
  /// Addresses start at kStackBase and grow upward.
  std::int64_t allocate_stack_slot();
  std::uint32_t stack_slot_count() const { return stack_slots_; }
  static constexpr std::int64_t kStackBase = 1 << 20;

  // --- Whole-function queries ----------------------------------------------
  /// Total instruction count across all blocks.
  std::size_t instruction_count() const;
  const Instruction& instruction(InstrRef ref) const;
  Instruction& instruction(InstrRef ref);

  /// All instruction refs in block order then instruction order.
  std::vector<InstrRef> all_instructions() const;

 private:
  std::string name_;
  std::vector<BasicBlock> blocks_;
  std::vector<Reg> params_;
  std::uint32_t next_reg_ = 0;
  std::uint32_t stack_slots_ = 0;
};

/// Order-sensitive 64-bit hash of the full instruction stream (opcodes,
/// defs, operands, targets, params, register count). Cheap IR-change
/// detection for pipeline checkpoints: two calls differ iff the function
/// was mutated (modulo astronomically unlikely collisions).
std::uint64_t fingerprint(const Function& func);

/// Hash of the block-level structure only: block count and each block's
/// terminator (opcode + targets) — exactly the inputs Cfg, Dominators,
/// LoopInfo, and the static frequency estimate derive from. Instruction
/// rewrites that keep terminators intact keep this stable.
std::uint64_t structure_fingerprint(const Function& func);

/// A module-level dependency edge: `from` consumes `to`'s artifact (a
/// symbol reference, a shared table, a workload-declared call). The IR
/// has no call instruction, so these edges are the only cross-function
/// coupling the compiler sees; the incremental driver walks them to
/// decide what an edit invalidates.
struct ModuleReference {
  std::string from;
  std::string to;

  friend bool operator==(const ModuleReference&,
                         const ModuleReference&) = default;
};

/// A collection of functions (one translation unit).
class Module {
 public:
  Function& add_function(std::string name);
  /// Adopts an already-built function (keeps its name).
  Function& add_function(Function func);
  std::size_t size() const { return functions_.size(); }
  bool empty() const { return functions_.empty(); }
  const std::vector<Function>& functions() const { return functions_; }
  std::vector<Function>& functions() { return functions_; }
  const Function* find(const std::string& name) const;
  Function* find(const std::string& name);

  /// Records `from -> to` (ignored if the identical edge already exists,
  /// so re-parsing printed text cannot double edges).
  void add_reference(std::string from, std::string to);
  const std::vector<ModuleReference>& references() const {
    return references_;
  }
  /// Names `from` references directly (in recorded order, deduplicated).
  std::vector<std::string> references_from(const std::string& from) const;

 private:
  std::vector<Function> functions_;
  std::vector<ModuleReference> references_;
};

}  // namespace tadfa::ir
