#include "pipeline/registry.hpp"

namespace tadfa::pipeline {

void PassRegistry::register_pass(const std::string& name,
                                 const std::string& help,
                                 PassFactory factory) {
  passes_[name] = Registered{help, std::move(factory)};
}

bool PassRegistry::contains(const std::string& name) const {
  return passes_.count(name) != 0;
}

std::unique_ptr<Pass> PassRegistry::create(const PassSpec& spec,
                                           std::string* error) const {
  const auto it = passes_.find(spec.name);
  if (it == passes_.end()) {
    if (error != nullptr) {
      *error = "unknown pass '" + spec.name + "'";
    }
    return nullptr;
  }
  std::string factory_error;
  auto pass = it->second.factory(spec, &factory_error);
  if (pass == nullptr && error != nullptr) {
    *error = factory_error.empty()
                 ? "pass '" + spec.name + "' failed to construct"
                 : factory_error;
  }
  return pass;
}

std::vector<PassRegistry::Entry> PassRegistry::entries() const {
  std::vector<Entry> out;
  out.reserve(passes_.size());
  for (const auto& [name, reg] : passes_) {
    out.push_back(Entry{name, reg.help});
  }
  return out;
}

PassRegistry& default_registry() {
  static PassRegistry* registry = [] {
    auto* r = new PassRegistry();
    register_builtin_passes(*r);
    return r;
  }();
  return *registry;
}

}  // namespace tadfa::pipeline
