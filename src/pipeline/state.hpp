// Shared state threaded through a pass pipeline.
//
// The paper's Sec. 4 flow (thermal DFA -> rank critical variables ->
// split/spill -> cool-first re-allocation -> thermal scheduling) used to be
// hand-wired differently in every example and bench driver. The pipeline
// subsystem makes it declarative: a PipelineState carries the function
// being compiled plus an AnalysisManager holding every derived artifact —
// lazily computed analyses (Cfg, Liveness, ...) and registered pass
// products (assignment, thermal-DFA result, ranking, gating plan). Passes
// read artifacts through the accessors below (failing on absent
// prerequisites) and report what they kept valid via
// PassOutcome::preserved instead of the old blanket invalidate_derived().
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/critical.hpp"
#include "core/thermal_dfa.hpp"
#include "ir/function.hpp"
#include "machine/assignment.hpp"
#include "opt/bank_gating.hpp"
#include "pipeline/analysis_manager.hpp"
#include "pipeline/context.hpp"
#include "support/serialize.hpp"
#include "thermal/map_stats.hpp"

namespace tadfa::pipeline {

TADFA_REGISTER_ANALYSIS_RESULT(opt::BankGatingPlan, "bank-gating-plan");

/// Mutable state a pipeline run threads from pass to pass. Move-only: the
/// analysis cache inside holds pointers into `func`, so moves drop the
/// computed analyses (registered results survive; see
/// AnalysisManager::on_function_moved).
struct PipelineState {
  /// The function being compiled (spill-rewritten, split, scheduled...).
  ir::Function func;

  /// Analysis cache + registered pass products for `func`.
  AnalysisManager analyses;

  /// Virtual registers spilled across all allocation passes so far.
  std::uint32_t spilled_regs = 0;

  /// A state always wraps a real function: the old default constructor
  /// manufactured a nameless ir::Function("") that sailed through the
  /// verifier and hid "forgot to set the function" bugs.
  PipelineState() = delete;
  explicit PipelineState(ir::Function f) : func(std::move(f)) {}

  PipelineState(PipelineState&& other) noexcept
      : func(std::move(other.func)),
        analyses(std::move(other.analyses)),
        spilled_regs(other.spilled_regs) {
    analyses.on_function_moved();
  }
  PipelineState& operator=(PipelineState&& other) noexcept {
    func = std::move(other.func);
    analyses = std::move(other.analyses);
    spilled_regs = other.spilled_regs;
    analyses.on_function_moved();
    return *this;
  }
  PipelineState(const PipelineState&) = delete;
  PipelineState& operator=(const PipelineState&) = delete;

  // --- Artifact accessors ----------------------------------------------------
  // nullptr when the artifact has not been produced (or was invalidated).

  /// Physical assignment of `func`, registered by `alloc=` passes and
  /// dropped by IR-reshaping passes (cse, dce, split-hot, ...).
  const machine::RegisterAssignment* assignment() const {
    return analyses.result<machine::RegisterAssignment>();
  }
  bool has_assignment() const { return assignment() != nullptr; }

  /// Most recent thermal-DFA prediction. Its per-register exit
  /// temperatures guide subsequent heat-aware allocation; its
  /// per-instruction states refer to the func at analysis time, so passes
  /// that reshape instructions clear them (but keep the exit temps).
  const core::ThermalDfaResult* dfa() const {
    return analyses.result<core::ThermalDfaResult>();
  }

  /// Critical-variable ranking from the last `thermal-dfa` pass.
  const std::vector<core::CriticalVariable>* ranking() const {
    const auto* r = analyses.result<CriticalRanking>();
    return r ? &r->vars : nullptr;
  }

  /// Bank power-gating plan from a `bank-gating` pass.
  const opt::BankGatingPlan* gating() const {
    return analyses.result<opt::BankGatingPlan>();
  }
};

/// The thermal-DFA outcome worth keeping across processes: convergence
/// and the exit map, not the per-instruction states (those are bulky
/// and refer to instruction positions no later consumer needs). On a
/// warm hit this is restored as a summary-only ThermalDfaResult, so
/// state.dfa() answers warm exactly where it answered cold — with
/// empty per_instruction/delta_history vectors.
struct ThermalSummary {
  bool converged = false;
  int iterations = 0;
  double final_delta_k = 0;
  double peak_anywhere_k = 0;
  thermal::MapStats exit_stats;
  std::vector<double> exit_reg_temps_k;

  /// Re-materializes the summary as a ThermalDfaResult (summary form:
  /// per-instruction states and δ history stay empty).
  core::ThermalDfaResult to_result() const;

  void serialize(ByteWriter& w) const;
  static ThermalSummary deserialize(ByteReader& r);

  friend bool operator==(const ThermalSummary&,
                         const ThermalSummary&) = default;
};

/// The summary of a full DFA result (what the cache keeps of it).
ThermalSummary summarize_dfa(const core::ThermalDfaResult& dfa);

/// Full-fidelity DFA serialization for stage snapshots. Unlike the
/// end-of-pipeline ThermalSummary, a mid-pipeline freeze must keep the
/// per-instruction states and δ history: passes downstream of the
/// boundary (nops, most directly) read them, and a resumed run must see
/// exactly what the cold run saw.
void serialize_dfa(ByteWriter& w, const core::ThermalDfaResult& dfa);
core::ThermalDfaResult deserialize_dfa(ByteReader& r);

/// A serializable freeze of a PipelineState at a pass boundary: the
/// function via the canonical printer plus every *registered* artifact
/// (assignment, full DFA result, critical ranking, gating plan).
/// Computed analyses are deliberately absent — they are cheap to
/// rebuild and hold pointers into the live function. restore()
/// reconstructs a PipelineState a resumed pipeline can continue from;
/// paired with normalize_state_at_boundary() on the producing side, the
/// restored state is indistinguishable from the cold run's state at the
/// same boundary (artifacts, analysis-cache contents, even the counters
/// once the sidecar stats are imported).
struct PipelineSnapshot {
  std::string function_text;
  /// The printer/parser round-trip loses trailing *unused* registers
  /// and the stack-slot counter; both are restored from here so the
  /// reconstructed function is fingerprint-identical.
  std::uint32_t reg_count = 0;
  std::uint32_t stack_slots = 0;
  std::uint32_t spilled_regs = 0;
  /// ir::fingerprint of the frozen function; verified after re-parsing.
  std::uint64_t function_fingerprint = 0;
  /// Raw vreg -> phys map including unassigned slots
  /// (machine::RegisterAssignment::kUnassigned sentinel).
  std::optional<std::vector<machine::PhysReg>> assignment;
  std::optional<core::ThermalDfaResult> thermal;
  std::optional<std::vector<core::CriticalVariable>> ranking;
  std::optional<opt::BankGatingPlan> gating;

  /// Freezes `state`. Capture what restore() reconstructs: callers that
  /// need capture/restore to round-trip exactly must normalize the
  /// state first (normalize_state_at_boundary).
  static PipelineSnapshot capture(const PipelineState& state);

  /// Rebuilds a PipelineState named `function_name`, with every
  /// artifact re-registered stat-neutrally (AnalysisManager::restore).
  /// nullopt when the text does not parse or the reconstructed function
  /// does not match `function_fingerprint` (a corrupt snapshot).
  std::optional<PipelineState> restore(const std::string& function_name) const;

  void serialize(ByteWriter& w) const;
  /// nullopt on any truncation/implausibility (totalizing reader).
  static std::optional<PipelineSnapshot> deserialize(ByteReader& r);

  friend bool operator==(const PipelineSnapshot&,
                         const PipelineSnapshot&) = default;
};

/// Pass-boundary normalization: reduces a live state to exactly what a
/// snapshot restore reconstructs — registered artifacts only, with the
/// computed DFA result re-registered at full fidelity. Dropping the
/// computed analyses counts their invalidations (same bookkeeping as
/// moving the state), so a cold run that snapshots at a boundary and a
/// resumed run that starts from the restored snapshot replay
/// byte-identical analysis statistics.
void normalize_state_at_boundary(PipelineState& state);

}  // namespace tadfa::pipeline
