// Shared state threaded through a pass pipeline.
//
// The paper's Sec. 4 flow (thermal DFA -> rank critical variables ->
// split/spill -> cool-first re-allocation -> thermal scheduling) used to be
// hand-wired differently in every example and bench driver. The pipeline
// subsystem makes it declarative: a PipelineState carries the function
// being compiled plus the analysis artifacts passes produce and consume,
// and each pass declares what it needs by reading (and failing on) the
// optional fields.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/critical.hpp"
#include "core/thermal_dfa.hpp"
#include "ir/function.hpp"
#include "machine/assignment.hpp"
#include "machine/floorplan.hpp"
#include "machine/timing.hpp"
#include "opt/bank_gating.hpp"
#include "power/model.hpp"
#include "thermal/grid.hpp"

namespace tadfa::pipeline {

/// The compilation environment — everything that outlives a single run.
/// Non-owning: the rig objects must outlive the PassManager.
struct PipelineContext {
  const machine::Floorplan* floorplan = nullptr;
  const thermal::ThermalGrid* grid = nullptr;
  const power::PowerModel* power = nullptr;
  machine::TimingModel timing;
  core::ThermalDfaConfig dfa_config;
  /// Seed handed to stochastic assignment policies ("random").
  std::uint64_t policy_seed = 42;
};

/// Mutable state a pipeline run threads from pass to pass.
struct PipelineState {
  /// The function being compiled (spill-rewritten, split, scheduled...).
  ir::Function func;

  /// Physical assignment of `func`, present after an `alloc=` pass and
  /// dropped by IR-reshaping passes (cse, dce, split-hot, ...).
  std::optional<machine::RegisterAssignment> assignment;

  /// Most recent thermal-DFA prediction. Its per-register exit
  /// temperatures guide subsequent heat-aware allocation; its
  /// per-instruction states refer to the func at analysis time, so passes
  /// that reshape instructions drop it.
  std::optional<core::ThermalDfaResult> dfa;

  /// Critical-variable ranking from the last `thermal-dfa` pass,
  /// descending. split-hot/spill-critical consume entries from the front
  /// so a later pass never re-treats an already-handled variable.
  std::vector<core::CriticalVariable> ranking;

  /// Bank power-gating plan from a `bank-gating` pass.
  std::optional<opt::BankGatingPlan> gating;

  /// Virtual registers spilled across all allocation passes so far.
  std::uint32_t spilled_regs = 0;

  PipelineState() : func("") {}
  explicit PipelineState(ir::Function f) : func(std::move(f)) {}

  /// Called by passes that rewrite the IR in ways that stale every
  /// derived artifact.
  void invalidate_derived() {
    assignment.reset();
    dfa.reset();
    ranking.clear();
    gating.reset();
  }
};

}  // namespace tadfa::pipeline
