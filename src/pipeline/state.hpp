// Shared state threaded through a pass pipeline.
//
// The paper's Sec. 4 flow (thermal DFA -> rank critical variables ->
// split/spill -> cool-first re-allocation -> thermal scheduling) used to be
// hand-wired differently in every example and bench driver. The pipeline
// subsystem makes it declarative: a PipelineState carries the function
// being compiled plus an AnalysisManager holding every derived artifact —
// lazily computed analyses (Cfg, Liveness, ...) and registered pass
// products (assignment, thermal-DFA result, ranking, gating plan). Passes
// read artifacts through the accessors below (failing on absent
// prerequisites) and report what they kept valid via
// PassOutcome::preserved instead of the old blanket invalidate_derived().
#pragma once

#include <cstdint>
#include <vector>

#include "core/critical.hpp"
#include "core/thermal_dfa.hpp"
#include "ir/function.hpp"
#include "machine/assignment.hpp"
#include "opt/bank_gating.hpp"
#include "pipeline/analysis_manager.hpp"
#include "pipeline/context.hpp"

namespace tadfa::pipeline {

TADFA_REGISTER_ANALYSIS_RESULT(opt::BankGatingPlan, "bank-gating-plan");

/// Mutable state a pipeline run threads from pass to pass. Move-only: the
/// analysis cache inside holds pointers into `func`, so moves drop the
/// computed analyses (registered results survive; see
/// AnalysisManager::on_function_moved).
struct PipelineState {
  /// The function being compiled (spill-rewritten, split, scheduled...).
  ir::Function func;

  /// Analysis cache + registered pass products for `func`.
  AnalysisManager analyses;

  /// Virtual registers spilled across all allocation passes so far.
  std::uint32_t spilled_regs = 0;

  /// A state always wraps a real function: the old default constructor
  /// manufactured a nameless ir::Function("") that sailed through the
  /// verifier and hid "forgot to set the function" bugs.
  PipelineState() = delete;
  explicit PipelineState(ir::Function f) : func(std::move(f)) {}

  PipelineState(PipelineState&& other) noexcept
      : func(std::move(other.func)),
        analyses(std::move(other.analyses)),
        spilled_regs(other.spilled_regs) {
    analyses.on_function_moved();
  }
  PipelineState& operator=(PipelineState&& other) noexcept {
    func = std::move(other.func);
    analyses = std::move(other.analyses);
    spilled_regs = other.spilled_regs;
    analyses.on_function_moved();
    return *this;
  }
  PipelineState(const PipelineState&) = delete;
  PipelineState& operator=(const PipelineState&) = delete;

  // --- Artifact accessors ----------------------------------------------------
  // nullptr when the artifact has not been produced (or was invalidated).

  /// Physical assignment of `func`, registered by `alloc=` passes and
  /// dropped by IR-reshaping passes (cse, dce, split-hot, ...).
  const machine::RegisterAssignment* assignment() const {
    return analyses.result<machine::RegisterAssignment>();
  }
  bool has_assignment() const { return assignment() != nullptr; }

  /// Most recent thermal-DFA prediction. Its per-register exit
  /// temperatures guide subsequent heat-aware allocation; its
  /// per-instruction states refer to the func at analysis time, so passes
  /// that reshape instructions clear them (but keep the exit temps).
  const core::ThermalDfaResult* dfa() const {
    return analyses.result<core::ThermalDfaResult>();
  }

  /// Critical-variable ranking from the last `thermal-dfa` pass.
  const std::vector<core::CriticalVariable>* ranking() const {
    const auto* r = analyses.result<CriticalRanking>();
    return r ? &r->vars : nullptr;
  }

  /// Bank power-gating plan from a `bank-gating` pass.
  const opt::BankGatingPlan* gating() const {
    return analyses.result<opt::BankGatingPlan>();
  }
};

}  // namespace tadfa::pipeline
