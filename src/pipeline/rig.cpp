#include "pipeline/rig.hpp"

#include <utility>

namespace tadfa::pipeline {
namespace {

thermal::StepKernel pick_kernel(const RigOptions& options) {
  if (options.step_kernel.has_value()) {
    return *options.step_kernel;
  }
  return options.dfa_config.strict_math
             ? thermal::StepKernel::kReference
             : thermal::ThermalGrid::default_step_kernel();
}

}  // namespace

CompileRig::CompileRig(machine::MachineConfig config, RigOptions options)
    : config_(std::move(config)),
      options_(options),
      floorplan_(config_.rf),
      grid_(floorplan_, options_.subdivision, pick_kernel(options_)),
      power_(floorplan_.config()) {}

PipelineContext CompileRig::context() const {
  PipelineContext ctx;
  ctx.floorplan = &floorplan_;
  ctx.grid = &grid_;
  ctx.power = &power_;
  ctx.dfa_config = options_.dfa_config;
  ctx.policy_seed = options_.policy_seed;
  ctx.machine = &config_;
  return ctx;
}

}  // namespace tadfa::pipeline
