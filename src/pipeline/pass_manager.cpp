#include "pipeline/pass_manager.hpp"

#include <chrono>
#include <memory>

#include "ir/verifier.hpp"

namespace tadfa::pipeline {
namespace {

/// Audits a pass's self-report against cheap IR fingerprints. Returns ""
/// when the claims are consistent with what actually happened.
std::string audit_claims(const PassOutcome& outcome, std::uint64_t before_fp,
                         std::uint64_t after_fp, std::uint64_t before_sfp,
                         std::uint64_t after_sfp) {
  if (!outcome.changed) {
    if (after_fp != before_fp) {
      return "reported no change but modified the function";
    }
    return "";
  }
  if (after_fp == before_fp) {
    return "";  // only artifacts changed; every preservation claim is safe
  }
  // Liveness-class analyses read every def/use: no pass in this codebase
  // can legitimately keep them across an instruction-stream change, so a
  // claim to do so is treated as a bug (this is what catches a pass that
  // "preserves Liveness" while mutating the IR).
  if (outcome.preserved.preserves_all() ||
      outcome.preserved.preserves(analysis_key<dataflow::Liveness>()) ||
      outcome.preserved.preserves(analysis_key<dataflow::LiveIntervals>()) ||
      outcome.preserved.preserves(
          analysis_key<dataflow::InterferenceGraph>())) {
    return "modified the function but claimed to preserve a liveness-class "
           "analysis";
  }
  // Structure-class analyses only depend on block count and terminators.
  if (after_sfp != before_sfp &&
      (outcome.preserved.preserves(analysis_key<dataflow::Cfg>()) ||
       outcome.preserved.preserves(analysis_key<dataflow::Dominators>()) ||
       outcome.preserved.preserves(analysis_key<dataflow::LoopInfo>()) ||
       outcome.preserved.preserves(analysis_key<BlockFrequencies>()))) {
    return "changed the block structure but claimed to preserve a CFG-level "
           "analysis";
  }
  return "";
}

}  // namespace

std::string verify_checkpoint(const PipelineState& state) {
  const auto issues = ir::verify(state.func);
  if (!issues.empty()) {
    return "IR: " + issues.front().message;
  }
  if (state.has_assignment() && !state.assignment()->covers(state.func)) {
    return "assignment does not cover every virtual register";
  }
  return "";
}

PipelineRunResult PassManager::run(const ir::Function& input,
                                   const std::string& spec) const {
  SpecError parse_error;
  const auto passes = parse_pipeline_spec(spec, &parse_error);
  if (!passes.has_value()) {
    PipelineRunResult result(input);
    result.error = format_spec_error(parse_error);
    return result;
  }
  return run(input, *passes);
}

std::string PassManager::validate(const std::vector<PassSpec>& specs) const {
  for (const PassSpec& spec : specs) {
    std::string error;
    if (registry_->create(spec, &error) == nullptr) {
      return error;
    }
  }
  return "";
}

PipelineRunResult PassManager::run(const ir::Function& input,
                                   const std::vector<PassSpec>& specs,
                                   const SnapshotHooks& hooks) const {
  PipelineRunResult result(input);
  run_impl(result, /*start=*/0, specs, hooks);
  return result;
}

PipelineRunResult PassManager::resume(ResumeState resume,
                                      const std::vector<PassSpec>& specs,
                                      const SnapshotHooks& hooks) const {
  PipelineRunResult result(std::move(resume.state));
  if (resume.passes_done > specs.size()) {
    result.error = "resume point (" + std::to_string(resume.passes_done) +
                   " passes done) is past the end of a " +
                   std::to_string(specs.size()) + "-pass pipeline";
    return result;
  }
  result.pass_stats = std::move(resume.pass_stats);
  result.total_seconds = resume.prefix_seconds;
  run_impl(result, resume.passes_done, specs, hooks);
  return result;
}

void PassManager::run_impl(PipelineRunResult& result, std::size_t start,
                           const std::vector<PassSpec>& specs,
                           const SnapshotHooks& hooks) const {
  using Clock = std::chrono::steady_clock;

  result.state.analyses.set_caching(analysis_caching_);

  // Instantiate everything first — including the prefix a resume never
  // runs: a typo in pass 7 must not leave a half-transformed function
  // behind, and a resumed pipeline must reject exactly the specs a cold
  // one rejects.
  std::vector<std::unique_ptr<Pass>> passes;
  passes.reserve(specs.size());
  for (const PassSpec& spec : specs) {
    std::string error;
    auto pass = registry_->create(spec, &error);
    if (pass == nullptr) {
      result.error = error;
      return;
    }
    passes.push_back(std::move(pass));
  }

  if (checkpoints_) {
    if (std::string issue = verify_checkpoint(result.state); !issue.empty()) {
      result.error = (start == 0
                          ? "verifier checkpoint on pipeline input: "
                          : "verifier checkpoint on restored snapshot: ") +
                     issue;
      return;
    }
  }

  // A resumed run's clock starts where the producing run's prefix
  // stopped (ResumeState::prefix_seconds, parked in total_seconds).
  const double prefix_seconds = result.total_seconds;
  const auto pipeline_start = Clock::now();
  for (std::size_t index = start; index < passes.size(); ++index) {
    const auto& pass = passes[index];
    result.state.analyses.begin_pass();
    std::uint64_t before_fp = 0;
    std::uint64_t before_sfp = 0;
    if (checkpoints_) {
      before_fp = ir::fingerprint(result.state.func);
      before_sfp = ir::structure_fingerprint(result.state.func);
    }

    const auto pass_start = Clock::now();
    const PassOutcome outcome = pass->run(result.state, ctx_);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - pass_start).count();
    if (!outcome.ok) {
      result.error = "pass '" + pass->name() + "': " + outcome.error;
      return;
    }

    if (checkpoints_) {
      const std::uint64_t after_fp = ir::fingerprint(result.state.func);
      const std::uint64_t after_sfp =
          ir::structure_fingerprint(result.state.func);
      if (std::string claim = audit_claims(outcome, before_fp, after_fp,
                                           before_sfp, after_sfp);
          !claim.empty()) {
        result.error = "pass '" + pass->name() + "' " + claim;
        return;
      }
    }

    // Drop exactly what the pass clobbered: everything not preserved by
    // its outcome (and not freshly produced during the pass).
    result.state.analyses.keep_only(outcome.preserved);

    PassRunStats stats;
    stats.name = pass->name();
    stats.seconds = seconds;
    stats.summary = outcome.summary;
    stats.changed = outcome.changed;
    stats.instructions_after = result.state.func.instruction_count();
    stats.vregs_after = result.state.func.reg_count();
    result.pass_stats.push_back(std::move(stats));

    // No-change passes skip their checkpoint: nothing the verifier looks
    // at moved.
    if (checkpoints_ && outcome.changed) {
      if (std::string issue = verify_checkpoint(result.state);
          !issue.empty()) {
        result.error =
            "verifier checkpoint after pass '" + pass->name() + "': " + issue;
        return;
      }
    }

    // Snapshot boundary: normalize the live state to what a restore of
    // the snapshot reconstructs, then hand the freeze to the sink. The
    // normalization is unconditional on the want() answer being true —
    // it is what makes the cold run's suffix byte-identical to a
    // resumed run's (analysis counters included).
    if (hooks.active() && hooks.want(index)) {
      normalize_state_at_boundary(result.state);
      const double elapsed =
          prefix_seconds +
          std::chrono::duration<double>(Clock::now() - pipeline_start).count();
      hooks.sink(index + 1, PipelineSnapshot::capture(result.state),
                 result.pass_stats, result.state.analyses.stats(), elapsed);
    }
  }
  result.total_seconds =
      prefix_seconds +
      std::chrono::duration<double>(Clock::now() - pipeline_start).count();
  result.ok = true;
}

TextTable PassManager::stats_table(const PipelineRunResult& result,
                                   const std::string& title) {
  TextTable table(title);
  table.set_header({"#", "pass", "ms", "instrs", "vregs", "summary"});
  for (std::size_t i = 0; i < result.pass_stats.size(); ++i) {
    const PassRunStats& s = result.pass_stats[i];
    std::string summary = s.summary;
    if (!s.changed) {
      summary += summary.empty() ? "(no change)" : " (no change)";
    }
    table.add_row({std::to_string(i + 1), s.name,
                   TextTable::num(s.seconds * 1e3, 3),
                   std::to_string(s.instructions_after),
                   std::to_string(s.vregs_after), summary});
  }
  return table;
}

}  // namespace tadfa::pipeline
