#include "pipeline/pass_manager.hpp"

#include <chrono>
#include <memory>

#include "ir/verifier.hpp"

namespace tadfa::pipeline {

std::string verify_checkpoint(const PipelineState& state) {
  const auto issues = ir::verify(state.func);
  if (!issues.empty()) {
    return "IR: " + issues.front().message;
  }
  if (state.assignment.has_value() && !state.assignment->covers(state.func)) {
    return "assignment does not cover every virtual register";
  }
  return "";
}

PipelineRunResult PassManager::run(const ir::Function& input,
                                   const std::string& spec) const {
  SpecError parse_error;
  const auto passes = parse_pipeline_spec(spec, &parse_error);
  if (!passes.has_value()) {
    PipelineRunResult result;
    result.state = PipelineState(input);
    result.error = "spec element #" + std::to_string(parse_error.index + 1) +
                   ": " + parse_error.message;
    return result;
  }
  return run(input, *passes);
}

PipelineRunResult PassManager::run(const ir::Function& input,
                                   const std::vector<PassSpec>& specs) const {
  using Clock = std::chrono::steady_clock;

  PipelineRunResult result;
  result.state = PipelineState(input);

  // Instantiate everything first: a typo in pass 7 must not leave a
  // half-transformed function behind.
  std::vector<std::unique_ptr<Pass>> passes;
  passes.reserve(specs.size());
  for (const PassSpec& spec : specs) {
    std::string error;
    auto pass = registry_->create(spec, &error);
    if (pass == nullptr) {
      result.error = error;
      return result;
    }
    passes.push_back(std::move(pass));
  }

  if (checkpoints_) {
    if (std::string issue = verify_checkpoint(result.state); !issue.empty()) {
      result.error = "verifier checkpoint on pipeline input: " + issue;
      return result;
    }
  }

  const auto pipeline_start = Clock::now();
  for (const auto& pass : passes) {
    const auto pass_start = Clock::now();
    const PassOutcome outcome = pass->run(result.state, ctx_);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - pass_start).count();
    if (!outcome.ok) {
      result.error = "pass '" + pass->name() + "': " + outcome.error;
      return result;
    }

    PassRunStats stats;
    stats.name = pass->name();
    stats.seconds = seconds;
    stats.summary = outcome.summary;
    stats.instructions_after = result.state.func.instruction_count();
    stats.vregs_after = result.state.func.reg_count();
    result.pass_stats.push_back(std::move(stats));

    if (checkpoints_) {
      if (std::string issue = verify_checkpoint(result.state); !issue.empty()) {
        result.error =
            "verifier checkpoint after pass '" + pass->name() + "': " + issue;
        return result;
      }
    }
  }
  result.total_seconds =
      std::chrono::duration<double>(Clock::now() - pipeline_start).count();
  result.ok = true;
  return result;
}

TextTable PassManager::stats_table(const PipelineRunResult& result,
                                   const std::string& title) {
  TextTable table(title);
  table.set_header({"#", "pass", "ms", "instrs", "vregs", "summary"});
  for (std::size_t i = 0; i < result.pass_stats.size(); ++i) {
    const PassRunStats& s = result.pass_stats[i];
    table.add_row({std::to_string(i + 1), s.name,
                   TextTable::num(s.seconds * 1e3, 3),
                   std::to_string(s.instructions_after),
                   std::to_string(s.vregs_after), s.summary});
  }
  return table;
}

}  // namespace tadfa::pipeline
