// Builtin passes: thin adapters from the free functions in src/opt and
// the allocators in src/regalloc onto the uniform Pass interface.
//
// Vocabulary (the spec string grammar is in pipeline/spec.hpp):
//
//   cse                       local common-subexpression elimination
//   dce                       dead code elimination
//   coalesce                  copy coalescing
//   promote[=min_loads]       register promotion of memory scalars
//   alloc=kind[:policy[:seed]] register allocation (linear|coloring x any
//                             regalloc policy; heat-guided when a
//                             thermal-dfa result is available)
//   thermal-dfa               post-RA thermal DFA + critical-var ranking
//   split-hot[=n]             split the n most critical live ranges
//   spill-critical[=n]        spill the n most critical variables
//   reassign                  thermally-guided coolest-first re-allocation
//   schedule                  thermal-aware list scheduling
//   nops[=per_site[:threshold_k]]  cooling NOPs after hot instructions
//   bank-gating[=temp_k]      plan power-gating of empty banks
//   verify                    explicit structural + coverage checkpoint
//
// Every pass pulls derived analyses through state.analyses (the
// AnalysisManager) and reports what it kept valid via
// PassOutcome::preserved. The rule of thumb: nothing in src/opt touches
// block structure, so structure-class analyses (Cfg, Dominators,
// LoopInfo, block frequencies) survive every rewrite; liveness-class
// analyses survive only passes that did not touch the instruction stream.
#include <algorithm>
#include <memory>
#include <sstream>

#include "core/critical.hpp"
#include "opt/bank_gating.hpp"
#include "opt/coalesce.hpp"
#include "opt/cse.hpp"
#include "opt/dce.hpp"
#include "opt/nop_insert.hpp"
#include "opt/promote.hpp"
#include "opt/reassign.hpp"
#include "opt/schedule.hpp"
#include "opt/spill_critical.hpp"
#include "opt/split.hpp"
#include "pipeline/registry.hpp"
#include "regalloc/allocator.hpp"
#include "regalloc/verify.hpp"
#include "support/string_utils.hpp"

namespace tadfa::pipeline {

namespace {

std::unique_ptr<Pass> fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return nullptr;
}

bool parse_count(const std::string& s, std::size_t& out) {
  long long v = 0;
  if (!parse_int(s, v) || v < 1) {
    return false;
  }
  out = static_cast<std::size_t>(v);
  return true;
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(4);
  os << v;
  return os.str();
}

// --- Pure IR rewrites --------------------------------------------------------

/// Wraps a copy-based rewrite (cse, promote): on change, the structure
/// survives but liveness and every registered artifact is stale — exactly
/// the old invalidate_derived(), minus the structure-class analyses.
template <typename RunFn>
std::unique_ptr<Pass> make_rewrite_pass(const std::string& name, RunFn fn) {
  return std::make_unique<LambdaPass>(
      name, [fn](PipelineState& state, const PipelineContext&) {
        auto [func, count, summary] = fn(state.func);
        if (count == 0) {
          return PassOutcome::unchanged(summary);
        }
        state.func = std::move(func);
        return PassOutcome::success(summary).preserve(
            PreservedAnalyses::structure());
      });
}

// --- alloc=kind[:policy[:seed]] ---------------------------------------------

class AllocPass final : public Pass {
 public:
  AllocPass(std::string kind, std::string policy,
            std::optional<std::uint64_t> seed)
      : kind_(std::move(kind)), policy_(std::move(policy)), seed_(seed) {}

  std::string name() const override {
    return "alloc=" + kind_ + ":" + policy_;
  }

  PassOutcome run(PipelineState& state, const PipelineContext& ctx) override {
    const std::uint64_t seed = seed_.value_or(ctx.policy_seed);
    auto policy = regalloc::make_policy(policy_, seed);
    if (policy == nullptr) {
      return PassOutcome::failure("unknown policy '" + policy_ + "'");
    }
    auto allocator =
        regalloc::make_allocator(kind_, *ctx.floorplan, *policy);
    if (allocator == nullptr) {
      return PassOutcome::failure("unknown allocator '" + kind_ + "'");
    }
    const auto* dfa = state.dfa();
    const bool heat_guided = dfa != nullptr;
    if (heat_guided) {
      allocator->set_heat_scores(dfa->exit_reg_temps_k);
    }
    auto result = allocator->allocate(state.func);
    const bool rewrote_ir = result.spilled_regs > 0;
    state.func = std::move(result.func);
    state.analyses.put<machine::RegisterAssignment>(
        std::move(result.assignment));
    state.spilled_regs += result.spilled_regs;
    if (rewrote_ir) {
      if (auto* stale = state.analyses.result_mut<core::ThermalDfaResult>()) {
        // Spill rewriting shifted instruction indices: the exit
        // temperatures stay useful guidance, the per-instruction states
        // do not (same contract as split-hot / spill-critical).
        stale->per_instruction.clear();
      }
    }

    std::ostringstream summary;
    summary << kind_ << "/" << policy_ << " rounds=" << result.rounds
            << " spilled=" << result.spilled_regs
            << (heat_guided ? " heat-guided" : "");
    // The DFA's exit temperatures and the ranking stay useful guidance
    // across re-allocation (the gating plan does not — it is keyed to the
    // replaced assignment). Spill-free allocation leaves the IR byte
    // identical, so liveness survives too.
    PreservedAnalyses preserved = PreservedAnalyses::structure();
    preserved.preserve<core::ThermalDfaResult>().preserve<CriticalRanking>();
    if (!rewrote_ir) {
      preserved.preserve<dataflow::Liveness>()
          .preserve<dataflow::LiveIntervals>()
          .preserve<dataflow::InterferenceGraph>();
    }
    return PassOutcome::success(summary.str()).preserve(preserved);
  }

 private:
  std::string kind_;
  std::string policy_;
  std::optional<std::uint64_t> seed_;
};

std::unique_ptr<Pass> make_alloc_pass(const PassSpec& spec,
                                      std::string* error) {
  if (spec.args.empty() || spec.args.size() > 3) {
    return fail(error, "alloc takes kind[:policy[:seed]]");
  }
  const std::string& kind = spec.args[0];
  const auto kinds = regalloc::all_allocator_kinds();
  if (std::find(kinds.begin(), kinds.end(), kind) == kinds.end()) {
    return fail(error, "unknown allocator '" + kind + "'");
  }
  const std::string policy =
      spec.args.size() > 1 ? spec.args[1] : "first_free";
  if (regalloc::make_policy(policy) == nullptr) {
    return fail(error, "unknown policy '" + policy + "'");
  }
  std::optional<std::uint64_t> seed;
  if (spec.args.size() > 2) {
    long long v = 0;
    if (!parse_int(spec.args[2], v) || v < 0) {
      return fail(error, "bad alloc seed '" + spec.args[2] + "'");
    }
    seed = static_cast<std::uint64_t>(v);
  }
  return std::make_unique<AllocPass>(kind, policy, seed);
}

// --- thermal-dfa -------------------------------------------------------------

PassOutcome run_thermal_dfa(PipelineState& state, const PipelineContext& ctx) {
  if (!state.has_assignment()) {
    return PassOutcome::failure(
        "thermal-dfa requires an assignment (run an alloc pass first)");
  }
  // Always recompute: a cached result may have survived IR reshapes as
  // exit-temperature guidance with its per-instruction states cleared.
  state.analyses.invalidate<core::ThermalDfaResult>();
  const core::ThermalDfaResult& dfa =
      state.analyses.get<core::ThermalDfaResult>(state.func, ctx);
  const core::ExactAssignmentModel model(state.func, *ctx.floorplan,
                                         *state.assignment());
  CriticalRanking ranking;
  ranking.vars = core::rank_critical_variables(
      state.func, model, dfa, *ctx.grid, ctx.timing,
      ctx.dfa_config.trip_count_guess, state.analyses);

  std::ostringstream summary;
  summary << dfa.iterations << " iters, "
          << (dfa.converged ? "converged" : "NOT converged")
          << ", predicted peak " << fmt(dfa.exit_stats.peak_k - 273.15)
          << " degC, critical:";
  for (std::size_t i = 0; i < std::min<std::size_t>(3, ranking.vars.size());
       ++i) {
    summary << " %" << ranking.vars[i].vreg;
  }
  state.analyses.put<CriticalRanking>(std::move(ranking));
  return PassOutcome::unchanged(summary.str());
}

// --- split-hot[=n] / spill-critical[=n] -------------------------------------

/// The PreservedAnalyses both critical-variable transforms share: block
/// structure and the (deliberately approximate) exit-temperature guidance
/// survive; the assignment, gating plan, and liveness-class analyses die.
PreservedAnalyses critical_transform_preserved() {
  PreservedAnalyses preserved = PreservedAnalyses::structure();
  preserved.preserve<core::ThermalDfaResult>().preserve<CriticalRanking>();
  return preserved;
}

PassOutcome run_split_hot(PipelineState& state, std::size_t count) {
  auto* ranking = state.analyses.result_mut<CriticalRanking>();
  if (ranking == nullptr || ranking->vars.empty()) {
    return PassOutcome::failure(
        "split-hot requires a critical-variable ranking (run thermal-dfa "
        "first)");
  }
  const std::size_t n = std::min(count, ranking->vars.size());
  std::vector<ir::Reg> regs;
  std::ostringstream summary;
  summary << "split";
  for (std::size_t i = 0; i < n; ++i) {
    regs.push_back(ranking->vars[i].vreg);
    summary << " %" << ranking->vars[i].vreg;
  }
  const auto result = opt::split_live_ranges(state.func, regs, state.analyses);
  // The split variables are handled; a later spill-critical starts at the
  // next-most-critical survivor.
  ranking->vars.erase(ranking->vars.begin(),
                      ranking->vars.begin() + static_cast<std::ptrdiff_t>(n));
  if (auto* dfa = state.analyses.result_mut<core::ThermalDfaResult>()) {
    // The per-register exit temperatures stay valid guidance for the next
    // allocation, but the per-instruction states index the pre-split
    // function — drop them so `nops` cannot consume stale refs.
    dfa->per_instruction.clear();
  }
  summary << " (copies=" << result.copies.size()
          << ", uses=" << result.rewritten_uses << ")";
  return PassOutcome::success(summary.str())
      .preserve(critical_transform_preserved());
}

PassOutcome run_spill_critical(PipelineState& state, std::size_t count) {
  auto* ranking = state.analyses.result_mut<CriticalRanking>();
  if (ranking == nullptr || ranking->vars.empty()) {
    return PassOutcome::failure(
        "spill-critical requires a critical-variable ranking (run "
        "thermal-dfa first)");
  }
  const auto result =
      opt::spill_critical_variables(state.func, ranking->vars, count);
  state.func = result.func;
  std::erase_if(ranking->vars, [&](const core::CriticalVariable& v) {
    return std::find(result.spilled.begin(), result.spilled.end(), v.vreg) !=
           result.spilled.end();
  });
  if (auto* dfa = state.analyses.result_mut<core::ThermalDfaResult>()) {
    // Same rationale as split-hot: spill reloads reshape the instruction
    // stream, staling the per-instruction states but not the per-register
    // exit temperatures.
    dfa->per_instruction.clear();
  }
  std::ostringstream summary;
  summary << "spilled " << result.spilled.size() << " vars, +"
          << result.inserted_instructions << " instrs";
  return PassOutcome::success(summary.str())
      .preserve(critical_transform_preserved());
}

// --- reassign ----------------------------------------------------------------

PassOutcome run_reassign(PipelineState& state, const PipelineContext& ctx) {
  if (!state.has_assignment()) {
    return PassOutcome::failure(
        "reassign requires an assignment (run an alloc pass first)");
  }
  regalloc::AllocationResult initial;
  initial.func = state.func;
  initial.assignment = *state.assignment();
  const core::ThermalDfa dfa(*ctx.grid, *ctx.power, ctx.timing,
                             ctx.dfa_config);
  auto result = opt::thermally_reassign(state.func, initial, dfa);
  state.func = std::move(result.alloc.func);
  state.analyses.put<machine::RegisterAssignment>(
      std::move(result.alloc.assignment));
  state.spilled_regs += result.alloc.spilled_regs;
  std::ostringstream summary;
  summary << "predicted peak " << fmt(result.predicted_before.peak_k - 273.15)
          << " -> " << fmt(result.predicted_after.peak_k - 273.15) << " degC";
  // The ranking still names the hottest variables; the pre-reassign DFA
  // prediction and gating plan do not survive the new placement.
  PreservedAnalyses preserved = PreservedAnalyses::structure();
  preserved.preserve<CriticalRanking>();
  return PassOutcome::success(summary.str()).preserve(preserved);
}

// --- schedule ----------------------------------------------------------------

PassOutcome run_schedule(PipelineState& state, const PipelineContext&) {
  if (!state.has_assignment()) {
    return PassOutcome::failure(
        "schedule requires an assignment (run an alloc pass first)");
  }
  auto result = opt::thermal_schedule(state.func, *state.assignment());
  state.func = std::move(result.func);
  // Instruction positions changed: the per-instruction DFA states and the
  // ranking are stale, the assignment (keyed by vreg) is not.
  PreservedAnalyses preserved = PreservedAnalyses::structure();
  preserved.preserve<machine::RegisterAssignment>()
      .preserve<opt::BankGatingPlan>();
  return PassOutcome::success("moved " + std::to_string(result.moved))
      .preserve(preserved);
}

// --- nops[=per_site[:threshold_k]] ------------------------------------------

PassOutcome run_nops(PipelineState& state, int per_site,
                     std::optional<double> threshold_k) {
  const auto* dfa = state.dfa();
  if (dfa == nullptr || dfa->per_instruction.empty()) {
    return PassOutcome::failure(
        "nops requires a thermal-dfa result over the current function "
        "(re-run thermal-dfa after any IR-reshaping pass)");
  }
  if (!state.has_assignment()) {
    return PassOutcome::failure(
        "nops requires an assignment (run an alloc pass first)");
  }
  const double threshold =
      threshold_k.value_or(opt::default_cooling_threshold(*dfa));
  auto result =
      opt::insert_cooling_nops(state.func, *dfa, threshold, per_site);
  state.func = std::move(result.func);
  // NOPs touch no registers (assignment survives) but shift instruction
  // indices (the DFA's per-instruction refs do not).
  PreservedAnalyses preserved = PreservedAnalyses::structure();
  preserved.preserve<machine::RegisterAssignment>()
      .preserve<opt::BankGatingPlan>();
  return PassOutcome::success(
             "inserted " + std::to_string(result.nops_inserted) +
             " (threshold " + fmt(threshold - 273.15) + " degC)")
      .preserve(preserved);
}

// --- bank-gating[=temp_k] ----------------------------------------------------

PassOutcome run_bank_gating(PipelineState& state, const PipelineContext& ctx,
                            std::optional<double> temp_k) {
  if (!state.has_assignment()) {
    return PassOutcome::failure(
        "bank-gating requires an assignment (run an alloc pass first)");
  }
  const auto* dfa = state.dfa();
  const double temp = temp_k.value_or(
      dfa != nullptr ? dfa->exit_stats.mean_k
                     : ctx.floorplan->config().tech.substrate_temp_k);
  opt::BankGatingPlan plan =
      opt::plan_bank_gating(*ctx.floorplan, *state.assignment(), temp);
  std::ostringstream summary;
  summary << "gated " << plan.gated_banks << " banks, "
          << fmt(plan.leakage_saved_w * 1e3) << " mW leakage saved";
  state.analyses.put<opt::BankGatingPlan>(std::move(plan));
  return PassOutcome::unchanged(summary.str());
}

// --- verify ------------------------------------------------------------------

PassOutcome run_verify(PipelineState& state, const PipelineContext&) {
  if (std::string issue = verify_checkpoint(state); !issue.empty()) {
    return PassOutcome::failure(issue);
  }
  if (state.has_assignment()) {
    // Full legality (interference) check, sharing the cached graph.
    const auto issues = regalloc::verify_allocation(
        state.func, *state.assignment(), state.analyses);
    if (!issues.empty()) {
      return PassOutcome::failure(issues.front().message);
    }
  }
  return PassOutcome::unchanged("ok");
}

}  // namespace

void register_builtin_passes(PassRegistry& registry) {
  registry.register_pass(
      "cse", "local common-subexpression elimination",
      [](const PassSpec& spec, std::string* error) -> std::unique_ptr<Pass> {
        if (!spec.args.empty()) {
          return fail(error, "cse takes no arguments");
        }
        return make_rewrite_pass("cse", [](const ir::Function& func) {
          auto r = opt::eliminate_common_subexpressions(func);
          return std::tuple{std::move(r.func), r.replaced,
                            "replaced " + std::to_string(r.replaced)};
        });
      });

  registry.register_pass(
      "dce", "dead code elimination",
      [](const PassSpec& spec, std::string* error) -> std::unique_ptr<Pass> {
        if (!spec.args.empty()) {
          return fail(error, "dce takes no arguments");
        }
        return std::make_unique<LambdaPass>(
            "dce", [](PipelineState& state, const PipelineContext&) {
              const std::size_t removed =
                  opt::eliminate_dead_code(state.func, state.analyses);
              const std::string summary =
                  "removed " + std::to_string(removed);
              if (removed == 0) {
                return PassOutcome::unchanged(summary);
              }
              // The in-place DCE invalidated liveness through the manager
              // as it rewrote; the final sweep's analyses are fresh and
              // survive on their own.
              return PassOutcome::success(summary).preserve(
                  PreservedAnalyses::structure());
            });
      });

  registry.register_pass(
      "coalesce", "copy coalescing",
      [](const PassSpec& spec, std::string* error) -> std::unique_ptr<Pass> {
        if (!spec.args.empty()) {
          return fail(error, "coalesce takes no arguments");
        }
        return std::make_unique<LambdaPass>(
            "coalesce", [](PipelineState& state, const PipelineContext&) {
              const std::size_t merged =
                  opt::coalesce_copies(state.func, state.analyses);
              const std::string summary =
                  "coalesced " + std::to_string(merged);
              if (merged == 0) {
                return PassOutcome::unchanged(summary);
              }
              return PassOutcome::success(summary).preserve(
                  PreservedAnalyses::structure());
            });
      });

  registry.register_pass(
      "promote", "promote[=min_loads]: memory scalars into registers",
      [](const PassSpec& spec, std::string* error) -> std::unique_ptr<Pass> {
        std::size_t min_loads = 2;
        if (spec.args.size() > 1 ||
            (spec.args.size() == 1 && !parse_count(spec.args[0], min_loads))) {
          return fail(error, "promote takes an optional positive min_loads");
        }
        return make_rewrite_pass(
            spec.text(), [min_loads](const ir::Function& func) {
              auto r = opt::promote_memory_scalars(func, min_loads);
              return std::tuple{
                  std::move(r.func),
                  r.promoted_addresses.size() + r.loads_replaced,
                  "promoted " + std::to_string(r.promoted_addresses.size()) +
                      " addrs, " + std::to_string(r.loads_replaced) +
                      " loads"};
            });
      });

  registry.register_pass(
      "alloc",
      "alloc=kind[:policy[:seed]]: register allocation "
      "(linear|coloring; any regalloc policy)",
      make_alloc_pass);

  registry.register_pass(
      "thermal-dfa",
      "post-RA thermal data-flow analysis + critical-variable ranking",
      [](const PassSpec& spec, std::string* error) -> std::unique_ptr<Pass> {
        if (!spec.args.empty()) {
          return fail(error, "thermal-dfa takes no arguments");
        }
        return std::make_unique<LambdaPass>("thermal-dfa", run_thermal_dfa);
      });

  registry.register_pass(
      "split-hot", "split-hot[=n]: split the n most critical live ranges",
      [](const PassSpec& spec, std::string* error) -> std::unique_ptr<Pass> {
        std::size_t count = 1;
        if (spec.args.size() > 1 ||
            (spec.args.size() == 1 && !parse_count(spec.args[0], count))) {
          return fail(error, "split-hot takes an optional positive count");
        }
        return std::make_unique<LambdaPass>(
            spec.text(), [count](PipelineState& state, const PipelineContext&) {
              return run_split_hot(state, count);
            });
      });

  registry.register_pass(
      "spill-critical",
      "spill-critical[=n]: spill the n most critical variables",
      [](const PassSpec& spec, std::string* error) -> std::unique_ptr<Pass> {
        std::size_t count = 1;
        if (spec.args.size() > 1 ||
            (spec.args.size() == 1 && !parse_count(spec.args[0], count))) {
          return fail(error,
                      "spill-critical takes an optional positive count");
        }
        return std::make_unique<LambdaPass>(
            spec.text(), [count](PipelineState& state, const PipelineContext&) {
              return run_spill_critical(state, count);
            });
      });

  registry.register_pass(
      "reassign", "thermally-guided coolest-first re-allocation",
      [](const PassSpec& spec, std::string* error) -> std::unique_ptr<Pass> {
        if (!spec.args.empty()) {
          return fail(error, "reassign takes no arguments");
        }
        return std::make_unique<LambdaPass>("reassign", run_reassign);
      });

  registry.register_pass(
      "schedule", "thermal-aware list scheduling",
      [](const PassSpec& spec, std::string* error) -> std::unique_ptr<Pass> {
        if (!spec.args.empty()) {
          return fail(error, "schedule takes no arguments");
        }
        return std::make_unique<LambdaPass>("schedule", run_schedule);
      });

  registry.register_pass(
      "nops",
      "nops[=per_site[:threshold_k]]: cooling NOPs after hot instructions",
      [](const PassSpec& spec, std::string* error) -> std::unique_ptr<Pass> {
        int per_site = 4;
        std::optional<double> threshold_k;
        if (spec.args.size() > 2) {
          return fail(error, "nops takes per_site[:threshold_k]");
        }
        if (!spec.args.empty()) {
          std::size_t n = 0;
          if (!parse_count(spec.args[0], n)) {
            return fail(error, "bad nops per_site '" + spec.args[0] + "'");
          }
          per_site = static_cast<int>(n);
        }
        if (spec.args.size() == 2) {
          double t = 0;
          if (!parse_double(spec.args[1], t)) {
            return fail(error, "bad nops threshold '" + spec.args[1] + "'");
          }
          threshold_k = t;
        }
        return std::make_unique<LambdaPass>(
            spec.text(),
            [per_site, threshold_k](PipelineState& state,
                                    const PipelineContext&) {
              return run_nops(state, per_site, threshold_k);
            });
      });

  registry.register_pass(
      "bank-gating", "bank-gating[=temp_k]: plan power-gating of empty banks",
      [](const PassSpec& spec, std::string* error) -> std::unique_ptr<Pass> {
        std::optional<double> temp_k;
        if (spec.args.size() > 1) {
          return fail(error, "bank-gating takes an optional temp_k");
        }
        if (spec.args.size() == 1) {
          double t = 0;
          if (!parse_double(spec.args[0], t)) {
            return fail(error,
                        "bad bank-gating temp '" + spec.args[0] + "'");
          }
          temp_k = t;
        }
        return std::make_unique<LambdaPass>(
            spec.text(),
            [temp_k](PipelineState& state, const PipelineContext& ctx) {
              return run_bank_gating(state, ctx, temp_k);
            });
      });

  registry.register_pass(
      "verify", "explicit structural + assignment-legality checkpoint",
      [](const PassSpec& spec, std::string* error) -> std::unique_ptr<Pass> {
        if (!spec.args.empty()) {
          return fail(error, "verify takes no arguments");
        }
        return std::make_unique<LambdaPass>("verify", run_verify);
      });
}

}  // namespace tadfa::pipeline
