// Compact pipeline spec strings.
//
// A pipeline is described by a comma-separated list of pass invocations:
//
//   "cse,dce,alloc=coloring:coolest_first,thermal-dfa,split-hot=2,schedule"
//
// Each element is `name` or `name=arg` where the argument may carry
// `:`-separated sub-arguments (their meaning is per-pass; e.g. for
// `alloc` they are allocator kind, policy name, and seed). Whitespace
// around elements is ignored. Parsing and serialization round-trip.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tadfa::pipeline {

/// One parsed element of a pipeline spec.
struct PassSpec {
  std::string name;
  /// Sub-arguments from `name=a:b:c` -> {"a", "b", "c"}; empty for bare
  /// `name`.
  std::vector<std::string> args;

  /// Canonical text, e.g. "alloc=coloring:coolest_first".
  std::string text() const;

  friend bool operator==(const PassSpec&, const PassSpec&) = default;
};

struct SpecError {
  /// 0-based index of the offending element.
  std::size_t index = 0;
  std::string message;
};

/// The one user-facing rendering of a SpecError ("spec element #N: ..."),
/// shared by the single-function and module compile paths.
std::string format_spec_error(const SpecError& error);

/// Parses a spec string. On failure returns nullopt and fills `error`.
std::optional<std::vector<PassSpec>> parse_pipeline_spec(
    const std::string& spec, SpecError* error = nullptr);

/// Canonical string for a parsed spec (inverse of parse_pipeline_spec).
std::string spec_to_string(const std::vector<PassSpec>& passes);

/// Canonical digest of the first `k` passes of a pipeline (`k` is
/// clamped to passes.size()). Built over each pass's canonical text(),
/// so any two spellings that parse to the same passes — extra
/// whitespace, the whole spec re-serialized — share a digest. This is
/// the spec half of a stage-entry cache key (ResultCache): a pipeline
/// that extends a previously compiled spec shares every prefix digest
/// with it and can restore the longest cached prefix.
std::uint64_t spec_prefix_digest(const std::vector<PassSpec>& passes,
                                 std::size_t k);

}  // namespace tadfa::pipeline
