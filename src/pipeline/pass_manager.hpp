// PassManager: runs a pipeline described by a compact spec string.
//
// Responsibilities:
//   * parse the spec and instantiate every pass up-front (an unknown pass
//     or bad argument rejects the whole pipeline before anything runs);
//   * thread one PipelineState (function + AnalysisManager) through the
//     passes;
//   * time each pass and collect its statistics line, marking passes that
//     made no change;
//   * apply each pass's PreservedAnalyses so only what the pass actually
//     clobbered is dropped from the analysis cache;
//   * run an IR-verifier (+ assignment coverage) checkpoint after passes
//     that changed something, attributing any corruption to the pass that
//     produced it — and audit preservation claims against cheap IR
//     fingerprints (a pass that claims "no change" or "liveness
//     preserved" while mutating the IR fails the pipeline).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "pipeline/registry.hpp"
#include "support/table.hpp"

namespace tadfa::pipeline {

/// Timing and statistics for one executed pass.
struct PassRunStats {
  /// Canonical pass name (options included).
  std::string name;
  double seconds = 0;
  /// The pass's own statistic line ("removed 4", "12 iters, converged...").
  std::string summary;
  /// False when the pass reported no state change (checkpoint skipped).
  bool changed = true;
  std::size_t instructions_after = 0;
  std::uint32_t vregs_after = 0;

  friend bool operator==(const PassRunStats&, const PassRunStats&) = default;
};

/// Observers of pass boundaries during a run. When both callbacks are
/// set, every boundary `index` (0-based, meaning "after passes[index]
/// ran and verified") for which want(index) answers true first has the
/// live state normalized (normalize_state_at_boundary — this is part of
/// the contract: the cold run's state after a snapshot boundary must
/// equal what restoring that snapshot reconstructs) and then handed to
/// sink as a PipelineSnapshot together with everything a resumed run
/// needs to replay reporting byte-identically: the stats of the passes
/// done so far, the analysis counters at the boundary, and the wall
/// clock attributable to the prefix.
struct SnapshotHooks {
  std::function<bool(std::size_t index)> want;
  std::function<void(
      std::size_t passes_done, const PipelineSnapshot& snapshot,
      const std::vector<PassRunStats>& pass_stats,
      const std::vector<AnalysisManager::AnalysisStats>& analysis_stats,
      double prefix_seconds)>
      sink;

  bool active() const {
    return static_cast<bool>(want) && static_cast<bool>(sink);
  }
};

/// A restored snapshot ready to continue at pass index `passes_done`,
/// produced by ResultCache::lookup_longest_stage (or hand-built in
/// tests) and consumed by PassManager::resume.
struct ResumeState {
  explicit ResumeState(PipelineState restored) : state(std::move(restored)) {}

  PipelineState state;
  std::size_t passes_done = 0;
  /// Stats of the prefix passes, replayed verbatim into the resumed
  /// run's result so its reporting matches a cold run's.
  std::vector<PassRunStats> pass_stats;
  /// Wall clock the producing run spent on the prefix; the resumed
  /// run's total_seconds starts from here.
  double prefix_seconds = 0;
};

struct PipelineRunResult {
  /// A result always wraps the compiled (or partially compiled) function;
  /// PipelineState has no default constructor, so neither does this.
  explicit PipelineRunResult(ir::Function input)
      : state(std::move(input)) {}
  /// Wraps a restored mid-pipeline state (PassManager::resume).
  explicit PipelineRunResult(PipelineState restored)
      : state(std::move(restored)) {}

  bool ok = false;
  /// On failure: which stage failed (spec parse, pass construction, pass
  /// execution, or a verifier checkpoint) and why.
  std::string error;
  /// Final state; on failure, the state as of the last completed pass.
  /// state.analyses carries the cumulative analysis-cache statistics
  /// (`tadfa --analysis-stats`).
  PipelineState state;
  /// One entry per pass that ran to completion.
  std::vector<PassRunStats> pass_stats;
  double total_seconds = 0;
};

class PassManager {
 public:
  explicit PassManager(PipelineContext ctx,
                       const PassRegistry& registry = default_registry())
      : ctx_(ctx), registry_(&registry) {}

  /// Toggles the verifier checkpoint between passes (default on).
  void set_checkpoints(bool enabled) { checkpoints_ = enabled; }

  /// Toggles the analysis cache (default on). Off reproduces the old
  /// rebuild-every-pass behavior — for A/B measurement only.
  void set_analysis_caching(bool enabled) { analysis_caching_ = enabled; }

  bool checkpoints() const { return checkpoints_; }
  bool analysis_caching() const { return analysis_caching_; }

  PipelineRunResult run(const ir::Function& input,
                        const std::string& spec) const;
  PipelineRunResult run(const ir::Function& input,
                        const std::vector<PassSpec>& passes,
                        const SnapshotHooks& hooks = {}) const;

  /// Continues a pipeline from a restored pass-boundary snapshot:
  /// passes[0 .. resume.passes_done) are *instantiated but not run* (a
  /// resumed pipeline must reject exactly the specs a cold one
  /// rejects), the restored state is verifier-checkpointed, and the
  /// remaining passes run normally — including any snapshot boundaries
  /// at or past the resume point. The result carries the prefix's
  /// replayed pass stats and prefix_seconds, so a successful resume is
  /// byte-identical (timing aside) to the cold run of the full spec.
  PipelineRunResult resume(ResumeState resume,
                           const std::vector<PassSpec>& passes,
                           const SnapshotHooks& hooks = {}) const;

  /// Instantiates every pass without running anything; returns the first
  /// construction error, or "" when the pipeline is well-formed. The
  /// driver uses this to reject a bad pipeline before compiling any of a
  /// module's functions.
  std::string validate(const std::vector<PassSpec>& passes) const;

  /// Per-pass timing/statistics table for reporting drivers.
  static TextTable stats_table(const PipelineRunResult& result,
                               const std::string& title = "pipeline");

  const PipelineContext& context() const { return ctx_; }

 private:
  /// Shared tail of run() and resume(): `result` arrives holding the
  /// starting state (fresh input or restored snapshot), the prefix's
  /// pass stats, and the prefix wall clock in total_seconds; passes
  /// [start, specs.size()) then run. Mutates the caller's local in
  /// place — taking (or returning) the result by value would move the
  /// PipelineState, which sheds computed analyses and bumps their
  /// invalidation counters.
  void run_impl(PipelineRunResult& result, std::size_t start,
                const std::vector<PassSpec>& specs,
                const SnapshotHooks& hooks) const;

  PipelineContext ctx_;
  const PassRegistry* registry_;
  bool checkpoints_ = true;
  bool analysis_caching_ = true;
};

}  // namespace tadfa::pipeline
