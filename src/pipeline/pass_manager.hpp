// PassManager: runs a pipeline described by a compact spec string.
//
// Responsibilities:
//   * parse the spec and instantiate every pass up-front (an unknown pass
//     or bad argument rejects the whole pipeline before anything runs);
//   * thread one PipelineState (function + AnalysisManager) through the
//     passes;
//   * time each pass and collect its statistics line, marking passes that
//     made no change;
//   * apply each pass's PreservedAnalyses so only what the pass actually
//     clobbered is dropped from the analysis cache;
//   * run an IR-verifier (+ assignment coverage) checkpoint after passes
//     that changed something, attributing any corruption to the pass that
//     produced it — and audit preservation claims against cheap IR
//     fingerprints (a pass that claims "no change" or "liveness
//     preserved" while mutating the IR fails the pipeline).
#pragma once

#include <string>
#include <vector>

#include "pipeline/registry.hpp"
#include "support/table.hpp"

namespace tadfa::pipeline {

/// Timing and statistics for one executed pass.
struct PassRunStats {
  /// Canonical pass name (options included).
  std::string name;
  double seconds = 0;
  /// The pass's own statistic line ("removed 4", "12 iters, converged...").
  std::string summary;
  /// False when the pass reported no state change (checkpoint skipped).
  bool changed = true;
  std::size_t instructions_after = 0;
  std::uint32_t vregs_after = 0;

  friend bool operator==(const PassRunStats&, const PassRunStats&) = default;
};

struct PipelineRunResult {
  /// A result always wraps the compiled (or partially compiled) function;
  /// PipelineState has no default constructor, so neither does this.
  explicit PipelineRunResult(ir::Function input)
      : state(std::move(input)) {}

  bool ok = false;
  /// On failure: which stage failed (spec parse, pass construction, pass
  /// execution, or a verifier checkpoint) and why.
  std::string error;
  /// Final state; on failure, the state as of the last completed pass.
  /// state.analyses carries the cumulative analysis-cache statistics
  /// (`tadfa --analysis-stats`).
  PipelineState state;
  /// One entry per pass that ran to completion.
  std::vector<PassRunStats> pass_stats;
  double total_seconds = 0;
};

class PassManager {
 public:
  explicit PassManager(PipelineContext ctx,
                       const PassRegistry& registry = default_registry())
      : ctx_(ctx), registry_(&registry) {}

  /// Toggles the verifier checkpoint between passes (default on).
  void set_checkpoints(bool enabled) { checkpoints_ = enabled; }

  /// Toggles the analysis cache (default on). Off reproduces the old
  /// rebuild-every-pass behavior — for A/B measurement only.
  void set_analysis_caching(bool enabled) { analysis_caching_ = enabled; }

  bool checkpoints() const { return checkpoints_; }
  bool analysis_caching() const { return analysis_caching_; }

  PipelineRunResult run(const ir::Function& input,
                        const std::string& spec) const;
  PipelineRunResult run(const ir::Function& input,
                        const std::vector<PassSpec>& passes) const;

  /// Instantiates every pass without running anything; returns the first
  /// construction error, or "" when the pipeline is well-formed. The
  /// driver uses this to reject a bad pipeline before compiling any of a
  /// module's functions.
  std::string validate(const std::vector<PassSpec>& passes) const;

  /// Per-pass timing/statistics table for reporting drivers.
  static TextTable stats_table(const PipelineRunResult& result,
                               const std::string& title = "pipeline");

  const PipelineContext& context() const { return ctx_; }

 private:
  PipelineContext ctx_;
  const PassRegistry* registry_;
  bool checkpoints_ = true;
  bool analysis_caching_ = true;
};

}  // namespace tadfa::pipeline
