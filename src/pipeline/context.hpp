// The compilation environment threaded through every pass and analysis.
//
// Split out of state.hpp so pipeline/analysis_manager.hpp (which the
// thermal-DFA analysis trait needs) can name PipelineContext without
// pulling in PipelineState.
#pragma once

#include <cstdint>

#include "core/thermal_dfa.hpp"
#include "machine/floorplan.hpp"
#include "machine/machine_config.hpp"
#include "machine/timing.hpp"
#include "power/model.hpp"
#include "thermal/grid.hpp"

namespace tadfa::pipeline {

/// Everything that outlives a single run. Non-owning: the rig objects
/// must outlive the PassManager.
struct PipelineContext {
  const machine::Floorplan* floorplan = nullptr;
  const thermal::ThermalGrid* grid = nullptr;
  const power::PowerModel* power = nullptr;
  machine::TimingModel timing;
  core::ThermalDfaConfig dfa_config;
  /// Seed handed to stochastic assignment policies ("random").
  std::uint64_t policy_seed = 42;
  /// The named machine config the rig objects were built from, when the
  /// caller used one (nullptr for hand-assembled contexts). Cache keys
  /// never read this — they fold the rig objects' own config_digest()s —
  /// it only labels metrics and tells a server which named machine its
  /// base context represents.
  const machine::MachineConfig* machine = nullptr;
};

}  // namespace tadfa::pipeline
