// The compilation environment threaded through every pass and analysis.
//
// Split out of state.hpp so pipeline/analysis_manager.hpp (which the
// thermal-DFA analysis trait needs) can name PipelineContext without
// pulling in PipelineState.
#pragma once

#include <cstdint>

#include "core/thermal_dfa.hpp"
#include "machine/floorplan.hpp"
#include "machine/timing.hpp"
#include "power/model.hpp"
#include "thermal/grid.hpp"

namespace tadfa::pipeline {

/// Everything that outlives a single run. Non-owning: the rig objects
/// must outlive the PassManager.
struct PipelineContext {
  const machine::Floorplan* floorplan = nullptr;
  const thermal::ThermalGrid* grid = nullptr;
  const power::PowerModel* power = nullptr;
  machine::TimingModel timing;
  core::ThermalDfaConfig dfa_config;
  /// Seed handed to stochastic assignment policies ("random").
  std::uint64_t policy_seed = 42;
};

}  // namespace tadfa::pipeline
