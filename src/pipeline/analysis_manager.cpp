#include "pipeline/analysis_manager.hpp"

#include "core/access_model.hpp"
#include "support/assert.hpp"

namespace tadfa::pipeline {

PreservedAnalyses PreservedAnalyses::structure() {
  PreservedAnalyses p;
  p.preserve<dataflow::Cfg>();
  p.preserve<dataflow::Dominators>();
  p.preserve<dataflow::LoopInfo>();
  p.preserve<BlockFrequencies>();
  return p;
}

void AnalysisManager::bind(const ir::Function* func) {
  if (bound_ == func) {
    return;
  }
  if (bound_ != nullptr) {
    invalidate_all();
  }
  bound_ = func;
}

void AnalysisManager::note_dependency(AnalysisKey key) {
  if (build_stack_.empty()) {
    return;
  }
  const AnalysisKey dependent = build_stack_.back();
  auto& fwd = deps_[dependent];
  if (std::find(fwd.begin(), fwd.end(), key) == fwd.end()) {
    fwd.push_back(key);
  }
  auto& rev = dependents_[key];
  if (std::find(rev.begin(), rev.end(), dependent) == rev.end()) {
    rev.push_back(dependent);
  }
}

AnalysisManager::Entry* AnalysisManager::find(AnalysisKey key) {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

const AnalysisManager::Entry* AnalysisManager::find(AnalysisKey key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

const void* AnalysisManager::store(AnalysisKey key, const char* name,
                                   std::shared_ptr<void> value,
                                   bool registered) {
  TADFA_ASSERT(value != nullptr);
  Entry& entry = entries_[key];
  if (entry.value != nullptr && !caching_) {
    // Keep the replaced object alive: the caller that triggered this
    // recomputation may still hold a reference to it.
    retired_.push_back(std::move(entry.value));
  }
  entry.value = std::move(value);
  entry.name = name;
  entry.registered = registered;
  fresh_.insert(key);
  return entry.value.get();
}

AnalysisManager::AnalysisStats& AnalysisManager::stat(AnalysisKey key,
                                                      const char* name) {
  AnalysisStats& s = stats_[key];
  if (s.name.empty()) {
    s.name = name;
  }
  return s;
}

void AnalysisManager::erase_entry(AnalysisKey key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return;
  }
  ++stat(key, it->second.name).invalidations;
  entries_.erase(it);
  fresh_.erase(key);
}

void AnalysisManager::invalidate_key(AnalysisKey key) {
  erase_entry(key);
  // The dependency graph is a DAG (edges are recorded while analyses are
  // being built), so the walk terminates; edges outlive their entries on
  // purpose — a re-registered analysis keeps its old dependents, which
  // only ever over-invalidates.
  auto it = dependents_.find(key);
  if (it == dependents_.end()) {
    return;
  }
  const std::vector<AnalysisKey> downstream = it->second;
  for (AnalysisKey dependent : downstream) {
    if (entries_.count(dependent) != 0) {
      invalidate_key(dependent);
    }
  }
}

void AnalysisManager::invalidate_all() {
  for (auto& [key, entry] : entries_) {
    ++stat(key, entry.name).invalidations;
  }
  entries_.clear();
  deps_.clear();
  dependents_.clear();
  fresh_.clear();
  retired_.clear();
  TADFA_ASSERT_MSG(build_stack_.empty(),
                   "analysis cache cleared mid-construction");
}

void AnalysisManager::keep_only(const PreservedAnalyses& preserved) {
  if (preserved.preserves_all()) {
    return;
  }
  // Roots: explicitly preserved entries plus everything computed or
  // registered since begin_pass() (fresh entries were produced against
  // the pass's final IR — the in-place helpers invalidate through the
  // manager before mutating, so survivors are valid by construction).
  std::vector<AnalysisKey> worklist;
  std::set<AnalysisKey> keep;
  for (const auto& [key, entry] : entries_) {
    if (preserved.preserves(key) || fresh_.count(key) != 0) {
      keep.insert(key);
      worklist.push_back(key);
    }
  }
  // Closure under dependencies: a kept analysis may hold references into
  // its inputs (Liveness points at Cfg), so those inputs survive too.
  while (!worklist.empty()) {
    const AnalysisKey key = worklist.back();
    worklist.pop_back();
    auto it = deps_.find(key);
    if (it == deps_.end()) {
      continue;
    }
    for (AnalysisKey dep : it->second) {
      if (entries_.count(dep) != 0 && keep.insert(dep).second) {
        worklist.push_back(dep);
      }
    }
  }
  std::vector<AnalysisKey> drop;
  for (const auto& [key, entry] : entries_) {
    if (keep.count(key) == 0) {
      drop.push_back(key);
    }
  }
  for (AnalysisKey key : drop) {
    erase_entry(key);
  }
}

void AnalysisManager::on_function_moved() {
  std::vector<AnalysisKey> drop;
  for (const auto& [key, entry] : entries_) {
    if (!entry.registered) {
      drop.push_back(key);
    }
  }
  for (AnalysisKey key : drop) {
    erase_entry(key);
  }
  retired_.clear();
  bound_ = nullptr;
}

void AnalysisManager::reset_computed() {
  std::vector<AnalysisKey> drop;
  for (const auto& [key, entry] : entries_) {
    if (!entry.registered) {
      drop.push_back(key);
    }
  }
  for (AnalysisKey key : drop) {
    erase_entry(key);
  }
  // A restored snapshot's manager has no recorded edges; drop ours too,
  // or keep_only()'s dependency closure could keep different survivors
  // on the cold side than on the resumed side. Safe: the remaining
  // registered artifacts are plain data built without manager deps.
  deps_.clear();
  dependents_.clear();
  retired_.clear();
  bound_ = nullptr;
  TADFA_ASSERT_MSG(build_stack_.empty(),
                   "analysis cache reset mid-construction");
}

void AnalysisManager::import_stats(const std::vector<AnalysisStats>& stats) {
  for (const AnalysisStats& s : stats) {
    AnalysisStats& merged = imported_[s.name];
    merged.name = s.name;
    merged.hits += s.hits;
    merged.misses += s.misses;
    merged.puts += s.puts;
    merged.invalidations += s.invalidations;
  }
}

std::vector<AnalysisManager::AnalysisStats> AnalysisManager::stats() const {
  // Merge live counters (keyed by AnalysisKey) with imported ones
  // (keyed by name) — a warm cache hit has only imported counters, a
  // cold run only live ones, and a mixed state sums per name.
  std::map<std::string, AnalysisStats> by_name = imported_;
  for (const auto& [key, s] : stats_) {
    AnalysisStats& merged = by_name[s.name];
    merged.name = s.name;
    merged.hits += s.hits;
    merged.misses += s.misses;
    merged.puts += s.puts;
    merged.invalidations += s.invalidations;
  }
  std::vector<AnalysisStats> out;
  out.reserve(by_name.size());
  for (const auto& [name, s] : by_name) {
    out.push_back(s);
  }
  return out;
}

std::uint64_t AnalysisManager::total_hits() const {
  std::uint64_t total = 0;
  for (const auto& [key, s] : stats_) {
    total += s.hits;
  }
  for (const auto& [name, s] : imported_) {
    total += s.hits;
  }
  return total;
}

std::uint64_t AnalysisManager::total_misses() const {
  std::uint64_t total = 0;
  for (const auto& [key, s] : stats_) {
    total += s.misses;
  }
  for (const auto& [name, s] : imported_) {
    total += s.misses;
  }
  return total;
}

TextTable AnalysisManager::stats_table(const std::string& title) const {
  TextTable table(title);
  table.set_header({"analysis", "hits", "misses", "puts", "invalidated"});
  for (const AnalysisStats& s : stats()) {
    table.add_row({s.name, std::to_string(s.hits), std::to_string(s.misses),
                   std::to_string(s.puts), std::to_string(s.invalidations)});
  }
  return table;
}

// --- Trait factories needing out-of-line definitions -------------------------

std::unique_ptr<BlockFrequencies> AnalysisTraits<BlockFrequencies>::run(
    const ir::Function& func, AnalysisManager& am, const double& trip_guess) {
  auto freq = std::make_unique<BlockFrequencies>();
  freq->counts = dataflow::estimate_block_frequencies(
      am.get<dataflow::Cfg>(func), am.get<dataflow::LoopInfo>(func),
      trip_guess);
  freq->trip_count_guess = trip_guess;
  return freq;
}

std::unique_ptr<core::ThermalDfaResult>
AnalysisTraits<core::ThermalDfaResult>::run(const ir::Function& func,
                                            AnalysisManager& am,
                                            const PipelineContext& ctx) {
  const auto* assignment = am.result<machine::RegisterAssignment>();
  TADFA_ASSERT_MSG(assignment != nullptr,
                   "thermal-dfa analysis requires a registered assignment");
  const core::ThermalDfa dfa(*ctx.grid, *ctx.power, ctx.timing,
                             ctx.dfa_config);
  return std::make_unique<core::ThermalDfaResult>(
      dfa.analyze_post_ra(func, *assignment, am));
}

const std::vector<double>& block_frequencies(AnalysisManager& am,
                                             const ir::Function& func,
                                             double trip_guess) {
  if (const auto* cached = am.result<BlockFrequencies>();
      cached != nullptr && cached->trip_count_guess != trip_guess) {
    am.invalidate<BlockFrequencies>();
  }
  return am.get<BlockFrequencies>(func, trip_guess).counts;
}

}  // namespace tadfa::pipeline
