#include "pipeline/spec.hpp"

#include <algorithm>
#include <cctype>

#include "support/serialize.hpp"
#include "support/string_utils.hpp"

namespace tadfa::pipeline {

namespace {

bool valid_name(std::string_view name) {
  if (name.empty()) {
    return false;
  }
  for (char c : name) {
    if (!(std::islower(static_cast<unsigned char>(c)) != 0 ||
          std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '-' ||
          c == '_')) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string PassSpec::text() const {
  if (args.empty()) {
    return name;
  }
  return name + "=" + join(args, ":");
}

std::optional<std::vector<PassSpec>> parse_pipeline_spec(
    const std::string& spec, SpecError* error) {
  auto fail = [&](std::size_t index,
                  std::string message) -> std::optional<std::vector<PassSpec>> {
    if (error != nullptr) {
      error->index = index;
      error->message = std::move(message);
    }
    return std::nullopt;
  };

  if (trim(spec).empty()) {
    return fail(0, "empty pipeline spec");
  }

  std::vector<PassSpec> passes;
  const std::vector<std::string> elements = split(spec, ',');
  for (std::size_t i = 0; i < elements.size(); ++i) {
    const std::string element{trim(elements[i])};
    if (element.empty()) {
      return fail(i, "empty pipeline element");
    }
    PassSpec pass;
    const std::size_t eq = element.find('=');
    if (eq == std::string::npos) {
      pass.name = element;
    } else {
      pass.name = element.substr(0, eq);
      const std::string argtext = element.substr(eq + 1);
      if (argtext.empty()) {
        return fail(i, "'" + pass.name + "=' has an empty argument");
      }
      for (const std::string& arg : split(argtext, ':')) {
        if (arg.empty()) {
          return fail(i, "'" + element + "' has an empty sub-argument");
        }
        pass.args.push_back(arg);
      }
    }
    if (!valid_name(pass.name)) {
      return fail(i, "bad pass name '" + pass.name + "'");
    }
    passes.push_back(std::move(pass));
  }
  return passes;
}

std::string format_spec_error(const SpecError& error) {
  return "spec element #" + std::to_string(error.index + 1) + ": " +
         error.message;
}

std::uint64_t spec_prefix_digest(const std::vector<PassSpec>& passes,
                                 std::size_t k) {
  k = std::min(k, passes.size());
  // Seeded independently of the cache-key hash streams; the length is
  // mixed first so a prefix of k bare names never collides with k-1
  // (string mixing is already length-prefixed between elements).
  Hasher h(0x737065632d707265ull /* "spec-pre" */);
  h.mix(static_cast<std::uint64_t>(k));
  for (std::size_t i = 0; i < k; ++i) {
    h.mix(passes[i].text());
  }
  return h.digest();
}

std::string spec_to_string(const std::vector<PassSpec>& passes) {
  std::vector<std::string> elements;
  elements.reserve(passes.size());
  for (const PassSpec& pass : passes) {
    elements.push_back(pass.text());
  }
  return join(elements, ",");
}

}  // namespace tadfa::pipeline
