#include "pipeline/dependency_graph.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace tadfa::pipeline {

namespace {

/// Seed for closure digests: "dep-cls1".
constexpr std::uint64_t kClosureSeed = 0x6465702d636c7331ull;
/// Seed for the module-slot names digest: "dep-nam1".
constexpr std::uint64_t kNamesSeed = 0x6465702d6e616d31ull;

}  // namespace

const char* to_string(InvalidationReason reason) {
  switch (reason) {
    case InvalidationReason::kUnknown:
      return "unknown";
    case InvalidationReason::kWarm:
      return "warm";
    case InvalidationReason::kNew:
      return "new";
    case InvalidationReason::kEdited:
      return "edited";
    case InvalidationReason::kDependent:
      return "dependent";
    case InvalidationReason::kGraphDegraded:
      return "graph-degraded";
  }
  return "invalid";
}

DependencyGraph DependencyGraph::build(const ir::Module& module) {
  DependencyGraph graph;
  std::map<std::string, std::uint64_t> fingerprints;
  for (const ir::Function& f : module.functions()) {
    fingerprints[f.name()] = ir::fingerprint(f);
  }
  std::map<std::string, std::set<std::string>> deps;
  for (const ir::ModuleReference& r : module.references()) {
    deps[r.from].insert(r.to);
  }

  for (const auto& [name, fp] : fingerprints) {
    DependencyNode node;
    node.name = name;
    node.fingerprint = fp;
    if (auto it = deps.find(name); it != deps.end()) {
      node.deps.assign(it->second.begin(), it->second.end());
    }
    graph.nodes_.push_back(std::move(node));
  }
  // nodes_ is sorted by construction (std::map iteration order).

  // Closure digest: BFS the reachable set over dep edges, then hash the
  // sorted (name, fingerprint) pairs. Set semantics make cycles and
  // diamond shapes canonical.
  for (DependencyNode& node : graph.nodes_) {
    std::set<std::string> reachable{node.name};
    std::deque<std::string> frontier{node.name};
    while (!frontier.empty()) {
      const std::string current = std::move(frontier.front());
      frontier.pop_front();
      if (auto it = deps.find(current); it != deps.end()) {
        for (const std::string& next : it->second) {
          if (reachable.insert(next).second) {
            frontier.push_back(next);
          }
        }
      }
    }
    Hasher h(kClosureSeed);
    for (const std::string& name : reachable) {
      h.mix(name);
      const auto it = fingerprints.find(name);
      h.mix(it != fingerprints.end() ? it->second : 0);
    }
    // Direct edges matter too: adding an edge to an unchanged function
    // changes what this node depends on even if the reachable
    // fingerprints happen to collide.
    h.mix(static_cast<std::uint64_t>(node.deps.size()));
    for (const std::string& d : node.deps) {
      h.mix(d);
    }
    node.closure_digest = h.digest();
  }
  return graph;
}

const DependencyNode* DependencyGraph::node(std::string_view name) const {
  const auto it = std::lower_bound(
      nodes_.begin(), nodes_.end(), name,
      [](const DependencyNode& n, std::string_view key) {
        return n.name < key;
      });
  if (it == nodes_.end() || it->name != name) {
    return nullptr;
  }
  return &*it;
}

std::vector<std::string> DependencyGraph::dependents_of(
    std::string_view name) const {
  // Reverse reachability by fixpoint: grow the dependent set until no
  // node outside it references a member. Quadratic in the worst case,
  // fine at module scale (dozens to hundreds of functions).
  std::set<std::string> closed{std::string(name)};
  bool changed = true;
  while (changed) {
    changed = false;
    for (const DependencyNode& n : nodes_) {
      if (closed.count(n.name) != 0) {
        continue;
      }
      for (const std::string& d : n.deps) {
        if (closed.count(d) != 0) {
          closed.insert(n.name);
          changed = true;
          break;
        }
      }
    }
  }
  closed.erase(std::string(name));
  return {closed.begin(), closed.end()};
}

std::uint64_t DependencyGraph::names_digest() const {
  Hasher h(kNamesSeed);
  for (const DependencyNode& n : nodes_) {
    h.mix(n.name);
  }
  return h.digest();
}

void DependencyGraph::serialize(ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(nodes_.size()));
  for (const DependencyNode& n : nodes_) {
    w.str(n.name);
    w.u64(n.fingerprint);
    w.u64(n.closure_digest);
    w.u32(static_cast<std::uint32_t>(n.deps.size()));
    for (const std::string& d : n.deps) {
      w.str(d);
    }
  }
}

std::optional<DependencyGraph> DependencyGraph::deserialize(ByteReader& r) {
  DependencyGraph graph;
  const std::uint32_t count = r.u32();
  // Every node costs at least 24 bytes on the wire, so a count beyond
  // remaining() is corrupt — bail before looping over garbage.
  if (!r.ok() || count > r.remaining()) {
    return std::nullopt;
  }
  graph.nodes_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    DependencyNode node;
    node.name = r.str();
    node.fingerprint = r.u64();
    node.closure_digest = r.u64();
    const std::uint32_t ndeps = r.u32();
    if (!r.ok() || ndeps > r.remaining()) {
      return std::nullopt;
    }
    node.deps.reserve(ndeps);
    for (std::uint32_t j = 0; j < ndeps; ++j) {
      node.deps.push_back(r.str());
    }
    if (!r.ok()) {
      return std::nullopt;
    }
    graph.nodes_.push_back(std::move(node));
  }
  const auto by_name = [](const DependencyNode& a, const DependencyNode& b) {
    return a.name < b.name;
  };
  if (!std::is_sorted(graph.nodes_.begin(), graph.nodes_.end(), by_name)) {
    return std::nullopt;
  }
  return graph;
}

std::vector<InvalidationDecision> diff_graphs(const DependencyGraph& before,
                                              const DependencyGraph& now) {
  // A name "changed" when its body differs between the graphs or it
  // exists in only one of them — the set BFS paths terminate on.
  const auto changed = [&](const std::string& name) {
    const DependencyNode* b = before.node(name);
    const DependencyNode* n = now.node(name);
    return b == nullptr || n == nullptr || b->fingerprint != n->fingerprint;
  };

  std::vector<InvalidationDecision> out;
  out.reserve(now.nodes().size());
  for (const DependencyNode& node : now.nodes()) {
    const DependencyNode* old = before.node(node.name);
    InvalidationDecision decision;
    if (old == nullptr) {
      decision.reason = InvalidationReason::kNew;
    } else if (old->fingerprint != node.fingerprint) {
      decision.reason = InvalidationReason::kEdited;
    } else if (old->closure_digest != node.closure_digest) {
      decision.reason = InvalidationReason::kDependent;
      // Shortest dependency path to a changed function; BFS over the
      // current graph's edges (removed deps simply have no node and
      // terminate the walk as "changed").
      std::map<std::string, std::string> parent;  // child -> how we got there
      std::deque<std::string> frontier{node.name};
      parent[node.name] = "";
      std::string hit;
      while (!frontier.empty() && hit.empty()) {
        const std::string current = std::move(frontier.front());
        frontier.pop_front();
        const DependencyNode* c = now.node(current);
        if (c == nullptr) {
          continue;
        }
        for (const std::string& next : c->deps) {
          if (parent.count(next) != 0) {
            continue;
          }
          parent[next] = current;
          if (changed(next)) {
            hit = next;
            break;
          }
          frontier.push_back(next);
        }
      }
      if (!hit.empty()) {
        std::vector<std::string> path{hit};
        for (std::string at = parent[hit]; !at.empty(); at = parent[at]) {
          path.push_back(at);
        }
        std::string via;
        for (auto it = path.rbegin(); it != path.rend(); ++it) {
          if (!via.empty()) {
            via += " -> ";
          }
          via += *it;
        }
        decision.via = std::move(via);
      }
    } else {
      decision.reason = InvalidationReason::kWarm;
    }
    out.push_back(std::move(decision));
  }
  return out;
}

}  // namespace tadfa::pipeline
