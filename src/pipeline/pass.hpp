// The uniform pass interface.
//
// A Pass is a named transformation (or analysis) over PipelineState. The
// free functions in src/opt and the allocators in src/regalloc keep their
// plain signatures — passes are thin adapters, so the underlying modules
// stay usable without the pipeline.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "pipeline/state.hpp"

namespace tadfa::pipeline {

/// Outcome of one pass execution.
struct PassOutcome {
  bool ok = true;
  /// True when the pass mutated the function or the assignment — the
  /// state the verifier checkpoint looks at. Unchanged passes are
  /// reported as "(no change)" and skip their checkpoint.
  bool changed = true;
  /// Human-readable failure reason (unmet prerequisite, bad input...).
  std::string error;
  /// One-line statistic for reporting, e.g. "replaced 4 exprs".
  std::string summary;
  /// What the pass left valid in the AnalysisManager. Defaults to none:
  /// everything not preserved here (and not freshly computed/registered
  /// during the pass) is dropped after the pass runs. Claims are audited
  /// when checkpoints are on: preserving a liveness-class analysis while
  /// mutating the IR, or a structure-class analysis while changing block
  /// structure, fails the pipeline.
  PreservedAnalyses preserved = PreservedAnalyses::none();

  static PassOutcome success(std::string summary = "") {
    PassOutcome o;
    o.summary = std::move(summary);
    return o;
  }
  /// A pass that inspected but did not mutate the state: checkpoint is
  /// skipped and every cached analysis survives.
  static PassOutcome unchanged(std::string summary = "") {
    PassOutcome o;
    o.summary = std::move(summary);
    o.changed = false;
    o.preserved = PreservedAnalyses::all();
    return o;
  }
  static PassOutcome failure(std::string error) {
    PassOutcome o;
    o.ok = false;
    o.error = std::move(error);
    return o;
  }

  PassOutcome& preserve(PreservedAnalyses set) {
    preserved = std::move(set);
    return *this;
  }
};

/// The shared verification contract used both by the PassManager's
/// between-pass checkpoints and the explicit `verify` pass: structural IR
/// well-formedness plus, when an assignment is live, coverage of every
/// used virtual register. Returns "" when clean.
std::string verify_checkpoint(const PipelineState& state);

class Pass {
 public:
  virtual ~Pass() = default;

  /// Canonical name as it appears in a pipeline spec (options included),
  /// e.g. "alloc=coloring:coolest_first".
  virtual std::string name() const = 0;

  virtual PassOutcome run(PipelineState& state,
                          const PipelineContext& ctx) = 0;
};

/// A pass from a callable — used by the builtin registrations and by tests
/// that inject ad-hoc (including deliberately broken) passes.
class LambdaPass final : public Pass {
 public:
  using Fn = std::function<PassOutcome(PipelineState&, const PipelineContext&)>;

  LambdaPass(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  std::string name() const override { return name_; }
  PassOutcome run(PipelineState& state, const PipelineContext& ctx) override {
    return fn_(state, ctx);
  }

 private:
  std::string name_;
  Fn fn_;
};

}  // namespace tadfa::pipeline
