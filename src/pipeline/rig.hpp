// CompileRig: a named MachineConfig turned into live pipeline plumbing.
//
// PipelineContext is deliberately non-owning — the Floorplan, ThermalGrid,
// and PowerModel must outlive every pass. Before the machine matrix,
// each harness (CLI, server, tests) hand-assembled that trio from the one
// hard-coded RegisterFileConfig; the rig packages the recipe so "give me
// machine 'dense45' at subdivision 2" is one constructor call, and so a
// server can stand up additional machines lazily when requests name them.
#pragma once

#include <cstdint>
#include <optional>

#include "core/thermal_dfa.hpp"
#include "machine/floorplan.hpp"
#include "machine/machine_config.hpp"
#include "pipeline/context.hpp"
#include "power/model.hpp"
#include "thermal/grid.hpp"

namespace tadfa::pipeline {

/// Everything about a rig that is not the machine itself.
struct RigOptions {
  /// Thermal grid points per cell edge.
  unsigned subdivision = 1;
  /// Explicit thermal step kernel; nullopt picks the reference kernel
  /// under dfa_config.strict_math and the build default otherwise
  /// (exactly the CLI's --strict-math rule).
  std::optional<thermal::StepKernel> step_kernel;
  core::ThermalDfaConfig dfa_config;
  std::uint64_t policy_seed = 42;
};

/// Owns the rig objects for one machine; context() hands out the
/// non-owning view every driver and pass manager consumes. The rig must
/// outlive every PipelineContext it produced.
class CompileRig {
 public:
  explicit CompileRig(machine::MachineConfig config, RigOptions options = {});

  /// A context wired to this rig (pointers into *this).
  PipelineContext context() const;

  const machine::MachineConfig& machine() const { return config_; }
  const machine::Floorplan& floorplan() const { return floorplan_; }
  const thermal::ThermalGrid& grid() const { return grid_; }
  const power::PowerModel& power() const { return power_; }
  const RigOptions& options() const { return options_; }

 private:
  machine::MachineConfig config_;
  RigOptions options_;
  machine::Floorplan floorplan_;
  thermal::ThermalGrid grid_;
  power::PowerModel power_;
};

}  // namespace tadfa::pipeline
