#include "pipeline/result_cache.hpp"

#include <unistd.h>

#include <atomic>
#include <fstream>
#include <sstream>

#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "support/string_utils.hpp"

namespace tadfa::pipeline {
namespace {

namespace fs = std::filesystem;

/// 64-bit magic at the head of every full-run entry file ("TADFA RC").
constexpr std::uint64_t kMagic = 0x5441444641524331ull;
/// 64-bit magic at the head of every stage entry file ("TADFA SG").
constexpr std::uint64_t kStageMagic = 0x5441444641534731ull;
/// Seed of the stage payload checksum stream.
constexpr std::uint64_t kStagePayloadSeed = 0x7374672d73756d31ull;
/// 64-bit magic at the head of every dependency-graph record
/// ("TADFADG1").
constexpr std::uint64_t kGraphMagic = 0x5441444641444731ull;
/// Seed of the graph payload checksum stream ("dep-sum1").
constexpr std::uint64_t kGraphPayloadSeed = 0x6465702d73756d31ull;

constexpr const char* kIndexName = "index.txt";
constexpr const char* kIndexHeader = "tadfa-result-cache-index v1";

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return s;
}

bool is_hex(const std::string& s) {
  for (char c : s) {
    if ((c < '0' || c > '9') && (c < 'a' || c > 'f')) {
      return false;
    }
  }
  return true;
}

/// Process+thread-unique temp suffix so concurrent writers (threads or
/// processes) never collide on the same temp file.
std::string temp_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  std::ostringstream os;
  os << ".tmp-" << ::getpid() << "-"
     << counter.fetch_add(1, std::memory_order_relaxed);
  return os.str();
}

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return std::nullopt;
  }
  return buffer.str();
}

/// Crash-safe write: temp file in the destination directory, then an
/// atomic rename over the final name.
bool write_file_atomic(const fs::path& path, const std::string& bytes) {
  const fs::path tmp = path.string() + temp_suffix();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return false;
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) {
      out.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace

std::string CacheKey::text() const { return hex64(hi) + hex64(lo); }

// --- CachedResult ------------------------------------------------------------

CachedResult CachedResult::from_run(const PipelineRunResult& run) {
  CachedResult entry;
  entry.function_text = ir::to_string(run.state.func);
  entry.reg_count = run.state.func.reg_count();
  entry.stack_slots = run.state.func.stack_slot_count();
  entry.spilled_regs = run.state.spilled_regs;
  entry.function_fingerprint = ir::fingerprint(run.state.func);
  entry.total_seconds = run.total_seconds;
  entry.pass_stats = run.pass_stats;
  entry.analysis_stats = run.state.analyses.stats();
  if (const core::ThermalDfaResult* dfa = run.state.dfa()) {
    entry.thermal = summarize_dfa(*dfa);
  }
  return entry;
}

std::optional<PipelineRunResult> CachedResult::to_run(
    const std::string& function_name) const {
  ir::ParseError error;
  auto func = ir::parse_function(function_text, &error);
  if (!func.has_value()) {
    return std::nullopt;
  }
  // The text format carries neither trailing unused registers nor the
  // stack-slot counter; restore both so the reconstructed function is
  // indistinguishable from the one that was stored.
  func->set_name(function_name);
  func->ensure_regs(reg_count);
  while (func->stack_slot_count() < stack_slots) {
    func->allocate_stack_slot();
  }
  if (ir::fingerprint(*func) != function_fingerprint) {
    return std::nullopt;
  }
  PipelineRunResult run(std::move(*func));
  run.ok = true;
  run.total_seconds = total_seconds;
  run.pass_stats = pass_stats;
  run.state.spilled_regs = spilled_regs;
  run.state.analyses.import_stats(analysis_stats);
  if (thermal.has_value()) {
    // Re-materialize the thermal result so state.dfa() answers on a
    // warm run just as it does on a cold one — in summary form: the
    // convergence verdict, exit map, and exit temperatures survive the
    // cache; the bulky per-instruction states and δ history do not
    // (nothing downstream of a finished module compile reads them).
    run.state.analyses.restore(thermal->to_result());
  }
  return run;
}

void CachedResult::serialize(ByteWriter& w) const {
  w.str(function_text);
  w.u32(reg_count);
  w.u32(stack_slots);
  w.u32(spilled_regs);
  w.u64(function_fingerprint);
  w.f64(total_seconds);
  w.u64(pass_stats.size());
  for (const PassRunStats& s : pass_stats) {
    w.str(s.name);
    w.f64(s.seconds);
    w.str(s.summary);
    w.boolean(s.changed);
    w.u64(s.instructions_after);
    w.u32(s.vregs_after);
  }
  w.u64(analysis_stats.size());
  for (const AnalysisManager::AnalysisStats& s : analysis_stats) {
    w.str(s.name);
    w.u64(s.hits);
    w.u64(s.misses);
    w.u64(s.puts);
    w.u64(s.invalidations);
  }
  w.boolean(thermal.has_value());
  if (thermal.has_value()) {
    thermal->serialize(w);
  }
}

std::optional<CachedResult> CachedResult::deserialize(ByteReader& r) {
  CachedResult entry;
  entry.function_text = r.str();
  entry.reg_count = r.u32();
  entry.stack_slots = r.u32();
  entry.spilled_regs = r.u32();
  entry.function_fingerprint = r.u64();
  entry.total_seconds = r.f64();
  const std::uint64_t num_passes = r.u64();
  for (std::uint64_t i = 0; i < num_passes && r.ok(); ++i) {
    PassRunStats s;
    s.name = r.str();
    s.seconds = r.f64();
    s.summary = r.str();
    s.changed = r.boolean();
    s.instructions_after = r.u64();
    s.vregs_after = r.u32();
    entry.pass_stats.push_back(std::move(s));
  }
  const std::uint64_t num_analyses = r.u64();
  for (std::uint64_t i = 0; i < num_analyses && r.ok(); ++i) {
    AnalysisManager::AnalysisStats s;
    s.name = r.str();
    s.hits = r.u64();
    s.misses = r.u64();
    s.puts = r.u64();
    s.invalidations = r.u64();
    entry.analysis_stats.push_back(std::move(s));
  }
  if (r.boolean()) {
    entry.thermal = ThermalSummary::deserialize(r);
  }
  if (!r.ok()) {
    return std::nullopt;
  }
  return entry;
}

// --- StageEntry --------------------------------------------------------------

std::optional<ResumeState> StageEntry::to_resume(
    const std::string& function_name) const {
  auto state = snapshot.restore(function_name);
  if (!state.has_value()) {
    return std::nullopt;
  }
  ResumeState resume(std::move(*state));
  resume.passes_done = passes_done;
  resume.pass_stats = pass_stats;
  resume.prefix_seconds = prefix_seconds;
  // The producing run's counters ride the sidecar; restored artifacts
  // were re-registered stat-neutrally, so this is the only source and
  // the resumed run's reporting matches the cold run's exactly.
  resume.state.analyses.import_stats(analysis_stats);
  return resume;
}

void StageEntry::serialize(ByteWriter& w) const {
  w.u32(passes_done);
  snapshot.serialize(w);
  w.u64(pass_stats.size());
  for (const PassRunStats& s : pass_stats) {
    w.str(s.name);
    w.f64(s.seconds);
    w.str(s.summary);
    w.boolean(s.changed);
    w.u64(s.instructions_after);
    w.u32(s.vregs_after);
  }
  w.u64(analysis_stats.size());
  for (const AnalysisManager::AnalysisStats& s : analysis_stats) {
    w.str(s.name);
    w.u64(s.hits);
    w.u64(s.misses);
    w.u64(s.puts);
    w.u64(s.invalidations);
  }
  w.f64(prefix_seconds);
}

std::optional<StageEntry> StageEntry::deserialize(ByteReader& r) {
  StageEntry entry;
  entry.passes_done = r.u32();
  auto snapshot = PipelineSnapshot::deserialize(r);
  if (!snapshot.has_value()) {
    return std::nullopt;
  }
  entry.snapshot = std::move(*snapshot);
  const std::uint64_t num_passes = r.u64();
  for (std::uint64_t i = 0; i < num_passes && r.ok(); ++i) {
    PassRunStats s;
    s.name = r.str();
    s.seconds = r.f64();
    s.summary = r.str();
    s.changed = r.boolean();
    s.instructions_after = r.u64();
    s.vregs_after = r.u32();
    entry.pass_stats.push_back(std::move(s));
  }
  const std::uint64_t num_analyses = r.u64();
  for (std::uint64_t i = 0; i < num_analyses && r.ok(); ++i) {
    AnalysisManager::AnalysisStats s;
    s.name = r.str();
    s.hits = r.u64();
    s.misses = r.u64();
    s.puts = r.u64();
    s.invalidations = r.u64();
    entry.analysis_stats.push_back(std::move(s));
  }
  entry.prefix_seconds = r.f64();
  if (!r.ok()) {
    return std::nullopt;
  }
  return entry;
}

// --- ResultCache -------------------------------------------------------------

ResultCache::ResultCache(Config config)
    : dir_(std::move(config.dir)),
      max_bytes_(config.max_bytes),
      // 0 would mean "never reach the threshold"; clamp to flush-per-store.
      index_flush_interval_(std::max<std::uint32_t>(
          config.index_flush_interval, 1)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    error_ = "cannot create cache directory '" + dir_.string() +
             "': " + (ec ? ec.message() : "not a directory");
    return;
  }
  ok_ = true;
  std::lock_guard<std::mutex> lock(mu_);
  load_index_locked();
}

std::uint64_t ResultCache::context_digest(const PipelineContext& ctx) {
  Hasher h;
  h.mix(ctx.floorplan != nullptr ? ctx.floorplan->config_digest() : 0);
  h.mix(ctx.grid != nullptr ? ctx.grid->config_digest() : 0);
  h.mix(ctx.power != nullptr ? ctx.power->config_digest() : 0);
  h.mix(ctx.timing.config_digest());
  h.mix(ctx.dfa_config.delta_k);
  h.mix(static_cast<std::uint64_t>(ctx.dfa_config.max_iterations));
  h.mix(ctx.dfa_config.trip_count_guess);
  h.mix(static_cast<std::uint64_t>(ctx.dfa_config.include_leakage));
  h.mix(static_cast<std::uint64_t>(ctx.dfa_config.join_mode));
  h.mix(ctx.policy_seed);
  // Mixed only when set so every digest computed before the flag existed
  // stays valid; a strict-math run must never share a key with a
  // fast-tier run (the grid digest separates tiers, this separates the
  // per-run override).
  if (ctx.dfa_config.strict_math) {
    h.mix(std::string_view{"dfa.strict_math"});
  }
  return h.digest();
}

CacheKey ResultCache::make_key(std::uint64_t function_fingerprint,
                               const std::string& canonical_spec,
                               std::uint64_t context_digest) {
  CacheKey key;
  key.hi = Hasher(0x68692d6b6579ull /* "hi-key" */)
               .mix(function_fingerprint)
               .mix(canonical_spec)
               .mix(context_digest)
               .digest();
  key.lo = Hasher(0x6c6f2d6b6579ull /* "lo-key" */)
               .mix(function_fingerprint)
               .mix(canonical_spec)
               .mix(context_digest)
               .digest();
  return key;
}

CacheKey ResultCache::make_stage_key(std::uint64_t function_fingerprint,
                                     std::uint64_t spec_prefix_digest,
                                     std::uint64_t context_digest) {
  CacheKey key;
  key.hi = Hasher(0x68692d737467ull /* "hi-stg" */)
               .mix(function_fingerprint)
               .mix(spec_prefix_digest)
               .mix(context_digest)
               .digest();
  key.lo = Hasher(0x6c6f2d737467ull /* "lo-stg" */)
               .mix(function_fingerprint)
               .mix(spec_prefix_digest)
               .mix(context_digest)
               .digest();
  return key;
}

CacheKey ResultCache::make_graph_key(std::uint64_t module_names_digest,
                                     const std::string& canonical_spec,
                                     std::uint64_t context_digest) {
  CacheKey key;
  key.hi = Hasher(0x68692d646570ull /* "hi-dep" */)
               .mix(module_names_digest)
               .mix(canonical_spec)
               .mix(context_digest)
               .digest();
  key.lo = Hasher(0x6c6f2d646570ull /* "lo-dep" */)
               .mix(module_names_digest)
               .mix(canonical_spec)
               .mix(context_digest)
               .digest();
  return key;
}

fs::path ResultCache::entry_path(const CacheKey& key) const {
  const std::string text = key.text();
  return dir_ / text.substr(0, 2) / (text.substr(2) + ".entry");
}

std::optional<CachedResult> ResultCache::read_entry(const CacheKey& key) {
  const auto bytes = read_file(entry_path(key));
  if (!bytes.has_value()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return std::nullopt;
  }
  ByteReader r(*bytes);
  const bool header_ok = r.u64() == kMagic && r.u32() == kFormatVersion &&
                         r.u64() == key.hi && r.u64() == key.lo;
  std::optional<CachedResult> entry;
  if (header_ok) {
    entry = CachedResult::deserialize(r);
    // Trailing garbage means the record is not what serialize() wrote.
    if (entry.has_value() && r.remaining() != 0) {
      entry.reset();
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!entry.has_value()) {
    ++stats_.misses;
    remove_entry_locked(key.text(), /*count_bad=*/true);
    return std::nullopt;
  }
  ++stats_.hits;
  auto it = index_.find(key.text());
  if (it != index_.end()) {
    it->second.seq = next_seq_++;  // LRU touch (persisted on next insert)
  }
  return entry;
}

std::optional<CachedResult> ResultCache::lookup_entry(const CacheKey& key) {
  if (fault_hook_) {
    fault_hook_("lookup");
  }
  if (!ok_) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return std::nullopt;
  }
  return read_entry(key);
}

std::optional<PipelineRunResult> ResultCache::lookup(
    const CacheKey& key, const std::string& function_name) {
  auto entry = lookup_entry(key);
  if (!entry.has_value()) {
    return std::nullopt;
  }
  auto run = entry->to_run(function_name);
  if (!run.has_value()) {
    // Parsed header but unreconstructable payload: re-classify the hit
    // as a corrupt entry and fall back to a clean recompile.
    std::lock_guard<std::mutex> lock(mu_);
    --stats_.hits;
    ++stats_.misses;
    remove_entry_locked(key.text(), /*count_bad=*/true);
    return std::nullopt;
  }
  return run;
}

bool ResultCache::insert(const CacheKey& key, const PipelineRunResult& run,
                         std::optional<ThermalSummary> thermal) {
  if (fault_hook_) {
    fault_hook_("insert");
  }
  if (!ok_ || !run.ok) {
    return false;
  }
  ByteWriter w;
  w.u64(kMagic);
  w.u32(kFormatVersion);
  w.u64(key.hi);
  w.u64(key.lo);
  CachedResult entry = CachedResult::from_run(run);
  if (!entry.thermal.has_value()) {
    entry.thermal = std::move(thermal);
  }
  entry.serialize(w);
  return store_bytes_locked_free(key, w.data(), EntryKind::kFull);
}

bool ResultCache::store_bytes_locked_free(const CacheKey& key,
                                          const std::string& bytes,
                                          EntryKind kind) {
  const fs::path path = entry_path(key);
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  if (ec || !write_file_atomic(path, bytes)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.store_failures;
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  switch (kind) {
    case EntryKind::kFull:
      ++stats_.stores;
      break;
    case EntryKind::kStage:
      ++stats_.stage_stores;
      break;
    case EntryKind::kGraph:
      ++stats_.graph_stores;
      break;
  }
  IndexEntry& row = index_[key.text()];
  bytes_total_ += bytes.size() - row.bytes;  // 0 for a fresh row
  row.bytes = bytes.size();
  row.seq = next_seq_++;
  evict_until_fits_locked();
  // Index persistence is batched: rewriting it per store would make a
  // cold run O(entries²) in index bytes and serialize the workers on
  // it. A stale index only costs accounting (load reconciles).
  if (++index_dirty_ >= index_flush_interval_) {
    save_index_locked();
    index_dirty_ = 0;
  }
  return true;
}

// --- Stage entries -----------------------------------------------------------

bool ResultCache::insert_stage(const CacheKey& key, const StageEntry& stage) {
  if (fault_hook_) {
    fault_hook_("stage-insert");
  }
  if (!ok_) {
    return false;
  }
  ByteWriter payload;
  stage.serialize(payload);
  ByteWriter w;
  w.u64(kStageMagic);
  w.u32(kStageFormatVersion);
  w.u64(key.hi);
  w.u64(key.lo);
  w.str(payload.data());
  // Whole-payload checksum: the snapshot's function fingerprint cannot
  // vouch for the artifacts riding along (assignment, ranking, gating),
  // so a bit flip anywhere in the payload must fail loudly here.
  w.u64(Hasher(kStagePayloadSeed)
            .mix(std::string_view(payload.data()))
            .digest());
  return store_bytes_locked_free(key, w.data(), EntryKind::kStage);
}

std::optional<StageEntry> ResultCache::read_stage(const CacheKey& key,
                                                  bool count_stats) {
  const auto bytes = read_file(entry_path(key));
  if (!bytes.has_value()) {
    if (count_stats) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.stage_misses;
    }
    return std::nullopt;
  }
  ByteReader r(*bytes);
  const bool header_ok = r.u64() == kStageMagic &&
                         r.u32() == kStageFormatVersion &&
                         r.u64() == key.hi && r.u64() == key.lo;
  std::optional<StageEntry> entry;
  if (header_ok) {
    const std::string payload = r.str();
    const std::uint64_t digest = r.u64();
    if (r.ok() && r.remaining() == 0 &&
        Hasher(kStagePayloadSeed)
                .mix(std::string_view(payload))
                .digest() == digest) {
      ByteReader pr(payload);
      entry = StageEntry::deserialize(pr);
      if (entry.has_value() && pr.remaining() != 0) {
        entry.reset();
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!entry.has_value()) {
    if (count_stats) {
      ++stats_.stage_misses;
    }
    remove_entry_locked(key.text(), /*count_bad=*/true);
    return std::nullopt;
  }
  if (count_stats) {
    ++stats_.stage_hits;
  }
  auto it = index_.find(key.text());
  if (it != index_.end()) {
    it->second.seq = next_seq_++;  // LRU touch (persisted on next insert)
  }
  return entry;
}

std::optional<StageEntry> ResultCache::lookup_stage(const CacheKey& key) {
  if (fault_hook_) {
    fault_hook_("stage-lookup");
  }
  if (!ok_) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.stage_misses;
    return std::nullopt;
  }
  return read_stage(key, /*count_stats=*/true);
}

std::optional<ResumeState> ResultCache::lookup_longest_stage(
    std::uint64_t function_fingerprint, const std::vector<PassSpec>& passes,
    std::uint64_t context_digest, const std::string& function_name) {
  if (fault_hook_) {
    fault_hook_("stage-lookup");
  }
  if (!ok_ || passes.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.stage_misses;
    return std::nullopt;
  }
  for (std::size_t k = passes.size(); k >= 1; --k) {
    const CacheKey key = make_stage_key(
        function_fingerprint, spec_prefix_digest(passes, k), context_digest);
    auto entry = read_stage(key, /*count_stats=*/false);
    if (!entry.has_value()) {
      continue;  // absent or already removed as corrupt; try shorter
    }
    if (entry->passes_done != k) {
      // The payload disagrees with the key it was stored under.
      std::lock_guard<std::mutex> lock(mu_);
      remove_entry_locked(key.text(), /*count_bad=*/true);
      continue;
    }
    auto resume = entry->to_resume(function_name);
    if (!resume.has_value()) {
      std::lock_guard<std::mutex> lock(mu_);
      remove_entry_locked(key.text(), /*count_bad=*/true);
      continue;
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.stage_hits;
    return resume;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.stage_misses;
  return std::nullopt;
}

// --- Dependency-graph records ------------------------------------------------

bool ResultCache::insert_graph(const CacheKey& key,
                               const std::string& payload) {
  if (fault_hook_) {
    fault_hook_("graph-insert");
  }
  if (!ok_) {
    return false;
  }
  ByteWriter w;
  w.u64(kGraphMagic);
  w.u32(kGraphFormatVersion);
  w.u64(key.hi);
  w.u64(key.lo);
  w.str(payload);
  // The payload is opaque to the cache layer, so the record-level
  // checksum is the only thing standing between a bit flip and a wrong
  // invalidation verdict.
  w.u64(Hasher(kGraphPayloadSeed).mix(std::string_view(payload)).digest());
  return store_bytes_locked_free(key, w.data(), EntryKind::kGraph);
}

ResultCache::GraphRecord ResultCache::lookup_graph(const CacheKey& key) {
  if (fault_hook_) {
    fault_hook_("graph-lookup");
  }
  GraphRecord record;
  if (!ok_) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.graph_misses;
    return record;
  }
  const auto bytes = read_file(entry_path(key));
  if (!bytes.has_value()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.graph_misses;
    return record;
  }
  ByteReader r(*bytes);
  const bool header_ok = r.u64() == kGraphMagic &&
                         r.u32() == kGraphFormatVersion &&
                         r.u64() == key.hi && r.u64() == key.lo;
  bool valid = false;
  std::string payload;
  if (header_ok) {
    payload = r.str();
    const std::uint64_t digest = r.u64();
    valid = r.ok() && r.remaining() == 0 &&
            Hasher(kGraphPayloadSeed)
                    .mix(std::string_view(payload))
                    .digest() == digest;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!valid) {
    // A record exists but cannot be trusted: delete it (decrementing
    // the tracked byte total with the index row) and tell the caller
    // the history is gone, not merely absent.
    remove_entry_locked(key.text(), /*count_bad=*/true);
    ++stats_.graph_misses;
    record.status = GraphReadStatus::kCorrupt;
    return record;
  }
  ++stats_.graph_hits;
  if (auto it = index_.find(key.text()); it != index_.end()) {
    it->second.seq = next_seq_++;  // LRU touch (persisted on next insert)
  }
  record.status = GraphReadStatus::kHit;
  record.payload = std::move(payload);
  return record;
}

ResultCache::~ResultCache() { flush(); }

void ResultCache::flush() {
  if (!ok_) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (index_dirty_ != 0) {
    save_index_locked();
    index_dirty_ = 0;
  }
}

void ResultCache::load_index_locked() {
  if (const auto bytes = read_file(dir_ / kIndexName); bytes.has_value()) {
    std::istringstream in(*bytes);
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
      if (first) {
        first = false;
        if (trim(line) != kIndexHeader) {
          break;  // foreign or older index; the directory scan rebuilds
        }
        continue;
      }
      const auto fields = split_whitespace(line);
      long long bytes_field = 0;
      long long seq_field = 0;
      if (fields.size() != 3 || fields[0].size() != 32 ||
          !is_hex(fields[0]) || !parse_int(fields[1], bytes_field) ||
          !parse_int(fields[2], seq_field) || bytes_field < 0 ||
          seq_field < 0) {
        continue;  // torn or hand-edited row; files are the truth anyway
      }
      index_[fields[0]] = {static_cast<std::uint64_t>(bytes_field),
                           static_cast<std::uint64_t>(seq_field)};
      next_seq_ = std::max(next_seq_,
                           static_cast<std::uint64_t>(seq_field) + 1);
    }
  }
  // Reconcile against the files that actually exist: rows without a
  // file are dropped, files without a row (another process's inserts,
  // a lost index) are adopted. Lookups never consult the index, so
  // this only affects size accounting and eviction order.
  std::map<std::string, IndexEntry> reconciled;
  std::error_code ec;
  for (fs::directory_iterator dir_it(dir_, ec);
       !ec && dir_it != fs::directory_iterator(); ++dir_it) {
    if (!dir_it->is_directory()) {
      continue;
    }
    const std::string prefix = dir_it->path().filename().string();
    if (prefix.size() != 2 || !is_hex(prefix)) {
      continue;
    }
    for (fs::directory_iterator file_it(dir_it->path(), ec);
         !ec && file_it != fs::directory_iterator(); ++file_it) {
      const fs::path& p = file_it->path();
      if (p.extension() != ".entry") {
        continue;
      }
      const std::string stem = p.stem().string();
      if (stem.size() != 30 || !is_hex(stem)) {
        continue;
      }
      const std::string key_text = prefix + stem;
      IndexEntry entry;
      if (auto it = index_.find(key_text); it != index_.end()) {
        entry = it->second;
      }
      std::error_code size_ec;
      const auto size = fs::file_size(p, size_ec);
      entry.bytes = size_ec ? entry.bytes : size;
      reconciled[key_text] = entry;
    }
  }
  index_ = std::move(reconciled);
  bytes_total_ = 0;
  for (const auto& [key_text, entry] : index_) {
    bytes_total_ += entry.bytes;
  }
}

void ResultCache::save_index_locked() {
  std::ostringstream out;
  out << kIndexHeader << "\n";
  for (const auto& [key_text, entry] : index_) {
    out << key_text << " " << entry.bytes << " " << entry.seq << "\n";
  }
  write_file_atomic(dir_ / kIndexName, out.str());
}

void ResultCache::remove_entry_locked(const std::string& key_text,
                                      bool count_bad) {
  if (count_bad) {
    ++stats_.bad_entries;
  }
  if (key_text.size() == 32) {
    std::error_code ec;
    fs::remove(dir_ / key_text.substr(0, 2) /
                   (key_text.substr(2) + ".entry"),
               ec);
  }
  if (auto it = index_.find(key_text); it != index_.end()) {
    bytes_total_ -= it->second.bytes;
    index_.erase(it);
  }
}

void ResultCache::evict_until_fits_locked() {
  if (max_bytes_ == 0) {
    return;
  }
  while (index_.size() > 1 && bytes_total_ > max_bytes_) {
    auto oldest = index_.begin();
    for (auto it = index_.begin(); it != index_.end(); ++it) {
      if (it->second.seq < oldest->second.seq) {
        oldest = it;
      }
    }
    remove_entry_locked(oldest->first, /*count_bad=*/false);
    ++stats_.evictions;
  }
}

void ResultCache::count_lookup_fault() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  ++stats_.lookup_faults;
}

void ResultCache::count_store_fault() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.store_failures;
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t ResultCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

std::uint64_t ResultCache::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_total_;
}

TextTable ResultCache::stats_table(const std::string& title) const {
  const ResultCacheStats s = stats();
  TextTable table(title);
  table.set_header({"counter", "value"});
  table.add_row({"hits", std::to_string(s.hits)});
  table.add_row({"misses", std::to_string(s.misses)});
  table.add_row({"hit rate", TextTable::num(s.hit_rate() * 100.0, 1) + "%"});
  table.add_row({"stores", std::to_string(s.stores)});
  table.add_row({"bad entries", std::to_string(s.bad_entries)});
  table.add_row({"evictions", std::to_string(s.evictions)});
  table.add_row({"store failures", std::to_string(s.store_failures)});
  table.add_row({"lookup faults", std::to_string(s.lookup_faults)});
  table.add_row({"stage hits", std::to_string(s.stage_hits)});
  table.add_row({"stage misses", std::to_string(s.stage_misses)});
  table.add_row({"stage hit rate",
                 TextTable::num(s.stage_hit_rate() * 100.0, 1) + "%"});
  table.add_row({"stage stores", std::to_string(s.stage_stores)});
  table.add_row({"graph hits", std::to_string(s.graph_hits)});
  table.add_row({"graph misses", std::to_string(s.graph_misses)});
  table.add_row({"graph stores", std::to_string(s.graph_stores)});
  table.add_row({"entries", std::to_string(entry_count())});
  table.add_row({"bytes", std::to_string(total_bytes())});
  return table;
}

}  // namespace tadfa::pipeline
