// Name -> pass factory registry.
//
// Modeled on the pass-registry layers real back-ends grow (cf. redream's
// jit/ir pass runner): passes register a factory under a spec name, and
// the PassManager instantiates them from parsed PassSpecs. Tests register
// additional (including deliberately broken) passes into a private
// registry without touching the global one.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pipeline/pass.hpp"
#include "pipeline/spec.hpp"

namespace tadfa::pipeline {

/// Builds a pass from its parsed spec. On failure returns nullptr and
/// fills `error` (e.g. bad sub-argument).
using PassFactory = std::function<std::unique_ptr<Pass>(
    const PassSpec& spec, std::string* error)>;

class PassRegistry {
 public:
  /// Registers (or replaces) a factory. `help` is the one-line usage shown
  /// by `tadfa --list-passes`.
  void register_pass(const std::string& name, const std::string& help,
                     PassFactory factory);

  bool contains(const std::string& name) const;

  /// Instantiates `spec`. Unknown names and factory failures return
  /// nullptr with `error` set.
  std::unique_ptr<Pass> create(const PassSpec& spec,
                               std::string* error) const;

  struct Entry {
    std::string name;
    std::string help;
  };
  /// All registered passes, sorted by name.
  std::vector<Entry> entries() const;

 private:
  struct Registered {
    std::string help;
    PassFactory factory;
  };
  std::map<std::string, Registered> passes_;
};

/// The process-wide registry pre-populated with every builtin pass
/// (src/opt wrappers, allocators, thermal-dfa, verify).
PassRegistry& default_registry();

/// Registers the builtin passes into `registry` (used by default_registry
/// and by tests that want a private registry plus extras).
void register_builtin_passes(PassRegistry& registry);

}  // namespace tadfa::pipeline
