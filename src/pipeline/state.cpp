#include "pipeline/state.hpp"

#include "ir/parser.hpp"
#include "ir/printer.hpp"

namespace tadfa::pipeline {

// --- ThermalSummary ----------------------------------------------------------

ThermalSummary summarize_dfa(const core::ThermalDfaResult& dfa) {
  ThermalSummary summary;
  summary.converged = dfa.converged;
  summary.iterations = dfa.iterations;
  summary.final_delta_k = dfa.final_delta_k;
  summary.peak_anywhere_k = dfa.peak_anywhere_k;
  summary.exit_stats = dfa.exit_stats;
  summary.exit_reg_temps_k = dfa.exit_reg_temps_k;
  return summary;
}

core::ThermalDfaResult ThermalSummary::to_result() const {
  core::ThermalDfaResult dfa;
  dfa.converged = converged;
  dfa.iterations = iterations;
  dfa.final_delta_k = final_delta_k;
  dfa.peak_anywhere_k = peak_anywhere_k;
  dfa.exit_stats = exit_stats;
  dfa.exit_reg_temps_k = exit_reg_temps_k;
  return dfa;
}

void ThermalSummary::serialize(ByteWriter& w) const {
  w.boolean(converged);
  w.u32(static_cast<std::uint32_t>(iterations));
  w.f64(final_delta_k);
  w.f64(peak_anywhere_k);
  w.f64(exit_stats.peak_k);
  w.f64(exit_stats.min_k);
  w.f64(exit_stats.mean_k);
  w.f64(exit_stats.stddev_k);
  w.f64(exit_stats.range_k);
  w.f64(exit_stats.max_gradient_k);
  w.f64(exit_stats.mean_gradient_k);
  w.u64(exit_reg_temps_k.size());
  for (double temp : exit_reg_temps_k) {
    w.f64(temp);
  }
}

ThermalSummary ThermalSummary::deserialize(ByteReader& r) {
  ThermalSummary t;
  t.converged = r.boolean();
  t.iterations = static_cast<int>(r.u32());
  t.final_delta_k = r.f64();
  t.peak_anywhere_k = r.f64();
  t.exit_stats.peak_k = r.f64();
  t.exit_stats.min_k = r.f64();
  t.exit_stats.mean_k = r.f64();
  t.exit_stats.stddev_k = r.f64();
  t.exit_stats.range_k = r.f64();
  t.exit_stats.max_gradient_k = r.f64();
  t.exit_stats.mean_gradient_k = r.f64();
  const std::uint64_t num_temps = r.u64();
  for (std::uint64_t i = 0; i < num_temps && r.ok(); ++i) {
    t.exit_reg_temps_k.push_back(r.f64());
  }
  return t;
}

void serialize_dfa(ByteWriter& w, const core::ThermalDfaResult& dfa) {
  w.boolean(dfa.converged);
  w.u32(static_cast<std::uint32_t>(dfa.iterations));
  w.f64(dfa.final_delta_k);
  w.u64(dfa.per_instruction.size());
  for (const core::InstructionThermal& it : dfa.per_instruction) {
    w.u32(it.ref.block);
    w.u32(it.ref.index);
    w.u64(it.reg_temps_k.size());
    for (double temp : it.reg_temps_k) {
      w.f64(temp);
    }
    w.f64(it.peak_k);
  }
  w.u64(dfa.exit_reg_temps_k.size());
  for (double temp : dfa.exit_reg_temps_k) {
    w.f64(temp);
  }
  w.f64(dfa.exit_stats.peak_k);
  w.f64(dfa.exit_stats.min_k);
  w.f64(dfa.exit_stats.mean_k);
  w.f64(dfa.exit_stats.stddev_k);
  w.f64(dfa.exit_stats.range_k);
  w.f64(dfa.exit_stats.max_gradient_k);
  w.f64(dfa.exit_stats.mean_gradient_k);
  w.f64(dfa.peak_anywhere_k);
  w.f64(dfa.analysis_seconds);
  w.u64(dfa.delta_history_k.size());
  for (double delta : dfa.delta_history_k) {
    w.f64(delta);
  }
}

core::ThermalDfaResult deserialize_dfa(ByteReader& r) {
  core::ThermalDfaResult dfa;
  dfa.converged = r.boolean();
  dfa.iterations = static_cast<int>(r.u32());
  dfa.final_delta_k = r.f64();
  const std::uint64_t num_instrs = r.u64();
  for (std::uint64_t i = 0; i < num_instrs && r.ok(); ++i) {
    core::InstructionThermal it;
    it.ref.block = r.u32();
    it.ref.index = r.u32();
    const std::uint64_t num_temps = r.u64();
    for (std::uint64_t j = 0; j < num_temps && r.ok(); ++j) {
      it.reg_temps_k.push_back(r.f64());
    }
    it.peak_k = r.f64();
    dfa.per_instruction.push_back(std::move(it));
  }
  const std::uint64_t num_exit = r.u64();
  for (std::uint64_t i = 0; i < num_exit && r.ok(); ++i) {
    dfa.exit_reg_temps_k.push_back(r.f64());
  }
  dfa.exit_stats.peak_k = r.f64();
  dfa.exit_stats.min_k = r.f64();
  dfa.exit_stats.mean_k = r.f64();
  dfa.exit_stats.stddev_k = r.f64();
  dfa.exit_stats.range_k = r.f64();
  dfa.exit_stats.max_gradient_k = r.f64();
  dfa.exit_stats.mean_gradient_k = r.f64();
  dfa.peak_anywhere_k = r.f64();
  dfa.analysis_seconds = r.f64();
  const std::uint64_t num_deltas = r.u64();
  for (std::uint64_t i = 0; i < num_deltas && r.ok(); ++i) {
    dfa.delta_history_k.push_back(r.f64());
  }
  return dfa;
}

// --- PipelineSnapshot --------------------------------------------------------

PipelineSnapshot PipelineSnapshot::capture(const PipelineState& state) {
  PipelineSnapshot snap;
  snap.function_text = ir::to_string(state.func);
  snap.reg_count = state.func.reg_count();
  snap.stack_slots = state.func.stack_slot_count();
  snap.spilled_regs = state.spilled_regs;
  snap.function_fingerprint = ir::fingerprint(state.func);
  if (const machine::RegisterAssignment* a = state.assignment()) {
    std::vector<machine::PhysReg> map(a->vreg_count(),
                                      machine::RegisterAssignment::kUnassigned);
    for (ir::Reg v = 0; v < a->vreg_count(); ++v) {
      if (a->assigned(v)) {
        map[v] = a->phys(v);
      }
    }
    snap.assignment = std::move(map);
  }
  if (const core::ThermalDfaResult* dfa = state.dfa()) {
    snap.thermal = *dfa;
  }
  if (const std::vector<core::CriticalVariable>* vars = state.ranking()) {
    snap.ranking = *vars;
  }
  if (const opt::BankGatingPlan* plan = state.gating()) {
    snap.gating = *plan;
  }
  return snap;
}

std::optional<PipelineState> PipelineSnapshot::restore(
    const std::string& function_name) const {
  ir::ParseError error;
  auto func = ir::parse_function(function_text, &error);
  if (!func.has_value()) {
    return std::nullopt;
  }
  func->set_name(function_name);
  func->ensure_regs(reg_count);
  while (func->stack_slot_count() < stack_slots) {
    func->allocate_stack_slot();
  }
  if (ir::fingerprint(*func) != function_fingerprint) {
    return std::nullopt;
  }
  PipelineState state(std::move(*func));
  state.spilled_regs = spilled_regs;
  // Artifacts re-register stat-neutrally: the producing run's counters
  // arrive separately (AnalysisManager::import_stats), so put() here
  // would double them.
  if (assignment.has_value()) {
    const auto n = static_cast<std::uint32_t>(assignment->size());
    machine::RegisterAssignment a(n);
    for (ir::Reg v = 0; v < n; ++v) {
      if ((*assignment)[v] != machine::RegisterAssignment::kUnassigned) {
        a.assign(v, (*assignment)[v]);
      }
    }
    state.analyses.restore(std::move(a));
  }
  if (thermal.has_value()) {
    state.analyses.restore(*thermal);
  }
  if (ranking.has_value()) {
    state.analyses.restore(CriticalRanking{*ranking});
  }
  if (gating.has_value()) {
    state.analyses.restore(*gating);
  }
  return state;
}

void PipelineSnapshot::serialize(ByteWriter& w) const {
  w.str(function_text);
  w.u32(reg_count);
  w.u32(stack_slots);
  w.u32(spilled_regs);
  w.u64(function_fingerprint);
  w.boolean(assignment.has_value());
  if (assignment.has_value()) {
    w.u64(assignment->size());
    for (machine::PhysReg p : *assignment) {
      w.u32(p);
    }
  }
  w.boolean(thermal.has_value());
  if (thermal.has_value()) {
    serialize_dfa(w, *thermal);
  }
  w.boolean(ranking.has_value());
  if (ranking.has_value()) {
    w.u64(ranking->size());
    for (const core::CriticalVariable& v : *ranking) {
      w.u32(v.vreg);
      w.f64(v.score);
      w.f64(v.energy_rate_w);
      w.f64(v.expected_cell_temp_k);
      w.f64(v.weighted_accesses);
    }
  }
  w.boolean(gating.has_value());
  if (gating.has_value()) {
    w.u64(gating->gated.size());
    for (bool g : gating->gated) {
      w.boolean(g);
    }
    w.u32(gating->gated_banks);
    w.f64(gating->leakage_saved_w);
  }
}

std::optional<PipelineSnapshot> PipelineSnapshot::deserialize(ByteReader& r) {
  PipelineSnapshot snap;
  snap.function_text = r.str();
  snap.reg_count = r.u32();
  snap.stack_slots = r.u32();
  snap.spilled_regs = r.u32();
  snap.function_fingerprint = r.u64();
  if (r.boolean()) {
    std::vector<machine::PhysReg> map;
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      map.push_back(r.u32());
    }
    snap.assignment = std::move(map);
  }
  if (r.boolean()) {
    snap.thermal = deserialize_dfa(r);
  }
  if (r.boolean()) {
    std::vector<core::CriticalVariable> vars;
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      core::CriticalVariable v;
      v.vreg = r.u32();
      v.score = r.f64();
      v.energy_rate_w = r.f64();
      v.expected_cell_temp_k = r.f64();
      v.weighted_accesses = r.f64();
      vars.push_back(v);
    }
    snap.ranking = std::move(vars);
  }
  if (r.boolean()) {
    opt::BankGatingPlan plan;
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
      plan.gated.push_back(r.boolean());
    }
    plan.gated_banks = r.u32();
    plan.leakage_saved_w = r.f64();
    snap.gating = std::move(plan);
  }
  if (!r.ok()) {
    return std::nullopt;
  }
  return snap;
}

void normalize_state_at_boundary(PipelineState& state) {
  std::optional<core::ThermalDfaResult> thermal;
  if (const core::ThermalDfaResult* dfa = state.dfa()) {
    thermal = *dfa;
  }
  state.analyses.reset_computed();
  if (thermal.has_value()) {
    // Re-register the DFA at full fidelity (stat-neutral: the result
    // was counted when the thermal-dfa pass put() it). Keeping the
    // per-instruction states live is what lets passes like nops run
    // unchanged downstream of a snapshot boundary.
    state.analyses.restore(std::move(*thermal));
  }
}

}  // namespace tadfa::pipeline
