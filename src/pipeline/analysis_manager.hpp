// AnalysisManager: a typed, per-function analysis cache with lazy
// construction and dependency-aware transitive invalidation — the
// new-pass-manager idiom the pipeline was missing.
//
// Before it, every pass re-derived Cfg/Liveness/Dominators/LoopInfo from
// scratch (`Cfg cfg(func); Liveness liveness(cfg);` was copy-pasted across
// opt, regalloc, and core), and PipelineState::invalidate_derived()
// dropped *all* artifacts on any IR reshape. Now:
//
//   * `am.get<dataflow::Liveness>(func)` lazily computes and caches;
//     repeated requests are O(1) pointer returns (pointer-stable until
//     invalidated).
//   * Dependencies are recorded as analyses are built (Liveness pulls Cfg
//     through the manager, so the edge Cfg -> Liveness exists), and
//     `invalidate<Cfg>()` transitively drops Liveness, LiveIntervals,
//     InterferenceGraph, ... anything downstream.
//   * Pass products (assignment, thermal-DFA result, critical ranking,
//     gating plan) are registered with `put<T>()` and retrieved with
//     `result<T>()`; a pass reports what it kept intact via a
//     PreservedAnalyses set and the PassManager calls `keep_only()`
//     instead of dropping everything.
//
// Registering a new analysis = specializing AnalysisTraits<T> (a name
// plus, for lazily computed analyses, a `run` factory that requests its
// dependencies through the manager). Result-only artifacts can use the
// TADFA_REGISTER_ANALYSIS_RESULT macro.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/critical.hpp"
#include "core/thermal_dfa.hpp"
#include "dataflow/cfg.hpp"
#include "dataflow/dominators.hpp"
#include "dataflow/interference.hpp"
#include "dataflow/live_intervals.hpp"
#include "dataflow/liveness.hpp"
#include "dataflow/loop_info.hpp"
#include "ir/function.hpp"
#include "machine/assignment.hpp"
#include "pipeline/context.hpp"
#include "support/table.hpp"

namespace tadfa::pipeline {

class AnalysisManager;

/// Identity of an analysis type, unique per T across the process.
using AnalysisKey = const void*;

template <typename A>
AnalysisKey analysis_key() {
  static const char tag = 0;
  return &tag;
}

/// How to build (and name) analysis T. Lazily computed analyses define
/// `run(func, am, extra...)`; explicitly registered results only need the
/// name. The `extra` pack carries construction context (e.g. the
/// PipelineContext for the thermal DFA) — it participates only at
/// construction time, a cache hit ignores it.
template <typename A>
struct AnalysisTraits;

/// Registers a result-only artifact type: names it for the cache stats
/// without providing a lazy factory.
#define TADFA_REGISTER_ANALYSIS_RESULT(TYPE, NAME)  \
  template <>                                       \
  struct AnalysisTraits<TYPE> {                     \
    static constexpr const char* name = NAME;       \
  }

/// Critical-variable ranking from the last thermal-dfa pass, descending.
/// split-hot/spill-critical consume entries from the front so a later
/// pass never re-treats an already-handled variable.
struct CriticalRanking {
  std::vector<core::CriticalVariable> vars;
};

/// Estimated relative block execution counts (loop-depth scaled). Cached
/// per trip-count guess; use pipeline::block_frequencies() which
/// recomputes on a guess change.
struct BlockFrequencies {
  std::vector<double> counts;
  double trip_count_guess = 0;
};

/// The set of analyses a pass left valid. Defaults to "none": anything
/// not explicitly preserved (and not freshly computed/registered during
/// the pass itself) is dropped by PassManager after the pass runs.
class PreservedAnalyses {
 public:
  static PreservedAnalyses all() {
    PreservedAnalyses p;
    p.all_ = true;
    return p;
  }
  static PreservedAnalyses none() { return {}; }
  /// Cfg + Dominators + LoopInfo + BlockFrequencies: what survives any
  /// pass that rewrites instructions without touching block structure or
  /// terminators (every rewrite in src/opt qualifies).
  static PreservedAnalyses structure();

  template <typename A>
  PreservedAnalyses& preserve() {
    return preserve_key(analysis_key<A>());
  }
  PreservedAnalyses& preserve_key(AnalysisKey key) {
    if (!preserves(key)) {
      preserved_.push_back(key);
    }
    return *this;
  }

  bool preserves_all() const { return all_; }
  bool preserves(AnalysisKey key) const {
    return all_ || std::find(preserved_.begin(), preserved_.end(), key) !=
                       preserved_.end();
  }

 private:
  bool all_ = false;
  std::vector<AnalysisKey> preserved_;
};

class AnalysisManager {
 public:
  AnalysisManager() = default;
  AnalysisManager(AnalysisManager&&) = default;
  AnalysisManager& operator=(AnalysisManager&&) = default;
  AnalysisManager(const AnalysisManager&) = delete;
  AnalysisManager& operator=(const AnalysisManager&) = delete;

  /// With caching off every get() recomputes — the old rebuild-every-pass
  /// behavior, kept for A/B measurement (bench/perf_micro, tadfa
  /// --no-analysis-cache). Registered results are unaffected.
  void set_caching(bool enabled) { caching_ = enabled; }

  /// Lazily computes (or returns the cached) analysis A of `func`. The
  /// returned reference is pointer-stable until A is invalidated.
  /// Requesting an analysis for a different Function object drops the
  /// whole cache first (the manager serves one function at a time).
  template <typename A, typename... Extra>
  const A& get(const ir::Function& func, const Extra&... extra) {
    bind(&func);
    const AnalysisKey key = analysis_key<A>();
    note_dependency(key);
    Entry* entry = find(key);
    if (entry != nullptr && caching_) {
      ++stat(key, AnalysisTraits<A>::name).hits;
      return *static_cast<const A*>(entry->value.get());
    }
    ++stat(key, AnalysisTraits<A>::name).misses;
    build_stack_.push_back(key);
    std::shared_ptr<A> value = AnalysisTraits<A>::run(func, *this, extra...);
    build_stack_.pop_back();
    return *static_cast<const A*>(
        store(key, AnalysisTraits<A>::name, std::move(value),
              /*registered=*/false));
  }

  /// Registers (or replaces) a pass product. Registered results are kept
  /// across the registering pass's PreservedAnalyses application and are
  /// only dropped when a later pass declines to preserve them.
  template <typename A>
  void put(A value) {
    const AnalysisKey key = analysis_key<A>();
    ++stat(key, AnalysisTraits<A>::name).puts;
    store(key, AnalysisTraits<A>::name,
          std::make_shared<A>(std::move(value)), /*registered=*/true);
  }

  /// put() without touching the statistics counters — used by the
  /// persistent result cache when re-materializing artifacts recorded
  /// by the producing run, whose counters arrive via import_stats()
  /// (counting the re-registration would double them).
  template <typename A>
  void restore(A value) {
    store(analysis_key<A>(), AnalysisTraits<A>::name,
          std::make_shared<A>(std::move(value)), /*registered=*/true);
  }

  /// Cached or registered value of A; nullptr when absent. Does not
  /// compute. The non-const overload records a dependency edge when
  /// called from inside an analysis build.
  template <typename A>
  const A* result() const {
    const Entry* entry = find(analysis_key<A>());
    return entry ? static_cast<const A*>(entry->value.get()) : nullptr;
  }
  template <typename A>
  A* result_mut() {
    note_dependency(analysis_key<A>());
    Entry* entry = find(analysis_key<A>());
    return entry ? static_cast<A*>(entry->value.get()) : nullptr;
  }

  /// Drops A and, transitively, everything recorded as depending on it.
  template <typename A>
  void invalidate() {
    invalidate_key(analysis_key<A>());
  }
  void invalidate_key(AnalysisKey key);
  void invalidate_all();

  /// PassManager hook: drops every entry that is neither preserved, nor
  /// freshly computed/registered since begin_pass(), nor a dependency of
  /// a kept entry (kept analyses may hold references into their inputs —
  /// Liveness points at Cfg — so dependencies of survivors survive too).
  void keep_only(const PreservedAnalyses& preserved);

  /// Marks the start of a pass: entries computed or put() from here on
  /// count as fresh for the next keep_only().
  void begin_pass() { fresh_.clear(); }

  /// Called when the owning PipelineState is moved: cached analyses hold
  /// pointers into the old Function storage, so computed entries are
  /// dropped (registered results hold no IR references and survive).
  void on_function_moved();

  /// Pass-boundary reduction for incremental snapshots: drops every
  /// computed entry (counting invalidations, exactly like a state move)
  /// *and* the dependency edges, leaving only registered artifacts —
  /// the same contents a PipelineSnapshot restore reconstructs into a
  /// fresh manager. A cold run that calls this at a boundary and a
  /// resumed run starting from the restored snapshot therefore evolve
  /// their caches (and counters) identically from there on.
  void reset_computed();

  // --- Cache statistics ------------------------------------------------------
  struct AnalysisStats {
    std::string name;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t puts = 0;
    std::uint64_t invalidations = 0;

    friend bool operator==(const AnalysisStats&,
                           const AnalysisStats&) = default;
  };
  /// Per-analysis counters, sorted by name. Counters are cumulative:
  /// invalidation does not reset them.
  std::vector<AnalysisStats> stats() const;
  std::uint64_t total_hits() const;
  std::uint64_t total_misses() const;
  TextTable stats_table(const std::string& title = "analysis cache") const;

  /// Adopts counters recorded by an earlier run (the persistent result
  /// cache replays the producing run's statistics into the restored
  /// state, so warm and cold reporting are byte-identical). Imported
  /// counters merge by name into stats()/total_hits()/total_misses();
  /// live counters keep accumulating on top.
  void import_stats(const std::vector<AnalysisStats>& stats);

 private:
  struct Entry {
    std::shared_ptr<void> value;
    const char* name = nullptr;
    bool registered = false;
  };

  void bind(const ir::Function* func);
  void note_dependency(AnalysisKey key);
  Entry* find(AnalysisKey key);
  const Entry* find(AnalysisKey key) const;
  const void* store(AnalysisKey key, const char* name,
                    std::shared_ptr<void> value, bool registered);
  AnalysisStats& stat(AnalysisKey key, const char* name);
  void erase_entry(AnalysisKey key);

  const ir::Function* bound_ = nullptr;
  bool caching_ = true;
  std::map<AnalysisKey, Entry> entries_;
  /// Forward edges: entry -> the analyses it was built from.
  std::map<AnalysisKey, std::vector<AnalysisKey>> deps_;
  /// Reverse edges: entry -> the analyses built from it.
  std::map<AnalysisKey, std::vector<AnalysisKey>> dependents_;
  std::vector<AnalysisKey> build_stack_;
  std::set<AnalysisKey> fresh_;
  /// With caching off, replaced values parked here so outstanding
  /// references from the current computation stay valid.
  std::vector<std::shared_ptr<void>> retired_;
  std::map<AnalysisKey, AnalysisStats> stats_;
  /// Counters adopted from a cached run, keyed by analysis name (no
  /// AnalysisKey exists for them in this process).
  std::map<std::string, AnalysisStats> imported_;
};

// --- Analysis traits ---------------------------------------------------------

template <>
struct AnalysisTraits<dataflow::Cfg> {
  static constexpr const char* name = "cfg";
  static std::unique_ptr<dataflow::Cfg> run(const ir::Function& func,
                                            AnalysisManager&) {
    return std::make_unique<dataflow::Cfg>(func);
  }
};

template <>
struct AnalysisTraits<dataflow::Liveness> {
  static constexpr const char* name = "liveness";
  static std::unique_ptr<dataflow::Liveness> run(const ir::Function& func,
                                                 AnalysisManager& am) {
    return std::make_unique<dataflow::Liveness>(
        am.get<dataflow::Cfg>(func));
  }
};

template <>
struct AnalysisTraits<dataflow::Dominators> {
  static constexpr const char* name = "dominators";
  static std::unique_ptr<dataflow::Dominators> run(const ir::Function& func,
                                                   AnalysisManager& am) {
    return std::make_unique<dataflow::Dominators>(
        am.get<dataflow::Cfg>(func));
  }
};

template <>
struct AnalysisTraits<dataflow::LoopInfo> {
  static constexpr const char* name = "loop-info";
  static std::unique_ptr<dataflow::LoopInfo> run(const ir::Function& func,
                                                 AnalysisManager& am) {
    return std::make_unique<dataflow::LoopInfo>(
        am.get<dataflow::Cfg>(func), am.get<dataflow::Dominators>(func));
  }
};

template <>
struct AnalysisTraits<dataflow::LiveIntervals> {
  static constexpr const char* name = "live-intervals";
  static std::unique_ptr<dataflow::LiveIntervals> run(
      const ir::Function& func, AnalysisManager& am) {
    return std::make_unique<dataflow::LiveIntervals>(
        am.get<dataflow::Cfg>(func), am.get<dataflow::Liveness>(func));
  }
};

template <>
struct AnalysisTraits<dataflow::InterferenceGraph> {
  static constexpr const char* name = "interference";
  static std::unique_ptr<dataflow::InterferenceGraph> run(
      const ir::Function& func, AnalysisManager& am) {
    return std::make_unique<dataflow::InterferenceGraph>(
        am.get<dataflow::Cfg>(func), am.get<dataflow::Liveness>(func));
  }
};

template <>
struct AnalysisTraits<BlockFrequencies> {
  static constexpr const char* name = "block-freq";
  static std::unique_ptr<BlockFrequencies> run(const ir::Function& func,
                                               AnalysisManager& am,
                                               const double& trip_guess);
};

/// Post-RA thermal DFA as a managed analysis: requires a registered
/// machine::RegisterAssignment (the thermal-dfa pass checks; getting it
/// without one asserts).
template <>
struct AnalysisTraits<core::ThermalDfaResult> {
  static constexpr const char* name = "thermal-dfa";
  static std::unique_ptr<core::ThermalDfaResult> run(
      const ir::Function& func, AnalysisManager& am,
      const PipelineContext& ctx);
};

TADFA_REGISTER_ANALYSIS_RESULT(machine::RegisterAssignment, "assignment");
TADFA_REGISTER_ANALYSIS_RESULT(CriticalRanking, "ranking");

/// Block frequencies for `trip_guess`, recomputing when the cached value
/// was produced for a different guess.
const std::vector<double>& block_frequencies(AnalysisManager& am,
                                             const ir::Function& func,
                                             double trip_guess);

}  // namespace tadfa::pipeline
