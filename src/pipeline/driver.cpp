#include "pipeline/driver.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <map>
#include <optional>
#include <thread>

#include "pipeline/result_cache.hpp"

namespace tadfa::pipeline {
namespace {

/// Runs one function through the (shared, const) manager, converting a
/// stray exception into a failed result so one function cannot take down
/// the pool.
PipelineRunResult compile_one(const PassManager& manager,
                              const ir::Function& func,
                              const std::vector<PassSpec>& passes,
                              const SnapshotHooks& hooks) {
  try {
    return manager.run(func, passes, hooks);
  } catch (const std::exception& e) {
    PipelineRunResult result(func);
    result.error = std::string("uncaught exception: ") + e.what();
    return result;
  } catch (...) {
    PipelineRunResult result(func);
    result.error = "uncaught non-standard exception";
    return result;
  }
}

/// resume() with the same exception shield as compile_one. A failed
/// resume (stray exception, verifier rejection of the restored state, a
/// pass error) is reported back so the caller can fall back to a full
/// recompile.
PipelineRunResult resume_one(const PassManager& manager, ResumeState resume,
                             const ir::Function& func,
                             const std::vector<PassSpec>& passes,
                             const SnapshotHooks& hooks) {
  try {
    return manager.resume(std::move(resume), passes, hooks);
  } catch (const std::exception& e) {
    PipelineRunResult result(func);
    result.error = std::string("uncaught exception: ") + e.what();
    return result;
  } catch (...) {
    PipelineRunResult result(func);
    result.error = "uncaught non-standard exception";
    return result;
  }
}

/// The passes whose re-run dominates a compile, for
/// StagePolicy::after_expensive.
bool is_expensive_pass(const PassSpec& spec) {
  return spec.name == "thermal-dfa" || spec.name == "alloc" ||
         spec.name == "reassign";
}

}  // namespace

bool StagePolicy::wants(std::size_t index,
                        const std::vector<PassSpec>& passes) const {
  if (!enabled || index >= passes.size()) {
    return false;
  }
  if (at_end && index + 1 == passes.size()) {
    return true;
  }
  if (after_expensive && is_expensive_pass(passes[index])) {
    return true;
  }
  return every_k != 0 && (index + 1) % every_k == 0;
}

std::uint64_t StagePolicy::digest() const {
  return Hasher(0x7374672d706f6cull /* "stg-pol" */)
      .mix(static_cast<std::uint64_t>(enabled))
      .mix(static_cast<std::uint64_t>(after_expensive))
      .mix(static_cast<std::uint64_t>(every_k))
      .mix(static_cast<std::uint64_t>(at_end))
      .digest();
}

unsigned CompilationDriver::effective_jobs(std::size_t work_items) const {
  unsigned jobs = jobs_;
  if (jobs == 0) {
    jobs = std::thread::hardware_concurrency();
    if (jobs == 0) {
      jobs = 1;
    }
  }
  if (work_items < jobs) {
    jobs = static_cast<unsigned>(work_items);
  }
  return jobs == 0 ? 1 : jobs;
}

ModulePipelineResult CompilationDriver::compile(const ir::Module& module,
                                                const std::string& spec) const {
  SpecError parse_error;
  const auto passes = parse_pipeline_spec(spec, &parse_error);
  if (!passes.has_value()) {
    ModulePipelineResult result;
    result.error = format_spec_error(parse_error);
    return result;
  }
  return compile(module, *passes);
}

ModulePipelineResult CompilationDriver::compile(
    const ir::Module& module, const std::vector<PassSpec>& passes) const {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();

  const std::vector<ir::Function>& funcs = module.functions();
  const std::size_t n = funcs.size();

  ModulePipelineResult result;
  result.jobs = effective_jobs(n);

  // A pipeline that cannot even be instantiated (unknown pass, bad
  // argument) rejects the whole module before any function compiles.
  if (std::string error = manager_.validate(passes); !error.empty()) {
    result.error = error;
    return result;
  }

  // Slot per function: written by exactly one worker, read after join.
  std::vector<std::optional<PipelineRunResult>> slots(n);
  // unsigned char, not bool: workers write disjoint indices
  // concurrently, which vector<bool>'s bit packing would race on.
  std::vector<unsigned char> from_cache(n, 0);
  std::vector<std::uint32_t> resumed(n, 0);

  // Cache-key ingredients shared by every worker. Keys mix the input
  // fingerprint, the canonical spec, the compilation-environment
  // digest, and the manager toggles that alter recorded statistics.
  // Incremental mode folds the stage policy in as well: boundary
  // normalization changes the recorded analysis counters, so staged and
  // unstaged runs of the same spec must not share entries (a disabled
  // policy contributes nothing, keeping pre-incremental caches warm).
  const bool staged = cache_ != nullptr && stage_policy_.enabled;
  std::string canonical_spec;
  std::uint64_t env_digest = 0;
  if (cache_ != nullptr) {
    canonical_spec = spec_to_string(passes);
    Hasher h;
    h.mix(ResultCache::context_digest(manager_.context()))
        .mix(static_cast<std::uint64_t>(manager_.checkpoints()))
        .mix(static_cast<std::uint64_t>(manager_.analysis_caching()));
    if (staged) {
      h.mix(stage_policy_.digest());
    }
    env_digest = h.digest();
  }

  // Boundary mask and spec-prefix digests, computed once: the workers
  // share them read-only. prefix_digests[k] keys the stage after the
  // first k passes.
  std::vector<unsigned char> boundary(passes.size(), 0);
  std::vector<std::uint64_t> prefix_digests(passes.size() + 1, 0);
  if (staged) {
    for (std::size_t i = 0; i < passes.size(); ++i) {
      boundary[i] = stage_policy_.wants(i, passes) ? 1 : 0;
      prefix_digests[i + 1] = spec_prefix_digest(passes, i + 1);
    }
  }

  // Edit-aware mode: build the module's dependency graph, diff it
  // against the persisted record for this module slot, and fold each
  // function's closure digest into its environment digest. Invalidation
  // rides the key change — an edited function and its transitive
  // dependents miss the cache — so the diff is pure reporting and a
  // lost graph can only cost precision, never a wrong answer. A corrupt
  // or throwing graph read degrades to a conservative whole-module
  // recompile (no cache probes at all this run; results are still
  // stored and the graph rewritten, so the next run recovers).
  const bool edit_aware = cache_ != nullptr && edit_aware_;
  DependencyGraph now_graph;
  std::vector<InvalidationDecision> decisions;
  std::vector<std::uint64_t> env_for;
  std::vector<const DependencyNode*> node_for;
  bool degraded = false;
  CacheKey graph_key;
  if (edit_aware) {
    now_graph = DependencyGraph::build(module);
    graph_key = ResultCache::make_graph_key(now_graph.names_digest(),
                                            canonical_spec, env_digest);
    DependencyGraph before;
    try {
      auto record = cache_->lookup_graph(graph_key);
      if (record.status == ResultCache::GraphReadStatus::kCorrupt) {
        degraded = true;
      } else if (record.status == ResultCache::GraphReadStatus::kHit) {
        ByteReader r(record.payload);
        auto parsed = DependencyGraph::deserialize(r);
        if (parsed.has_value() && r.remaining() == 0) {
          before = std::move(*parsed);
        } else {
          // The record checksum held but the payload does not decode —
          // an encoding skew inside a valid envelope. Same verdict.
          degraded = true;
        }
      }
      // kMiss: first compile of this module slot; diffing against the
      // empty graph labels every function kNew.
    } catch (...) {
      cache_->count_lookup_fault();
      degraded = true;
    }
    if (!degraded) {
      decisions = diff_graphs(before, now_graph);
    }
    env_for.assign(n, env_digest);
    node_for.assign(n, nullptr);
    for (std::size_t i = 0; i < n; ++i) {
      const DependencyNode* node = now_graph.node(funcs[i].name());
      node_for[i] = node;
      // Functions with no outgoing edges keep the plain digest: their
      // keys match non-edit-aware runs, so existing caches stay warm.
      if (node != nullptr && !node->deps.empty()) {
        env_for[i] = Hasher(env_digest).mix(node->closure_digest).digest();
      }
    }
  }

  // One work item: probe the persistent cache (a warm restore is
  // byte-identical to a fresh compile and parallelizes like one), and
  // on a miss compile + insert. The result settles into its slot
  // BEFORE the cache snapshot: moving a PipelineState drops computed
  // analyses and counts their invalidations, and that move happens to
  // every result on its way into `slots` — an entry captured pre-move
  // would replay counters one invalidation short of a fresh run's.
  // Both cache calls run shielded: this lambda executes on pool worker
  // threads, where an escaping exception (a std::filesystem_error from a
  // cache directory deleted mid-run, a full disk, a permission flip)
  // would reach std::thread's trap and std::terminate the whole process.
  // A throwing probe degrades to a miss and a throwing insert to a
  // skipped store — the compile itself must never die of cache trouble.
  auto process = [&](std::size_t i) {
    CacheKey key;
    std::uint64_t input_fp = 0;
    // A degraded edit-aware run compiles everything cold: with the
    // cached graph unreadable the per-function verdicts are gone, and
    // "recompile the module" is the answer that cannot be wrong.
    const std::uint64_t env = edit_aware ? env_for[i] : env_digest;
    if (cache_ != nullptr) {
      input_fp = ir::fingerprint(funcs[i]);
      key = ResultCache::make_key(input_fp, canonical_spec, env);
      if (!degraded) {
        try {
          if (auto hit = cache_->lookup(key, funcs[i].name())) {
            slots[i].emplace(std::move(*hit));
            from_cache[i] = 1;
            return;
          }
        } catch (...) {
          cache_->count_lookup_fault();
        }
      }
    }

    // Incremental mode: every compile (cold or resumed) freezes a stage
    // snapshot at each policy boundary, keyed by the input fingerprint
    // and the spec prefix it completes. A throwing store degrades to a
    // skipped one, same as the full-entry insert below.
    SnapshotHooks hooks;
    if (staged) {
      hooks.want = [&boundary](std::size_t index) {
        return boundary[index] != 0;
      };
      hooks.sink = [this, input_fp, env, &prefix_digests](
                       std::size_t passes_done,
                       const PipelineSnapshot& snapshot,
                       const std::vector<PassRunStats>& pass_stats,
                       const std::vector<AnalysisManager::AnalysisStats>&
                           analysis_stats,
                       double prefix_seconds) {
        StageEntry entry;
        entry.passes_done = static_cast<std::uint32_t>(passes_done);
        entry.snapshot = snapshot;
        entry.pass_stats = pass_stats;
        entry.analysis_stats = analysis_stats;
        entry.prefix_seconds = prefix_seconds;
        try {
          cache_->insert_stage(
              ResultCache::make_stage_key(
                  input_fp, prefix_digests[passes_done], env),
              entry);
        } catch (...) {
          cache_->count_store_fault();
        }
      };
    }

    // Longest-prefix probe: resume from the deepest cached boundary of
    // this spec instead of compiling from pass 0. A failed resume (a
    // pass error on the restored state, a verifier rejection, a stray
    // exception) falls through to the full compile below.
    if (staged && !degraded) {
      std::optional<ResumeState> resume;
      try {
        resume = cache_->lookup_longest_stage(input_fp, passes, env,
                                              funcs[i].name());
      } catch (...) {
        cache_->count_lookup_fault();
      }
      if (resume.has_value()) {
        const auto done = static_cast<std::uint32_t>(resume->passes_done);
        PipelineRunResult run =
            resume_one(manager_, std::move(*resume), funcs[i], passes, hooks);
        if (run.ok) {
          std::optional<ThermalSummary> thermal;
          if (run.state.dfa() != nullptr) {
            thermal = summarize_dfa(*run.state.dfa());
          }
          slots[i].emplace(std::move(run));
          resumed[i] = done;
          // A resumed success is byte-identical to a cold compile, so
          // it also warms the full-run entry this probe missed above.
          try {
            cache_->insert(key, *slots[i], std::move(thermal));
          } catch (...) {
            cache_->count_store_fault();
          }
          return;
        }
      }
    }

    PipelineRunResult run = compile_one(manager_, funcs[i], passes, hooks);
    // The thermal summary must be taken pre-move (the move into the
    // slot sheds the computed ThermalDfaResult), while the statistics
    // snapshot must be post-move (the move also counts the shedding as
    // invalidations) — hence summary here, insert below.
    std::optional<ThermalSummary> thermal;
    if (cache_ != nullptr && run.ok && run.state.dfa() != nullptr) {
      thermal = summarize_dfa(*run.state.dfa());
    }
    slots[i].emplace(std::move(run));
    if (cache_ != nullptr && slots[i]->ok) {
      try {
        cache_->insert(key, *slots[i], std::move(thermal));
      } catch (...) {
        cache_->count_store_fault();
      }
    }
  };

  if (result.jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      process(i);
    }
  } else {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        process(i);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(result.jobs);
    // Under thread exhaustion emplace_back throws std::system_error;
    // already-started workers must be joined before the exception can
    // destroy `pool`, and they drain the whole queue so no slot is left
    // empty. Fewer threads than asked for is degraded, not failed.
    try {
      for (unsigned t = 0; t < result.jobs; ++t) {
        pool.emplace_back(worker);
      }
    } catch (const std::system_error&) {
      if (pool.empty()) {
        for (std::size_t i = 0; i < n; ++i) {
          if (!slots[i].has_value()) {
            process(i);
          }
        }
      }
      result.jobs = pool.empty() ? 1 : static_cast<unsigned>(pool.size());
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  // Aggregate in module order, independent of completion order.
  result.ok = true;
  result.functions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PipelineRunResult run = std::move(*slots[i]);
    result.work_seconds += run.total_seconds;
    if (!run.ok && result.ok) {
      result.ok = false;
      result.error = "function '" + funcs[i].name() + "': " + run.error;
    }
    result.functions.emplace_back(funcs[i].name(), std::move(run));
    result.functions.back().from_cache = from_cache[i] != 0;
    result.functions.back().resumed_passes = resumed[i];
    if (edit_aware) {
      FunctionCompileResult& f = result.functions.back();
      if (degraded) {
        f.reason = InvalidationReason::kGraphDegraded;
      } else if (node_for[i] != nullptr) {
        const std::size_t d =
            static_cast<std::size_t>(node_for[i] - now_graph.nodes().data());
        f.reason = decisions[d].reason;
        f.invalidated_via = decisions[d].via;
      }
    }
  }
  result.graph_degraded = degraded;

  // Rewrite the graph record (atomic temp + rename inside the cache) so
  // the next resubmission diffs against what was just compiled. Also
  // the recovery path out of a degraded run. Skipped on failure: a
  // half-failed module must not present its fingerprints as compiled.
  if (edit_aware && result.ok) {
    ByteWriter w;
    now_graph.serialize(w);
    try {
      cache_->insert_graph(graph_key, w.data());
    } catch (...) {
      cache_->count_store_fault();
    }
  }

  result.total_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

std::size_t ModulePipelineResult::cache_hits() const {
  std::size_t hits = 0;
  for (const FunctionCompileResult& f : functions) {
    hits += f.from_cache ? 1 : 0;
  }
  return hits;
}

double ModulePipelineResult::cache_hit_rate() const {
  return functions.empty()
             ? 0.0
             : static_cast<double>(cache_hits()) /
                   static_cast<double>(functions.size());
}

std::size_t ModulePipelineResult::prefix_hits() const {
  std::size_t hits = 0;
  for (const FunctionCompileResult& f : functions) {
    hits += f.resumed_passes > 0 ? 1 : 0;
  }
  return hits;
}

std::size_t ModulePipelineResult::passes_skipped() const {
  std::size_t skipped = 0;
  for (const FunctionCompileResult& f : functions) {
    skipped += f.resumed_passes;
  }
  return skipped;
}

std::size_t ModulePipelineResult::invalidated_by_edge() const {
  std::size_t count = 0;
  for (const FunctionCompileResult& f : functions) {
    count += f.reason == InvalidationReason::kDependent ? 1 : 0;
  }
  return count;
}

std::size_t ModulePipelineResult::invalidated_by_edit() const {
  std::size_t count = 0;
  for (const FunctionCompileResult& f : functions) {
    count += f.reason == InvalidationReason::kEdited ? 1 : 0;
  }
  return count;
}

std::vector<PassRunStats> ModulePipelineResult::merged_pass_stats() const {
  std::vector<PassRunStats> merged;
  std::size_t contributors = 0;
  std::vector<std::size_t> changed_counts;
  for (const FunctionCompileResult& f : functions) {
    if (!f.run.ok) {
      continue;
    }
    ++contributors;
    const auto& stats = f.run.pass_stats;
    if (merged.empty()) {
      merged = stats;
      changed_counts.assign(stats.size(), 0);
      for (std::size_t i = 0; i < stats.size(); ++i) {
        changed_counts[i] = stats[i].changed ? 1 : 0;
      }
      continue;
    }
    for (std::size_t i = 0; i < merged.size() && i < stats.size(); ++i) {
      merged[i].seconds += stats[i].seconds;
      merged[i].instructions_after += stats[i].instructions_after;
      merged[i].vregs_after += stats[i].vregs_after;
      merged[i].changed = merged[i].changed || stats[i].changed;
      if (stats[i].changed) {
        ++changed_counts[i];
      }
    }
  }
  for (std::size_t i = 0; i < merged.size(); ++i) {
    merged[i].summary = "changed " + std::to_string(changed_counts[i]) + "/" +
                        std::to_string(contributors) + " functions";
  }
  return merged;
}

std::vector<AnalysisManager::AnalysisStats>
ModulePipelineResult::merged_analysis_stats() const {
  std::map<std::string, AnalysisManager::AnalysisStats> by_name;
  for (const FunctionCompileResult& f : functions) {
    for (const AnalysisManager::AnalysisStats& s :
         f.run.state.analyses.stats()) {
      AnalysisManager::AnalysisStats& merged = by_name[s.name];
      merged.name = s.name;
      merged.hits += s.hits;
      merged.misses += s.misses;
      merged.puts += s.puts;
      merged.invalidations += s.invalidations;
    }
  }
  std::vector<AnalysisManager::AnalysisStats> out;
  out.reserve(by_name.size());
  for (auto& [name, s] : by_name) {
    out.push_back(std::move(s));
  }
  return out;
}

TextTable ModulePipelineResult::function_table(
    const std::string& title) const {
  TextTable table(title);
  table.set_header({"#", "function", "ok", "ms", "instrs", "vregs", "spills"});
  for (std::size_t i = 0; i < functions.size(); ++i) {
    const FunctionCompileResult& f = functions[i];
    table.add_row({std::to_string(i + 1), f.name, f.run.ok ? "yes" : "NO",
                   TextTable::num(f.run.total_seconds * 1e3, 3),
                   std::to_string(f.run.state.func.instruction_count()),
                   std::to_string(f.run.state.func.reg_count()),
                   std::to_string(f.run.state.spilled_regs)});
  }
  return table;
}

TextTable ModulePipelineResult::stats_table(const std::string& title) const {
  TextTable table(title);
  table.set_header({"#", "pass", "ms", "instrs", "vregs", "summary"});
  const auto merged = merged_pass_stats();
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const PassRunStats& s = merged[i];
    table.add_row({std::to_string(i + 1), s.name,
                   TextTable::num(s.seconds * 1e3, 3),
                   std::to_string(s.instructions_after),
                   std::to_string(s.vregs_after), s.summary});
  }
  return table;
}

}  // namespace tadfa::pipeline
