// ResultCache: a persistent, content-addressed store of finished
// PipelineRunResults.
//
// The thermal DFA is the expensive step of every compile (iterate-to-δ
// over an RC grid per instruction); the AnalysisManager (PR 2) caches it
// within a run and the CompilationDriver (PR 3) parallelizes across
// functions, but nothing survived process exit — recompiling a module
// redid every converged DFA from scratch. This cache closes that gap.
//
// Keying. An entry is addressed by a 128-bit key derived from exactly
// the inputs a pipeline run is a pure function of:
//
//     key = H( ir::fingerprint(input function)
//            ⊕ canonical pass-spec string
//            ⊕ context digest )
//
// where the context digest folds Floorplan/ThermalGrid/PowerModel/
// TimingModel::config_digest(), the ThermalDfaConfig, and the policy
// seed. Changing any one of these — and nothing else — invalidates
// exactly the entries it should. The function *name* is deliberately
// not part of the key: two identically-shaped functions share an entry,
// and lookup() re-stamps the requested name onto the restored function.
//
// On disk. Entries live under a two-level hash layout,
// `<dir>/<key[0:2]>/<key[2:]>.entry`, next to an `index.txt` used for
// size accounting and LRU eviction (lookups address entry files
// directly, so a stale or lost index can never hide an entry). Each
// entry is a versioned binary record: magic, format version, key echo,
// the output function via the canonical printer (re-parsed on load),
// and a sidecar with pass statistics, analysis-cache counters, spill
// counts and the thermal summary. Writes are crash-safe: temp file +
// atomic rename, so readers see an old entry or a new one, never half
// of one. A truncated, corrupted, or version-bumped entry is detected
// (magic/version/key/fingerprint checks plus a totalizing reader),
// counted in `bad_entries`, deleted, and reported as a miss — the
// driver then recompiles cleanly.
//
// Stage entries. Incremental compilation (PR 6) adds a second entry
// kind to the same directory, index, size accounting, and eviction
// order: a *stage entry* freezes a pipeline at a pass boundary rather
// than at the end. It is keyed by
//
//     stage key = H( ir::fingerprint(input function)
//                  ⊕ spec_prefix_digest(passes, k)
//                  ⊕ env digest )
//
// so a spec that *extends* a previously compiled one shares every
// prefix key with it, and lookup_longest_stage() can restore the
// longest cached prefix (k = n, n-1, ... 1) and let the driver run only
// the suffix. The stage record layout is
//
//     [u64 stage magic "TADFASG1"][u32 kStageFormatVersion]
//     [u64 key.hi][u64 key.lo]
//     [str payload][u64 payload digest]
//
// where the payload is a serialized StageEntry (PipelineSnapshot +
// prefix pass stats + analysis counters + prefix wall clock) and the
// trailing digest is a seeded hash over the payload bytes — the
// snapshot's function fingerprint cannot vouch for the *artifacts*
// riding along (assignment, ranking, gating), so the whole payload is
// checksummed. Any mismatch (magic, version, key echo, payload digest,
// totalizing reader, fingerprint after re-parse) counts a bad entry,
// deletes the file, and degrades to probing a shorter prefix — worst
// case a full recompile, never a corrupt resume.
//
// Thread safety: all public methods are safe to call from concurrent
// driver workers (and from concurrent processes sharing the directory;
// the index degrades to best-effort accounting there).
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pipeline/pass_manager.hpp"
#include "support/serialize.hpp"

namespace tadfa::pipeline {

/// 128-bit content address of a cache entry (two independently seeded
/// 64-bit digests over the same inputs).
struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  /// 32 lowercase hex chars; the on-disk entry name.
  std::string text() const;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

// ThermalSummary and summarize_dfa moved to pipeline/state.hpp in PR 6
// (pass-boundary snapshots need them below the cache layer); they reach
// this header through pass_manager.hpp.

/// One serializable pipeline result: the output function as canonical
/// text plus the sidecar fields the text format cannot carry.
struct CachedResult {
  std::string function_text;
  /// The printer/parser round-trip loses trailing *unused* registers
  /// (reg_count is re-derived as highest-mentioned + 1) and the stack
  /// slot counter; both are restored from here so the reconstructed
  /// function is fingerprint-identical to the one that was stored.
  std::uint32_t reg_count = 0;
  std::uint32_t stack_slots = 0;
  std::uint32_t spilled_regs = 0;
  /// ir::fingerprint of the stored output; verified after re-parsing.
  std::uint64_t function_fingerprint = 0;
  double total_seconds = 0;
  std::vector<PassRunStats> pass_stats;
  std::vector<AnalysisManager::AnalysisStats> analysis_stats;
  std::optional<ThermalSummary> thermal;

  /// Captures a finished (ok) run. The thermal summary is taken from
  /// the run's registered ThermalDfaResult when one survived.
  static CachedResult from_run(const PipelineRunResult& run);

  /// Reconstructs a ready PipelineRunResult named `function_name`.
  /// nullopt when the text does not parse or the reconstructed function
  /// does not match `function_fingerprint` (a corrupt entry).
  std::optional<PipelineRunResult> to_run(
      const std::string& function_name) const;

  void serialize(ByteWriter& w) const;
  /// nullopt on any truncation/implausibility; the reader's failure
  /// flag is totalizing, so no partially-filled record escapes.
  static std::optional<CachedResult> deserialize(ByteReader& r);

  friend bool operator==(const CachedResult&, const CachedResult&) = default;
};

/// One pass-boundary freeze: the snapshot plus the reporting sidecar a
/// resumed run replays (prefix pass stats, analysis counters at the
/// boundary, prefix wall clock). Stored/retrieved by insert_stage and
/// lookup_longest_stage under spec-prefix keys.
struct StageEntry {
  /// Number of leading passes the snapshot accounts for (the resume
  /// index).
  std::uint32_t passes_done = 0;
  PipelineSnapshot snapshot;
  std::vector<PassRunStats> pass_stats;
  std::vector<AnalysisManager::AnalysisStats> analysis_stats;
  double prefix_seconds = 0;

  /// Rebuilds a ResumeState named `function_name`: restores the
  /// snapshot, imports the sidecar analysis counters, and threads the
  /// prefix stats/clock through. nullopt when the snapshot does not
  /// reconstruct (corruption caught past the payload digest).
  std::optional<ResumeState> to_resume(const std::string& function_name) const;

  void serialize(ByteWriter& w) const;
  static std::optional<StageEntry> deserialize(ByteReader& r);

  friend bool operator==(const StageEntry&, const StageEntry&) = default;
};

struct ResultCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  /// Entries rejected by the magic/version/key/fingerprint checks or
  /// the totalizing reader (each also counts as a miss).
  std::uint64_t bad_entries = 0;
  std::uint64_t evictions = 0;
  std::uint64_t store_failures = 0;
  /// Lookups that threw (filesystem failure under the cache) and were
  /// degraded to misses by the caller (each also counts as a miss).
  std::uint64_t lookup_faults = 0;
  /// Stage-entry counters (incremental compilation). A hit is one
  /// successful longest-prefix restore; a miss is one probe that found
  /// no usable prefix at any length. Corrupt stage entries fold into
  /// bad_entries above; stage stores that failed fold into
  /// store_failures; evicted stage entries fold into evictions.
  std::uint64_t stage_hits = 0;
  std::uint64_t stage_misses = 0;
  std::uint64_t stage_stores = 0;
  /// Dependency-graph record counters (edit-aware compiles). Corrupt
  /// records fold into bad_entries, failed stores into store_failures,
  /// evicted records into evictions — same discipline as stages.
  std::uint64_t graph_hits = 0;
  std::uint64_t graph_misses = 0;
  std::uint64_t graph_stores = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
  double stage_hit_rate() const {
    const std::uint64_t total = stage_hits + stage_misses;
    return total == 0 ? 0.0 : static_cast<double>(stage_hits) / total;
  }
};

class ResultCache {
 public:
  /// Bumped whenever the entry encoding changes; entries written by any
  /// other version are treated as misses and removed on contact.
  static constexpr std::uint32_t kFormatVersion = 1;
  /// Independently versioned stage-entry encoding (see file comment).
  static constexpr std::uint32_t kStageFormatVersion = 1;
  /// Independently versioned dependency-graph record encoding:
  ///
  ///     [u64 graph magic "TADFADG1"][u32 kGraphFormatVersion]
  ///     [u64 key.hi][u64 key.lo]
  ///     [str payload][u64 payload digest]
  ///
  /// The payload is an opaque serialized pipeline::DependencyGraph; the
  /// cache checksums it exactly like a stage payload. Graph records
  /// share the directory, index, size accounting, and LRU eviction with
  /// the other two entry kinds.
  static constexpr std::uint32_t kGraphFormatVersion = 1;

  struct Config {
    std::string dir;
    /// 0 = unbounded; otherwise inserts evict least-recently-used
    /// entries (full-run and stage alike) until the total fits.
    std::uint64_t max_bytes = 0;
    /// Stores between batched index.txt rewrites (0 behaves as 1 —
    /// every store flushes). The default keeps a cold run from being
    /// O(entries²) in index bytes; long-lived processes that must not
    /// rely on the destructor call flush() themselves.
    std::uint32_t index_flush_interval = 64;
  };

  /// Opens (creating directories as needed) a cache rooted at
  /// `config.dir`.
  explicit ResultCache(Config config);
  /// Convenience form with default index batching.
  explicit ResultCache(std::string dir, std::uint64_t max_bytes = 0)
      : ResultCache(Config{std::move(dir), max_bytes, 64}) {}
  /// Persists any unwritten index rows (see flush()).
  ~ResultCache();
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// False when the directory could not be created/read; a disabled
  /// cache misses every lookup and drops every insert.
  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  std::string dir() const { return dir_.string(); }

  /// Digest of everything in the compilation environment a pipeline
  /// output depends on: the four model digests, the DFA config, and the
  /// policy seed.
  static std::uint64_t context_digest(const PipelineContext& ctx);

  /// Derives the content address (see file comment for the recipe).
  static CacheKey make_key(std::uint64_t function_fingerprint,
                           const std::string& canonical_spec,
                           std::uint64_t context_digest);

  /// Derives a stage-entry address from the input fingerprint, a
  /// spec_prefix_digest, and the same environment digest full-run keys
  /// use. Seeded differently from make_key, so the two entry kinds can
  /// never collide on an address.
  static CacheKey make_stage_key(std::uint64_t function_fingerprint,
                                 std::uint64_t spec_prefix_digest,
                                 std::uint64_t context_digest);

  /// Derives a dependency-graph record address from the module slot (a
  /// digest over the module's function *names*, stable across edits),
  /// the canonical spec, and the environment digest. A third seed pair
  /// keeps graph addresses disjoint from both other entry kinds.
  static CacheKey make_graph_key(std::uint64_t module_names_digest,
                                 const std::string& canonical_spec,
                                 std::uint64_t context_digest);

  /// Full reconstruction: entry -> ready PipelineRunResult named
  /// `function_name`. nullopt on miss or bad entry.
  std::optional<PipelineRunResult> lookup(const CacheKey& key,
                                          const std::string& function_name);

  /// Raw entry access (tests, `tadfa --cache-verify`). Counts toward
  /// hit/miss statistics exactly like lookup().
  std::optional<CachedResult> lookup_entry(const CacheKey& key);

  /// Persists a finished run. Failed runs are never cached (their
  /// error is cheap to reproduce and their state is partial). Returns
  /// false when the run was not ok, the cache is disabled, or the
  /// filesystem write failed. `thermal` backfills the summary when the
  /// run's own ThermalDfaResult is already gone — a moved PipelineState
  /// sheds computed analyses, and the driver moves every result into
  /// its slot before snapshotting it (stats must be post-move), so it
  /// captures the summary pre-move and hands it in here.
  bool insert(const CacheKey& key, const PipelineRunResult& run,
              std::optional<ThermalSummary> thermal = std::nullopt);

  /// Persists one pass-boundary freeze under a stage key. Counts a
  /// stage store (or a store failure). Overwriting an existing stage
  /// entry is fine — identical content modulo timing — and refreshes
  /// its LRU stamp.
  bool insert_stage(const CacheKey& key, const StageEntry& stage);

  /// Raw stage-entry access (tests, diagnostics). Counts one stage hit
  /// or miss; a corrupt entry counts bad_entries and is removed.
  std::optional<StageEntry> lookup_stage(const CacheKey& key);

  /// Longest-prefix probe: tries k = passes.size() .. 1 stage keys and
  /// returns the first prefix that restores into a usable ResumeState
  /// named `function_name` (one stage hit). Corrupt entries at any k
  /// are removed (bad_entries) and the probe continues with shorter
  /// prefixes; finding none counts one stage miss.
  std::optional<ResumeState> lookup_longest_stage(
      std::uint64_t function_fingerprint, const std::vector<PassSpec>& passes,
      std::uint64_t context_digest, const std::string& function_name);

  /// How a graph-record lookup resolved. The edit-aware driver needs
  /// the three-way split: an absent record means "first compile of this
  /// module slot" (diff against an empty graph), while a corrupt one
  /// means the history is untrustworthy and the whole module recompiles.
  enum class GraphReadStatus { kHit, kMiss, kCorrupt };
  struct GraphRecord {
    GraphReadStatus status = GraphReadStatus::kMiss;
    /// The stored payload; meaningful only on kHit.
    std::string payload;
  };

  /// Persists one dependency-graph payload. Counts a graph store (or a
  /// store failure); overwriting the record for a module slot is the
  /// normal case — every edit-aware compile rewrites it (atomically,
  /// temp + rename).
  bool insert_graph(const CacheKey& key, const std::string& payload);

  /// Reads + validates one graph record. A corrupt record counts
  /// bad_entries, is deleted (with its index row and byte accounting),
  /// and reports kCorrupt.
  GraphRecord lookup_graph(const CacheKey& key);

  /// Books a lookup that threw out of the cache as a miss plus a
  /// lookup fault. The CompilationDriver shields its work items from
  /// cache exceptions (a broken cache degrades the compile, never kills
  /// it) and attributes the fault here so stats_table shows it.
  void count_lookup_fault();
  /// Books an insert that threw as a store failure (the result simply
  /// goes unpersisted).
  void count_store_fault();

  /// Test-only fault injection: when set, the hook runs at the top of
  /// every lookup and insert with the operation name ("lookup" /
  /// "insert" / "stage-lookup" / "stage-insert" / "graph-lookup" /
  /// "graph-insert") and may throw to
  /// simulate a filesystem failure (cache
  /// directory deleted mid-run, disk full, permission flip). Set it
  /// before handing the cache to concurrent workers; it is read without
  /// synchronization while compiles run.
  void set_fault_hook(std::function<void(std::string_view op)> hook) {
    fault_hook_ = std::move(hook);
  }

  ResultCacheStats stats() const;
  std::size_t entry_count() const;
  std::uint64_t total_bytes() const;

  /// Rewrites index.txt now. Inserts batch index persistence (one
  /// rewrite every Config::index_flush_interval stores, plus one at
  /// destruction) so a cold run is not O(entries²) in index bytes
  /// written; the index is advisory and reconciled against the entry
  /// files on open, so a crash between flushes loses accounting hints,
  /// never entries.
  void flush();

  /// Hit/miss/store/evict counter table, printed by `tadfa
  /// --cache-stats` next to the analysis-cache statistics.
  TextTable stats_table(const std::string& title = "result cache") const;

 private:
  struct IndexEntry {
    std::uint64_t bytes = 0;
    /// Recency stamp for LRU eviction (monotone per process; persisted
    /// best-effort through the index file).
    std::uint64_t seq = 0;
  };

  std::filesystem::path entry_path(const CacheKey& key) const;
  /// Reads `index.txt` and reconciles it against the entry files that
  /// actually exist (files win; the index is advisory).
  void load_index_locked();
  /// Atomically rewrites `index.txt` (temp + rename).
  void save_index_locked();
  /// Deletes the entry file and index row; `count_bad` attributes the
  /// removal to corruption rather than eviction.
  void remove_entry_locked(const std::string& key_text, bool count_bad);
  void evict_until_fits_locked();
  std::optional<CachedResult> read_entry(const CacheKey& key);
  /// Reads + fully validates one stage entry. `count_stats` toggles the
  /// per-probe hit/miss bookkeeping (the longest-prefix probe counts
  /// once for the whole scan, not per k); corruption always counts
  /// bad_entries and removes the file.
  std::optional<StageEntry> read_stage(const CacheKey& key, bool count_stats);
  /// Which kind of record a store should be attributed to.
  enum class EntryKind { kFull, kStage, kGraph };
  /// Shared tail of insert/insert_stage/insert_graph: writes `bytes`
  /// under `key`'s entry path and books the index row, eviction, and
  /// batched flush.
  bool store_bytes_locked_free(const CacheKey& key, const std::string& bytes,
                               EntryKind kind);

  std::filesystem::path dir_;
  std::uint64_t max_bytes_ = 0;
  std::uint32_t index_flush_interval_ = 64;
  bool ok_ = false;
  std::string error_;

  mutable std::mutex mu_;
  std::map<std::string, IndexEntry> index_;
  /// Running sum of index_ entry bytes (kept incrementally so inserts
  /// do not rescan the map).
  std::uint64_t bytes_total_ = 0;
  /// Stores since the last index rewrite.
  std::uint32_t index_dirty_ = 0;
  std::uint64_t next_seq_ = 1;
  ResultCacheStats stats_;
  std::function<void(std::string_view)> fault_hook_;
};

}  // namespace tadfa::pipeline
