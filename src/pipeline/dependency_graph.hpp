// Dependency edges between compiled artifacts.
//
// The IR has no call instruction — functions compile independently — so
// cross-function coupling enters the module as `ir::ModuleReference`
// edges (symbol references in .tir text, workload-declared call
// references). This file turns those edges into the persistent structure
// ROADMAP item 2b asks for, modeled on redream's jit_edge/jit_block_meta
// graph: every compiled function becomes a node carrying its
// ir::fingerprint plus a *closure digest* — a hash over the fingerprints
// of everything it transitively depends on. An edited function changes
// its own fingerprint, which changes the closure digest of every
// transitive dependent; the driver mixes closure digests into cache keys,
// so invalidation is enforced by key change (correct even when the cached
// graph is lost) while the graph diff explains *why* each function
// recompiled.
//
// The graph is stored beside ResultCache entries as a TADFADG1 record
// (see ResultCache::insert_graph) and rewritten atomically after every
// edit-aware compile.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ir/function.hpp"
#include "support/serialize.hpp"

namespace tadfa::pipeline {

/// One compiled function in the dependency graph.
struct DependencyNode {
  std::string name;
  /// ir::fingerprint of the function at record time.
  std::uint64_t fingerprint = 0;
  /// Hash over the sorted (name, fingerprint) pairs of the full
  /// transitive dependency set, self included. Cycles are fine: the
  /// digest is over the reachable *set*, not a traversal order.
  std::uint64_t closure_digest = 0;
  /// Names this function directly depends on (sorted, unique).
  std::vector<std::string> deps;

  friend bool operator==(const DependencyNode&,
                         const DependencyNode&) = default;
};

/// Why the edit-aware driver decided to recompile (or not) a function.
enum class InvalidationReason : std::uint8_t {
  kUnknown = 0,        ///< Not compiled in edit-aware mode.
  kWarm = 1,           ///< Fingerprint and closure match the cached graph.
  kNew = 2,            ///< No cached graph node with this name.
  kEdited = 3,         ///< The function's own fingerprint changed.
  kDependent = 4,      ///< Unchanged itself; a transitive dependency changed.
  kGraphDegraded = 5,  ///< Cached graph unreadable; whole module recompiled.
};
constexpr std::uint8_t kMaxInvalidationReason =
    static_cast<std::uint8_t>(InvalidationReason::kGraphDegraded);

/// Short stable label ("warm", "edited", ...) for logs, --explain output
/// and the wire protocol's human-readable side.
const char* to_string(InvalidationReason reason);

/// One per-function verdict from diff_graphs.
struct InvalidationDecision {
  InvalidationReason reason = InvalidationReason::kUnknown;
  /// For kDependent: the dependency path walked from this function to
  /// the nearest changed one, "a -> b -> c" (c changed). Empty when the
  /// dependency *set* changed without any function body changing.
  std::string via;
};

/// The persistent edge structure for one module. Nodes are kept sorted
/// by name, so building the same module twice is byte-identical.
class DependencyGraph {
 public:
  /// Records every function of `module` plus its reference edges.
  /// Edges naming functions absent from the module are kept (the
  /// verifier flags them; here they just hash as fingerprint 0).
  static DependencyGraph build(const ir::Module& module);

  const std::vector<DependencyNode>& nodes() const { return nodes_; }
  /// Binary search by name; nullptr when absent.
  const DependencyNode* node(std::string_view name) const;

  /// Names whose closure includes `name` (its transitive dependents),
  /// excluding `name` itself; sorted.
  std::vector<std::string> dependents_of(std::string_view name) const;

  /// Digest over the node *names* only — identifies the module slot a
  /// graph record lives in, stable across edits to function bodies.
  std::uint64_t names_digest() const;

  void serialize(ByteWriter& w) const;
  /// nullopt on truncation, implausible counts, or unsorted nodes.
  static std::optional<DependencyGraph> deserialize(ByteReader& r);

  friend bool operator==(const DependencyGraph&,
                         const DependencyGraph&) = default;

 private:
  std::vector<DependencyNode> nodes_;  // sorted by name
};

/// Diffs `now` (the resubmitted module) against `before` (the cached
/// graph). Returns one decision per node of `now`, in node order.
std::vector<InvalidationDecision> diff_graphs(const DependencyGraph& before,
                                              const DependencyGraph& now);

}  // namespace tadfa::pipeline
