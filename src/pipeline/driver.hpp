// CompilationDriver: the module-level, multi-threaded front end of the
// pipeline layer.
//
// PassManager compiles one ir::Function; real inputs are modules. The
// driver fans a module's functions out over a fixed-size worker pool
// (`--jobs N`, default hardware_concurrency). Per-function thermal DFA is
// embarrassingly parallel — every function gets its own RC-grid state —
// so the only shared objects are immutable: the Floorplan, ThermalGrid
// conductance tables, PowerModel, TimingModel, and the PassRegistry, all
// reached through const references. Each worker owns everything mutable
// (PipelineState, AnalysisManager, pass instances) for the function it is
// compiling.
//
// Determinism guarantee: results are stored by module index, not
// completion order, and every pass is a pure function of its input
// function plus the shared immutable context. Compiling the same module
// with any job count therefore yields byte-identical per-function IR,
// fingerprints, and pass statistics (timing fields excepted — wall-clock
// is the one thing threads are allowed to change).
#pragma once

#include <string>
#include <vector>

#include "ir/function.hpp"
#include "pipeline/dependency_graph.hpp"
#include "pipeline/pass_manager.hpp"

namespace tadfa::pipeline {

class ResultCache;

/// When (and whether) the driver freezes pass-boundary snapshots into
/// the attached ResultCache, and therefore whether it probes for a
/// resumable prefix before compiling (`tadfa --incremental`).
struct StagePolicy {
  /// Master switch; everything below is ignored while false.
  bool enabled = false;
  /// Snapshot after passes whose re-run dominates a compile — the
  /// thermal DFA's iterate-to-δ fixpoint and register allocation.
  bool after_expensive = true;
  /// Also snapshot after every k-th pass (0 = off).
  unsigned every_k = 0;
  /// Snapshot after the final pass: the boundary a future spec
  /// *extension* resumes from (a full-run entry stores no artifacts).
  bool at_end = true;

  /// True when boundary `index` (after passes[index]) gets a snapshot.
  bool wants(std::size_t index, const std::vector<PassSpec>& passes) const;

  /// Folded into the cache environment digest while enabled: boundary
  /// normalization changes the recorded analysis counters, so runs
  /// under different stage placements must not share entries.
  std::uint64_t digest() const;
};

/// One function's compilation inside a module run (module order).
struct FunctionCompileResult {
  FunctionCompileResult(std::string function_name, PipelineRunResult r)
      : name(std::move(function_name)), run(std::move(r)) {}

  std::string name;
  PipelineRunResult run;
  /// True when the result was restored from the persistent ResultCache
  /// instead of compiled in this run.
  bool from_cache = false;
  /// Passes skipped by resuming from a cached stage snapshot (0 when
  /// the function was compiled from scratch or fully restored).
  std::uint32_t resumed_passes = 0;
  /// Edit-aware mode: why this function was (or was not) invalidated
  /// against the cached dependency graph. kUnknown outside that mode.
  InvalidationReason reason = InvalidationReason::kUnknown;
  /// For kDependent: the dependency path walked to the changed function
  /// ("a -> b -> c", c edited). Empty otherwise.
  std::string invalidated_via;
};

struct ModulePipelineResult {
  /// True when every function compiled.
  bool ok = false;
  /// First failure in module order, prefixed with the function name.
  std::string error;
  /// One entry per module function, in module order.
  std::vector<FunctionCompileResult> functions;
  /// Wall-clock time of the whole module compile.
  double total_seconds = 0;
  /// Sum of per-function pipeline times (the serial cost the pool hid).
  double work_seconds = 0;
  /// Worker threads actually used.
  unsigned jobs = 1;

  /// Pass statistics summed position-wise over all successful functions
  /// (every function runs the same spec). Deterministic except for the
  /// `seconds` field; `summary` becomes "changed K/N functions".
  std::vector<PassRunStats> merged_pass_stats() const;

  /// Analysis-cache counters summed by analysis name over all functions.
  std::vector<AnalysisManager::AnalysisStats> merged_analysis_stats() const;

  /// Functions restored from the persistent result cache.
  std::size_t cache_hits() const;
  /// cache_hits() over the module size (0 when the module is empty).
  double cache_hit_rate() const;

  /// Functions that resumed from a cached stage snapshot instead of
  /// compiling from pass 0 (incremental mode).
  std::size_t prefix_hits() const;
  /// Total passes those resumes skipped, summed over the module.
  std::size_t passes_skipped() const;

  /// Edit-aware mode: true when the cached dependency graph existed but
  /// could not be read (corrupt record, throwing lookup) and the whole
  /// module was conservatively recompiled.
  bool graph_degraded = false;
  /// Functions invalidated purely by a dependency edge — unchanged
  /// themselves, recompiled because something they transitively
  /// reference was edited (reason == kDependent).
  std::size_t invalidated_by_edge() const;
  /// Functions whose own body changed (reason == kEdited).
  std::size_t invalidated_by_edit() const;

  /// Per-function result table (name, instrs, vregs, spills, time).
  TextTable function_table(const std::string& title = "module") const;

  /// Merged per-pass table, same shape as PassManager::stats_table.
  TextTable stats_table(const std::string& title = "module pipeline") const;
};

class CompilationDriver {
 public:
  explicit CompilationDriver(PipelineContext ctx,
                             const PassRegistry& registry = default_registry())
      : manager_(ctx, registry) {}

  /// Worker-pool size; 0 (default) means std::thread::hardware_concurrency.
  void set_jobs(unsigned jobs) { jobs_ = jobs; }
  /// The pool size a module of `work_items` functions would get.
  unsigned effective_jobs(std::size_t work_items) const;

  void set_checkpoints(bool enabled) { manager_.set_checkpoints(enabled); }
  void set_analysis_caching(bool enabled) {
    manager_.set_analysis_caching(enabled);
  }

  /// Attaches a persistent result cache (nullptr detaches; not owned).
  /// Every work item probes the cache before compiling — restores run
  /// on the pool just like compiles, so a warm run parallelizes too —
  /// and inserts its result after a miss compiles. A warm run over an
  /// unchanged module re-runs no pass at all and produces byte-identical
  /// module output to the cold run at any job count, extending the
  /// determinism guarantee across processes.
  void set_result_cache(ResultCache* cache) { cache_ = cache; }

  /// Enables incremental compilation against the attached cache: work
  /// items probe for the longest cached spec prefix, resume from it,
  /// and freeze new snapshots at the policy's boundaries. No effect
  /// without a result cache.
  void set_stage_policy(StagePolicy policy) { stage_policy_ = policy; }
  const StagePolicy& stage_policy() const { return stage_policy_; }

  /// Enables edit-aware compilation against the attached cache: the
  /// driver builds the module's DependencyGraph, diffs it against the
  /// persisted TADFADG1 record for this module slot, mixes each
  /// function's closure digest into its cache keys (functions with no
  /// outgoing edges keep plain keys, so existing caches stay warm), and
  /// labels every function with an InvalidationReason. Invalidation is
  /// enforced by the key change — an edited function and all its
  /// transitive dependents simply miss — so correctness never depends
  /// on the cached graph; a corrupt or throwing graph record only costs
  /// precision (the whole module recompiles, flagged graph_degraded).
  /// No effect without a result cache.
  void set_edit_aware(bool enabled) { edit_aware_ = enabled; }
  bool edit_aware() const { return edit_aware_; }

  /// Compiles every function of `module` under `spec`. A spec error
  /// rejects the whole module before any work runs; a per-function
  /// failure still compiles the remaining functions (result.ok is false
  /// and result.error names the first failure in module order).
  ModulePipelineResult compile(const ir::Module& module,
                               const std::string& spec) const;
  ModulePipelineResult compile(const ir::Module& module,
                               const std::vector<PassSpec>& passes) const;

  const PassManager& pass_manager() const { return manager_; }
  const PipelineContext& context() const { return manager_.context(); }

 private:
  PassManager manager_;
  unsigned jobs_ = 0;
  ResultCache* cache_ = nullptr;
  StagePolicy stage_policy_;
  bool edit_aware_ = false;
};

}  // namespace tadfa::pipeline
