// Instruction latency table.
//
// The thermal transfer function advances simulated time by each
// instruction's latency; the trace simulator uses the same table so the
// compile-time prediction and the "feedback-driven" ground truth share a
// timing model.
#pragma once

#include "ir/instruction.hpp"

namespace tadfa::machine {

/// Latency in cycles of each opcode (single-issue, in-order pipeline;
/// loads assume L1 hits).
class TimingModel {
 public:
  TimingModel();

  int latency(ir::Opcode op) const;

  /// Total cycles of one execution of the instruction.
  int cycles(const ir::Instruction& inst) const {
    return latency(inst.opcode());
  }

  /// Overrides a latency (for sensitivity studies).
  void set_latency(ir::Opcode op, int cycles);

  /// Digest of the whole latency table (set_latency overrides included).
  std::uint64_t config_digest() const;

 private:
  int latency_[ir::kNumOpcodes];
};

}  // namespace tadfa::machine
