// Physical layout of the register file.
//
// The paper's analysis "must propagate a floorplan-aware estimate of the
// thermal state" (Sec. 3); this class is that floorplan: it places each
// architectural register at a grid cell and answers the geometric queries
// the thermal model and the spread-aware assignment policies need.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/technology.hpp"

namespace tadfa::machine {

/// Physical register index (a cell in the RF array). Distinct from
/// ir::Reg, which is a *virtual* register.
using PhysReg = std::uint32_t;

struct CellRect {
  double x = 0;  // meters, lower-left corner
  double y = 0;
  double w = 0;
  double h = 0;

  double center_x() const { return x + w / 2; }
  double center_y() const { return y + h / 2; }
};

class Floorplan {
 public:
  explicit Floorplan(const RegisterFileConfig& config);

  const RegisterFileConfig& config() const { return config_; }
  std::uint32_t num_registers() const { return config_.num_registers; }
  std::uint32_t rows() const { return config_.rows; }
  std::uint32_t cols() const { return config_.cols; }

  /// Grid coordinates of a register (row-major placement).
  std::uint32_t row_of(PhysReg r) const { return r / config_.cols; }
  std::uint32_t col_of(PhysReg r) const { return r % config_.cols; }
  PhysReg at(std::uint32_t row, std::uint32_t col) const;

  /// Physical rectangle of the register's cell.
  CellRect cell(PhysReg r) const;

  /// Euclidean distance between cell centers (meters).
  double distance(PhysReg a, PhysReg b) const;

  /// Manhattan distance in grid steps.
  std::uint32_t grid_distance(PhysReg a, PhysReg b) const;

  /// The 4-neighborhood of a register (N/S/E/W cells that exist).
  std::vector<PhysReg> neighbors(PhysReg r) const;

  /// Bank index of a register (banks split the columns contiguously).
  std::uint32_t bank_of(PhysReg r) const;
  std::uint32_t num_banks() const { return config_.banks; }
  /// All registers in a bank.
  std::vector<PhysReg> bank_registers(std::uint32_t bank) const;

  /// Registers whose (row+col) parity is even — the chessboard "black"
  /// squares used by the Fig. 1(c) assignment policy.
  std::vector<PhysReg> chessboard_cells(bool even_parity) const;

  /// Registers sorted so that consecutive picks maximize pairwise spread
  /// (greedy farthest-point ordering from the array center).
  std::vector<PhysReg> spread_order() const;

  /// Digest of the full configuration (shape + technology). Every
  /// geometric query above is a pure function of the config, so equal
  /// digests mean interchangeable floorplans — the persistent result
  /// cache keys on this.
  std::uint64_t config_digest() const { return config_.config_digest(); }

 private:
  RegisterFileConfig config_;
};

}  // namespace tadfa::machine
