#include "machine/technology.hpp"

#include <cmath>

namespace tadfa::machine {

double TechnologyParams::leakage_at(double t_k) const {
  return leakage_ref_w * std::exp(leakage_temp_coeff * (t_k - leakage_ref_temp_k));
}

RegisterFileConfig RegisterFileConfig::small_config() {
  RegisterFileConfig c;
  c.num_registers = 16;
  c.rows = 4;
  c.cols = 4;
  c.banks = 2;
  return c;
}

RegisterFileConfig RegisterFileConfig::large_config() {
  RegisterFileConfig c;
  c.num_registers = 128;
  c.rows = 8;
  c.cols = 16;
  c.banks = 4;
  return c;
}

bool RegisterFileConfig::valid() const {
  if (num_registers == 0 || rows == 0 || cols == 0 || banks == 0) {
    return false;
  }
  if (rows * cols != num_registers) {
    return false;
  }
  if (cols % banks != 0) {
    return false;
  }
  if (tech.clock_hz <= 0 || tech.cell_width_m <= 0 || tech.cell_height_m <= 0) {
    return false;
  }
  return true;
}

}  // namespace tadfa::machine
