#include "machine/technology.hpp"

#include <cmath>

#include "support/serialize.hpp"

namespace tadfa::machine {

double TechnologyParams::leakage_at(double t_k) const {
  return leakage_ref_w * std::exp(leakage_temp_coeff * (t_k - leakage_ref_temp_k));
}

RegisterFileConfig RegisterFileConfig::small_config() {
  RegisterFileConfig c;
  c.num_registers = 16;
  c.rows = 4;
  c.cols = 4;
  c.banks = 2;
  return c;
}

RegisterFileConfig RegisterFileConfig::large_config() {
  RegisterFileConfig c;
  c.num_registers = 128;
  c.rows = 8;
  c.cols = 16;
  c.banks = 4;
  return c;
}

bool RegisterFileConfig::valid() const {
  if (num_registers == 0 || rows == 0 || cols == 0 || banks == 0) {
    return false;
  }
  if (rows * cols != num_registers) {
    return false;
  }
  if (cols % banks != 0) {
    return false;
  }
  if (tech.clock_hz <= 0 || tech.cell_width_m <= 0 || tech.cell_height_m <= 0) {
    return false;
  }
  return true;
}

std::uint64_t TechnologyParams::config_digest() const {
  return Hasher()
      .mix(cell_width_m)
      .mix(cell_height_m)
      .mix(die_thickness_m)
      .mix(read_energy_j)
      .mix(write_energy_j)
      .mix(memory_access_energy_j)
      .mix(leakage_ref_w)
      .mix(leakage_temp_coeff)
      .mix(leakage_ref_temp_k)
      .mix(silicon_conductivity)
      .mix(silicon_volumetric_heat)
      .mix(vertical_resistance_scale)
      .mix(substrate_temp_k)
      .mix(ambient_temp_k)
      .mix(clock_hz)
      .digest();
}

std::uint64_t RegisterFileConfig::config_digest() const {
  return Hasher()
      .mix(std::uint64_t{num_registers})
      .mix(std::uint64_t{rows})
      .mix(std::uint64_t{cols})
      .mix(std::uint64_t{banks})
      .mix(tech.config_digest())
      .digest();
}

}  // namespace tadfa::machine
