#include "machine/machine_config.hpp"

#include <cassert>

namespace tadfa::machine {

void MachineRegistry::add(MachineConfig config) {
  assert(config.valid());
  assert(find(config.name) == nullptr);
  entries_.push_back(std::move(config));
}

const MachineConfig* MachineRegistry::find(const std::string& name) const {
  for (const MachineConfig& entry : entries_) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

std::vector<std::string> MachineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const MachineConfig& entry : entries_) {
    out.push_back(entry.name);
  }
  return out;
}

namespace {

MachineRegistry build_default_registry() {
  MachineRegistry reg;
  reg.add({"default", "64-reg 8x8 file, 4 banks, 65nm-class node",
           RegisterFileConfig::default_config()});
  reg.add({"small", "16-reg 4x4 file, 2 banks (unit-test floorplan)",
           RegisterFileConfig::small_config()});
  reg.add({"large", "128-reg 8x16 file, 4 banks (scaling studies)",
           RegisterFileConfig::large_config()});

  // Unified register file: one bank spanning all columns, so bank
  // power-gating has no boundary to exploit.
  RegisterFileConfig unified = RegisterFileConfig::default_config();
  unified.banks = 1;
  reg.add({"unified", "64-reg 8x8 file, single bank (no gating boundary)",
           unified});

  // Fine-grained banking: one column per bank.
  RegisterFileConfig banked8 = RegisterFileConfig::default_config();
  banked8.banks = 8;
  reg.add({"banked8", "64-reg 8x8 file, 8 one-column banks", banked8});

  // Denser node: scaled cells, cheaper accesses, leakier transistors with
  // a steeper temperature slope, faster clock. Models the shrink where
  // leakage-vs-temperature feedback gets worse, the regime the paper's
  // thermal-aware DFA targets.
  RegisterFileConfig dense45 = RegisterFileConfig::default_config();
  dense45.tech.cell_width_m = 4.2e-6;
  dense45.tech.cell_height_m = 2.1e-6;
  dense45.tech.read_energy_j = 0.8e-12;
  dense45.tech.write_energy_j = 1.2e-12;
  dense45.tech.memory_access_energy_j = 10.0e-12;
  dense45.tech.leakage_ref_w = 4.5e-5;
  dense45.tech.leakage_temp_coeff = 0.032;
  dense45.tech.clock_hz = 3.6e9;
  reg.add({"dense45", "45nm-class node: denser, leakier, faster clock",
           dense45});

  // Thermally stressed corner of the default geometry: hot substrate and
  // ambient, worse vertical heat evacuation.
  RegisterFileConfig hotbox = RegisterFileConfig::default_config();
  hotbox.tech.substrate_temp_k = 358.15;  // 85 C
  hotbox.tech.ambient_temp_k = 328.15;    // 55 C
  hotbox.tech.vertical_resistance_scale = 5.5;
  reg.add({"hotbox", "default geometry at a hot substrate/ambient corner",
           hotbox});
  return reg;
}

}  // namespace

const MachineRegistry& default_machine_registry() {
  static const MachineRegistry registry = build_default_registry();
  return registry;
}

const MachineConfig* find_machine(const std::string& name) {
  return default_machine_registry().find(name);
}

}  // namespace tadfa::machine
