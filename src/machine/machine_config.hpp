// Named machine configurations: the machine-model matrix.
//
// The paper's experiments fix one register file and one technology node;
// this registry turns that single hard-coded tuple into a named matrix of
// Floorplan geometry x register-file banking x TechnologyParams node so
// every harness (CLI, service, benches, the grid-differential tests) can
// run the same workload across machines. A MachineConfig is pure data:
// the heavyweight rig objects (Floorplan, ThermalGrid, PowerModel) are
// built from it by pipeline::CompileRig.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "machine/technology.hpp"

namespace tadfa::machine {

/// One named point in the machine matrix. The name is operator-facing
/// only (CLI flags, metrics rows, wire requests); everything the
/// compiled artifact depends on lives in `rf` (shape + banking +
/// technology), and config_digest() folds exactly those fields — two
/// configs with equal parameters share cache entries regardless of what
/// they are called, and the unnamed pre-matrix default keeps its keys.
struct MachineConfig {
  std::string name;
  std::string description;
  RegisterFileConfig rf;

  /// Digest of the physical parameters only (never the name): delegates
  /// to RegisterFileConfig::config_digest(), which folds the shape, the
  /// banking, and every TechnologyParams coefficient. This is the value
  /// the ResultCache environment digest sees through the Floorplan, so
  /// distinct machines can never share cache or stage keys.
  std::uint64_t config_digest() const { return rf.config_digest(); }

  bool valid() const { return !name.empty() && rf.valid(); }
};

/// The named machine matrix. Lookup is by exact name; entries() is the
/// registration order the CLI lists.
class MachineRegistry {
 public:
  /// Registers a config (must be valid(); duplicate names are a bug).
  void add(MachineConfig config);

  /// Config by name; nullptr when unknown.
  const MachineConfig* find(const std::string& name) const;

  const std::vector<MachineConfig>& entries() const { return entries_; }
  std::vector<std::string> names() const;

 private:
  std::vector<MachineConfig> entries_;
};

/// The built-in matrix, constructed once:
///   default  - 64-reg 8x8 file, 4 banks, 65nm-class node (the paper's
///              experimental target; digest-identical to
///              RegisterFileConfig::default_config(), so every cache key
///              minted before the matrix existed still hits)
///   small    - 16-reg 4x4 file, 2 banks (the unit-test floorplan)
///   large    - 128-reg 8x16 file, 4 banks (scaling studies)
///   unified  - 64-reg 8x8 file, single bank: no gating boundary, the
///              bank switch-off optimization has nothing to turn off
///   banked8  - 64-reg 8x8 file, 8 one-column banks: fine-grained gating
///   dense45  - 45nm-class node: smaller cells, lower access energies,
///              leakier and steeper leakage-temperature slope
///   hotbox   - default geometry under a hot substrate/ambient corner
const MachineRegistry& default_machine_registry();

/// Convenience over default_machine_registry().find(name).
const MachineConfig* find_machine(const std::string& name);

}  // namespace tadfa::machine
