// Virtual-to-physical register assignment.
//
// Produced by src/regalloc, consumed by the trace simulator (to know which
// physical cell each access touches) and by the post-RA mode of the thermal
// analysis. Lives in machine/ because it is pure mapping data shared by
// both sides.
#pragma once

#include <vector>

#include "ir/function.hpp"
#include "machine/floorplan.hpp"

namespace tadfa::machine {

class RegisterAssignment {
 public:
  RegisterAssignment() = default;
  explicit RegisterAssignment(std::uint32_t num_vregs)
      : map_(num_vregs, kUnassigned) {}

  static constexpr PhysReg kUnassigned = ~PhysReg{0};

  bool assigned(ir::Reg v) const {
    return v < map_.size() && map_[v] != kUnassigned;
  }

  PhysReg phys(ir::Reg v) const {
    TADFA_ASSERT(assigned(v));
    return map_[v];
  }

  void assign(ir::Reg v, PhysReg p) {
    TADFA_ASSERT(v < map_.size());
    map_[v] = p;
  }

  std::uint32_t vreg_count() const {
    return static_cast<std::uint32_t>(map_.size());
  }

  /// True when every virtual register that appears in `func` is mapped.
  bool covers(const ir::Function& func) const;

  /// Distinct physical registers used.
  std::vector<PhysReg> used_physical() const;

 private:
  std::vector<PhysReg> map_;
};

}  // namespace tadfa::machine
