// Technology and register-file configuration.
//
// The paper links "technology coefficients of logic activity and peak power
// found in the thermal models [1, 5]" to high-level instruction/variable
// information. This header holds those coefficients. Values model a
// 65 nm-class multi-ported register file; absolute numbers are synthetic
// (see DESIGN.md, substitutions) but sized so that per-register power,
// thermal time constants, and temperature deltas land in the ranges the RF
// thermal literature reports (local rises of a few K to tens of K,
// millisecond-scale settling).
#pragma once

#include <cstdint>

namespace tadfa::machine {

struct TechnologyParams {
  // --- Geometry (per register cell: one architectural register's storage
  //     plus its share of decoders/ports) -----------------------------------
  double cell_width_m = 6.0e-6;
  double cell_height_m = 3.0e-6;
  double die_thickness_m = 50.0e-6;

  // --- Energy ---------------------------------------------------------------
  /// Energy of one read access (J). Multi-ported RF read at 65 nm: ~1 pJ.
  double read_energy_j = 1.2e-12;
  /// Energy of one write access (J).
  double write_energy_j = 1.8e-12;

  /// Energy of one L1/data-memory access (J) — for whole-system energy
  /// accounting when optimizations move traffic between the RF and the
  /// cache (register promotion, spilling). ~15 pJ for a small L1 at 65 nm.
  double memory_access_energy_j = 15.0e-12;

  // --- Leakage ---------------------------------------------------------------
  /// Per-cell leakage power at reference temperature (W).
  double leakage_ref_w = 2.0e-5;
  /// Exponential temperature coefficient (1/K):
  /// P_leak(T) = leakage_ref_w * exp(coeff * (T - T_ref)).
  double leakage_temp_coeff = 0.025;
  double leakage_ref_temp_k = 343.15;  // 70 °C

  // --- Thermal (silicon + lumped package) ------------------------------------
  /// Silicon thermal conductivity, W/(m·K).
  double silicon_conductivity = 100.0;
  /// Silicon volumetric heat capacity, J/(m^3·K).
  double silicon_volumetric_heat = 1.75e6;
  /// Extra scale on vertical (cell -> substrate) resistance; models how
  /// well the RF's neighborhood evacuates heat (blockage by wiring layers,
  /// neighboring hot units). Calibrated so sustained per-register activity
  /// produces the K-scale local rises the RF thermal literature reports.
  double vertical_resistance_scale = 4.0;
  /// Temperature of the substrate/die around the RF (K). The RF rides on
  /// top of this baseline; its own activity adds the local delta.
  double substrate_temp_k = 343.15;  // 70 °C
  /// Ambient used when reporting absolute temperatures (K).
  double ambient_temp_k = 318.15;  // 45 °C

  // --- Clocking ---------------------------------------------------------------
  double clock_hz = 3.0e9;

  double cycle_seconds() const { return 1.0 / clock_hz; }
  double cell_area_m2() const { return cell_width_m * cell_height_m; }

  /// Leakage power of one cell at temperature `t_k`.
  double leakage_at(double t_k) const;

  /// Order-sensitive hash of every coefficient. Any parameter change
  /// (and only a parameter change) produces a new digest — the
  /// invalidation unit of the persistent result cache.
  std::uint64_t config_digest() const;
};

/// Register-file shape: how many architectural registers and how they are
/// arranged on the die.
struct RegisterFileConfig {
  std::uint32_t num_registers = 64;
  std::uint32_t rows = 8;
  std::uint32_t cols = 8;
  /// Banks split the columns into contiguous groups that can be
  /// power-gated independently (Sec. 4's bank switch-off discussion).
  std::uint32_t banks = 4;
  TechnologyParams tech;

  /// 64-register 8x8 file, 4 banks — the default experimental target.
  static RegisterFileConfig default_config() { return {}; }
  /// Small 16-register 4x4 file for unit tests.
  static RegisterFileConfig small_config();
  /// Large 128-register 16x8 file for scaling studies.
  static RegisterFileConfig large_config();

  /// Checks rows*cols == num_registers, banks divides cols, etc.
  bool valid() const;

  /// Hash of the shape plus the technology digest.
  std::uint64_t config_digest() const;
};

}  // namespace tadfa::machine
