#include "machine/timing.hpp"

#include "support/serialize.hpp"

namespace tadfa::machine {

TimingModel::TimingModel() {
  using ir::Opcode;
  for (auto& l : latency_) {
    l = 1;
  }
  auto set = [this](Opcode op, int cycles) {
    latency_[static_cast<std::size_t>(op)] = cycles;
  };
  set(Opcode::kMul, 3);
  set(Opcode::kDiv, 12);
  set(Opcode::kRem, 12);
  set(Opcode::kLoad, 2);
  set(Opcode::kStore, 1);
}

int TimingModel::latency(ir::Opcode op) const {
  return latency_[static_cast<std::size_t>(op)];
}

void TimingModel::set_latency(ir::Opcode op, int cycles) {
  TADFA_ASSERT(cycles >= 1);
  latency_[static_cast<std::size_t>(op)] = cycles;
}

std::uint64_t TimingModel::config_digest() const {
  Hasher h;
  for (int l : latency_) {
    h.mix(static_cast<std::uint64_t>(l));
  }
  return h.digest();
}

}  // namespace tadfa::machine
