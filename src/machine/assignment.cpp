#include "machine/assignment.hpp"

#include <algorithm>

namespace tadfa::machine {

bool RegisterAssignment::covers(const ir::Function& func) const {
  for (ir::Reg p : func.params()) {
    if (!assigned(p)) {
      return false;
    }
  }
  for (const ir::BasicBlock& b : func.blocks()) {
    for (const ir::Instruction& inst : b.instructions()) {
      if (auto d = inst.def()) {
        if (!assigned(*d)) {
          return false;
        }
      }
      for (ir::Reg u : inst.uses()) {
        if (!assigned(u)) {
          return false;
        }
      }
    }
  }
  return true;
}

std::vector<PhysReg> RegisterAssignment::used_physical() const {
  std::vector<PhysReg> used;
  for (PhysReg p : map_) {
    if (p != kUnassigned) {
      used.push_back(p);
    }
  }
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  return used;
}

}  // namespace tadfa::machine
