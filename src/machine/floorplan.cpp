#include "machine/floorplan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/assert.hpp"

namespace tadfa::machine {

Floorplan::Floorplan(const RegisterFileConfig& config) : config_(config) {
  TADFA_ASSERT_MSG(config.valid(), "invalid register file configuration");
}

PhysReg Floorplan::at(std::uint32_t row, std::uint32_t col) const {
  TADFA_ASSERT(row < rows() && col < cols());
  return row * cols() + col;
}

CellRect Floorplan::cell(PhysReg r) const {
  TADFA_ASSERT(r < num_registers());
  const auto& t = config_.tech;
  CellRect rect;
  rect.w = t.cell_width_m;
  rect.h = t.cell_height_m;
  rect.x = static_cast<double>(col_of(r)) * t.cell_width_m;
  rect.y = static_cast<double>(row_of(r)) * t.cell_height_m;
  return rect;
}

double Floorplan::distance(PhysReg a, PhysReg b) const {
  const CellRect ca = cell(a);
  const CellRect cb = cell(b);
  const double dx = ca.center_x() - cb.center_x();
  const double dy = ca.center_y() - cb.center_y();
  return std::sqrt(dx * dx + dy * dy);
}

std::uint32_t Floorplan::grid_distance(PhysReg a, PhysReg b) const {
  const auto dr = static_cast<std::int64_t>(row_of(a)) - row_of(b);
  const auto dc = static_cast<std::int64_t>(col_of(a)) - col_of(b);
  return static_cast<std::uint32_t>(std::abs(dr) + std::abs(dc));
}

std::vector<PhysReg> Floorplan::neighbors(PhysReg r) const {
  TADFA_ASSERT(r < num_registers());
  std::vector<PhysReg> out;
  const std::uint32_t row = row_of(r);
  const std::uint32_t col = col_of(r);
  if (row > 0) {
    out.push_back(at(row - 1, col));
  }
  if (row + 1 < rows()) {
    out.push_back(at(row + 1, col));
  }
  if (col > 0) {
    out.push_back(at(row, col - 1));
  }
  if (col + 1 < cols()) {
    out.push_back(at(row, col + 1));
  }
  return out;
}

std::uint32_t Floorplan::bank_of(PhysReg r) const {
  TADFA_ASSERT(r < num_registers());
  const std::uint32_t cols_per_bank = cols() / config_.banks;
  return col_of(r) / cols_per_bank;
}

std::vector<PhysReg> Floorplan::bank_registers(std::uint32_t bank) const {
  TADFA_ASSERT(bank < config_.banks);
  std::vector<PhysReg> out;
  for (PhysReg r = 0; r < num_registers(); ++r) {
    if (bank_of(r) == bank) {
      out.push_back(r);
    }
  }
  return out;
}

std::vector<PhysReg> Floorplan::chessboard_cells(bool even_parity) const {
  std::vector<PhysReg> out;
  for (PhysReg r = 0; r < num_registers(); ++r) {
    const bool even = ((row_of(r) + col_of(r)) % 2) == 0;
    if (even == even_parity) {
      out.push_back(r);
    }
  }
  return out;
}

std::vector<PhysReg> Floorplan::spread_order() const {
  const std::uint32_t n = num_registers();
  std::vector<PhysReg> order;
  std::vector<bool> taken(n, false);
  order.reserve(n);

  // Seed with the cell nearest the array center.
  const double cx = static_cast<double>(cols() - 1) / 2.0;
  const double cy = static_cast<double>(rows() - 1) / 2.0;
  PhysReg seed = 0;
  double best = std::numeric_limits<double>::max();
  for (PhysReg r = 0; r < n; ++r) {
    const double dx = static_cast<double>(col_of(r)) - cx;
    const double dy = static_cast<double>(row_of(r)) - cy;
    const double d = dx * dx + dy * dy;
    if (d < best) {
      best = d;
      seed = r;
    }
  }
  order.push_back(seed);
  taken[seed] = true;

  // Greedy farthest-point: next pick maximizes the minimum distance to all
  // already-picked cells (ties broken by lower index for determinism).
  while (order.size() < n) {
    PhysReg pick = 0;
    double best_min = -1.0;
    for (PhysReg r = 0; r < n; ++r) {
      if (taken[r]) {
        continue;
      }
      double min_d = std::numeric_limits<double>::max();
      for (PhysReg o : order) {
        min_d = std::min(min_d, distance(r, o));
      }
      if (min_d > best_min) {
        best_min = min_d;
        pick = r;
      }
    }
    order.push_back(pick);
    taken[pick] = true;
  }
  return order;
}

}  // namespace tadfa::machine
