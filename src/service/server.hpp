// CompileServer: the pipeline as a long-lived service.
//
// `tadfa serve` wraps everything PR 3 and PR 4 built — the module-level
// CompilationDriver worker pool and the persistent ResultCache — behind
// a stream socket so compiles stop being one-shot CLI processes.
// Concurrent clients submit CompileRequests (protocol.hpp); a handler
// thread per connection resolves each request into ir::Functions and
// queues it; a single dispatcher drains the queue, batches compatible
// requests (same canonical spec and toggles, no function-name
// collisions) into one ir::Module, and runs it through the one shared
// driver + cache. Batching is the point of the service: ten clients
// each submitting one function cost one module compile over the full
// worker pool, and every warm function is served from the shared cache
// without running a single pass.
//
// Since PR 7 the server is listener-agnostic: it accepts the same
// framed protocol over a Unix-domain socket, a TCP endpoint, or both at
// once (transport.hpp), which is what lets `tadfa route` shard requests
// across server processes on different machines. Overload is explicit,
// not emergent: the dispatcher queue is bounded (`max_queue`), a
// request arriving at a full queue is answered with a structured BUSY
// response instead of queuing unboundedly, and a connection that stalls
// mid-frame past `io_timeout_seconds` gets a structured timeout error
// instead of holding its handler thread forever.
//
// The per-function determinism guarantee carries over unchanged: a
// pipeline run is a pure function of (function, spec, context), so a
// function compiled inside a server batch is byte-identical to the same
// function compiled by a direct CompilationDriver::compile — the
// service tests and the CI smoke step gate on exactly that.
//
// Lifetime: start() binds the listeners and spawns the threads;
// shutdown() drains — it stops accepting, half-closes every
// connection's read side, lets in-flight requests finish compiling and
// responding, and only then stops the dispatcher and flushes the cache.
// The dispatcher also flushes the cache periodically while serving: a
// long-lived server must never depend on the destructor-flush path a
// batch tool gets for free.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <map>

#include "pipeline/driver.hpp"
#include "pipeline/result_cache.hpp"
#include "service/naming.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "support/table.hpp"

namespace tadfa::service {

struct ServerConfig {
  /// Filesystem path of the Unix-domain listening socket (empty = no
  /// Unix listener; at least one of socket_path / tcp_host required).
  std::string socket_path;
  /// TCP listening endpoint (host empty = no TCP listener; port 0
  /// binds ephemerally — CompileServer::tcp_port() reports the choice).
  std::string tcp_host;
  std::uint16_t tcp_port = 0;
  /// Worker-pool size per module compile (0 = hardware concurrency).
  unsigned jobs = 0;
  /// Pipeline used when a request leaves its spec empty.
  std::string default_spec;
  /// Persistent result cache directory; empty serves uncached.
  std::string cache_dir;
  /// ResultCache size budget (0 = unbounded).
  std::uint64_t cache_max_bytes = 0;
  /// Seconds between periodic cache index flushes.
  double flush_every_seconds = 5.0;
  /// Ceiling on functions batched into one module compile.
  std::size_t max_batch_functions = 256;
  /// Admission control: requests allowed to wait for the dispatcher
  /// (0 = unbounded). A request arriving at a full queue is answered
  /// with a structured BUSY response instead of queuing.
  std::size_t max_queue = 0;
  /// Per-connection read/write deadline in seconds (<= 0: no read
  /// deadline, 60 s write deadline). A peer stalling mid-frame past it
  /// gets a structured timeout error and the connection is closed.
  double io_timeout_seconds = 30.0;
  /// Incremental compilation: when enabled, the driver freezes
  /// pass-boundary snapshots into the cache and resumes from the
  /// longest cached spec prefix. No effect without a cache_dir.
  pipeline::StagePolicy stage_policy;
};

/// Aggregate counters since start(), snapshotted by metrics().
struct ServerMetrics {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t requests_ok = 0;
  std::uint64_t requests_failed = 0;
  /// Requests shed at admission with a structured BUSY response.
  std::uint64_t requests_busy = 0;
  /// Frames or payloads that could not be decoded (answered with a
  /// structured error, never a hang).
  std::uint64_t malformed = 0;
  /// Connections that stalled mid-frame past the I/O deadline.
  std::uint64_t timeouts = 0;
  /// Frames announcing a different kProtocolVersion (answered with a
  /// structured VERSION_MISMATCH error).
  std::uint64_t version_mismatches = 0;
  std::uint64_t functions = 0;
  std::uint64_t functions_from_cache = 0;
  /// Functions that resumed from a cached stage snapshot (incremental
  /// mode), and the total passes those resumes skipped.
  std::uint64_t prefix_hits = 0;
  std::uint64_t passes_skipped = 0;
  /// Dispatcher batching: module compiles run, and the largest /
  /// average function count per batch.
  std::uint64_t batches = 0;
  std::uint64_t max_batch_functions = 0;
  double avg_batch_functions = 0;
  /// Requests waiting for the dispatcher right now / high-water mark.
  std::size_t queue_depth = 0;
  std::size_t queue_peak = 0;
  double uptime_seconds = 0;
  double requests_per_sec = 0;
  double functions_per_sec = 0;
  /// Request latency (frame decoded -> response written), over the
  /// most recent samples.
  double latency_p50_ms = 0;
  double latency_p95_ms = 0;
  double latency_p99_ms = 0;
  /// functions_from_cache over functions (0 when nothing served).
  double warm_hit_rate = 0;
  bool cache_attached = false;
  pipeline::ResultCacheStats cache;
  /// Per-(frontend, machine) breakdown of resolved requests, sorted by
  /// (frontend, machine). Requests rejected before resolution (bad
  /// frame, unknown frontend/machine name) appear only in the totals.
  std::vector<PairMetrics> pairs;
};

class CompileServer {
 public:
  /// The rig objects behind `ctx` must outlive the server.
  CompileServer(pipeline::PipelineContext ctx, ServerConfig config);
  /// Calls shutdown().
  ~CompileServer();
  CompileServer(const CompileServer&) = delete;
  CompileServer& operator=(const CompileServer&) = delete;

  /// Binds the listeners, opens the cache, spawns the accept and
  /// dispatch threads. False (with error()) when any of that fails.
  bool start();
  /// Graceful drain; safe to call twice (second call is a no-op).
  void shutdown();

  const std::string& error() const { return error_; }
  const ServerConfig& config() const { return config_; }
  bool running() const { return started_ && !stopping_.load(); }
  /// The bound TCP port once start() succeeded (0 without a TCP
  /// listener); the way tests find an ephemeral (`tcp_port = 0`) bind.
  std::uint16_t tcp_port() const { return host_.tcp_port(); }

  ServerMetrics metrics() const;
  TextTable metrics_table(const std::string& title = "compile server") const;
  /// The metrics snapshot as one machine-readable JSON object.
  std::string metrics_json() const;
  /// Writes metrics_json() to `path` atomically (tmp file + rename).
  bool write_metrics_json(const std::string& path, std::string* error) const;

  /// The shared persistent cache; nullptr when serving uncached.
  pipeline::ResultCache* cache() {
    return cache_.has_value() ? &*cache_ : nullptr;
  }

 private:
  /// One resolved request waiting for the dispatcher.
  struct Pending {
    std::vector<ir::Function> functions;
    /// Module-level `ref` edges from the request's module text; feed the
    /// dependency graph in edit-aware mode.
    std::vector<ir::ModuleReference> references;
    std::vector<pipeline::PassSpec> passes;
    std::string canonical_spec;
    bool checkpoints = true;
    bool analysis_cache = true;
    /// v4: the request asked for dependency-edge invalidation reporting.
    /// Edit-aware pendings compile in their own group — batching with
    /// strangers would change the module slot the dependency graph is
    /// keyed by, making every resubmit look like a first compile.
    bool edit_aware = false;
    /// v5: resolved frontend name (module text already parsed by it;
    /// kept for the per-pair metrics) and resolved machine name (picks
    /// the driver the group compiles on, so it joins the group key).
    std::string frontend;
    std::string machine;
    std::chrono::steady_clock::time_point accepted;
    /// Fulfilled by the dispatcher; the handler blocks on it. Always
    /// set exactly once (respond() guards), or the handler would wait
    /// forever and wedge shutdown.
    std::promise<CompileResponse> promise;
    bool responded = false;
  };

  /// Fulfills a pending's promise once; further calls are no-ops.
  static void respond(Pending& pending, CompileResponse response);

  /// A batch of compatible pendings compiled as one module.
  struct Group;

  void handle_connection(int fd);
  void dispatch_loop();
  /// Responds to every pending in `batch`, converting any escaped
  /// exception into internal-error responses (a promise left unset
  /// would wedge its handler and shutdown()).
  void process_batch(std::vector<std::unique_ptr<Pending>> batch);
  void process_batch_unguarded(std::vector<std::unique_ptr<Pending>>& batch);
  void compile_group(Group& group);

  /// Resolves a decoded request into a Pending, or a ready error
  /// response (bad spec, unknown kernel, unparsable module text).
  std::optional<CompileResponse> resolve(CompileRequest request,
                                         std::unique_ptr<Pending>* out);

  /// Admission: queues `pending` unless the bounded queue is full, in
  /// which case a ready BUSY response is returned instead.
  std::optional<CompileResponse> admit(std::unique_ptr<Pending> pending,
                                       std::future<CompileResponse>* future);

  /// The driver for a resolved machine name: the base driver for the
  /// context the server was constructed with, otherwise a lazily-built
  /// rig + driver for that registry machine (sharing the cache and job
  /// settings). Dispatcher thread only.
  pipeline::CompilationDriver& driver_for(const std::string& machine);

  void record_request(const CompileResponse& response, double latency_ms,
                      const std::string& frontend, const std::string& machine);
  void record_malformed();
  void record_timeout();
  void record_version_mismatch();

  ServerConfig config_;
  pipeline::PipelineContext base_ctx_;
  /// Machine name the base context answers for (its MachineConfig's
  /// name, or "default" for hand-assembled contexts).
  std::string base_machine_;
  pipeline::CompilationDriver driver_;
  /// Lazily-built rigs for requests naming other machines, keyed by
  /// machine name. Dispatcher thread only (compiles are serialized).
  struct MachineDriver;
  std::map<std::string, std::unique_ptr<MachineDriver>> machine_drivers_;
  std::optional<pipeline::ResultCache> cache_;
  std::string error_;

  ConnectionHost host_;
  bool started_ = false;
  std::atomic<bool> stopping_{false};

  std::thread dispatch_thread_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<Pending>> queue_;
  std::size_t queue_peak_ = 0;
  bool dispatcher_stop_ = false;

  mutable std::mutex metrics_mu_;
  std::uint64_t requests_ = 0;
  std::uint64_t requests_ok_ = 0;
  std::uint64_t requests_failed_ = 0;
  std::uint64_t requests_busy_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t version_mismatches_ = 0;
  std::uint64_t functions_ = 0;
  std::uint64_t functions_from_cache_ = 0;
  std::uint64_t prefix_hits_ = 0;
  std::uint64_t passes_skipped_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batched_functions_ = 0;
  std::uint64_t max_batch_functions_ = 0;
  /// Per-(frontend, machine) counters for resolved requests.
  std::map<std::pair<std::string, std::string>, PairMetrics> pair_metrics_;
  /// Latency ring (most recent kLatencyWindow samples).
  static constexpr std::size_t kLatencyWindow = 4096;
  std::vector<double> latencies_ms_;
  std::size_t latency_next_ = 0;
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace tadfa::service
