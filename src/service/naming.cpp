#include "service/naming.hpp"

#include <vector>

namespace tadfa::service {
namespace {

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) {
      out += ", ";
    }
    out += name;
  }
  return out;
}

}  // namespace

std::string unknown_frontend_error(const std::string& name) {
  return "unknown frontend '" + name + "' (available: " +
         join_names(frontend::default_frontend_registry().names()) + ")";
}

std::string unknown_machine_error(const std::string& name) {
  return "unknown machine '" + name + "' (available: " +
         join_names(machine::default_machine_registry().names()) + ")";
}

const frontend::Frontend* resolve_frontend(const std::string& name) {
  return frontend::find_frontend(name.empty() ? "tir" : name);
}

std::string module_text_error(const frontend::ParseResult& result) {
  return "module text " + result.diagnostics_text();
}

}  // namespace tadfa::service
